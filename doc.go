// Package localalias is a from-scratch reproduction of
//
//	Aiken, Foster, Kodumal, Terauchi:
//	"Checking and Inferring Local Non-Aliasing", PLDI 2003.
//
// The library implements the paper's restrict and confine constructs
// over a small imperative language (MiniC), the type-and-effect
// system that checks them, constraint-based checking (O(kn)) and
// inference (O(n²)) algorithms, a flow-sensitive locked/unlocked
// qualifier analysis in the style of CQUAL, a big-step interpreter
// realizing the err-poisoning semantics of Section 3.2, and a
// synthetic 589-module device-driver corpus over which every table
// and figure of the paper's evaluation is regenerated.
//
// See README.md for the layout and DESIGN.md for the system
// inventory; the benchmarks in bench_test.go regenerate each
// experiment (E1–E8).
package localalias
