// Command experiments regenerates every table and figure of the
// paper's Section 7 evaluation over the synthetic 589-module driver
// corpus:
//
//	experiments               # everything: summary, Figure 6, Figure 7, timing
//	experiments -summary      # E1 only
//	experiments -fig6         # Figure 6 only
//	experiments -fig7         # Figure 7 only
//	experiments -timing       # E4 only
//	experiments -dump DIR     # write the generated corpus sources to DIR
//	experiments -phases       # with -summary: per-phase p50/p95/max table
//	experiments -bench-obs-json FILE
//	                          # observability-overhead benchmarks
//	experiments -bench-gateway-json FILE
//	                          # gateway open-loop load benchmarks
//	experiments -bench-trace-json FILE
//	                          # tracing overhead on the gateway relay path
//	experiments -xmodule      # cross-module precision table (havoc vs summaries)
//	experiments -bench-xmodule-json FILE
//	                          # cross-module DAG scheduler + summary-cache benchmarks
//
// Fault-containment flags:
//
//	-module-timeout D    per-module analysis deadline (default 2m, 0 = none)
//	-failures-json FILE  write the degraded-run failure report as JSON
//	                     (- for stdout)
//
// A run where some module panics or exceeds its deadline still
// completes the rest of the corpus; the numbers then cover only the
// surviving modules, a degraded-run summary goes to stderr, and the
// process exits 3. Mismatches between measured and expected triples
// exit 1. Degradation takes precedence over mismatches.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"localalias/internal/drivergen"
	"localalias/internal/experiments"
	"localalias/internal/faults"
	"localalias/internal/service"
)

// Exit codes follow the policy table shared with cmd/lna (package
// service): 0 clean, 1 findings (corpus mismatches), 2 usage/IO
// errors, 3 degraded run (some module failed or timed out).
const (
	exitMismatch = service.ExitFindings
	exitError    = service.ExitUsage
	exitDegraded = service.ExitDegraded
)

// failureReportSlowest is how many of the slowest surviving modules
// the failure report lists with per-phase timings.
const failureReportSlowest = 10

func main() {
	var (
		summary       = flag.Bool("summary", false, "print only the Section 7 summary (E1)")
		fig6          = flag.Bool("fig6", false, "print only Figure 6 (E2)")
		fig7          = flag.Bool("fig7", false, "print only Figure 7 (E3)")
		timing        = flag.Bool("timing", false, "print only the timing comparison (E4)")
		rounds        = flag.Int("rounds", 5, "timing rounds for -timing")
		dump          = flag.String("dump", "", "write generated corpus sources to this directory and exit")
		csvPath       = flag.String("csv", "", "also write per-module results as CSV to this file")
		benchJSON     = flag.String("bench-json", "", "run the solver benchmarks, write ns/op as JSON to this file (- for stdout), and exit")
		benchObsJSON  = flag.String("bench-obs-json", "", "run the observability-overhead benchmarks (tracing disabled vs enabled), write ns/op as JSON to this file (- for stdout), and exit")
		benchParJSON  = flag.String("bench-parallel-json", "", "run the parallel-solver benchmarks (sequential unpooled vs pooled partitioned, interleaved, at GOMAXPROCS 1/2/4), write the report as JSON to this file (- for stdout), and exit")
		benchIncJSON  = flag.String("bench-incremental-json", "", "run the incremental re-analysis benchmarks (from-scratch vs resident cache+memo after a one-function edit, interleaved), write the report as JSON to this file (- for stdout), and exit")
		benchGwJSON   = flag.String("bench-gateway-json", "", "run the gateway open-loop load benchmarks (1-replica vs 2-replica stacks, interleaved), write the report as JSON to this file (- for stdout), and exit")
		benchTrJSON   = flag.String("bench-trace-json", "", "run the tracing-overhead benchmarks (gateway relay with tracing off vs on, interleaved), write the report as JSON to this file (- for stdout), and exit")
		benchXmodJSON = flag.String("bench-xmodule-json", "", "run the cross-module DAG benchmarks (sequential vs parallel scheduler, cold vs warm summary cache, interleaved), write the report as JSON to this file (- for stdout), and exit")
		xmodule       = flag.Bool("xmodule", false, "print the cross-module precision table (per-module havoc vs package summaries) and exit")
		phases        = flag.Bool("phases", false, "also print the per-phase p50/p95/max timing table with the summary")
		quiet         = flag.Bool("q", false, "suppress progress output")
		moduleTimeout = flag.Duration("module-timeout", 2*time.Minute, "per-module analysis deadline (0 disables it)")
		failuresJSON  = flag.String("failures-json", "", "write the failure report as JSON to this file (- for stdout)")
	)
	flag.Parse()

	if *dump != "" {
		if err := dumpCorpus(*dump); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		return
	}

	if *benchJSON != "" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running solver benchmarks (this takes a few seconds per benchmark)...")
		}
		data, err := experiments.RunBenchJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		data = append(data, '\n')
		if *benchJSON == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchJSON)
		}
		return
	}

	if *benchObsJSON != "" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running observability-overhead benchmarks (disabled vs traced)...")
		}
		data, err := experiments.RunObsBenchJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		data = append(data, '\n')
		if *benchObsJSON == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*benchObsJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchObsJSON)
		}
		return
	}

	if *benchParJSON != "" {
		var progress io.Writer
		if !*quiet {
			progress = os.Stderr
			fmt.Fprintln(progress, "running parallel-solver benchmarks (interleaved before/after pairs; this takes a few minutes)...")
		}
		data, err := experiments.RunParallelBenchJSON(progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		data = append(data, '\n')
		if *benchParJSON == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*benchParJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchParJSON)
		}
		return
	}

	if *benchIncJSON != "" {
		var progress io.Writer
		if !*quiet {
			progress = os.Stderr
			fmt.Fprintln(progress, "running incremental re-analysis benchmarks (interleaved cold/incremental pairs; this takes a few minutes)...")
		}
		data, err := experiments.RunIncrementalBenchJSON(progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		data = append(data, '\n')
		if *benchIncJSON == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*benchIncJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchIncJSON)
		}
		return
	}

	if *benchGwJSON != "" {
		var progress io.Writer
		if !*quiet {
			progress = os.Stderr
			fmt.Fprintln(progress, "running gateway load benchmarks (interleaved 1-replica/2-replica pairs; this takes a minute)...")
		}
		data, err := experiments.RunGatewayBenchJSON(progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		data = append(data, '\n')
		if *benchGwJSON == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*benchGwJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchGwJSON)
		}
		return
	}

	if *benchTrJSON != "" {
		var progress io.Writer
		if !*quiet {
			progress = os.Stderr
			fmt.Fprintln(progress, "running tracing-overhead benchmarks (interleaved off/on pairs; this takes a minute)...")
		}
		data, err := experiments.RunTraceBenchJSON(progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		data = append(data, '\n')
		if *benchTrJSON == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*benchTrJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchTrJSON)
		}
		return
	}

	if *benchXmodJSON != "" {
		var progress io.Writer
		if !*quiet {
			progress = os.Stderr
			fmt.Fprintln(progress, "running cross-module DAG benchmarks (interleaved before/after pairs; this takes a minute)...")
		}
		data, err := experiments.RunXmoduleBenchJSON(progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		data = append(data, '\n')
		if *benchXmodJSON == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*benchXmodJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchXmodJSON)
		}
		return
	}

	if *xmodule {
		xres := experiments.RunXmoduleCorpus()
		fmt.Println(xres.Table())
		if len(xres.Failures) > 0 {
			fmt.Fprintf(os.Stderr, "modules failed to analyze: %v\n", xres.Failures)
			os.Exit(exitDegraded)
		}
		if xres.Mismatches > 0 || !xres.SummaryWinsEveryColumn() {
			os.Exit(exitMismatch)
		}
		return
	}

	all := !*summary && !*fig6 && !*fig7 && !*timing

	var res *experiments.CorpusResult
	if all || *summary || *fig6 || *fig7 {
		specs, err := loadCorpus()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		var progress *os.File
		if !*quiet {
			progress = os.Stderr
			fmt.Fprintf(progress, "analyzing %d driver modules in three modes...\n", len(specs))
		}
		start := time.Now()
		res = experiments.RunCorpus(context.Background(), experiments.CorpusOptions{
			Specs:         specs,
			Progress:      progress,
			ModuleTimeout: *moduleTimeout,
		})
		if !*quiet {
			fmt.Fprintf(progress, "done in %v\n", time.Since(start).Round(time.Millisecond))
			fmt.Fprintf(progress, "solver totals: %s\n\n", res.SolveStats)
		}
	}

	if *csvPath != "" && res != nil {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
	}

	if *failuresJSON != "" && res != nil {
		data, err := res.FailuresJSON(failureReportSlowest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		data = append(data, '\n')
		if *failuresJSON == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*failuresJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *failuresJSON)
		}
	}

	if all || *summary {
		fmt.Println(res.Summary())
		if *phases || all {
			if t := res.PhaseTable(); t != "" {
				fmt.Println(t)
			}
		}
	}
	if all || *fig6 {
		fmt.Println(res.Figure6())
	}
	if all || *fig7 {
		fmt.Println(res.Figure7())
	}
	if all || *timing {
		tr, err := experiments.Timing("ide_tape", *rounds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitError)
		}
		fmt.Println(tr.String())
	}
	if res != nil && res.Degraded() {
		fmt.Fprintln(os.Stderr, res.FailureSummary(failureReportSlowest))
		os.Exit(exitDegraded)
	}
	if res != nil && res.Mismatches > 0 {
		os.Exit(exitMismatch)
	}
}

// loadCorpus builds the generated corpus under a fault guard, so a
// generator panic reports as a structured failure instead of killing
// the process with a raw stack trace.
func loadCorpus() (specs []*drivergen.ModuleSpec, err error) {
	if fail := faults.Run("corpus", nil, func() error {
		specs = drivergen.Corpus()
		return nil
	}); fail != nil {
		return nil, fmt.Errorf("corpus generation failed: %s\n%s", fail.Message, fail.Stack)
	}
	return specs, nil
}

func dumpCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n, err := drivergen.WriteCorpus(func(name, contents string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(contents), 0o644)
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d modules to %s\n", n, dir)
	return nil
}
