// Command experiments regenerates every table and figure of the
// paper's Section 7 evaluation over the synthetic 589-module driver
// corpus:
//
//	experiments               # everything: summary, Figure 6, Figure 7, timing
//	experiments -summary      # E1 only
//	experiments -fig6         # Figure 6 only
//	experiments -fig7         # Figure 7 only
//	experiments -timing       # E4 only
//	experiments -dump DIR     # write the generated corpus sources to DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"localalias/internal/drivergen"
	"localalias/internal/experiments"
)

func main() {
	var (
		summary = flag.Bool("summary", false, "print only the Section 7 summary (E1)")
		fig6    = flag.Bool("fig6", false, "print only Figure 6 (E2)")
		fig7    = flag.Bool("fig7", false, "print only Figure 7 (E3)")
		timing  = flag.Bool("timing", false, "print only the timing comparison (E4)")
		rounds  = flag.Int("rounds", 5, "timing rounds for -timing")
		dump      = flag.String("dump", "", "write generated corpus sources to this directory and exit")
		csvPath   = flag.String("csv", "", "also write per-module results as CSV to this file")
		benchJSON = flag.String("bench-json", "", "run the solver benchmarks, write ns/op as JSON to this file (- for stdout), and exit")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *dump != "" {
		if err := dumpCorpus(*dump); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		if !*quiet {
			fmt.Fprintln(os.Stderr, "running solver benchmarks (this takes a few seconds per benchmark)...")
		}
		data, err := experiments.RunBenchJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *benchJSON == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *benchJSON)
		}
		return
	}

	all := !*summary && !*fig6 && !*fig7 && !*timing

	var res *experiments.CorpusResult
	if all || *summary || *fig6 || *fig7 {
		var progress *os.File
		if !*quiet {
			progress = os.Stderr
			fmt.Fprintf(progress, "analyzing %d driver modules in three modes...\n", drivergen.NumModules)
		}
		start := time.Now()
		res = experiments.RunCorpus(drivergen.Corpus(), progress)
		if !*quiet {
			fmt.Fprintf(progress, "done in %v\n", time.Since(start).Round(time.Millisecond))
			fmt.Fprintf(progress, "solver totals: %s\n\n", res.SolveStats)
		}
	}

	if *csvPath != "" && res != nil {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
	}

	if all || *summary {
		fmt.Println(res.Summary())
	}
	if all || *fig6 {
		fmt.Println(res.Figure6())
	}
	if all || *fig7 {
		fmt.Println(res.Figure7())
	}
	if all || *timing {
		tr, err := experiments.Timing("ide_tape", *rounds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(tr.String())
	}
	if res != nil && res.Mismatches > 0 {
		os.Exit(1)
	}
}

func dumpCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n, err := drivergen.WriteCorpus(func(name, contents string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(contents), 0o644)
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d modules to %s\n", n, dir)
	return nil
}
