package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestSplitCommand(t *testing.T) {
	cases := []struct {
		name string
		in   []string
		cmd  string
		rest []string
	}{
		{"flags after", []string{"qual", "-json", "f.mc"}, "qual", []string{"-json", "f.mc"}},
		{"flags before", []string{"-json", "qual", "f.mc"}, "qual", []string{"-json", "f.mc"}},
		{"flags both sides", []string{"-json", "qual", "-general", "f.mc"}, "qual", []string{"-json", "-general", "f.mc"}},
		{"no flags", []string{"fmt", "f.mc"}, "fmt", []string{"f.mc"}},
		{"run with negative arg", []string{"run", "f.mc", "-3"}, "run", []string{"f.mc", "-3"}},
		{"value flag before", []string{"-trace-out", "t.json", "check", "f.mc"}, "check", []string{"-trace-out", "t.json", "f.mc"}},
		{"value flag with equals before", []string{"-trace-out=t.json", "check", "f.mc"}, "check", []string{"-trace-out=t.json", "f.mc"}},
		{"value flag then bool flag before", []string{"-trace-out", "t.json", "-json", "qual", "f.mc"}, "qual", []string{"-trace-out", "t.json", "-json", "f.mc"}},
		{"typo stays the subcommand", []string{"-trace-out", "t.json", "chek", "f.mc"}, "t.json", []string{"-trace-out", "chek", "f.mc"}},
		{"gateway with backends", []string{"gateway", "-backends", "http://a,http://b"}, "gateway", []string{"-backends", "http://a,http://b"}},
		{"remote flag before subcommand", []string{"-remote", "http://h:1", "check", "f.mc"}, "check", []string{"-remote", "http://h:1", "f.mc"}},
		{"bench with flags", []string{"bench", "-remote", "http://h:1", "-rps", "50"}, "bench", []string{"-remote", "http://h:1", "-rps", "50"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd, rest, err := splitCommand(tc.in)
			if err != nil {
				t.Fatalf("splitCommand(%v) error: %v", tc.in, err)
			}
			if cmd != tc.cmd || !reflect.DeepEqual(rest, tc.rest) {
				t.Errorf("splitCommand(%v) = %q, %v; want %q, %v", tc.in, cmd, rest, tc.cmd, tc.rest)
			}
		})
	}
}

func TestSplitCommandErrors(t *testing.T) {
	_, _, err := splitCommand([]string{"-json"})
	if err == nil {
		t.Fatal("expected an error for a flag with no subcommand")
	}
	// The error must name the stranded flag and the valid subcommands.
	for _, want := range []string{"-json", "qual"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}

	if _, _, err := splitCommand(nil); err == nil {
		t.Fatal("expected an error for an empty command line")
	}
}
