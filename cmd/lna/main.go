// Command lna (Local Non-Aliasing) is the command-line front end to
// the restrict/confine toolkit:
//
//	lna check FILE          verify restrict/confine annotations (§4, §6.1)
//	lna infer FILE          restrict inference: print the program with
//	                        every let that can become restrict marked (§5)
//	lna confine FILE        confine inference: print the program with
//	                        inferred confines inserted (§6, §7)
//	lna qual FILE           three-mode locking analysis of one module (§7)
//	lna fmt FILE            print the program in canonical form
//	lna run FILE [ARGS...]  interpret FILE's main(int args...) (§3.2)
//
// Flags after the subcommand:
//
//	-params    also infer restrict on ref-typed parameters
//	-general   exhaustive confine scope search instead of the heuristic
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"localalias/internal/ast"
	"localalias/internal/core"
	"localalias/internal/experiments"
	"localalias/internal/interp"
	"localalias/internal/qual"
	"localalias/internal/restrict"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	params := fs.Bool("params", false, "also infer restrict on ref-typed parameters")
	general := fs.Bool("general", false, "exhaustive confine scope search")
	liberal := fs.Bool("liberal", false, "check with the liberal §5 restrict-effect semantics")
	asJSON := fs.Bool("json", false, "qual: emit the three-mode report as JSON")
	_ = fs.Parse(os.Args[2:])
	args := fs.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	mod, err := core.LoadModule(args[0], string(src))
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "check":
		r := restrict.CheckWith(mod.TInfo, mod.Diags, restrict.CheckOptions{Liberal: *liberal})
		fmt.Print(mod.Diags.RenderAll())
		if r.OK() {
			fmt.Println("ok: all restrict/confine annotations verified")
			if r.UsedFigure5 {
				fmt.Println("(checked with the O(kn) Figure 5 algorithm)")
			}
		} else {
			os.Exit(1)
		}

	case "infer":
		r := mod.InferRestrict(*params)
		fmt.Print(r.Summary())
		fmt.Println("--- annotated program ---")
		_ = ast.Fprint(os.Stdout, mod.Prog)
		if len(r.Violations) > 0 {
			os.Exit(1)
		}

	case "confine":
		lr, err := mod.AnalyzeLocking(core.LockingOptions{General: *general})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("confine inference: planted %d candidate(s), kept %d\n",
			lr.Confine.Planted, len(lr.Confine.Kept))
		fmt.Println("--- transformed program ---")
		_ = ast.Fprint(os.Stdout, mod.Prog)

	case "qual":
		lr, err := mod.AnalyzeLocking(core.LockingOptions{General: *general})
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			if err := writeJSONReport(os.Stdout, mod, lr); err != nil {
				fatal(err)
			}
			return
		}
		report := func(name string, r *qual.Report) {
			fmt.Printf("%-18s %3d type error(s) at %d lock-op site(s)\n",
				name+":", r.NumErrors(), r.NumSites)
			for _, e := range r.Errors {
				pos := mod.Prog.File.Position(e.Site.Start)
				fmt.Printf("    %s: %s\n", pos, e.String())
			}
		}
		report("no confine", lr.NoConfine)
		report("confine inference", lr.WithConfine)
		report("all-strong bound", lr.AllStrong)

	case "fmt":
		_ = ast.Fprint(os.Stdout, mod.Prog)

	case "run":
		var vals []interp.Value
		for _, a := range args[1:] {
			n, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				fatal(fmt.Errorf("argument %q is not an integer", a))
			}
			vals = append(vals, n)
		}
		in := interp.New(mod.TInfo, interp.Options{Out: os.Stdout})
		v, err := in.Call("main", vals...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=> %s\n", interp.FormatValue(v))

	case "timing":
		tr, err := experiments.Timing(args[0], 5)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.String())

	default:
		usage()
		os.Exit(2)
	}
}

// jsonError is one site error in -json output.
type jsonError struct {
	Pos  string `json:"pos"`
	Op   string `json:"op"`
	Want string `json:"want"`
	Got  string `json:"got"`
}

func jsonErrors(mod *core.Module, r *qual.Report) []jsonError {
	out := []jsonError{}
	for _, e := range r.Errors {
		out = append(out, jsonError{
			Pos:  mod.Prog.File.Position(e.Site.Start).String(),
			Op:   e.Op,
			Want: e.Want.String(),
			Got:  e.Got.String(),
		})
	}
	return out
}

func writeJSONReport(w io.Writer, mod *core.Module, lr *core.LockingResult) error {
	payload := map[string]any{
		"module":     mod.Name,
		"sites":      lr.NoConfine.NumSites,
		"planted":    lr.Confine.Planted,
		"kept":       len(lr.Confine.Kept),
		"potential":  lr.Potential(),
		"eliminated": lr.Eliminated(),
		"modes": map[string]any{
			"no_confine":        jsonErrors(mod, lr.NoConfine),
			"confine_inference": jsonErrors(mod, lr.WithConfine),
			"all_strong":        jsonErrors(mod, lr.AllStrong),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lna:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lna <check|infer|confine|qual|fmt|run> [flags] FILE [args...]`)
}
