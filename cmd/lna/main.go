// Command lna (Local Non-Aliasing) is the command-line front end to
// the restrict/confine toolkit:
//
//	lna check FILE          verify restrict/confine annotations (§4, §6.1)
//	lna infer FILE          restrict inference: print the program with
//	                        every let that can become restrict marked (§5)
//	lna confine FILE        confine inference: print the program with
//	                        inferred confines inserted (§6, §7)
//	lna qual FILE           three-mode locking analysis of one module (§7)
//	lna fmt FILE            print the program in canonical form
//	lna run FILE [ARGS...]  interpret FILE's main(int args...) (§3.2)
//	lna timing MODULE       E4 timing comparison for one corpus module
//
// Flags may appear before or after the subcommand (`lna -json qual
// f.mc` and `lna qual -json f.mc` are equivalent):
//
//	-params    also infer restrict on ref-typed parameters
//	-general   exhaustive confine scope search instead of the heuristic
//	-liberal   check with the liberal §5 restrict-effect semantics
//	-json      qual: emit the three-mode report as JSON
//
// A panic anywhere in the analysis pipeline is reported as a
// positioned internal-error diagnostic naming the failing phase, not
// a raw Go stack trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"localalias/internal/ast"
	"localalias/internal/core"
	"localalias/internal/experiments"
	"localalias/internal/faults"
	"localalias/internal/interp"
	"localalias/internal/qual"
	"localalias/internal/restrict"
)

// subcommands names every lna subcommand, for validation and the
// misplaced-flag error.
var subcommands = []string{"check", "infer", "confine", "qual", "fmt", "run", "timing"}

// splitCommand locates the subcommand in the raw argument list: the
// first token that is not a flag. Flags on either side of it are
// collected, in order, for the flag parser (the parser itself stops
// at the first positional argument, so trailing interpreter arguments
// like `lna run f.mc -3` still pass through untouched). When every
// token is a flag, the error names the first one so the user sees
// which flag stranded the command line.
func splitCommand(args []string) (cmd string, rest []string, err error) {
	for i, a := range args {
		if strings.HasPrefix(a, "-") && a != "-" && a != "--" {
			continue
		}
		rest = append(append(rest, args[:i]...), args[i+1:]...)
		return a, rest, nil
	}
	if len(args) > 0 {
		return "", nil, fmt.Errorf("found flag %s but no subcommand (expected one of %s)",
			args[0], strings.Join(subcommands, "|"))
	}
	return "", nil, fmt.Errorf("no subcommand given")
}

func main() {
	cmd, rest, err := splitCommand(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "lna:", err)
		usage()
		os.Exit(2)
	}
	known := false
	for _, s := range subcommands {
		known = known || s == cmd
	}
	if !known {
		fmt.Fprintf(os.Stderr, "lna: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	params := fs.Bool("params", false, "also infer restrict on ref-typed parameters")
	general := fs.Bool("general", false, "exhaustive confine scope search")
	liberal := fs.Bool("liberal", false, "check with the liberal §5 restrict-effect semantics")
	asJSON := fs.Bool("json", false, "qual: emit the three-mode report as JSON")
	if err := fs.Parse(rest); err != nil {
		// The flag package has already printed the offending flag and
		// the flag set's usage.
		os.Exit(2)
	}
	args := fs.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}

	if cmd == "timing" {
		tr, err := experiments.Timing(args[0], 5)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.String())
		return
	}

	file := args[0]
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	// Run the whole pipeline under the fault guard: a panic in any
	// phase becomes a structured failure reported below, after any
	// positioned diagnostics accumulated before the fault.
	tr := faults.NewTrace(file)
	var mod *core.Module
	fail := faults.Run(file, tr, func() error {
		m, err := core.LoadModuleTraced(file, string(src), tr)
		if err != nil {
			return err
		}
		mod = m
		return runCommand(cmd, mod, args, options{
			params:  *params,
			general: *general,
			liberal: *liberal,
			asJSON:  *asJSON,
		})
	})
	if fail == nil {
		return
	}
	if fail.Kind == faults.KindPanic {
		if mod != nil {
			fmt.Print(mod.Diags.RenderAll())
		}
		fmt.Fprintf(os.Stderr, "lna: %s: internal error during %s: panic: %s\n",
			file, fail.Phase, fail.Message)
		if top := faults.TopFrame(fail.Stack); top != "" {
			fmt.Fprintf(os.Stderr, "    at %s\n", top)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "lna:", fail.Message)
	os.Exit(1)
}

// options carries the parsed flags into the subcommand bodies.
type options struct {
	params, general, liberal, asJSON bool
}

// runCommand executes one per-file subcommand. It runs inside the
// fault guard, so it may panic-free return an error (reported like
// any analysis failure) or exit directly for expected non-zero
// outcomes such as verification failures.
func runCommand(cmd string, mod *core.Module, args []string, opt options) error {
	switch cmd {
	case "check":
		r := restrict.CheckWith(mod.TInfo, mod.Diags, restrict.CheckOptions{Liberal: opt.liberal})
		fmt.Print(mod.Diags.RenderAll())
		if r.OK() {
			fmt.Println("ok: all restrict/confine annotations verified")
			if r.UsedFigure5 {
				fmt.Println("(checked with the O(kn) Figure 5 algorithm)")
			}
		} else {
			os.Exit(1)
		}

	case "infer":
		r := mod.InferRestrict(opt.params)
		fmt.Print(r.Summary())
		fmt.Println("--- annotated program ---")
		_ = ast.Fprint(os.Stdout, mod.Prog)
		if len(r.Violations) > 0 {
			os.Exit(1)
		}

	case "confine":
		lr, err := mod.AnalyzeLocking(core.LockingOptions{General: opt.general})
		if err != nil {
			return err
		}
		fmt.Printf("confine inference: planted %d candidate(s), kept %d\n",
			lr.Confine.Planted, len(lr.Confine.Kept))
		fmt.Println("--- transformed program ---")
		_ = ast.Fprint(os.Stdout, mod.Prog)

	case "qual":
		lr, err := mod.AnalyzeLocking(core.LockingOptions{General: opt.general})
		if err != nil {
			return err
		}
		if opt.asJSON {
			return writeJSONReport(os.Stdout, mod, lr)
		}
		report := func(name string, r *qual.Report) {
			fmt.Printf("%-18s %3d type error(s) at %d lock-op site(s)\n",
				name+":", r.NumErrors(), r.NumSites)
			for _, e := range r.Errors {
				pos := mod.Prog.File.Position(e.Site.Start)
				fmt.Printf("    %s: %s\n", pos, e.String())
			}
		}
		report("no confine", lr.NoConfine)
		report("confine inference", lr.WithConfine)
		report("all-strong bound", lr.AllStrong)

	case "fmt":
		_ = ast.Fprint(os.Stdout, mod.Prog)

	case "run":
		var vals []interp.Value
		for _, a := range args[1:] {
			n, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				return fmt.Errorf("argument %q is not an integer", a)
			}
			vals = append(vals, n)
		}
		in := interp.New(mod.TInfo, interp.Options{Out: os.Stdout})
		v, err := in.Call("main", vals...)
		if err != nil {
			return err
		}
		fmt.Printf("=> %s\n", interp.FormatValue(v))
	}
	return nil
}

// jsonError is one site error in -json output.
type jsonError struct {
	Pos  string `json:"pos"`
	Op   string `json:"op"`
	Want string `json:"want"`
	Got  string `json:"got"`
}

func jsonErrors(mod *core.Module, r *qual.Report) []jsonError {
	out := []jsonError{}
	for _, e := range r.Errors {
		out = append(out, jsonError{
			Pos:  mod.Prog.File.Position(e.Site.Start).String(),
			Op:   e.Op,
			Want: e.Want.String(),
			Got:  e.Got.String(),
		})
	}
	return out
}

func writeJSONReport(w io.Writer, mod *core.Module, lr *core.LockingResult) error {
	payload := map[string]any{
		"module":     mod.Name,
		"sites":      lr.NoConfine.NumSites,
		"planted":    lr.Confine.Planted,
		"kept":       len(lr.Confine.Kept),
		"potential":  lr.Potential(),
		"eliminated": lr.Eliminated(),
		"modes": map[string]any{
			"no_confine":        jsonErrors(mod, lr.NoConfine),
			"confine_inference": jsonErrors(mod, lr.WithConfine),
			"all_strong":        jsonErrors(mod, lr.AllStrong),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lna:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lna [flags] <check|infer|confine|qual|fmt|run|timing> [flags] FILE [args...]`)
}
