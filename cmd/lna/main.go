// Command lna (Local Non-Aliasing) is the command-line front end to
// the restrict/confine toolkit:
//
//	lna check FILE          verify restrict/confine annotations (§4, §6.1)
//	lna infer FILE          restrict inference: print the program with
//	                        every let that can become restrict marked (§5)
//	lna confine FILE        confine inference: print the program with
//	                        inferred confines inserted (§6, §7)
//	lna qual FILE           three-mode locking analysis of one module (§7)
//	lna fmt FILE            print the program in canonical form
//	lna run FILE [ARGS...]  interpret FILE's main(int args...) (§3.2)
//	lna timing MODULE       E4 timing comparison for one corpus module
//	lna serve               long-running analysis daemon (HTTP/JSON)
//	lna gateway             distributed front over N serve replicas:
//	                        consistent-hash routing by cache key, health
//	                        checks, retries, hedging, admission control
//	lna bench               open-loop load generator against a daemon
//	                        or gateway (-remote), reporting p50/p95/p99
//	lna trace fetch ID      assemble one distributed trace: pull the
//	                        fragment from -remote plus (via /v1/fleet)
//	                        every replica's fragment, merged into one
//	                        Chrome trace_event file (-o FILE)
//	lna top                 one-shot fleet status table from a
//	                        gateway's /v1/fleet (-remote; degrades to
//	                        /v1/stats against a plain daemon)
//
// Flags may appear before or after the subcommand (`lna -json qual
// f.mc` and `lna qual -json f.mc` are equivalent):
//
//	-params    also infer restrict on ref-typed parameters
//	-general   exhaustive confine scope search instead of the heuristic
//	-liberal   check with the liberal §5 restrict-effect semantics
//	-json      emit the canonical service.AnalyzeResponse as JSON
//	           (check/infer/confine/qual)
//	-trace-out FILE  write a Chrome trace_event JSON file of the
//	           request's phase spans (check/infer/confine/qual);
//	           open it at chrome://tracing or https://ui.perfetto.dev
//	-remote URL  send the request to a running daemon or gateway
//	           instead of analyzing in-process; with -json the server's
//	           response bytes are relayed verbatim
//	-lib FILE  library module for cross-module analysis (repeatable;
//	           confine/qual only). The module's import name is the
//	           file's base name without extension, so `-lib dir/xio.mc`
//	           satisfies `import "xio"`. A missing package or an import
//	           cycle is a finding (exit 1), reported with the uniform
//	           "import error" text on stderr
//
// Gateway flags:
//
//	-addr            listen address (shared with serve)
//	-backends        comma-separated backend base URLs (required)
//	-health-interval period between backend health sweeps
//	-hedge-after     hedge a request against the ring successor after
//	                 this long (0 = off)
//	-retries         reroute attempts after the owning backend fails
//	-max-inflight    admission cap on concurrently forwarded requests
//
// Bench flags (target set with -remote):
//
//	-rps       open-loop target arrival rate
//	-duration  how long to schedule arrivals
//	-replay    warm the target first; the run then measures cache hits
//	-modules   corpus modules in the workload (0 = all 589)
//	-json      emit the report as JSON instead of the summary
//
// Serve flags:
//
//	-addr            listen address (default 127.0.0.1:8347; port 0
//	                 picks a free port, printed on startup)
//	-workers         analysis pool size (0 = GOMAXPROCS)
//	-solver-workers  constraint-solver goroutines per module
//	                 (default 1 = sequential; results identical)
//	-cache-entries   LRU result-cache capacity
//	-queue-depth     max in-flight single requests before 429
//	-request-timeout per-module analysis deadline
//	-log-format      access-log rendering: text (default), json, or off
//	-debug-addr      optional second listener exposing /debug/pprof/*
//	                 and a Prometheus /metrics scrape (default off;
//	                 bind loopback only — it is unauthenticated)
//
// The analysis subcommands and the daemon share one engine and one
// response shape (package service): `lna check -json FILE` emits
// byte-for-byte the JSON that POST /v1/analyze returns for the same
// module. Exit codes follow the shared policy: 0 clean, 1 findings,
// 2 usage/IO error, 3 degraded (a contained panic, timeout, or
// internal inconsistency — reported as a structured failure, never a
// raw Go stack trace).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"localalias/internal/ast"
	"localalias/internal/core"
	"localalias/internal/experiments"
	"localalias/internal/faults"
	"localalias/internal/gateway"
	"localalias/internal/interp"
	"localalias/internal/obs"
	"localalias/internal/service"
)

// subcommands names every lna subcommand, for validation and the
// misplaced-flag error.
var subcommands = []string{"check", "infer", "confine", "qual", "fmt", "run", "timing", "serve", "gateway", "bench", "trace", "top"}

// analysisModes are the subcommands served by the shared service
// engine (and therefore by `lna serve`).
var analysisModes = map[string]bool{"check": true, "infer": true, "confine": true, "qual": true}

// splitCommand locates the subcommand in the raw argument list: the
// first token that is not a flag. Flags on either side of it are
// collected, in order, for the flag parser (the parser itself stops
// at the first positional argument, so trailing interpreter arguments
// like `lna run f.mc -3` still pass through untouched). When every
// token is a flag, the error names the first one so the user sees
// which flag stranded the command line.
func splitCommand(args []string) (cmd string, rest []string, err error) {
	known := make(map[string]bool, len(subcommands))
	for _, s := range subcommands {
		known[s] = true
	}
	isFlag := func(a string) bool {
		return strings.HasPrefix(a, "-") && a != "-" && a != "--"
	}
	for i, a := range args {
		if isFlag(a) {
			continue
		}
		if !known[a] && i > 0 && isFlag(args[i-1]) && !strings.Contains(args[i-1], "=") {
			// A bare token right after a `=`-less flag may be that
			// flag's value (`lna -trace-out out.json check f.mc`).
			// If a known subcommand appears later, keep this token
			// with its flag and split there instead.
			for j := i + 1; j < len(args); j++ {
				if known[args[j]] {
					rest = append(append(rest, args[:j]...), args[j+1:]...)
					return args[j], rest, nil
				}
			}
		}
		rest = append(append(rest, args[:i]...), args[i+1:]...)
		return a, rest, nil
	}
	if len(args) > 0 {
		return "", nil, fmt.Errorf("found flag %s but no subcommand (expected one of %s)",
			args[0], strings.Join(subcommands, "|"))
	}
	return "", nil, fmt.Errorf("no subcommand given")
}

// libList collects the repeatable -lib flag.
type libList []string

func (l *libList) String() string     { return strings.Join(*l, ",") }
func (l *libList) Set(v string) error { *l = append(*l, v); return nil }

// options carries the parsed flags into the subcommand bodies.
type options struct {
	params, general, liberal, asJSON bool
	traceOut                         string
	libs                             libList

	addr           string
	workers        int
	solverWorkers  int
	cacheEntries   int
	memoEntries    int
	queueDepth     int
	requestTimeout time.Duration
	logFormat      string
	debugAddr      string
	traceEntries   int

	remote string

	backends       string
	healthInterval time.Duration
	hedgeAfter     time.Duration
	retries        int
	maxInflight    int

	rps          float64
	duration     time.Duration
	replay       bool
	benchModules int

	out string
}

func main() {
	cmd, rest, err := splitCommand(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "lna:", err)
		usage()
		os.Exit(service.ExitUsage)
	}
	known := false
	for _, s := range subcommands {
		known = known || s == cmd
	}
	if !known {
		fmt.Fprintf(os.Stderr, "lna: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(service.ExitUsage)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	var opt options
	fs.BoolVar(&opt.params, "params", false, "also infer restrict on ref-typed parameters")
	fs.BoolVar(&opt.general, "general", false, "exhaustive confine scope search")
	fs.BoolVar(&opt.liberal, "liberal", false, "check with the liberal §5 restrict-effect semantics")
	fs.BoolVar(&opt.asJSON, "json", false, "emit the canonical AnalyzeResponse as JSON")
	fs.StringVar(&opt.traceOut, "trace-out", "", "write a Chrome trace_event JSON file of the request's phase spans")
	fs.Var(&opt.libs, "lib", "library module file for cross-module analysis (repeatable; confine/qual only; import name = base name without extension)")
	fs.StringVar(&opt.addr, "addr", "127.0.0.1:8347", "serve: listen address (port 0 picks a free port)")
	fs.IntVar(&opt.workers, "workers", 0, "serve: analysis pool size (0 = GOMAXPROCS)")
	fs.IntVar(&opt.solverWorkers, "solver-workers", 1, "serve: constraint-solver goroutines per module (<=1 = sequential; results identical)")
	fs.IntVar(&opt.cacheEntries, "cache-entries", service.DefaultCacheEntries, "serve: LRU result-cache capacity")
	fs.IntVar(&opt.memoEntries, "memo-entries", 0, "serve: solve-component summary memo capacity for incremental re-analysis (0 = default; negative disables)")
	fs.IntVar(&opt.queueDepth, "queue-depth", 0, "serve: max in-flight single requests before 429 (0 = 4×workers)")
	fs.DurationVar(&opt.requestTimeout, "request-timeout", service.DefaultRequestTimeout, "serve: per-module analysis deadline")
	fs.StringVar(&opt.logFormat, "log-format", "text", "serve: access-log rendering (text|json|off)")
	fs.StringVar(&opt.debugAddr, "debug-addr", "", "serve: optional pprof+metrics listener (empty = off)")
	fs.IntVar(&opt.traceEntries, "trace-entries", 0, "serve/gateway: in-memory ring of completed traces for /v1/trace/{id} (0 = default 256; negative disables tracing)")
	fs.StringVar(&opt.remote, "remote", "", "send the analysis to this daemon or gateway base URL instead of running in-process (check/infer/confine/qual; bench target)")
	fs.StringVar(&opt.backends, "backends", "", "gateway: comma-separated backend base URLs (required)")
	fs.DurationVar(&opt.healthInterval, "health-interval", gateway.DefaultHealthInterval, "gateway: period between backend health sweeps")
	fs.DurationVar(&opt.hedgeAfter, "hedge-after", 0, "gateway: hedge a single-module request against the ring successor after this long (0 = off)")
	fs.IntVar(&opt.retries, "retries", gateway.DefaultRetries, "gateway: reroute attempts after the owning backend fails (per request)")
	fs.IntVar(&opt.maxInflight, "max-inflight", gateway.DefaultMaxInflight, "gateway: admission-control cap on concurrently forwarded requests")
	fs.Float64Var(&opt.rps, "rps", 50, "bench: open-loop target arrival rate")
	fs.DurationVar(&opt.duration, "duration", benchDuration, "bench: how long to schedule arrivals")
	fs.BoolVar(&opt.replay, "replay", false, "bench: warm the target with one untimed pass first, so the run measures replayed (cache-hit) traffic")
	fs.IntVar(&opt.benchModules, "modules", 120, "bench: corpus modules in the replayed workload (0 = all)")
	fs.StringVar(&opt.out, "o", "", "trace fetch: output file (default <id>.trace.json)")
	if err := fs.Parse(rest); err != nil {
		// The flag package has already printed the offending flag and
		// the flag set's usage.
		os.Exit(service.ExitUsage)
	}
	args := fs.Args()

	switch {
	case cmd == "serve":
		os.Exit(runServe(opt))
	case cmd == "gateway":
		os.Exit(runGateway(opt))
	case cmd == "bench":
		os.Exit(runBench(opt))
	case cmd == "trace":
		os.Exit(runTraceFetch(opt, args))
	case cmd == "top":
		os.Exit(runTop(opt))
	case cmd == "timing":
		if len(args) < 1 {
			usage()
			os.Exit(service.ExitUsage)
		}
		tr, err := experiments.Timing(args[0], 5)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tr.String())
		return
	}

	if len(args) < 1 {
		usage()
		os.Exit(service.ExitUsage)
	}
	file := args[0]
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	if len(opt.libs) > 0 && cmd != "confine" && cmd != "qual" {
		fmt.Fprintf(os.Stderr, "lna: -lib is only supported with confine and qual (got %s)\n", cmd)
		os.Exit(service.ExitUsage)
	}

	if analysisModes[cmd] {
		if opt.remote != "" {
			os.Exit(runRemoteAnalysis(cmd, file, string(src), opt))
		}
		os.Exit(runAnalysis(cmd, file, string(src), opt))
	}
	os.Exit(runLocal(cmd, file, string(src), args))
}

// loadLibraries reads every -lib file into a LibrarySource. The import
// name a library satisfies is its base name without extension, so a
// module can say `import "xio"` and the user can say `-lib dir/xio.mc`.
func loadLibraries(libs []string) ([]service.LibrarySource, error) {
	out := make([]service.LibrarySource, 0, len(libs))
	for _, path := range libs {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(path)
		name := strings.TrimSuffix(base, filepath.Ext(base))
		out = append(out, service.LibrarySource{Name: name, Source: string(src)})
	}
	return out, nil
}

// reportImportErrors prints the uniform cross-module error lines on
// stderr: one "import error" line per missing package or import
// cycle, so scripts can grep one prefix regardless of which of the
// two failures occurred. The diagnostics themselves (and the exit
// code — these are findings, exit 1) are unchanged.
func reportImportErrors(resp *service.AnalyzeResponse) {
	for _, d := range resp.Diagnostics.Diags {
		if d.Severity != "error" {
			continue
		}
		if strings.HasPrefix(d.Message, "cannot resolve import") ||
			strings.HasPrefix(d.Message, "import cycle") ||
			strings.Contains(d.Message, "duplicate module name") {
			pos := d.Pos
			if pos == "" {
				pos = resp.Module
			}
			fmt.Fprintf(os.Stderr, "lna: import error at %s: %s\n", pos, d.Message)
		}
	}
}

// runAnalysis drives check/infer/confine/qual through the shared
// service engine — the same code path `lna serve` and the experiment
// driver use — and renders the response for humans or as canonical
// JSON. The returned exit code follows the shared policy table.
func runAnalysis(cmd, file, src string, opt options) int {
	req := &service.AnalyzeRequest{
		Module: file,
		Source: src,
		Options: service.AnalyzeOptions{
			Mode:    cmd,
			General: opt.general,
			Params:  opt.params,
			Liberal: opt.liberal,
		},
	}
	if len(opt.libs) > 0 {
		libs, err := loadLibraries(opt.libs)
		if err != nil {
			fatal(err)
		}
		req.Options.MultiModule = true
		req.Options.Libraries = libs
	}
	if opt.traceOut != "" {
		req.Obs = obs.NewTrace(file)
	}
	resp := service.Analyze(context.Background(), req)
	if opt.traceOut != "" {
		if err := writeTrace(opt.traceOut, req.Obs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "lna: trace %s written to %s\n", req.Obs.ID(), opt.traceOut)
	}
	if opt.asJSON {
		data, err := resp.MarshalCanonical()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		return resp.ExitCode()
	}
	renderResponse(cmd, resp)
	return resp.ExitCode()
}

// writeTrace exports one request's spans as Chrome trace_event JSON.
func writeTrace(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// renderResponse prints the human-readable report for one analysis
// response: positioned diagnostics with excerpts first, then the
// mode-specific report, then (on stderr) any contained failure.
func renderResponse(cmd string, resp *service.AnalyzeResponse) {
	if resp.Raw != nil {
		fmt.Print(resp.Raw.RenderAll())
	}
	reportImportErrors(resp)
	switch {
	case resp.Failure != nil:
		f := resp.Failure
		if f.Kind == faults.KindPanic {
			fmt.Fprintf(os.Stderr, "lna: %s: internal error during %s: panic: %s\n",
				resp.Module, f.Phase, f.Message)
			if top := faults.TopFrame(f.Stack); top != "" {
				fmt.Fprintf(os.Stderr, "    at %s\n", top)
			}
		} else {
			fmt.Fprintf(os.Stderr, "lna: %s\n", f.Error())
		}
		return
	case resp.Check != nil:
		if resp.Check.OK {
			fmt.Println("ok: all restrict/confine annotations verified")
			if resp.Check.UsedFigure5 {
				fmt.Println("(checked with the O(kn) Figure 5 algorithm)")
			}
		}
	case resp.Infer != nil:
		fmt.Printf("restrict inference: %d of %d candidates restricted\n",
			resp.Infer.Restricted, resp.Infer.Candidates)
		for _, m := range resp.Infer.Marked {
			fmt.Printf("  restrict %s\n", m)
		}
		for _, r := range resp.Infer.Rejected {
			fmt.Printf("  keep     %s\n", r)
		}
		fmt.Println("--- annotated program ---")
		fmt.Print(resp.Program)
	case cmd == "confine" && resp.Locking != nil:
		fmt.Printf("confine inference: planted %d candidate(s), kept %d\n",
			resp.Locking.Planted, resp.Locking.Kept)
		fmt.Println("--- transformed program ---")
		fmt.Print(resp.Program)
	case resp.Locking != nil:
		report := func(name string, r service.ModeReport) {
			fmt.Printf("%-18s %3d type error(s) at %d lock-op site(s)\n",
				name+":", r.NumErrors, resp.Locking.Sites)
			for _, e := range r.Errors {
				fmt.Printf("    %s: %s\n", e.Pos, e.Message)
			}
		}
		report("no confine", resp.Locking.NoConfine)
		report("confine inference", resp.Locking.WithConfine)
		report("all-strong bound", resp.Locking.AllStrong)
	}
}

// runServe starts the resident analysis daemon and blocks until
// SIGINT/SIGTERM, then drains gracefully.
func runServe(opt options) int {
	so := service.ServerOptions{
		Workers:        opt.workers,
		SolverWorkers:  opt.solverWorkers,
		CacheEntries:   opt.cacheEntries,
		MemoEntries:    opt.memoEntries,
		QueueDepth:     opt.queueDepth,
		RequestTimeout: opt.requestTimeout,
		TraceEntries:   opt.traceEntries,
	}
	switch opt.logFormat {
	case "off":
		// no access log
	case service.LogText, service.LogJSON:
		so.AccessLog = os.Stderr
		so.LogFormat = opt.logFormat
	default:
		fmt.Fprintf(os.Stderr, "lna: serve: unknown -log-format %q (want text|json|off)\n", opt.logFormat)
		return service.ExitUsage
	}
	srv := service.NewServer(so)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if opt.debugAddr != "" {
		// The debug listener exposes pprof profiles and the Prometheus
		// scrape on a separate, opt-in port so the service port never
		// serves unauthenticated profiling data.
		dln, err := net.Listen("tcp", opt.debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lna: serve: debug listener:", err)
			return service.ExitUsage
		}
		fmt.Printf("lna serve debug listening on http://%s (pprof + metrics)\n", dln.Addr())
		dsrv := &http.Server{Handler: obs.DebugHandler()}
		go func() { _ = dsrv.Serve(dln) }()
		defer dsrv.Close()
	}
	err := srv.ListenAndServe(ctx, opt.addr, func(bound string) {
		o := srv.Options()
		fmt.Printf("lna serve listening on http://%s (workers=%d cache=%d queue=%d timeout=%v)\n",
			bound, o.Workers, o.CacheEntries, o.QueueDepth, o.RequestTimeout)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lna: serve:", err)
		return service.ExitUsage
	}
	cs := srv.CacheStats()
	fmt.Printf("lna serve drained (cache: %d hits, %d misses, %d evictions)\n",
		cs.Hits, cs.Misses, cs.Evictions)
	return service.ExitClean
}

// runLocal executes the subcommands that do not go through the
// analysis engine (fmt, run) under the fault guard, so a panic still
// degrades to a structured report.
func runLocal(cmd, file, src string, args []string) int {
	tr := faults.NewTrace(file)
	var mod *core.Module
	code := service.ExitClean
	fail := faults.Run(file, tr, func() error {
		m, err := core.LoadModuleTraced(file, src, tr)
		mod = m
		if err != nil {
			return err
		}
		switch cmd {
		case "fmt":
			_ = ast.Fprint(os.Stdout, mod.Prog)
		case "run":
			var vals []interp.Value
			for _, a := range args[1:] {
				n, err := strconv.ParseInt(a, 10, 64)
				if err != nil {
					return fmt.Errorf("argument %q is not an integer", a)
				}
				vals = append(vals, n)
			}
			in := interp.New(mod.TInfo, interp.Options{Out: os.Stdout})
			v, err := in.Call("main", vals...)
			if err != nil {
				return err
			}
			fmt.Printf("=> %s\n", interp.FormatValue(v))
		}
		return nil
	})
	if fail == nil {
		return code
	}
	if fail.Kind == faults.KindPanic {
		if mod != nil {
			fmt.Print(mod.Diags.RenderAll())
		}
		fmt.Fprintf(os.Stderr, "lna: %s: internal error during %s: panic: %s\n",
			file, fail.Phase, fail.Message)
		if top := faults.TopFrame(fail.Stack); top != "" {
			fmt.Fprintf(os.Stderr, "    at %s\n", top)
		}
		return service.ExitDegraded
	}
	fmt.Fprintln(os.Stderr, "lna:", fail.Message)
	return service.ExitFindings
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lna:", err)
	os.Exit(service.ExitUsage)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lna [flags] <check|infer|confine|qual|fmt|run|timing|serve|gateway|bench|trace|top> [flags] [FILE] [args...]`)
}
