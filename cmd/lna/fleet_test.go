package main

// Process-level fleet observability tests: a real gateway over two
// real `lna serve` replicas, traced end to end, with the merged
// Chrome trace assembled by the real `lna trace fetch` subcommand.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localalias/internal/service"
)

// chromeDoc is the merged trace's schema. Decoding with
// DisallowUnknownFields makes this the golden structural contract: a
// field added to (or renamed in) the export format fails here, not in
// a trace viewer months later.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestFleetTraceSmoke is the CI fleet-trace exercise: one analyze
// request through a two-replica fleet, then `lna trace fetch` must
// merge the gateway's and the serving replica's fragments into one
// Chrome trace whose replica spans parent under the gateway's attempt
// span. `lna top` must render the same fleet in one shot.
func TestFleetTraceSmoke(t *testing.T) {
	bins := binaries(t)
	baseA, shutdownA := startServe(t, bins["lna"])
	defer shutdownA()
	baseB, shutdownB := startServe(t, bins["lna"])
	defer shutdownB()
	gw, shutdownGW := startGateway(t, bins["lna"], []string{baseA, baseB})
	defer shutdownGW()

	// One traced request; the response header carries the fleet-wide
	// trace ID (gateway and replica share it via propagation).
	file := filepath.Join(fixtureDir, "clean_annotated.mc")
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(service.AnalyzeRequest{
		Module:  "fleet-traced.mc",
		Source:  string(src),
		Options: service.AnalyzeOptions{Mode: service.ModeCheck},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(gw+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", resp.StatusCode, respBody)
	}
	traceID := resp.Header.Get("X-Lna-Trace")
	if traceID == "" {
		t.Fatal("response carries no X-Lna-Trace header")
	}

	// Assemble the distributed trace with the real subcommand.
	out := filepath.Join(t.TempDir(), "fleet.trace.json")
	stdout, stderr, code := run(t, bins["lna"], "trace", "-remote", gw, "-o", out, "fetch", traceID)
	if code != service.ExitClean {
		t.Fatalf("lna trace fetch exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "2 fragment(s)") {
		t.Errorf("trace fetch merged %q, want 2 fragments (gateway + serving replica)", strings.TrimSpace(stdout))
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc chromeDoc
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("merged trace does not match the golden schema: %v\n%s", err, data)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	// Structural assertions: two processes, spans from both, and the
	// replica's analyze span parented under a gateway attempt span.
	pids := map[int]bool{}
	procs := map[int]string{}
	attempts := map[string]int{} // span_id -> pid
	var analyzeParent string
	var analyzePid int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procs[ev.Pid], _ = ev.Args["name"].(string)
		case ev.Ph == "X":
			pids[ev.Pid] = true
			if tid, ok := ev.Args["trace_id"].(string); !ok || tid != traceID {
				t.Fatalf("event %q carries trace_id %v, want %s", ev.Name, ev.Args["trace_id"], traceID)
			}
			if ev.Name == "attempt" {
				if id, ok := ev.Args["span_id"].(string); ok {
					attempts[id] = ev.Pid
				}
			}
			if ev.Name == "analyze" {
				analyzeParent, _ = ev.Args["parent_id"].(string)
				analyzePid = ev.Pid
			}
		}
	}
	if len(pids) != 2 {
		t.Fatalf("merged trace spans %d pids, want 2 (gateway + replica)", len(pids))
	}
	var haveGW, haveRep bool
	for _, name := range procs {
		if strings.HasPrefix(name, "gateway") {
			haveGW = true
		}
		if strings.HasPrefix(name, "replica") {
			haveRep = true
		}
	}
	if !haveGW || !haveRep {
		t.Fatalf("process names %v, want a gateway and a replica", procs)
	}
	attemptPid, ok := attempts[analyzeParent]
	if !ok {
		t.Fatalf("replica analyze span's parent %q is not a gateway attempt span (attempts: %v)",
			analyzeParent, attempts)
	}
	if attemptPid == analyzePid {
		t.Fatal("attempt and analyze spans share a pid — the cross-process link collapsed")
	}

	// lna top: the one-shot fleet table names both replicas as healthy.
	stdout, stderr, code = run(t, bins["lna"], "top", "-remote", gw)
	if code != service.ExitClean {
		t.Fatalf("lna top exit %d\nstderr: %s", code, stderr)
	}
	for _, base := range []string{baseA, baseB} {
		if !strings.Contains(stdout, strings.TrimPrefix(base, "http://")) {
			t.Errorf("lna top output does not list backend %s:\n%s", base, stdout)
		}
	}
	if !strings.Contains(stdout, "2/2 backends healthy") {
		t.Errorf("lna top output does not report 2/2 healthy:\n%s", stdout)
	}

	// Against a plain daemon, top degrades to that daemon's stats.
	stdout, stderr, code = run(t, bins["lna"], "top", "-remote", baseA)
	if code != service.ExitClean {
		t.Fatalf("lna top (daemon) exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "daemon "+baseA) {
		t.Errorf("lna top against a daemon should degrade to its stats:\n%s", stdout)
	}
}
