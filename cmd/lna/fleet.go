package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"localalias/internal/client"
	"localalias/internal/gateway"
	"localalias/internal/obs"
	"localalias/internal/service"
)

// This file is the fleet-facing side of the CLI: `lna trace fetch`
// assembles one distributed trace from every process that holds a
// fragment of it, and `lna top` renders the gateway's /v1/fleet
// snapshot as a one-shot status table.

// fleetTimeout bounds each individual fetch these commands make; both
// are interactive one-shots, so a hung process should fail fast.
const fleetTimeout = 10 * time.Second

// fetchFleet retrieves /v1/fleet from the target. A daemon (or an old
// gateway) answers 404 for the unknown route; that degrades to
// (nil, false) so callers can fall back to single-process behaviour.
func fetchFleet(ctx context.Context, c *client.Client) (*gateway.FleetStatus, bool, error) {
	res, err := c.GetRaw(ctx, "/v1/fleet")
	if err != nil {
		return nil, false, err
	}
	if !res.OK() {
		return nil, false, nil
	}
	var fs gateway.FleetStatus
	if err := json.Unmarshal(res.Body, &fs); err != nil {
		return nil, false, fmt.Errorf("decoding /v1/fleet: %w", err)
	}
	return &fs, true, nil
}

// isNotFound reports whether err is the wire contract's not_found —
// "this process holds no fragment of that trace", which the assembler
// tolerates per process.
func isNotFound(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Err != nil && apiErr.Err.Code == service.CodeNotFound
}

// runTraceFetch implements `lna trace fetch -remote URL [-o FILE] ID`:
// it pulls the trace's fragment from the target, discovers the
// target's replicas through /v1/fleet (absent on a plain daemon), pulls
// each replica's fragment of the same ID, and merges everything into
// one Chrome trace_event file. Cross-process parenting needs no
// stitching here: the replica spans already name the gateway's attempt
// spans as parents, because the trace context propagated on the wire.
func runTraceFetch(opt options, args []string) int {
	if len(args) < 1 || args[0] != "fetch" {
		fmt.Fprintln(os.Stderr, "lna: usage: lna trace fetch -remote URL [-o FILE] TRACE_ID")
		return service.ExitUsage
	}
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "lna: trace fetch: missing TRACE_ID (from the X-Lna-Trace response header or an access-log trace= field)")
		return service.ExitUsage
	}
	if opt.remote == "" {
		fmt.Fprintln(os.Stderr, "lna: trace fetch: -remote URL is required (a gateway or daemon base URL)")
		return service.ExitUsage
	}
	id := args[1]
	ctx, cancel := context.WithTimeout(context.Background(), fleetTimeout)
	defer cancel()
	c := remoteClient(opt.remote)

	var exports []*obs.TraceExport
	frag, err := c.Trace(ctx, id)
	switch {
	case err == nil:
		// Suffix the process label with the URL so two replicas (or a
		// gateway and a daemon) stay distinct pids in the merged view.
		frag.Process = frag.Process + " " + opt.remote
		exports = append(exports, frag)
	case isNotFound(err):
		// The front end may have evicted (or never seen) the trace while
		// a replica still holds its half; keep going.
	default:
		fmt.Fprintf(os.Stderr, "lna: trace fetch: %s: %v\n", opt.remote, err)
		return service.ExitUsage
	}

	fleet, ok, err := fetchFleet(ctx, c)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lna: trace fetch: %s: %v\n", opt.remote, err)
		return service.ExitUsage
	}
	if ok {
		for _, rep := range fleet.Replicas {
			rc := remoteClient(rep.URL)
			f, err := rc.Trace(ctx, id)
			if err != nil {
				// A replica without the fragment (404) — or one that is
				// down — contributes nothing; the merged trace is built
				// from whoever answers.
				continue
			}
			f.Process = f.Process + " " + rep.URL
			exports = append(exports, f)
		}
	}
	if len(exports) == 0 {
		fmt.Fprintf(os.Stderr, "lna: trace fetch: no process holds trace %s (expired from every ring?)\n", id)
		return service.ExitUsage
	}

	out := opt.out
	if out == "" {
		out = id + ".trace.json"
	}
	fh, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lna: trace fetch:", err)
		return service.ExitUsage
	}
	if err := obs.WriteChromeExports(fh, exports...); err != nil {
		fh.Close()
		fmt.Fprintln(os.Stderr, "lna: trace fetch:", err)
		return service.ExitUsage
	}
	if err := fh.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "lna: trace fetch:", err)
		return service.ExitUsage
	}
	spans := 0
	for _, ex := range exports {
		spans += len(ex.Spans)
	}
	fmt.Printf("lna: trace %s: %d fragment(s), %d span(s) written to %s\n",
		id, len(exports), spans, out)
	return service.ExitClean
}

// runTop implements `lna top -remote URL`: one /v1/fleet round trip
// rendered as a table — the gateway's own counters, then one row per
// replica joining the gateway's health view with the replica's own
// stats. Against a plain daemon (no /v1/fleet) it degrades to that
// daemon's /v1/stats.
func runTop(opt options) int {
	if opt.remote == "" {
		fmt.Fprintln(os.Stderr, "lna: top: -remote URL is required (a gateway or daemon base URL)")
		return service.ExitUsage
	}
	ctx, cancel := context.WithTimeout(context.Background(), fleetTimeout)
	defer cancel()
	c := remoteClient(opt.remote)
	fleet, ok, err := fetchFleet(ctx, c)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lna: top: %s: %v\n", opt.remote, err)
		return service.ExitUsage
	}
	if !ok {
		st, err := c.Stats(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lna: top: %s: %v\n", opt.remote, err)
			return service.ExitUsage
		}
		fmt.Printf("daemon %s: workers=%d queue=%d requests=%d batches=%d rejected=%d failures=%d\n",
			opt.remote, st.Workers, st.QueueDepth, st.Requests, st.BatchRequests, st.Rejected, st.Failures)
		fmt.Printf("  cache: %d hits / %d misses, %d entries, %d evictions\n",
			st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, st.Cache.Evictions)
		return service.ExitClean
	}

	gw := fleet.Gateway
	fmt.Printf("gateway %s: %d/%d backends healthy\n",
		opt.remote, gw.HealthyBackends, len(gw.Backends))
	fmt.Printf("  requests=%d batches=%d rejected=%d retries=%d hedges=%d (won %d) max-inflight=%d\n",
		gw.Requests, gw.BatchRequests, gw.Rejected, gw.Retries, gw.Hedges, gw.HedgeWins, gw.MaxInflight)
	fmt.Printf("  %-28s %-9s %9s %9s %9s %9s %7s\n",
		"BACKEND", "HEALTHY", "FORWARDED", "REQUESTS", "HITS", "MISSES", "QUEUE")
	for _, rep := range fleet.Replicas {
		health := "ok"
		if !rep.Healthy {
			health = "down"
		}
		if rep.Stats == nil {
			detail := rep.StatsError
			if detail == "" {
				detail = rep.LastError
			}
			fmt.Printf("  %-28s %-9s %9d %9s %9s %9s %7s  %s\n",
				rep.URL, health, rep.Forwarded, "-", "-", "-", "-", detail)
			continue
		}
		st := rep.Stats
		fmt.Printf("  %-28s %-9s %9d %9d %9d %9d %7d\n",
			rep.URL, health, rep.Forwarded, st.Requests, st.Cache.Hits, st.Cache.Misses, st.QueueDepth)
	}
	return service.ExitClean
}
