package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"localalias/internal/bench"
	"localalias/internal/client"
	"localalias/internal/drivergen"
	"localalias/internal/gateway"
	"localalias/internal/service"
)

// remoteClient builds the shared v1 client for -remote / bench
// targets.
func remoteClient(url string) *client.Client {
	return client.New(url, client.Options{})
}

// runRemoteAnalysis sends one analysis request to a daemon or gateway
// instead of running the engine in-process. The response is the same
// canonical shape either way: -json relays the server's bytes
// verbatim (byte-identical to a local `lna <mode> -json` run), and
// the human rendering plus exit code come from decoding them.
func runRemoteAnalysis(cmd, file, src string, opt options) int {
	req := &service.AnalyzeRequest{
		Module: file,
		Source: src,
		Options: service.AnalyzeOptions{
			Mode:    cmd,
			General: opt.general,
			Params:  opt.params,
			Liberal: opt.liberal,
		},
	}
	if len(opt.libs) > 0 {
		libs, err := loadLibraries(opt.libs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lna:", err)
			return service.ExitUsage
		}
		req.Options.MultiModule = true
		req.Options.Libraries = libs
	}
	c := remoteClient(opt.remote)
	raw, _, err := c.AnalyzeRaw(context.Background(), req)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			fmt.Fprintf(os.Stderr, "lna: %s: %s\n", opt.remote, apiErr)
			return apiErr.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "lna: %s: %v\n", opt.remote, err)
		return service.ExitUsage
	}
	var resp service.AnalyzeResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "lna: %s returned an undecodable response: %v\n", opt.remote, err)
		return service.ExitDegraded
	}
	if opt.asJSON {
		os.Stdout.Write(raw)
		return resp.ExitCode()
	}
	renderResponse(cmd, &resp)
	return resp.ExitCode()
}

// runGateway starts the distributed gateway tier over a
// comma-separated backend list and blocks until SIGINT/SIGTERM.
func runGateway(opt options) int {
	var backends []string
	for _, u := range strings.Split(opt.backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			backends = append(backends, u)
		}
	}
	o := gateway.Options{
		Backends:       backends,
		HealthInterval: opt.healthInterval,
		HedgeAfter:     opt.hedgeAfter,
		Retries:        opt.retries,
		MaxInflight:    opt.maxInflight,
		TraceEntries:   opt.traceEntries,
	}
	// The gateway honours the same -log-format contract as serve.
	switch opt.logFormat {
	case "off":
		// no access log
	case service.LogText, service.LogJSON:
		o.AccessLog = os.Stderr
		o.LogFormat = opt.logFormat
	default:
		fmt.Fprintf(os.Stderr, "lna: gateway: unknown -log-format %q (want text|json|off)\n", opt.logFormat)
		return service.ExitUsage
	}
	g, err := gateway.New(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lna: gateway:", err)
		return service.ExitUsage
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = g.ListenAndServe(ctx, opt.addr, func(bound string) {
		fmt.Printf("lna gateway listening on http://%s (backends=%d retries=%d hedge=%v max-inflight=%d)\n",
			bound, len(backends), g.Retries(), opt.hedgeAfter, g.MaxInflight())
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lna: gateway:", err)
		return service.ExitUsage
	}
	st := g.Stats()
	fmt.Printf("lna gateway drained (%d requests, %d batches, %d rejected, %d retries, %d hedges)\n",
		st.Requests, st.BatchRequests, st.Rejected, st.Retries, st.Hedges)
	return service.ExitClean
}

// runBench drives the open-loop load generator against -remote (a
// daemon or a gateway — the client cannot tell, which is the point)
// and prints the latency/throughput report.
func runBench(opt options) int {
	if opt.remote == "" {
		fmt.Fprintln(os.Stderr, "lna: bench: -remote URL is required (a daemon or gateway base URL)")
		return service.ExitUsage
	}
	n := opt.benchModules
	if n <= 0 || n > drivergen.NumModules {
		n = drivergen.NumModules
	}
	reqs := make([]service.AnalyzeRequest, 0, n)
	for _, spec := range drivergen.Corpus()[:n] {
		reqs = append(reqs, service.AnalyzeRequest{
			Module: spec.Name + ".mc", Source: spec.Source(),
			Options: service.AnalyzeOptions{Mode: service.ModeCheck},
		})
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	progress := func(line string) { fmt.Fprintln(os.Stderr, "lna: bench:", line) }
	if opt.asJSON {
		progress = nil
	}
	rep, err := bench.Run(ctx, bench.Options{
		Client:   remoteClient(opt.remote),
		RPS:      opt.rps,
		Duration: opt.duration,
		Requests: reqs,
		Warm:     opt.replay,
		Progress: progress,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lna: bench:", err)
		return service.ExitUsage
	}
	if opt.asJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "lna: bench:", err)
			return service.ExitUsage
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		fmt.Printf("bench %s: %d offered at %.0f rps over %.1fs (%d modules%s)\n",
			opt.remote, rep.Offered, rep.TargetRPS, rep.DurationSeconds, n,
			map[bool]string{true: ", warm replay", false: ""}[opt.replay])
		fmt.Printf("  completed %d (%.1f rps)  rejected %d  errors %d  shed %d\n",
			rep.Completed, rep.AchievedRPS, rep.Rejected, rep.Errors, rep.Shed)
		if len(rep.ErrorsByCode) > 0 {
			codes := make([]string, 0, len(rep.ErrorsByCode))
			for code := range rep.ErrorsByCode {
				codes = append(codes, code)
			}
			sort.Strings(codes)
			parts := make([]string, 0, len(codes))
			for _, code := range codes {
				parts = append(parts, fmt.Sprintf("%s=%d", code, rep.ErrorsByCode[code]))
			}
			fmt.Printf("  errors by code: %s\n", strings.Join(parts, "  "))
		}
		fmt.Printf("  cache: %d hits / %d misses (hit rate %.2f)\n",
			rep.CacheHits, rep.CacheMisses, rep.HitRate)
		fmt.Printf("  latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f  max %.3f\n",
			rep.LatencyMsP50, rep.LatencyMsP95, rep.LatencyMsP99, rep.LatencyMsMean, rep.LatencyMsMax)
	}
	if rep.Errors > 0 {
		return service.ExitDegraded
	}
	return service.ExitClean
}

// benchDuration is the `lna bench` default run length.
const benchDuration = 10 * time.Second
