package main

// Process-level tests: they build the real lna and experiments
// binaries and assert the documented exit-code policy and the serve
// daemon's wire behaviour, exactly as a user would see them.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"localalias/internal/drivergen"
	"localalias/internal/service"
)

// buildOnce builds both command binaries into one temp dir, shared by
// every test in the file.
var buildOnce = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "lna-exec-test")
	if err != nil {
		return nil, err
	}
	bins := make(map[string]string)
	for _, pkg := range []string{"lna", "experiments"} {
		bin := filepath.Join(dir, pkg)
		cmd := exec.Command("go", "build", "-o", bin, "localalias/cmd/"+pkg)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
		bins[pkg] = bin
	}
	return bins, nil
})

func binaries(t *testing.T) map[string]string {
	t.Helper()
	bins, err := buildOnce()
	if err != nil {
		t.Fatal(err)
	}
	return bins
}

// run executes a built binary and returns stdout, stderr, and the
// exit code.
func run(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", bin, args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

const fixtureDir = "../../internal/golden/testdata"

// TestExitPolicyAgreement: both binaries follow the one documented
// exit-code table — 0 clean, 1 findings, 2 usage/IO, 3 degraded — for
// every outcome class a user can trigger from the command line.
func TestExitPolicyAgreement(t *testing.T) {
	bins := binaries(t)
	clean := filepath.Join(fixtureDir, "clean_annotated.mc")
	violation := filepath.Join(fixtureDir, "restrict_double.mc")

	cases := []struct {
		name string
		bin  string
		args []string
		want int
	}{
		{"lna clean check", "lna", []string{"check", clean}, service.ExitClean},
		{"lna violation", "lna", []string{"check", violation}, service.ExitFindings},
		{"lna violation json", "lna", []string{"check", "-json", violation}, service.ExitFindings},
		{"lna no args", "lna", nil, service.ExitUsage},
		{"lna unknown subcommand", "lna", []string{"optimize"}, service.ExitUsage},
		{"lna missing file", "lna", []string{"check", "no_such_file.mc"}, service.ExitUsage},
		{"lna stranded flag", "lna", []string{"-json"}, service.ExitUsage},
		{"experiments unknown flag", "experiments", []string{"-no-such-flag"}, service.ExitUsage},
		{"experiments bad dump dir", "experiments", []string{"-dump", "/dev/null/nope"}, service.ExitUsage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := run(t, bins[tc.bin], tc.args...)
			if code != tc.want {
				t.Errorf("%s %v: exit %d, want %d\nstderr: %s", tc.bin, tc.args, code, tc.want, stderr)
			}
		})
	}
}

// TestCheckJSONIsCanonicalResponse: `lna check -json` emits exactly
// the canonical AnalyzeResponse the service engine produces.
func TestCheckJSONIsCanonicalResponse(t *testing.T) {
	bins := binaries(t)
	file := filepath.Join(fixtureDir, "clean_annotated.mc")
	stdout, _, code := run(t, bins["lna"], "check", "-json", file)
	if code != service.ExitClean {
		t.Fatalf("exit %d, want 0", code)
	}
	var resp service.AnalyzeResponse
	if err := json.Unmarshal([]byte(stdout), &resp); err != nil {
		t.Fatalf("stdout is not an AnalyzeResponse: %v\n%s", err, stdout)
	}
	if resp.APIVersion != service.APIVersion || resp.Mode != service.ModeCheck || !resp.OK {
		t.Errorf("response = %+v", resp)
	}
}

// startServe launches `lna serve` on a free port and returns its base
// URL plus a shutdown function that SIGTERMs the daemon and asserts a
// clean drain.
func startServe(t *testing.T, bin string, extraArgs ...string) (string, func()) {
	t.Helper()
	return startProc(t, bin, append([]string{"serve", "-addr", "127.0.0.1:0"}, extraArgs...))
}

// startGateway launches `lna gateway` over the given backends on a
// free port, with the same banner/drain contract as startServe.
func startGateway(t *testing.T, bin string, backends []string, extraArgs ...string) (string, func()) {
	t.Helper()
	args := append([]string{"gateway", "-addr", "127.0.0.1:0", "-backends", strings.Join(backends, ",")}, extraArgs...)
	return startProc(t, bin, args)
}

// startProc launches one lna server process (serve or gateway), waits
// for the listening banner, and returns the base URL plus a shutdown
// function that SIGTERMs the process and asserts a clean drain.
func startProc(t *testing.T, bin string, args []string) (string, func()) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// The startup banner carries the bound address:
	// "lna serve listening on http://127.0.0.1:PORT (...)".
	addrCh := make(chan string, 1)
	rest := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var line strings.Builder
		for {
			n, err := stdout.Read(buf)
			line.Write(buf[:n])
			s := line.String()
			if i := strings.Index(s, "http://"); i >= 0 {
				if j := strings.IndexAny(s[i+7:], " \n"); j >= 0 {
					addrCh <- s[i+7 : i+7+j]
					break
				}
			}
			if err != nil {
				addrCh <- ""
				break
			}
		}
		drained, _ := io.ReadAll(stdout)
		rest <- string(drained)
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("lna serve never announced its address\nstderr: %s", stderr.String())
	}
	return "http://" + addr, func() {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("SIGTERM: %v", err)
		}
		if err := cmd.Wait(); err != nil {
			t.Errorf("serve did not drain cleanly: %v\nstderr: %s", err, stderr.String())
		}
		if tail := <-rest; !strings.Contains(tail, "drained") {
			t.Errorf("drain summary missing from serve output: %q", tail)
		}
	}
}

// TestServeSmoke is the end-to-end daemon exercise the CI smoke job
// runs: start `lna serve` on a random port, submit a 20-module
// generated batch twice, and require the second pass to be served at
// least 90%% from cache; then verify the /v1/analyze body matches
// `lna check -json` byte for byte, and that SIGTERM drains cleanly.
func TestServeSmoke(t *testing.T) {
	bins := binaries(t)
	base, shutdown := startServe(t, bins["lna"])
	defer shutdown()

	var batch service.BatchRequest
	for _, spec := range drivergen.Corpus()[:20] {
		batch.Requests = append(batch.Requests, service.AnalyzeRequest{
			Module: spec.Name + ".mc",
			Source: spec.Source(),
		})
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	submit := func(pass int) service.BatchResponse {
		resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d: status %d: %s", pass, resp.StatusCode, data)
		}
		var out service.BatchResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		return out
	}
	first := submit(1)
	if first.Summary.Modules != 20 || first.Summary.Failures != 0 {
		t.Fatalf("first pass summary = %+v", first.Summary)
	}
	second := submit(2)
	if second.Summary.CacheHits < 18 {
		t.Errorf("second pass served %d/20 from cache, want >= 18 (90%%)", second.Summary.CacheHits)
	}

	// The documented curl round-trip: POST the file to /v1/analyze and
	// get exactly the bytes `lna check -json FILE` prints.
	file := filepath.Join(fixtureDir, "clean_annotated.mc")
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	req, err := json.Marshal(service.AnalyzeRequest{
		Module:  file,
		Source:  string(src),
		Options: service.AnalyzeOptions{Mode: service.ModeCheck},
	})
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", httpResp.StatusCode, served)
	}
	cliOut, _, code := run(t, bins["lna"], "check", "-json", file)
	if code != service.ExitClean {
		t.Fatalf("lna check -json exit %d", code)
	}
	if string(served) != cliOut {
		t.Errorf("served response differs from `lna check -json`:\n--- served\n%s\n--- cli\n%s", served, cliOut)
	}
}

// TestGatewaySmoke is the end-to-end gateway exercise the CI smoke job
// runs: two real `lna serve` replicas behind a real `lna gateway`
// process. The remote CLI round-trip through the gateway must be
// byte-identical to a local run, a replayed batch must hit the cache
// fully (affinity), and SIGTERM must drain both tiers cleanly.
func TestGatewaySmoke(t *testing.T) {
	bins := binaries(t)
	baseA, shutdownA := startServe(t, bins["lna"])
	defer shutdownA()
	baseB, shutdownB := startServe(t, bins["lna"])
	defer shutdownB()
	gw, shutdownGW := startGateway(t, bins["lna"], []string{baseA, baseB})
	defer shutdownGW()

	// Remote CLI through the gateway == local CLI, byte for byte.
	file := filepath.Join(fixtureDir, "clean_annotated.mc")
	remoteOut, stderr, code := run(t, bins["lna"], "check", "-json", "-remote", gw, file)
	if code != service.ExitClean {
		t.Fatalf("lna check -remote exit %d\nstderr: %s", code, stderr)
	}
	localOut, _, code := run(t, bins["lna"], "check", "-json", file)
	if code != service.ExitClean {
		t.Fatalf("lna check -json exit %d", code)
	}
	if remoteOut != localOut {
		t.Errorf("gateway-relayed response differs from local run:\n--- remote\n%s\n--- local\n%s", remoteOut, localOut)
	}

	// A batch replayed through the gateway hits the cache fully: the
	// consistent-hash routing sent every module back to the replica
	// that analyzed it the first time.
	var batch service.BatchRequest
	for _, spec := range drivergen.Corpus()[:20] {
		batch.Requests = append(batch.Requests, service.AnalyzeRequest{
			Module: spec.Name + ".mc",
			Source: spec.Source(),
		})
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	submit := func(pass int) service.BatchResponse {
		resp, err := http.Post(gw+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d: status %d: %s", pass, resp.StatusCode, data)
		}
		var out service.BatchResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		return out
	}
	first := submit(1)
	if first.Summary.Modules != 20 || first.Summary.Failures != 0 || first.Summary.Rejected != 0 {
		t.Fatalf("first pass summary = %+v", first.Summary)
	}
	second := submit(2)
	if second.Summary.CacheHits != 20 {
		t.Errorf("replay through gateway hit %d/20 — cache affinity lost", second.Summary.CacheHits)
	}

	// The open-loop load harness against the same gateway: a short warm
	// replay must complete without transport errors and hit fully.
	benchOut, stderr, code := run(t, bins["lna"], "bench",
		"-remote", gw, "-rps", "100", "-duration", "500ms", "-modules", "10", "-replay", "-json")
	if code != service.ExitClean {
		t.Fatalf("lna bench exit %d\nstderr: %s", code, stderr)
	}
	var rep struct {
		Completed int     `json:"completed"`
		Errors    int     `json:"errors"`
		HitRate   float64 `json:"hit_rate"`
	}
	if err := json.Unmarshal([]byte(benchOut), &rep); err != nil {
		t.Fatalf("bench output is not a report: %v\n%s", err, benchOut)
	}
	if rep.Completed == 0 || rep.Errors != 0 {
		t.Errorf("bench report = %+v; want completed traffic with no transport errors", rep)
	}
	if rep.HitRate != 1 {
		t.Errorf("bench warm replay hit rate %v, want 1", rep.HitRate)
	}
}

// TestCrossModuleCLI: the -lib flag drives the whole-program pass from
// the command line, and the two cross-module failure classes — missing
// package and import cycle — get the uniform "import error" stderr
// text and the shared exit-code table's findings code (1). A -lib
// outside confine/qual is a usage error (2).
func TestCrossModuleCLI(t *testing.T) {
	bins := binaries(t)
	dir := t.TempDir()
	write := func(name, src string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// A real multi-module stack: the leaf driver plus its three
	// libraries, each library file named after its import name.
	mods := drivergen.XStack(1)
	var libArgs []string
	var leafFile string
	for _, m := range mods {
		path := write(m.Name+".mc", m.Source)
		if m.Name == mods[len(mods)-1].Name {
			leafFile = path
		} else {
			libArgs = append(libArgs, "-lib", path)
		}
	}
	args := append([]string{"qual"}, append(libArgs, leafFile)...)
	stdout, stderr, code := run(t, bins["lna"], args...)
	if code != service.ExitFindings {
		t.Fatalf("qual with libraries exit %d, want %d\nstderr: %s", code, service.ExitFindings, stderr)
	}
	// The leaf's summary-mode findings include the cross-module bug at
	// the imported call site (xdrv00 carries the split double-acquire).
	if !strings.Contains(stdout, "xio.pulse") {
		t.Errorf("report does not attribute the cross-module bug to the call site:\n%s", stdout)
	}

	// Missing package: uniform text, findings exit code.
	app := write("app.mc", "import \"ghost\";\nfun f() { work(); }\n")
	_, stderr, code = run(t, bins["lna"], "qual", app)
	if code != service.ExitFindings {
		t.Errorf("missing package exit %d, want %d", code, service.ExitFindings)
	}
	if !strings.Contains(stderr, "lna: import error at ") ||
		!strings.Contains(stderr, "app.mc:1:") ||
		!strings.Contains(stderr, `cannot resolve import "ghost"`) {
		t.Errorf("missing uniform import-error line for a missing package:\n%s", stderr)
	}

	// Import cycle between two libraries: same uniform text, same code.
	cycA := write("cyca.mc", "import \"cycb\";\nfun fa() { cycb.fb(); }\n")
	cycB := write("cycb.mc", "import \"cyca\";\nfun fb() { cyca.fa(); }\n")
	top := write("top.mc", "import \"cyca\";\nfun main(): int { return 0; }\n")
	_, stderr, code = run(t, bins["lna"], "qual", "-lib", cycA, "-lib", cycB, top)
	if code != service.ExitFindings {
		t.Errorf("import cycle exit %d, want %d", code, service.ExitFindings)
	}
	if !strings.Contains(stderr, "lna: import error at ") ||
		!strings.Contains(stderr, "import cycle: ") {
		t.Errorf("missing uniform import-error line for a cycle:\n%s", stderr)
	}

	// -lib outside confine/qual is rejected before any analysis runs.
	if _, stderr, code := run(t, bins["lna"], "check", "-lib", cycA, top); code != service.ExitUsage ||
		!strings.Contains(stderr, "-lib is only supported") {
		t.Errorf("check -lib exit %d (stderr %q), want usage error", code, stderr)
	}
}

// TestRemoteExitCodes: the -remote path maps wire errors onto the same
// exit-code table as local runs.
func TestRemoteExitCodes(t *testing.T) {
	bins := binaries(t)
	base, shutdown := startServe(t, bins["lna"])
	defer shutdown()

	violation := filepath.Join(fixtureDir, "restrict_double.mc")
	if _, _, code := run(t, bins["lna"], "check", "-remote", base, violation); code != service.ExitFindings {
		t.Errorf("remote violation exit %d, want %d", code, service.ExitFindings)
	}
	// An unreachable target is an IO error, not a finding.
	if _, _, code := run(t, bins["lna"], "check", "-remote", "http://127.0.0.1:1", violation); code != service.ExitUsage {
		t.Errorf("unreachable remote exit %d, want %d", code, service.ExitUsage)
	}
	// Gateway with no backends refuses to start with a usage error.
	if _, _, code := run(t, bins["lna"], "gateway", "-addr", "127.0.0.1:0"); code != service.ExitUsage {
		t.Errorf("gateway without backends exit %d, want %d", code, service.ExitUsage)
	}
	// Bench without a target likewise.
	if _, _, code := run(t, bins["lna"], "bench", "-rps", "10", "-duration", "100ms"); code != service.ExitUsage {
		t.Errorf("bench without -remote exit %d, want %d", code, service.ExitUsage)
	}
}
