// Benchmarks regenerating each experiment of the paper's evaluation:
//
//	E1 BenchmarkCorpusSummary        — Section 7 summary over 589 modules
//	E2 BenchmarkFigure6              — the eliminated-errors histogram
//	E3 BenchmarkFigure7              — the 14 partially-recovered modules
//	E4 BenchmarkConfineOverhead      — analysis time with vs without confine
//	E5 BenchmarkRestrictCheckScaling — O(kn) checking
//	E6 BenchmarkRestrictInferScaling — O(n²) inference
//	E7 BenchmarkConfineBackwardSearch— the Section 6.2 backward search
//	   BenchmarkAblationNoDown       — cost/effect of removing (Down)
//	   BenchmarkScopeHeuristic       — syntactic heuristic vs general search
//
// Reported custom metrics carry the experiment's headline quantity
// (e.g. eliminated-rate for E1) so `go test -bench` output documents
// the reproduction, not just its speed.
package localalias

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"localalias/internal/core"
	"localalias/internal/drivergen"
	"localalias/internal/experiments"
	"localalias/internal/infer"
	"localalias/internal/restrict"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// ---------------------------------------------------------------------
// E1–E3: the corpus experiments

// The body lives in internal/experiments (bench.go) so the
// experiments command's -bench-json mode can run the same measurement
// via testing.Benchmark.
func BenchmarkCorpusSummary(b *testing.B) { experiments.BenchCorpusSummary(b) }

// BenchmarkCorpusSummaryTraced is the same corpus run with the
// observability path enabled (a span trace per module, as under the
// daemon); its delta against BenchmarkCorpusSummary bounds the
// tracing overhead recorded in BENCH_obs.json.
func BenchmarkCorpusSummaryTraced(b *testing.B) { experiments.BenchCorpusSummaryTraced(b) }

func BenchmarkFigure6(b *testing.B) {
	// The histogram inputs are the strong-updates-matter modules.
	var specs []*drivergen.ModuleSpec
	for _, m := range drivergen.Corpus() {
		if m.Category == drivergen.FullRecovery || m.Category == drivergen.Partial {
			specs = append(specs, m)
		}
	}
	var res *experiments.CorpusResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunCorpus(context.Background(), experiments.CorpusOptions{Specs: specs})
	}
	b.StopTimer()
	fig := res.Figure6()
	if !strings.Contains(fig, "Figure 6") {
		b.Fatal("bad rendering")
	}
	b.ReportMetric(float64(len(specs)), "modules")
}

func BenchmarkFigure7(b *testing.B) {
	var specs []*drivergen.ModuleSpec
	for _, m := range drivergen.Corpus() {
		if m.Category == drivergen.Partial {
			specs = append(specs, m)
		}
	}
	var res *experiments.CorpusResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunCorpus(context.Background(), experiments.CorpusOptions{Specs: specs})
	}
	b.StopTimer()
	for _, m := range res.Modules {
		if m.Err != nil || m.Measured != m.Spec.Expected {
			b.Fatalf("%s: %+v vs %+v (err %v)", m.Spec.Name, m.Measured, m.Spec.Expected, m.Err)
		}
	}
	b.ReportMetric(float64(len(specs)), "modules")
}

// ---------------------------------------------------------------------
// E4: confine-inference overhead (paper: ide-tape, 28.5s vs 26.0s)

func BenchmarkConfineOverhead(b *testing.B) {
	b.Run("without-confine", func(b *testing.B) { experiments.BenchConfineOverhead(b, false) })
	b.Run("with-confine", func(b *testing.B) { experiments.BenchConfineOverhead(b, true) })
}

// ---------------------------------------------------------------------
// E5/E6: complexity scaling

// scalingProgram builds a program with funcs functions; the first k
// contain an explicit restrict (see experiments.ScalingProgram).
func scalingProgram(funcs, k int) string {
	return experiments.ScalingProgram(funcs, k)
}

func benchCheck(b *testing.B, funcs, k int) {
	src := scalingProgram(funcs, k)
	var diags source.Diagnostics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod, err := core.LoadModule("scale.mc", src)
		if err != nil {
			b.Fatal(err)
		}
		r := restrict.Check(mod.TInfo, mod.Diags)
		if !r.OK() || !r.UsedFigure5 {
			b.Fatalf("scaling program must check via Figure 5")
		}
	}
	_ = diags
}

func BenchmarkRestrictCheckScaling(b *testing.B) {
	// n sweep with k proportional to n (the paper's O(kn) has both
	// growing in a real program).
	for _, funcs := range []int{25, 50, 100, 200, 400} {
		b.Run(fmt.Sprintf("n=%dfuncs", funcs), func(b *testing.B) {
			benchCheck(b, funcs, funcs)
		})
	}
	// k sweep at fixed n: the per-check cost is the O(n) CHECK-SAT.
	for _, k := range []int{1, 25, 50, 100} {
		b.Run(fmt.Sprintf("k=%d_n=100funcs", k), func(b *testing.B) {
			benchCheck(b, 100, k)
		})
	}
}

func BenchmarkRestrictInferScaling(b *testing.B) {
	for _, funcs := range []int{25, 50, 100, 200, 400} {
		src := scalingProgram(funcs, 0)
		b.Run(fmt.Sprintf("n=%dfuncs", funcs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mod, err := core.LoadModule("scale.mc", src)
				if err != nil {
					b.Fatal(err)
				}
				res := mod.InferRestrict(false)
				if len(res.Restricted) == 0 {
					b.Fatal("inference found nothing")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E7: backward search vs forward CHECK-SAT

func BenchmarkConfineBackwardSearch(b *testing.B) {
	src := scalingProgram(300, 300)
	mod, err := core.LoadModule("scale.mc", src)
	if err != nil {
		b.Fatal(err)
	}
	res := infer.Run(mod.TInfo, mod.Diags, infer.Options{})
	sys := res.Sys

	b.Run("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := solve.NewChecker(sys)
			for _, ni := range sys.NotIns {
				if !c.Sat(ni) {
					b.Fatal("unexpected violation")
				}
			}
		}
	})
	b.Run("backward-prefilter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := solve.NewChecker(sys)
			for _, ni := range sys.NotIns {
				if !c.SatBackward(ni) {
					b.Fatal("unexpected violation")
				}
			}
		}
	})
}

// ---------------------------------------------------------------------
// Ablations

func BenchmarkAblationNoDown(b *testing.B) {
	// A recursion-heavy program where (Down) keeps latent effects
	// small. NoDown lets temporary locations leak into latent
	// effects, growing the constraint solution.
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, `
fun rec%d(n: int): int {
    if (n == 0) {
        return 0;
    }
    let tmp = new %d;
    restrict p = tmp {
        *p = rec%d(n - 1);
        return *p;
    }
    return 0;
}
`, i, i, i)
	}
	src := sb.String()

	run := func(b *testing.B, noDown bool) int {
		var violations int
		for i := 0; i < b.N; i++ {
			mod, err := core.LoadModule("rec.mc", src)
			if err != nil {
				b.Fatal(err)
			}
			res := infer.Run(mod.TInfo, mod.Diags, infer.Options{NoDown: noDown})
			violations = len(solve.Solve(res.Sys).Violations())
		}
		return violations
	}
	b.Run("with-down", func(b *testing.B) {
		if v := run(b, false); v != 0 {
			b.Fatalf("with (Down) the restricts must check; got %d violations", v)
		}
	})
	b.Run("no-down", func(b *testing.B) {
		v := run(b, true)
		b.ReportMetric(float64(v), "spurious-violations")
		if v == 0 {
			b.Fatal("ablation must produce spurious violations (Section 3.1)")
		}
	})
}

func BenchmarkScopeHeuristic(b *testing.B) {
	var spec *drivergen.ModuleSpec
	for _, m := range drivergen.Corpus() {
		if m.Name == "emu10k1" {
			spec = m
		}
	}
	src := spec.Source()
	for _, general := range []bool{false, true} {
		name := "heuristic"
		if general {
			name = "general"
		}
		b.Run(name, func(b *testing.B) {
			var errs int
			for i := 0; i < b.N; i++ {
				mod, err := core.LoadModule("emu10k1.mc", src)
				if err != nil {
					b.Fatal(err)
				}
				lr, err := mod.AnalyzeLocking(core.LockingOptions{General: general})
				if err != nil {
					b.Fatal(err)
				}
				errs = lr.WithConfine.NumErrors()
			}
			b.ReportMetric(float64(errs), "errors")
		})
	}
}

// ---------------------------------------------------------------------
// Micro: solver throughput

func BenchmarkSolverPropagation(b *testing.B) { experiments.BenchSolverPropagation(b) }

// BenchmarkSolverPropagationTraced runs the same workload inside a
// phase trace carrying obs spans (the instrumented pipeline path).
func BenchmarkSolverPropagationTraced(b *testing.B) { experiments.BenchSolverPropagationTraced(b) }

// BenchmarkSolverSteadyState times exactly solve+Release per op (the
// constraint system is rebuilt with the timer stopped) — the
// per-request cost a resident daemon pays. The sub-benchmarks compare
// the pre-pooling allocation profile, the pooled sequential solver,
// and the pooled partitioned solver (see BENCH_parallel.json).
func BenchmarkSolverSteadyState(b *testing.B) {
	b.Run("unpooled", func(b *testing.B) { experiments.BenchSolverSolveOnly(b, false, 1) })
	b.Run("pooled", func(b *testing.B) { experiments.BenchSolverSolveOnly(b, true, 1) })
	b.Run("pooled-workers-4", func(b *testing.B) { experiments.BenchSolverSolveOnly(b, true, 4) })
}

// Guard: the scaling generator must produce type-correct programs.
func TestScalingProgramsCompile(t *testing.T) {
	for _, funcs := range []int{5, 50} {
		src := scalingProgram(funcs, funcs/2)
		var diags source.Diagnostics
		if _, err := core.LoadModule("scale.mc", src); err != nil {
			t.Fatalf("funcs=%d: %v", funcs, err)
		}
		_ = diags
		_ = types.IntType
	}
}
