package ast_test

// External-package tests exercising the printer and walker over every
// construct at once (the parser is usable from here without an import
// cycle).

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/parser"
	"localalias/internal/source"
)

// kitchenSink exercises every syntactic construct.
const kitchenSink = `
struct dev {
    l: lock;
    next: ref dev;
    regs: int[4];
}

global locks: lock[8];
global grid: int[2][3];
global d: dev;
global count: int;

fun helper(p: restrict ref lock, n: int): int {
    spin_lock(p);
    spin_unlock(p);
    return n % 3;
}

fun main(i: int): int {
    let q = new 0;
    let alias = q;
    *alias = grid[1][2] + d.regs[0];
    restrict r = q in {
        *r = *r + 1;
        let inner = r;
        *inner = -*inner;
    }
    let s = q {
        *s = !(*s == 4) && 1 || 0;
    }
    confine &locks[i] in {
        spin_lock(&locks[i]);
        if (i <= 3) {
            work();
        } else if (i >= 6) {
            print(i);
        } else {
            count = count - 1;
        }
        spin_unlock(&locks[i]);
    }
    let node = new dev;
    node->next = node;
    node->regs[1] = 2;
    while (*q < 10) {
        *q = *q + helper(&d.l, *q);
    }
    if (node == node) {
        return *q / 2;
    }
    return 0;
}
`

func parseSink(t *testing.T) *ast.Program {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("sink.mc", kitchenSink, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags.String())
	}
	return prog
}

func TestPrintKitchenSinkRoundTrip(t *testing.T) {
	prog := parseSink(t)
	printed := ast.String(prog)
	var diags source.Diagnostics
	prog2 := parser.Parse("sink2.mc", printed, &diags)
	if diags.HasErrors() {
		t.Fatalf("reparse:\n%s\n--- printed ---\n%s", diags.String(), printed)
	}
	printed2 := ast.String(prog2)
	if printed != printed2 {
		t.Errorf("printing is not a fixpoint:\n--- 1 ---\n%s\n--- 2 ---\n%s", printed, printed2)
	}
	for _, frag := range []string{
		"restrict r = q {",
		"confine &locks[i] {",
		"p: restrict ref lock",
		"while (*q < 10) {",
		"} else {",
		"node->next = node;",
		"grid[1][2]",
	} {
		if !strings.Contains(printed, frag) {
			t.Errorf("printed output lacks %q:\n%s", frag, printed)
		}
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	prog := parseSink(t)
	seen := map[string]int{}
	ast.Inspect(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.StructDecl:
			seen["struct"]++
		case *ast.Field:
			seen["field"]++
		case *ast.GlobalDecl:
			seen["global"]++
		case *ast.FunDecl:
			seen["fun"]++
		case *ast.Param:
			seen["param"]++
		case *ast.DeclStmt:
			seen["decl"]++
		case *ast.BindStmt:
			seen["bind"]++
		case *ast.ConfineStmt:
			seen["confine"]++
		case *ast.AssignStmt:
			seen["assign"]++
		case *ast.IfStmt:
			seen["if"]++
		case *ast.WhileStmt:
			seen["while"]++
		case *ast.ReturnStmt:
			seen["return"]++
		case *ast.CallExpr:
			seen["call"]++
		case *ast.NewExpr:
			seen["new"]++
		case *ast.AddrExpr:
			seen["addr"]++
		case *ast.IndexExpr:
			seen["index"]++
		case *ast.FieldExpr:
			seen["fieldexpr"]++
		case *ast.DerefExpr:
			seen["deref"]++
		case *ast.UnExpr:
			seen["unary"]++
		case *ast.BinExpr:
			seen["binary"]++
		case *ast.RefType, *ast.ArrayType, *ast.NamedType, *ast.PrimType:
			seen["type"]++
		}
		return true
	})
	for _, k := range []string{
		"struct", "field", "global", "fun", "param", "decl", "bind",
		"confine", "assign", "if", "while", "return", "call", "new",
		"addr", "index", "fieldexpr", "deref", "unary", "binary", "type",
	} {
		if seen[k] == 0 {
			t.Errorf("walker never visited a %s node", k)
		}
	}
	if n := ast.CountNodes(prog); n < 100 {
		t.Errorf("kitchen sink too small: %d nodes", n)
	}
}

func TestPrintStandaloneNodes(t *testing.T) {
	// Fprint on non-program roots.
	var diags source.Diagnostics
	e := parser.ParseExpr("&locks[i + 1]", &diags)
	if got := ast.String(e); got != "&locks[i + 1]" {
		t.Errorf("expr: %q", got)
	}
	prog := parseSink(t)
	// A statement node.
	stmt := prog.Fun("main").Body.Stmts[0]
	if !strings.Contains(ast.String(stmt), "let q = new 0;") {
		t.Errorf("stmt: %q", ast.String(stmt))
	}
	// A type node.
	ty := prog.Struct("dev").Fields[1].Type
	if got := ast.String(ty); got != "ref dev" {
		t.Errorf("type: %q", got)
	}
	// A whole function.
	if !strings.Contains(ast.String(prog.Fun("helper")), "fun helper") {
		t.Error("fun rendering")
	}
}
