package ast

// Inspect traverses the tree rooted at n in depth-first pre-order,
// calling f for every node. If f returns false the node's children are
// skipped. Nil children are not visited.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *Program:
		for _, d := range n.Imports {
			Inspect(d, f)
		}
		for _, d := range n.Structs {
			Inspect(d, f)
		}
		for _, d := range n.Globals {
			Inspect(d, f)
		}
		for _, d := range n.Funs {
			Inspect(d, f)
		}
	case *ImportDecl:
		// leaf
	case *StructDecl:
		for _, fd := range n.Fields {
			Inspect(fd, f)
		}
	case *Field:
		Inspect(n.Type, f)
	case *GlobalDecl:
		Inspect(n.Type, f)
	case *FunDecl:
		for _, p := range n.Params {
			Inspect(p, f)
		}
		if n.Result != nil {
			Inspect(n.Result, f)
		}
		Inspect(n.Body, f)
	case *Param:
		Inspect(n.Type, f)

	case *PrimType, *NamedType:
		// leaves
	case *RefType:
		Inspect(n.Elem, f)
	case *ArrayType:
		Inspect(n.Elem, f)

	case *Block:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *DeclStmt:
		Inspect(n.Init, f)
	case *BindStmt:
		Inspect(n.Init, f)
		Inspect(n.Body, f)
	case *ConfineStmt:
		Inspect(n.Expr, f)
		Inspect(n.Body, f)
	case *AssignStmt:
		Inspect(n.LHS, f)
		Inspect(n.RHS, f)
	case *ExprStmt:
		Inspect(n.X, f)
	case *IfStmt:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *WhileStmt:
		Inspect(n.Cond, f)
		Inspect(n.Body, f)
	case *ReturnStmt:
		if n.X != nil {
			Inspect(n.X, f)
		}

	case *IntLit, *VarExpr:
		// leaves
	case *NewExpr:
		Inspect(n.Init, f)
	case *DerefExpr:
		Inspect(n.X, f)
	case *AddrExpr:
		Inspect(n.X, f)
	case *IndexExpr:
		Inspect(n.X, f)
		Inspect(n.Index, f)
	case *FieldExpr:
		Inspect(n.X, f)
	case *BinExpr:
		Inspect(n.X, f)
		Inspect(n.Y, f)
	case *UnExpr:
		Inspect(n.X, f)
	case *CallExpr:
		for _, a := range n.Args {
			Inspect(a, f)
		}
	}
}

// CountNodes returns the number of nodes in the tree rooted at n. It
// is the program-size measure "n" used in the paper's complexity
// statements (O(kn) checking, O(n^2) inference).
func CountNodes(n Node) int {
	c := 0
	Inspect(n, func(Node) bool { c++; return true })
	return c
}
