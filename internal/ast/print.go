package ast

import (
	"fmt"
	"io"
	"strings"

	"localalias/internal/token"
)

// Fprint writes a source-form rendering of the node to w. The output
// re-parses to an equivalent tree (modulo spans) and is used to show
// the results of restrict/confine inference.
func Fprint(w io.Writer, n Node) error {
	p := &printer{w: w}
	p.node(n)
	return p.err
}

// String renders a node to a string.
func String(n Node) string {
	var b strings.Builder
	_ = Fprint(&b, n)
	return b.String()
}

type printer struct {
	w      io.Writer
	indent int
	err    error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *printer) line(format string, args ...any) {
	p.printf("%s", strings.Repeat("    ", p.indent))
	p.printf(format, args...)
	p.printf("\n")
}

func (p *printer) node(n Node) {
	switch n := n.(type) {
	case *Program:
		for _, d := range n.Imports {
			p.node(d)
		}
		for _, d := range n.Structs {
			p.node(d)
		}
		for _, d := range n.Globals {
			p.node(d)
		}
		for i, d := range n.Funs {
			if i > 0 || len(n.Structs)+len(n.Globals) > 0 {
				p.printf("\n")
			}
			p.node(d)
		}
	case *ImportDecl:
		p.line("import %q;", n.Path)
	case *StructDecl:
		p.line("struct %s {", n.Name)
		p.indent++
		for _, f := range n.Fields {
			p.line("%s: %s;", f.Name, TypeString(f.Type))
		}
		p.indent--
		p.line("}")
	case *GlobalDecl:
		p.line("global %s: %s;", n.Name, TypeString(n.Type))
	case *FunDecl:
		var params []string
		for _, pa := range n.Params {
			q := ""
			if pa.Restrict {
				q = "restrict "
			}
			params = append(params, fmt.Sprintf("%s: %s%s", pa.Name, q, TypeString(pa.Type)))
		}
		sig := fmt.Sprintf("fun %s(%s)", n.Name, strings.Join(params, ", "))
		if n.Result != nil {
			sig += ": " + TypeString(n.Result)
		}
		p.line("%s {", sig)
		p.indent++
		p.stmts(n.Body)
		p.indent--
		p.line("}")
	case Stmt:
		p.stmt(n)
	case Expr:
		p.printf("%s", ExprString(n))
	case TypeExpr:
		p.printf("%s", TypeString(n))
	default:
		p.printf("/* ??? %T */", n)
	}
}

func (p *printer) stmts(b *Block) {
	for _, s := range b.Stmts {
		p.stmt(s)
	}
}

func (p *printer) block(b *Block, head string) {
	p.line("%s {", head)
	p.indent++
	p.stmts(b)
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *DeclStmt:
		kw := "let"
		if s.Restrict {
			kw = "restrict" // inferred: remainder-of-block scope
		}
		p.line("%s %s = %s;", kw, s.Name, ExprString(s.Init))
	case *BindStmt:
		p.block(s.Body, fmt.Sprintf("%s %s = %s", s.Kind, s.Name, ExprString(s.Init)))
	case *ConfineStmt:
		head := fmt.Sprintf("confine %s", ExprString(s.Expr))
		if s.Inferred {
			head = head + " /*inferred*/"
		}
		p.block(s.Body, head)
	case *AssignStmt:
		p.line("%s = %s;", ExprString(s.LHS), ExprString(s.RHS))
	case *ExprStmt:
		p.line("%s;", ExprString(s.X))
	case *IfStmt:
		p.line("if (%s) {", ExprString(s.Cond))
		p.indent++
		p.stmts(s.Then)
		p.indent--
		if s.Else != nil {
			p.line("} else {")
			p.indent++
			p.stmts(s.Else)
			p.indent--
		}
		p.line("}")
	case *WhileStmt:
		p.block(s.Body, fmt.Sprintf("while (%s)", ExprString(s.Cond)))
	case *ReturnStmt:
		if s.X == nil {
			p.line("return;")
		} else {
			p.line("return %s;", ExprString(s.X))
		}
	case *Block:
		p.block(s, "")
	default:
		p.line("/* ??? %T */", s)
	}
}

// TypeString renders a syntactic type.
func TypeString(t TypeExpr) string {
	switch t := t.(type) {
	case *PrimType:
		return t.Kind.String()
	case *NamedType:
		return t.Name
	case *RefType:
		return "ref " + TypeString(t.Elem)
	case *ArrayType:
		return fmt.Sprintf("%s[%d]", TypeString(t.Elem), t.Size)
	default:
		return fmt.Sprintf("?type(%T)", t)
	}
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	return exprString(e, 0)
}

func exprString(e Expr, parentPrec int) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *VarExpr:
		return e.Name
	case *NewExpr:
		return "new " + exprString(e.Init, 10)
	case *DerefExpr:
		return "*" + exprString(e.X, 10)
	case *AddrExpr:
		return "&" + exprString(e.X, 10)
	case *IndexExpr:
		return exprString(e.X, 10) + "[" + exprString(e.Index, 0) + "]"
	case *FieldExpr:
		sep := "."
		if e.Arrow {
			sep = "->"
		}
		return exprString(e.X, 10) + sep + e.Name
	case *BinExpr:
		prec := e.Op.Precedence()
		s := exprString(e.X, prec) + " " + e.Op.String() + " " + exprString(e.Y, prec+1)
		if prec < parentPrec {
			return "(" + s + ")"
		}
		return s
	case *UnExpr:
		op := "!"
		if e.Op == token.Minus {
			op = "-"
		}
		return op + exprString(e.X, 10)
	case *CallExpr:
		var args []string
		for _, a := range e.Args {
			args = append(args, exprString(a, 0))
		}
		return e.Fun + "(" + strings.Join(args, ", ") + ")"
	default:
		return fmt.Sprintf("?expr(%T)", e)
	}
}

// EqualExpr reports whether two expressions are syntactically
// identical (ignoring spans). The confine heuristic of Section 7 uses
// this to match change_type arguments that "match syntactically".
func EqualExpr(a, b Expr) bool {
	switch a := a.(type) {
	case *IntLit:
		b, ok := b.(*IntLit)
		return ok && a.Value == b.Value
	case *VarExpr:
		b, ok := b.(*VarExpr)
		return ok && a.Name == b.Name
	case *NewExpr:
		b, ok := b.(*NewExpr)
		return ok && EqualExpr(a.Init, b.Init)
	case *DerefExpr:
		b, ok := b.(*DerefExpr)
		return ok && EqualExpr(a.X, b.X)
	case *AddrExpr:
		b, ok := b.(*AddrExpr)
		return ok && EqualExpr(a.X, b.X)
	case *IndexExpr:
		b, ok := b.(*IndexExpr)
		return ok && EqualExpr(a.X, b.X) && EqualExpr(a.Index, b.Index)
	case *FieldExpr:
		b, ok := b.(*FieldExpr)
		return ok && a.Name == b.Name && a.Arrow == b.Arrow && EqualExpr(a.X, b.X)
	case *BinExpr:
		b, ok := b.(*BinExpr)
		return ok && a.Op == b.Op && EqualExpr(a.X, b.X) && EqualExpr(a.Y, b.Y)
	case *UnExpr:
		b, ok := b.(*UnExpr)
		return ok && a.Op == b.Op && EqualExpr(a.X, b.X)
	case *CallExpr:
		b, ok := b.(*CallExpr)
		if !ok || a.Fun != b.Fun || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !EqualExpr(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// CloneExpr returns a deep copy of e sharing no mutable nodes with the
// original. Spans are preserved.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLit:
		c := *e
		return &c
	case *VarExpr:
		c := *e
		return &c
	case *NewExpr:
		return &NewExpr{Init: CloneExpr(e.Init), Sp: e.Sp}
	case *DerefExpr:
		return &DerefExpr{X: CloneExpr(e.X), Sp: e.Sp}
	case *AddrExpr:
		return &AddrExpr{X: CloneExpr(e.X), Sp: e.Sp}
	case *IndexExpr:
		return &IndexExpr{X: CloneExpr(e.X), Index: CloneExpr(e.Index), Sp: e.Sp}
	case *FieldExpr:
		return &FieldExpr{X: CloneExpr(e.X), Name: e.Name, Arrow: e.Arrow, Sp: e.Sp}
	case *BinExpr:
		return &BinExpr{Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y), Sp: e.Sp}
	case *UnExpr:
		return &UnExpr{Op: e.Op, X: CloneExpr(e.X), Sp: e.Sp}
	case *CallExpr:
		c := &CallExpr{Fun: e.Fun, Sp: e.Sp}
		for _, a := range e.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	default:
		return e
	}
}
