// Package ast defines the abstract syntax tree of MiniC.
//
// The tree mirrors the paper's core language — variables, integers,
// new, dereference, assignment, let, restrict and confine — extended
// with declarations (functions, globals, structs), control flow and
// the lvalue forms (array indexing, field access, address-of) needed
// to write Linux-driver-style locking code.
//
// Binder forms come in two flavors:
//
//   - DeclStmt is "let x = e;" whose scope is the remainder of the
//     enclosing block. These are the candidates considered by
//     restrict inference (Section 5 of the paper); inference records
//     its verdict in DeclStmt.Restrict.
//   - BindStmt is the explicitly scoped "let x = e { ... }" or
//     "restrict x = e { ... }" form matching the paper's
//     "restrict x = e1 in e2".
//
// ConfineStmt is "confine e { ... }"; confine inference inserts these
// nodes (marked Inferred) rather than rewriting the body, exactly as
// the paper's definition confine e1 in e2[e1/x] permits.
package ast

import (
	"localalias/internal/source"
	"localalias/internal/token"
)

// Node is implemented by every syntax node.
type Node interface {
	Span() source.Span
}

// ---------------------------------------------------------------------
// Types (syntactic)

// TypeExpr is a syntactic type.
type TypeExpr interface {
	Node
	typeExpr()
}

// PrimKind enumerates the primitive types.
type PrimKind int

// The primitive types.
const (
	PrimInt PrimKind = iota
	PrimUnit
	PrimLock
)

func (k PrimKind) String() string {
	switch k {
	case PrimInt:
		return "int"
	case PrimUnit:
		return "unit"
	case PrimLock:
		return "lock"
	default:
		return "prim(?)"
	}
}

// PrimType is int, unit or lock.
type PrimType struct {
	Kind PrimKind
	Sp   source.Span
}

// NamedType refers to a declared struct type.
type NamedType struct {
	Name string
	Sp   source.Span
}

// RefType is "ref T", a pointer to a cell holding T.
type RefType struct {
	Elem TypeExpr
	Sp   source.Span
}

// ArrayType is "T[n]", n cells holding T. As in the paper's alias
// analysis, all elements share one abstract location.
type ArrayType struct {
	Elem TypeExpr
	Size int
	Sp   source.Span
}

func (t *PrimType) Span() source.Span  { return t.Sp }
func (t *NamedType) Span() source.Span { return t.Sp }
func (t *RefType) Span() source.Span   { return t.Sp }
func (t *ArrayType) Span() source.Span { return t.Sp }

func (*PrimType) typeExpr()  {}
func (*NamedType) typeExpr() {}
func (*RefType) typeExpr()   {}
func (*ArrayType) typeExpr() {}

// ---------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Sp    source.Span
}

// VarExpr is a reference to a let-bound variable, parameter or global.
type VarExpr struct {
	Name string
	Sp   source.Span
}

// NewExpr is "new e": allocate a fresh cell initialized to e and
// return a reference to it.
type NewExpr struct {
	Init Expr
	Sp   source.Span
}

// DerefExpr is "*e".
type DerefExpr struct {
	X  Expr
	Sp source.Span
}

// AddrExpr is "&lv" where lv is a global variable, an index
// expression, or a field access.
type AddrExpr struct {
	X  Expr
	Sp source.Span
}

// IndexExpr is "e[i]".
type IndexExpr struct {
	X     Expr
	Index Expr
	Sp    source.Span
}

// FieldExpr is "e.f", or "e->f" when Arrow is set (sugar for (*e).f).
type FieldExpr struct {
	X     Expr
	Name  string
	Arrow bool
	Sp    source.Span
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   token.Kind
	X, Y Expr
	Sp   source.Span
}

// UnExpr is unary negation or logical not.
type UnExpr struct {
	Op token.Kind
	X  Expr
	Sp source.Span
}

// CallExpr is a direct call "f(args)". MiniC has no function pointers;
// Fun names either a declared function or a builtin (spin_lock,
// spin_unlock, work, print).
type CallExpr struct {
	Fun  string
	Args []Expr
	Sp   source.Span
}

func (e *IntLit) Span() source.Span    { return e.Sp }
func (e *VarExpr) Span() source.Span   { return e.Sp }
func (e *NewExpr) Span() source.Span   { return e.Sp }
func (e *DerefExpr) Span() source.Span { return e.Sp }
func (e *AddrExpr) Span() source.Span  { return e.Sp }
func (e *IndexExpr) Span() source.Span { return e.Sp }
func (e *FieldExpr) Span() source.Span { return e.Sp }
func (e *BinExpr) Span() source.Span   { return e.Sp }
func (e *UnExpr) Span() source.Span    { return e.Sp }
func (e *CallExpr) Span() source.Span  { return e.Sp }

func (*IntLit) expr()    {}
func (*VarExpr) expr()   {}
func (*NewExpr) expr()   {}
func (*DerefExpr) expr() {}
func (*AddrExpr) expr()  {}
func (*IndexExpr) expr() {}
func (*FieldExpr) expr() {}
func (*BinExpr) expr()   {}
func (*UnExpr) expr()    {}
func (*CallExpr) expr()  {}

// ---------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// BindKind distinguishes the two scoped binders.
type BindKind int

// The binder kinds.
const (
	BindLet BindKind = iota
	BindRestrict
)

func (k BindKind) String() string {
	if k == BindRestrict {
		return "restrict"
	}
	return "let"
}

// DeclStmt is "let x = e;": a binding whose scope is the remainder of
// the enclosing block. Restrict inference may set Restrict, turning
// the binding into a restrict of the same (remainder) scope.
type DeclStmt struct {
	Name string
	Init Expr
	// Restrict records restrict inference's verdict (Section 5).
	Restrict bool
	Sp       source.Span
}

// BindStmt is the explicitly scoped binder
// "let x = e { body }" / "restrict x = e { body }".
type BindStmt struct {
	Kind BindKind
	Name string
	Init Expr
	Body *Block
	Sp   source.Span
}

// ConfineStmt is "confine e { body }" (Section 6). Inference inserts
// these with Inferred set.
type ConfineStmt struct {
	Expr     Expr
	Body     *Block
	Inferred bool
	Sp       source.Span
}

// AssignStmt is "lv = e;". LHS must be a deref, index, field access,
// or global variable.
type AssignStmt struct {
	LHS Expr
	RHS Expr
	Sp  source.Span
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X  Expr
	Sp source.Span
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Sp   source.Span
}

// WhileStmt is a loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Sp   source.Span
}

// ReturnStmt returns from the enclosing function; X is nil for unit
// returns.
type ReturnStmt struct {
	X  Expr // may be nil
	Sp source.Span
}

// Block is "{ stmts }".
type Block struct {
	Stmts []Stmt
	Sp    source.Span
}

func (s *DeclStmt) Span() source.Span    { return s.Sp }
func (s *BindStmt) Span() source.Span    { return s.Sp }
func (s *ConfineStmt) Span() source.Span { return s.Sp }
func (s *AssignStmt) Span() source.Span  { return s.Sp }
func (s *ExprStmt) Span() source.Span    { return s.Sp }
func (s *IfStmt) Span() source.Span      { return s.Sp }
func (s *WhileStmt) Span() source.Span   { return s.Sp }
func (s *ReturnStmt) Span() source.Span  { return s.Sp }
func (s *Block) Span() source.Span       { return s.Sp }

func (*DeclStmt) stmt()    {}
func (*BindStmt) stmt()    {}
func (*ConfineStmt) stmt() {}
func (*AssignStmt) stmt()  {}
func (*ExprStmt) stmt()    {}
func (*IfStmt) stmt()      {}
func (*WhileStmt) stmt()   {}
func (*ReturnStmt) stmt()  {}
func (*Block) stmt()       {}

// ---------------------------------------------------------------------
// Declarations

// Field is one struct field.
type Field struct {
	Name string
	Type TypeExpr
	Sp   source.Span
}

// ImportDecl declares a dependency on another module: `import "pkg";`.
// Exported functions of the imported module are callable as
// pkg.fn(args); resolution happens against separately-parsed modules
// (see types.CheckWith and internal/modgraph).
type ImportDecl struct {
	Path string
	Sp   source.Span
}

// StructDecl declares a record type.
type StructDecl struct {
	Name   string
	Fields []*Field
	Sp     source.Span
}

// GlobalDecl declares module-level storage. A global of scalar type is
// a single cell; arrays and structs are aggregate storage.
type GlobalDecl struct {
	Name string
	Type TypeExpr
	Sp   source.Span
}

// Param is a function parameter. Restrict marks the C99-style
// "restrict ref T" qualifier of the paper's introduction: within the
// function body, the parameter is the sole access path to the
// storage it points to. Unlike C99's trusted annotation, it is
// checked (or set by inference).
type Param struct {
	Name     string
	Type     TypeExpr
	Restrict bool
	Sp       source.Span
}

// FunDecl declares a function. Result may be nil for unit.
type FunDecl struct {
	Name   string
	Params []*Param
	Result TypeExpr // nil means unit
	Body   *Block
	Sp     source.Span
}

func (d *ImportDecl) Span() source.Span { return d.Sp }
func (d *StructDecl) Span() source.Span { return d.Sp }
func (d *GlobalDecl) Span() source.Span { return d.Sp }
func (d *FunDecl) Span() source.Span    { return d.Sp }
func (f *Field) Span() source.Span      { return f.Sp }
func (p *Param) Span() source.Span      { return p.Sp }

// Decl is a top-level declaration.
type Decl interface {
	Node
	decl()
}

func (*ImportDecl) decl() {}
func (*StructDecl) decl() {}
func (*GlobalDecl) decl() {}
func (*FunDecl) decl()    {}

// Program is one compilation unit (a "module" in the driver
// experiment's terminology).
type Program struct {
	File    *source.File
	Imports []*ImportDecl
	Structs []*StructDecl
	Globals []*GlobalDecl
	Funs    []*FunDecl
}

// Span covers the whole file.
func (p *Program) Span() source.Span {
	if p.File == nil {
		return source.NoSpan
	}
	return source.Span{Start: 0, End: source.Pos(len(p.File.Text))}
}

// Struct returns the struct declaration named name, or nil.
func (p *Program) Struct(name string) *StructDecl {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Fun returns the function declaration named name, or nil.
func (p *Program) Fun(name string) *FunDecl {
	for _, f := range p.Funs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global declaration named name, or nil.
func (p *Program) Global(name string) *GlobalDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Import returns the import declaration for path, or nil.
func (p *Program) Import(path string) *ImportDecl {
	for _, im := range p.Imports {
		if im.Path == path {
			return im
		}
	}
	return nil
}

// SplitQualified splits a qualified call target "pkg.fn" into its
// package and function parts. Unqualified names return ok=false.
// CallExpr.Fun is the only place qualified names appear; plain
// identifiers never contain a dot (the lexer has no such spelling).
func SplitQualified(fun string) (pkg, name string, ok bool) {
	for i := 0; i < len(fun); i++ {
		if fun[i] == '.' {
			return fun[:i], fun[i+1:], true
		}
	}
	return "", fun, false
}
