package ast

import (
	"strings"
	"testing"

	"localalias/internal/source"
	"localalias/internal/token"
)

// tiny helpers for hand-building trees
func v(name string) *VarExpr            { return &VarExpr{Name: name} }
func lit(n int64) *IntLit               { return &IntLit{Value: n} }
func idx(x Expr, i Expr) *IndexExpr     { return &IndexExpr{X: x, Index: i} }
func addr(x Expr) *AddrExpr             { return &AddrExpr{X: x} }
func deref(x Expr) *DerefExpr           { return &DerefExpr{X: x} }
func fld(x Expr, n string) *FieldExpr   { return &FieldExpr{X: x, Name: n, Arrow: true} }
func bin(op token.Kind, a, b Expr) Expr { return &BinExpr{Op: op, X: a, Y: b} }

func TestEqualExpr(t *testing.T) {
	same := [][2]Expr{
		{v("x"), v("x")},
		{lit(3), lit(3)},
		{addr(idx(v("locks"), v("i"))), addr(idx(v("locks"), v("i")))},
		{fld(v("d"), "l"), fld(v("d"), "l")},
		{bin(token.Plus, v("a"), lit(1)), bin(token.Plus, v("a"), lit(1))},
		{deref(v("p")), deref(v("p"))},
	}
	for _, p := range same {
		if !EqualExpr(p[0], p[1]) {
			t.Errorf("%s must equal %s", ExprString(p[0]), ExprString(p[1]))
		}
	}
	diff := [][2]Expr{
		{v("x"), v("y")},
		{lit(3), lit(4)},
		{addr(idx(v("locks"), v("i"))), addr(idx(v("locks"), v("j")))},
		{fld(v("d"), "l"), &FieldExpr{X: v("d"), Name: "l", Arrow: false}},
		{bin(token.Plus, v("a"), lit(1)), bin(token.Minus, v("a"), lit(1))},
		{deref(v("p")), v("p")},
		{&CallExpr{Fun: "f"}, &CallExpr{Fun: "g"}},
		{&CallExpr{Fun: "f", Args: []Expr{lit(1)}}, &CallExpr{Fun: "f"}},
	}
	for _, p := range diff {
		if EqualExpr(p[0], p[1]) {
			t.Errorf("%s must differ from %s", ExprString(p[0]), ExprString(p[1]))
		}
	}
}

func TestCloneExpr(t *testing.T) {
	orig := addr(idx(v("locks"), bin(token.Plus, v("i"), lit(1))))
	c := CloneExpr(orig)
	if !EqualExpr(orig, c) {
		t.Fatal("clone must be equal")
	}
	// Mutating the clone must not touch the original.
	c.(*AddrExpr).X.(*IndexExpr).Index.(*BinExpr).Y.(*IntLit).Value = 99
	if EqualExpr(orig, c) {
		t.Fatal("clone must not share nodes")
	}
	// Clone of a call.
	call := &CallExpr{Fun: "spin_lock", Args: []Expr{addr(v("g"))}}
	cc := CloneExpr(call).(*CallExpr)
	if cc == call || cc.Args[0] == call.Args[0] {
		t.Error("call clone must be deep")
	}
}

func TestExprStringMinimalParens(t *testing.T) {
	cases := map[Expr]string{
		bin(token.Plus, lit(1), bin(token.Star, lit(2), lit(3))):   "1 + 2 * 3",
		bin(token.Star, bin(token.Plus, lit(1), lit(2)), lit(3)):   "(1 + 2) * 3",
		bin(token.Minus, bin(token.Minus, lit(5), lit(2)), lit(1)): "5 - 2 - 1",
		deref(addr(v("g"))):                 "*&g",
		&UnExpr{Op: token.Not, X: v("c")}:   "!c",
		&UnExpr{Op: token.Minus, X: v("c")}: "-c",
		&NewExpr{Init: lit(0)}:              "new 0",
	}
	for e, want := range cases {
		if got := ExprString(e); got != want {
			t.Errorf("got %q want %q", got, want)
		}
	}
}

func TestInspectPruning(t *testing.T) {
	e := bin(token.Plus, deref(v("p")), deref(v("q")))
	// Stop at DerefExpr: the VarExprs beneath must not be visited.
	var seen []string
	Inspect(e, func(n Node) bool {
		switch n := n.(type) {
		case *DerefExpr:
			seen = append(seen, "*")
			return false
		case *VarExpr:
			seen = append(seen, n.Name)
		}
		return true
	})
	if strings.Join(seen, "") != "**" {
		t.Errorf("pruning failed: %v", seen)
	}
}

func TestInspectNilSafe(t *testing.T) {
	Inspect(nil, func(Node) bool { t.Fatal("must not be called"); return true })
	// If without else, return without value.
	s := &IfStmt{Cond: lit(1), Then: &Block{}}
	r := &ReturnStmt{}
	count := 0
	Inspect(s, func(Node) bool { count++; return true })
	Inspect(r, func(Node) bool { count++; return true })
	if count == 0 {
		t.Error("nodes not visited")
	}
}

func TestCountNodes(t *testing.T) {
	e := bin(token.Plus, lit(1), lit(2))
	if got := CountNodes(e); got != 3 {
		t.Errorf("CountNodes = %d, want 3", got)
	}
}

func TestStmtSpans(t *testing.T) {
	sp := source.Span{Start: 3, End: 9}
	nodes := []Node{
		&DeclStmt{Sp: sp}, &BindStmt{Sp: sp}, &ConfineStmt{Sp: sp},
		&AssignStmt{Sp: sp}, &ExprStmt{Sp: sp}, &IfStmt{Sp: sp},
		&WhileStmt{Sp: sp}, &ReturnStmt{Sp: sp}, &Block{Sp: sp},
		&StructDecl{Sp: sp}, &GlobalDecl{Sp: sp}, &FunDecl{Sp: sp},
		&Field{Sp: sp}, &Param{Sp: sp},
		&PrimType{Sp: sp}, &NamedType{Sp: sp}, &RefType{Sp: sp}, &ArrayType{Sp: sp},
	}
	for _, n := range nodes {
		if n.Span() != sp {
			t.Errorf("%T.Span() = %+v", n, n.Span())
		}
	}
}

func TestProgramLookups(t *testing.T) {
	p := &Program{
		Structs: []*StructDecl{{Name: "dev"}},
		Globals: []*GlobalDecl{{Name: "locks"}},
		Funs:    []*FunDecl{{Name: "main"}},
	}
	if p.Struct("dev") == nil || p.Struct("nope") != nil {
		t.Error("Struct lookup")
	}
	if p.Global("locks") == nil || p.Global("nope") != nil {
		t.Error("Global lookup")
	}
	if p.Fun("main") == nil || p.Fun("nope") != nil {
		t.Error("Fun lookup")
	}
	if p.Span().IsValid() {
		t.Error("program without file has no span")
	}
}

func TestBindKindString(t *testing.T) {
	if BindLet.String() != "let" || BindRestrict.String() != "restrict" {
		t.Error("bind kind strings")
	}
}

func TestPrimKindString(t *testing.T) {
	if PrimInt.String() != "int" || PrimUnit.String() != "unit" || PrimLock.String() != "lock" {
		t.Error("prim kind strings")
	}
}

func TestTypeString(t *testing.T) {
	ty := &RefType{Elem: &ArrayType{Elem: &PrimType{Kind: PrimLock}, Size: 4}}
	if got := TypeString(ty); got != "ref lock[4]" {
		t.Errorf("TypeString = %q", got)
	}
	if got := TypeString(&NamedType{Name: "dev"}); got != "dev" {
		t.Errorf("named: %q", got)
	}
}
