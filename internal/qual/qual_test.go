package qual

import (
	"testing"
	"testing/quick"

	"localalias/internal/infer"
	"localalias/internal/parser"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// --- Lattice properties ---

func TestJoinLatticeProperties(t *testing.T) {
	states := []State{Bot, Unlocked, Locked, Top}
	// Idempotent, commutative, associative; Bot identity; Top
	// absorbing.
	for _, a := range states {
		if Join(a, a) != a {
			t.Errorf("Join(%v,%v) not idempotent", a, a)
		}
		if Join(Bot, a) != a || Join(a, Bot) != a {
			t.Errorf("Bot must be identity for %v", a)
		}
		if Join(Top, a) != Top || Join(a, Top) != Top {
			t.Errorf("Top must absorb %v", a)
		}
		for _, b := range states {
			if Join(a, b) != Join(b, a) {
				t.Errorf("Join(%v,%v) not commutative", a, b)
			}
			for _, c := range states {
				if Join(Join(a, b), c) != Join(a, Join(b, c)) {
					t.Errorf("Join not associative at %v,%v,%v", a, b, c)
				}
			}
		}
	}
	if Join(Locked, Unlocked) != Top {
		t.Error("Locked ⊔ Unlocked must be ⊤")
	}
}

func TestJoinQuick(t *testing.T) {
	// Monotonicity: a ⊑ Join(a, b) for all a, b (order: Bot < U,L < Top).
	leq := func(a, b State) bool {
		if a == b || a == Bot || b == Top {
			return true
		}
		return false
	}
	prop := func(x, y uint8) bool {
		a, b := State(x%4), State(y%4)
		j := Join(a, b)
		return leq(a, j) && leq(b, j)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Store operations ---

func TestStoreJoin(t *testing.T) {
	a := store{1: Locked}
	b := store{1: Unlocked, 2: Locked}
	j := joinStores(a, b)
	if j.get(1) != Top {
		t.Errorf("1: %v", j.get(1))
	}
	// Absent in a means Unlocked (default), so 2 joins Unlocked⊔Locked.
	if j.get(2) != Top {
		t.Errorf("2: %v", j.get(2))
	}
	if j.get(99) != Unlocked {
		t.Errorf("default: %v", j.get(99))
	}
}

func TestStoreJoinUnreachable(t *testing.T) {
	a := store{1: Locked}
	if got := joinStores(nil, a); !equalStores(got, a) {
		t.Error("nil must be identity")
	}
	if got := joinStores(a, nil); !equalStores(got, a) {
		t.Error("nil must be identity (right)")
	}
}

func TestEqualStores(t *testing.T) {
	// Default-aware equality: {1:Unlocked} equals {}.
	if !equalStores(store{1: Unlocked}, store{}) {
		t.Error("explicit Unlocked equals default")
	}
	if equalStores(store{1: Locked}, store{}) {
		t.Error("Locked differs from default")
	}
	if equalStores(nil, store{}) {
		t.Error("unreachable differs from empty-reachable")
	}
}

// --- Whole-module analyses ---

func analyzeSrc(t *testing.T, src string, mode Mode) *Report {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %s", diags.String())
	}
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("types: %s", diags.String())
	}
	res := infer.Run(tinfo, &diags, infer.Options{})
	sol := solve.Solve(res.Sys)
	return Analyze(res, sol, mode)
}

func TestAnalyzeCleanScalar(t *testing.T) {
	rep := analyzeSrc(t, `
global big: lock;
fun f() {
    spin_lock(&big);
    spin_unlock(&big);
}
`, ModePlain)
	if rep.NumErrors() != 0 {
		t.Errorf("errors: %v", rep.Errors)
	}
	if rep.NumSites != 2 {
		t.Errorf("sites: %d", rep.NumSites)
	}
}

func TestAnalyzeWeakUpdateError(t *testing.T) {
	rep := analyzeSrc(t, `
global locks: lock[4];
fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}
`, ModePlain)
	if rep.NumErrors() != 1 {
		t.Errorf("array pair must err once at the unlock: %v", rep.Errors)
	}
	if rep.Errors[0].Op != "spin_unlock" {
		t.Errorf("failing op: %s", rep.Errors[0].Op)
	}
}

func TestAnalyzeAllStrongCleansWeak(t *testing.T) {
	rep := analyzeSrc(t, `
global locks: lock[4];
fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}
`, ModeAllStrong)
	if rep.NumErrors() != 0 {
		t.Errorf("all-strong must clean weak-update errors: %v", rep.Errors)
	}
}

func TestAnalyzeExplicitRestrictScope(t *testing.T) {
	// An explicit restrict around the pair recovers strong updates
	// even in plain mode.
	rep := analyzeSrc(t, `
global locks: lock[4];
fun f(i: int) {
    restrict l = &locks[i] {
        spin_lock(l);
        spin_unlock(l);
    }
}
`, ModePlain)
	if rep.NumErrors() != 0 {
		t.Errorf("restrict scope must enable strong updates: %v", rep.Errors)
	}
}

func TestAnalyzeExplicitConfineScope(t *testing.T) {
	rep := analyzeSrc(t, `
global locks: lock[4];
fun f(i: int) {
    confine &locks[i] {
        spin_lock(&locks[i]);
        spin_unlock(&locks[i]);
    }
}
`, ModePlain)
	if rep.NumErrors() != 0 {
		t.Errorf("confine scope must enable strong updates: %v", rep.Errors)
	}
}

func TestAnalyzeInterproceduralInlining(t *testing.T) {
	// Lock taken in one helper, released in another; scalar lock so
	// state tracks across the calls.
	rep := analyzeSrc(t, `
global big: lock;
fun take() { spin_lock(&big); }
fun release() { spin_unlock(&big); }
fun f() {
    take();
    release();
    take();
    release();
}
`, ModePlain)
	if rep.NumErrors() != 0 {
		t.Errorf("interprocedural pairing must be clean: %v", rep.Errors)
	}
}

func TestAnalyzeRecursionHavoc(t *testing.T) {
	// A recursive function that locks around the recursive call: the
	// cycle cut havocs the lock, so the post-call unlock cannot be
	// verified — conservative, not crashing.
	rep := analyzeSrc(t, `
global big: lock;
fun rec(n: int) {
    if (n > 0) {
        spin_lock(&big);
        rec(n - 1);
        spin_unlock(&big);
    }
}
`, ModePlain)
	// Sound result: at least the unlock after the havocking call is
	// flagged; the analysis must terminate.
	if rep.NumSites != 2 {
		t.Errorf("sites: %d", rep.NumSites)
	}
	if rep.NumErrors() == 0 {
		t.Log("note: recursion handled precisely (no havoc needed)")
	}
}

func TestAnalyzeErrorCountedOncePerSite(t *testing.T) {
	// The same failing site reached from two callers counts once
	// (the paper counts syntactic calls).
	rep := analyzeSrc(t, `
global locks: lock[4];
fun helper(i: int) {
    spin_unlock(&locks[i]);
}
fun a() { helper(0); }
fun b() { helper(1); }
`, ModePlain)
	if rep.NumErrors() != 1 {
		t.Errorf("one syntactic site must count once: %v", rep.Errors)
	}
}

func TestAnalyzeLoopFixpoint(t *testing.T) {
	// Balanced locking inside a loop over a scalar lock: clean.
	rep := analyzeSrc(t, `
global big: lock;
fun f(n: int) {
    let i = new 0;
    while (*i < n) {
        spin_lock(&big);
        spin_unlock(&big);
        *i = *i + 1;
    }
}
`, ModePlain)
	if rep.NumErrors() != 0 {
		t.Errorf("loop-balanced scalar locking must be clean: %v", rep.Errors)
	}
}

func TestAnalyzeLoopCarriedLock(t *testing.T) {
	// Lock acquired inside the loop, never released: flagged.
	rep := analyzeSrc(t, `
global big: lock;
fun f(n: int) {
    let i = new 0;
    while (*i < n) {
        spin_lock(&big);
        *i = *i + 1;
    }
}
`, ModePlain)
	if rep.NumErrors() != 1 {
		t.Errorf("loop-carried lock must err: %v", rep.Errors)
	}
}

func analyzeSrcOpts(t *testing.T, src string, mode Mode, opts infer.Options) *Report {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %s", diags.String())
	}
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("types: %s", diags.String())
	}
	res := infer.Run(tinfo, &diags, opts)
	sol := solve.Solve(res.Sys)
	return Analyze(res, sol, mode)
}

func TestAnalyzeExplicitRestrictParam(t *testing.T) {
	// An explicit restrict-qualified parameter yields strong updates
	// in the callee without any inference.
	rep := analyzeSrcOpts(t, `
global locks: lock[4];
fun with(l: restrict ref lock) {
    spin_lock(l);
    spin_unlock(l);
}
fun entry(i: int) {
    with(&locks[i]);
    with(&locks[i]);
}
`, ModePlain, infer.Options{})
	if rep.NumErrors() != 0 {
		t.Errorf("restrict param must give strong updates: %v", rep.Errors)
	}
}

func TestAnalyzeInferredParamBinding(t *testing.T) {
	// The same program without the annotation: param inference
	// recovers it.
	src := `
global locks: lock[4];
fun with(l: ref lock) {
    spin_lock(l);
    spin_unlock(l);
}
fun entry(i: int) {
    with(&locks[i]);
    with(&locks[i]);
}
`
	weak := analyzeSrcOpts(t, src, ModePlain, infer.Options{})
	if weak.NumErrors() == 0 {
		t.Error("without inference the array pair must err")
	}
	strong := analyzeSrcOpts(t, src, ModePlain, infer.Options{InferRestrictParams: true})
	if strong.NumErrors() != 0 {
		t.Errorf("param inference must recover strong updates: %v", strong.Errors)
	}
}

func TestAnalyzeSiteCounting(t *testing.T) {
	rep := analyzeSrc(t, `
global a: lock;
global b: lock;
fun f() {
    spin_lock(&a);
    spin_lock(&b);
    spin_unlock(&b);
    spin_unlock(&a);
}
fun unused() {
    spin_lock(&a);
    spin_unlock(&a);
}
`, ModePlain)
	if rep.NumSites != 6 {
		t.Errorf("sites: %d, want 6 (all syntactic lock ops)", rep.NumSites)
	}
	if rep.NumErrors() != 0 {
		t.Errorf("nested scalar locking is clean: %v", rep.Errors)
	}
}

func TestModeString(t *testing.T) {
	if ModePlain.String() != "plain" || ModeAllStrong.String() != "all-strong" {
		t.Error("mode strings")
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Bot: "⊥", Unlocked: "unlocked", Locked: "locked", Top: "⊤"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d: %q", s, s.String())
		}
	}
}
