package qual

// Soundness of the flow-sensitive locking analysis, quick-checked:
// when the analysis verifies every site (zero type errors in plain
// mode), no execution of the (deterministic, input-free) program may
// trap on a lock operation. This complements the restrict soundness
// property (Theorem 1, internal/interp): there the type system, here
// the client analysis.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"localalias/internal/infer"
	"localalias/internal/interp"
	"localalias/internal/parser"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// lockGen generates a random deterministic locking program: scalar
// and array locks, literal indices, branches on constants, helper
// calls, balanced and unbalanced sequences.
type lockGen struct {
	r       *rand.Rand
	b       strings.Builder
	indent  int
	helpers int
}

func (g *lockGen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// lockExpr picks a random lock place expression.
func (g *lockGen) lockExpr() string {
	switch g.r.Intn(3) {
	case 0:
		return "&big0"
	case 1:
		return "&big1"
	default:
		return fmt.Sprintf("&tbl[%d]", g.r.Intn(4))
	}
}

func (g *lockGen) stmts(depth, budget int) {
	for i := 0; i < budget; i++ {
		g.stmt(depth)
	}
}

func (g *lockGen) stmt(depth int) {
	switch g.r.Intn(6) {
	case 0, 1: // balanced pair (the common case)
		l := g.lockExpr()
		g.line("spin_lock(%s);", l)
		if g.r.Intn(2) == 0 {
			g.line("work();")
		}
		g.line("spin_unlock(%s);", l)
	case 2: // lone op (often a bug)
		op := "spin_lock"
		if g.r.Intn(2) == 0 {
			op = "spin_unlock"
		}
		g.line("%s(%s);", op, g.lockExpr())
	case 3: // branch on a constant
		if depth > 0 {
			g.line("if (%d) {", g.r.Intn(2))
			g.indent++
			g.stmts(depth-1, 1+g.r.Intn(2))
			g.indent--
			g.line("} else {")
			g.indent++
			g.stmts(depth-1, 1+g.r.Intn(2))
			g.indent--
			g.line("}")
		}
	case 4: // helper call
		if g.helpers > 0 {
			g.line("h%d();", g.r.Intn(g.helpers))
		}
	default:
		g.line("work();")
	}
}

func generateLockProgram(seed int64) string {
	g := &lockGen{r: rand.New(rand.NewSource(seed))}
	g.line("global big0: lock;")
	g.line("global big1: lock;")
	g.line("global tbl: lock[4];")
	g.line("")
	nHelpers := g.r.Intn(3)
	for i := 0; i < nHelpers; i++ {
		g.line("fun h%d() {", i)
		g.indent++
		g.stmts(1, 1+g.r.Intn(2))
		g.indent--
		g.line("}")
		g.helpers++
	}
	g.line("fun main() {")
	g.indent++
	g.stmts(2, 2+g.r.Intn(4))
	g.indent--
	g.line("}")
	return g.b.String()
}

// analyzeAndRun returns (plain-mode error count, runtime lock trap).
func analyzeAndRun(t *testing.T, src string) (int, error) {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("lock.mc", src, &diags)
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("generator output invalid:\n%s\n%s", diags.String(), src)
	}
	res := infer.Run(tinfo, &diags, infer.Options{})
	sol := solve.Solve(res.Sys)
	rep := Analyze(res, sol, ModePlain)

	in := interp.New(tinfo, interp.Options{MaxSteps: 1 << 16})
	_, err := in.Call("main")
	return rep.NumErrors(), err
}

func TestQualSoundnessQuick(t *testing.T) {
	prop := func(seed int64) bool {
		src := generateLockProgram(seed)
		errs, runErr := analyzeAndRun(t, src)
		if errs > 0 {
			return true // flagged: no claim
		}
		if runErr != nil && strings.Contains(runErr.Error(), "lock") {
			t.Logf("QUAL SOUNDNESS VIOLATION (seed %d): verified but trapped: %v\n%s",
				seed, runErr, src)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQualSoundnessDistribution(t *testing.T) {
	verified, flagged, flaggedTrapped := 0, 0, 0
	for seed := int64(0); seed < 300; seed++ {
		errs, runErr := analyzeAndRun(t, generateLockProgram(seed))
		if errs == 0 {
			verified++
		} else {
			flagged++
			if runErr != nil && strings.Contains(runErr.Error(), "lock") {
				flaggedTrapped++
			}
		}
	}
	t.Logf("verified=%d flagged=%d flagged-and-trapped=%d", verified, flagged, flaggedTrapped)
	if verified < 30 {
		t.Errorf("generator too hostile: only %d verified", verified)
	}
	if flagged < 30 {
		t.Errorf("generator too tame: only %d flagged", flagged)
	}
	if flaggedTrapped == 0 {
		t.Error("no flagged program actually trapped; the analysis may be vacuously strict")
	}
}
