package qual

// Cross-module transfer summaries.
//
// An exported function's observable locking behavior, seen from a
// caller in another module, is a transfer table per ref-lock formal:
// for each entry state of the formal's target, the state it holds on
// exit and whether entering with that state makes some lock-op site
// inside the callee fail. The table is computed by probing — running
// the module's own analyzer over the function once per lattice point
// with the formal's location as the only non-default store entry — so
// it is exact with respect to this module's analysis, including the
// restrict/confine scopes the callee's annotations establish.
//
// Soundness at the boundary: the probe may not assume the formal's
// target is linear. Inside a single module the alias analysis would
// unify the formal with the caller's argument and discover
// multiplicity; across modules that unification never happens. The
// probe therefore forces WEAK updates on every formal's outer
// location (see analyzer.weak) unless the formal is restrict — a
// restrict annotation is precisely the callee's checked license to
// treat its copy ρ′ as linear, and is what makes summaries precise.

import (
	"localalias/internal/ast"
	"localalias/internal/infer"
	"localalias/internal/locs"
	"localalias/internal/solve"
	"localalias/internal/types"
)

// TransferEntry is one row of a formal's transfer table: the exit
// state of the formal's target, and whether entering the callee with
// the row's input state makes a lock-op site attributable to that
// target fail.
type TransferEntry struct {
	Out State `json:"out"`
	Err bool  `json:"err,omitempty"`
}

// ParamTransfer is one formal's transfer table over the four lattice
// points, indexed by entry State.
type ParamTransfer struct {
	// Param is the formal's index in the callee's signature.
	Param int              `json:"param"`
	Table [4]TransferEntry `json:"table"`
}

// Transfers maps qualified or exported function names to their
// per-formal transfer tables. A present entry — even an empty one,
// for functions without ref-lock formals — means the callee's
// behavior is known; absence means havoc.
type Transfers map[string][]ParamTransfer

// AnalyzeWith is Analyze with cross-module summaries: qualified calls
// pkg.fn(...) whose name appears in sums apply the callee's transfer
// tables to the argument targets; absent callees (and calls passing
// aliased ref arguments, which the callee's probe could not have
// anticipated) havoc their argument targets to ⊤.
func AnalyzeWith(res *infer.Result, sol *solve.Result, mode Mode, sums Transfers) *Report {
	a := &analyzer{
		res:    res,
		sol:    sol,
		mode:   mode,
		sums:   sums,
		failed: make(map[*ast.CallExpr]SiteError),
	}
	a.countSites()

	for _, f := range roots(res) {
		sigma := store{}
		a.fun(f, sigma, nil)
	}
	return a.report()
}

// ComputeTransfers computes the transfer tables of every exported
// (exportable, declared) function of the module analyzed by res,
// under the given mode. sums supplies this module's own import
// summaries so probes compose up the dependency DAG. Functions whose
// formals cannot be located are omitted, forcing havoc at their call
// sites.
func ComputeTransfers(res *infer.Result, sol *solve.Result, mode Mode, sums Transfers) Transfers {
	out := make(Transfers)
	for _, f := range res.Prog.Funs {
		sig := res.TInfo.Funs[f.Name]
		if sig == nil || sig.Decl != f || !types.Exportable(sig) {
			continue
		}
		tables, ok := transfersOf(res, sol, mode, sums, f, sig)
		if ok {
			out[f.Name] = tables
		}
	}
	return out
}

func transfersOf(res *infer.Result, sol *solve.Result, mode Mode, sums Transfers,
	f *ast.FunDecl, sig *types.FunSig) ([]ParamTransfer, bool) {
	// Locate every ref-lock formal's outer location; force weak
	// updates on all of them during probes (callers' targets may be
	// summarized storage).
	type formal struct {
		idx int
		rho locs.Loc
	}
	var formals []formal
	weak := make(map[locs.Loc]bool)
	for i, pt := range sig.Params {
		r, isRef := pt.(*types.Ref)
		if !isRef || !types.IsLock(r.Elem) {
			continue
		}
		rho := formalRho(res, f.Params[i])
		if rho == locs.NoLoc {
			return nil, false
		}
		formals = append(formals, formal{i, rho})
		weak[rho] = true
	}
	tables := []ParamTransfer{}
	for _, fm := range formals {
		pt := ParamTransfer{Param: fm.idx}
		for s := Bot; s <= Top; s++ {
			a := &analyzer{
				res:    res,
				sol:    sol,
				mode:   mode,
				sums:   sums,
				failed: make(map[*ast.CallExpr]SiteError),
				weak:   weak,
				watch:  map[locs.Loc]bool{fm.rho: true},
			}
			out := a.fun(f, store{fm.rho: s}, nil)
			ent := TransferEntry{Out: Top, Err: a.watchErrs > 0}
			if out != nil {
				ent.Out = out.get(fm.rho)
			}
			pt.Table[s] = ent
		}
		tables = append(tables, pt)
	}
	return tables, true
}

// formalRho returns the canonical outer location of a ref formal: the
// ρ of its restrict binding when one exists, else its placeholder
// cell.
func formalRho(res *infer.Result, p *ast.Param) locs.Loc {
	if b := res.Bindings[p]; b != nil {
		return res.Locs.Find(b.Rho)
	}
	sym := res.TInfo.Binders[p]
	if sym == nil {
		return locs.NoLoc
	}
	if lt := res.SymLTypes[sym]; lt != nil && lt.Kind() == infer.LRef {
		return res.Locs.Find(lt.Cell())
	}
	return locs.NoLoc
}

// importedCall applies the callee's transfer tables to the call's
// argument targets, or havocs them to ⊤ when the callee is unknown
// (no summary — missing package, cyclic dependency, or a
// havoc-baseline run) or the ref arguments alias each other.
func (a *analyzer) importedCall(e *ast.CallExpr, sigma store) store {
	type refArg struct {
		idx    int
		target locs.Loc
	}
	var refs []refArg
	aliased := false
	seen := make(map[locs.Loc]bool)
	for i, arg := range e.Args {
		if t, ok := a.res.TargetOf(arg); ok {
			t = a.res.Locs.Find(t)
			if seen[t] {
				aliased = true
			}
			seen[t] = true
			refs = append(refs, refArg{i, t})
		}
	}
	var sum []ParamTransfer
	known := false
	if a.sums != nil {
		sum, known = a.sums[e.Fun]
	}
	if !known || aliased {
		for _, r := range refs {
			sigma[r.target] = Top
		}
		return sigma
	}
	for _, pt := range sum {
		for _, r := range refs {
			if r.idx != pt.Param {
				continue
			}
			in := sigma.get(r.target)
			ent := pt.Table[in]
			if ent.Err {
				if _, dup := a.failed[e]; !dup {
					a.failed[e] = SiteError{
						Call: e,
						Site: e.Sp,
						Op:   e.Fun,
						Want: wantOf(pt),
						Got:  in,
					}
				}
				if a.watch != nil && a.watch[r.target] {
					a.watchErrs++
				}
			}
			if a.strongOK(r.target) {
				sigma[r.target] = ent.Out
			} else {
				sigma[r.target] = Join(in, ent.Out)
			}
		}
	}
	return sigma
}

// wantOf picks the entry state to report as "required" in a summary
// violation: the first definite state the table accepts.
func wantOf(pt ParamTransfer) State {
	for _, s := range [...]State{Unlocked, Locked} {
		if !pt.Table[s].Err {
			return s
		}
	}
	return Unlocked
}
