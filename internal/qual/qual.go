// Package qual is the flow-sensitive type-qualifier client of the
// experiment in Section 7: it tracks the locked/unlocked state of
// every lock's abstract location through each driver module and
// counts the syntactic spin_lock/spin_unlock sites whose precondition
// cannot be verified — the paper's "type errors".
//
// The analysis follows the CQUAL design the paper builds on [15]:
//
//   - state is a map from abstract locations to a four-point lattice
//     ⊥ ⊑ {Locked, Unlocked} ⊑ ⊤;
//   - spin_lock(e) requires the target location to be Unlocked and
//     sets it Locked; spin_unlock dually. A failed precondition marks
//     the syntactic site as a type error (counted once no matter how
//     many paths reach it);
//   - a STRONG update replaces the location's state; it is permitted
//     when the location is linear — a single concrete cell. A WEAK
//     update joins old and new states, which is what degrades
//     information for array elements and other summarized storage
//     (the paper's Figure 1 story);
//   - a restrict/confine scope copies the outer location's state onto
//     the fresh ρ′ at entry (one cell, hence strongly updatable
//     inside) and joins it back at exit;
//   - calls are analyzed by inlining to a bounded depth with cycle
//     detection; on a cycle the callee's latent effect havocs the
//     locations it writes.
//
// Three modes reproduce the experiment's three columns: NoConfine
// (plain linearity), WithBindings (confine/restrict scopes honored),
// and AllStrong (every update strong — the upper bound on what
// strong-update recovery can achieve).
package qual

import (
	"fmt"
	"sort"

	"localalias/internal/ast"
	"localalias/internal/effects"
	"localalias/internal/infer"
	"localalias/internal/locs"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// Mode selects the update policy.
type Mode int

// The analysis modes.
const (
	// ModePlain performs strong updates only on linear locations and
	// honors restrict/confine bindings present in the program.
	ModePlain Mode = iota
	// ModeAllStrong performs every update strongly: the upper bound
	// used by the paper to bound how many errors strong updates could
	// ever eliminate.
	ModeAllStrong
)

func (m Mode) String() string {
	if m == ModeAllStrong {
		return "all-strong"
	}
	return "plain"
}

// State is the lock lattice.
type State uint8

// The lattice points.
const (
	Bot State = iota
	Unlocked
	Locked
	Top
)

func (s State) String() string {
	switch s {
	case Bot:
		return "⊥"
	case Unlocked:
		return "unlocked"
	case Locked:
		return "locked"
	default:
		return "⊤"
	}
}

// Join is the lattice join.
func Join(a, b State) State {
	if a == b {
		return a
	}
	if a == Bot {
		return b
	}
	if b == Bot {
		return a
	}
	return Top
}

// SiteError is one unverifiable lock-operation site.
type SiteError struct {
	Call *ast.CallExpr
	Site source.Span
	// Op is "spin_lock" or "spin_unlock"; Want the required state;
	// Got the state observed on some path.
	Op   string
	Want State
	Got  State
}

func (e SiteError) String() string {
	return fmt.Sprintf("%s: lock may be %s (must be %s)", e.Op, e.Got, e.Want)
}

// Report is the outcome of analyzing one module.
type Report struct {
	Mode Mode
	// Errors lists the failing syntactic sites in source order.
	Errors []SiteError
	// NumSites is the total number of syntactic lock-op sites.
	NumSites int
}

// NumErrors returns the paper's per-module "type errors" count.
func (r *Report) NumErrors() int { return len(r.Errors) }

// maxInlineDepth bounds call inlining (driver modules are shallow;
// the bound only guards against pathological recursion).
const maxInlineDepth = 64

// Analyze runs the locking analysis over the module captured by res.
// sol is the least solution of res.Sys (used to havoc on recursion
// cut-offs); it may be nil, in which case recursion havocs nothing.
// Qualified calls into imported modules havoc their argument targets;
// use AnalyzeWith to apply cross-module summaries instead.
func Analyze(res *infer.Result, sol *solve.Result, mode Mode) *Report {
	return AnalyzeWith(res, sol, mode, nil)
}

func (a *analyzer) report() *Report {
	rep := &Report{Mode: a.mode, NumSites: a.numSites}
	for _, e := range a.failed {
		rep.Errors = append(rep.Errors, e)
	}
	sort.Slice(rep.Errors, func(i, j int) bool {
		return rep.Errors[i].Site.Start < rep.Errors[j].Site.Start
	})
	return rep
}

// roots returns the functions not called from within the module, in
// declaration order; if every function is called (cycles), all
// functions are roots.
func roots(res *infer.Result) []*ast.FunDecl {
	called := map[string]bool{}
	ast.Inspect(res.Prog, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			called[c.Fun] = true
		}
		return true
	})
	var out []*ast.FunDecl
	for _, f := range res.Prog.Funs {
		if !called[f.Name] {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		out = res.Prog.Funs
	}
	return out
}

// store maps canonical locations to lattice states. Absent entries
// are Unlocked (all locks start unlocked). A nil store means the
// program point is unreachable.
type store map[locs.Loc]State

func (s store) clone() store {
	if s == nil {
		return nil
	}
	c := make(store, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s store) get(l locs.Loc) State {
	if v, ok := s[l]; ok {
		return v
	}
	return Unlocked
}

// joinStores joins two (possibly unreachable) stores.
func joinStores(a, b store) store {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(store, len(a)+len(b))
	for k, v := range a {
		out[k] = Join(v, b.get(k))
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			out[k] = Join(v, a.get(k))
		}
	}
	return out
}

func equalStores(a, b store) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	for k, v := range a {
		if b.get(k) != v {
			return false
		}
	}
	for k, v := range b {
		if a.get(k) != v {
			return false
		}
	}
	return true
}

type analyzer struct {
	res      *infer.Result
	sol      *solve.Result
	mode     Mode
	failed   map[*ast.CallExpr]SiteError
	numSites int

	// sums are the import summaries (nil: havoc imported calls).
	sums Transfers
	// weak forces weak updates on the listed locations regardless of
	// linearity. Transfer probes use it for formals whose caller-side
	// targets may be summarized storage (see transfer.go).
	weak map[locs.Loc]bool
	// watch, when non-nil, marks the locations whose lock-op failures
	// are attributable to the probed formal; watchErrs counts them.
	// Scope entry propagates watchedness from ρ to ρ′.
	watch     map[locs.Loc]bool
	watchErrs int
}

func (a *analyzer) countSites() {
	ast.Inspect(a.res.Prog, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && types.IsLockOp(c.Fun) {
			a.numSites++
		}
		return true
	})
}

func (a *analyzer) strongOK(l locs.Loc) bool {
	if a.mode == ModeAllStrong {
		return true
	}
	if a.weak != nil && a.weak[l] {
		return false
	}
	return a.res.Locs.Linear(l)
}

// enterBinding models restrict/confine scope entry: the fresh ρ′
// receives a copy of ρ's state.
func (a *analyzer) enterBinding(b *infer.Binding, sigma store) (rho, rhoP locs.Loc, ok bool) {
	if b == nil {
		return 0, 0, false
	}
	if !b.Explicit && (b.Cand == nil || !a.res.Succeeded(b.Cand)) {
		return 0, 0, false
	}
	rho = a.res.Locs.Find(b.Rho)
	rhoP = a.res.Locs.Find(b.RhoP)
	if rho == rhoP {
		return 0, 0, false
	}
	sigma[rhoP] = sigma.get(rho)
	if a.watch != nil && a.watch[rho] {
		a.watch[rhoP] = true
	}
	return rho, rhoP, true
}

// exitBinding models scope exit: ρ receives ρ′'s final state,
// strongly when ρ is linear and weakly (joined) otherwise; ρ′ dies.
func (a *analyzer) exitBinding(rho, rhoP locs.Loc, sigma store) {
	if sigma == nil {
		return
	}
	final := sigma.get(rhoP)
	if a.strongOK(rho) {
		sigma[rho] = final
	} else {
		sigma[rho] = Join(sigma.get(rho), final)
	}
	delete(sigma, rhoP)
}

// fun analyzes a function body under sigma, returning the join of the
// fall-through and all return states. stack carries the inline chain.
func (a *analyzer) fun(f *ast.FunDecl, sigma store, stack []string) store {
	for _, s := range stack {
		if s == f.Name {
			// Recursion: havoc the locations the callee writes.
			a.havoc(f.Name, sigma)
			return sigma
		}
	}
	if len(stack) >= maxInlineDepth {
		a.havoc(f.Name, sigma)
		return sigma
	}
	stack = append(stack, f.Name)

	// Parameter restrict bindings.
	type opened struct{ rho, rhoP locs.Loc }
	var open []opened
	for _, p := range f.Params {
		if b := a.res.Bindings[p]; b != nil {
			if rho, rhoP, ok := a.enterBinding(b, sigma); ok {
				open = append(open, opened{rho, rhoP})
			}
		}
	}
	out, rets := a.stmts(f.Body.Stmts, sigma, stack)
	out = joinStores(out, rets)
	for i := len(open) - 1; i >= 0; i-- {
		a.exitBinding(open[i].rho, open[i].rhoP, out)
	}
	return out
}

// havoc sets every location the named function writes (per its latent
// effect) to ⊤.
func (a *analyzer) havoc(fn string, sigma store) {
	if sigma == nil || a.sol == nil {
		return
	}
	eff, ok := a.res.FunEff[fn]
	if !ok {
		return
	}
	// EachAtom may repeat a canonical atom; writing Top twice is
	// harmless, and skipping the dedup+sort of Atoms keeps recursive
	// havoc allocation-free.
	a.sol.EachAtom(eff, func(at effects.Atom) {
		if at.Kind == effects.Write {
			sigma[at.Loc] = Top
		}
	})
}

// stmts analyzes a statement list, returning (fallthrough state,
// joined return states). A nil fallthrough means the tail is
// unreachable.
func (a *analyzer) stmts(list []ast.Stmt, sigma store, stack []string) (store, store) {
	var rets store
	for i, s := range list {
		if sigma == nil {
			return nil, rets
		}
		switch s := s.(type) {
		case *ast.DeclStmt:
			// Remainder-of-block binder; possibly a restrict scope.
			if b := a.res.Bindings[s]; b != nil {
				if rho, rhoP, ok := a.enterBinding(b, sigma); ok {
					out, r2 := a.stmts(list[i+1:], sigma, stack)
					a.exitBinding(rho, rhoP, out)
					// Returned-through states also carry ρ′; fold it
					// back there too.
					a.exitBinding(rho, rhoP, r2)
					return out, joinStores(rets, r2)
				}
			}
			// Plain let: evaluate the initializer for lock ops inside
			// (e.g. a call), then continue.
			sigma = a.expr(s.Init, sigma, stack)
		case *ast.ReturnStmt:
			if s.X != nil {
				sigma = a.expr(s.X, sigma, stack)
			}
			rets = joinStores(rets, sigma)
			return nil, rets
		default:
			var r2 store
			sigma, r2 = a.stmt(s, sigma, stack)
			rets = joinStores(rets, r2)
		}
	}
	return sigma, rets
}

// stmt analyzes one statement, returning (fallthrough, returns).
func (a *analyzer) stmt(s ast.Stmt, sigma store, stack []string) (store, store) {
	switch s := s.(type) {
	case *ast.BindStmt:
		sigma = a.expr(s.Init, sigma, stack)
		if b := a.res.Bindings[s]; b != nil {
			if rho, rhoP, ok := a.enterBinding(b, sigma); ok {
				out, rets := a.stmts(s.Body.Stmts, sigma, stack)
				a.exitBinding(rho, rhoP, out)
				a.exitBinding(rho, rhoP, rets)
				return out, rets
			}
		}
		return a.stmts(s.Body.Stmts, sigma, stack)

	case *ast.ConfineStmt:
		sigma = a.expr(s.Expr, sigma, stack)
		if b := a.res.Bindings[s]; b != nil {
			if rho, rhoP, ok := a.enterBinding(b, sigma); ok {
				out, rets := a.stmts(s.Body.Stmts, sigma, stack)
				a.exitBinding(rho, rhoP, out)
				a.exitBinding(rho, rhoP, rets)
				return out, rets
			}
		}
		return a.stmts(s.Body.Stmts, sigma, stack)

	case *ast.AssignStmt:
		sigma = a.expr(s.LHS, sigma, stack)
		sigma = a.expr(s.RHS, sigma, stack)
		return sigma, nil

	case *ast.ExprStmt:
		return a.expr(s.X, sigma, stack), nil

	case *ast.IfStmt:
		sigma = a.expr(s.Cond, sigma, stack)
		thenOut, thenRets := a.stmts(s.Then.Stmts, sigma.clone(), stack)
		elseIn := sigma
		var elseOut, elseRets store
		if s.Else != nil {
			elseOut, elseRets = a.stmts(s.Else.Stmts, elseIn, stack)
		} else {
			elseOut = elseIn
		}
		return joinStores(thenOut, elseOut), joinStores(thenRets, elseRets)

	case *ast.WhileStmt:
		// Fixpoint over the loop body.
		cur := sigma
		var rets store
		for iter := 0; ; iter++ {
			condSt := a.expr(s.Cond, cur.clone(), stack)
			bodyOut, bodyRets := a.stmts(s.Body.Stmts, condSt, stack)
			rets = joinStores(rets, bodyRets)
			next := joinStores(cur, bodyOut)
			if equalStores(next, cur) || iter > 8 {
				cur = next
				break
			}
			cur = next
		}
		// Executing the condition once more on exit.
		cur = a.expr(s.Cond, cur, stack)
		return cur, rets

	case *ast.Block:
		return a.stmts(s.Stmts, sigma, stack)

	default:
		return sigma, nil
	}
}

// expr analyzes an expression for lock operations and calls.
func (a *analyzer) expr(e ast.Expr, sigma store, stack []string) store {
	if sigma == nil || e == nil {
		return sigma
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		for _, arg := range e.Args {
			sigma = a.expr(arg, sigma, stack)
		}
		if types.IsLockOp(e.Fun) && len(e.Args) == 1 {
			return a.lockOp(e, sigma)
		}
		if f := a.res.Prog.Fun(e.Fun); f != nil {
			return a.fun(f, sigma, stack)
		}
		if _, _, ok := ast.SplitQualified(e.Fun); ok {
			return a.importedCall(e, sigma)
		}
		return sigma
	case *ast.BinExpr:
		sigma = a.expr(e.X, sigma, stack)
		return a.expr(e.Y, sigma, stack)
	case *ast.UnExpr:
		return a.expr(e.X, sigma, stack)
	case *ast.NewExpr:
		return a.expr(e.Init, sigma, stack)
	case *ast.DerefExpr:
		return a.expr(e.X, sigma, stack)
	case *ast.AddrExpr:
		return a.expr(e.X, sigma, stack)
	case *ast.IndexExpr:
		sigma = a.expr(e.X, sigma, stack)
		return a.expr(e.Index, sigma, stack)
	case *ast.FieldExpr:
		return a.expr(e.X, sigma, stack)
	default:
		return sigma
	}
}

// lockOp checks and applies one spin_lock/spin_unlock site.
func (a *analyzer) lockOp(call *ast.CallExpr, sigma store) store {
	target, ok := a.res.TargetOf(call.Args[0])
	if !ok {
		return sigma
	}
	target = a.res.Locs.Find(target)
	op, _ := types.LookupChangeOp(call.Fun)
	want, next := Unlocked, Locked
	if !op.Acquire {
		want, next = Locked, Unlocked
	}
	got := sigma.get(target)
	if got != want {
		if _, dup := a.failed[call]; !dup {
			a.failed[call] = SiteError{
				Call: call,
				Site: call.Sp,
				Op:   call.Fun,
				Want: want,
				Got:  got,
			}
		}
		if a.watch != nil && a.watch[target] {
			a.watchErrs++
		}
	}
	if a.strongOK(target) {
		sigma[target] = next
	} else {
		sigma[target] = Join(got, next)
	}
	return sigma
}
