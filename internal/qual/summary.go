package qual

import (
	"sort"

	"localalias/internal/ast"
	"localalias/internal/source"
	"localalias/internal/types"
)

// FuncSummary is the per-function slice of a module Report: the
// function's failing lock-op sites with spans rebased to the start of
// the function's own span. Rebasing is what makes a summary a
// *transfer* summary — it is invariant under edits elsewhere in the
// file (which only shift the function wholesale), so the incremental
// engine can keep a function's summary across revisions and recompose
// the module report instead of re-running the qualifier analysis.
type FuncSummary struct {
	// Name is the function's declared name.
	Name string
	// Span is the function's span in the revision the summary was
	// extracted from (diagnostic/debug value; composition uses the
	// *target* revision's span instead).
	Span source.Span
	// Errors lists the function's failing sites in source order, with
	// each Site rebased: Site.Start/End are offsets from the
	// function's Span.Start. The Call pointer is dropped — it is an
	// AST identity, meaningless across revisions.
	Errors []SiteError
	// Sites is the number of syntactic lock-op sites attributed to the
	// function (its share of Report.NumSites).
	Sites int
}

// Summarize splits a module report into per-function transfer
// summaries. Errors are bucketed by enclosing function span; an error
// outside every function (impossible for lock-op sites, which live in
// bodies) is attributed to a summary with an empty name so nothing is
// silently dropped. Site counts are recounted per function so the
// summaries partition Report.NumSites exactly.
func Summarize(prog *ast.Program, rep *Report) []FuncSummary {
	out := make([]FuncSummary, len(prog.Funs))
	for i, f := range prog.Funs {
		out[i] = FuncSummary{Name: f.Name, Span: f.Span(),
			Sites: countSitesIn(f)}
	}
	var orphans FuncSummary
	for _, e := range rep.Errors {
		placed := false
		for i, f := range prog.Funs {
			sp := f.Span()
			if e.Site.Start >= sp.Start && e.Site.Start < sp.End {
				rebased := e
				rebased.Call = nil
				rebased.Site.Start -= sp.Start
				rebased.Site.End -= sp.Start
				out[i].Errors = append(out[i].Errors, rebased)
				placed = true
				break
			}
		}
		if !placed {
			orphans.Errors = append(orphans.Errors, e)
		}
	}
	if len(orphans.Errors) > 0 {
		out = append(out, orphans)
	}
	return out
}

// Compose reassembles a module report from per-function summaries,
// resolving each summary against the function's span in prog — which
// may be a *different revision* than the one the summary was extracted
// from, as long as the named function's body is unchanged (the
// incremental engine's funcidx hashes guard exactly that). Summaries
// naming functions absent from prog are skipped; mode is the composed
// report's mode tag.
func Compose(prog *ast.Program, sums []FuncSummary, mode Mode) *Report {
	funs := make(map[string]*ast.FunDecl, len(prog.Funs))
	for _, f := range prog.Funs {
		funs[f.Name] = f
	}
	rep := &Report{Mode: mode}
	for _, s := range sums {
		if s.Name == "" {
			// Orphan bucket: spans were never rebased.
			rep.Errors = append(rep.Errors, s.Errors...)
			continue
		}
		f, ok := funs[s.Name]
		if !ok {
			continue
		}
		rep.NumSites += s.Sites
		sp := f.Span()
		for _, e := range s.Errors {
			e.Site.Start += sp.Start
			e.Site.End += sp.Start
			rep.Errors = append(rep.Errors, e)
		}
	}
	sort.Slice(rep.Errors, func(i, j int) bool {
		return rep.Errors[i].Site.Start < rep.Errors[j].Site.Start
	})
	return rep
}

// countSitesIn counts the syntactic lock-op call sites in one
// function, mirroring the analyzer's whole-program countSites walk.
func countSitesIn(f *ast.FunDecl) int {
	n := 0
	ast.Inspect(f, func(nd ast.Node) bool {
		if c, ok := nd.(*ast.CallExpr); ok && types.IsLockOp(c.Fun) {
			n++
		}
		return true
	})
	return n
}
