package qual

import (
	"reflect"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/infer"
	"localalias/internal/parser"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// summarySrc has one weak-update error in each of two functions (the
// classic array-lock pair) plus a clean function, so summaries have
// something to bucket and something empty.
const summarySrc = `
global locks: lock[4];

fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}

fun clean() {
    let x = 1;
}

fun g(j: int) {
    spin_lock(&locks[j]);
    spin_unlock(&locks[j]);
}
`

// analyzeProg is analyzeSrc but also returns the parsed program, which
// Summarize/Compose need for the function spans.
func analyzeProg(t *testing.T, src string, mode Mode) (*ast.Program, *Report) {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %s", diags.String())
	}
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("types: %s", diags.String())
	}
	res := infer.Run(tinfo, &diags, infer.Options{})
	sol := solve.Solve(res.Sys)
	return prog, Analyze(res, sol, mode)
}

// siteKey strips the AST identity from an error so reports from
// different parses compare structurally.
type siteKey struct {
	Site source.Span
	Op   string
	Want State
	Got  State
}

func keys(rep *Report) []siteKey {
	out := make([]siteKey, 0, len(rep.Errors))
	for _, e := range rep.Errors {
		out = append(out, siteKey{e.Site, e.Op, e.Want, e.Got})
	}
	return out
}

// TestSummarizeBucketsBySpan: each error lands in its enclosing
// function's summary with a span rebased to the function start, and
// the per-function site counts partition the module total.
func TestSummarizeBucketsBySpan(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)
	if rep.NumErrors() != 2 || rep.NumSites != 4 {
		t.Fatalf("fixture drifted: %d errors, %d sites (want 2, 4)", rep.NumErrors(), rep.NumSites)
	}
	sums := Summarize(prog, rep)
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want one per function: %+v", len(sums), sums)
	}
	byName := map[string]FuncSummary{}
	total := 0
	for _, s := range sums {
		byName[s.Name] = s
		total += s.Sites
	}
	if total != rep.NumSites {
		t.Errorf("summary sites sum to %d, want the module's %d", total, rep.NumSites)
	}
	if n := len(byName["f"].Errors); n != 1 {
		t.Errorf("f has %d errors, want 1", n)
	}
	if n := len(byName["g"].Errors); n != 1 {
		t.Errorf("g has %d errors, want 1", n)
	}
	if n := len(byName["clean"].Errors); n != 0 || byName["clean"].Sites != 0 {
		t.Errorf("clean has %d errors / %d sites, want none", n, byName["clean"].Sites)
	}
	for _, name := range []string{"f", "g"} {
		s := byName[name]
		e := s.Errors[0]
		if e.Call != nil {
			t.Errorf("%s: summary retains an AST pointer", name)
		}
		if e.Site.Start < 0 || e.Site.End > s.Span.End-s.Span.Start {
			t.Errorf("%s: rebased site %v escapes the function span %v", name, e.Site, s.Span)
		}
	}
}

// TestComposeRoundTrip: composing a module's own summaries against the
// same program reproduces the report exactly.
func TestComposeRoundTrip(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)
	got := Compose(prog, Summarize(prog, rep), ModePlain)
	if got.NumSites != rep.NumSites {
		t.Errorf("NumSites = %d, want %d", got.NumSites, rep.NumSites)
	}
	if !reflect.DeepEqual(keys(got), keys(rep)) {
		t.Errorf("composed errors differ:\n got %+v\nwant %+v", keys(got), keys(rep))
	}
}

// TestComposeAcrossRevisions is the transfer property the incremental
// engine relies on: summaries extracted from one revision compose
// against a shifted revision (same bodies, different offsets) into
// exactly the report a from-scratch analysis of that revision yields.
func TestComposeAcrossRevisions(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)
	sums := Summarize(prog, rep)

	shifted := "// a leading comment\n/* pushing every\n   span down */\n" + summarySrc
	sprog, want := analyzeProg(t, shifted, ModePlain)

	got := Compose(sprog, sums, ModePlain)
	if got.NumSites != want.NumSites {
		t.Errorf("NumSites = %d, want %d", got.NumSites, want.NumSites)
	}
	if !reflect.DeepEqual(keys(got), keys(want)) {
		t.Errorf("composed report differs from direct analysis of the shifted revision:\n got %+v\nwant %+v", keys(got), keys(want))
	}
	// Sanity: the direct report's spans really did move, so the
	// comparison above is not vacuous.
	if reflect.DeepEqual(keys(want), keys(rep)) {
		t.Error("shifted revision has identical spans (test is vacuous)")
	}
}

// TestComposeEmptySummaries: the degenerate inputs the incremental
// engine can hand Compose — no summaries at all (first revision of an
// empty module), and summaries of a clean module (sites but no
// errors) — produce well-formed reports, not nils or phantom errors.
func TestComposeEmptySummaries(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)

	got := Compose(prog, nil, ModePlain)
	if got == nil || got.NumErrors() != 0 || got.NumSites != 0 {
		t.Errorf("Compose(prog, nil) = %+v, want an empty report", got)
	}
	if got.Mode != ModePlain {
		t.Errorf("empty report lost the mode tag: %v", got.Mode)
	}

	// Summaries with sites but no errors keep the site accounting.
	clean := `
global l: lock;

fun ok() {
    spin_lock(&l);
    spin_unlock(&l);
}
`
	cprog, crep := analyzeProg(t, clean, ModePlain)
	if crep.NumErrors() != 0 {
		t.Fatalf("clean fixture drifted: %d errors", crep.NumErrors())
	}
	cgot := Compose(cprog, Summarize(cprog, crep), ModePlain)
	if cgot.NumErrors() != 0 || cgot.NumSites != crep.NumSites {
		t.Errorf("clean compose = %d errors / %d sites, want 0 / %d",
			cgot.NumErrors(), cgot.NumSites, crep.NumSites)
	}

	// And a summary list from a different module entirely (every name
	// absent from prog) composes to the empty report.
	foreign := Summarize(prog, rep)
	fgot := Compose(cprog, foreign[2:3], ModePlain) // g only; cprog has no g
	if fgot.NumErrors() != 0 || fgot.NumSites != 0 {
		t.Errorf("foreign summary leaked into the report: %+v", fgot)
	}
}

// TestComposeRemovedFunctionDropsItsErrors: when a function is removed
// between the summary's revision and the target revision, its errors
// and site count must vanish from the composed report — the
// regression this guards against is a stale summary resurrecting
// findings for code that no longer exists.
func TestComposeRemovedFunctionDropsItsErrors(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)
	sums := Summarize(prog, rep)

	// Same module with g deleted; f and clean unchanged, so their
	// (revision-1) summaries remain valid for revision 2.
	removed := `
global locks: lock[4];

fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}

fun clean() {
    let x = 1;
}
`
	rprog, want := analyzeProg(t, removed, ModePlain)
	got := Compose(rprog, sums, ModePlain)
	if got.NumErrors() != 1 || got.NumSites != want.NumSites {
		t.Fatalf("composed = %d errors / %d sites, want 1 / %d (g's error and sites dropped)",
			got.NumErrors(), got.NumSites, want.NumSites)
	}
	if !reflect.DeepEqual(keys(got), keys(want)) {
		t.Errorf("composed report differs from direct analysis:\n got %+v\nwant %+v", keys(got), keys(want))
	}
}

// TestComposeSelfRecursive: a self-recursive function's summary is as
// stable under composition as any other. The analyzer has no explicit
// fixed-point iteration for recursion: it inlines calls to
// maxInlineDepth and havocs the store at the cut-off (see
// analyzer.fun). Over the finite four-point lattice a true fixpoint
// would converge without widening — the lattice has height 2, so
// Kleene iteration terminates — and havoc-at-cutoff is the coarse
// sound substitute: it can only move states toward Top, never
// oscillate, so the per-function report (and hence its summary) is
// deterministic and revision-stable, which is all Compose needs.
func TestComposeSelfRecursive(t *testing.T) {
	rec := `
global l: lock;

fun spin(n: int) {
    spin_lock(&l);
    spin(n - 1);
    spin_unlock(&l);
}
`
	prog, rep := analyzeProg(t, rec, ModePlain)
	sums := Summarize(prog, rep)
	if len(sums) != 1 || sums[0].Name != "spin" {
		t.Fatalf("summaries = %+v, want exactly spin's", sums)
	}

	// Round trip against the same revision.
	got := Compose(prog, sums, ModePlain)
	if !reflect.DeepEqual(keys(got), keys(rep)) || got.NumSites != rep.NumSites {
		t.Errorf("self-recursive round trip drifted:\n got %+v\nwant %+v", keys(got), keys(rep))
	}

	// And against a shifted revision, like any other function.
	sprog, want := analyzeProg(t, "// shifted\n\n"+rec, ModePlain)
	sgot := Compose(sprog, sums, ModePlain)
	if !reflect.DeepEqual(keys(sgot), keys(want)) || sgot.NumSites != want.NumSites {
		t.Errorf("self-recursive cross-revision compose drifted:\n got %+v\nwant %+v", keys(sgot), keys(want))
	}
}

// TestComposeSkipsDepartedFunctions: a summary naming a function the
// target revision no longer has is skipped, not misattributed.
func TestComposeSkipsDepartedFunctions(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)
	sums := Summarize(prog, rep)

	pruned := `
global locks: lock[4];

fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}
`
	pprog, want := analyzeProg(t, pruned, ModePlain)
	got := Compose(pprog, sums, ModePlain)
	if got.NumSites != want.NumSites {
		t.Errorf("NumSites = %d, want %d (g and clean departed)", got.NumSites, want.NumSites)
	}
	if !reflect.DeepEqual(keys(got), keys(want)) {
		t.Errorf("composed report differs:\n got %+v\nwant %+v", keys(got), keys(want))
	}
}
