package qual

import (
	"reflect"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/infer"
	"localalias/internal/parser"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// summarySrc has one weak-update error in each of two functions (the
// classic array-lock pair) plus a clean function, so summaries have
// something to bucket and something empty.
const summarySrc = `
global locks: lock[4];

fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}

fun clean() {
    let x = 1;
}

fun g(j: int) {
    spin_lock(&locks[j]);
    spin_unlock(&locks[j]);
}
`

// analyzeProg is analyzeSrc but also returns the parsed program, which
// Summarize/Compose need for the function spans.
func analyzeProg(t *testing.T, src string, mode Mode) (*ast.Program, *Report) {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %s", diags.String())
	}
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("types: %s", diags.String())
	}
	res := infer.Run(tinfo, &diags, infer.Options{})
	sol := solve.Solve(res.Sys)
	return prog, Analyze(res, sol, mode)
}

// siteKey strips the AST identity from an error so reports from
// different parses compare structurally.
type siteKey struct {
	Site source.Span
	Op   string
	Want State
	Got  State
}

func keys(rep *Report) []siteKey {
	out := make([]siteKey, 0, len(rep.Errors))
	for _, e := range rep.Errors {
		out = append(out, siteKey{e.Site, e.Op, e.Want, e.Got})
	}
	return out
}

// TestSummarizeBucketsBySpan: each error lands in its enclosing
// function's summary with a span rebased to the function start, and
// the per-function site counts partition the module total.
func TestSummarizeBucketsBySpan(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)
	if rep.NumErrors() != 2 || rep.NumSites != 4 {
		t.Fatalf("fixture drifted: %d errors, %d sites (want 2, 4)", rep.NumErrors(), rep.NumSites)
	}
	sums := Summarize(prog, rep)
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want one per function: %+v", len(sums), sums)
	}
	byName := map[string]FuncSummary{}
	total := 0
	for _, s := range sums {
		byName[s.Name] = s
		total += s.Sites
	}
	if total != rep.NumSites {
		t.Errorf("summary sites sum to %d, want the module's %d", total, rep.NumSites)
	}
	if n := len(byName["f"].Errors); n != 1 {
		t.Errorf("f has %d errors, want 1", n)
	}
	if n := len(byName["g"].Errors); n != 1 {
		t.Errorf("g has %d errors, want 1", n)
	}
	if n := len(byName["clean"].Errors); n != 0 || byName["clean"].Sites != 0 {
		t.Errorf("clean has %d errors / %d sites, want none", n, byName["clean"].Sites)
	}
	for _, name := range []string{"f", "g"} {
		s := byName[name]
		e := s.Errors[0]
		if e.Call != nil {
			t.Errorf("%s: summary retains an AST pointer", name)
		}
		if e.Site.Start < 0 || e.Site.End > s.Span.End-s.Span.Start {
			t.Errorf("%s: rebased site %v escapes the function span %v", name, e.Site, s.Span)
		}
	}
}

// TestComposeRoundTrip: composing a module's own summaries against the
// same program reproduces the report exactly.
func TestComposeRoundTrip(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)
	got := Compose(prog, Summarize(prog, rep), ModePlain)
	if got.NumSites != rep.NumSites {
		t.Errorf("NumSites = %d, want %d", got.NumSites, rep.NumSites)
	}
	if !reflect.DeepEqual(keys(got), keys(rep)) {
		t.Errorf("composed errors differ:\n got %+v\nwant %+v", keys(got), keys(rep))
	}
}

// TestComposeAcrossRevisions is the transfer property the incremental
// engine relies on: summaries extracted from one revision compose
// against a shifted revision (same bodies, different offsets) into
// exactly the report a from-scratch analysis of that revision yields.
func TestComposeAcrossRevisions(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)
	sums := Summarize(prog, rep)

	shifted := "// a leading comment\n/* pushing every\n   span down */\n" + summarySrc
	sprog, want := analyzeProg(t, shifted, ModePlain)

	got := Compose(sprog, sums, ModePlain)
	if got.NumSites != want.NumSites {
		t.Errorf("NumSites = %d, want %d", got.NumSites, want.NumSites)
	}
	if !reflect.DeepEqual(keys(got), keys(want)) {
		t.Errorf("composed report differs from direct analysis of the shifted revision:\n got %+v\nwant %+v", keys(got), keys(want))
	}
	// Sanity: the direct report's spans really did move, so the
	// comparison above is not vacuous.
	if reflect.DeepEqual(keys(want), keys(rep)) {
		t.Error("shifted revision has identical spans (test is vacuous)")
	}
}

// TestComposeSkipsDepartedFunctions: a summary naming a function the
// target revision no longer has is skipped, not misattributed.
func TestComposeSkipsDepartedFunctions(t *testing.T) {
	prog, rep := analyzeProg(t, summarySrc, ModePlain)
	sums := Summarize(prog, rep)

	pruned := `
global locks: lock[4];

fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}
`
	pprog, want := analyzeProg(t, pruned, ModePlain)
	got := Compose(pprog, sums, ModePlain)
	if got.NumSites != want.NumSites {
		t.Errorf("NumSites = %d, want %d (g and clean departed)", got.NumSites, want.NumSites)
	}
	if !reflect.DeepEqual(keys(got), keys(want)) {
		t.Errorf("composed report differs:\n got %+v\nwant %+v", keys(got), keys(want))
	}
}
