package parser

import (
	"testing"

	"localalias/internal/ast"
	"localalias/internal/source"
	"localalias/internal/types"
)

// FuzzParse feeds arbitrary bytes through the whole front end: the
// parser must never panic, must terminate, and — when it produces a
// program that survives standard type checking — printing and
// re-parsing that program must succeed (printer/parser coherence).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"fun f() { }",
		"fun f(q: ref int): int { restrict p = q { return *p; } return 0; }",
		"global locks: lock[8];\nfun g(i: int) { confine &locks[i] { spin_lock(&locks[i]); } }",
		"struct dev { l: lock; next: ref dev; }",
		"fun f(l: restrict ref lock) { spin_lock(l); }",
		"fun f() { let x = 1 + ; }",
		"fun f() { while (1) { } }",
		"}{)(*&^%$#@!",
		"fun fun fun",
		"restrict restrict = restrict in restrict",
		"fun f() { confine confine { } }",
		"global g: int[999999999];",
		"fun f() { let x = new new new 0; }",
		"// comment only",
		"/* unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip()
		}
		var diags source.Diagnostics
		prog := Parse("fuzz.mc", src, &diags)
		if prog == nil {
			t.Fatal("parser must always return a program")
		}
		if diags.HasErrors() {
			return // rejected input: fine
		}
		var tdiags source.Diagnostics
		types.Check(prog, &tdiags)
		if tdiags.HasErrors() {
			return
		}
		// Accepted: the printed form must re-parse and re-check.
		printed := ast.String(prog)
		var rdiags source.Diagnostics
		prog2 := Parse("fuzz2.mc", printed, &rdiags)
		if rdiags.HasErrors() {
			t.Fatalf("printed form does not re-parse:\n%s\n--- printed ---\n%s", rdiags.String(), printed)
		}
		var r2diags source.Diagnostics
		types.Check(prog2, &r2diags)
		if r2diags.HasErrors() {
			t.Fatalf("printed form does not re-check:\n%s\n--- printed ---\n%s", r2diags.String(), printed)
		}
	})
}
