// Package parser implements a recursive-descent parser for MiniC.
//
// Grammar (EBNF, "//" comments elided):
//
//	program    = { importDecl | structDecl | globalDecl | funDecl } .
//	importDecl = "import" STRING ";" .
//	structDecl = "struct" IDENT "{" { IDENT ":" type ";" } "}" .
//	globalDecl = "global" IDENT ":" type ";" .
//	funDecl    = "fun" IDENT "(" [ params ] ")" [ ":" type ] block .
//	params     = IDENT ":" type { "," IDENT ":" type } .
//	type       = ( "int" | "unit" | "lock" | "ref" type | IDENT )
//	             { "[" INT "]" } .
//	block      = "{" { stmt } "}" .
//	stmt       = "let" IDENT "=" expr ( ";" | [ "in" ] block )
//	           | "restrict" IDENT "=" expr [ "in" ] block
//	           | "confine" expr [ "in" ] block
//	           | "if" "(" expr ")" block [ "else" ( block | ifStmt ) ]
//	           | "while" "(" expr ")" block
//	           | "return" [ expr ] ";"
//	           | block
//	           | expr [ "=" expr ] ";" .
//	expr       = binary (precedence climbing over || && == != < <= > >=
//	             + - * / %) .
//	unary      = ( "*" | "&" | "!" | "-" | "new" ) unary | postfix .
//	postfix    = primary { "[" expr "]" | "." IDENT [ callArgs ]
//	             | "->" IDENT } .
//	primary    = INT | IDENT [ callArgs ] | "(" expr ")" .
//	callArgs   = "(" [ expr { "," expr } ] ")" .
//
// IDENT "." IDENT followed by callArgs is a qualified call pkg.fn(...)
// into an imported module; MiniC has no method calls or function-typed
// fields, so the form is unambiguous.
package parser

import (
	"fmt"
	"strconv"

	"localalias/internal/ast"
	"localalias/internal/lexer"
	"localalias/internal/source"
	"localalias/internal/token"
)

// Parse lexes and parses src as a compilation unit named name.
// Diagnostics (lexical and syntactic) are appended to diags; the
// returned program contains whatever was recovered.
func Parse(name, src string, diags *source.Diagnostics) *ast.Program {
	file := source.NewFile(name, src)
	return ParseFile(file, diags)
}

// ParseFile parses an existing source.File.
func ParseFile(file *source.File, diags *source.Diagnostics) *ast.Program {
	p := &parser{
		file:  file,
		diags: diags,
		toks:  lexer.ScanAll(file, diags),
	}
	return p.program()
}

// ParseExpr parses a standalone expression (used by tests and by the
// confine CLI to accept expressions on the command line).
func ParseExpr(src string, diags *source.Diagnostics) ast.Expr {
	file := source.NewFile("<expr>", src)
	p := &parser{file: file, diags: diags, toks: lexer.ScanAll(file, diags)}
	e := p.expr()
	p.expect(token.EOF)
	return e
}

type parser struct {
	file  *source.File
	diags *source.Diagnostics
	toks  []lexer.Token
	pos   int
}

func (p *parser) tok() lexer.Token  { return p.toks[p.pos] }
func (p *parser) kind() token.Kind  { return p.toks[p.pos].Kind }
func (p *parser) span() source.Span { return p.toks[p.pos].Span }

func (p *parser) at(k token.Kind) bool { return p.kind() == k }

func (p *parser) advance() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) errorf(sp source.Span, format string, args ...any) {
	p.diags.Errorf(p.file, sp, "parse", format, args...)
}

func (p *parser) expect(k token.Kind) lexer.Token {
	if p.at(k) {
		return p.advance()
	}
	got := p.tok()
	what := got.Kind.String()
	if got.Lit != "" {
		what = fmt.Sprintf("%s %q", what, got.Lit)
	}
	p.errorf(got.Span, "expected %q, found %s", k.String(), what)
	return lexer.Token{Kind: k, Span: got.Span}
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *parser) sync(stops ...token.Kind) {
	for !p.at(token.EOF) {
		k := p.kind()
		for _, s := range stops {
			if k == s {
				return
			}
		}
		switch k {
		case token.Semi:
			p.advance()
			return
		case token.RBrace, token.KwFun, token.KwGlobal, token.KwStruct, token.KwImport:
			return
		}
		p.advance()
	}
}

// ---------------------------------------------------------------------
// Declarations

func (p *parser) program() *ast.Program {
	prog := &ast.Program{File: p.file}
	for !p.at(token.EOF) {
		switch p.kind() {
		case token.KwImport:
			prog.Imports = append(prog.Imports, p.importDecl())
		case token.KwStruct:
			prog.Structs = append(prog.Structs, p.structDecl())
		case token.KwGlobal:
			prog.Globals = append(prog.Globals, p.globalDecl())
		case token.KwFun:
			prog.Funs = append(prog.Funs, p.funDecl())
		default:
			p.errorf(p.span(), "expected declaration (import, struct, global or fun), found %q", p.kind())
			p.sync()
			if p.at(token.Semi) || p.at(token.RBrace) {
				p.advance()
			}
		}
	}
	return prog
}

func (p *parser) importDecl() *ast.ImportDecl {
	start := p.expect(token.KwImport).Span
	path := p.expect(token.String)
	end := p.expect(token.Semi).Span
	if path.Kind == token.String && path.Lit == "" {
		p.errorf(path.Span, "empty import path")
	}
	return &ast.ImportDecl{Path: path.Lit, Sp: start.Union(end)}
}

func (p *parser) structDecl() *ast.StructDecl {
	start := p.expect(token.KwStruct).Span
	name := p.expect(token.Ident)
	d := &ast.StructDecl{Name: name.Lit}
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		fname := p.expect(token.Ident)
		p.expect(token.Colon)
		ftype := p.typeExpr()
		semi := p.expect(token.Semi)
		d.Fields = append(d.Fields, &ast.Field{
			Name: fname.Lit,
			Type: ftype,
			Sp:   fname.Span.Union(semi.Span),
		})
		if p.pos == before {
			// Defensive: guarantee progress on malformed fields.
			p.advance()
		}
	}
	end := p.expect(token.RBrace).Span
	d.Sp = start.Union(end)
	return d
}

func (p *parser) globalDecl() *ast.GlobalDecl {
	start := p.expect(token.KwGlobal).Span
	name := p.expect(token.Ident)
	p.expect(token.Colon)
	typ := p.typeExpr()
	end := p.expect(token.Semi).Span
	return &ast.GlobalDecl{Name: name.Lit, Type: typ, Sp: start.Union(end)}
}

func (p *parser) funDecl() *ast.FunDecl {
	start := p.expect(token.KwFun).Span
	name := p.expect(token.Ident)
	d := &ast.FunDecl{Name: name.Lit}
	p.expect(token.LParen)
	for !p.at(token.RParen) && !p.at(token.EOF) {
		pname := p.expect(token.Ident)
		p.expect(token.Colon)
		restricted := p.accept(token.KwRestrict)
		ptype := p.typeExpr()
		d.Params = append(d.Params, &ast.Param{
			Name:     pname.Lit,
			Type:     ptype,
			Restrict: restricted,
			Sp:       pname.Span.Union(ptype.Span()),
		})
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	if p.accept(token.Colon) {
		d.Result = p.typeExpr()
	}
	d.Body = p.block()
	d.Sp = start.Union(d.Body.Span())
	return d
}

// ---------------------------------------------------------------------
// Types

func (p *parser) typeExpr() ast.TypeExpr {
	var t ast.TypeExpr
	sp := p.span()
	switch p.kind() {
	case token.KwInt:
		p.advance()
		t = &ast.PrimType{Kind: ast.PrimInt, Sp: sp}
	case token.KwUnit:
		p.advance()
		t = &ast.PrimType{Kind: ast.PrimUnit, Sp: sp}
	case token.KwLock:
		p.advance()
		t = &ast.PrimType{Kind: ast.PrimLock, Sp: sp}
	case token.KwRef:
		p.advance()
		elem := p.typeExpr()
		return &ast.RefType{Elem: elem, Sp: sp.Union(elem.Span())}
	case token.Ident:
		name := p.advance()
		t = &ast.NamedType{Name: name.Lit, Sp: sp}
	default:
		p.errorf(sp, "expected type, found %q", p.kind())
		t = &ast.PrimType{Kind: ast.PrimInt, Sp: sp}
	}
	for p.at(token.LBrack) {
		p.advance()
		szTok := p.expect(token.Int)
		size, _ := strconv.Atoi(szTok.Lit)
		if size <= 0 {
			size = 1
			if szTok.Lit != "" {
				p.errorf(szTok.Span, "array size must be positive, got %q", szTok.Lit)
			}
		}
		end := p.expect(token.RBrack).Span
		t = &ast.ArrayType{Elem: t, Size: size, Sp: sp.Union(end)}
	}
	return t
}

// ---------------------------------------------------------------------
// Statements

func (p *parser) block() *ast.Block {
	start := p.expect(token.LBrace).Span
	b := &ast.Block{}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		b.Stmts = append(b.Stmts, p.stmt())
		if p.pos == before {
			// Defensive: guarantee progress even on malformed input.
			p.advance()
		}
	}
	end := p.expect(token.RBrace).Span
	b.Sp = start.Union(end)
	return b
}

func (p *parser) stmt() ast.Stmt {
	switch p.kind() {
	case token.KwLet:
		return p.letStmt()
	case token.KwRestrict:
		return p.restrictStmt()
	case token.KwConfine:
		return p.confineStmt()
	case token.KwIf:
		return p.ifStmt()
	case token.KwWhile:
		return p.whileStmt()
	case token.KwReturn:
		return p.returnStmt()
	case token.LBrace:
		return p.block()
	default:
		return p.simpleStmt()
	}
}

func (p *parser) letStmt() ast.Stmt {
	start := p.expect(token.KwLet).Span
	name := p.expect(token.Ident)
	p.expect(token.Assign)
	init := p.expr()
	if p.at(token.Semi) {
		end := p.advance().Span
		return &ast.DeclStmt{Name: name.Lit, Init: init, Sp: start.Union(end)}
	}
	p.accept(token.KwIn)
	body := p.block()
	return &ast.BindStmt{
		Kind: ast.BindLet,
		Name: name.Lit,
		Init: init,
		Body: body,
		Sp:   start.Union(body.Span()),
	}
}

func (p *parser) restrictStmt() ast.Stmt {
	start := p.expect(token.KwRestrict).Span
	name := p.expect(token.Ident)
	p.expect(token.Assign)
	init := p.expr()
	p.accept(token.KwIn)
	body := p.block()
	return &ast.BindStmt{
		Kind: ast.BindRestrict,
		Name: name.Lit,
		Init: init,
		Body: body,
		Sp:   start.Union(body.Span()),
	}
}

func (p *parser) confineStmt() ast.Stmt {
	start := p.expect(token.KwConfine).Span
	e := p.expr()
	p.accept(token.KwIn)
	body := p.block()
	return &ast.ConfineStmt{Expr: e, Body: body, Sp: start.Union(body.Span())}
}

func (p *parser) ifStmt() ast.Stmt {
	start := p.expect(token.KwIf).Span
	p.expect(token.LParen)
	cond := p.expr()
	p.expect(token.RParen)
	then := p.block()
	s := &ast.IfStmt{Cond: cond, Then: then, Sp: start.Union(then.Span())}
	if p.accept(token.KwElse) {
		if p.at(token.KwIf) {
			inner := p.ifStmt()
			s.Else = &ast.Block{Stmts: []ast.Stmt{inner}, Sp: inner.Span()}
		} else {
			s.Else = p.block()
		}
		s.Sp = s.Sp.Union(s.Else.Span())
	}
	return s
}

func (p *parser) whileStmt() ast.Stmt {
	start := p.expect(token.KwWhile).Span
	p.expect(token.LParen)
	cond := p.expr()
	p.expect(token.RParen)
	body := p.block()
	return &ast.WhileStmt{Cond: cond, Body: body, Sp: start.Union(body.Span())}
}

func (p *parser) returnStmt() ast.Stmt {
	start := p.expect(token.KwReturn).Span
	s := &ast.ReturnStmt{Sp: start}
	if !p.at(token.Semi) {
		s.X = p.expr()
	}
	end := p.expect(token.Semi).Span
	s.Sp = start.Union(end)
	return s
}

func (p *parser) simpleStmt() ast.Stmt {
	start := p.span()
	e := p.expr()
	if p.accept(token.Assign) {
		rhs := p.expr()
		end := p.expect(token.Semi).Span
		return &ast.AssignStmt{LHS: e, RHS: rhs, Sp: start.Union(end)}
	}
	end := p.expect(token.Semi).Span
	return &ast.ExprStmt{X: e, Sp: start.Union(end)}
}

// ---------------------------------------------------------------------
// Expressions

func (p *parser) expr() ast.Expr { return p.binary(1) }

func (p *parser) binary(minPrec int) ast.Expr {
	lhs := p.unary()
	for {
		prec := p.kind().Precedence()
		if prec < minPrec {
			return lhs
		}
		op := p.advance().Kind
		rhs := p.binary(prec + 1)
		lhs = &ast.BinExpr{Op: op, X: lhs, Y: rhs, Sp: lhs.Span().Union(rhs.Span())}
	}
}

func (p *parser) unary() ast.Expr {
	sp := p.span()
	switch p.kind() {
	case token.Star:
		p.advance()
		x := p.unary()
		return &ast.DerefExpr{X: x, Sp: sp.Union(x.Span())}
	case token.Amp:
		p.advance()
		x := p.unary()
		return &ast.AddrExpr{X: x, Sp: sp.Union(x.Span())}
	case token.Not:
		p.advance()
		x := p.unary()
		return &ast.UnExpr{Op: token.Not, X: x, Sp: sp.Union(x.Span())}
	case token.Minus:
		p.advance()
		x := p.unary()
		return &ast.UnExpr{Op: token.Minus, X: x, Sp: sp.Union(x.Span())}
	case token.KwNew:
		p.advance()
		x := p.unary()
		return &ast.NewExpr{Init: x, Sp: sp.Union(x.Span())}
	default:
		return p.postfix()
	}
}

func (p *parser) postfix() ast.Expr {
	e := p.primary()
	for {
		switch p.kind() {
		case token.LBrack:
			p.advance()
			idx := p.expr()
			end := p.expect(token.RBrack).Span
			e = &ast.IndexExpr{X: e, Index: idx, Sp: e.Span().Union(end)}
		case token.Dot:
			p.advance()
			name := p.expect(token.Ident)
			if v, ok := e.(*ast.VarExpr); ok && p.at(token.LParen) {
				// Qualified call pkg.fn(args) into an imported module.
				p.advance()
				call := &ast.CallExpr{Fun: v.Name + "." + name.Lit}
				for !p.at(token.RParen) && !p.at(token.EOF) {
					call.Args = append(call.Args, p.expr())
					if !p.accept(token.Comma) {
						break
					}
				}
				end := p.expect(token.RParen).Span
				call.Sp = e.Span().Union(end)
				e = call
				continue
			}
			e = &ast.FieldExpr{X: e, Name: name.Lit, Sp: e.Span().Union(name.Span)}
		case token.Arrow:
			p.advance()
			name := p.expect(token.Ident)
			e = &ast.FieldExpr{X: e, Name: name.Lit, Arrow: true, Sp: e.Span().Union(name.Span)}
		default:
			return e
		}
	}
}

func (p *parser) primary() ast.Expr {
	sp := p.span()
	switch p.kind() {
	case token.Int:
		t := p.advance()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Span, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{Value: v, Sp: t.Span}
	case token.Ident:
		t := p.advance()
		if p.at(token.LParen) {
			p.advance()
			call := &ast.CallExpr{Fun: t.Lit}
			for !p.at(token.RParen) && !p.at(token.EOF) {
				call.Args = append(call.Args, p.expr())
				if !p.accept(token.Comma) {
					break
				}
			}
			end := p.expect(token.RParen).Span
			call.Sp = t.Span.Union(end)
			return call
		}
		return &ast.VarExpr{Name: t.Lit, Sp: t.Span}
	case token.LParen:
		p.advance()
		e := p.expr()
		p.expect(token.RParen)
		return e
	default:
		p.errorf(sp, "expected expression, found %q", p.kind())
		p.sync(token.Semi, token.RParen, token.RBrack, token.RBrace)
		return &ast.IntLit{Value: 0, Sp: sp}
	}
}
