package parser

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/source"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	var diags source.Diagnostics
	prog := Parse("test.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("unexpected parse errors:\n%s", diags.String())
	}
	return prog
}

func parseBad(t *testing.T, src string) *source.Diagnostics {
	t.Helper()
	var diags source.Diagnostics
	Parse("test.mc", src, &diags)
	if !diags.HasErrors() {
		t.Fatalf("expected parse errors for %q", src)
	}
	return &diags
}

func TestParseFigure1(t *testing.T) {
	// The paper's Figure 1 example, transcribed to MiniC.
	src := `
global locks: lock[8];

fun foo(i: int) {
    do_with_lock(&locks[i]);
}

fun do_with_lock(l: ref lock) {
    spin_lock(l);
    work();
    spin_unlock(l);
}
`
	prog := parseOK(t, src)
	if len(prog.Globals) != 1 || prog.Globals[0].Name != "locks" {
		t.Fatalf("globals: %+v", prog.Globals)
	}
	at, ok := prog.Globals[0].Type.(*ast.ArrayType)
	if !ok || at.Size != 8 {
		t.Fatalf("locks type: %s", ast.TypeString(prog.Globals[0].Type))
	}
	if len(prog.Funs) != 2 {
		t.Fatalf("funs: %d", len(prog.Funs))
	}
	dwl := prog.Fun("do_with_lock")
	if dwl == nil || len(dwl.Params) != 1 {
		t.Fatalf("do_with_lock: %+v", dwl)
	}
	if ast.TypeString(dwl.Params[0].Type) != "ref lock" {
		t.Errorf("param type: %s", ast.TypeString(dwl.Params[0].Type))
	}
	if len(dwl.Body.Stmts) != 3 {
		t.Errorf("body stmts: %d", len(dwl.Body.Stmts))
	}
}

func TestParseRestrictAndConfine(t *testing.T) {
	src := `
fun f(q: ref int) {
    restrict p = q in {
        *p = 1;
    }
    confine q in {
        *q = 2;
    }
    let r = q {
        *r = 3;
    }
    let s = q;
    *s = 4;
}
`
	prog := parseOK(t, src)
	body := prog.Funs[0].Body
	if len(body.Stmts) != 5 {
		t.Fatalf("stmts: %d", len(body.Stmts))
	}
	r, ok := body.Stmts[0].(*ast.BindStmt)
	if !ok || r.Kind != ast.BindRestrict || r.Name != "p" {
		t.Fatalf("stmt0: %T %+v", body.Stmts[0], body.Stmts[0])
	}
	c, ok := body.Stmts[1].(*ast.ConfineStmt)
	if !ok || ast.ExprString(c.Expr) != "q" {
		t.Fatalf("stmt1: %T", body.Stmts[1])
	}
	l, ok := body.Stmts[2].(*ast.BindStmt)
	if !ok || l.Kind != ast.BindLet {
		t.Fatalf("stmt2: %T", body.Stmts[2])
	}
	d, ok := body.Stmts[3].(*ast.DeclStmt)
	if !ok || d.Name != "s" {
		t.Fatalf("stmt3: %T", body.Stmts[3])
	}
}

func TestParseOptionalIn(t *testing.T) {
	// "in" before the block is optional everywhere.
	parseOK(t, `fun f(q: ref int) { restrict p = q { *p = 1; } }`)
	parseOK(t, `fun f(q: ref int) { confine q { *q = 1; } }`)
}

func TestParseExpressions(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":        "1 + 2 * 3",
		"(1 + 2) * 3":      "(1 + 2) * 3",
		"*p + 1":           "*p + 1",
		"&locks[i]":        "&locks[i]",
		"d->l":             "d->l",
		"d.l":              "d.l",
		"a[i][j]":          "a[i][j]",
		"f(x, y + 1)":      "f(x, y + 1)",
		"!x && y || z":     "!x && y || z",
		"new 0":            "new 0",
		"new *p":           "new *p",
		"-x + y":           "-x + y",
		"a == b && c != d": "a == b && c != d",
		"x <= y":           "x <= y",
		"*&g":              "*&g",
		"dev.tbl[i].l":     "dev.tbl[i].l",
		"&(*d).l":          "&(*d).l", // prints with explicit deref
	}
	for in, want := range cases {
		var diags source.Diagnostics
		e := ParseExpr(in, &diags)
		if diags.HasErrors() {
			t.Errorf("%q: parse errors: %s", in, diags)
			continue
		}
		got := ast.ExprString(e)
		// &(*d).l parses with *d as a DerefExpr child of FieldExpr;
		// printing inserts no parens, so normalize.
		got = strings.ReplaceAll(got, "&*d.l", "&(*d).l")
		if got != want {
			t.Errorf("%q: got %q want %q", in, got, want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	var diags source.Diagnostics
	e := ParseExpr("1 + 2 * 3", &diags)
	b, ok := e.(*ast.BinExpr)
	if !ok {
		t.Fatalf("not a BinExpr: %T", e)
	}
	// Must parse as 1 + (2*3): top node is +.
	if b.Op.String() != "+" {
		t.Fatalf("top op: %s", b.Op)
	}
	inner, ok := b.Y.(*ast.BinExpr)
	if !ok || inner.Op.String() != "*" {
		t.Fatalf("rhs: %s", ast.ExprString(b.Y))
	}
}

func TestParseIfElseChain(t *testing.T) {
	src := `
fun f(x: int): int {
    if (x == 0) {
        return 1;
    } else if (x == 1) {
        return 2;
    } else {
        return 3;
    }
}
`
	prog := parseOK(t, src)
	ifs, ok := prog.Funs[0].Body.Stmts[0].(*ast.IfStmt)
	if !ok || ifs.Else == nil {
		t.Fatalf("if: %+v", ifs)
	}
	inner, ok := ifs.Else.Stmts[0].(*ast.IfStmt)
	if !ok || inner.Else == nil {
		t.Fatalf("else-if chain not nested: %T", ifs.Else.Stmts[0])
	}
}

func TestParseWhileAndAssign(t *testing.T) {
	src := `
fun f(n: int): int {
    let i = new 0;
    while (*i < n) {
        *i = *i + 1;
    }
    return *i;
}
`
	prog := parseOK(t, src)
	body := prog.Funs[0].Body
	w, ok := body.Stmts[1].(*ast.WhileStmt)
	if !ok {
		t.Fatalf("stmt1: %T", body.Stmts[1])
	}
	a, ok := w.Body.Stmts[0].(*ast.AssignStmt)
	if !ok {
		t.Fatalf("loop body: %T", w.Body.Stmts[0])
	}
	if _, ok := a.LHS.(*ast.DerefExpr); !ok {
		t.Errorf("assign lhs: %T", a.LHS)
	}
}

func TestParseStructAndFields(t *testing.T) {
	src := `
struct dev {
    l: lock;
    next: ref dev;
    regs: int[4];
}
fun touch(d: ref dev) {
    spin_lock(&d->l);
    d->regs[0] = 1;
    spin_unlock(&d->l);
}
`
	prog := parseOK(t, src)
	sd := prog.Struct("dev")
	if sd == nil || len(sd.Fields) != 3 {
		t.Fatalf("struct: %+v", sd)
	}
	if ast.TypeString(sd.Fields[1].Type) != "ref dev" {
		t.Errorf("field type: %s", ast.TypeString(sd.Fields[1].Type))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"fun f( {",
		"global x;",
		"fun f() { let = 3; }",
		"fun f() { if x { } }",
		"struct s { x int; }",
		"fun f() { return 1 }",
		"fun f() { 1 + ; }",
		"@",
	}
	for _, src := range cases {
		parseBad(t, src)
	}
}

func TestParseRecoverAcrossDecls(t *testing.T) {
	// An error in one function must not swallow the following one.
	src := `
fun broken() { let ; }
fun fine() { return; }
`
	var diags source.Diagnostics
	prog := Parse("test.mc", src, &diags)
	if !diags.HasErrors() {
		t.Fatal("want errors")
	}
	if prog.Fun("fine") == nil {
		t.Fatal("recovery lost the following function")
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
struct dev {
    l: lock;
}
global locks: lock[4];
global biglock: lock;

fun helper(d: ref dev, i: int): int {
    restrict p = &locks[i] in {
        spin_lock(p);
        spin_unlock(p);
    }
    confine &d->l in {
        spin_lock(&d->l);
        spin_unlock(&d->l);
    }
    let t = new 5;
    if (*t > 2) {
        *t = *t - 1;
    } else {
        *t = 0;
    }
    while (*t > 0) {
        *t = *t - 1;
    }
    return *t;
}
`
	prog := parseOK(t, src)
	printed := ast.String(prog)
	var diags source.Diagnostics
	prog2 := Parse("roundtrip.mc", printed, &diags)
	if diags.HasErrors() {
		t.Fatalf("printed program does not reparse:\n%s\n--- printed ---\n%s", diags.String(), printed)
	}
	printed2 := ast.String(prog2)
	if printed != printed2 {
		t.Errorf("print not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestCountNodes(t *testing.T) {
	prog := parseOK(t, `fun f(x: int): int { return x + 1; }`)
	n := ast.CountNodes(prog)
	if n < 8 {
		t.Errorf("CountNodes too small: %d", n)
	}
}
