package parser

import (
	"strings"
	"testing"

	"localalias/internal/lexer"
	"localalias/internal/source"
	"localalias/internal/types"
)

// benchSource is a representative driver-style module, repeated to
// the requested approximate size.
func benchSource(copies int) string {
	unit := `
struct dev%d { l: lock; n: int; }
global locks%d: lock[8];
global d%d: dev%d;

fun handle%d(i: int, v: int): int {
    spin_lock(&locks%d[i]);
    if (v > 0) {
        d%d.n = d%d.n + v;
    } else {
        work();
    }
    spin_unlock(&locks%d[i]);
    let t = new v;
    restrict p = t {
        *p = *p * 2;
    }
    return *t;
}
`
	var b strings.Builder
	for i := 0; i < copies; i++ {
		b.WriteString(strings.NewReplacer("%d", itoa(i)).Replace(unit))
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkLexer(b *testing.B) {
	src := benchSource(50)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		var diags source.Diagnostics
		f := source.NewFile("bench.mc", src)
		toks := lexer.ScanAll(f, &diags)
		if diags.HasErrors() || len(toks) == 0 {
			b.Fatal("lex failed")
		}
	}
}

func BenchmarkParser(b *testing.B) {
	src := benchSource(50)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		var diags source.Diagnostics
		prog := Parse("bench.mc", src, &diags)
		if diags.HasErrors() || len(prog.Funs) == 0 {
			b.Fatal("parse failed")
		}
	}
}

func BenchmarkTypeCheck(b *testing.B) {
	src := benchSource(50)
	var diags source.Diagnostics
	prog := Parse("bench.mc", src, &diags)
	if diags.HasErrors() {
		b.Fatal(diags.String())
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var td source.Diagnostics
		types.Check(prog, &td)
		if td.HasErrors() {
			b.Fatal(td.String())
		}
	}
}
