// Package client is the one v1 wire-contract client of the analysis
// service: typed AnalyzeRequest/BatchResponse round trips, decoding of
// the X-Lna-* response headers, canonical error-body handling, and a
// shared retry policy with exponential backoff. The gateway's backend
// forwarding, the CLI's remote mode (`lna check -remote URL`), and the
// `lna bench` load harness all speak HTTP through this package, so the
// wire shape lives in exactly one place (package service defines the
// types; this package defines how they travel).
//
// Retrying POST /v1/analyze and /v1/batch is safe by construction:
// analysis is a pure function of the request (responses are canonical
// bytes keyed by content hash), so a retried request can only repeat
// work, never duplicate an effect.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"localalias/internal/obs"
	"localalias/internal/service"
)

// RetryPolicy bounds the client's attempts against one base URL.
// Retried statuses are 429 (queue full — the daemon's backpressure
// asks for exactly this), 502, 503, and 504; transport errors always
// retry. A 4xx other than 429 never retries: the request itself is
// wrong, and resending it cannot help.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (0 = DefaultAttempts;
	// 1 disables retrying).
	MaxAttempts int
	// Backoff is the first retry's delay, doubling per attempt
	// (0 = DefaultBackoff). A Retry-After header overrides the
	// computed delay when larger, capped at MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the delay between attempts (0 = DefaultMaxBackoff).
	MaxBackoff time.Duration
}

// Retry defaults.
const (
	DefaultAttempts   = 3
	DefaultBackoff    = 50 * time.Millisecond
	DefaultMaxBackoff = 2 * time.Second
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	return p
}

// Options configures a Client. The zero value picks defaults.
type Options struct {
	// HTTPClient is the underlying transport (nil = a dedicated
	// http.Client with no overall timeout; use request contexts for
	// deadlines).
	HTTPClient *http.Client
	// Retry is the retry policy for the typed calls. RoundTrip is
	// always a single attempt.
	Retry RetryPolicy
}

// Client speaks the v1 contract against one base URL.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// New builds a client for baseURL (e.g. "http://127.0.0.1:8347").
func New(baseURL string, opts Options) *Client {
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    hc,
		retry: opts.Retry.withDefaults(),
	}
}

// BaseURL returns the target this client speaks to.
func (c *Client) BaseURL() string { return c.base }

// Meta is the per-response metadata the daemon and gateway put in
// X-Lna-* headers — everything that must never ride in the canonical
// body (see DESIGN.md §8).
type Meta struct {
	// Cache is the result-cache disposition: "hit", "miss", or — on a
	// batch — the index-aligned comma list. "" when absent.
	Cache string
	// CacheKey is the content-hash key (single-module responses only).
	CacheKey string
	// TraceID joins the response to the server's access log and spans.
	TraceID string
	// Incremental is the reuse disposition of a cold run
	// (cold|partial|full), "" on cache hits or when disabled.
	Incremental string
	// Phases is the per-phase timing list ("parse=0.1ms,...").
	Phases string
	// Xmodule is the whole-program pass summary of a multi_module
	// request ("modules=N;analyzed=A;failed=F"), "" otherwise.
	Xmodule string
	// Backend is the replica that served a gateway-routed request.
	Backend string
	// Attempts is how many tries the gateway (or this client) spent.
	Attempts int
}

// decodeMeta reads the X-Lna-* headers into a Meta.
func decodeMeta(h http.Header) Meta {
	m := Meta{
		Cache:       h.Get("X-Lna-Cache"),
		CacheKey:    h.Get("X-Lna-Cache-Key"),
		TraceID:     h.Get("X-Lna-Trace"),
		Incremental: h.Get("X-Lna-Incremental"),
		Phases:      h.Get("X-Lna-Phases"),
		Xmodule:     h.Get("X-Lna-Xmodule"),
		Backend:     h.Get("X-Lna-Backend"),
	}
	if v := h.Get("X-Lna-Attempts"); v != "" {
		m.Attempts, _ = strconv.Atoi(v)
	}
	return m
}

// APIError is a non-2xx answer decoded from the canonical error body:
// the HTTP status plus the structured code/message. It unwraps to the
// *service.WireError, so errors.As works on either layer.
type APIError struct {
	Status int
	Err    *service.WireError
}

func (e *APIError) Error() string {
	return fmt.Sprintf("HTTP %d: %s", e.Status, e.Err.Error())
}

func (e *APIError) Unwrap() error { return e.Err }

// ExitCode maps the error through the shared exit-code table.
func (e *APIError) ExitCode() int { return e.Err.ExitCode() }

// Result is one raw HTTP exchange: status, headers, body bytes, and
// the decoded Meta. RoundTrip returns it even for non-2xx statuses —
// the gateway relays those verbatim.
type Result struct {
	Status int
	Header http.Header
	Body   []byte
	Meta   Meta
}

// OK reports whether the exchange carried a 2xx status.
func (r *Result) OK() bool { return r.Status >= 200 && r.Status < 300 }

// WireError decodes the canonical error body of a non-2xx Result
// (nil when the Result is OK).
func (r *Result) WireError() *service.WireError {
	if r.OK() {
		return nil
	}
	return service.DecodeWireError(r.Status, r.Body)
}

// RoundTrip POSTs body to path (e.g. "/v1/analyze") in a single
// attempt — no retries, no status interpretation. The error is
// transport-level only (connection refused, context cancelled); any
// HTTP status comes back as a Result. This is the primitive the
// gateway's ring-aware retry and hedging are built on.
//
// When ctx carries an active trace span (obs.ContextWithSpan), the
// request is stamped with the X-Lna-Trace-Context header, so the
// receiving server parents its spans under the caller's — this single
// line is the whole client side of distributed tracing.
func (c *Client) RoundTrip(ctx context.Context, path string, body []byte) (*Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc, ok := obs.TraceContextFromContext(ctx); ok {
		req.Header.Set(obs.TraceContextHeader, sc.String())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading response body: %w", err)
	}
	return &Result{
		Status: resp.StatusCode,
		Header: resp.Header,
		Body:   data,
		Meta:   decodeMeta(resp.Header),
	}, nil
}

// get performs one GET round trip (health, stats).
func (c *Client) get(ctx context.Context, path string) (*Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading response body: %w", err)
	}
	return &Result{Status: resp.StatusCode, Header: resp.Header, Body: data, Meta: decodeMeta(resp.Header)}, nil
}

// retryable reports whether a status is worth another attempt.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoffFor computes the sleep before attempt n (0-based retry
// index), honouring a Retry-After header when it asks for longer.
func (p RetryPolicy) backoffFor(n int, retryAfter string) time.Duration {
	d := p.Backoff << n
	if secs, err := strconv.Atoi(retryAfter); err == nil {
		if ra := time.Duration(secs) * time.Second; ra > d {
			d = ra
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// postRetry marshals payload and POSTs it to path under the retry
// policy. On a terminal non-2xx it returns the Result and an *APIError
// decoded from the canonical body; transport failures on the last
// attempt return the underlying error. attempts performed are recorded
// in the Result's Meta.
func (c *Client) postRetry(ctx context.Context, path string, payload any) (*Result, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("encoding request: %w", err)
	}
	var (
		res     *Result
		lastErr error
	)
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			retryAfter := ""
			if res != nil {
				retryAfter = res.Header.Get("Retry-After")
			}
			select {
			case <-time.After(c.retry.backoffFor(attempt-1, retryAfter)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		res, lastErr = c.RoundTrip(ctx, path, body)
		if lastErr != nil {
			res = nil
			continue
		}
		if res.Meta.Attempts == 0 {
			// No X-Lna-Attempts from the server (direct daemon): report
			// this client's own tries. A gateway's header is authoritative
			// — it counts the upstream placement attempts.
			res.Meta.Attempts = attempt + 1
		}
		if res.OK() || !retryable(res.Status) {
			break
		}
	}
	if res == nil {
		return nil, fmt.Errorf("POST %s%s failed after %d attempt(s): %w", c.base, path, c.retry.MaxAttempts, lastErr)
	}
	if !res.OK() {
		return res, &APIError{Status: res.Status, Err: res.WireError()}
	}
	return res, nil
}

// AnalyzeRaw submits one module and returns the canonical response
// bytes exactly as served (the same bytes `lna check -json` would
// print locally), plus the decoded Meta.
func (c *Client) AnalyzeRaw(ctx context.Context, req *service.AnalyzeRequest) ([]byte, Meta, error) {
	res, err := c.postRetry(ctx, "/v1/analyze", req)
	if err != nil {
		var meta Meta
		if res != nil {
			meta = res.Meta
		}
		return nil, meta, err
	}
	return res.Body, res.Meta, nil
}

// Analyze submits one module and decodes the typed response. A
// response carrying a Failure record is not an error: the analysis
// degraded in-band, and the caller decides via ExitCode.
func (c *Client) Analyze(ctx context.Context, req *service.AnalyzeRequest) (*service.AnalyzeResponse, Meta, error) {
	body, meta, err := c.AnalyzeRaw(ctx, req)
	if err != nil {
		return nil, meta, err
	}
	var resp service.AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, meta, fmt.Errorf("decoding AnalyzeResponse: %w", err)
	}
	return &resp, meta, nil
}

// Batch submits a multi-module batch and decodes the typed response;
// Results are index-aligned with the submitted requests.
func (c *Client) Batch(ctx context.Context, reqs []service.AnalyzeRequest) (*service.BatchResponse, Meta, error) {
	res, err := c.postRetry(ctx, "/v1/batch", service.BatchRequest{Requests: reqs})
	if err != nil {
		var meta Meta
		if res != nil {
			meta = res.Meta
		}
		return nil, meta, err
	}
	var out service.BatchResponse
	if err := json.Unmarshal(res.Body, &out); err != nil {
		return nil, res.Meta, fmt.Errorf("decoding BatchResponse: %w", err)
	}
	return &out, res.Meta, nil
}

// Health fetches /v1/health in a single attempt (health checks must
// observe failures, not paper over them with retries).
func (c *Client) Health(ctx context.Context) (*service.HealthStatus, error) {
	res, err := c.get(ctx, "/v1/health")
	if err != nil {
		return nil, err
	}
	if !res.OK() {
		return nil, &APIError{Status: res.Status, Err: res.WireError()}
	}
	var hs service.HealthStatus
	if err := json.Unmarshal(res.Body, &hs); err != nil {
		return nil, fmt.Errorf("decoding health: %w", err)
	}
	return &hs, nil
}

// GetRaw performs one GET round trip against an arbitrary v1 path
// (e.g. "/v1/fleet"), returning the raw Result even for non-2xx
// statuses. Callers that know the endpoint's JSON shape decode it
// themselves; this keeps gateway-only types out of the client.
func (c *Client) GetRaw(ctx context.Context, path string) (*Result, error) {
	return c.get(ctx, path)
}

// Trace fetches one process's fragment of a trace from
// /v1/trace/{id}. An unknown ID is an *APIError with a not_found
// code; callers assembling a fleet-wide trace treat that as "this
// process saw nothing", not as failure.
func (c *Client) Trace(ctx context.Context, id string) (*obs.TraceExport, error) {
	res, err := c.get(ctx, "/v1/trace/"+id)
	if err != nil {
		return nil, err
	}
	if !res.OK() {
		return nil, &APIError{Status: res.Status, Err: res.WireError()}
	}
	var ex obs.TraceExport
	if err := json.Unmarshal(res.Body, &ex); err != nil {
		return nil, fmt.Errorf("decoding trace export: %w", err)
	}
	return &ex, nil
}

// Stats fetches the /v1/stats snapshot.
func (c *Client) Stats(ctx context.Context) (*service.ServerStats, error) {
	res, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return nil, err
	}
	if !res.OK() {
		return nil, &APIError{Status: res.Status, Err: res.WireError()}
	}
	var st service.ServerStats
	if err := json.Unmarshal(res.Body, &st); err != nil {
		return nil, fmt.Errorf("decoding stats: %w", err)
	}
	return &st, nil
}
