package client

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"localalias/internal/service"
)

const checkSrc = `fun f(x: ref int): int {
    restrict y = x {
        return *y;
    }
    return 0;
}
`

func newDaemon(t *testing.T) (*service.Server, *Client) {
	t.Helper()
	srv := service.NewServer(service.ServerOptions{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, New(ts.URL, Options{})
}

// TestAnalyzeRoundTrip: the typed client returns the daemon's exact
// canonical bytes and decodes the X-Lna-* metadata, and a resubmission
// is a cache hit with identical bytes.
func TestAnalyzeRoundTrip(t *testing.T) {
	_, c := newDaemon(t)
	req := &service.AnalyzeRequest{Module: "rt.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}}

	body, meta, err := c.AnalyzeRaw(context.Background(), req)
	if err != nil {
		t.Fatalf("AnalyzeRaw: %v", err)
	}
	want, err := service.Analyze(context.Background(), req).MarshalCanonical()
	if err != nil {
		t.Fatalf("local marshal: %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("remote bytes differ from local canonical form:\n--- remote\n%s\n--- local\n%s", body, want)
	}
	if meta.Cache != "miss" {
		t.Errorf("first submission Cache = %q; want miss", meta.Cache)
	}
	if meta.CacheKey != service.CacheKey(req) {
		t.Errorf("CacheKey header %q != computed key %q", meta.CacheKey, service.CacheKey(req))
	}
	if len(meta.TraceID) != 16 {
		t.Errorf("TraceID %q; want 16 hex chars", meta.TraceID)
	}
	if meta.Attempts != 1 {
		t.Errorf("Attempts = %d; want 1", meta.Attempts)
	}

	resp, meta2, err := c.Analyze(context.Background(), req)
	if err != nil {
		t.Fatalf("Analyze (second): %v", err)
	}
	if meta2.Cache != "hit" {
		t.Errorf("resubmission Cache = %q; want hit", meta2.Cache)
	}
	if !resp.OK || resp.Module != "rt.mc" || resp.Mode != service.ModeCheck {
		t.Errorf("typed response = ok=%v module=%q mode=%q", resp.OK, resp.Module, resp.Mode)
	}
}

// TestRetryTransient: a backend answering 503 twice then 200 succeeds
// within the default policy, with the attempt count surfaced in Meta.
func TestRetryTransient(t *testing.T) {
	var calls atomic.Int32
	daemon := service.NewServer(service.ServerOptions{Workers: 1})
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			service.WriteWireError(w, service.CodeDraining, "not yet")
			return
		}
		daemon.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	c := New(ts.URL, Options{Retry: RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}})
	req := &service.AnalyzeRequest{Module: "flaky.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}}
	resp, meta, err := c.Analyze(context.Background(), req)
	if err != nil {
		t.Fatalf("Analyze through flaky front: %v", err)
	}
	if !resp.OK {
		t.Error("response not OK after retries")
	}
	if meta.Attempts != 3 {
		t.Errorf("Attempts = %d; want 3", meta.Attempts)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend saw %d calls; want 3", got)
	}
}

// TestRetryExhausted: when every attempt fails retryably, the final
// *APIError carries the canonical code and the exit mapping.
func TestRetryExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		service.WriteWireError(w, service.CodeQueueFull, "busy")
	}))
	defer ts.Close()

	c := New(ts.URL, Options{Retry: RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}})
	_, _, err := c.Analyze(context.Background(), &service.AnalyzeRequest{
		Module: "m.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T); want *APIError", err, err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Err.Code != service.CodeQueueFull {
		t.Errorf("got status %d code %q; want 429 %q", apiErr.Status, apiErr.Err.Code, service.CodeQueueFull)
	}
	if apiErr.ExitCode() != service.ExitDegraded {
		t.Errorf("ExitCode = %d; want %d", apiErr.ExitCode(), service.ExitDegraded)
	}
	var werr *service.WireError
	if !errors.As(err, &werr) || werr.Code != service.CodeQueueFull {
		t.Errorf("errors.As(*service.WireError) failed on %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend saw %d calls; want 3 (policy exhausted)", got)
	}
}

// TestNoRetryOnBadRequest: a 4xx other than 429 is terminal — the
// request itself is wrong, so exactly one attempt is spent.
func TestNoRetryOnBadRequest(t *testing.T) {
	var calls atomic.Int32
	daemon := service.NewServer(service.ServerOptions{Workers: 1})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		daemon.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL, Options{Retry: RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond}})
	for _, tc := range []struct {
		name string
		req  service.AnalyzeRequest
		code string
	}{
		{"bad mode", service.AnalyzeRequest{Module: "m.mc", Source: "x",
			Options: service.AnalyzeOptions{Mode: "optimize"}}, service.CodeBadRequest},
		{"unsupported version", service.AnalyzeRequest{APIVersion: "v2", Module: "m.mc",
			Source: "x", Options: service.AnalyzeOptions{Mode: service.ModeCheck}}, service.CodeUnsupportedVersion},
	} {
		calls.Store(0)
		_, _, err := c.Analyze(context.Background(), &tc.req)
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: error %v; want *APIError", tc.name, err)
		}
		if apiErr.Status != http.StatusBadRequest || apiErr.Err.Code != tc.code {
			t.Errorf("%s: status %d code %q; want 400 %q", tc.name, apiErr.Status, apiErr.Err.Code, tc.code)
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("%s: backend saw %d calls; want 1 (no retry on 400)", tc.name, got)
		}
	}
}

// TestBatch: the typed batch call preserves index alignment, carries
// per-entry admission errors, and surfaces the summary.
func TestBatch(t *testing.T) {
	_, c := newDaemon(t)
	reqs := []service.AnalyzeRequest{
		{Module: "a.mc", Source: checkSrc, Options: service.AnalyzeOptions{Mode: service.ModeCheck}},
		{Module: "bad.mc", Source: "", Options: service.AnalyzeOptions{Mode: service.ModeCheck}},
		{Module: "b.mc", Source: checkSrc, Options: service.AnalyzeOptions{Mode: service.ModeInfer}},
	}
	out, meta, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results; want 3", len(out.Results))
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != service.CodeBadRequest {
		t.Errorf("entry 1 error = %+v; want code %q", out.Results[1].Error, service.CodeBadRequest)
	}
	if len(out.Results[1].Response) != 0 {
		t.Errorf("rejected entry carries a response: %s", out.Results[1].Response)
	}
	for _, i := range []int{0, 2} {
		if out.Results[i].Error != nil {
			t.Errorf("entry %d unexpectedly errored: %v", i, out.Results[i].Error)
		}
		if len(out.Results[i].Response) == 0 {
			t.Errorf("entry %d has no response", i)
		}
	}
	if out.Summary.Rejected != 1 || out.Summary.Modules != 3 {
		t.Errorf("summary = %+v; want modules=3 rejected=1", out.Summary)
	}
	if meta.Cache != "miss,error,miss" {
		t.Errorf("batch X-Lna-Cache = %q; want miss,error,miss", meta.Cache)
	}
}

// TestHealthAndStats: the GET helpers decode the typed payloads.
func TestHealthAndStats(t *testing.T) {
	srv, c := newDaemon(t)
	hs, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if hs.Status != "ok" || hs.APIVersion != service.APIVersion || hs.Workers != 2 {
		t.Errorf("health = %+v", hs)
	}
	srv.SetDraining(true)
	hs, err = c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health (draining): %v", err)
	}
	if hs.Status != "draining" {
		t.Errorf("draining daemon reports status %q", hs.Status)
	}
	srv.SetDraining(false)

	if _, _, err := c.AnalyzeRaw(context.Background(), &service.AnalyzeRequest{
		Module: "s.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}}); err != nil {
		t.Fatalf("AnalyzeRaw: %v", err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Requests != 1 || st.Cache.Misses == 0 {
		t.Errorf("stats = requests=%d cache=%+v; want 1 request, >0 misses", st.Requests, st.Cache)
	}
}

// TestRoundTripIsSingleAttempt: the gateway's forwarding primitive must
// never retry on its own — ring-aware rerouting owns that decision.
func TestRoundTripIsSingleAttempt(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		service.WriteWireError(w, service.CodeQueueFull, "busy")
	}))
	defer ts.Close()

	c := New(ts.URL, Options{Retry: RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond}})
	res, err := c.RoundTrip(context.Background(), "/v1/analyze", []byte(`{}`))
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if res.Status != http.StatusTooManyRequests {
		t.Errorf("status = %d; want 429", res.Status)
	}
	if werr := res.WireError(); werr == nil || werr.Code != service.CodeQueueFull {
		t.Errorf("WireError = %+v; want code %q", res.WireError(), service.CodeQueueFull)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend saw %d calls; want exactly 1", got)
	}
}

// TestBackoffSchedule: exponential doubling, the Retry-After override,
// and the cap.
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{Backoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}.withDefaults()
	for i, want := range []time.Duration{50, 100, 200, 400} {
		if got := p.backoffFor(i, ""); got != want*time.Millisecond {
			t.Errorf("backoffFor(%d) = %v; want %v", i, got, want*time.Millisecond)
		}
	}
	if got := p.backoffFor(0, "1"); got != time.Second {
		t.Errorf("Retry-After: 1 not honoured: got %v", got)
	}
	if got := p.backoffFor(0, "30"); got != 2*time.Second {
		t.Errorf("Retry-After above the cap not clamped: got %v", got)
	}
	if got := p.backoffFor(10, ""); got != 2*time.Second {
		t.Errorf("exponential growth not capped: got %v", got)
	}
}

// TestTransportErrorSurfaced: a dead endpoint yields a transport error
// (not an APIError) after the policy is spent.
func TestTransportErrorSurfaced(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // dead on arrival

	c := New(ts.URL, Options{Retry: RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}})
	_, _, err := c.Analyze(context.Background(), &service.AnalyzeRequest{
		Module: "m.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
	if err == nil {
		t.Fatal("Analyze against a closed listener succeeded")
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		t.Errorf("transport failure surfaced as *APIError: %v", err)
	}
}
