package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"localalias/internal/obs"
)

// CacheKey derives the content-hash cache key of a request: the
// SHA-256 (hex) over the API version, module name, analysis options,
// and full source text, with NUL separators so no two field layouts
// collide. Identical submissions — same name, same bytes, same
// options — therefore share one key across time, and any change to
// any input yields a fresh one.
//
// The options are keyed by their canonical JSON encoding (with the
// mode defaulted), not by hand-packed flag bits: every exported
// wire field of AnalyzeOptions — including any added later — is
// covered automatically, so a new option can never silently alias
// cache entries across option values. Execution knobs that do not
// affect response bytes (SolverWorkers and the other `json:"-"`
// request fields) stay outside the key by the same rule; the reflect
// guard test in cache_test.go pins both halves of this contract.
//
// Requests carrying a Generate closure have no content to hash until
// the guard runs; callers must not cache them (the Server never sees
// such requests, since Generate is not serializable).
func CacheKey(req *AnalyzeRequest) string {
	opts := req.Options
	if opts.Mode == "" {
		opts.Mode = ModeQual
	}
	enc, err := json.Marshal(opts)
	if err != nil {
		// AnalyzeOptions is a flat struct of marshalable fields; this
		// can only fire if someone adds an unmarshalable field, which
		// the guard test rejects first.
		panic(fmt.Sprintf("service: AnalyzeOptions not canonically encodable: %v", err))
	}
	version := req.APIVersion
	if version == "" {
		version = APIVersion
	}
	h := sha256.New()
	for _, part := range []string{"lna/" + version, req.Module, string(enc), req.Source} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats is a snapshot of the cache's accounting.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// Cache is a bounded LRU mapping cache keys to canonical response
// bytes. It is safe for concurrent use. The values are the exact
// bytes the cold run produced, so a hit replays them byte-identically.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache holding at most capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached bytes for key, marking the entry most
// recently used. The second result reports whether it was present.
// The returned slice is the caller's to keep: it is a copy, so
// mutating it cannot corrupt the canonical bytes later hits replay.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		obs.App().CacheMisses.Inc()
		return nil, false
	}
	c.hits++
	obs.App().CacheHits.Inc()
	c.ll.MoveToFront(el)
	val := el.Value.(*cacheEntry).val
	out := make([]byte, len(val))
	copy(out, val)
	return out, true
}

// Put stores val under key, evicting the least recently used entry if
// the cache is full. Re-putting an existing key refreshes its value
// and recency. The stored bytes are a copy, for the same isolation
// reason Get copies on the way out.
func (c *Cache) Put(key string, val []byte) {
	stored := make([]byte, len(val))
	copy(stored, val)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = stored
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: stored})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
		obs.App().CacheEvictions.Inc()
	}
}

// Stats returns a snapshot of the accounting counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
}
