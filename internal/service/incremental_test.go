package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"localalias/internal/solve"
)

// incBase is a module with several independent functions, so its
// constraint systems partition into multiple components and an edit to
// one function leaves the others' summaries replayable.
const incBase = `
fun alpha(x: ref int): int {
    restrict a = x {
        return *a;
    }
    return 0;
}

fun beta(y: ref int): int {
    restrict b = y {
        let c = y;
        return *b;
    }
    return 0;
}

fun gamma(z: ref int): int {
    let g = z;
    restrict c = z {
        return *c;
    }
    return 0;
}
`

// incAnalyze runs one request through an Incremental engine and checks
// the response is byte-identical to a memo-less cold run of the same
// request — the invariant the whole design rests on.
func incAnalyze(t *testing.T, inc *Incremental, src string) (*AnalyzeResponse, *IncrementalInfo) {
	t.Helper()
	req := &AnalyzeRequest{Module: "inc.mc", Source: src,
		Options: AnalyzeOptions{Mode: ModeQual}}
	resp, info := inc.Analyze(context.Background(), req, 0)
	if info == nil {
		t.Fatal("incremental engine returned no info for a plain source request")
	}
	got, err := resp.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	cold := Analyze(context.Background(), &AnalyzeRequest{Module: "inc.mc", Source: src,
		Options: AnalyzeOptions{Mode: ModeQual}})
	want, err := cold.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("incremental response differs from a cold run:\n--- incremental\n%s\n--- cold\n%s", got, want)
	}
	return resp, info
}

// TestIncrementalDispositions drives the engine through its three
// states: first sighting (cold), identical resubmission (full replay),
// and a one-function edit (partial — the untouched functions replay).
func TestIncrementalDispositions(t *testing.T) {
	inc := NewIncremental(solve.NewMemo(1024), 16)

	_, info := incAnalyze(t, inc, incBase)
	// A first sighting must solve fresh work — but qual mode runs two
	// solves (baseline + confine), and components unchanged by confine
	// planting replay within the same request, so the disposition can
	// already be "partial" on a cold module. It must not be "full".
	if info.Solved == 0 || info.Disposition == IncrementalFull {
		t.Fatalf("first sighting: %+v, want fresh solves", info)
	}
	if info.Prior {
		t.Fatal("first sighting claims a prior revision")
	}

	_, info = incAnalyze(t, inc, incBase)
	if info.Disposition != IncrementalFull || info.Solved != 0 || info.Replayed == 0 {
		t.Fatalf("identical resubmission: %+v, want full replay", info)
	}
	if !info.Prior || !info.Delta.Empty() || len(info.Invalidated) != 0 {
		t.Fatalf("identical resubmission: delta should be empty, got %+v", info)
	}

	// The edit must change beta's constraint system, not just its
	// tokens — a pure arithmetic tweak (say *b + 1) would replay fully,
	// since the memo is addressed by constraint content. A new ref
	// binding and dereference does it.
	edited := strings.Replace(incBase, "return *b;", "let d = b;\n        return *d;", 1)
	_, info = incAnalyze(t, inc, edited)
	if info.Disposition != IncrementalPartial {
		t.Fatalf("one-function edit: %+v, want partial (replayed>0 and solved>0)", info)
	}
	if len(info.Delta.Changed) != 1 || info.Delta.Changed[0] != "fun beta" {
		t.Fatalf("one-function edit: delta = %+v, want changed=[fun beta]", info.Delta)
	}
	if len(info.Invalidated) != 1 || info.Invalidated[0] != "beta" {
		t.Fatalf("one-function edit: invalidated = %v, want [beta]", info.Invalidated)
	}
}

// TestIncrementalCommentEditFullReplay pins the trivia rule end to
// end: a comment/whitespace-only edit changes the cache key (different
// bytes) but re-solves nothing — every component replays, and the
// declaration diff is empty.
func TestIncrementalCommentEditFullReplay(t *testing.T) {
	inc := NewIncremental(solve.NewMemo(1024), 16)
	incAnalyze(t, inc, incBase)

	edited := "// a new header comment\n/* shifting\n   every span */\n" + incBase
	_, info := incAnalyze(t, inc, edited)
	if info.Disposition != IncrementalFull || info.Solved != 0 {
		t.Fatalf("trivia edit: %+v, want full replay with zero fresh solves", info)
	}
	if !info.Delta.Empty() || len(info.Invalidated) != 0 {
		t.Fatalf("trivia edit: delta = %+v invalidated = %v, want none", info.Delta, info.Invalidated)
	}
}

// TestIncrementalRenameReportsCallers: a rename surfaces as
// remove+add in the delta, and the dangling callers are reported
// invalidated.
func TestIncrementalRenameReportsCallers(t *testing.T) {
	src := incBase + `
fun caller(w: ref int): int {
    return gamma(w);
}
`
	inc := NewIncremental(solve.NewMemo(1024), 16)
	incAnalyze(t, inc, src)

	renamed := strings.Replace(src, "fun gamma(", "fun delta(", 1)
	_, info := incAnalyze(t, inc, renamed)
	if len(info.Delta.Added) != 1 || len(info.Delta.Removed) != 1 {
		t.Fatalf("rename delta = %+v, want one add and one remove", info.Delta)
	}
	found := map[string]bool{}
	for _, f := range info.Invalidated {
		found[f] = true
	}
	if !found["delta"] || !found["caller"] {
		t.Fatalf("rename invalidated %v, want delta (new name) and caller (dangles)", info.Invalidated)
	}
}

// TestIncrementalMemoEvictionFallsBackCold: a memo too small to hold
// the module's components keeps evicting, so a resubmission finds
// nothing to replay — and still produces byte-identical results (the
// incAnalyze helper checks that each time).
func TestIncrementalMemoEvictionFallsBackCold(t *testing.T) {
	inc := NewIncremental(solve.NewMemo(1), 16)
	incAnalyze(t, inc, incBase)
	_, info := incAnalyze(t, inc, incBase)
	if info.Solved == 0 {
		t.Fatalf("capacity-1 memo on resubmission: %+v, want fresh solves after eviction churn", info)
	}
	if st := inc.Memo().Stats(); st.Evictions == 0 || st.Entries > 1 {
		t.Fatalf("memo stats = %+v, want evictions and at most one resident entry", st)
	}
}

// TestIncrementalSummaryStoreEviction: evicting a module's baseline
// loses the diff report (Prior=false) but nothing else — the solve
// memo still replays, so the work saved is unchanged.
func TestIncrementalSummaryStoreEviction(t *testing.T) {
	inc := NewIncremental(solve.NewMemo(1024), 1)
	req := func(module, src string) (*AnalyzeResponse, *IncrementalInfo) {
		return inc.Analyze(context.Background(),
			&AnalyzeRequest{Module: module, Source: src,
				Options: AnalyzeOptions{Mode: ModeQual}}, 0)
	}
	req("a.mc", incBase)
	req("b.mc", incBase) // capacity 1: evicts a.mc's baseline
	if got := inc.Summaries(); got != 1 {
		t.Fatalf("summary store holds %d baselines, want 1", got)
	}
	_, info := req("a.mc", incBase)
	if info.Prior {
		t.Fatal("a.mc's baseline should have been evicted")
	}
	if info.Disposition != IncrementalFull {
		t.Fatalf("a.mc resubmission: %+v, want full replay from the (separate) solve memo", info)
	}
}

// TestIncrementalGenerateBypass: requests synthesizing their source
// inside the fault guard have no bytes to index, so they bypass the
// incremental machinery (nil info) and still analyze fine.
func TestIncrementalGenerateBypass(t *testing.T) {
	inc := NewIncremental(solve.NewMemo(1024), 16)
	req := &AnalyzeRequest{Module: "gen.mc",
		Options:  AnalyzeOptions{Mode: ModeQual},
		Generate: func(ctx context.Context) string { return incBase }}
	resp, info := inc.Analyze(context.Background(), req, time.Minute)
	if info != nil {
		t.Fatalf("generated request produced incremental info: %+v", info)
	}
	if resp.Failure != nil || !resp.OK {
		t.Fatalf("generated request failed: %+v", resp.Failure)
	}
}
