package service

import (
	"container/list"
	"context"
	"encoding/json"
	"sync"
	"time"

	"localalias/internal/funcidx"
	"localalias/internal/obs"
	"localalias/internal/solve"
)

// DefaultSummaryEntries bounds the incremental engine's per-module
// summary store (one entry per distinct module+options pair the daemon
// has analyzed).
const DefaultSummaryEntries = 1024

// The incremental dispositions reported in the X-Lna-Incremental
// header and counted by lna_incremental_requests_total.
const (
	// IncrementalCold: no solve component was replayed from a summary
	// — the first sighting of this module (or of its every component).
	IncrementalCold = "cold"
	// IncrementalPartial: some components replayed, some solved fresh
	// — the steady state after an edit. A first sighting can also land
	// here in the multi-solve modes (confine/qual run a baseline solve
	// and a confine solve): components the confine planting leaves
	// unchanged replay within the same request.
	IncrementalPartial = "partial"
	// IncrementalFull: every component replayed; nothing was solved
	// from scratch (a resubmission, or an edit invisible to the
	// constraint systems).
	IncrementalFull = "full"
)

// IncrementalInfo describes how much of a request's analysis was
// reused from prior runs. It is engine-run metadata — surfaced in the
// X-Lna-Incremental header and the access log, never in the canonical
// response body (which stays byte-identical to a cold run).
type IncrementalInfo struct {
	// Disposition is cold|partial|full (see the constants).
	Disposition string
	// Replayed and Solved count solve components reused from summaries
	// vs computed fresh, over every solve the request performed.
	Replayed int64
	Solved   int64

	// Delta is the declaration-level diff against the module's
	// previously analyzed revision (zero value when this is the first
	// sighting — see Prior).
	Delta funcidx.Delta
	// Invalidated lists the functions the delta conservatively dirties
	// (the changed ones plus their transitive callers). The memo's
	// content addressing decides what is actually re-solved; this is
	// the human-readable account of why.
	Invalidated []string
	// Prior reports whether a previous revision of the module was in
	// the summary store to diff against.
	Prior bool
}

// summaryStore is a bounded LRU mapping module+options to the
// funcidx.Index of the last successfully analyzed revision. Eviction
// just loses the diff baseline: the next request for that module
// reports Prior=false and leans entirely on the solve memo's content
// addressing (correctness never depends on this store).
type summaryStore struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	entries  map[string]*list.Element
}

type summaryEntry struct {
	key string
	idx *funcidx.Index
}

func newSummaryStore(capacity int) *summaryStore {
	if capacity < 1 {
		capacity = 1
	}
	return &summaryStore{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

func (s *summaryStore) get(key string) *funcidx.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil
	}
	s.ll.MoveToFront(el)
	return el.Value.(*summaryEntry).idx
}

func (s *summaryStore) put(key string, idx *funcidx.Index) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*summaryEntry).idx = idx
		s.ll.MoveToFront(el)
		return
	}
	s.entries[key] = s.ll.PushFront(&summaryEntry{key: key, idx: idx})
	for s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.entries, oldest.Value.(*summaryEntry).key)
	}
}

func (s *summaryStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Incremental is the summary-based re-analysis engine: a process-wide
// solve memo (content-addressed component summaries) plus a per-module
// summary store holding the declaration index of each module's last
// analyzed revision. Analyze wraps AnalyzeBounded so that re-analyzing
// an edited module re-solves only the constraint components the edit
// actually changed — everything else replays from its summary,
// byte-identical to a fresh cold run.
//
// The division of labour is deliberate: correctness rides entirely on
// the memo's content addressing (a component replays only when its
// fingerprint — structure, symbols, ranks — matches exactly), while
// the funcidx diff is conservative bookkeeping that explains the
// reuse to humans (which declarations changed, which functions they
// dirty) and feeds the disposition header and metrics.
type Incremental struct {
	memo  *solve.Memo
	store *summaryStore
}

// NewIncremental builds an engine over the given memo (nil builds one
// with solve.DefaultMemoEntries) holding up to summaryEntries module
// baselines (<=0 = DefaultSummaryEntries).
func NewIncremental(memo *solve.Memo, summaryEntries int) *Incremental {
	if memo == nil {
		memo = solve.NewMemo(DefaultMemoEntries())
	}
	if summaryEntries <= 0 {
		summaryEntries = DefaultSummaryEntries
	}
	return &Incremental{memo: memo, store: newSummaryStore(summaryEntries)}
}

// DefaultMemoEntries re-exports the solve package's default so `lna
// serve` flag defaults live in one place.
func DefaultMemoEntries() int { return solve.DefaultMemoEntries }

// Memo exposes the underlying solve memo (for stats endpoints).
func (inc *Incremental) Memo() *solve.Memo { return inc.memo }

// Summaries reports how many module baselines are resident.
func (inc *Incremental) Summaries() int { return inc.store.len() }

// incrementalKey identifies a module baseline: the module name plus
// the canonical options encoding. Source deliberately excluded — the
// point is to find the *previous* revision of the same module.
func incrementalKey(req *AnalyzeRequest) string {
	opts := req.Options
	if opts.Mode == "" {
		opts.Mode = ModeQual
	}
	enc, _ := json.Marshal(opts)
	return req.Module + "\x00" + string(enc)
}

// Analyze runs one request through AnalyzeBounded with the engine's
// memo injected, diffs the module against its previous revision, and
// reports the reuse disposition. The response is byte-identical to
// what a memo-less run would produce (pinned by the differential
// tests); only the work performed differs.
func (inc *Incremental) Analyze(ctx context.Context, req *AnalyzeRequest, timeout time.Duration) (*AnalyzeResponse, *IncrementalInfo) {
	// Generated sources have no bytes to index until the guard runs;
	// such requests bypass the incremental machinery entirely.
	if req.Generate != nil {
		return AnalyzeBounded(ctx, req, timeout), nil
	}

	info := &IncrementalInfo{}
	key := incrementalKey(req)
	newIdx := funcidx.Build(req.Module, req.Source)
	if prior := inc.store.get(key); prior != nil {
		info.Prior = true
		info.Delta = funcidx.Diff(prior, newIdx)
		info.Invalidated = funcidx.Invalidated(prior, newIdx, info.Delta)
	}

	counters := req.MemoCounters
	if counters == nil {
		counters = &solve.MemoCounters{}
	}
	run := *req // shallow copy: the caller's request is not mutated
	run.Memo = inc.memo
	run.MemoCounters = counters
	resp := AnalyzeBounded(ctx, &run, timeout)

	info.Replayed = counters.Replayed.Load()
	info.Solved = counters.Solved.Load()
	switch {
	case info.Replayed == 0:
		info.Disposition = IncrementalCold
	case info.Solved == 0:
		info.Disposition = IncrementalFull
	default:
		info.Disposition = IncrementalPartial
	}
	obs.App().Incremental(info.Disposition).Inc()

	// Only a healthy run becomes the next diff baseline: a panicked or
	// timed-out analysis proves nothing about the module's revision.
	if resp.Failure == nil {
		inc.store.put(key, newIdx)
	}
	return resp, info
}
