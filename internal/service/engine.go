package service

import (
	"context"
	"fmt"
	"strings"
	"time"

	"localalias/internal/ast"
	"localalias/internal/core"
	"localalias/internal/faults"
	"localalias/internal/obs"
	"localalias/internal/qual"
	"localalias/internal/restrict"
	"localalias/internal/solve"
)

// testAnalyzeHook, when non-nil, runs inside the fault guard before
// the module is loaded. It is the seam this package's own tests use to
// make a chosen module panic or stall; corpus drivers inject faults
// through AnalyzeRequest.Generate instead.
var testAnalyzeHook func(ctx context.Context, module string)

// Analyze runs one request through the full pipeline with fault
// containment but no deadline. See AnalyzeBounded.
func Analyze(ctx context.Context, req *AnalyzeRequest) *AnalyzeResponse {
	return AnalyzeBounded(ctx, req, 0)
}

// AnalyzeBounded is the one analysis engine behind every front end
// (CLI subcommands, the experiment driver, and the daemon). The whole
// pipeline — source generation (when requested), parsing, type
// checking, inference, solving, and the mode-specific analysis — runs
// under a faults.RunBounded guard: a panic or a missed deadline
// becomes the response's Failure record, never a crashed process or a
// dropped connection. timeout bounds the module's wall-clock analysis
// (0 means no deadline beyond ctx's own).
//
// Outcome classification follows the shared exit-code table: source
// that fails to parse or type check yields findings (positioned
// diagnostics, Failure nil); a contained panic, timeout, or internal
// inconsistency yields a degraded response (Failure set).
func AnalyzeBounded(ctx context.Context, req *AnalyzeRequest, timeout time.Duration) *AnalyzeResponse {
	mode := req.Options.Mode
	if mode == "" {
		mode = ModeQual
	}
	name := req.Module
	if name == "" {
		name = "module.mc"
	}
	resp := &AnalyzeResponse{APIVersion: APIVersion, Module: name, Mode: mode}
	if !ValidMode(mode) {
		resp.Failure = &faults.ModuleFailure{
			Module: name, Kind: faults.KindError,
			Message: fmt.Sprintf("unknown analysis mode %q", mode),
		}
		resp.Diagnostics = NewDiagnostics(nil, solve.Stats{})
		return resp
	}
	if req.Options.MultiModule && mode != ModeConfine && mode != ModeQual {
		resp.Failure = &faults.ModuleFailure{
			Module: name, Kind: faults.KindError,
			Message: fmt.Sprintf("multi_module is not supported in mode %q (confine and qual only)", mode),
		}
		resp.Diagnostics = NewDiagnostics(nil, solve.Stats{})
		return resp
	}

	obs.App().Requests(mode).Inc()
	tr := faults.NewTrace(name)
	tr.SetSpans(req.Obs)
	// Open the request's root span and install it in the context: the
	// fault guard derives its context from ctx, so the span reaches
	// every ctx-aware layer below (the parallel solver's per-component
	// spans, the modgraph runner) without new parameters, and the
	// phase spans faults.Trace emits parent under it via the trace's
	// default-parent stack.
	span := req.Obs.StartSpan("analyze", "request")
	ctx = obs.ContextWithSpan(ctx, req.Obs, span.ID())
	start := time.Now()
	// The closure writes only these locals; on a timeout the abandoned
	// goroutine may still be running, so they are read back only when
	// the guard reports the goroutine actually finished.
	var (
		mod      *core.Module
		check    *CheckReport
		inferRep *InferReport
		locking  *LockingReport
		program  string
		stats    solve.Stats
		xmodule  string
	)
	fail := faults.RunBounded(ctx, name, timeout, tr, func(ctx context.Context) error {
		if testAnalyzeHook != nil {
			testAnalyzeHook(ctx, name)
		}
		src := req.Source
		if req.Generate != nil {
			tr.Enter(faults.PhaseGenerate)
			src = req.Generate(ctx)
		}
		if req.Options.MultiModule {
			var err error
			mod, locking, program, stats, xmodule, err = analyzeMultiModule(ctx, req, name, src, mode)
			return err
		}
		m, err := core.LoadModuleTraced(name, src, tr)
		mod = m
		if err != nil {
			// Lexical, syntactic, or standard type errors: the
			// positioned diagnostics on the module ARE the result
			// (findings, not a degraded run).
			return nil
		}
		switch mode {
		case ModeCheck:
			r := restrict.CheckWith(m.TInfo, m.Diags, restrict.CheckOptions{
				Liberal:       req.Options.Liberal,
				SolverWorkers: req.SolverWorkers,
				Memo:          req.Memo,
				MemoCounters:  req.MemoCounters,
			})
			check = &CheckReport{OK: r.OK(), UsedFigure5: r.UsedFigure5}
		case ModeInfer:
			r := m.InferRestrictWith(restrict.Options{
				Params:        req.Options.Params,
				SolverWorkers: req.SolverWorkers,
				Memo:          req.Memo,
				MemoCounters:  req.MemoCounters,
			})
			rep := &InferReport{
				Candidates: len(r.Infer.Candidates),
				Restricted: len(r.Restricted),
			}
			for _, c := range r.Restricted {
				rep.Marked = append(rep.Marked, fmt.Sprintf("%s %q", c.Kind, c.Name))
			}
			for _, rej := range r.Rejected {
				if len(rej.Reasons) > 0 {
					rep.Rejected = append(rep.Rejected, rej.Reasons[0])
				}
			}
			inferRep = rep
			stats.Add(r.Solution.Stats)
			program = formatProgram(m.Prog)
			// The engine renders everything it needs from the solution
			// above; recycle its pooled storage for the next request.
			r.Solution.Release()
		case ModeConfine, ModeQual:
			lr, err := m.AnalyzeLockingCtx(ctx, core.LockingOptions{
				General:       req.Options.General,
				SolverWorkers: req.SolverWorkers,
				Memo:          req.Memo,
				MemoCounters:  req.MemoCounters,
			}, tr)
			if err != nil {
				return err
			}
			locking = lockingReport(m, lr)
			stats.Add(lr.SolveStats)
			if mode == ModeConfine {
				program = formatProgram(m.Prog)
			}
		}
		return nil
	})
	resp.Elapsed = time.Since(start)
	resp.PhaseTimings = tr.Timings()
	resp.Failure = fail

	// Fold the request into the process-wide metrics (latency
	// histograms and failure counters) and close the enclosing request
	// span. Timings — like everything obs records — stay out of the
	// canonical wire body, so cached responses replay byte-identically.
	m := obs.App()
	m.AnalyzeSeconds.Observe(resp.Elapsed)
	for _, pt := range resp.PhaseTimings {
		m.RecordPhase(string(pt.Phase), pt.Elapsed)
	}
	if fail != nil {
		m.Failures(string(fail.Kind)).Inc()
	}
	span.End("module", name, "mode", mode)

	// A non-timeout outcome means the analysis goroutine delivered its
	// result, so the module (and its diagnostics) are safely ours. A
	// timed-out module's diagnostics stay with the abandoned goroutine.
	if fail == nil || fail.Kind != faults.KindTimeout {
		resp.Xmodule = xmodule
		if mod != nil {
			resp.Raw = mod.Diags
			resp.Diagnostics = NewDiagnostics(mod.Diags, stats)
		} else {
			resp.Diagnostics = NewDiagnostics(nil, stats)
		}
	} else {
		resp.Diagnostics = NewDiagnostics(nil, solve.Stats{})
	}
	resp.Check = check
	resp.Infer = inferRep
	resp.Locking = locking
	resp.Program = program

	resp.Findings = resp.Diagnostics.ErrorCount()
	if locking != nil {
		resp.Findings += locking.WithConfine.NumErrors
	}
	resp.OK = fail == nil && resp.Findings == 0
	return resp
}

// lockingReport converts the core result into wire form.
func lockingReport(m *core.Module, lr *core.LockingResult) *LockingReport {
	return &LockingReport{
		Sites:       lr.NoConfine.NumSites,
		Planted:     lr.Confine.Planted,
		Kept:        len(lr.Confine.Kept),
		Potential:   lr.Potential(),
		Eliminated:  lr.Eliminated(),
		NoConfine:   modeReport(m, lr.NoConfine),
		WithConfine: modeReport(m, lr.WithConfine),
		AllStrong:   modeReport(m, lr.AllStrong),
	}
}

func modeReport(m *core.Module, r *qual.Report) ModeReport {
	out := ModeReport{NumErrors: r.NumErrors(), Errors: []Diagnostic{}}
	for _, e := range r.Errors {
		out.Errors = append(out.Errors, Diagnostic{
			Pos:      m.Prog.File.Position(e.Site.Start).String(),
			Severity: "error",
			Phase:    "qual",
			Message:  e.String(),
		})
	}
	return out
}

func formatProgram(prog *ast.Program) string {
	var b strings.Builder
	_ = ast.Fprint(&b, prog)
	return b.String()
}
