package service

import "context"

// Test-only seams for the external wire-contract suites (package
// service_test), which exercise the daemon through internal/client the
// way real remote callers do and therefore cannot touch unexported
// state directly.

// SetTestAnalyzeHook installs (or, with nil, removes) the engine's
// test-only analysis hook: f runs inside the fault guard before every
// analysis, so external suites can inject panics and stalls per module.
func SetTestAnalyzeHook(f func(ctx context.Context, module string)) {
	testAnalyzeHook = f
}

// CleanCheckSrc is the minimal healthy check-mode module the in-package
// tests use, shared so the external suites assert against the same
// source text.
const CleanCheckSrc = cleanCheckSrc
