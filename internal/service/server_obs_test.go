package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"localalias/internal/client"
	"localalias/internal/obs"
	"localalias/internal/service"
)

// metricValue digs one counter's value out of a /v1/metrics JSON
// snapshot (the sum over its series). Missing metrics count as 0.
func metricValue(t *testing.T, doc map[string]any, name string) float64 {
	t.Helper()
	metrics, _ := doc["metrics"].([]any)
	var total float64
	for _, m := range metrics {
		mm := m.(map[string]any)
		if mm["name"] != name {
			continue
		}
		for _, s := range mm["series"].([]any) {
			sm := s.(map[string]any)
			if v, ok := sm["value"].(float64); ok {
				total += v
			}
		}
	}
	return total
}

func scrapeJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("metrics content type = %q, want JSON", ct)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("metrics body is not JSON: %v", err)
	}
	resp.Body.Close()
	return doc
}

func mustAnalyze(t *testing.T, c *client.Client, req service.AnalyzeRequest) client.Meta {
	t.Helper()
	_, meta, err := c.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatalf("AnalyzeRaw %s: %v", req.Module, err)
	}
	return meta
}

// TestMetricsEndpointShape: /v1/metrics serves the registry as JSON by
// default and as Prometheus text on request, and both carry the
// instruments this PR wires through the pipeline.
func TestMetricsEndpointShape(t *testing.T) {
	_, c := newTestServer(t, service.ServerOptions{})
	// Run one request so the request-scoped series exist.
	mustAnalyze(t, c, service.AnalyzeRequest{
		Module: "shape.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}})

	doc := scrapeJSON(t, c.BaseURL())
	for _, name := range []string{
		"lna_requests_total",
		"lna_analyze_seconds",
		"lna_phase_seconds",
		"lna_cache_hits_total",
		"lna_cache_misses_total",
		"lna_queue_depth",
		"lna_solve_total",
		"lna_solve_components_total",
		"lna_solve_component_size",
		"lna_solve_workers_inuse",
	} {
		metrics, _ := doc["metrics"].([]any)
		found := false
		for _, m := range metrics {
			if m.(map[string]any)["name"] == name {
				found = true
			}
		}
		if !found {
			t.Errorf("metric %s missing from /v1/metrics", name)
		}
	}

	// Prometheus exposition: via ?format= and via Accept.
	readAll := func(resp *http.Response) string {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return buf.String()
	}
	resp, err := http.Get(c.BaseURL() + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("prometheus content type = %q", resp.Header.Get("Content-Type"))
	}
	body := readAll(resp)
	for _, want := range []string{"# TYPE lna_requests_total counter", "# TYPE lna_analyze_seconds histogram", "lna_analyze_seconds_bucket{le=\"+Inf\"}"} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	req, _ := http.NewRequest("GET", c.BaseURL()+"/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(resp); !strings.Contains(body, "# HELP") {
		t.Error("Accept: text/plain did not select the Prometheus form")
	}

	// Unknown formats are a client error in the canonical shape, not a
	// silent default.
	resp, err = http.Get(c.BaseURL() + "/v1/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	errBody := readAll(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("format=xml status = %d, want 400", resp.StatusCode)
	}
	if werr := service.DecodeWireError(resp.StatusCode, []byte(errBody)); werr.Code != service.CodeBadRequest {
		t.Errorf("format=xml error code = %q, want %q", werr.Code, service.CodeBadRequest)
	}
}

// TestMetricsMonotonicUnderLoad hammers the server from many
// goroutines while scraping /v1/metrics concurrently, then checks the
// counters moved monotonically by exactly the submitted work. Run
// under -race this also proves the registry and the instrumented
// request path are data-race free.
func TestMetricsMonotonicUnderLoad(t *testing.T) {
	_, c := newTestServer(t, service.ServerOptions{Workers: 4, QueueDepth: 1 << 16})
	before := scrapeJSON(t, c.BaseURL())
	reqBefore := metricValue(t, before, "lna_http_requests_total")
	hitsBefore := metricValue(t, before, "lna_cache_hits_total")

	const workers, perWorker = 8, 10
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		last := reqBefore
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := metricValue(t, scrapeJSON(t, c.BaseURL()), "lna_http_requests_total")
			if cur < last {
				t.Errorf("lna_http_requests_total went backwards: %v -> %v", last, cur)
				return
			}
			last = cur
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Half the requests share one module (cache traffic),
				// half are distinct (engine traffic).
				mod := fmt.Sprintf("shared-%d.mc", w%2)
				meta := mustAnalyze(t, c, service.AnalyzeRequest{
					Module: mod, Source: service.CleanCheckSrc,
					Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
				if meta.TraceID == "" {
					t.Error("response missing X-Lna-Trace header")
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	after := scrapeJSON(t, c.BaseURL())
	total := workers * perWorker
	if got := metricValue(t, after, "lna_http_requests_total") - reqBefore; got != float64(total) {
		t.Errorf("lna_http_requests_total moved by %v, want %d", got, total)
	}
	// Two distinct cache keys, so all but two requests were hits.
	if got := metricValue(t, after, "lna_cache_hits_total") - hitsBefore; got != float64(total-2) {
		t.Errorf("lna_cache_hits_total moved by %v, want %d", got, total-2)
	}
}

// TestBatchTraceIDsUnique submits a 200-module batch and requires a
// distinct trace ID per entry plus an index-aligned per-item cache
// disposition header.
func TestBatchTraceIDsUnique(t *testing.T) {
	_, c := newTestServer(t, service.ServerOptions{})
	const n = 200
	reqs := make([]service.AnalyzeRequest, n)
	for i := range reqs {
		reqs[i] = service.AnalyzeRequest{
			Module: fmt.Sprintf("m%03d.mc", i), Source: service.CleanCheckSrc,
			Options: service.AnalyzeOptions{Mode: service.ModeCheck},
		}
	}
	// Prime one module so the batch sees both dispositions.
	mustAnalyze(t, c, reqs[0])

	out, meta, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	dispositions := strings.Split(meta.Cache, ",")
	if len(out.Results) != n || len(dispositions) != n {
		t.Fatalf("got %d results, %d header dispositions, want %d", len(out.Results), len(dispositions), n)
	}
	seen := make(map[string]bool, n)
	for i, res := range out.Results {
		if len(res.TraceID) != 16 {
			t.Fatalf("entry %d: trace ID %q is not 16 hex chars", i, res.TraceID)
		}
		if seen[res.TraceID] {
			t.Fatalf("entry %d: duplicate trace ID %q", i, res.TraceID)
		}
		seen[res.TraceID] = true
		want := "miss"
		if res.Cached {
			want = "hit"
		}
		if dispositions[i] != want {
			t.Errorf("entry %d: header says %q, body says %q", i, dispositions[i], want)
		}
	}
	if !out.Results[0].Cached {
		t.Error("primed module should have been a cache hit")
	}
}

// TestAccessLogFormats: both renderings carry the fields an operator
// joins on (trace ID, cache disposition, phase timings), and cached
// responses stay byte-identical whether or not logging is on.
func TestAccessLogFormats(t *testing.T) {
	var textBuf, jsonBuf bytes.Buffer
	req := service.AnalyzeRequest{Module: "logged.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}}

	_, textC := newTestServer(t, service.ServerOptions{AccessLog: &textBuf, LogFormat: service.LogText})
	coldBody, _, err := textC.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	hitBody, _, err := textC.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBody, hitBody) {
		t.Fatal("cached response bytes differ from cold run with logging enabled")
	}
	lines := strings.Split(strings.TrimSpace(textBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 text log lines, got %d:\n%s", len(lines), textBuf.String())
	}
	if !strings.Contains(lines[0], "cache=miss") || !strings.Contains(lines[0], "phases=") ||
		!strings.Contains(lines[0], "trace=") || !strings.Contains(lines[0], "module=logged.mc") {
		t.Errorf("cold text line missing fields: %s", lines[0])
	}
	if !strings.Contains(lines[1], "cache=hit") {
		t.Errorf("hit text line missing cache=hit: %s", lines[1])
	}

	_, jsonC := newTestServer(t, service.ServerOptions{AccessLog: &jsonBuf, LogFormat: service.LogJSON})
	meta := mustAnalyze(t, jsonC, req)
	var entry struct {
		Method string  `json:"method"`
		Path   string  `json:"path"`
		Status int     `json:"status"`
		DurMs  float64 `json:"dur_ms"`
		Trace  string  `json:"trace"`
		Cache  string  `json:"cache"`
		Module string  `json:"module"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &entry); err != nil {
		t.Fatalf("json log line: %v\n%s", err, jsonBuf.String())
	}
	if entry.Method != "POST" || entry.Path != "/v1/analyze" || entry.Status != 200 ||
		entry.Module != "logged.mc" || entry.Trace != meta.TraceID {
		t.Errorf("json log entry fields wrong: %+v (want trace %s)", entry, meta.TraceID)
	}
}

// TestEngineTracePhases: a traced request collects one span per
// executed phase plus the enclosing request span, all under one ID —
// and the trace is exportable as Chrome JSON.
func TestEngineTracePhases(t *testing.T) {
	ot := obs.NewTrace("traced.mc")
	resp := service.Analyze(t.Context(), &service.AnalyzeRequest{
		Module: "traced.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeQual},
		Obs:     ot,
	})
	if resp.Failure != nil {
		t.Fatalf("analysis failed: %v", resp.Failure)
	}
	spans := ot.Spans()
	names := make(map[string]bool)
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"parse", "typecheck", "infer", "solve", "qual", "analyze"} {
		if !names[want] {
			t.Errorf("trace missing %q span (got %v)", want, names)
		}
	}
	var buf bytes.Buffer
	if err := ot.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ot.ID()) {
		t.Error("chrome export does not carry the trace ID")
	}
}
