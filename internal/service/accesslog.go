package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"localalias/internal/faults"
)

// Access-log formats accepted by ServerOptions.LogFormat.
const (
	// LogText renders one human-scannable line per request.
	LogText = "text"
	// LogJSON renders one JSON object per line (machine-ingestible).
	LogJSON = "json"
)

// AccessEntry is one HTTP request's log record. Every field the
// operator needs to correlate a request with its trace and cache
// behaviour rides here — and NOT in the response body, which must
// stay byte-stable for caching. The daemon and the gateway share the
// type (and the logger): the gateway additionally fills Backend,
// Attempts, and the relayed Incremental/Xmodule dispositions.
type AccessEntry struct {
	Time   time.Time `json:"time"`
	Method string    `json:"method"`
	Path   string    `json:"path"`
	Status int       `json:"status"`
	DurMs  float64   `json:"dur_ms"`
	Trace  string    `json:"trace,omitempty"`
	Cache  string    `json:"cache,omitempty"` // hit|miss (single analyze)
	// Incremental is the reuse disposition of a cold single-module
	// run: cold|partial|full (empty on hits or when disabled).
	Incremental string `json:"incremental,omitempty"`
	// Xmodule is the whole-program pass summary of a multi_module
	// request ("modules=N;analyzed=A;failed=F"), mirroring the
	// X-Lna-Xmodule response header.
	Xmodule string `json:"xmodule,omitempty"`
	Module  string `json:"module,omitempty"`
	Mode    string `json:"mode,omitempty"`
	Modules int    `json:"modules,omitempty"` // batch size
	Hits    int    `json:"hits,omitempty"`    // batch cache hits
	Misses  int    `json:"misses,omitempty"`  // batch cache misses
	// Backend and Attempts are gateway-side routing facts: which
	// replica served the request and how many placement attempts
	// (including hedges) it took.
	Backend  string `json:"backend,omitempty"`
	Attempts int    `json:"attempts,omitempty"`

	// Phases is the per-phase wall-clock breakdown of a cold run
	// (empty on cache hits — the work happened on the cold request).
	Phases []faults.PhaseTiming `json:"phases,omitempty"`
}

// AccessLogger serializes access entries to one writer in one of the
// two formats. A nil logger (logging disabled) is a no-op.
type AccessLogger struct {
	mu     sync.Mutex
	w      io.Writer
	asJSON bool
}

// NewAccessLogger builds a logger, or nil when w is nil or format
// does not name a known format.
func NewAccessLogger(w io.Writer, format string) *AccessLogger {
	if w == nil {
		return nil
	}
	switch format {
	case LogJSON:
		return &AccessLogger{w: w, asJSON: true}
	case LogText, "":
		return &AccessLogger{w: w}
	}
	return nil
}

// Log writes one entry; concurrent requests serialize on the mutex so
// lines never interleave.
func (l *AccessLogger) Log(e AccessEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.asJSON {
		data, err := json.Marshal(e)
		if err != nil {
			return
		}
		l.w.Write(append(data, '\n'))
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s %d %.1fms",
		e.Time.Format(time.RFC3339), e.Method, e.Path, e.Status, e.DurMs)
	if e.Trace != "" {
		fmt.Fprintf(&b, " trace=%s", e.Trace)
	}
	if e.Cache != "" {
		fmt.Fprintf(&b, " cache=%s", e.Cache)
	}
	if e.Incremental != "" {
		fmt.Fprintf(&b, " incremental=%s", e.Incremental)
	}
	if e.Xmodule != "" {
		fmt.Fprintf(&b, " xmodule=%s", e.Xmodule)
	}
	if e.Module != "" {
		fmt.Fprintf(&b, " module=%s", e.Module)
	}
	if e.Mode != "" {
		fmt.Fprintf(&b, " mode=%s", e.Mode)
	}
	if e.Modules > 0 {
		fmt.Fprintf(&b, " modules=%d hits=%d misses=%d", e.Modules, e.Hits, e.Misses)
	}
	if e.Backend != "" {
		fmt.Fprintf(&b, " backend=%s", e.Backend)
	}
	if e.Attempts > 0 {
		fmt.Fprintf(&b, " attempts=%d", e.Attempts)
	}
	if len(e.Phases) > 0 {
		b.WriteString(" phases=")
		b.WriteString(formatPhases(e.Phases))
	}
	b.WriteByte('\n')
	io.WriteString(l.w, b.String())
}

// formatPhases renders phase timings as "parse:1.2ms,solve:3ms" — the
// same compact form the X-Lna-Phases response header uses.
func formatPhases(phases []faults.PhaseTiming) string {
	var b strings.Builder
	for i, pt := range phases {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%v", pt.Phase, pt.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}

// statusWriter captures the status code a handler wrote, for the
// access log. WriteHeader-less handlers imply 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Status returns the captured status (200 when nothing was written).
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
