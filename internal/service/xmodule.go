package service

import (
	"context"
	"fmt"

	"localalias/internal/core"
	"localalias/internal/modgraph"
	"localalias/internal/obs"
	"localalias/internal/solve"
	"localalias/internal/source"
)

// analyzeMultiModule runs the whole-program pass for a multi_module
// request: the request module plus Options.Libraries are linked over
// the import DAG and analyzed bottom-up with package summaries
// (internal/modgraph). The response reports the request module;
// library failures surface as diagnostics on it, positioned in the
// failing library's source.
//
// Returns the request module (for diagnostics rendering), its locking
// report, the transformed program (confine mode), the aggregated
// solver stats, and the X-Lna-Xmodule summary value.
func analyzeMultiModule(ctx context.Context, req *AnalyzeRequest, name, src, mode string) (*core.Module, *LockingReport, string, solve.Stats, string, error) {
	sources := make([]modgraph.Source, 0, len(req.Options.Libraries)+1)
	for _, lib := range req.Options.Libraries {
		sources = append(sources, modgraph.Source{Name: lib.Name, Text: lib.Source})
	}
	sources = append(sources, modgraph.Source{Name: name, Text: src})

	// The DAG runner schedules modules on its own goroutines, so the
	// trace travels by explicit option rather than context: every
	// per-module span parents under the request's analyze span.
	trace, parent := obs.SpanFromContext(ctx)
	xres := modgraph.Analyze(sources, modgraph.Options{
		Workers:       req.SolverWorkers,
		General:       req.Options.General,
		SolverWorkers: req.SolverWorkers,
		Memo:          req.Memo,
		Trace:         trace,
		TraceParent:   parent,
	})

	var stats solve.Stats
	analyzed := 0
	for _, mr := range xres.Modules {
		if mr.Locking != nil {
			stats.Add(mr.Locking.SolveStats)
		}
		if !mr.Failed() {
			analyzed++
		}
	}
	failed := len(xres.Modules) - analyzed
	xmodule := fmt.Sprintf("modules=%d;analyzed=%d;failed=%d", len(xres.Modules), analyzed, failed)

	mr := xres.Modules[name]
	mod := mr.Module
	if mod == nil {
		// Duplicate module name: no parse tree to attach to — a
		// positionless diagnostic carries the failure.
		mod = &core.Module{Name: name, Diags: &source.Diagnostics{}}
		mod.Diags.Add(&source.Diagnostic{
			Severity: source.Error, Phase: "modgraph", Message: mr.Err.Error(),
		})
		return mod, nil, "", stats, xmodule, nil
	}

	// Surface failed libraries on the request module's diagnostics:
	// each entry stays positioned in its own source file, dependency
	// failures first (sorted by library name) so they read bottom-up.
	var merged source.Diagnostics
	for _, dep := range xres.Failures() {
		if dep == name {
			continue
		}
		if dm := xres.Modules[dep]; dm.Module != nil {
			merged.List = append(merged.List, dm.Module.Diags.List...)
		}
	}
	merged.List = append(merged.List, mod.Diags.List...)
	mod.Diags.List = merged.List

	if mr.Failed() {
		if mod.Diags.HasErrors() {
			// Load/type/cycle failure: the positioned diagnostics ARE
			// the result (findings, not a degraded run).
			return mod, nil, "", stats, xmodule, nil
		}
		return mod, nil, "", stats, xmodule, mr.Err
	}

	locking := lockingReport(mod, mr.Locking)
	program := ""
	if mode == ModeConfine {
		program = formatProgram(mod.Prog)
	}
	return mod, locking, program, stats, xmodule, nil
}
