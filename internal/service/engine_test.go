package service

import (
	"context"
	"strings"
	"testing"
	"time"

	"localalias/internal/drivergen"
	"localalias/internal/faults"
)

const violationSrc = `fun f(x: ref int): int {
    restrict y = x {
        restrict z = x {
            return *y + *z;
        }
        return 0;
    }
    return 0;
}
`

const inferSrc = `global sink: ref int;

fun f(q: ref int, w: ref int, leaky: ref int): int {
    let p = q;
    let b = w;
    let e = leaky;
    sink = e;
    return *p + *b + *w;
}
`

// TestAnalyzeCheckClean: valid annotations verify with no findings and
// the clean exit code.
func TestAnalyzeCheckClean(t *testing.T) {
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module: "clean.mc", Source: cleanCheckSrc,
		Options: AnalyzeOptions{Mode: ModeCheck},
	})
	if !resp.OK || resp.Findings != 0 || resp.Failure != nil {
		t.Fatalf("clean check: OK=%v Findings=%d Failure=%v", resp.OK, resp.Findings, resp.Failure)
	}
	if resp.Check == nil || !resp.Check.OK {
		t.Errorf("Check report = %+v; want OK", resp.Check)
	}
	if got := resp.ExitCode(); got != ExitClean {
		t.Errorf("ExitCode() = %d, want %d", got, ExitClean)
	}
	if resp.APIVersion != APIVersion || resp.Mode != ModeCheck || resp.Module != "clean.mc" {
		t.Errorf("response header = %s/%s/%s", resp.APIVersion, resp.Module, resp.Mode)
	}
}

// TestAnalyzeCheckViolation: a restrict violation is a finding
// (positioned error diagnostic, findings exit code), not a failure.
func TestAnalyzeCheckViolation(t *testing.T) {
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module: "viol.mc", Source: violationSrc,
		Options: AnalyzeOptions{Mode: ModeCheck},
	})
	if resp.Failure != nil {
		t.Fatalf("violation reported as failure: %v", resp.Failure)
	}
	if resp.OK || resp.Findings == 0 {
		t.Fatalf("violation not flagged: OK=%v Findings=%d", resp.OK, resp.Findings)
	}
	if resp.Check == nil || resp.Check.OK {
		t.Errorf("Check report = %+v; want not OK", resp.Check)
	}
	if got := resp.ExitCode(); got != ExitFindings {
		t.Errorf("ExitCode() = %d, want %d", got, ExitFindings)
	}
	var positioned bool
	for _, d := range resp.Diagnostics.Diags {
		if d.Severity == "error" && strings.Contains(d.Pos, "viol.mc:") {
			positioned = true
		}
	}
	if !positioned {
		t.Errorf("no positioned error diagnostic in %+v", resp.Diagnostics.Diags)
	}
}

// TestAnalyzeParseError: source that does not parse yields findings
// (the diagnostics ARE the result), never a degraded response.
func TestAnalyzeParseError(t *testing.T) {
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module: "broken.mc", Source: "fun ) nope {{{",
		Options: AnalyzeOptions{Mode: ModeQual},
	})
	if resp.Failure != nil {
		t.Fatalf("parse error reported as failure: %v", resp.Failure)
	}
	if resp.Findings == 0 || resp.ExitCode() != ExitFindings {
		t.Fatalf("parse error: Findings=%d ExitCode=%d; want findings and exit %d",
			resp.Findings, resp.ExitCode(), ExitFindings)
	}
}

// TestAnalyzeInfer: restrict inference promotes the safe candidate,
// reports the rejected ones, and returns the annotated program.
func TestAnalyzeInfer(t *testing.T) {
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module: "inf.mc", Source: inferSrc,
		Options: AnalyzeOptions{Mode: ModeInfer},
	})
	if resp.Failure != nil || resp.Infer == nil {
		t.Fatalf("infer: Failure=%v Infer=%v", resp.Failure, resp.Infer)
	}
	r := resp.Infer
	if r.Candidates != 3 || r.Restricted != 1 {
		t.Errorf("Candidates=%d Restricted=%d; want 3 and 1", r.Candidates, r.Restricted)
	}
	if len(r.Marked) != r.Restricted {
		t.Errorf("Marked %v does not match Restricted=%d", r.Marked, r.Restricted)
	}
	if len(r.Marked) > 0 && !strings.Contains(r.Marked[0], `"p"`) {
		t.Errorf("Marked[0] = %q, want the candidate p", r.Marked[0])
	}
	if !strings.Contains(resp.Program, "restrict") {
		t.Errorf("annotated program lacks the inferred restrict:\n%s", resp.Program)
	}
}

// TestAnalyzeQualAgainstGenerator: the qual mode must measure exactly
// the triple the corpus generator predicts — the same agreement the
// experiment driver asserts over all 589 modules.
func TestAnalyzeQualAgainstGenerator(t *testing.T) {
	var spec *drivergen.ModuleSpec
	for _, s := range drivergen.Corpus() {
		if s.Category == drivergen.FullRecovery {
			spec = s
			break
		}
	}
	if spec == nil {
		t.Fatal("corpus has no full-recovery module")
	}
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module: spec.Name + ".mc", Source: spec.Source(),
		Options: AnalyzeOptions{Mode: ModeQual},
	})
	if resp.Failure != nil || resp.Locking == nil {
		t.Fatalf("%s: Failure=%v Locking=%v", spec.Name, resp.Failure, resp.Locking)
	}
	got := drivergen.Triple{
		NoConfine: resp.Locking.NoConfine.NumErrors,
		Confine:   resp.Locking.WithConfine.NumErrors,
		AllStrong: resp.Locking.AllStrong.NumErrors,
	}
	if got != spec.Expected {
		t.Errorf("%s: measured %+v, generator expects %+v", spec.Name, got, spec.Expected)
	}
	if resp.Locking.Potential != got.NoConfine-got.AllStrong ||
		resp.Locking.Eliminated != got.NoConfine-got.Confine {
		t.Errorf("derived counts wrong: %+v", resp.Locking)
	}
	// Findings in qual mode are the confine-inference residual errors.
	if resp.Findings != got.Confine {
		t.Errorf("Findings = %d, want the with-confine error count %d", resp.Findings, got.Confine)
	}
}

// TestAnalyzePanicContained: a panic inside the pipeline degrades the
// response (structured failure, degraded exit code) instead of
// crashing the caller.
func TestAnalyzePanicContained(t *testing.T) {
	testAnalyzeHook = func(ctx context.Context, module string) {
		panic("injected service fault")
	}
	defer func() { testAnalyzeHook = nil }()
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module: "boom.mc", Source: cleanCheckSrc,
		Options: AnalyzeOptions{Mode: ModeCheck},
	})
	if resp.Failure == nil {
		t.Fatal("panic was not contained into a Failure record")
	}
	if resp.Failure.Kind != faults.KindPanic {
		t.Errorf("Failure.Kind = %q, want panic", resp.Failure.Kind)
	}
	if !strings.Contains(resp.Failure.Message, "injected service fault") {
		t.Errorf("Failure.Message = %q lacks the panic value", resp.Failure.Message)
	}
	if got := resp.ExitCode(); got != ExitDegraded {
		t.Errorf("ExitCode() = %d, want %d", got, ExitDegraded)
	}
}

// TestAnalyzeTimeout: a stalled analysis is cut off at the deadline
// with a timeout failure and no diagnostics from the abandoned run.
func TestAnalyzeTimeout(t *testing.T) {
	testAnalyzeHook = func(ctx context.Context, module string) {
		<-ctx.Done()
		faults.CheckDeadline(ctx)
	}
	defer func() { testAnalyzeHook = nil }()
	resp := AnalyzeBounded(context.Background(), &AnalyzeRequest{
		Module: "stall.mc", Source: cleanCheckSrc,
		Options: AnalyzeOptions{Mode: ModeCheck},
	}, 50*time.Millisecond)
	if resp.Failure == nil || resp.Failure.Kind != faults.KindTimeout {
		t.Fatalf("Failure = %+v, want a timeout record", resp.Failure)
	}
	if resp.Raw != nil {
		t.Error("Raw diagnostics leaked from a timed-out analysis")
	}
	if got := resp.ExitCode(); got != ExitDegraded {
		t.Errorf("ExitCode() = %d, want %d", got, ExitDegraded)
	}
}

// TestAnalyzeUnknownMode: an invalid mode degrades the response.
func TestAnalyzeUnknownMode(t *testing.T) {
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module: "m.mc", Source: cleanCheckSrc,
		Options: AnalyzeOptions{Mode: "optimize"},
	})
	if resp.Failure == nil || !strings.Contains(resp.Failure.Message, "optimize") {
		t.Fatalf("Failure = %+v, want an unknown-mode record", resp.Failure)
	}
	if resp.ExitCode() != ExitDegraded {
		t.Errorf("ExitCode() = %d, want %d", resp.ExitCode(), ExitDegraded)
	}
}
