// The daemon's wire-contract suite lives in package service_test and
// drives the server exclusively through internal/client — the same
// typed client the gateway, the CLI's remote mode, and the load
// harness use. The tests therefore pin the contract a real remote
// caller sees, not a hand-rolled approximation of it.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"localalias/internal/client"
	"localalias/internal/drivergen"
	"localalias/internal/service"
)

// newTestServer boots a daemon on an httptest listener and returns it
// with a client configured for fast retries (tests should not spend
// wall-clock on production backoff).
func newTestServer(t *testing.T, opts service.ServerOptions) (*service.Server, *client.Client) {
	t.Helper()
	s := service.NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, client.Options{
		Retry: client.RetryPolicy{MaxAttempts: 1},
	})
	return s, c
}

// rawPost bypasses the typed client for requests the client cannot (by
// design) produce: malformed JSON, wrong methods, unknown shapes.
func rawPost(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

// wantAPIError asserts err is an *client.APIError with the given
// status and canonical code, and returns it.
func wantAPIError(t *testing.T, err error, status int, code string) *client.APIError {
	t.Helper()
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("error = %v (%T); want *client.APIError", err, err)
	}
	if apiErr.Status != status || apiErr.Err.Code != code {
		t.Fatalf("got status %d code %q; want %d %q", apiErr.Status, apiErr.Err.Code, status, code)
	}
	return apiErr
}

// TestServerAnalyzeRoundTrip: a cold request misses the cache, an
// identical resubmission hits it, and the hit's body is byte-identical
// to the cold run's — the wire contract the cache depends on.
func TestServerAnalyzeRoundTrip(t *testing.T) {
	_, c := newTestServer(t, service.ServerOptions{})
	req := service.AnalyzeRequest{Module: "clean.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}}

	coldBody, coldMeta, err := c.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatalf("cold AnalyzeRaw: %v", err)
	}
	if coldMeta.Cache != "miss" {
		t.Errorf("cold X-Lna-Cache = %q, want miss", coldMeta.Cache)
	}
	if want := service.CacheKey(&req); coldMeta.CacheKey != want {
		t.Errorf("X-Lna-Cache-Key = %q, want %q", coldMeta.CacheKey, want)
	}
	var parsed service.AnalyzeResponse
	if err := json.Unmarshal(coldBody, &parsed); err != nil {
		t.Fatalf("response is not an AnalyzeResponse: %v\n%s", err, coldBody)
	}
	if parsed.APIVersion != service.APIVersion || !parsed.OK || parsed.Module != "clean.mc" {
		t.Errorf("parsed response = %+v", parsed)
	}
	// The body must equal what the engine + canonical renderer produce
	// directly — the `lna check -json` equivalence.
	direct, err := service.Analyze(context.Background(), &req).MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBody, direct) {
		t.Errorf("served bytes differ from MarshalCanonical:\n--- served\n%s\n--- direct\n%s", coldBody, direct)
	}

	warmBody, warmMeta, err := c.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatalf("warm AnalyzeRaw: %v", err)
	}
	if warmMeta.Cache != "hit" {
		t.Errorf("warm X-Lna-Cache = %q, want hit", warmMeta.Cache)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Error("cache hit served different bytes than the cold run")
	}
}

// TestServerValidation: malformed submissions are refused before they
// cost a worker slot, each with its canonical error code.
func TestServerValidation(t *testing.T) {
	_, c := newTestServer(t, service.ServerOptions{})
	cases := []struct {
		name string
		req  service.AnalyzeRequest
		code string
	}{
		{"empty source", service.AnalyzeRequest{Module: "m.mc",
			Options: service.AnalyzeOptions{Mode: service.ModeCheck}}, service.CodeBadRequest},
		{"bad mode", service.AnalyzeRequest{Module: "m.mc", Source: "fun f() {}",
			Options: service.AnalyzeOptions{Mode: "optimize"}}, service.CodeBadRequest},
		{"future api version", service.AnalyzeRequest{APIVersion: "v99", Module: "m.mc",
			Source: "fun f() {}", Options: service.AnalyzeOptions{Mode: service.ModeCheck}},
			service.CodeUnsupportedVersion},
	}
	for _, tc := range cases {
		_, _, err := c.Analyze(context.Background(), &tc.req)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		apiErr := wantAPIError(t, err, http.StatusBadRequest, tc.code)
		if apiErr.ExitCode() != service.ExitUsage {
			t.Errorf("%s: exit code %d, want %d", tc.name, apiErr.ExitCode(), service.ExitUsage)
		}
	}
	get, err := http.Get(c.BaseURL() + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 512)
	n, _ := get.Body.Read(body)
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze status = %d, want 405", get.StatusCode)
	}
	if werr := service.DecodeWireError(get.StatusCode, body[:n]); werr.Code != service.CodeMethodNotAllowed {
		t.Errorf("GET error code = %q, want %q", werr.Code, service.CodeMethodNotAllowed)
	}
}

// TestServerErrorBodyShape: every refusal path answers the one
// canonical {"error": {"code", "message"}} shape — no ad-hoc strings.
func TestServerErrorBodyShape(t *testing.T) {
	s, c := newTestServer(t, service.ServerOptions{})
	url := c.BaseURL()
	checks := []struct {
		name   string
		do     func() (*http.Response, []byte)
		status int
		code   string
	}{
		{"malformed json", func() (*http.Response, []byte) {
			return rawPost(t, url+"/v1/analyze", "{not json")
		}, http.StatusBadRequest, service.CodeBadRequest},
		{"draining", func() (*http.Response, []byte) {
			s.SetDraining(true)
			defer s.SetDraining(false)
			return rawPost(t, url+"/v1/analyze", "{}")
		}, http.StatusServiceUnavailable, service.CodeDraining},
		{"empty batch", func() (*http.Response, []byte) {
			return rawPost(t, url+"/v1/batch", `{"requests":[]}`)
		}, http.StatusBadRequest, service.CodeBadRequest},
	}
	for _, tc := range checks {
		resp, body := tc.do()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		var eb service.ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == nil {
			t.Errorf("%s: body is not the canonical error shape: %s", tc.name, body)
			continue
		}
		if eb.Error.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, eb.Error.Code, tc.code)
		}
		if eb.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
		if want := service.StatusForCode(eb.Error.Code); want != resp.StatusCode {
			t.Errorf("%s: status %d disagrees with the code table's %d", tc.name, resp.StatusCode, want)
		}
	}
}

func corpusBatch(n int) []service.AnalyzeRequest {
	reqs := make([]service.AnalyzeRequest, 0, n)
	for _, spec := range drivergen.Corpus()[:n] {
		reqs = append(reqs, service.AnalyzeRequest{
			Module: spec.Name + ".mc",
			Source: spec.Source(),
		})
	}
	return reqs
}

// TestServerBatchCacheHitRate: submitting the same 20-module batch
// twice serves the second pass almost entirely from cache (the CI
// smoke criterion is >= 90%; identical submissions should hit 100%).
func TestServerBatchCacheHitRate(t *testing.T) {
	s, c := newTestServer(t, service.ServerOptions{Workers: 4})
	reqs := corpusBatch(20)

	var passes [2]*service.BatchResponse
	// The passes must run in order (a map range would randomize them,
	// making the hit-rate assertions flaky).
	for i := range passes {
		out, _, err := c.Batch(context.Background(), reqs)
		if err != nil {
			t.Fatalf("pass %d: %v", i+1, err)
		}
		passes[i] = out
	}
	first, second := passes[0], passes[1]
	if first.Summary.Modules != 20 || first.Summary.CacheMisses != 20 || first.Summary.Failures != 0 {
		t.Errorf("first pass summary = %+v; want 20 modules, all misses, no failures", first.Summary)
	}
	if second.Summary.CacheHits < 18 {
		t.Errorf("second pass cache hits = %d/20, want >= 18 (90%%)", second.Summary.CacheHits)
	}
	// A cached entry replays the cold pass's exact bytes.
	for i := range second.Results {
		if !second.Results[i].Cached {
			continue
		}
		if !bytes.Equal(first.Results[i].Response, second.Results[i].Response) {
			t.Errorf("entry %d: cache hit bytes differ from the cold run", i)
		}
	}
	if st := s.CacheStats(); st.Hits < 18 || st.Entries == 0 {
		t.Errorf("server cache stats = %+v", st)
	}
}

// TestServerLargeBatch: the server sustains a 200-module submission —
// every entry answered, none degraded, all distinct cache keys.
func TestServerLargeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("200-module batch in -short mode")
	}
	_, c := newTestServer(t, service.ServerOptions{})
	out, _, err := c.Batch(context.Background(), corpusBatch(200))
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if out.Summary.Modules != 200 || len(out.Results) != 200 {
		t.Fatalf("summary = %+v, %d results; want 200", out.Summary, len(out.Results))
	}
	if out.Summary.Failures != 0 {
		t.Errorf("%d modules degraded in a healthy batch", out.Summary.Failures)
	}
	keys := make(map[string]bool, 200)
	for i, entry := range out.Results {
		if len(entry.Response) == 0 {
			t.Fatalf("entry %d has no response", i)
		}
		keys[entry.CacheKey] = true
	}
	if len(keys) != 200 {
		t.Errorf("%d distinct cache keys for 200 distinct modules", len(keys))
	}
}

// TestServerBatchPanicIsolation: one module panicking degrades only
// its own entry — the batch still answers 200 with a failure record in
// that slot, and the panicking module is never cached.
func TestServerBatchPanicIsolation(t *testing.T) {
	service.SetTestAnalyzeHook(func(ctx context.Context, module string) {
		if module == "bomb.mc" {
			panic("injected server fault")
		}
	})
	defer service.SetTestAnalyzeHook(nil)

	_, c := newTestServer(t, service.ServerOptions{Workers: 2})
	reqs := append(corpusBatch(2), service.AnalyzeRequest{
		Module: "bomb.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck},
	})
	out, _, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("batch with a panicking module: %v", err)
	}
	if out.Summary.Failures != 1 {
		t.Errorf("summary failures = %d, want 1", out.Summary.Failures)
	}
	for i, entry := range out.Results {
		var r service.AnalyzeResponse
		if err := json.Unmarshal(entry.Response, &r); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if r.Module == "bomb.mc" {
			if r.Failure == nil || !strings.Contains(r.Failure.Message, "injected server fault") {
				t.Errorf("panicking module lacks its failure record: %+v", r.Failure)
			}
		} else if r.Failure != nil {
			t.Errorf("healthy module %s degraded by its neighbour: %v", r.Module, r.Failure)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Failures != 1 {
		t.Errorf("failure counter = %d, want 1", st.Failures)
	}
	// Failed responses are never cached: resubmitting the module (with
	// the hook gone) re-runs it and succeeds.
	service.SetTestAnalyzeHook(nil)
	resp, meta, err := c.Analyze(context.Background(), &reqs[2])
	if err != nil {
		t.Fatalf("resubmission: %v", err)
	}
	if meta.Cache != "miss" {
		t.Errorf("resubmitted failed module X-Lna-Cache = %q, want miss", meta.Cache)
	}
	if resp.Failure != nil || !resp.OK {
		t.Errorf("resubmission after the fault cleared = %+v", resp)
	}
}

// TestServerBatchLimits: empty and oversized batches are rejected with
// the canonical bad_request error.
func TestServerBatchLimits(t *testing.T) {
	_, c := newTestServer(t, service.ServerOptions{})
	for _, tc := range []struct {
		name string
		n    int
	}{{"empty", 0}, {"oversized", service.MaxBatch + 1}} {
		reqs := make([]service.AnalyzeRequest, tc.n)
		for i := range reqs {
			reqs[i] = service.AnalyzeRequest{Module: fmt.Sprintf("m%d.mc", i), Source: "fun f() {}"}
		}
		_, _, err := c.Batch(context.Background(), reqs)
		if err == nil {
			t.Errorf("%s batch accepted", tc.name)
			continue
		}
		wantAPIError(t, err, http.StatusBadRequest, service.CodeBadRequest)
	}
}

// TestServerBatchPerEntryAdmission: a batch mixing healthy and
// inadmissible modules answers 200 with per-entry errors in the bad
// slots — the batch never fails whole for one bad request.
func TestServerBatchPerEntryAdmission(t *testing.T) {
	_, c := newTestServer(t, service.ServerOptions{Workers: 2})
	reqs := []service.AnalyzeRequest{
		{Module: "ok1.mc", Source: service.CleanCheckSrc, Options: service.AnalyzeOptions{Mode: service.ModeCheck}},
		{Module: "no-source.mc", Options: service.AnalyzeOptions{Mode: service.ModeCheck}},
		{Module: "bad-mode.mc", Source: service.CleanCheckSrc, Options: service.AnalyzeOptions{Mode: "optimize"}},
		{Module: "old-client.mc", Source: service.CleanCheckSrc, APIVersion: "v0",
			Options: service.AnalyzeOptions{Mode: service.ModeCheck}},
		{Module: "ok2.mc", Source: service.CleanCheckSrc, Options: service.AnalyzeOptions{Mode: service.ModeInfer}},
	}
	out, meta, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	wantCodes := []string{"", service.CodeBadRequest, service.CodeBadRequest, service.CodeUnsupportedVersion, ""}
	for i, want := range wantCodes {
		got := out.Results[i]
		switch {
		case want == "":
			if got.Error != nil {
				t.Errorf("entry %d: unexpected error %v", i, got.Error)
			}
			if len(got.Response) == 0 {
				t.Errorf("entry %d: healthy module got no response", i)
			}
		default:
			if got.Error == nil || got.Error.Code != want {
				t.Errorf("entry %d: error = %+v, want code %q", i, got.Error, want)
			}
			if len(got.Response) != 0 {
				t.Errorf("entry %d: rejected module carries a response", i)
			}
		}
	}
	if out.Summary.Rejected != 3 || out.Summary.CacheMisses != 2 {
		t.Errorf("summary = %+v; want rejected=3 misses=2", out.Summary)
	}
	if meta.Cache != "miss,error,error,error,miss" {
		t.Errorf("X-Lna-Cache = %q; want index-aligned dispositions", meta.Cache)
	}
}

// TestServerBackpressure: with one worker and a queue depth of one,
// a second concurrent request is refused with 429 + Retry-After
// instead of queuing unboundedly.
func TestServerBackpressure(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	service.SetTestAnalyzeHook(func(ctx context.Context, module string) {
		if module == "slow.mc" {
			entered <- struct{}{}
			<-block
		}
	})
	defer func() { service.SetTestAnalyzeHook(nil); close(block) }()

	_, c := newTestServer(t, service.ServerOptions{Workers: 1, QueueDepth: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.Analyze(context.Background(), &service.AnalyzeRequest{
			Module: "slow.mc", Source: service.CleanCheckSrc,
			Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the analysis hook")
	}

	// The raw round trip exposes the refusal headers the retrying
	// client would otherwise consume.
	body, _ := json.Marshal(service.AnalyzeRequest{
		Module: "fast.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
	res, err := c.RoundTrip(context.Background(), "/v1/analyze", body)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if res.Status != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429: %s", res.Status, res.Body)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("429 lacks a Retry-After header")
	}
	if werr := res.WireError(); werr.Code != service.CodeQueueFull {
		t.Errorf("429 code = %q, want %q", werr.Code, service.CodeQueueFull)
	}
	block <- struct{}{}
	<-done

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Error("rejected counter not incremented")
	}
}

// TestServerDraining: once draining, new submissions get 503 while
// health reports the state.
func TestServerDraining(t *testing.T) {
	s, c := newTestServer(t, service.ServerOptions{})
	s.SetDraining(true)
	_, _, err := c.Analyze(context.Background(), &service.AnalyzeRequest{
		Module: "m.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
	wantAPIError(t, err, http.StatusServiceUnavailable, service.CodeDraining)
	_, _, err = c.Batch(context.Background(), corpusBatch(1))
	wantAPIError(t, err, http.StatusServiceUnavailable, service.CodeDraining)
	hs, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hs.Status != "draining" {
		t.Errorf("health status = %q, want draining", hs.Status)
	}
}

// TestServerStatsEndpoint: the stats snapshot reflects served traffic.
func TestServerStatsEndpoint(t *testing.T) {
	_, c := newTestServer(t, service.ServerOptions{Workers: 2, CacheEntries: 8})
	req := service.AnalyzeRequest{Module: "m.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}}
	for i := 0; i < 2; i++ {
		if _, _, err := c.AnalyzeRaw(context.Background(), &req); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.Requests != 2 || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("stats = %+v; want workers=2 requests=2 cache hits=1 misses=1", st)
	}
}

// TestListenAndServeGracefulDrain: the daemon binds a free port,
// serves, and drains cleanly when its context is cancelled.
func TestListenAndServeGracefulDrain(t *testing.T) {
	s := service.NewServer(service.ServerOptions{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.ListenAndServe(ctx, "127.0.0.1:0", func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	c := client.New("http://"+addr, client.Options{Retry: client.RetryPolicy{MaxAttempts: 1}})
	resp, _, err := c.Analyze(ctx, &service.AnalyzeRequest{
		Module: "m.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
	if err != nil {
		t.Fatalf("analyze before drain: %v", err)
	}
	if !resp.OK {
		t.Fatalf("analyze before drain not OK: %+v", resp)
	}
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
}
