package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"localalias/internal/drivergen"
)

func newTestServer(t *testing.T, opts ServerOptions) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return buf.Bytes()
}

// TestServerAnalyzeRoundTrip: a cold request misses the cache, an
// identical resubmission hits it, and the hit's body is byte-identical
// to the cold run's — the wire contract the cache depends on.
func TestServerAnalyzeRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, ServerOptions{})
	req := AnalyzeRequest{Module: "clean.mc", Source: cleanCheckSrc,
		Options: AnalyzeOptions{Mode: ModeCheck}}

	cold := postJSON(t, ts.URL+"/v1/analyze", req)
	coldBody := readBody(t, cold)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status = %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-Lna-Cache"); got != "miss" {
		t.Errorf("cold X-Lna-Cache = %q, want miss", got)
	}
	wantKey := CacheKey(&req)
	if got := cold.Header.Get("X-Lna-Cache-Key"); got != wantKey {
		t.Errorf("X-Lna-Cache-Key = %q, want %q", got, wantKey)
	}
	var parsed AnalyzeResponse
	if err := json.Unmarshal(coldBody, &parsed); err != nil {
		t.Fatalf("response is not an AnalyzeResponse: %v\n%s", err, coldBody)
	}
	if parsed.APIVersion != APIVersion || !parsed.OK || parsed.Module != "clean.mc" {
		t.Errorf("parsed response = %+v", parsed)
	}
	// The body must equal what the engine + canonical renderer produce
	// directly — the `lna check -json` equivalence.
	direct, err := Analyze(context.Background(), &req).MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBody, direct) {
		t.Errorf("served bytes differ from MarshalCanonical:\n--- served\n%s\n--- direct\n%s", coldBody, direct)
	}

	warm := postJSON(t, ts.URL+"/v1/analyze", req)
	warmBody := readBody(t, warm)
	if got := warm.Header.Get("X-Lna-Cache"); got != "hit" {
		t.Errorf("warm X-Lna-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Error("cache hit served different bytes than the cold run")
	}
}

// TestServerValidation: malformed submissions are refused before they
// cost a worker slot.
func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t, ServerOptions{})
	cases := []struct {
		name string
		req  AnalyzeRequest
	}{
		{"empty source", AnalyzeRequest{Module: "m.mc", Options: AnalyzeOptions{Mode: ModeCheck}}},
		{"bad mode", AnalyzeRequest{Module: "m.mc", Source: "fun f() {}", Options: AnalyzeOptions{Mode: "optimize"}}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/analyze", tc.req)
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	get, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, get)
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze status = %d, want 405", get.StatusCode)
	}
}

func corpusBatch(n int) BatchRequest {
	var batch BatchRequest
	for _, spec := range drivergen.Corpus()[:n] {
		batch.Requests = append(batch.Requests, AnalyzeRequest{
			Module: spec.Name + ".mc",
			Source: spec.Source(),
		})
	}
	return batch
}

// TestServerBatchCacheHitRate: submitting the same 20-module batch
// twice serves the second pass almost entirely from cache (the CI
// smoke criterion is >= 90%; identical submissions should hit 100%).
func TestServerBatchCacheHitRate(t *testing.T) {
	s, ts := newTestServer(t, ServerOptions{Workers: 4})
	batch := corpusBatch(20)

	var first, second BatchResponse
	// The passes must run in order (a map range would randomize them,
	// making the hit-rate assertions flaky).
	for i, out := range []*BatchResponse{&first, &second} {
		pass := i + 1
		resp := postJSON(t, ts.URL+"/v1/batch", batch)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pass %d status = %d: %s", pass, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
	}
	if first.Summary.Modules != 20 || first.Summary.CacheMisses != 20 || first.Summary.Failures != 0 {
		t.Errorf("first pass summary = %+v; want 20 modules, all misses, no failures", first.Summary)
	}
	if second.Summary.CacheHits < 18 {
		t.Errorf("second pass cache hits = %d/20, want >= 18 (90%%)", second.Summary.CacheHits)
	}
	// A cached entry replays the cold pass's exact bytes.
	for i := range second.Results {
		if !second.Results[i].Cached {
			continue
		}
		if !bytes.Equal(first.Results[i].Response, second.Results[i].Response) {
			t.Errorf("entry %d: cache hit bytes differ from the cold run", i)
		}
	}
	if st := s.CacheStats(); st.Hits < 18 || st.Entries == 0 {
		t.Errorf("server cache stats = %+v", st)
	}
}

// TestServerLargeBatch: the server sustains a 200-module submission —
// every entry answered, none degraded, all distinct cache keys.
func TestServerLargeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("200-module batch in -short mode")
	}
	_, ts := newTestServer(t, ServerOptions{})
	resp := postJSON(t, ts.URL+"/v1/batch", corpusBatch(200))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Summary.Modules != 200 || len(out.Results) != 200 {
		t.Fatalf("summary = %+v, %d results; want 200", out.Summary, len(out.Results))
	}
	if out.Summary.Failures != 0 {
		t.Errorf("%d modules degraded in a healthy batch", out.Summary.Failures)
	}
	keys := make(map[string]bool, 200)
	for i, entry := range out.Results {
		if len(entry.Response) == 0 {
			t.Fatalf("entry %d has no response", i)
		}
		keys[entry.CacheKey] = true
	}
	if len(keys) != 200 {
		t.Errorf("%d distinct cache keys for 200 distinct modules", len(keys))
	}
}

// TestServerBatchPanicIsolation: one module panicking degrades only
// its own entry — the batch still answers 200 with a failure record in
// that slot, and the panicking module is never cached.
func TestServerBatchPanicIsolation(t *testing.T) {
	testAnalyzeHook = func(ctx context.Context, module string) {
		if module == "bomb.mc" {
			panic("injected server fault")
		}
	}
	defer func() { testAnalyzeHook = nil }()

	s, ts := newTestServer(t, ServerOptions{Workers: 2})
	batch := corpusBatch(2)
	batch.Requests = append(batch.Requests, AnalyzeRequest{
		Module: "bomb.mc", Source: cleanCheckSrc,
		Options: AnalyzeOptions{Mode: ModeCheck},
	})
	resp := postJSON(t, ts.URL+"/v1/batch", batch)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with a panicking module: status = %d: %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Summary.Failures != 1 {
		t.Errorf("summary failures = %d, want 1", out.Summary.Failures)
	}
	for i, entry := range out.Results {
		var r AnalyzeResponse
		if err := json.Unmarshal(entry.Response, &r); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if r.Module == "bomb.mc" {
			if r.Failure == nil || !strings.Contains(r.Failure.Message, "injected server fault") {
				t.Errorf("panicking module lacks its failure record: %+v", r.Failure)
			}
		} else if r.Failure != nil {
			t.Errorf("healthy module %s degraded by its neighbour: %v", r.Module, r.Failure)
		}
	}
	if s.failures.Load() != 1 {
		t.Errorf("failure counter = %d, want 1", s.failures.Load())
	}
	// Failed responses are never cached: resubmitting the module (with
	// the hook gone) re-runs it and succeeds.
	testAnalyzeHook = nil
	again := postJSON(t, ts.URL+"/v1/analyze", batch.Requests[2])
	againBody := readBody(t, again)
	if got := again.Header.Get("X-Lna-Cache"); got != "miss" {
		t.Errorf("resubmitted failed module X-Lna-Cache = %q, want miss", got)
	}
	var r AnalyzeResponse
	if err := json.Unmarshal(againBody, &r); err != nil {
		t.Fatal(err)
	}
	if r.Failure != nil || !r.OK {
		t.Errorf("resubmission after the fault cleared = %+v", r)
	}
}

// TestServerBatchLimits: empty and oversized batches are rejected.
func TestServerBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, ServerOptions{})
	for _, tc := range []struct {
		name string
		n    int
	}{{"empty", 0}, {"oversized", MaxBatch + 1}} {
		batch := BatchRequest{Requests: make([]AnalyzeRequest, tc.n)}
		for i := range batch.Requests {
			batch.Requests[i] = AnalyzeRequest{Module: fmt.Sprintf("m%d.mc", i), Source: "fun f() {}"}
		}
		resp := postJSON(t, ts.URL+"/v1/batch", batch)
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s batch: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestServerBackpressure: with one worker and a queue depth of one,
// a second concurrent request is refused with 429 + Retry-After
// instead of queuing unboundedly.
func TestServerBackpressure(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	testAnalyzeHook = func(ctx context.Context, module string) {
		if module == "slow.mc" {
			entered <- struct{}{}
			<-block
		}
	}
	defer func() { testAnalyzeHook = nil; close(block) }()

	s, ts := newTestServer(t, ServerOptions{Workers: 1, QueueDepth: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
			Module: "slow.mc", Source: cleanCheckSrc,
			Options: AnalyzeOptions{Mode: ModeCheck}})
		readBody(t, resp)
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the analysis hook")
	}

	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Module: "fast.mc", Source: cleanCheckSrc,
		Options: AnalyzeOptions{Mode: ModeCheck}})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 lacks a Retry-After header")
	}
	if s.rejected.Load() == 0 {
		t.Error("rejected counter not incremented")
	}
	block <- struct{}{}
	<-done
}

// TestServerDraining: once draining, new submissions get 503 while
// health reports the state.
func TestServerDraining(t *testing.T) {
	s, ts := newTestServer(t, ServerOptions{})
	s.draining.Store(true)
	resp := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{
		Module: "m.mc", Source: cleanCheckSrc, Options: AnalyzeOptions{Mode: ModeCheck}})
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("analyze while draining: status = %d, want 503", resp.StatusCode)
	}
	batch := postJSON(t, ts.URL+"/v1/batch", corpusBatch(1))
	readBody(t, batch)
	if batch.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch while draining: status = %d, want 503", batch.StatusCode)
	}
	health, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readBody(t, health)), "draining") {
		t.Error("health does not report the draining state")
	}
}

// TestServerStatsEndpoint: the stats snapshot reflects served traffic.
func TestServerStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, ServerOptions{Workers: 2, CacheEntries: 8})
	req := AnalyzeRequest{Module: "m.mc", Source: cleanCheckSrc,
		Options: AnalyzeOptions{Mode: ModeCheck}}
	for i := 0; i < 2; i++ {
		readBody(t, postJSON(t, ts.URL+"/v1/analyze", req))
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ServerStats
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.Requests != 2 || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("stats = %+v; want workers=2 requests=2 cache hits=1 misses=1", st)
	}
}

// TestListenAndServeGracefulDrain: the daemon binds a free port,
// serves, and drains cleanly when its context is cancelled.
func TestListenAndServeGracefulDrain(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.ListenAndServe(ctx, "127.0.0.1:0", func(addr string) { addrCh <- addr })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	resp := postJSON(t, "http://"+addr+"/v1/analyze", AnalyzeRequest{
		Module: "m.mc", Source: cleanCheckSrc, Options: AnalyzeOptions{Mode: ModeCheck}})
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze before drain: status = %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
}
