// Package service is the stable public contract of the local
// non-aliasing toolkit: one request/response shape shared by the lna
// command line, the batch experiment driver, and the long-running
// `lna serve` daemon.
//
// The contract has three layers:
//
//   - AnalyzeRequest / AnalyzeResponse: the canonical wire types. A
//     request names a module, carries its source text, and selects an
//     analysis mode (check / infer / confine / qual); the response
//     carries positioned diagnostics, per-mode reports, solver work
//     counters, and — when the module's analysis panicked or timed
//     out — a structured failure record instead of a dropped
//     connection. The same struct is emitted by `lna check -json`
//     and returned by the daemon's /v1/analyze endpoint, byte for
//     byte.
//   - Analyze / AnalyzeBounded: the engine. Every front end funnels
//     through it, so fault containment (package faults), deadline
//     handling, and diagnostics shaping are implemented exactly once.
//   - Server: the resident HTTP daemon, adding a worker pool, an LRU
//     result cache keyed by the SHA-256 of module source + options,
//     request batching, bounded-queue backpressure, and graceful
//     drain.
//
// The JSON rendering of an AnalyzeResponse is deterministic for a
// healthy module: field order is fixed, no maps are serialized, and
// wall-clock timings are deliberately kept out of the wire shape (they
// travel in the process-local Elapsed/PhaseTimings fields instead).
// This is what makes content-hash caching sound: a cache hit replays
// the cold run's bytes exactly.
package service

import (
	"context"
	"encoding/json"
	"time"

	"localalias/internal/faults"
	"localalias/internal/obs"
	"localalias/internal/solve"
	"localalias/internal/source"
)

// APIVersion names the wire contract. It participates in the cache
// key, so bumping it invalidates every cached result.
const APIVersion = "v1"

// The analysis modes, mirroring the lna subcommands.
const (
	// ModeCheck verifies explicit restrict/confine annotations
	// (Sections 4 and 6.1).
	ModeCheck = "check"
	// ModeInfer runs restrict inference (Section 5) and returns the
	// annotated program.
	ModeInfer = "infer"
	// ModeConfine runs confine inference (Sections 6–7) and returns
	// the transformed program plus the three-mode locking report.
	ModeConfine = "confine"
	// ModeQual runs the three-mode locking experiment (Section 7).
	ModeQual = "qual"
)

// ValidMode reports whether m names an analysis mode ("" selects
// ModeQual).
func ValidMode(m string) bool {
	switch m {
	case "", ModeCheck, ModeInfer, ModeConfine, ModeQual:
		return true
	}
	return false
}

// AnalyzeOptions selects the analysis mode and its knobs. The zero
// value means "qual with the paper's defaults".
type AnalyzeOptions struct {
	// Mode is one of check|infer|confine|qual ("" = qual).
	Mode string `json:"mode"`
	// General selects the exhaustive confine scope search instead of
	// the paper's syntactic heuristic (confine/qual modes).
	General bool `json:"general,omitempty"`
	// Params also infers restrict on ref-typed parameters (infer mode).
	Params bool `json:"params,omitempty"`
	// Liberal checks with the liberal §5 restrict-effect semantics
	// (check mode).
	Liberal bool `json:"liberal,omitempty"`
	// MultiModule links Libraries and the request module into a
	// whole program over the import DAG and applies cross-module
	// package summaries at imported call sites (confine/qual modes
	// only). Off, imported calls in the module fail to resolve.
	MultiModule bool `json:"multi_module,omitempty"`
	// Libraries are the other modules of a multi-module program,
	// analyzed bottom-up before the request module. They are analysis
	// input like Source, so they live in the options and participate
	// in the cache key canonically.
	Libraries []LibrarySource `json:"libraries,omitempty"`
}

// LibrarySource is one library module of a multi-module request. Name
// is the package name importers use in `import "name";`.
type LibrarySource struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// AnalyzeRequest is one module submitted for analysis.
type AnalyzeRequest struct {
	// APIVersion names the wire contract the client speaks ("" means
	// the current version, APIVersion). Servers reject any other value
	// with a structured unsupported_api_version error instead of
	// silently analyzing under assumptions the client did not make.
	APIVersion string `json:"api_version,omitempty"`
	// Module is the display name used in diagnostics ("" defaults to
	// "module.mc").
	Module string `json:"module"`
	// Source is the module's full source text.
	Source string `json:"source"`
	// Options selects the analysis.
	Options AnalyzeOptions `json:"options"`

	// Generate, when non-nil, synthesizes the module source inside the
	// fault guard (attributed to the generate phase) instead of using
	// Source — the seam corpus drivers use so a generator panic is
	// contained like any other module fault. Never serialized, and
	// requests carrying it are not cacheable by content hash.
	Generate func(ctx context.Context) string `json:"-"`

	// Obs, when non-nil, collects the request's spans (one per
	// pipeline phase plus an enclosing request span) under a unique
	// trace ID. Never serialized and deliberately outside the cache
	// key: tracing a request does not change its canonical bytes.
	// nil — the default — disables tracing at zero cost.
	Obs *obs.Trace `json:"-"`

	// SolverWorkers bounds the partitioned constraint solver's
	// concurrency for this request; <= 1 solves sequentially. It is an
	// execution knob, not an analysis option: results are identical at
	// any worker count (the partitioned solver is deterministic), so
	// it stays off the wire and out of the cache key — a response
	// computed at one setting is a valid cache hit for any other. The
	// daemon injects its -solver-workers setting here.
	SolverWorkers int `json:"-"`

	// Memo, when non-nil, lets every solve of this request reuse (and
	// record) content-addressed component summaries — the incremental
	// engine's substrate. Like SolverWorkers it is an execution knob
	// outside the cache key: replaying a summary is byte-identical to
	// solving fresh, so a response computed with any memo state is a
	// valid hit for any other. The daemon injects its process-wide
	// memo here.
	Memo *solve.Memo `json:"-"`

	// MemoCounters, when non-nil, receives this request's component
	// reuse accounting (replayed vs freshly solved) — an output the
	// incremental engine turns into the X-Lna-Incremental disposition,
	// never an analysis input.
	MemoCounters *solve.MemoCounters `json:"-"`
}

// Diagnostic is one positioned message in wire form.
type Diagnostic struct {
	// Pos is the resolved "file:line:col" location ("" when the
	// diagnostic has no position).
	Pos string `json:"pos"`
	// Severity is "note", "warning", or "error".
	Severity string `json:"severity"`
	// Phase names the producing analysis, e.g. "parse", "types",
	// "restrict", "qual".
	Phase   string `json:"phase,omitempty"`
	Message string `json:"message"`
}

// Diagnostics is the unified result shape every analysis produces:
// positioned diagnostics, the count of internal-error diagnostics
// (pipeline inconsistencies contained as per-module diagnostics, see
// PRs 1–2), and the constraint-solver work counters.
type Diagnostics struct {
	Diags []Diagnostic `json:"diags"`
	// InternalErrors counts the diagnostics reporting contained
	// pipeline inconsistencies (unification mismatches, malformed
	// effect constraints) rather than user-facing findings.
	InternalErrors int `json:"internal_errors"`
	// Stats aggregates the solver work counters over every solve the
	// request performed. They are deterministic per module, so they
	// cache and replay byte-identically.
	Stats solve.Stats `json:"solver_stats"`
}

// NewDiagnostics converts accumulated pipeline diagnostics plus solver
// stats into the wire shape. A nil ds yields an empty (but non-null)
// diagnostic list.
func NewDiagnostics(ds *source.Diagnostics, stats solve.Stats) Diagnostics {
	out := Diagnostics{Diags: []Diagnostic{}, Stats: stats}
	if ds == nil {
		return out
	}
	for _, d := range ds.List {
		pos := ""
		if d.File != nil && d.Span.IsValid() {
			pos = d.File.Position(d.Span.Start).String()
		}
		out.Diags = append(out.Diags, Diagnostic{
			Pos:      pos,
			Severity: d.Severity.String(),
			Phase:    d.Phase,
			Message:  d.Message,
		})
		if d.Severity == source.Error && isInternal(d.Message) {
			out.InternalErrors++
		}
	}
	return out
}

// isInternal reports whether a diagnostic message records a contained
// pipeline inconsistency rather than a user-facing finding.
func isInternal(msg string) bool {
	const p = "internal error"
	return len(msg) >= len(p) && msg[:len(p)] == p
}

// ErrorCount returns the number of error-severity diagnostics.
func (d *Diagnostics) ErrorCount() int {
	n := 0
	for _, x := range d.Diags {
		if x.Severity == "error" {
			n++
		}
	}
	return n
}

// ModeReport is the per-mode outcome of the locking analysis.
type ModeReport struct {
	NumErrors int          `json:"num_errors"`
	Errors    []Diagnostic `json:"errors"`
}

// LockingReport is the three-mode Section 7 report for one module.
type LockingReport struct {
	// Sites is the number of syntactic lock-op sites.
	Sites int `json:"sites"`
	// Planted/Kept count confine? candidates inserted and retained.
	Planted int `json:"planted"`
	Kept    int `json:"kept"`
	// Potential is noConfine − allStrong; Eliminated is noConfine −
	// withConfine (the paper's headline numbers).
	Potential  int `json:"potential"`
	Eliminated int `json:"eliminated"`

	NoConfine   ModeReport `json:"no_confine"`
	WithConfine ModeReport `json:"confine_inference"`
	AllStrong   ModeReport `json:"all_strong"`
}

// CheckReport is the outcome of annotation checking.
type CheckReport struct {
	OK bool `json:"ok"`
	// UsedFigure5 reports whether the O(kn) marked-search fast path
	// was exercised.
	UsedFigure5 bool `json:"used_figure5"`
}

// InferReport is the outcome of restrict inference.
type InferReport struct {
	Candidates int `json:"candidates"`
	Restricted int `json:"restricted"`
	// Marked lists the promoted candidates as "kind name".
	Marked []string `json:"marked,omitempty"`
	// Rejected lists the first rejection reason per kept-as-let
	// candidate.
	Rejected []string `json:"rejected,omitempty"`
}

// AnalyzeResponse is the canonical result of analyzing one module.
// `lna check -json` and the daemon's /v1/analyze endpoint emit exactly
// this shape.
type AnalyzeResponse struct {
	APIVersion string `json:"api_version"`
	Module     string `json:"module"`
	Mode       string `json:"mode"`
	// OK is true when the analysis completed without findings and
	// without a contained failure.
	OK bool `json:"ok"`
	// Findings counts user-facing errors: error-severity diagnostics
	// plus, in confine/qual modes, the remaining type errors under
	// confine inference.
	Findings int `json:"findings"`

	Diagnostics Diagnostics `json:"diagnostics"`

	// Exactly one of the mode reports is set on success (Locking for
	// both confine and qual).
	Check   *CheckReport   `json:"check,omitempty"`
	Infer   *InferReport   `json:"infer,omitempty"`
	Locking *LockingReport `json:"locking,omitempty"`

	// Program is the annotated (infer) or transformed (confine)
	// program rendered in canonical form.
	Program string `json:"program,omitempty"`

	// Failure is the structured record when the module's analysis
	// panicked, timed out, or failed inside the containment guard —
	// the request degrades to a report, never to a crash.
	Failure *faults.ModuleFailure `json:"failure,omitempty"`

	// Process-local run information — deliberately NOT part of the
	// wire contract, so response bytes stay deterministic and
	// cacheable.
	Elapsed time.Duration `json:"-"`
	// Xmodule summarizes a multi-module request's whole-program pass
	// ("modules=N;analyzed=A;failed=F"); the daemon surfaces it as
	// the X-Lna-Xmodule response header. Empty for single-module
	// requests. Process-local: header metadata, not wire body.
	Xmodule      string               `json:"-"`
	PhaseTimings []faults.PhaseTiming `json:"-"`
	// Raw is the in-process diagnostics accumulator, kept so command
	// line front ends can render source excerpts the wire shape does
	// not carry. Nil after a timeout (the abandoned goroutine may
	// still own it).
	Raw *source.Diagnostics `json:"-"`
}

// MarshalCanonical renders the response in the canonical wire form:
// two-space indented JSON with a trailing newline. Every producer of
// the contract (CLI -json, daemon, cache) uses this one renderer, so
// equal responses are equal bytes.
func (r *AnalyzeResponse) MarshalCanonical() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
