package service

import (
	"context"
	"strings"
	"testing"

	"localalias/internal/drivergen"
)

func xstackRequest(mode string) *AnalyzeRequest {
	mods := drivergen.XStack(2)
	leaf := mods[len(mods)-1]
	var libs []LibrarySource
	for _, m := range mods[:len(mods)-1] {
		libs = append(libs, LibrarySource{Name: m.Name, Source: m.Source})
	}
	// The remaining leaves are independent of each other, so shipping
	// the others as libraries is harmless; use the first leaf's stack.
	return &AnalyzeRequest{
		Module: leaf.Name,
		Source: leaf.Source,
		Options: AnalyzeOptions{
			Mode:        mode,
			MultiModule: true,
			Libraries:   libs,
		},
	}
}

// TestMultiModuleRequest runs a whole-program qual request through
// the engine and checks the summary pass shows in the report: the
// leaf's expected summary triple, not the havoc one.
func TestMultiModuleRequest(t *testing.T) {
	mods := drivergen.XStack(2)
	leaf := mods[len(mods)-1]
	resp := Analyze(context.Background(), xstackRequest(ModeQual))
	if resp.Failure != nil {
		t.Fatalf("failure: %+v", resp.Failure)
	}
	if resp.Locking == nil {
		t.Fatal("no locking report")
	}
	got := drivergen.Triple{
		NoConfine: resp.Locking.NoConfine.NumErrors,
		Confine:   resp.Locking.WithConfine.NumErrors,
		AllStrong: resp.Locking.AllStrong.NumErrors,
	}
	if got != leaf.ExpSummary {
		t.Errorf("triple = %+v, want summary %+v", got, leaf.ExpSummary)
	}
	if !strings.HasPrefix(resp.Xmodule, "modules=5;analyzed=5;failed=0") {
		t.Errorf("Xmodule = %q", resp.Xmodule)
	}
}

// TestMultiModuleLibraryFailure checks a broken library surfaces as
// positioned diagnostics on the response, in the library's own file.
func TestMultiModuleLibraryFailure(t *testing.T) {
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module: "app",
		Source: "import \"libx\";\nfun f(): int { return libx.val(); }\n",
		Options: AnalyzeOptions{
			Mode:        ModeQual,
			MultiModule: true,
			Libraries: []LibrarySource{
				{Name: "libx", Source: "fun val(): int { return }\n"}, // syntax error
			},
		},
	})
	if resp.Failure != nil {
		t.Fatalf("want findings, got failure: %+v", resp.Failure)
	}
	if resp.OK {
		t.Fatal("want findings")
	}
	found := false
	for _, d := range resp.Diagnostics.Diags {
		if strings.HasPrefix(d.Pos, "libx:") && d.Severity == "error" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no diagnostic positioned in libx: %+v", resp.Diagnostics.Diags)
	}
	if !strings.Contains(resp.Xmodule, "failed=1") {
		t.Errorf("Xmodule = %q", resp.Xmodule)
	}
}

// TestMultiModuleMissingImport checks the module's own missing-import
// diagnostic comes back positioned (findings, not a degraded run).
func TestMultiModuleMissingImport(t *testing.T) {
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module:  "app",
		Source:  "import \"ghost\";\nfun f() { work(); }\n",
		Options: AnalyzeOptions{Mode: ModeQual, MultiModule: true},
	})
	if resp.Failure != nil {
		t.Fatalf("want findings, got failure: %+v", resp.Failure)
	}
	if resp.OK || resp.Findings == 0 {
		t.Fatal("want findings for missing import")
	}
	found := false
	for _, d := range resp.Diagnostics.Diags {
		if strings.HasPrefix(d.Pos, "app:1:") && strings.Contains(d.Message, "cannot resolve import \"ghost\"") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing positioned import diagnostic: %+v", resp.Diagnostics.Diags)
	}
}

// TestMultiModuleWrongMode checks multi_module is rejected outside
// confine/qual with a structured failure.
func TestMultiModuleWrongMode(t *testing.T) {
	resp := Analyze(context.Background(), &AnalyzeRequest{
		Module:  "m",
		Source:  "fun f() { work(); }\n",
		Options: AnalyzeOptions{Mode: ModeCheck, MultiModule: true},
	})
	if resp.Failure == nil || !strings.Contains(resp.Failure.Message, "multi_module") {
		t.Fatalf("want multi_module mode failure, got %+v", resp.Failure)
	}
}

// TestMultiModuleCacheKeyDistinct checks the new option fields
// perturb the cache key: toggling multi_module, renaming a library,
// and editing library source must all produce distinct keys.
func TestMultiModuleCacheKeyDistinct(t *testing.T) {
	base := xstackRequest(ModeQual)
	keys := map[string]string{"base": CacheKey(base)}

	single := *base
	single.Options.MultiModule = false
	keys["no-multi"] = CacheKey(&single)

	renamed := *base
	renamed.Options.Libraries = append([]LibrarySource{}, base.Options.Libraries...)
	renamed.Options.Libraries[0].Name += "2"
	keys["renamed"] = CacheKey(&renamed)

	edited := *base
	edited.Options.Libraries = append([]LibrarySource{}, base.Options.Libraries...)
	edited.Options.Libraries[0].Source += "// rev\n"
	keys["edited"] = CacheKey(&edited)

	seen := map[string]string{}
	for label, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("cache key collision between %s and %s", prev, label)
		}
		seen[k] = label
	}
}
