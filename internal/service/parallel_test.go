package service_test

// End-to-end determinism tests for the component-partitioned parallel
// solver (docs/ALGORITHMS.md "Component-partitioned solving"): the
// SolverWorkers knob must never change a single byte of the canonical
// wire contract, whether a module is analyzed directly, through the
// daemon's batch endpoint, or next to a panicking neighbour. The CI
// -race step runs these with the race detector on, so the solver's
// sharing discipline is checked on the same corpus traffic the daemon
// serves.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"localalias/internal/drivergen"
	"localalias/internal/service"
)

// TestParallelCorpusByteIdentity: every corpus module analyzed with the
// partitioned solver at 4 workers produces byte-identical canonical
// JSON to the sequential solver — the property that lets the daemon
// keep SolverWorkers out of the cache key. Full 589-module corpus;
// -short covers a 60-module prefix.
func TestParallelCorpusByteIdentity(t *testing.T) {
	specs := drivergen.Corpus()
	if testing.Short() {
		specs = specs[:60]
	}
	mismatches := 0
	for _, spec := range specs {
		src := spec.Source()
		seq, err := service.Analyze(context.Background(), &service.AnalyzeRequest{
			Module: spec.Name + ".mc", Source: src, SolverWorkers: 1,
		}).MarshalCanonical()
		if err != nil {
			t.Fatalf("%s sequential: %v", spec.Name, err)
		}
		par, err := service.Analyze(context.Background(), &service.AnalyzeRequest{
			Module: spec.Name + ".mc", Source: src, SolverWorkers: 4,
		}).MarshalCanonical()
		if err != nil {
			t.Fatalf("%s parallel: %v", spec.Name, err)
		}
		if !bytes.Equal(seq, par) {
			t.Errorf("%s: parallel solve changed the canonical response\n--- sequential\n%s\n--- parallel\n%s",
				spec.Name, seq, par)
			if mismatches++; mismatches >= 3 {
				t.Fatal("stopping after 3 mismatching modules")
			}
		}
	}
}

// TestServerBatchParallelSolver: a 200-module corpus batch served by a
// daemon running the partitioned solver completes with zero failures
// and answers byte-identically to a sequential daemon, entry by entry.
// This is the CI -race exercise for the parallel solver under real
// /v1/batch traffic.
func TestServerBatchParallelSolver(t *testing.T) {
	if testing.Short() {
		t.Skip("200-module batch in -short mode")
	}
	_, seqC := newTestServer(t, service.ServerOptions{Workers: 2})
	_, parC := newTestServer(t, service.ServerOptions{Workers: 2, SolverWorkers: 4})
	reqs := corpusBatch(200)

	seq, _, err := seqC.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("sequential daemon: %v", err)
	}
	par, _, err := parC.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("parallel daemon: %v", err)
	}
	if par.Summary.Modules != 200 || par.Summary.Failures != 0 {
		t.Fatalf("parallel batch summary = %+v; want 200 healthy modules", par.Summary)
	}
	for i := range par.Results {
		if !bytes.Equal(seq.Results[i].Response, par.Results[i].Response) {
			t.Errorf("entry %d (%s): parallel daemon served different bytes",
				i, reqs[i].Module)
		}
		if seq.Results[i].CacheKey != par.Results[i].CacheKey {
			t.Errorf("entry %d: cache key depends on SolverWorkers", i)
		}
	}
}

// TestServerBatchPanicIsolationParallel: with the partitioned solver
// active daemon-wide, one module panicking mid-analysis degrades only
// its own batch entry; its neighbours — solved in parallel components
// on the same process — still answer healthily.
func TestServerBatchPanicIsolationParallel(t *testing.T) {
	service.SetTestAnalyzeHook(func(ctx context.Context, module string) {
		if module == "bomb.mc" {
			panic("injected parallel fault")
		}
	})
	defer service.SetTestAnalyzeHook(nil)

	_, c := newTestServer(t, service.ServerOptions{Workers: 2, SolverWorkers: 4})
	reqs := corpusBatch(8)
	reqs = append(reqs[:4], append([]service.AnalyzeRequest{{
		Module: "bomb.mc", Source: service.CleanCheckSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck},
	}}, reqs[4:]...)...)

	out, _, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if out.Summary.Failures != 1 {
		t.Errorf("summary failures = %d, want exactly the injected one", out.Summary.Failures)
	}
	for i, entry := range out.Results {
		var r service.AnalyzeResponse
		if err := json.Unmarshal(entry.Response, &r); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		switch r.Module {
		case "bomb.mc":
			if r.Failure == nil || !strings.Contains(r.Failure.Message, "injected parallel fault") {
				t.Errorf("panicking module lacks its failure record: %+v", r.Failure)
			}
		default:
			if r.Failure != nil {
				t.Errorf("healthy module %s degraded by its neighbour: %v", r.Module, r.Failure)
			}
		}
	}
}
