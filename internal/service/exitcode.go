package service

// The shared exit-code policy. Both binaries (cmd/lna and
// cmd/experiments) map their outcomes through this one table, so "what
// does exit 3 mean" has a single answer everywhere:
//
//	0  clean: the analysis ran and reported no findings
//	1  findings: the analysis ran and reported errors (annotation
//	   violations, locking type errors, corpus mismatches)
//	2  usage: bad flags, unknown subcommand, or an I/O error before
//	   any analysis ran
//	3  degraded: the analysis itself failed — a contained panic,
//	   a deadline expiry, or an internal inconsistency — so any
//	   reported numbers cover only what survived
const (
	ExitClean    = 0
	ExitFindings = 1
	ExitUsage    = 2
	ExitDegraded = 3
)

// ExitCode maps a response to the shared policy: a contained failure
// is degraded, findings are findings, anything else is clean.
func (r *AnalyzeResponse) ExitCode() int {
	switch {
	case r.Failure != nil:
		return ExitDegraded
	case r.Findings > 0:
		return ExitFindings
	default:
		return ExitClean
	}
}
