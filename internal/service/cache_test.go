package service

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

const cleanCheckSrc = `fun f(x: ref int): int {
    restrict y = x {
        return *y;
    }
    return 0;
}
`

// TestCacheKeySensitivity: every input of the content hash — module
// name, source bytes, mode, and each option flag — must change the
// key, and identical requests must share one.
func TestCacheKeySensitivity(t *testing.T) {
	base := AnalyzeRequest{Module: "m.mc", Source: "fun f() {}\n",
		Options: AnalyzeOptions{Mode: ModeCheck}}
	if got, want := CacheKey(&base), CacheKey(&base); got != want {
		t.Fatalf("identical requests hash differently: %s vs %s", got, want)
	}
	variants := map[string]AnalyzeRequest{
		"module":  {Module: "other.mc", Source: base.Source, Options: base.Options},
		"source":  {Module: base.Module, Source: base.Source + " ", Options: base.Options},
		"mode":    {Module: base.Module, Source: base.Source, Options: AnalyzeOptions{Mode: ModeInfer}},
		"general": {Module: base.Module, Source: base.Source, Options: AnalyzeOptions{Mode: ModeCheck, General: true}},
		"params":  {Module: base.Module, Source: base.Source, Options: AnalyzeOptions{Mode: ModeCheck, Params: true}},
		"liberal": {Module: base.Module, Source: base.Source, Options: AnalyzeOptions{Mode: ModeCheck, Liberal: true}},
	}
	baseKey := CacheKey(&base)
	seen := map[string]string{"base": baseKey}
	for name, v := range variants {
		k := CacheKey(&v)
		if k == baseKey {
			t.Errorf("changing %s did not change the cache key", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variants %s and %s collide on key %s", name, prev, k)
		}
		seen[k] = name
	}
	// "" selects qual, so it must share qual's key.
	dflt := AnalyzeRequest{Module: "m.mc", Source: base.Source}
	qual := AnalyzeRequest{Module: "m.mc", Source: base.Source,
		Options: AnalyzeOptions{Mode: ModeQual}}
	if CacheKey(&dflt) != CacheKey(&qual) {
		t.Error(`mode "" and mode "qual" should share a cache key`)
	}
	// "" selects the current API version, so it must share v1's key.
	versioned := base
	versioned.APIVersion = APIVersion
	if CacheKey(&base) != CacheKey(&versioned) {
		t.Error(`api_version "" and the current version should share a cache key`)
	}
}

// TestCacheHitMissAccounting: gets and puts keep exact counters.
func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get on an empty cache reported a hit")
	}
	c.Put("a", []byte("1"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v; want 1, true", v, ok)
	}
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 || st.Entries != 1 || st.Capacity != 4 {
		t.Errorf("stats = %+v; want hits=1 misses=2 evictions=0 entries=1 capacity=4", st)
	}
}

// TestCacheEviction: a capacity-2 cache drops the least recently used
// entry, and recency is refreshed by both Get and re-Put.
func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a")              // a is now most recently used
	c.Put("c", []byte("3")) // must evict b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order ignores Get recency")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted despite being most recently used")
	}
	c.Put("a", []byte("1*")) // refresh, no eviction
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v; want evictions=1 entries=2", st)
	}
	if v, _ := c.Get("a"); string(v) != "1*" {
		t.Errorf("re-Put did not refresh the value: got %q", v)
	}
}

// TestCacheMinimumCapacity: capacity below 1 is clamped, not rejected.
func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if st := c.Stats(); st.Entries != 1 || st.Capacity != 1 {
		t.Errorf("stats = %+v; want entries=1 capacity=1", st)
	}
}

// TestResponseDeterminism: two cold runs of the same request render
// byte-identical canonical JSON — the property that makes serving a
// cache hit indistinguishable from re-running the analysis.
func TestResponseDeterminism(t *testing.T) {
	for _, mode := range []string{ModeCheck, ModeInfer, ModeConfine, ModeQual} {
		req := &AnalyzeRequest{Module: "det.mc", Source: cleanCheckSrc,
			Options: AnalyzeOptions{Mode: mode}}
		first, err := Analyze(context.Background(), req).MarshalCanonical()
		if err != nil {
			t.Fatalf("%s: marshal: %v", mode, err)
		}
		second, err := Analyze(context.Background(), req).MarshalCanonical()
		if err != nil {
			t.Fatalf("%s: marshal: %v", mode, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: two cold runs render different bytes:\n--- first\n%s\n--- second\n%s",
				mode, first, second)
		}
		if first[len(first)-1] != '\n' {
			t.Errorf("%s: canonical form lacks the trailing newline", mode)
		}
	}
}

// TestCacheGetReturnsDefensiveCopy is the regression test for the
// shared-slice bug: a caller mutating a hit's bytes must not corrupt
// the cached canonical response for later hits.
func TestCacheGetReturnsDefensiveCopy(t *testing.T) {
	c := NewCache(4)
	orig := []byte(`{"ok":true}`)
	c.Put("k", orig)

	first, ok := c.Get("k")
	if !ok {
		t.Fatal("put entry missing")
	}
	for i := range first {
		first[i] = 'X' // a hostile (or merely careless) caller
	}

	second, ok := c.Get("k")
	if !ok {
		t.Fatal("entry vanished after a mutated hit")
	}
	if !bytes.Equal(second, []byte(`{"ok":true}`)) {
		t.Fatalf("cached bytes corrupted by mutating a previous hit: %q", second)
	}

	// The value handed to Put must be isolated too.
	orig[0] = 'Y'
	third, _ := c.Get("k")
	if !bytes.Equal(third, []byte(`{"ok":true}`)) {
		t.Fatalf("cached bytes corrupted by mutating the Put argument: %q", third)
	}
}

// TestCacheKeyCoversAllOptionFields is the reflect guard for the
// hand-packed-flags bug: every field of AnalyzeOptions must perturb
// the cache key, including fields added after this test was written.
// A new field that the canonical encoding cannot cover (unexported,
// or tagged json:"-") fails loudly instead of silently aliasing
// cache entries across option values.
func TestCacheKeyCoversAllOptionFields(t *testing.T) {
	rt := reflect.TypeOf(AnalyzeOptions{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if f.PkgPath != "" {
			t.Errorf("AnalyzeOptions.%s is unexported: the canonical encoding cannot cover it, so it must not exist on the options struct", f.Name)
			continue
		}
		if tag := f.Tag.Get("json"); tag == "-" {
			t.Errorf("AnalyzeOptions.%s is tagged json:\"-\": it is invisible to the cache key, so identical keys would span different option values — move it to AnalyzeRequest if it is an execution knob", f.Name)
			continue
		}
		req := AnalyzeRequest{Module: "m.mc", Source: "fun f() {}\n",
			Options: AnalyzeOptions{Mode: ModeCheck}}
		before := CacheKey(&req)
		fv := reflect.ValueOf(&req.Options).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		case reflect.String:
			fv.SetString(fv.String() + "-x")
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(fv.Int() + 7)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(fv.Uint() + 7)
		case reflect.Float32, reflect.Float64:
			fv.SetFloat(fv.Float() + 7)
		case reflect.Slice:
			// Appending a fresh element must perturb the key; the
			// element's own fields are covered by the canonical JSON
			// encoding of the whole slice.
			fv.Set(reflect.Append(fv, reflect.Zero(f.Type.Elem())))
		default:
			t.Fatalf("AnalyzeOptions.%s has kind %s this guard cannot perturb — extend the switch", f.Name, f.Type.Kind())
		}
		if CacheKey(&req) == before {
			t.Errorf("AnalyzeOptions.%s does not affect the cache key", f.Name)
		}
	}
}

// TestCacheKeyRequestFieldContract is the other half of the guard:
// every field of AnalyzeRequest must either perturb the key (wire
// fields) or be a json:"-" execution knob listed here with the reason
// results stay byte-identical across its values. A new field in
// neither category fails, forcing the author to decide.
func TestCacheKeyRequestFieldContract(t *testing.T) {
	// Execution knobs deliberately outside the cache key. Each entry
	// asserts: response bytes are identical at every value of the
	// field, so a response computed at one setting is a valid hit for
	// any other.
	exempt := map[string]string{
		"Generate":      "source synthesis seam; requests carrying it are never cached",
		"Obs":           "tracing does not change canonical bytes",
		"SolverWorkers": "partitioned solver is deterministic at any worker count",
		"Memo":          "component-summary replay is byte-identical to a fresh solve",
		"MemoCounters":  "request-scoped accounting output, not an analysis input",
	}
	rt := reflect.TypeOf(AnalyzeRequest{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		tagged := f.Tag.Get("json") == "-"
		_, listed := exempt[f.Name]
		switch {
		case tagged && !listed:
			t.Errorf("AnalyzeRequest.%s is json:\"-\" but not in this test's exemption table: state why responses are byte-identical across its values, or put it on the wire and into the key", f.Name)
		case !tagged && listed:
			t.Errorf("AnalyzeRequest.%s is exempted here but serialized on the wire — it must perturb the cache key instead", f.Name)
		case !tagged:
			switch f.Name {
			case "APIVersion", "Module", "Source":
				a := AnalyzeRequest{Module: "m.mc", Source: "s"}
				b := a
				reflect.ValueOf(&b).Elem().Field(i).SetString("other")
				if CacheKey(&a) == CacheKey(&b) {
					t.Errorf("AnalyzeRequest.%s does not affect the cache key", f.Name)
				}
			case "Options":
				// Covered field-by-field by TestCacheKeyCoversAllOptionFields.
			default:
				t.Errorf("AnalyzeRequest.%s is a new wire field: teach this guard how to perturb it", f.Name)
			}
		}
	}
	// Exemptions must not outlive their fields.
	for name := range exempt {
		if _, ok := rt.FieldByName(name); !ok {
			t.Errorf("exemption for AnalyzeRequest.%s refers to a field that no longer exists", name)
		}
	}
}
