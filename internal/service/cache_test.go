package service

import (
	"bytes"
	"context"
	"testing"
)

const cleanCheckSrc = `fun f(x: ref int): int {
    restrict y = x {
        return *y;
    }
    return 0;
}
`

// TestCacheKeySensitivity: every input of the content hash — module
// name, source bytes, mode, and each option flag — must change the
// key, and identical requests must share one.
func TestCacheKeySensitivity(t *testing.T) {
	base := AnalyzeRequest{Module: "m.mc", Source: "fun f() {}\n",
		Options: AnalyzeOptions{Mode: ModeCheck}}
	if got, want := CacheKey(&base), CacheKey(&base); got != want {
		t.Fatalf("identical requests hash differently: %s vs %s", got, want)
	}
	variants := map[string]AnalyzeRequest{
		"module":  {Module: "other.mc", Source: base.Source, Options: base.Options},
		"source":  {Module: base.Module, Source: base.Source + " ", Options: base.Options},
		"mode":    {Module: base.Module, Source: base.Source, Options: AnalyzeOptions{Mode: ModeInfer}},
		"general": {Module: base.Module, Source: base.Source, Options: AnalyzeOptions{Mode: ModeCheck, General: true}},
		"params":  {Module: base.Module, Source: base.Source, Options: AnalyzeOptions{Mode: ModeCheck, Params: true}},
		"liberal": {Module: base.Module, Source: base.Source, Options: AnalyzeOptions{Mode: ModeCheck, Liberal: true}},
	}
	baseKey := CacheKey(&base)
	seen := map[string]string{"base": baseKey}
	for name, v := range variants {
		k := CacheKey(&v)
		if k == baseKey {
			t.Errorf("changing %s did not change the cache key", name)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variants %s and %s collide on key %s", name, prev, k)
		}
		seen[k] = name
	}
	// "" selects qual, so it must share qual's key.
	dflt := AnalyzeRequest{Module: "m.mc", Source: base.Source}
	qual := AnalyzeRequest{Module: "m.mc", Source: base.Source,
		Options: AnalyzeOptions{Mode: ModeQual}}
	if CacheKey(&dflt) != CacheKey(&qual) {
		t.Error(`mode "" and mode "qual" should share a cache key`)
	}
}

// TestCacheHitMissAccounting: gets and puts keep exact counters.
func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get on an empty cache reported a hit")
	}
	c.Put("a", []byte("1"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v; want 1, true", v, ok)
	}
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 || st.Entries != 1 || st.Capacity != 4 {
		t.Errorf("stats = %+v; want hits=1 misses=2 evictions=0 entries=1 capacity=4", st)
	}
}

// TestCacheEviction: a capacity-2 cache drops the least recently used
// entry, and recency is refreshed by both Get and re-Put.
func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Get("a")              // a is now most recently used
	c.Put("c", []byte("3")) // must evict b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order ignores Get recency")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was evicted despite being most recently used")
	}
	c.Put("a", []byte("1*")) // refresh, no eviction
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v; want evictions=1 entries=2", st)
	}
	if v, _ := c.Get("a"); string(v) != "1*" {
		t.Errorf("re-Put did not refresh the value: got %q", v)
	}
}

// TestCacheMinimumCapacity: capacity below 1 is clamped, not rejected.
func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if st := c.Stats(); st.Entries != 1 || st.Capacity != 1 {
		t.Errorf("stats = %+v; want entries=1 capacity=1", st)
	}
}

// TestResponseDeterminism: two cold runs of the same request render
// byte-identical canonical JSON — the property that makes serving a
// cache hit indistinguishable from re-running the analysis.
func TestResponseDeterminism(t *testing.T) {
	for _, mode := range []string{ModeCheck, ModeInfer, ModeConfine, ModeQual} {
		req := &AnalyzeRequest{Module: "det.mc", Source: cleanCheckSrc,
			Options: AnalyzeOptions{Mode: mode}}
		first, err := Analyze(context.Background(), req).MarshalCanonical()
		if err != nil {
			t.Fatalf("%s: marshal: %v", mode, err)
		}
		second, err := Analyze(context.Background(), req).MarshalCanonical()
		if err != nil {
			t.Fatalf("%s: marshal: %v", mode, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: two cold runs render different bytes:\n--- first\n%s\n--- second\n%s",
				mode, first, second)
		}
		if first[len(first)-1] != '\n' {
			t.Errorf("%s: canonical form lacks the trailing newline", mode)
		}
	}
}
