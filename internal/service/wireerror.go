package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// The canonical error contract: every non-2xx answer from a /v1/*
// endpoint — daemon and gateway alike — carries the same JSON body,
//
//	{"error": {"code": "<symbolic code>", "message": "<human text>"}}
//
// so clients branch on a stable code instead of parsing prose, and the
// message stays free to improve. The code also determines the HTTP
// status the server sends and the exit code a CLI front end should
// adopt when it relays the error: all three mappings live in the one
// errorClasses table below, so adding an error condition is one row,
// not three scattered switch arms.

// The symbolic error codes of the v1 wire contract (docs/API.md).
const (
	// CodeBadRequest: the request body is malformed, names an unknown
	// analysis mode, or carries no source.
	CodeBadRequest = "bad_request"
	// CodeUnsupportedVersion: the request's api_version names a
	// contract this server does not speak.
	CodeUnsupportedVersion = "unsupported_api_version"
	// CodeMethodNotAllowed: the endpoint wants a different HTTP method.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound: the addressed resource does not exist in this
	// process (an expired or never-seen trace ID).
	CodeNotFound = "not_found"
	// CodeQueueFull: admission control refused the request; retry
	// after the Retry-After interval.
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down gracefully and accepts
	// no new work.
	CodeDraining = "draining"
	// CodeBackendUnavailable: a gateway found no healthy backend to
	// own the request (every replica down or draining).
	CodeBackendUnavailable = "backend_unavailable"
	// CodeInternal: the server failed to produce a response (encoding
	// error or an unclassified fault) — not a statement about the
	// module under analysis, which degrades via the in-band Failure
	// record instead.
	CodeInternal = "internal"
)

// errorClass is one row of the contract table: the HTTP status a code
// is served with, and the process exit code a CLI adopting the error
// should use (the shared Exit* policy).
type errorClass struct {
	Status int
	Exit   int
}

// errorClasses is the single source of truth mapping error codes to
// HTTP statuses and Exit* codes.
var errorClasses = map[string]errorClass{
	CodeBadRequest:         {http.StatusBadRequest, ExitUsage},
	CodeUnsupportedVersion: {http.StatusBadRequest, ExitUsage},
	CodeMethodNotAllowed:   {http.StatusMethodNotAllowed, ExitUsage},
	CodeNotFound:           {http.StatusNotFound, ExitUsage},
	CodeQueueFull:          {http.StatusTooManyRequests, ExitDegraded},
	CodeDraining:           {http.StatusServiceUnavailable, ExitDegraded},
	CodeBackendUnavailable: {http.StatusServiceUnavailable, ExitDegraded},
	CodeInternal:           {http.StatusInternalServerError, ExitDegraded},
}

// WireError is the inner object of the canonical error body. It
// implements error, so client layers can return it directly.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error renders "code: message".
func (e *WireError) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ExitCode maps the error to the shared exit-code policy via the
// contract table (ExitDegraded for codes this build does not know —
// a newer server refused us for a reason we cannot classify).
func (e *WireError) ExitCode() int { return ExitForCode(e.Code) }

// ErrorBody is the canonical JSON envelope of every non-2xx response.
type ErrorBody struct {
	Error *WireError `json:"error"`
}

// StatusForCode returns the HTTP status an error code is served with
// (500 for unknown codes — an unclassified failure).
func StatusForCode(code string) int {
	if c, ok := errorClasses[code]; ok {
		return c.Status
	}
	return http.StatusInternalServerError
}

// ExitForCode returns the shared Exit* code a CLI should adopt when it
// relays a wire error (ExitDegraded for unknown codes).
func ExitForCode(code string) int {
	if c, ok := errorClasses[code]; ok {
		return c.Exit
	}
	return ExitDegraded
}

// WriteWireError writes the canonical error body for code, with the
// status the contract table assigns it.
func WriteWireError(w http.ResponseWriter, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(StatusForCode(code))
	_ = json.NewEncoder(w).Encode(ErrorBody{
		Error: &WireError{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// DecodeWireError recovers the WireError from a non-2xx response body.
// Bodies that do not parse as the canonical envelope (a proxy's HTML
// error page, a truncated read) degrade to a WireError synthesized
// from the HTTP status, so callers always get a code to branch on.
func DecodeWireError(status int, body []byte) *WireError {
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != nil && eb.Error.Code != "" {
		return eb.Error
	}
	code := CodeInternal
	switch status {
	case http.StatusBadRequest:
		code = CodeBadRequest
	case http.StatusMethodNotAllowed:
		code = CodeMethodNotAllowed
	case http.StatusTooManyRequests:
		code = CodeQueueFull
	case http.StatusServiceUnavailable:
		code = CodeBackendUnavailable
	}
	msg := string(body)
	if len(msg) > 200 {
		msg = msg[:200] + "..."
	}
	return &WireError{Code: code, Message: fmt.Sprintf("HTTP %d: %s", status, msg)}
}
