package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"localalias/internal/obs"
	"localalias/internal/solve"
)

// Server defaults, overridable through ServerOptions.
const (
	// DefaultCacheEntries bounds the LRU result cache.
	DefaultCacheEntries = 1024
	// DefaultRequestTimeout is the per-module analysis deadline.
	DefaultRequestTimeout = 2 * time.Minute
	// DefaultDrainTimeout bounds graceful shutdown: how long in-flight
	// requests get to finish after SIGTERM before the listener is torn
	// down hard.
	DefaultDrainTimeout = 30 * time.Second
	// DefaultTraceEntries bounds the in-memory ring of recently
	// completed traces behind /v1/trace/{id}.
	DefaultTraceEntries = 256
	// maxRequestBytes bounds one request body (a batch of large
	// modules fits comfortably; a runaway upload does not).
	maxRequestBytes = 64 << 20
	// MaxBatch bounds the modules in one /v1/batch submission.
	MaxBatch = 4096
)

// ServerOptions configures a Server. The zero value picks sensible
// defaults for every field.
type ServerOptions struct {
	// Workers is the analysis pool size (0 = GOMAXPROCS). At most this
	// many modules are analyzed concurrently, across all endpoints.
	Workers int
	// CacheEntries is the LRU result-cache capacity in entries
	// (0 = DefaultCacheEntries).
	CacheEntries int
	// QueueDepth bounds admitted-but-unfinished /v1/analyze requests
	// (waiting + running). One more than that and the server answers
	// 429 immediately instead of building an unbounded backlog
	// (0 = 4×Workers). Batches are admitted whole and bounded by
	// MaxBatch instead.
	QueueDepth int
	// RequestTimeout is the per-module analysis deadline
	// (0 = DefaultRequestTimeout; negative = no deadline).
	RequestTimeout time.Duration
	// AccessLog, when non-nil, receives one line per HTTP request
	// (method, path, status, duration, trace ID, cache disposition,
	// phase timings). nil disables access logging.
	AccessLog io.Writer
	// LogFormat selects the access-log rendering: LogText (default)
	// or LogJSON.
	LogFormat string
	// SolverWorkers bounds the partitioned constraint solver's
	// concurrency within each analyzed module (<= 1 = sequential, the
	// default). Orthogonal to Workers, which parallelizes across
	// modules: a mostly-idle daemon serving huge single modules wants
	// SolverWorkers up; a saturated corpus daemon wants it at 1.
	// Responses are byte-identical at any setting, so it does not
	// participate in the result cache key.
	SolverWorkers int
	// MemoEntries bounds the process-wide solve memo backing the
	// incremental engine: content-addressed component summaries that
	// let a re-submitted (or lightly edited) module replay most of its
	// constraint solving (0 = solve.DefaultMemoEntries; negative
	// disables incremental re-analysis entirely). Replay is
	// byte-identical to solving fresh, so — like SolverWorkers — it
	// stays out of the result cache key.
	MemoEntries int
	// SummaryEntries bounds the per-module baseline store the
	// incremental engine diffs new revisions against
	// (0 = DefaultSummaryEntries). Eviction only loses diff
	// reporting, never correctness.
	SummaryEntries int
	// TraceEntries bounds the ring buffer of recently completed traces
	// served by /v1/trace/{id} (0 = DefaultTraceEntries; negative
	// disables trace retention entirely — requests still get spans and
	// an X-Lna-Trace ID, but nothing is retained for later fetch).
	TraceEntries int
}

// withDefaults resolves zero fields.
func (o ServerOptions) withDefaults() ServerOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = DefaultCacheEntries
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	} else if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	if o.MemoEntries == 0 {
		o.MemoEntries = DefaultMemoEntries()
	}
	if o.SummaryEntries <= 0 {
		o.SummaryEntries = DefaultSummaryEntries
	}
	if o.TraceEntries == 0 {
		o.TraceEntries = DefaultTraceEntries
	}
	return o
}

// Server is the resident analysis service behind `lna serve`: a fixed
// worker pool over the shared Analyze engine, an LRU cache of
// canonical response bytes keyed by content hash, request batching,
// bounded-queue backpressure, and graceful drain.
//
// Endpoints (all JSON):
//
//	POST /v1/analyze  one AnalyzeRequest → one AnalyzeResponse.
//	                  Headers: X-Lna-Cache: hit|miss,
//	                  X-Lna-Cache-Key: <sha256>. 429 when the queue
//	                  is full, 503 while draining.
//	POST /v1/batch    {"requests": [...]} → BatchResponse with
//	                  per-entry cache flags and a summary.
//	GET  /v1/health   {"status": "ok"|"draining", ...}
//	GET  /v1/stats    ServerStats snapshot.
type Server struct {
	opts  ServerOptions
	cache *Cache
	// inc is the incremental re-analysis engine (nil when MemoEntries
	// is negative): cache misses run through it so edited modules
	// re-solve only what changed.
	inc *Incremental
	// slots is the worker pool: holding a token = running an analysis.
	slots chan struct{}
	// queue bounds admitted single-module requests (waiting+running).
	queue chan struct{}
	// log is the access logger (nil = disabled).
	log *AccessLogger
	// traces retains recently completed request traces for
	// /v1/trace/{id} (nil when TraceEntries is negative).
	traces *obs.TraceRing

	draining atomic.Bool
	requests atomic.Uint64 // single-module requests admitted
	batches  atomic.Uint64 // batch requests admitted
	rejected atomic.Uint64 // 429s + 503s
	failures atomic.Uint64 // responses carrying a Failure record

	// Process-wide mirrors of the HTTP-level counters, exposed through
	// /v1/metrics alongside the engine's own instruments. mRequests
	// counts every admitted single-module request (hits and misses
	// both), where the engine's lna_requests_total only sees cold runs.
	mRequests *obs.Counter
	mRejected *obs.Counter
	mBatches  *obs.Counter
}

// NewServer builds a Server (see ServerOptions for the knobs).
func NewServer(opts ServerOptions) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:   o,
		cache:  NewCache(o.CacheEntries),
		slots:  make(chan struct{}, o.Workers),
		queue:  make(chan struct{}, o.QueueDepth),
		log:    NewAccessLogger(o.AccessLog, o.LogFormat),
		traces: obs.NewTraceRing(o.TraceEntries),
	}
	if o.MemoEntries > 0 {
		s.inc = NewIncremental(solve.NewMemo(o.MemoEntries), o.SummaryEntries)
	}
	reg := obs.Default()
	s.mRequests = reg.Counter("lna_http_requests_total",
		"Single-module requests admitted (cache hits included).")
	s.mRejected = reg.Counter("lna_http_rejected_total",
		"HTTP requests refused with 429 (queue full) or 503 (draining).")
	s.mBatches = reg.Counter("lna_http_batches_total",
		"Batch submissions admitted.")
	// GaugeFunc re-registration binds the live gauges to the newest
	// Server — exactly what a process that rebuilds its server (tests,
	// config reload) wants.
	reg.GaugeFunc("lna_queue_depth",
		"Admitted-but-unfinished single-module requests (waiting + running).",
		func() int64 { return int64(len(s.queue)) })
	reg.GaugeFunc("lna_inflight_analyses",
		"Analyses currently holding a worker slot.",
		func() int64 { return int64(len(s.slots)) })
	reg.GaugeFunc("lna_cache_entries",
		"Entries resident in the result cache.",
		func() int64 { return int64(s.cache.Stats().Entries) })
	return s
}

// Options returns the resolved configuration.
func (s *Server) Options() ServerOptions { return s.opts }

// CacheStats exposes the result cache's accounting.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// ServerStats is the /v1/stats payload.
type ServerStats struct {
	Workers        int        `json:"workers"`
	QueueDepth     int        `json:"queue_depth"`
	Requests       uint64     `json:"requests"`
	BatchRequests  uint64     `json:"batch_requests"`
	Rejected       uint64     `json:"rejected"`
	Failures       uint64     `json:"failures"`
	Draining       bool       `json:"draining"`
	Cache          CacheStats `json:"cache"`
	RequestTimeout string     `json:"request_timeout"`
	// Memo is the solve-component summary memo backing incremental
	// re-analysis (nil when disabled); Summaries counts the resident
	// per-module diff baselines.
	Memo      *solve.MemoStats `json:"memo,omitempty"`
	Summaries int              `json:"summaries,omitempty"`
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	return mux
}

// Traces exposes the server's trace ring (nil when retention is
// disabled); the process-level smoke tests reach completed traces
// through it without going over HTTP.
func (s *Server) Traces() *obs.TraceRing { return s.traces }

// HandleTraceFrom serves GET /v1/trace/{id} out of a trace ring,
// attributing the fragment to the named process role. Shared with the
// gateway, whose handler differs only in ring and role.
func HandleTraceFrom(ring *obs.TraceRing, process string, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteWireError(w, CodeMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || strings.Contains(id, "/") {
		WriteWireError(w, CodeBadRequest, "want /v1/trace/{id}")
		return
	}
	t := ring.Get(id)
	if t == nil {
		WriteWireError(w, CodeNotFound, "trace %q is not in this process's ring (expired or never seen)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(t.Export(process))
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	HandleTraceFrom(s.traces, "replica", w, r)
}

// handleMetrics serves the process-wide metrics registry: JSON by
// default, Prometheus text exposition when the client asks for it
// with ?format=prometheus or an Accept: text/plain header.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := obs.Default()
	format := r.URL.Query().Get("format")
	if format == "prometheus" ||
		(format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
		return
	}
	if format != "" && format != "json" {
		WriteWireError(w, CodeBadRequest, "unknown format %q (want json|prometheus)", format)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = reg.WriteJSON(w)
}

// decodeRequest reads and validates one JSON body into dst.
func decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		WriteWireError(w, CodeMethodNotAllowed, "use POST")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(dst); err != nil {
		WriteWireError(w, CodeBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// ValidateRequest rejects requests the engine cannot serve before they
// cost a queue slot (or, at a gateway, a backend round trip): an
// unsupported api_version, an unknown analysis mode, or empty source.
// nil means the request is admissible.
func ValidateRequest(req *AnalyzeRequest) *WireError {
	if req.APIVersion != "" && req.APIVersion != APIVersion {
		return &WireError{Code: CodeUnsupportedVersion,
			Message: fmt.Sprintf("api_version %q is not supported (this server speaks %q)", req.APIVersion, APIVersion)}
	}
	if !ValidMode(req.Options.Mode) {
		return &WireError{Code: CodeBadRequest,
			Message: fmt.Sprintf("unknown analysis mode %q (want check|infer|confine|qual)", req.Options.Mode)}
	}
	if req.Source == "" {
		return &WireError{Code: CodeBadRequest, Message: "empty source"}
	}
	return nil
}

// runCached serves req from the cache or runs it on the calling
// goroutine (which must already hold a worker slot). Only healthy
// responses are cached: a panic or timeout record may be environment-
// dependent, so those re-run on resubmission.
func (s *Server) runCached(ctx context.Context, req *AnalyzeRequest) (data []byte, key string, hit bool, resp *AnalyzeResponse, inc *IncrementalInfo, err error) {
	key = CacheKey(req)
	if data, ok := s.cache.Get(key); ok {
		return data, key, true, nil, nil, nil
	}
	req.SolverWorkers = s.opts.SolverWorkers
	if s.inc != nil {
		resp, inc = s.inc.Analyze(ctx, req, s.opts.RequestTimeout)
	} else {
		resp = AnalyzeBounded(ctx, req, s.opts.RequestTimeout)
	}
	if resp.Failure != nil {
		s.failures.Add(1)
	}
	data, err = resp.MarshalCanonical()
	if err != nil {
		return nil, key, false, resp, inc, err
	}
	if resp.Failure == nil {
		s.cache.Put(key, data)
	}
	return data, key, false, resp, inc, nil
}

// acquireSlot takes a worker token, honouring request cancellation.
func (s *Server) acquireSlot(ctx context.Context) bool {
	select {
	case s.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (s *Server) releaseSlot() { <-s.slots }

func (s *Server) handleAnalyze(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &statusWriter{ResponseWriter: rw}
	entry := AccessEntry{Time: start, Method: r.Method, Path: r.URL.Path}
	defer func() {
		entry.Status = w.Status()
		entry.DurMs = float64(time.Since(start)) / float64(time.Millisecond)
		s.log.Log(entry)
	}()
	if s.draining.Load() {
		s.rejected.Add(1)
		s.mRejected.Inc()
		WriteWireError(w, CodeDraining, "server is draining")
		return
	}
	var req AnalyzeRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if werr := ValidateRequest(&req); werr != nil {
		WriteWireError(w, werr.Code, "%s", werr.Message)
		return
	}
	entry.Module, entry.Mode = req.Module, req.Options.Mode
	// Backpressure: admission is non-blocking. A full queue means the
	// pool is RequestTimeout-deep in work already; asking the client
	// to retry beats an unbounded backlog.
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue }()
	default:
		s.rejected.Add(1)
		s.mRejected.Inc()
		w.Header().Set("Retry-After", "1")
		WriteWireError(w, CodeQueueFull, "analysis queue is full (%d in flight)", s.opts.QueueDepth)
		return
	}
	s.requests.Add(1)
	s.mRequests.Inc()
	// Every daemon request is traced: the spans cost microseconds next
	// to an analysis, and the trace ID is what lets an operator join
	// the access log, the response headers, and an exported trace. A
	// propagated X-Lna-Trace-Context (from a gateway's attempt span)
	// is adopted, so this process's spans join the caller's trace and
	// parent under its attempt — the replica half of distributed
	// tracing. Completed traces land in the ring behind /v1/trace/{id}.
	sc, _ := obs.ParseTraceContext(r.Header.Get(obs.TraceContextHeader))
	ot := obs.NewTraceContext(req.Module, sc)
	req.Obs = ot
	entry.Trace = ot.ID()
	defer s.traces.Put(ot)
	if !s.acquireSlot(r.Context()) {
		return // client went away while queued
	}
	defer s.releaseSlot()
	data, key, hit, resp, inc, err := s.runCached(r.Context(), &req)
	if err != nil {
		WriteWireError(w, CodeInternal, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Lna-Cache-Key", key)
	w.Header().Set("X-Lna-Trace", ot.ID())
	if hit {
		w.Header().Set("X-Lna-Cache", "hit")
		entry.Cache = "hit"
	} else {
		w.Header().Set("X-Lna-Cache", "miss")
		entry.Cache = "miss"
	}
	// How much of the cold run was replayed from component summaries
	// (cache hits skipped the analysis outright, so the header only
	// rides on misses — like X-Lna-Phases).
	if inc != nil {
		w.Header().Set("X-Lna-Incremental", inc.Disposition)
		entry.Incremental = inc.Disposition
	}
	// The whole-program pass summary of a multi_module request rides
	// in a header for the same reason (hits skipped the pass, so it
	// only appears on misses).
	if resp != nil && resp.Xmodule != "" {
		w.Header().Set("X-Lna-Xmodule", resp.Xmodule)
		entry.Xmodule = resp.Xmodule
	}
	// Per-phase timings ride in a header (and the access log), never in
	// the canonical body — cached responses must replay byte-identically.
	if resp != nil && len(resp.PhaseTimings) > 0 {
		entry.Phases = resp.PhaseTimings
		w.Header().Set("X-Lna-Phases", formatPhases(resp.PhaseTimings))
	}
	_, _ = w.Write(data)
}

// BatchRequest is a corpus-style multi-module submission.
type BatchRequest struct {
	Requests []AnalyzeRequest `json:"requests"`
}

// BatchEntry is one module's outcome within a batch: the canonical
// AnalyzeResponse plus its cache disposition and trace ID. The
// Response bytes are the cacheable canonical shape; Cached, CacheKey,
// and TraceID are batch-envelope metadata and never enter the cache.
type BatchEntry struct {
	Cached   bool            `json:"cached"`
	CacheKey string          `json:"cache_key"`
	TraceID  string          `json:"trace_id"`
	Response json.RawMessage `json:"response,omitempty"`
	// Incremental is the reuse disposition of a cold entry
	// (cold|partial|full; empty on cache hits and when incremental
	// re-analysis is disabled).
	Incremental string `json:"incremental,omitempty"`
	// Error is set — and Response empty — when this entry was never
	// analyzed: it failed admission (unknown mode, empty source,
	// unsupported api_version) or, at a gateway, no backend could
	// serve it. A batch therefore distinguishes "analyzed, result
	// empty" from "rejected" per entry instead of failing whole.
	Error *WireError `json:"error,omitempty"`
}

// BatchSummary aggregates a batch.
type BatchSummary struct {
	Modules     int `json:"modules"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	Failures    int `json:"failures"`
	Findings    int `json:"findings"`
	// Rejected counts entries refused without analysis (their
	// BatchEntry.Error says why); they appear in neither the hit nor
	// the miss count.
	Rejected int `json:"rejected"`
}

// BatchResponse answers /v1/batch; Results is index-aligned with the
// submitted Requests.
type BatchResponse struct {
	Results []BatchEntry `json:"results"`
	Summary BatchSummary `json:"summary"`
}

func (s *Server) handleBatch(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &statusWriter{ResponseWriter: rw}
	entry := AccessEntry{Time: start, Method: r.Method, Path: r.URL.Path}
	defer func() {
		entry.Status = w.Status()
		entry.DurMs = float64(time.Since(start)) / float64(time.Millisecond)
		s.log.Log(entry)
	}()
	if s.draining.Load() {
		s.rejected.Add(1)
		s.mRejected.Inc()
		WriteWireError(w, CodeDraining, "server is draining")
		return
	}
	var batch BatchRequest
	if !decodeRequest(w, r, &batch) {
		return
	}
	if len(batch.Requests) == 0 {
		WriteWireError(w, CodeBadRequest, "empty batch")
		return
	}
	if len(batch.Requests) > MaxBatch {
		WriteWireError(w, CodeBadRequest, "batch of %d exceeds the %d-module limit", len(batch.Requests), MaxBatch)
		return
	}
	s.batches.Add(1)
	s.mBatches.Inc()
	entry.Modules = len(batch.Requests)

	// Fan the batch across the worker pool. Entries stream through the
	// shared slots, so one batch cannot starve concurrent requests of
	// more than its fair share of workers. Each entry gets its own
	// trace, so a slow module inside a big batch is attributable.
	out := BatchResponse{Results: make([]BatchEntry, len(batch.Requests))}
	var (
		wg sync.WaitGroup
		mu sync.Mutex // guards the summary counters
	)
	for i := range batch.Requests {
		// Admission is per entry: a module with an unknown mode or no
		// source gets a structured per-entry error, and its healthy
		// neighbours still analyze — clients distinguish "rejected"
		// from "analyzed, result empty" by the Error field.
		if werr := ValidateRequest(&batch.Requests[i]); werr != nil {
			out.Results[i].Error = werr
			out.Summary.Rejected++
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &batch.Requests[i]
			// Batch entries always get fresh per-entry trace IDs (never
			// the propagated context — hundreds of entries sharing one
			// trace ID would make /v1/trace/{id} ambiguous); a gateway's
			// batch spans live in its own gateway-side trace instead.
			ot := obs.NewTrace(req.Module)
			req.Obs = ot
			out.Results[i].TraceID = ot.ID()
			defer s.traces.Put(ot)
			if !s.acquireSlot(r.Context()) {
				return
			}
			defer s.releaseSlot()
			data, key, hit, resp, inc, err := s.runCached(r.Context(), req)
			if err != nil {
				out.Results[i].Error = &WireError{Code: CodeInternal, Message: err.Error()}
				data = nil
			}
			out.Results[i].Cached = hit
			out.Results[i].CacheKey = key
			out.Results[i].Response = data
			if inc != nil {
				out.Results[i].Incremental = inc.Disposition
			}
			mu.Lock()
			defer mu.Unlock()
			if hit {
				out.Summary.CacheHits++
			} else {
				out.Summary.CacheMisses++
			}
			if resp != nil {
				if resp.Failure != nil {
					out.Summary.Failures++
				}
				out.Summary.Findings += resp.Findings
			}
		}(i)
	}
	wg.Wait()
	if r.Context().Err() != nil {
		return // client went away mid-batch
	}
	out.Summary.Modules = len(batch.Requests)
	entry.Hits, entry.Misses = out.Summary.CacheHits, out.Summary.CacheMisses
	w.Header().Set("Content-Type", "application/json")
	// Per-item cache dispositions, index-aligned with the submitted
	// requests, so clients can spot cold entries without parsing the
	// body (see the header table in DESIGN.md).
	dispositions := make([]string, len(out.Results))
	for i, res := range out.Results {
		switch {
		case res.Error != nil:
			dispositions[i] = "error"
		case res.Cached:
			dispositions[i] = "hit"
		default:
			dispositions[i] = "miss"
		}
	}
	w.Header().Set("X-Lna-Cache", strings.Join(dispositions, ","))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// HealthStatus is the /v1/health payload of one daemon.
type HealthStatus struct {
	Status     string `json:"status"` // "ok" or "draining"
	APIVersion string `json:"api_version"`
	Workers    int    `json:"workers"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(HealthStatus{
		Status:     status,
		APIVersion: APIVersion,
		Workers:    s.opts.Workers,
	})
}

// SetDraining administratively toggles the draining state: while
// draining, /v1/health reports it and new submissions are refused with
// the canonical draining error. Operators use this (via a preStop
// hook) to have a gateway's health checks remove the replica from its
// pool before the process receives SIGTERM; ListenAndServe sets it
// automatically on shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	st := ServerStats{
		Workers:        s.opts.Workers,
		QueueDepth:     s.opts.QueueDepth,
		Requests:       s.requests.Load(),
		BatchRequests:  s.batches.Load(),
		Rejected:       s.rejected.Load(),
		Failures:       s.failures.Load(),
		Draining:       s.draining.Load(),
		Cache:          s.cache.Stats(),
		RequestTimeout: s.opts.RequestTimeout.String(),
	}
	if s.inc != nil {
		ms := s.inc.Memo().Stats()
		st.Memo = &ms
		st.Summaries = s.inc.Summaries()
	}
	_ = enc.Encode(st)
}

// ListenAndServe binds addr (port 0 picks a free port), reports the
// bound address through ready (when non-nil), and serves until ctx is
// cancelled. Cancellation triggers a graceful drain: new requests are
// refused with 503 while in-flight ones get up to DefaultDrainTimeout
// to finish. The returned error is nil on a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.draining.Store(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), DefaultDrainTimeout)
		defer cancel()
		drained <- hs.Shutdown(shutdownCtx)
	}()
	if ready != nil {
		ready(ln.Addr().String())
	}
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if ctx.Err() != nil {
		return <-drained
	}
	return nil
}
