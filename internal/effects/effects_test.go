package effects

import (
	"testing"

	"localalias/internal/locs"
)

func TestNormalizeAtomAndVar(t *testing.T) {
	ls := locs.NewStore()
	s := NewSystem(ls)
	rho := ls.Fresh("r")
	e1 := s.Fresh("e1")
	e2 := s.Fresh("e2")
	s.AddAtom(Atom{Kind: Read, Loc: rho}, e1)
	s.AddVarIncl(e1, e2)
	norms := s.Normalize()
	if len(norms) != 2 {
		t.Fatalf("norms: %v", norms)
	}
	for _, n := range norms {
		if n.Inter {
			t.Errorf("unexpected intersection: %+v", n)
		}
	}
}

func TestNormalizeDropsEmptyAndSelf(t *testing.T) {
	ls := locs.NewStore()
	s := NewSystem(ls)
	e := s.Fresh("e")
	s.AddIncl(Empty{}, e)
	s.AddVarIncl(e, e)
	if len(s.Normalize()) != 0 {
		t.Error("empty and self inclusions must normalize away")
	}
}

func TestNormalizeUnionSplits(t *testing.T) {
	ls := locs.NewStore()
	s := NewSystem(ls)
	a := Atom{Kind: LocAtom, Loc: ls.Fresh("a")}
	b := Atom{Kind: LocAtom, Loc: ls.Fresh("b")}
	c := Atom{Kind: LocAtom, Loc: ls.Fresh("c")}
	e := s.Fresh("e")
	// ((a ∪ b) ∪ c) ⊆ e → three singleton constraints.
	s.AddIncl(Union{L: Union{L: AtomExpr{a}, R: AtomExpr{b}}, R: AtomExpr{c}}, e)
	norms := s.Normalize()
	if len(norms) != 3 {
		t.Fatalf("want 3 norms, got %v", norms)
	}
	seen := map[locs.Loc]bool{}
	for _, n := range norms {
		if n.Inter || !n.Left.IsAtom || n.V != e {
			t.Fatalf("bad norm %+v", n)
		}
		seen[n.Left.A.Loc] = true
	}
	if len(seen) != 3 {
		t.Errorf("atoms lost: %v", seen)
	}
}

func TestNormalizeSimpleInter(t *testing.T) {
	ls := locs.NewStore()
	s := NewSystem(ls)
	e1 := s.Fresh("e1")
	e2 := s.Fresh("e2")
	e3 := s.Fresh("e3")
	s.AddIncl(Inter{L: VarRef{e1}, R: VarRef{e2}}, e3)
	norms := s.Normalize()
	if len(norms) != 1 || !norms[0].Inter {
		t.Fatalf("want one intersection norm, got %v", norms)
	}
	if norms[0].Left.V != e1 || norms[0].Right.V != e2 || norms[0].V != e3 {
		t.Errorf("wrong operands: %+v", norms[0])
	}
}

func TestNormalizeInterOverUnionHoists(t *testing.T) {
	// ((L1 ∪ L2) ∩ L) ⊆ ε must introduce a fresh variable per
	// Figure 4b.
	ls := locs.NewStore()
	s := NewSystem(ls)
	a := Atom{Kind: LocAtom, Loc: ls.Fresh("a")}
	b := Atom{Kind: LocAtom, Loc: ls.Fresh("b")}
	eL := s.Fresh("L")
	e := s.Fresh("e")
	before := s.NumVars()
	s.AddIncl(Inter{L: Union{L: AtomExpr{a}, R: AtomExpr{b}}, R: VarRef{eL}}, e)
	norms := s.Normalize()
	if s.NumVars() != before+1 {
		t.Fatalf("expected exactly one fresh variable, got %d new", s.NumVars()-before)
	}
	var inters, plains int
	for _, n := range norms {
		if n.Inter {
			inters++
			if n.Left.IsAtom {
				t.Errorf("left of hoisted inter should be the fresh var: %+v", n)
			}
		} else {
			plains++
		}
	}
	if inters != 1 || plains != 2 {
		t.Errorf("want 1 inter + 2 plain, got %d + %d", inters, plains)
	}
}

func TestNormalizeInterWithEmptyDrops(t *testing.T) {
	ls := locs.NewStore()
	s := NewSystem(ls)
	e1 := s.Fresh("e1")
	e2 := s.Fresh("e2")
	s.AddIncl(Inter{L: Empty{}, R: VarRef{e1}}, e2)
	s.AddIncl(Inter{L: VarRef{e1}, R: Empty{}}, e2)
	if n := s.Normalize(); len(n) != 0 {
		t.Errorf("∅ ∩ L and L ∩ ∅ must drop, got %v", n)
	}
}

func TestNormalizeNestedInterHoists(t *testing.T) {
	ls := locs.NewStore()
	s := NewSystem(ls)
	e1, e2, e3, e4 := s.Fresh("e1"), s.Fresh("e2"), s.Fresh("e3"), s.Fresh("e4")
	s.AddIncl(Inter{L: Inter{L: VarRef{e1}, R: VarRef{e2}}, R: VarRef{e3}}, e4)
	norms := s.Normalize()
	inters := 0
	for _, n := range norms {
		if n.Inter {
			inters++
		}
	}
	if inters != 2 {
		t.Errorf("nested inter must hoist into two inters, got %v", norms)
	}
}

func TestExprString(t *testing.T) {
	ls := locs.NewStore()
	a := Atom{Kind: Write, Loc: ls.Fresh("x")}
	e := Union{L: AtomExpr{a}, R: Inter{L: Empty{}, R: VarRef{3}}}
	got := String(e)
	want := "(write(ρ0) ∪ (∅ ∩ ε3))"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestVarNames(t *testing.T) {
	ls := locs.NewStore()
	s := NewSystem(ls)
	v := s.Fresh("body(foo)")
	if s.VarName(v) != "body(foo)" {
		t.Errorf("VarName = %q", s.VarName(v))
	}
	if s.VarName(Var(99)) == "" {
		t.Error("out-of-range VarName must still render")
	}
}
