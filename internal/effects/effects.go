// Package effects defines the effect constraint language of the paper
// (Sections 4–6): effect atoms, effect expressions, and the three
// constraint forms produced by alias-and-effect inference —
//
//	L ⊆ ε    inclusion of an effect expression in an effect variable
//	ρ ∉ ε    disinclusion of a location from an effect variable
//	cond     conditional constraints (Sections 5 and 6), used by
//	         restrict and confine inference
//
// Type equality constraints (Figure 4a) are solved eagerly during
// inference by unification on located types; the location equalities
// they imply arrive here through the shared locs.Store.
//
// Effects are sets of atoms. The paper's basic system (Section 3)
// uses plain location atoms {ρ}; the refined system for confine
// (Section 6.1) splits effects into read(ρ), write(ρ) and alloc(ρ).
// We use the refined atoms throughout and give the basic system's
// operations their obvious any-kind meaning, e.g. ρ ∉ L holds when no
// atom of any kind over ρ is in L.
//
// Intersection: the only intersections the syntax-directed system
// generates come from (Down), which replaces an effect L by
// L ∩ locs(Γ, τ) — "drop effects on locations no longer in use". We
// therefore give L₁ ∩ L₂ the kind-respecting reading "atoms of L₁
// whose location occurs (with any kind) in L₂". On the plain location
// sets of the paper's Figures 4 and 5 this coincides exactly with set
// intersection; on mixed sets it avoids polluting effect sets with
// the bare location atoms of locs(Γ, τ).
package effects

import (
	"fmt"

	"localalias/internal/locs"
	"localalias/internal/source"
)

// Kind classifies an effect atom.
type Kind uint8

// The atom kinds. LocAtom is membership of a location in a location
// set (the locs(τ)/locs(Γ) sets); Read/Write/Alloc are the effect
// kinds of Section 6.1.
const (
	LocAtom Kind = iota
	Read
	Write
	Alloc
)

func (k Kind) String() string {
	switch k {
	case LocAtom:
		return "loc"
	case Read:
		return "read"
	case Write:
		return "write"
	case Alloc:
		return "alloc"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Mask is a set of effect kinds. Cross-module effect signatures use
// one Mask per formal parameter: the read/write/alloc kinds the
// callee's solved latent effect contains on locations reachable from
// that formal, rebased to the caller's argument.
type Mask uint8

// Bit returns the mask bit for k.
func (k Kind) Bit() Mask { return Mask(1) << k }

// Has reports whether k is in the mask.
func (m Mask) Has(k Kind) bool { return m&k.Bit() != 0 }

// HavocMask is the worst-case signature: read, write and alloc.
const HavocMask = Mask(1)<<Read | Mask(1)<<Write | Mask(1)<<Alloc

func (m Mask) String() string {
	s := ""
	for _, k := range [...]Kind{Read, Write, Alloc} {
		if m.Has(k) {
			if s != "" {
				s += "+"
			}
			s += k.String()
		}
	}
	if s == "" {
		return "pure"
	}
	return s
}

// Atom is one effect: kind applied to an abstract location. Atoms are
// stored canonicalized (Loc is a representative at insertion time);
// compare via the solver, which re-canonicalizes after unifications.
type Atom struct {
	Kind Kind
	Loc  locs.Loc
}

func (a Atom) String() string { return fmt.Sprintf("%s(ρ%d)", a.Kind, a.Loc) }

// Var is an effect-set variable (the ε and π of the paper), an index
// into its System.
type Var int32

// NoVar is the absent variable.
const NoVar Var = -1

// Expr is an effect expression per the paper's grammar
//
//	L ::= ∅ | {a} | ε | L₁ ∪ L₂ | L₁ ∩ L₂
type Expr interface {
	effString() string
}

// Empty is ∅.
type Empty struct{}

// AtomExpr is the singleton {a}.
type AtomExpr struct{ A Atom }

// VarRef is an effect variable occurrence.
type VarRef struct{ V Var }

// Union is L₁ ∪ L₂.
type Union struct{ L, R Expr }

// Inter is L₁ ∩ L₂ (see the package comment for its reading on mixed
// atom kinds).
type Inter struct{ L, R Expr }

func (Empty) effString() string      { return "∅" }
func (e AtomExpr) effString() string { return e.A.String() }
func (e VarRef) effString() string   { return fmt.Sprintf("ε%d", e.V) }
func (e Union) effString() string    { return "(" + e.L.effString() + " ∪ " + e.R.effString() + ")" }
func (e Inter) effString() string    { return "(" + e.L.effString() + " ∩ " + e.R.effString() + ")" }

// String renders an effect expression.
func String(e Expr) string { return e.effString() }

// ---------------------------------------------------------------------
// Constraints

// Incl is the inclusion constraint L ⊆ ε. Site optionally records the
// source construct that generated the constraint, so a malformed
// expression discovered during normalization can be reported as a
// positioned diagnostic.
type Incl struct {
	L    Expr
	V    Var
	Site source.Span
}

// NotIn is the disinclusion check ρ ∉ ε. Site and What carry
// diagnostic context (which restrict/confine and which side
// condition generated the check).
type NotIn struct {
	Loc  locs.Loc
	V    Var
	Site source.Span
	What string
}

// KindNotIn is the check that no atom of the given kind occurs in V.
// The confine checking rule uses it for "e₁ has no write/alloc
// effects" (Section 6.1).
type KindNotIn struct {
	Kind Kind
	V    Var
	Site source.Span
	What string
}

// PairNotIn is the check that no location ρ″ has KindA(ρ″) in VA and
// KindB(ρ″) in VB simultaneously. The confine checking rule uses it
// for "no location read by e₁ is written/allocated by e₂".
type PairNotIn struct {
	KindA Kind
	VA    Var
	KindB Kind
	VB    Var
	Site  source.Span
	What  string
}

// Trigger is the antecedent of a conditional constraint.
type Trigger interface{ trigger() }

// LocIn fires when an atom of any kind over Loc enters V.
type LocIn struct {
	Loc locs.Loc
	V   Var
}

// AtomIn fires when the specific atom Kind(Loc) enters V.
type AtomIn struct {
	Kind Kind
	Loc  locs.Loc
	V    Var
}

// KindIn fires when an atom of kind Kind (over any location) enters
// V. It implements the paper's "∀ρ″. write(ρ″) ∈ L₁ ⇒ …" premises.
type KindIn struct {
	Kind Kind
	V    Var
}

// PairIn fires for each location ρ″ such that an atom KindA(ρ″) is in
// VA and an atom KindB(ρ″) is in VB. It implements the premises
// "∀ρ″. read(ρ″) ∈ L₁ ∧ write(ρ″) ∈ L₂ ⇒ …".
type PairIn struct {
	KindA Kind
	VA    Var
	KindB Kind
	VB    Var
}

func (LocIn) trigger()  {}
func (AtomIn) trigger() {}
func (KindIn) trigger() {}
func (PairIn) trigger() {}

// Action is the consequent of a conditional constraint.
type Action interface{ action() }

// ActUnify unifies two locations (the "then ρ = ρ′" consequents).
type ActUnify struct {
	A, B locs.Loc
}

// ActIncl adds the inclusion From ⊆ To (the "then L₁ ⊆ π′"
// consequents).
type ActIncl struct {
	From Var
	To   Var
}

// ActAddAtom adds the atom A to V. Paired with an AtomIn trigger it
// implements "X(ρ′) ∈ L₂ ⇒ {X(ρ)} ⊆ π": the extra effect on the
// restricted location in the conclusion of (Restrict), made
// conditional for inference (Sections 5 and 6).
type ActAddAtom struct {
	A Atom
	V Var
}

func (ActUnify) action()   {}
func (ActIncl) action()    {}
func (ActAddAtom) action() {}

// Cond is one conditional constraint: when Trigger fires, all Actions
// run. Reason describes the condition for diagnostics (e.g. "ρ used
// in restrict body" or "confined expression written in scope").
type Cond struct {
	Trigger Trigger
	Actions []Action
	Reason  string
	// Tag optionally links the conditional to an inference candidate
	// for reporting. Zero means untagged.
	Tag int
}

// ---------------------------------------------------------------------
// System

// varName is a lazily concatenated diagnostic label. Inference mints
// tens of thousands of variables whose names are only ever read when
// a diagnostic prints, so the pieces ("esc(", name, ")") are stored
// unjoined and assembled on demand by VarName.
type varName struct {
	pre, mid, suf string
}

// System accumulates the constraints generated by one inference run.
type System struct {
	Locs *locs.Store

	varNames []varName

	// Incls holds general inclusion constraints (unions,
	// intersections). The two overwhelmingly common forms — ε₁ ⊆ ε₂
	// and {a} ⊆ ε — are kept in dense side-lists instead, so the
	// builder hot path appends a small struct rather than boxing an
	// Expr, and Normalize emits their norms directly.
	Incls      []Incl
	VarIncls   []VarIncl
	AtomIncls  []AtomIncl
	NotIns     []NotIn
	KindNotIns []KindNotIn
	PairNotIns []PairNotIn
	Conds      []*Cond

	// Malformed records inclusion constraints Normalize could not
	// decompose (an Expr implementation outside the five grammar
	// forms). The constraints are dropped rather than panicking, so
	// one broken module cannot take down a corpus run; callers that
	// own a Diagnostics should surface these as positioned
	// internal-error diagnostics and fail the module.
	Malformed []MalformedExpr
}

// MalformedExpr describes one undecomposable inclusion constraint.
type MalformedExpr struct {
	// Desc is the dynamic type of the offending expression node.
	Desc string
	// V is the constraint's right-hand effect variable.
	V Var
	// Site is the source construct that generated the constraint
	// (NoSpan when the constraint was added without one).
	Site source.Span
}

// ReportMalformed records one positioned internal-error diagnostic
// per dropped constraint. It is the single rendering of this failure
// shared by every pipeline driver (core, confine): a healthy build
// never produces malformed constraints, so when one appears the
// wording — and the phase it is filed under — must not depend on
// which entry point noticed it. It reports whether anything was
// recorded.
func ReportMalformed(ds *source.Diagnostics, f *source.File, mal []MalformedExpr) bool {
	for _, x := range mal {
		ds.Errorf(f, x.Site, "effects",
			"internal error: unknown effect expression %s in a constraint on ε%d (constraint dropped)",
			x.Desc, int(x.V))
	}
	return len(mal) > 0
}

// VarIncl is the dense representation of From ⊆ To.
type VarIncl struct {
	From, To Var
}

// AtomIncl is the dense representation of {A} ⊆ V.
type AtomIncl struct {
	A Atom
	V Var
}

// NewSystem returns an empty system over the given location store.
func NewSystem(ls *locs.Store) *System {
	return &System{Locs: ls}
}

// NumVars returns the number of effect variables created.
func (s *System) NumVars() int { return len(s.varNames) }

// VarName returns the diagnostic name of v.
func (s *System) VarName(v Var) string {
	if v < 0 || int(v) >= len(s.varNames) {
		return fmt.Sprintf("ε%d", v)
	}
	n := s.varNames[v]
	if n.pre == "" && n.suf == "" {
		return n.mid
	}
	return n.pre + n.mid + n.suf
}

// Fresh creates a new effect variable.
func (s *System) Fresh(name string) Var {
	return s.FreshN("", name, "")
}

// Reserve pre-sizes the variable table and the dense inclusion lists
// for roughly vars variables and incls inclusions, so a caller that
// can estimate the system's size (inference knows the expression
// count) avoids growth reallocation on the hot path. Estimates may be
// exceeded freely; growth then proceeds normally.
func (s *System) Reserve(vars, incls int) {
	if cap(s.varNames) < vars {
		grown := make([]varName, len(s.varNames), vars)
		copy(grown, s.varNames)
		s.varNames = grown
	}
	if cap(s.VarIncls) < incls {
		grown := make([]VarIncl, len(s.VarIncls), incls)
		copy(grown, s.VarIncls)
		s.VarIncls = grown
	}
	if cap(s.AtomIncls) < incls/2 {
		grown := make([]AtomIncl, len(s.AtomIncls), incls/2)
		copy(grown, s.AtomIncls)
		s.AtomIncls = grown
	}
}

// FreshN creates a new effect variable whose diagnostic name is
// pre+mid+suf, deferring the concatenation until VarName is called.
func (s *System) FreshN(pre, mid, suf string) Var {
	v := Var(len(s.varNames))
	s.varNames = append(s.varNames, varName{pre: pre, mid: mid, suf: suf})
	return v
}

// AddIncl records L ⊆ v. The common single-variable and single-atom
// forms are routed to their dense lists.
func (s *System) AddIncl(l Expr, v Var) {
	s.AddInclAt(l, v, source.NoSpan)
}

// AddInclAt records L ⊆ v tagged with the source span that generated
// the constraint (used to position internal-error diagnostics).
func (s *System) AddInclAt(l Expr, v Var, site source.Span) {
	switch l := l.(type) {
	case Empty:
		return
	case VarRef:
		s.AddVarIncl(l.V, v)
	case AtomExpr:
		s.AddAtom(l.A, v)
	default:
		s.Incls = append(s.Incls, Incl{L: l, V: v, Site: site})
	}
}

// AddAtom records {a} ⊆ v.
func (s *System) AddAtom(a Atom, v Var) {
	s.AtomIncls = append(s.AtomIncls, AtomIncl{A: a, V: v})
}

// AddVarIncl records from ⊆ to.
func (s *System) AddVarIncl(from, to Var) {
	if from == to {
		return
	}
	s.VarIncls = append(s.VarIncls, VarIncl{From: from, To: to})
}

// AddNotIn records the check ρ ∉ v.
func (s *System) AddNotIn(loc locs.Loc, v Var, site source.Span, what string) {
	s.NotIns = append(s.NotIns, NotIn{Loc: loc, V: v, Site: site, What: what})
}

// AddKindNotIn records the check "no Kind atom in v".
func (s *System) AddKindNotIn(k Kind, v Var, site source.Span, what string) {
	s.KindNotIns = append(s.KindNotIns, KindNotIn{Kind: k, V: v, Site: site, What: what})
}

// AddPairNotIn records the check "no ρ″ with ka(ρ″) ∈ va and
// kb(ρ″) ∈ vb".
func (s *System) AddPairNotIn(ka Kind, va Var, kb Kind, vb Var, site source.Span, what string) {
	s.PairNotIns = append(s.PairNotIns, PairNotIn{KindA: ka, VA: va, KindB: kb, VB: vb, Site: site, What: what})
}

// AddCond records a conditional constraint.
func (s *System) AddCond(c *Cond) {
	s.Conds = append(s.Conds, c)
}

// ---------------------------------------------------------------------
// Normalization (Figure 4b)

// Norm is a normal-form inclusion constraint: either M ⊆ ε or
// M₁ ∩ M₂ ⊆ ε where M is an atom or a variable.
type Norm struct {
	// Left is the sole operand (Inter == false) or the left operand.
	Left M
	// Right is the right ∩ operand when Inter is set.
	Right M
	Inter bool
	V     Var
}

// M is an atom-or-variable operand of a normal-form constraint.
type M struct {
	IsAtom bool
	A      Atom
	V      Var
}

// AtomM wraps an atom operand.
func AtomM(a Atom) M { return M{IsAtom: true, A: a} }

// VarM wraps a variable operand.
func VarM(v Var) M { return M{V: v} }

func (m M) String() string {
	if m.IsAtom {
		return m.A.String()
	}
	return fmt.Sprintf("ε%d", m.V)
}

// Normalize rewrites the system's inclusion constraints into normal
// form following Figure 4b:
//
//	∅ ⊆ ε                 → (drop)
//	(L₁ ∪ L₂) ⊆ ε         → L₁ ⊆ ε, L₂ ⊆ ε
//	(∅ ∩ L) ⊆ ε           → (drop)          (and symmetrically)
//	((L₁ ∪ L₂) ∩ L) ⊆ ε   → ε′ ∩ L ⊆ ε, L₁ ∪ L₂ ⊆ ε′   (ε′ fresh)
//	(L ∩ (L₁ ∪ L₂)) ⊆ ε   → L ∩ ε′ ⊆ ε, L₁ ∪ L₂ ⊆ ε′   (ε′ fresh)
//
// Nested intersections ((L₁∩L₂)∩L ⊆ ε) are likewise hoisted through a
// fresh variable; the paper notes they never arise once (Down) is
// merged into the function rule, but handling them keeps Normalize
// total. The rules preserve least solutions (not arbitrary
// solutions), which is all satisfiability testing needs.
func (s *System) Normalize() []Norm {
	out, _ := s.NormalizeInto(nil, nil)
	return out
}

// NormalizeInto is Normalize writing into caller-owned buffers: norms
// receives the normal form (truncated first) and work is the
// decomposition worklist. Both are returned with their final
// capacity so a pooled solver can reuse them across solves instead of
// reallocating per call.
func (s *System) NormalizeInto(norms []Norm, work []Incl) ([]Norm, []Incl) {
	// Nearly every inclusion yields exactly one norm; unions add a few
	// more. Sizing to the input avoids repeated regrowth on big systems.
	out := norms[:0]
	if cap(out) == 0 {
		out = make([]Norm, 0, len(s.Incls)+len(s.VarIncls)+len(s.AtomIncls))
	}
	s.Malformed = s.Malformed[:0] // Normalize may run more than once (e.g. differential tests)
	work = append(work[:0], s.Incls...)
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		switch l := in.L.(type) {
		case Empty:
			// drop
		case AtomExpr:
			out = append(out, Norm{Left: AtomM(l.A), V: in.V})
		case VarRef:
			if l.V != in.V {
				out = append(out, Norm{Left: VarM(l.V), V: in.V})
			}
		case Union:
			work = append(work,
				Incl{L: l.L, V: in.V, Site: in.Site},
				Incl{L: l.R, V: in.V, Site: in.Site})
		case Inter:
			lm, lok := s.asM(l.L, &work, in.Site)
			rm, rok := s.asM(l.R, &work, in.Site)
			if !lok || !rok {
				// One side was ∅: the whole intersection is empty.
				continue
			}
			out = append(out, Norm{Left: lm, Right: rm, Inter: true, V: in.V})
		default:
			// An expression form outside the grammar is an internal
			// invariant breach (inference only builds the five forms
			// above). Drop the constraint and record it so the caller
			// can fail this module with a positioned diagnostic —
			// panicking here used to kill a whole 589-module run.
			s.Malformed = append(s.Malformed, MalformedExpr{
				Desc: fmt.Sprintf("%T", in.L),
				V:    in.V,
				Site: in.Site,
			})
		}
	}
	// The dense lists are already in M ⊆ ε form. Reverse creation
	// order matches the LIFO decomposition above, preserving the edge
	// layout (and so the propagation schedule) of the pre-split
	// builder.
	for i := len(s.VarIncls) - 1; i >= 0; i-- {
		vi := s.VarIncls[i]
		out = append(out, Norm{Left: VarM(vi.From), V: vi.To})
	}
	for i := len(s.AtomIncls) - 1; i >= 0; i-- {
		ai := s.AtomIncls[i]
		out = append(out, Norm{Left: AtomM(ai.A), V: ai.V})
	}
	return out, work
}

// asM reduces an intersection operand to atom-or-variable form,
// hoisting unions and nested intersections through a fresh variable
// (second-to-last rules of Figure 4b). The bool is false for ∅.
func (s *System) asM(e Expr, work *[]Incl, site source.Span) (M, bool) {
	switch e := e.(type) {
	case Empty:
		return M{}, false
	case AtomExpr:
		return AtomM(e.A), true
	case VarRef:
		return VarM(e.V), true
	default: // Union, Inter, or a malformed node caught on the next pop
		fresh := s.Fresh("norm")
		*work = append(*work, Incl{L: e, V: fresh, Site: site})
		return VarM(fresh), true
	}
}
