package effects

// Regression test for the fault-containment fix: Normalize used to
// panic on an Expr implementation outside the five grammar forms,
// killing whole corpus runs. It now drops the constraint and records
// it in System.Malformed for a positioned diagnostic.

import (
	"testing"

	"localalias/internal/locs"
	"localalias/internal/source"
)

// rogueExpr stands in for a future Expr form Normalize was never
// taught to decompose.
type rogueExpr struct{}

func (rogueExpr) effString() string { return "rogue" }

func TestNormalizeMalformedExprIsContained(t *testing.T) {
	ls := locs.NewStore()
	sys := NewSystem(ls)
	v := sys.Fresh("v")
	w := sys.Fresh("w")
	rho := ls.Fresh("rho")
	site := source.Span{Start: 7, End: 12}

	// A healthy constraint, a malformed one, and a malformed node
	// nested under a union (exercising site propagation through the
	// decomposition work list).
	sys.AddAtom(Atom{Kind: Read, Loc: rho}, v)
	sys.AddInclAt(rogueExpr{}, w, site)
	sys.AddInclAt(Union{L: VarRef{V: v}, R: rogueExpr{}}, w, site)

	var norms []Norm
	func() {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Normalize panicked: %v", p)
			}
		}()
		norms = sys.Normalize()
	}()

	if len(sys.Malformed) != 2 {
		t.Fatalf("Malformed = %+v, want 2 records", sys.Malformed)
	}
	for _, m := range sys.Malformed {
		if m.Desc != "effects.rogueExpr" {
			t.Errorf("Desc = %q, want effects.rogueExpr", m.Desc)
		}
		if m.V != w {
			t.Errorf("V = %v, want %v", m.V, w)
		}
		if m.Site != site {
			t.Errorf("Site = %+v, want %+v", m.Site, site)
		}
	}

	// The well-formed constraints survive: {read(rho)} ⊆ v and, from
	// the union's good branch, v ⊆ w.
	var sawAtom, sawVar bool
	for _, n := range norms {
		if n.Left.IsAtom && n.Left.A == (Atom{Kind: Read, Loc: rho}) && n.V == v {
			sawAtom = true
		}
		if !n.Left.IsAtom && n.Left.V == v && n.V == w {
			sawVar = true
		}
	}
	if !sawAtom || !sawVar {
		t.Errorf("well-formed norms missing (atom=%v var=%v): %+v", sawAtom, sawVar, norms)
	}

	// Normalize is idempotent on the record list (it resets rather
	// than double-appending when run twice, as differential tests do).
	sys.Normalize()
	if len(sys.Malformed) != 2 {
		t.Fatalf("second Normalize duplicated records: %d", len(sys.Malformed))
	}
}
