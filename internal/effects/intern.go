package effects

// ID is the dense index of an interned Atom. The solver works almost
// exclusively in ID space: effect-variable solution sets and
// intersection-node gate sets are bitsets over IDs, and propagation
// moves int32 indices instead of hashing Atom structs.
type ID int32

// NoID is the absent atom ID.
const NoID ID = -1

// Interner assigns stable dense IDs to Atom values. IDs are assigned
// in first-intern order, so two runs that intern the same atom
// sequence produce identical numberings — which keeps solver
// statistics and diagnostics deterministic.
//
// The interner does not canonicalize locations itself: callers intern
// atoms whose Loc they have already resolved via locs.Store.Find, and
// after a later unification the same kind×class may legitimately be
// re-interned under the new representative. Stale IDs stay in the
// table — solution sets are read through Find, so the solver leaves
// them in place and only re-examines the intersection gates that hold
// one (see solve.recanonicalize).
type Interner struct {
	ids   map[Atom]ID
	atoms []Atom
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Atom]ID)}
}

// NewInternerSized returns an empty interner pre-sized for about n
// atoms, avoiding map rehashing when the caller can bound the count
// (the solver uses the location-store size).
func NewInternerSized(n int) *Interner {
	return &Interner{
		ids:   make(map[Atom]ID, n),
		atoms: make([]Atom, 0, n),
	}
}

// Intern returns the ID of a, assigning the next dense ID on first
// sight.
func (in *Interner) Intern(a Atom) ID {
	if id, ok := in.ids[a]; ok {
		return id
	}
	id := ID(len(in.atoms))
	in.ids[a] = id
	in.atoms = append(in.atoms, a)
	return id
}

// Lookup returns the ID of a, or NoID if a has never been interned.
func (in *Interner) Lookup(a Atom) (ID, bool) {
	id, ok := in.ids[a]
	if !ok {
		return NoID, false
	}
	return id, true
}

// Atom returns the atom with the given ID.
func (in *Interner) Atom(id ID) Atom { return in.atoms[id] }

// Reset empties the interner while keeping its table and slice
// capacity, so a pooled solver can reuse one interner across solves
// without re-growing the map. IDs restart from zero.
func (in *Interner) Reset() {
	clear(in.ids)
	in.atoms = in.atoms[:0]
}

// Len returns the number of distinct atoms interned.
func (in *Interner) Len() int { return len(in.atoms) }
