package effects

// Property test for Figure 4b: normalization preserves the meaning of
// arbitrarily nested effect expressions. We build random acyclic
// systems — layer 0 variables get literal atom sets, and each deeper
// constraint includes a random expression tree over earlier layers in
// a fresh variable — evaluate the trees directly (the denotational
// reading of ∪ and the kind-respecting ∩), and compare against the
// least solution of the normalized constraints computed by a naive
// fixpoint evaluator.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localalias/internal/locs"
)

// directEval computes the denotation of e given base var sets.
func directEval(ls *locs.Store, e Expr, sets map[Var]map[Atom]bool) map[Atom]bool {
	out := map[Atom]bool{}
	switch e := e.(type) {
	case Empty:
	case AtomExpr:
		a := e.A
		a.Loc = ls.Find(a.Loc)
		out[a] = true
	case VarRef:
		for a := range sets[e.V] {
			out[a] = true
		}
	case Union:
		for a := range directEval(ls, e.L, sets) {
			out[a] = true
		}
		for a := range directEval(ls, e.R, sets) {
			out[a] = true
		}
	case Inter:
		left := directEval(ls, e.L, sets)
		right := directEval(ls, e.R, sets)
		rightLocs := map[locs.Loc]bool{}
		for a := range right {
			rightLocs[ls.Find(a.Loc)] = true
		}
		for a := range left {
			if rightLocs[ls.Find(a.Loc)] {
				out[a] = true
			}
		}
	}
	return out
}

// fixpointNorms evaluates normalized constraints to a least fixpoint
// (independent of the solve package).
func fixpointNorms(ls *locs.Store, norms []Norm, nvars int) []map[Atom]bool {
	sets := make([]map[Atom]bool, nvars)
	for i := range sets {
		sets[i] = map[Atom]bool{}
	}
	evalM := func(m M) map[Atom]bool {
		if m.IsAtom {
			a := m.A
			a.Loc = ls.Find(a.Loc)
			return map[Atom]bool{a: true}
		}
		return sets[m.V]
	}
	for changed := true; changed; {
		changed = false
		for _, n := range norms {
			src := evalM(n.Left)
			if n.Inter {
				rightLocs := map[locs.Loc]bool{}
				for a := range evalM(n.Right) {
					rightLocs[ls.Find(a.Loc)] = true
				}
				filtered := map[Atom]bool{}
				for a := range src {
					if rightLocs[ls.Find(a.Loc)] {
						filtered[a] = true
					}
				}
				src = filtered
			}
			for a := range src {
				if !sets[n.V][a] {
					sets[n.V][a] = true
					changed = true
				}
			}
		}
	}
	return sets
}

// randomExpr builds an expression tree over the given vars/locs.
func randomExpr(r *rand.Rand, vars []Var, rhos []locs.Loc, depth int) Expr {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Empty{}
		case 1:
			return AtomExpr{A: Atom{Kind: Kind(r.Intn(4)), Loc: rhos[r.Intn(len(rhos))]}}
		default:
			if len(vars) == 0 {
				return Empty{}
			}
			return VarRef{V: vars[r.Intn(len(vars))]}
		}
	}
	l := randomExpr(r, vars, rhos, depth-1)
	rt := randomExpr(r, vars, rhos, depth-1)
	if r.Intn(2) == 0 {
		return Union{L: l, R: rt}
	}
	return Inter{L: l, R: rt}
}

func TestNormalizePreservesMeaningQuick(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ls := locs.NewStore()
		sys := NewSystem(ls)
		var rhos []locs.Loc
		for i := 0; i < 2+r.Intn(5); i++ {
			rhos = append(rhos, ls.Fresh("r"))
		}

		// Layer 0: seeded variables.
		base := map[Var]map[Atom]bool{}
		var layer []Var
		for i := 0; i < 2+r.Intn(4); i++ {
			v := sys.Fresh("seed")
			base[v] = map[Atom]bool{}
			for j := 0; j < r.Intn(4); j++ {
				a := Atom{Kind: Kind(r.Intn(4)), Loc: rhos[r.Intn(len(rhos))]}
				sys.AddAtom(a, v)
				base[v][a] = true
			}
			layer = append(layer, v)
		}

		// Deeper layers: each output var receives one random tree
		// over everything defined so far.
		type check struct {
			v    Var
			e    Expr
			deps []Var
		}
		var checks []check
		for d := 0; d < 1+r.Intn(3); d++ {
			e := randomExpr(r, layer, rhos, 2+r.Intn(2))
			v := sys.Fresh("out")
			sys.AddIncl(e, v)
			checks = append(checks, check{v: v, e: e})
			layer = append(layer, v)
		}

		norms := sys.Normalize()
		sets := fixpointNorms(ls, norms, sys.NumVars())

		// Evaluate trees directly, in definition order (acyclic).
		direct := map[Var]map[Atom]bool{}
		for v, s := range base {
			direct[v] = s
		}
		for _, c := range checks {
			direct[c.v] = directEval(ls, c.e, direct)
		}

		for _, c := range checks {
			want := direct[c.v]
			got := sets[c.v]
			if len(want) != len(got) {
				t.Logf("seed %d: var %d: got %d atoms want %d (%s)",
					seed, c.v, len(got), len(want), String(c.e))
				return false
			}
			for a := range want {
				if !got[a] {
					t.Logf("seed %d: var %d missing %v", seed, c.v, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
