package effects

import (
	"testing"

	"localalias/internal/locs"
)

func TestInternerDenseStableIDs(t *testing.T) {
	ls := locs.NewStore()
	r1, r2 := ls.Fresh("r1"), ls.Fresh("r2")
	in := NewInterner()

	a := Atom{Kind: Read, Loc: r1}
	b := Atom{Kind: Write, Loc: r1}
	c := Atom{Kind: Read, Loc: r2}

	ida, idb, idc := in.Intern(a), in.Intern(b), in.Intern(c)
	if ida != 0 || idb != 1 || idc != 2 {
		t.Fatalf("IDs must be dense in first-intern order: %d %d %d", ida, idb, idc)
	}
	if in.Intern(a) != ida || in.Intern(c) != idc {
		t.Fatal("re-interning must return the same ID")
	}
	if in.Len() != 3 {
		t.Fatalf("Len = %d, want 3", in.Len())
	}
	if in.Atom(idb) != b {
		t.Fatalf("Atom(%d) = %v, want %v", idb, in.Atom(idb), b)
	}
	if id, ok := in.Lookup(b); !ok || id != idb {
		t.Fatal("Lookup must find interned atoms")
	}
	if _, ok := in.Lookup(Atom{Kind: Alloc, Loc: r2}); ok {
		t.Fatal("Lookup must miss never-interned atoms")
	}
}

func TestInternerDistinguishesKindAndLoc(t *testing.T) {
	ls := locs.NewStore()
	r := ls.Fresh("r")
	in := NewInterner()
	seen := map[ID]bool{}
	for k := LocAtom; k <= Alloc; k++ {
		id := in.Intern(Atom{Kind: k, Loc: r})
		if seen[id] {
			t.Fatalf("kind %v collided", k)
		}
		seen[id] = true
	}
}
