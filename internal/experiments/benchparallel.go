package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"testing"

	"localalias/internal/core"
	"localalias/internal/drivergen"
	"localalias/internal/infer"
	"localalias/internal/solve"
)

// This file measures the component-partitioned parallel solver and its
// pooled per-worker arenas (docs/ALGORITHMS.md "Component-partitioned
// solving") against the pre-PR execution profile. The "before" side of
// every pair runs the sequential propagation loop with pooling disabled
// (solve.SetPooling(false)) — the organic-allocation behavior the solver
// had before the scratch/retained pools existed — so one binary measures
// both sides interleaved, the same methodology BENCH_solver.json and
// BENCH_obs.json use.

// BenchSolverSolveOnly measures the steady-state constraint solve in
// isolation: every iteration rebuilds the constraint system with the
// timer (and allocation accounting) stopped, then times exactly
// solve+Release. This is the number the pools exist to improve — in a
// resident daemon the per-request cost is the solve, not the one-time
// module load — and the allocs/op it reports is the solver's own,
// not inference's. pooled toggles the scratch/retained pools; workers
// bounds the partitioned solver's concurrency (<= 1 is the sequential
// drain loop).
func BenchSolverSolveOnly(b *testing.B, pooled bool, workers int) {
	src := ScalingProgram(200, 0)
	mod, err := core.LoadModule("scale.mc", src)
	if err != nil {
		benchFatal(b, err)
		return
	}
	prev := solve.SetPooling(pooled)
	defer solve.SetPooling(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		res := infer.Run(mod.TInfo, mod.Diags, infer.Options{InferRestrictLets: true})
		b.StartTimer()
		sol := solve.SolveWorkers(nil, res.Sys, workers)
		if sol.AtomsPropagated == 0 {
			benchFatal(b, fmt.Errorf("solver propagated no atoms on the scaling program"))
			return
		}
		sol.Release()
	}
}

// BenchCorpusParallel runs the full 589-module corpus with GOMAXPROCS
// pinned to procs and the per-module partitioned solver bounded at
// workers goroutines. pooled selects the scratch/retained pools.
// Corpus-level parallelism (one worker per CPU, across modules) and
// solver-level parallelism (within one module's solves) compose; this
// benchmark varies the scheduler's parallelism budget underneath both.
func BenchCorpusParallel(b *testing.B, procs, workers int, pooled bool) {
	prevProcs := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prevProcs)
	prevPool := solve.SetPooling(pooled)
	defer solve.SetPooling(prevPool)
	specs := drivergen.Corpus()
	var res *CorpusResult
	for i := 0; i < b.N; i++ {
		res = RunCorpus(context.Background(), CorpusOptions{Specs: specs, SolverWorkers: workers})
	}
	b.StopTimer()
	if res.Degraded() {
		benchFatal(b, fmt.Errorf("%d of %d modules failed or timed out", res.Failed+res.TimedOut, len(res.Modules)))
		return
	}
	if res.Mismatches != 0 {
		benchFatal(b, fmt.Errorf("%d corpus mismatches", res.Mismatches))
		return
	}
}

// ParallelBenchEntry is one before/after pair in BENCH_parallel.json.
// The runs alternate (before, after, before, after, ...) so shared-VM
// load drift hits both sides equally; index i of the before and after
// arrays is one interleaved pair.
type ParallelBenchEntry struct {
	Name string `json:"name"`
	// Before/After describe the two configurations in words.
	Before string `json:"before"`
	After  string `json:"after"`

	BeforeNsPerOp []int64 `json:"before_ns_per_op"`
	AfterNsPerOp  []int64 `json:"after_ns_per_op"`

	BeforeAllocsPerOp []int64 `json:"before_allocs_per_op"`
	AfterAllocsPerOp  []int64 `json:"after_allocs_per_op"`

	// PairwiseSpeedups is before/after ns per op, per interleaved pair.
	PairwiseSpeedups []float64 `json:"pairwise_speedups"`
	MedianSpeedup    float64   `json:"median_speedup"`
	// AllocsReduction is median(before allocs) / median(after allocs);
	// 0 when the after side allocates nothing.
	AllocsReduction float64 `json:"allocs_reduction,omitempty"`
}

// ParallelBenchReport is the top-level shape of BENCH_parallel.json.
type ParallelBenchReport struct {
	Description string `json:"description"`
	Platform    string `json:"platform"`
	// NumCPU is the host's hardware parallelism at measurement time.
	// Wall-clock scaling across the gomaxprocs entries is only
	// observable when NumCPU covers the requested GOMAXPROCS; on a
	// single-hardware-thread host the parallel rows bound scheduling
	// overhead instead. HardwareNote spells this out when NumCPU is
	// below the largest GOMAXPROCS swept.
	NumCPU       int                   `json:"num_cpu"`
	HardwareNote string                `json:"hardware_note,omitempty"`
	Benchmarks   []*ParallelBenchEntry `json:"benchmarks"`
}

// corpusGomaxprocs are the scheduler parallelism levels the corpus
// pairs sweep, per the benchmark plan (sequential vs parallel at
// GOMAXPROCS 1/2/4).
var corpusGomaxprocs = []int{1, 2, 4}

// parallelBenchRounds is how many interleaved before/after pairs each
// entry records.
const parallelBenchRounds = 3

// runPair runs one interleaved before/after pair sequence and fills in
// the entry's measurements and derived ratios.
func runPair(name, beforeDesc, afterDesc string, rounds int, before, after func(*testing.B), progress io.Writer) (*ParallelBenchEntry, error) {
	e := &ParallelBenchEntry{Name: name, Before: beforeDesc, After: afterDesc}
	run := func(fn func(*testing.B)) (testing.BenchmarkResult, error) {
		benchErr = nil
		r := testing.Benchmark(fn)
		if r.N == 0 {
			underlying := benchErr
			if underlying == nil {
				underlying = fmt.Errorf("benchmark body aborted without reporting a cause")
			}
			return r, fmt.Errorf("benchmark %s failed after zero iterations: %w", name, underlying)
		}
		return r, nil
	}
	for i := 0; i < rounds; i++ {
		rb, err := run(before)
		if err != nil {
			return nil, err
		}
		ra, err := run(after)
		if err != nil {
			return nil, err
		}
		e.BeforeNsPerOp = append(e.BeforeNsPerOp, rb.NsPerOp())
		e.AfterNsPerOp = append(e.AfterNsPerOp, ra.NsPerOp())
		e.BeforeAllocsPerOp = append(e.BeforeAllocsPerOp, rb.AllocsPerOp())
		e.AfterAllocsPerOp = append(e.AfterAllocsPerOp, ra.AllocsPerOp())
		if ra.NsPerOp() > 0 {
			e.PairwiseSpeedups = append(e.PairwiseSpeedups,
				round2(float64(rb.NsPerOp())/float64(ra.NsPerOp())))
		}
		if progress != nil {
			fmt.Fprintf(progress, "  %s: pair %d/%d  before %d ns/op (%d allocs)  after %d ns/op (%d allocs)\n",
				name, i+1, rounds, rb.NsPerOp(), rb.AllocsPerOp(), ra.NsPerOp(), ra.AllocsPerOp())
		}
	}
	e.MedianSpeedup = round2(median(e.PairwiseSpeedups))
	ba, aa := medianInt(e.BeforeAllocsPerOp), medianInt(e.AfterAllocsPerOp)
	if aa > 0 {
		e.AllocsReduction = round2(float64(ba) / float64(aa))
	}
	return e, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func medianInt(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

// RunParallelBenchJSON runs the parallel-solver benchmark suite —
// steady-state solve allocs/op with pooling off vs on, and the full
// corpus with the sequential pre-PR profile vs the pooled partitioned
// solver at GOMAXPROCS 1/2/4 — and renders BENCH_parallel.json.
// progress (when non-nil) receives one line per interleaved pair.
func RunParallelBenchJSON(progress io.Writer) ([]byte, error) {
	rep := &ParallelBenchReport{
		Description: "Before/after comparison for the component-partitioned parallel solver " +
			"with pooled per-worker arenas. 'before' is the sequential propagation loop with " +
			"pooling disabled (solve.SetPooling(false)) — the organic-allocation profile the " +
			"solver had before this change; 'after' is the pooled solver, sequential or " +
			"partitioned as named. Both sides run in one binary, interleaved " +
			"(before, after, before, after, ...), so shared-VM load drift hits both equally; " +
			"compare pairwise ratios, not absolute numbers. The steady-state-solve entries " +
			"time exactly solve+Release (the constraint system is rebuilt with the timer and " +
			"allocation accounting stopped), which is the per-request cost a resident " +
			"`lna serve` daemon pays. Regenerate with: " +
			"go run ./cmd/experiments -bench-parallel-json BENCH_parallel.json",
		Platform: fmt.Sprintf("%s/%s, shared VM (expect run-to-run noise; compare interleaved pairs)",
			runtime.GOOS, runtime.GOARCH),
		NumCPU: runtime.NumCPU(),
	}
	if max := corpusGomaxprocs[len(corpusGomaxprocs)-1]; rep.NumCPU < max {
		rep.HardwareNote = fmt.Sprintf(
			"measured on a %d-hardware-thread host: the partitioned (workers-4 and gomaxprocs-N) "+
				"rows bound scheduling overhead rather than demonstrating scaling — wall-clock speedup "+
				"from solver parallelism requires at least as many hardware threads as workers. "+
				"The pooled sequential row (the daemon default) is hardware-independent; regenerate on "+
				"a >=%d-core host to observe the parallel scaling.", rep.NumCPU, max)
	}

	type spec struct {
		name, before, after string
		fnBefore, fnAfter   func(*testing.B)
	}
	specs := []spec{
		{
			name:     "BenchmarkSolverPropagation/steady-state-solve",
			before:   "sequential solve, pooling disabled (pre-PR allocation profile)",
			after:    "sequential solve, pooled scratch/retained arenas",
			fnBefore: func(b *testing.B) { BenchSolverSolveOnly(b, false, 1) },
			fnAfter:  func(b *testing.B) { BenchSolverSolveOnly(b, true, 1) },
		},
		{
			name:     "BenchmarkSolverPropagation/steady-state-solve/workers-4",
			before:   "sequential solve, pooling disabled (pre-PR allocation profile)",
			after:    "partitioned solve at 4 workers, pooled arenas (GOMAXPROCS 4)",
			fnBefore: func(b *testing.B) { BenchSolverSolveOnly(b, false, 1) },
			fnAfter: func(b *testing.B) {
				prev := runtime.GOMAXPROCS(4)
				defer runtime.GOMAXPROCS(prev)
				BenchSolverSolveOnly(b, true, 4)
			},
		},
	}
	for _, procs := range corpusGomaxprocs {
		procs := procs
		specs = append(specs, spec{
			name:     fmt.Sprintf("BenchmarkCorpusSummary/gomaxprocs-%d", procs),
			before:   fmt.Sprintf("sequential solver, pooling disabled, GOMAXPROCS %d", procs),
			after:    fmt.Sprintf("partitioned solver at 4 workers, pooled arenas, GOMAXPROCS %d", procs),
			fnBefore: func(b *testing.B) { BenchCorpusParallel(b, procs, 1, false) },
			fnAfter:  func(b *testing.B) { BenchCorpusParallel(b, procs, 4, true) },
		})
	}
	for _, s := range specs {
		e, err := runPair(s.name, s.before, s.after, parallelBenchRounds, s.fnBefore, s.fnAfter, progress)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return json.MarshalIndent(rep, "", "  ")
}
