package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"localalias/internal/drivergen"
	"localalias/internal/modgraph"
)

// This file measures the parallel bottom-up DAG pass over the
// multi-module driver stacks (internal/modgraph) and the summary
// cache's incremental replay. Both sides of every pair run in one
// binary, interleaved (before, after, before, after, ...), the same
// methodology BENCH_parallel.json and BENCH_gateway.json use; the
// entries reuse the ParallelBenchEntry shape.

// xmoduleBenchLeaves sizes the benchmark stack. Larger than the
// experiment/table stack so the DAG has enough independent leaves for
// worker scaling to be observable above scheduling overhead.
const xmoduleBenchLeaves = 24

// xmoduleBenchRounds is how many interleaved before/after pairs each
// entry records.
const xmoduleBenchRounds = 3

// xmoduleWorkerSweep are the scheduler widths the DAG pairs compare
// against the sequential (Workers 1) baseline.
var xmoduleWorkerSweep = []int{2, 4}

func xmoduleBenchSources() []modgraph.Source {
	mods := drivergen.XStack(xmoduleBenchLeaves)
	srcs := make([]modgraph.Source, 0, len(mods))
	for _, m := range mods {
		srcs = append(srcs, modgraph.Source{Name: m.Name, Text: m.Source})
	}
	return srcs
}

// checkXmoduleRun verifies a benchmark iteration actually did the
// work: every module analyzed, and the aggregate summary triple
// matches the generator's calibrated expectation. A benchmark that
// silently analyzed a failed stack would time error paths instead.
func checkXmoduleRun(b *testing.B, res *modgraph.Result, mods []drivergen.XModule) bool {
	if f := res.Failures(); len(f) != 0 {
		benchFatal(b, fmt.Errorf("%d modules failed: %v", len(f), f))
		return false
	}
	_, want := drivergen.XStackExpected(mods)
	got := drivergen.Triple{NoConfine: res.Errors(0), Confine: res.Errors(1), AllStrong: res.Errors(2)}
	if got != want {
		benchFatal(b, fmt.Errorf("aggregate summary triple %+v, want %+v", got, want))
		return false
	}
	return true
}

// BenchXmoduleDAG times one whole-stack bottom-up pass (parse, type
// check, three-variant locking analysis, summary export for every
// module) at the given scheduler width. No cache: every iteration is
// a cold whole-program analysis.
func BenchXmoduleDAG(b *testing.B, workers int) {
	mods := drivergen.XStack(xmoduleBenchLeaves)
	srcs := xmoduleBenchSources()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := modgraph.Analyze(srcs, modgraph.Options{Workers: workers})
		if !checkXmoduleRun(b, res, mods) {
			return
		}
	}
}

// BenchXmoduleCacheReplay times the incremental path: one leaf edited
// (a comment appended, so results are unchanged), everything else a
// fingerprint hit. Each iteration's edit is unique, so the warm side
// pays exactly one leaf re-analysis plus N-1 cache hits per
// iteration; warm=false clears the cache every iteration instead —
// the from-scratch cost the cache exists to avoid. No module imports
// a leaf, so nothing is downstream of the edit.
func BenchXmoduleCacheReplay(b *testing.B, warm bool) {
	mods := drivergen.XStack(xmoduleBenchLeaves)
	srcs := xmoduleBenchSources()
	opts := modgraph.Options{Workers: 4, Cache: modgraph.NewSummaryCache()}
	// Populate the cache with the unedited stack outside the timer.
	res := modgraph.Analyze(srcs, opts)
	if !checkXmoduleRun(b, res, mods) {
		return
	}
	edited := append([]modgraph.Source(nil), srcs...)
	leaf := len(edited) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		edited[leaf].Text = srcs[leaf].Text + fmt.Sprintf("// bench edit %d\n", i)
		if !warm {
			opts.Cache = modgraph.NewSummaryCache()
		}
		b.StartTimer()
		res := modgraph.Analyze(edited, opts)
		if !checkXmoduleRun(b, res, mods) {
			return
		}
	}
}

// XmoduleBenchReport is the top-level shape of BENCH_xmodule.json.
type XmoduleBenchReport struct {
	Description string `json:"description"`
	Platform    string `json:"platform"`
	// Modules is the stack size every entry analyzes.
	Modules int `json:"modules"`
	// NumCPU is the host's hardware parallelism at measurement time;
	// see ParallelBenchReport for how to read HardwareNote.
	NumCPU       int                   `json:"num_cpu"`
	HardwareNote string                `json:"hardware_note,omitempty"`
	Benchmarks   []*ParallelBenchEntry `json:"benchmarks"`
}

// RunXmoduleBenchJSON runs the cross-module benchmark suite — the
// parallel DAG pass at 1 vs 2 and 1 vs 4 workers, and cold vs warm
// summary-cache replay of a one-leaf edit — and renders
// BENCH_xmodule.json. progress (when non-nil) receives one line per
// interleaved pair.
func RunXmoduleBenchJSON(progress io.Writer) ([]byte, error) {
	rep := &XmoduleBenchReport{
		Description: "Before/after comparison for the cross-module whole-program pass: a " +
			fmt.Sprintf("%d-module import DAG (lock header, two mid-layer libraries, %d leaf drivers) ",
				xmoduleBenchLeaves+3, xmoduleBenchLeaves) +
			"analyzed bottom-up with package summaries. The workers-N entries compare the " +
			"sequential scheduler (Workers 1) against the parallel DAG scheduler at N workers; " +
			"the cache entry compares a from-scratch re-analysis against the fingerprint-cached " +
			"replay of a one-leaf edit. Both sides run in one binary, interleaved " +
			"(before, after, before, after, ...), so shared-VM load drift hits both equally; " +
			"compare pairwise ratios, not absolute numbers. Regenerate with: " +
			"go run ./cmd/experiments -bench-xmodule-json BENCH_xmodule.json",
		Platform: fmt.Sprintf("%s/%s, shared VM (expect run-to-run noise; compare interleaved pairs)",
			runtime.GOOS, runtime.GOARCH),
		Modules: xmoduleBenchLeaves + 3,
		NumCPU:  runtime.NumCPU(),
	}
	if max := xmoduleWorkerSweep[len(xmoduleWorkerSweep)-1]; rep.NumCPU < max {
		rep.HardwareNote = fmt.Sprintf(
			"measured on a %d-hardware-thread host: the workers-N rows bound scheduling overhead "+
				"rather than demonstrating scaling — wall-clock speedup from DAG parallelism requires "+
				"at least as many hardware threads as workers. The cache-replay row is "+
				"hardware-independent; regenerate on a >=%d-core host to observe the parallel scaling.",
			rep.NumCPU, max)
	}

	type spec struct {
		name, before, after string
		fnBefore, fnAfter   func(*testing.B)
	}
	var specs []spec
	for _, w := range xmoduleWorkerSweep {
		w := w
		specs = append(specs, spec{
			name:     fmt.Sprintf("BenchmarkXmoduleDAG/workers-%d", w),
			before:   "sequential bottom-up pass (Workers 1)",
			after:    fmt.Sprintf("parallel DAG scheduler at %d workers", w),
			fnBefore: func(b *testing.B) { BenchXmoduleDAG(b, 1) },
			fnAfter:  func(b *testing.B) { BenchXmoduleDAG(b, w) },
		})
	}
	specs = append(specs, spec{
		name:     "BenchmarkXmoduleCache/one-leaf-edit",
		before:   "cold cache: every module re-analyzed after the edit",
		after:    "warm cache: fingerprint hits for all but the edited leaf",
		fnBefore: func(b *testing.B) { BenchXmoduleCacheReplay(b, false) },
		fnAfter:  func(b *testing.B) { BenchXmoduleCacheReplay(b, true) },
	})
	for _, s := range specs {
		e, err := runPair(s.name, s.before, s.after, xmoduleBenchRounds, s.fnBefore, s.fnAfter, progress)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return json.MarshalIndent(rep, "", "  ")
}
