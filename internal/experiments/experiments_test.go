package experiments

import (
	"context"
	"strings"
	"testing"

	"localalias/internal/drivergen"
)

// sampleSpecs picks a stratified sample across categories so the test
// stays fast; TestFullCorpus (guarded by -short) covers everything.
func sampleSpecs() []*drivergen.ModuleSpec {
	corpus := drivergen.Corpus()
	var out []*drivergen.ModuleSpec
	for i, m := range corpus {
		switch m.Category {
		case drivergen.Clean:
			if i%30 == 0 {
				out = append(out, m)
			}
		case drivergen.BugsOnly:
			if i%10 == 0 {
				out = append(out, m)
			}
		case drivergen.FullRecovery:
			if i%8 == 0 {
				out = append(out, m)
			}
		case drivergen.Partial:
			out = append(out, m)
		}
	}
	return out
}

func TestSampleCorpusMatchesExpectations(t *testing.T) {
	specs := sampleSpecs()
	res := RunCorpus(context.Background(), CorpusOptions{Specs: specs})
	if res.Mismatches != 0 {
		for _, m := range res.Modules {
			if m.Err != nil {
				t.Errorf("%s: %v", m.Spec.Name, m.Err)
			} else if m.Measured != m.Spec.Expected {
				t.Errorf("%s (%s): measured %+v expected %+v",
					m.Spec.Name, m.Spec.Category, m.Measured, m.Spec.Expected)
			}
		}
		t.Fatalf("%d mismatches in sample", res.Mismatches)
	}
}

func TestFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full 589-module corpus (use the default long mode or cmd/experiments)")
	}
	res := RunCorpus(context.Background(), CorpusOptions{Specs: drivergen.Corpus()})
	if res.Mismatches != 0 {
		n := 0
		for _, m := range res.Modules {
			if m.Err != nil || m.Measured != m.Spec.Expected {
				t.Errorf("%s: err=%v measured %+v expected %+v",
					m.Spec.Name, m.Err, m.Measured, m.Spec.Expected)
				n++
				if n > 10 {
					break
				}
			}
		}
		t.Fatalf("%d mismatches", res.Mismatches)
	}
	// The paper's headline numbers, measured end to end.
	if res.Clean != 352 || res.ErrorsNoHelp != 85 || res.StrongMatters != 152 ||
		res.FullyRecov != 138 || res.PartialRecov != 14 {
		t.Errorf("breakdown: clean=%d nohelp=%d matters=%d full=%d partial=%d",
			res.Clean, res.ErrorsNoHelp, res.StrongMatters, res.FullyRecov, res.PartialRecov)
	}
	if res.Potential != 3277 {
		t.Errorf("potential = %d, want 3277", res.Potential)
	}
	if res.Eliminated != 3116 {
		t.Errorf("eliminated = %d, want 3116", res.Eliminated)
	}
	rate := res.EliminationRate()
	if rate < 0.945 || rate > 0.96 {
		t.Errorf("elimination rate = %.3f, want ≈0.95", rate)
	}
}

func TestRenderings(t *testing.T) {
	res := RunCorpus(context.Background(), CorpusOptions{Specs: sampleSpecs()})
	sum := res.Summary()
	for _, want := range []string{"Section 7 summary", "elimination rate", "paper"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary lacks %q:\n%s", want, sum)
		}
	}
	f6 := res.Figure6()
	if !strings.Contains(f6, "Figure 6") || !strings.Contains(f6, "modules") {
		t.Errorf("figure 6:\n%s", f6)
	}
	f7 := res.Figure7()
	for _, name := range []string{"emu10k1", "ide_tape", "wavelan_cs"} {
		if !strings.Contains(f7, name) {
			t.Errorf("figure 7 lacks %s:\n%s", name, f7)
		}
	}
}

func TestTiming(t *testing.T) {
	tr, err := Timing("ide_tape", 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.WithConfine <= 0 || tr.WithoutCfine <= 0 {
		t.Fatalf("degenerate timing: %+v", tr)
	}
	// Confine inference costs something but must stay modest — the
	// paper's ratio is ~1.10x; allow generous slack for machine
	// noise, but catch pathological blowups.
	if tr.OverheadRatio > 6 {
		t.Errorf("confine inference overhead ratio %.2f is pathological", tr.OverheadRatio)
	}
	if !strings.Contains(tr.String(), "paper: 28.5s") {
		t.Errorf("render: %s", tr)
	}
}

func TestRunCorpusDeterministic(t *testing.T) {
	specs := sampleSpecs()[:12]
	a := RunCorpus(context.Background(), CorpusOptions{Specs: specs})
	b := RunCorpus(context.Background(), CorpusOptions{Specs: specs})
	for i := range a.Modules {
		if a.Modules[i].Measured != b.Modules[i].Measured {
			t.Errorf("%s: %+v vs %+v", a.Modules[i].Spec.Name,
				a.Modules[i].Measured, b.Modules[i].Measured)
		}
	}
	if a.Potential != b.Potential || a.Eliminated != b.Eliminated {
		t.Error("aggregates differ across runs")
	}
}

func TestCSV(t *testing.T) {
	res := RunCorpus(context.Background(), CorpusOptions{Specs: sampleSpecs()[:5]})
	csv := res.CSV()
	if !strings.HasPrefix(csv, "module,category,") {
		t.Errorf("csv header: %q", csv[:40])
	}
	if strings.Count(csv, "\n") != 6 {
		t.Errorf("csv rows: %q", csv)
	}
}
