package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"time"

	"localalias/internal/bench"
	"localalias/internal/client"
	"localalias/internal/gateway"
	"localalias/internal/service"
)

// This file measures the gateway tier (PR 8) under open-loop load:
// the same workload driven through a gateway fronting one replica and
// through a gateway fronting two replicas, interleaved like the other
// benchmark artifacts so shared-VM drift hits both sides equally. The
// cold entry measures first-touch analysis through the tier; the warm
// entry replays the workload after a warm pass, which is where
// consistent-hash cache affinity either holds (every replay hits the
// replica that cached it) or falls apart.

// Gateway benchmark workload shape: enough modules that both replicas
// own a real share of the keyspace, short enough that three
// interleaved pairs finish in minutes on the 1-CPU measurement host.
const (
	gatewayBenchModules  = 120
	gatewayBenchRPS      = 150
	gatewayBenchDuration = 2 * time.Second
	gatewayBenchRounds   = 3
)

// GatewayBenchRun is one timed open-loop run through one stack.
type GatewayBenchRun struct {
	Replicas int          `json:"replicas"`
	Report   bench.Report `json:"report"`
}

// GatewayBenchPair is one interleaved round: the same workload through
// a 1-replica stack and a 2-replica stack, back to back.
type GatewayBenchPair struct {
	Single GatewayBenchRun `json:"single_replica"`
	Double GatewayBenchRun `json:"two_replicas"`
}

// GatewayBenchEntry is one workload configuration with its interleaved
// rounds.
type GatewayBenchEntry struct {
	Name string `json:"name"`
	// Warm records whether the timed run was preceded by an untimed
	// warm pass over the whole workload.
	Warm  bool               `json:"warm"`
	Pairs []GatewayBenchPair `json:"pairs"`
}

// GatewayBenchReport is the top-level shape of BENCH_gateway.json.
type GatewayBenchReport struct {
	Description string `json:"description"`
	Platform    string `json:"platform"`
	NumCPU      int    `json:"num_cpu"`
	// HardwareNote qualifies the throughput rows on hosts where the
	// replicas and the generator share one hardware thread.
	HardwareNote string `json:"hardware_note,omitempty"`

	Modules         int     `json:"modules"`
	TargetRPS       float64 `json:"target_rps"`
	DurationSeconds float64 `json:"duration_seconds"`

	Benchmarks []*GatewayBenchEntry `json:"benchmarks"`
}

// gatewayStack boots n in-process replicas and a gateway over them,
// returning a client aimed at the gateway and a teardown.
func gatewayStack(n int) (*client.Client, func(), error) {
	var closers []func()
	shutdown := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(service.NewServer(service.ServerOptions{}).Handler())
		closers = append(closers, ts.Close)
		urls[i] = ts.URL
	}
	g, err := gateway.New(gateway.Options{Backends: urls})
	if err != nil {
		shutdown()
		return nil, nil, err
	}
	gts := httptest.NewServer(g.Start().Handler())
	closers = append(closers, gts.Close, g.Shutdown)
	return client.New(gts.URL, client.Options{}), shutdown, nil
}

// runGatewayBench runs one timed open-loop pass through a fresh
// n-replica stack. Every run rebuilds its stack, so cold entries are
// cold by construction and warm entries pay their own warm pass.
func runGatewayBench(ctx context.Context, n int, reqs []service.AnalyzeRequest, warm bool) (GatewayBenchRun, error) {
	c, shutdown, err := gatewayStack(n)
	if err != nil {
		return GatewayBenchRun{}, err
	}
	defer shutdown()
	rep, err := bench.Run(ctx, bench.Options{
		Client:   c,
		RPS:      gatewayBenchRPS,
		Duration: gatewayBenchDuration,
		Requests: reqs,
		Warm:     warm,
	})
	if err != nil {
		return GatewayBenchRun{}, err
	}
	if rep.Errors > 0 {
		return GatewayBenchRun{}, fmt.Errorf("%d transport errors against an in-process %d-replica stack", rep.Errors, n)
	}
	return GatewayBenchRun{Replicas: n, Report: *rep}, nil
}

// RunGatewayBenchJSON runs the gateway load benchmarks and renders
// BENCH_gateway.json. progress (when non-nil) receives one line per
// run.
func RunGatewayBenchJSON(progress io.Writer) ([]byte, error) {
	ctx := context.Background()
	reqs := corpusRequests()[:gatewayBenchModules]
	for i := range reqs {
		reqs[i].Options.Mode = service.ModeCheck
	}
	rep := &GatewayBenchReport{
		Description: "Open-loop load through the gateway tier: the same workload (first " +
			"120 corpus modules, check mode) replayed at a fixed arrival rate through a gateway " +
			"fronting 1 replica and a gateway fronting 2 replicas, interleaved (single, double, ...) " +
			"so shared-VM load drift hits both sides equally; compare within each pair. The cold " +
			"entry measures first-touch analysis through the tier; the warm entry replays after an " +
			"untimed warm pass, so its hit_rate fields are the cache-affinity check — consistent " +
			"hashing must keep the 2-replica hit rate at the single-replica level (1.0) because " +
			"every key replays to the replica that cached it. Latencies are open-loop (arrivals " +
			"never wait for responses), so queueing under overload shows up in the tail instead of " +
			"stretching the schedule. Regenerate with: " +
			"go run ./cmd/experiments -bench-gateway-json BENCH_gateway.json",
		Platform: fmt.Sprintf("%s/%s, shared VM (expect run-to-run noise; compare interleaved pairs)",
			runtime.GOOS, runtime.GOARCH),
		NumCPU:          runtime.NumCPU(),
		Modules:         gatewayBenchModules,
		TargetRPS:       gatewayBenchRPS,
		DurationSeconds: gatewayBenchDuration.Seconds(),
	}
	if rep.NumCPU < 2 {
		rep.HardwareNote = fmt.Sprintf(
			"measured on a %d-hardware-thread host: generator, gateway, and all replicas share "+
				"the CPU, so the two_replicas rows bound tier overhead rather than demonstrating "+
				"horizontal scaling; the hit_rate (affinity) columns are hardware-independent.",
			rep.NumCPU)
	}

	entries := []struct {
		name string
		warm bool
	}{
		{"BenchmarkGateway/cold-corpus-open-loop", false},
		{"BenchmarkGateway/warm-affinity-replay", true},
	}
	for _, spec := range entries {
		e := &GatewayBenchEntry{Name: spec.name, Warm: spec.warm}
		for round := 0; round < gatewayBenchRounds; round++ {
			single, err := runGatewayBench(ctx, 1, reqs, spec.warm)
			if err != nil {
				return nil, fmt.Errorf("%s round %d (1 replica): %w", spec.name, round, err)
			}
			double, err := runGatewayBench(ctx, 2, reqs, spec.warm)
			if err != nil {
				return nil, fmt.Errorf("%s round %d (2 replicas): %w", spec.name, round, err)
			}
			e.Pairs = append(e.Pairs, GatewayBenchPair{Single: single, Double: double})
			if progress != nil {
				fmt.Fprintf(progress,
					"  %s: pair %d/%d  1-replica p50 %.3fms hit %.0f%%  2-replica p50 %.3fms hit %.0f%%\n",
					spec.name, round+1, gatewayBenchRounds,
					single.Report.LatencyMsP50, 100*single.Report.HitRate,
					double.Report.LatencyMsP50, 100*double.Report.HitRate)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return json.MarshalIndent(rep, "", "  ")
}
