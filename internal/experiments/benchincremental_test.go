package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"localalias/internal/drivergen"
)

// TestIncrementalBenchReportSchema guards the committed
// BENCH_incremental.json against drift: it must parse into the
// current report shape with no unknown fields, describe the current
// corpus and benchmark pair names, and carry the regeneration
// command. A failure means the harness changed without regenerating
// the artifact (go run ./cmd/experiments -bench-incremental-json
// BENCH_incremental.json).
func TestIncrementalBenchReportSchema(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_incremental.json"))
	if err != nil {
		t.Fatalf("reading committed benchmark report: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep IncrementalBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_incremental.json does not match the current report shape: %v", err)
	}
	if rep.Modules != drivergen.NumModules {
		t.Errorf("report covers %d modules, corpus has %d", rep.Modules, drivergen.NumModules)
	}
	if !bytes.Contains(data, []byte("go run ./cmd/experiments -bench-incremental-json")) {
		t.Error("report description lost the regeneration command")
	}
	want := map[string]bool{
		"BenchmarkIncremental/corpus-reanalyze-after-one-edit": false,
		"BenchmarkIncremental/edited-module-comment-revision":  false,
	}
	for _, b := range rep.Benchmarks {
		if _, ok := want[b.Name]; !ok {
			t.Errorf("unexpected benchmark entry %q", b.Name)
			continue
		}
		want[b.Name] = true
		if len(b.BeforeNsPerOp) != incrementalBenchRounds || len(b.AfterNsPerOp) != incrementalBenchRounds {
			t.Errorf("%s: %d/%d rounds recorded, want %d", b.Name, len(b.BeforeNsPerOp), len(b.AfterNsPerOp), incrementalBenchRounds)
		}
		if b.MedianSpeedup <= 0 {
			t.Errorf("%s: non-positive median speedup %v", b.Name, b.MedianSpeedup)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("report is missing benchmark entry %q", name)
		}
	}
	if rep.MemoStats.Hits == 0 {
		t.Error("report records no memo hits — the incremental side never replayed")
	}
}
