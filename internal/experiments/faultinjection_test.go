package experiments

// Corpus-level fault-injection test: one module panics, one stalls
// past the per-module deadline, and the run must still complete every
// other module with the same (deterministic) solver statistics it
// produces on a healthy run.

import (
	"context"
	"strings"
	"testing"
	"time"

	"localalias/internal/drivergen"
	"localalias/internal/faults"
)

func TestCorpusFaultInjection(t *testing.T) {
	specs := drivergen.Corpus()[:12]
	panicMod := specs[3].Name
	stallMod := specs[7].Name

	// Healthy baseline over the same slice, for the survivors'
	// determinism check.
	baseline := RunCorpus(context.Background(), CorpusOptions{Specs: specs})
	if baseline.Degraded() {
		t.Fatalf("baseline run degraded: %d failed, %d timed out", baseline.Failed, baseline.TimedOut)
	}
	baseStats := make(map[string]string)
	for _, m := range baseline.Modules {
		baseStats[m.Spec.Name] = m.SolveStats.String()
	}

	testFaultHook = func(ctx context.Context, spec *drivergen.ModuleSpec) {
		switch spec.Name {
		case panicMod:
			panic("injected fault: exploding module")
		case stallMod:
			// Stall until the per-module deadline fires, then abort
			// cooperatively the way the solver's deadline checks do.
			<-ctx.Done()
			faults.CheckDeadline(ctx)
		}
	}
	defer func() { testFaultHook = nil }()

	res := RunCorpus(context.Background(), CorpusOptions{
		Specs:         specs,
		ModuleTimeout: 300 * time.Millisecond,
	})

	if len(res.Modules) != len(specs) {
		t.Fatalf("got %d module results, want %d", len(res.Modules), len(specs))
	}
	if res.Failed != 1 || res.TimedOut != 1 {
		t.Fatalf("Failed = %d, TimedOut = %d; want 1 and 1", res.Failed, res.TimedOut)
	}
	if got, want := res.Analyzed(), len(specs)-2; got != want {
		t.Errorf("Analyzed() = %d, want %d", got, want)
	}
	if !res.Degraded() {
		t.Error("Degraded() = false for a run with injected faults")
	}

	// Both failures carry the module name, the phase, and the right
	// kind; the panic also carries a stack naming the injection site.
	byModule := make(map[string]*faults.ModuleFailure)
	for _, f := range res.Failures {
		byModule[f.Module] = f
	}
	pf := byModule[panicMod]
	if pf == nil {
		t.Fatalf("no failure recorded for panicking module %s", panicMod)
	}
	if pf.Kind != faults.KindPanic || pf.Phase != faults.PhaseGenerate {
		t.Errorf("panic failure = kind %q phase %q, want panic/generate", pf.Kind, pf.Phase)
	}
	if !strings.Contains(pf.Message, "exploding module") {
		t.Errorf("panic message %q lacks the panic value", pf.Message)
	}
	if !strings.Contains(pf.Stack, "faultinjection_test") {
		t.Errorf("panic stack does not name the injection site:\n%s", pf.Stack)
	}
	tf := byModule[stallMod]
	if tf == nil {
		t.Fatalf("no failure recorded for stalled module %s", stallMod)
	}
	if tf.Kind != faults.KindTimeout {
		t.Errorf("stall failure kind = %q, want timeout", tf.Kind)
	}
	if tf.Elapsed < 300*time.Millisecond {
		t.Errorf("stall failure elapsed = %v, want >= the 300ms deadline", tf.Elapsed)
	}

	// Survivors are unaffected: same per-module solver counters as the
	// healthy baseline.
	for _, m := range res.Modules {
		if m.Failure != nil {
			continue
		}
		if got, want := m.SolveStats.String(), baseStats[m.Spec.Name]; got != want {
			t.Errorf("%s: SolveStats %q differ from baseline %q", m.Spec.Name, got, want)
		}
	}

	// The human summary flags the degradation; the JSON report names
	// both modules with their phases.
	if sum := res.Summary(); !strings.Contains(sum, "DEGRADED") {
		t.Errorf("Summary() does not flag the degraded run:\n%s", sum)
	}
	data, err := res.FailuresJSON(5)
	if err != nil {
		t.Fatalf("FailuresJSON: %v", err)
	}
	js := string(data)
	for _, want := range []string{panicMod, stallMod, `"phase": "generate"`, `"kind": "timeout"`} {
		if !strings.Contains(js, want) {
			t.Errorf("failure JSON lacks %q:\n%s", want, js)
		}
	}

	fs := res.FailureSummary(3)
	for _, want := range []string{panicMod, stallMod, "1 failed", "1 timed out"} {
		if !strings.Contains(fs, want) {
			t.Errorf("FailureSummary lacks %q:\n%s", want, fs)
		}
	}
}
