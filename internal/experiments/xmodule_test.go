package experiments

import (
	"strings"
	"testing"
)

// TestXmoduleCorpus runs the cross-module experiment and checks its
// acceptance properties: no module fails, every per-module triple
// matches the generator's calibrated expectation in both settings,
// and the summary pass eliminates strictly more errors than havoc in
// every mode column.
func TestXmoduleCorpus(t *testing.T) {
	res := RunXmoduleCorpus()
	if len(res.Failures) != 0 {
		t.Fatalf("modules failed to analyze: %v", res.Failures)
	}
	if res.Mismatches != 0 {
		for _, row := range res.Rows {
			if row.Mismatch {
				t.Errorf("%s: havoc %+v (want %+v), summary %+v (want %+v)",
					row.Name, row.Havoc, row.ExpHavoc, row.Summary, row.ExpSummary)
			}
		}
		t.Fatalf("%d module expectation mismatches", res.Mismatches)
	}
	if !res.SummaryWinsEveryColumn() {
		t.Errorf("summary does not strictly win every column: havoc %+v, summary %+v",
			res.HavocTotal, res.SummaryTotal)
	}
	if len(res.Rows) != xmoduleLeaves+3 {
		t.Errorf("table covers %d modules, want %d", len(res.Rows), xmoduleLeaves+3)
	}
}

// TestXmoduleTable checks the rendered table carries the rows and the
// acceptance line EXPERIMENTS.md quotes.
func TestXmoduleTable(t *testing.T) {
	res := RunXmoduleCorpus()
	tbl := res.Table()
	for _, want := range []string{"xhdr", "xio", "xqueue", "xdrv00", "TOTAL",
		"summary eliminates strictly more errors than havoc in every column"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table is missing %q:\n%s", want, tbl)
		}
	}
	if strings.Contains(tbl, "MISMATCH") || strings.Contains(tbl, "WARNING") {
		t.Errorf("table reports a mismatch:\n%s", tbl)
	}
}
