package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestGatewayBenchReportSchema guards the committed BENCH_gateway.json
// against drift: it must parse into the current report shape with no
// unknown fields, cover the interleaved single/double-replica pairs,
// carry the regeneration command, and show the affinity property the
// gateway exists for — a warm 2-replica replay hitting at least as
// often as the single-replica baseline. A failure means the harness
// changed without regenerating the artifact (go run ./cmd/experiments
// -bench-gateway-json BENCH_gateway.json).
func TestGatewayBenchReportSchema(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_gateway.json"))
	if err != nil {
		t.Fatalf("reading committed benchmark report: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep GatewayBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_gateway.json does not match the current report shape: %v", err)
	}
	if rep.Modules != gatewayBenchModules || rep.TargetRPS != gatewayBenchRPS {
		t.Errorf("report covers %d modules at %v rps; harness uses %d at %v",
			rep.Modules, rep.TargetRPS, gatewayBenchModules, float64(gatewayBenchRPS))
	}
	if !bytes.Contains(data, []byte("go run ./cmd/experiments -bench-gateway-json")) {
		t.Error("report description lost the regeneration command")
	}
	want := map[string]bool{
		"BenchmarkGateway/cold-corpus-open-loop": false,
		"BenchmarkGateway/warm-affinity-replay":  false,
	}
	for _, e := range rep.Benchmarks {
		if _, ok := want[e.Name]; !ok {
			t.Errorf("unexpected benchmark entry %q", e.Name)
			continue
		}
		want[e.Name] = true
		if len(e.Pairs) != gatewayBenchRounds {
			t.Errorf("%s: %d pairs recorded, want %d", e.Name, len(e.Pairs), gatewayBenchRounds)
		}
		for i, p := range e.Pairs {
			if p.Single.Replicas != 1 || p.Double.Replicas != 2 {
				t.Errorf("%s pair %d: replica counts %d/%d, want 1/2",
					e.Name, i, p.Single.Replicas, p.Double.Replicas)
			}
			for _, run := range []GatewayBenchRun{p.Single, p.Double} {
				if run.Report.Completed == 0 || run.Report.Errors != 0 {
					t.Errorf("%s pair %d (%d replicas): completed=%d errors=%d",
						e.Name, i, run.Replicas, run.Report.Completed, run.Report.Errors)
				}
				if run.Report.LatencyMsP50 <= 0 || run.Report.LatencyMsP99 < run.Report.LatencyMsP50 {
					t.Errorf("%s pair %d (%d replicas): implausible quantiles p50=%v p99=%v",
						e.Name, i, run.Replicas, run.Report.LatencyMsP50, run.Report.LatencyMsP99)
				}
			}
			if e.Warm {
				// The acceptance criterion: affinity keeps the scaled-out
				// hit rate at the single-daemon level.
				if p.Double.Report.HitRate < p.Single.Report.HitRate {
					t.Errorf("%s pair %d: 2-replica hit rate %v below single-replica %v — affinity lost",
						e.Name, i, p.Double.Report.HitRate, p.Single.Report.HitRate)
				}
				if p.Double.Report.HitRate != 1 {
					t.Errorf("%s pair %d: warm replay hit rate %v, want 1", e.Name, i, p.Double.Report.HitRate)
				}
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("report is missing benchmark entry %q", name)
		}
	}
}
