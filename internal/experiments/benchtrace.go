package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"localalias/internal/bench"
	"localalias/internal/client"
	"localalias/internal/gateway"
	"localalias/internal/service"
)

// This file measures what distributed tracing (PR 10) costs on the
// gateway relay path: the same warm workload driven through a stack
// with tracing disabled on both tiers (TraceEntries < 0, so no trace
// ring exists and every span call is a nil no-op) and through a stack
// with the default rings, interleaved off/on so shared-VM drift hits
// both arms equally. The warm replay is the sensitive arm: a cache hit
// relays in well under a millisecond, so per-request span bookkeeping
// is the largest fraction of the path it will ever be.

// Trace benchmark workload shape: a two-replica fleet (so routing,
// health gauges, and per-attempt spans all run) at the same arrival
// rate as the gateway benchmark, with enough rounds that the median
// pair is meaningful on a noisy host.
const (
	traceBenchModules  = 60
	traceBenchRPS      = 150
	traceBenchDuration = 2 * time.Second
	traceBenchRounds   = 5
	traceBenchReplicas = 2
)

// TraceBenchMaxOverheadPct is the acceptance ceiling: tracing must
// cost the median warm relay less than this, in percent.
const TraceBenchMaxOverheadPct = 2.0

// TraceBenchRun is one timed open-loop run through one stack.
type TraceBenchRun struct {
	Tracing bool         `json:"tracing"`
	Report  bench.Report `json:"report"`
}

// TraceBenchPair is one interleaved round: the same warm workload with
// tracing off and tracing on, back to back.
type TraceBenchPair struct {
	Off TraceBenchRun `json:"tracing_off"`
	On  TraceBenchRun `json:"tracing_on"`
}

// TraceBenchReport is the top-level shape of BENCH_trace.json.
type TraceBenchReport struct {
	Description string `json:"description"`
	Platform    string `json:"platform"`
	NumCPU      int    `json:"num_cpu"`
	// HardwareNote qualifies the absolute numbers on hosts where the
	// generator and both tiers share one hardware thread.
	HardwareNote string `json:"hardware_note,omitempty"`

	Modules         int     `json:"modules"`
	TargetRPS       float64 `json:"target_rps"`
	DurationSeconds float64 `json:"duration_seconds"`
	Replicas        int     `json:"replicas"`

	Pairs []TraceBenchPair `json:"pairs"`

	// OffP50MedianMs / OnP50MedianMs are the medians of the per-pair
	// warm p50 latencies; OverheadPct is their relative difference
	// ((on-off)/off, in percent) and must stay under MaxOverheadPct.
	OffP50MedianMs float64 `json:"off_p50_median_ms"`
	OnP50MedianMs  float64 `json:"on_p50_median_ms"`
	OverheadPct    float64 `json:"overhead_pct"`
	MaxOverheadPct float64 `json:"max_overhead_pct"`
}

// tracedStack boots a two-tier stack with the given TraceEntries
// setting applied to the gateway and every replica (negative disables
// tracing on both tiers).
func tracedStack(n, traceEntries int) (*client.Client, func(), error) {
	var closers []func()
	shutdown := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(service.NewServer(service.ServerOptions{
			TraceEntries: traceEntries,
		}).Handler())
		closers = append(closers, ts.Close)
		urls[i] = ts.URL
	}
	g, err := gateway.New(gateway.Options{Backends: urls, TraceEntries: traceEntries})
	if err != nil {
		shutdown()
		return nil, nil, err
	}
	gts := httptest.NewServer(g.Start().Handler())
	closers = append(closers, gts.Close, g.Shutdown)
	return client.New(gts.URL, client.Options{}), shutdown, nil
}

// runTraceBench runs one warm open-loop pass through a fresh stack
// with tracing either disabled or at the default ring size.
func runTraceBench(ctx context.Context, tracing bool, reqs []service.AnalyzeRequest) (TraceBenchRun, error) {
	entries := -1
	if tracing {
		entries = 0 // withDefaults resolves 0 to the default ring size
	}
	c, shutdown, err := tracedStack(traceBenchReplicas, entries)
	if err != nil {
		return TraceBenchRun{}, err
	}
	defer shutdown()
	rep, err := bench.Run(ctx, bench.Options{
		Client:   c,
		RPS:      traceBenchRPS,
		Duration: traceBenchDuration,
		Requests: reqs,
		Warm:     true,
	})
	if err != nil {
		return TraceBenchRun{}, err
	}
	if rep.Errors > 0 {
		return TraceBenchRun{}, fmt.Errorf("%d transport errors against an in-process stack (tracing=%v)", rep.Errors, tracing)
	}
	return TraceBenchRun{Tracing: tracing, Report: *rep}, nil
}

// medianOf returns the median of the samples (mean of the middle two
// for even counts).
func medianOf(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// RunTraceBenchJSON runs the tracing-overhead benchmarks and renders
// BENCH_trace.json. progress (when non-nil) receives one line per
// pair.
func RunTraceBenchJSON(progress io.Writer) ([]byte, error) {
	ctx := context.Background()
	reqs := corpusRequests()[:traceBenchModules]
	for i := range reqs {
		reqs[i].Options.Mode = service.ModeCheck
	}
	rep := &TraceBenchReport{
		Description: "Tracing overhead on the gateway relay path: the same warm workload (first " +
			"60 corpus modules, check mode, warm pass then open-loop replay) through a gateway " +
			"fronting 2 replicas with tracing disabled on both tiers (TraceEntries -1: no rings, " +
			"all span calls nil no-ops) and with the default trace rings, interleaved (off, on, ...) " +
			"so shared-VM load drift hits both arms equally; compare within each pair. The warm " +
			"replay is the sensitive configuration — a cache hit relays in well under a millisecond, " +
			"so per-request span bookkeeping is the largest fraction of the path it will ever be. " +
			"overhead_pct is the relative difference of the median per-pair p50 latencies and must " +
			"stay under max_overhead_pct. Regenerate with: " +
			"go run ./cmd/experiments -bench-trace-json BENCH_trace.json",
		Platform: fmt.Sprintf("%s/%s, shared VM (expect run-to-run noise; compare interleaved pairs)",
			runtime.GOOS, runtime.GOARCH),
		NumCPU:          runtime.NumCPU(),
		Modules:         traceBenchModules,
		TargetRPS:       traceBenchRPS,
		DurationSeconds: traceBenchDuration.Seconds(),
		Replicas:        traceBenchReplicas,
		MaxOverheadPct:  TraceBenchMaxOverheadPct,
	}
	if rep.NumCPU < 2 {
		rep.HardwareNote = fmt.Sprintf(
			"measured on a %d-hardware-thread host: generator, gateway, and both replicas share "+
				"the CPU, so absolute latencies are inflated; the off/on comparison within each "+
				"interleaved pair is what the overhead bound is computed from.", rep.NumCPU)
	}

	var offP50s, onP50s []float64
	for round := 0; round < traceBenchRounds; round++ {
		off, err := runTraceBench(ctx, false, reqs)
		if err != nil {
			return nil, fmt.Errorf("round %d (tracing off): %w", round, err)
		}
		on, err := runTraceBench(ctx, true, reqs)
		if err != nil {
			return nil, fmt.Errorf("round %d (tracing on): %w", round, err)
		}
		rep.Pairs = append(rep.Pairs, TraceBenchPair{Off: off, On: on})
		offP50s = append(offP50s, off.Report.LatencyMsP50)
		onP50s = append(onP50s, on.Report.LatencyMsP50)
		if progress != nil {
			fmt.Fprintf(progress, "  pair %d/%d  off p50 %.3fms  on p50 %.3fms\n",
				round+1, traceBenchRounds, off.Report.LatencyMsP50, on.Report.LatencyMsP50)
		}
	}
	rep.OffP50MedianMs = medianOf(offP50s)
	rep.OnP50MedianMs = medianOf(onP50s)
	if rep.OffP50MedianMs > 0 {
		rep.OverheadPct = round2(100 * (rep.OnP50MedianMs - rep.OffP50MedianMs) / rep.OffP50MedianMs)
	}
	return json.MarshalIndent(rep, "", "  ")
}
