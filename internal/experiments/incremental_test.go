package experiments

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"localalias/internal/drivergen"
	"localalias/internal/service"
	"localalias/internal/solve"
)

// editVector applies the i-th module's edit: rotating through a
// body edit (new binding + store in the first function), a
// comment-only edit (shifts every span, changes no declaration), and
// a statement insertion in the last function. Every vector changes
// the source bytes, so the byte cache always misses and the
// incremental engine itself is what must reproduce the cold bytes.
func editVector(src string, i int) (string, string) {
	switch i % 3 {
	case 0:
		return editFunction(src, i), "body"
	case 1:
		return editComment(src, i), "comment"
	default:
		at := strings.LastIndex(src, "fun ")
		if at < 0 {
			return src + "\n", "append"
		}
		brace := strings.IndexByte(src[at:], '{')
		if brace < 0 {
			return src + "\n", "append"
		}
		pos := at + brace + 1
		return src[:pos] + fmt.Sprintf("\n    let __v%d = new %d;\n    *__v%d = *__v%d + 1;", i, i, i, i), "last-fun"
	}
}

// TestIncrementalCorpusDifferential is the acceptance gate for the
// incremental engine: over the full 589-module corpus, warm the
// engine on each pristine module, apply a single-function (or
// comment) edit, and require the incrementally re-analyzed response
// to be byte-identical to a from-scratch analysis of the edited
// source. -short samples the corpus.
func TestIncrementalCorpusDifferential(t *testing.T) {
	specs := drivergen.Corpus()
	stride := 1
	if testing.Short() {
		stride = 7
	}
	inc := service.NewIncremental(solve.NewMemo(incrementalMemoEntries), len(specs))
	ctx := context.Background()

	checked, fullReplays, resolved := 0, 0, 0
	for i := 0; i < len(specs); i += stride {
		spec := specs[i]
		base := service.AnalyzeRequest{Module: spec.Name + ".mc", Source: spec.Source()}

		// Warm: the pristine revision populates the memo and baseline.
		if resp, _ := inc.Analyze(ctx, &base, 0); resp.Failure != nil {
			t.Fatalf("%s: warm analysis failed: %s", spec.Name, resp.Failure.Message)
		}

		edited := base
		var vector string
		edited.Source, vector = editVector(base.Source, i)
		if edited.Source == base.Source {
			t.Fatalf("%s: edit vector %s left the source unchanged", spec.Name, vector)
		}

		got, info := inc.Analyze(ctx, &edited, 0)
		gotBytes, err := got.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		cold := service.Analyze(ctx, &service.AnalyzeRequest{Module: edited.Module, Source: edited.Source})
		wantBytes, err := cold.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("%s (%s edit): incremental re-analysis diverged from cold analysis\n--- incremental\n%s\n--- cold\n%s",
				spec.Name, vector, gotBytes, wantBytes)
		}
		checked++
		if info == nil {
			t.Fatalf("%s: no incremental info", spec.Name)
		}
		if vector == "comment" {
			// A comment-only edit shifts every span but no declaration
			// and no constraint: the delta must be empty and every
			// component must replay from the warm pass (the fingerprint
			// is position-free).
			if !info.Delta.Empty() {
				t.Errorf("%s: comment edit produced a declaration delta: %+v", spec.Name, info.Delta)
			}
			if info.Solved != 0 || info.Replayed == 0 {
				t.Errorf("%s: comment edit did not fully replay: %+v", spec.Name, info)
			}
		}
		if info.Replayed > 0 && info.Solved == 0 {
			fullReplays++
		}
		if info.Solved > 0 {
			resolved++
		}
	}
	// Corpus driver modules collapse to one solve component (every
	// function touches the shared global lock class), so a body edit
	// re-solves the whole component and "partial" dispositions cannot
	// occur here; the multi-component partial path is pinned by the
	// service-level incremental tests. What must hold corpus-wide:
	// comment edits replay everything (asserted per module above), and
	// body edits leave the solver genuine work.
	t.Logf("checked %d modules: %d full replays, %d re-solved", checked, fullReplays, resolved)
	if fullReplays == 0 {
		t.Error("no module achieved a full replay — the memo is not being hit across revisions")
	}
	if resolved == 0 {
		t.Error("no module re-solved anything — the edit vectors are not exercising misses")
	}
	if st := inc.Memo().Stats(); st.Hits == 0 {
		t.Errorf("memo recorded no hits over the corpus: %+v", st)
	}
}

// TestIncrementalBenchSmoke pins the benchmark harness pieces without
// paying for a full measurement run: both edit functions produce
// analyzable source, a body edit gives the solver genuine work, and a
// comment revision fully replays from a warmed engine (the
// within-module win the edited-module benchmark pair measures).
func TestIncrementalBenchSmoke(t *testing.T) {
	reqs := corpusRequests()
	if len(reqs) != drivergen.NumModules {
		t.Fatalf("corpus renders %d requests, want %d", len(reqs), drivergen.NumModules)
	}
	req := reqs[len(reqs)/2]
	inc := service.NewIncremental(solve.NewMemo(1024), 4)
	ctx := context.Background()
	if resp, _ := inc.Analyze(ctx, &req, 0); resp.Failure != nil {
		t.Fatalf("warm: %s", resp.Failure.Message)
	}

	body := req
	body.Source = editFunction(req.Source, 0)
	if body.Source == req.Source {
		t.Fatal("editFunction changed nothing")
	}
	resp, info := inc.Analyze(ctx, &body, 0)
	if resp.Failure != nil {
		t.Fatalf("body edit: %s", resp.Failure.Message)
	}
	if info.Solved == 0 {
		t.Errorf("body edit re-solved nothing: %+v", info)
	}
	if len(info.Delta.Changed) == 0 {
		t.Errorf("body edit produced no declaration delta: %+v", info)
	}

	comment := req
	comment.Source = editComment(req.Source, 0)
	if comment.Source == req.Source {
		t.Fatal("editComment changed nothing")
	}
	resp, info = inc.Analyze(ctx, &comment, 0)
	if resp.Failure != nil {
		t.Fatalf("comment edit: %s", resp.Failure.Message)
	}
	if info.Replayed == 0 || info.Solved != 0 {
		t.Errorf("comment revision did not fully replay: %+v", info)
	}
}
