package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"localalias/internal/confine"
	"localalias/internal/core"
	"localalias/internal/drivergen"
	"localalias/internal/faults"
	"localalias/internal/infer"
	"localalias/internal/obs"
	"localalias/internal/qual"
	"localalias/internal/solve"
)

// This file holds the benchmark bodies shared between `go test -bench`
// (the root bench_test.go delegates here) and the experiments
// command's -bench-json mode, which runs them via testing.Benchmark
// and emits machine-readable ns/op — the numbers BENCH_solver.json at
// the repo root records before/after solver changes.

// ScalingProgram builds a program with funcs functions; the first k
// contain an explicit restrict. Program size n grows linearly with
// funcs.
func ScalingProgram(funcs, k int) string {
	var sb strings.Builder
	for i := 0; i < funcs; i++ {
		fmt.Fprintf(&sb, "fun f%d(q: ref int): int {\n", i)
		if i < k {
			fmt.Fprintf(&sb, "    restrict p = q {\n        *p = *p + %d;\n    }\n", i)
		} else {
			fmt.Fprintf(&sb, "    let p = q;\n    *p = *p + %d;\n", i)
		}
		sb.WriteString("    let t = new 1;\n")
		sb.WriteString("    *t = *t + *q;\n")
		sb.WriteString("    return *t;\n}\n\n")
	}
	return sb.String()
}

// BenchSolverPropagation measures inference + solve throughput on a
// 200-function program with let-or-restrict conditional constraints
// (parsing and standard checking excluded).
func BenchSolverPropagation(b *testing.B) {
	src := ScalingProgram(200, 0)
	mod, err := core.LoadModule("scale.mc", src)
	if err != nil {
		benchFatal(b, err)
		return
	}
	for i := 0; i < b.N; i++ {
		res := infer.Run(mod.TInfo, mod.Diags, infer.Options{InferRestrictLets: true})
		sol := solve.Solve(res.Sys)
		if sol.AtomsPropagated == 0 {
			benchFatal(b, fmt.Errorf("solver propagated no atoms on the scaling program"))
			return
		}
	}
}

// BenchSolverPropagationTraced is BenchSolverPropagation with the
// full observability path enabled: every iteration runs inside a
// phase trace carrying obs spans, the way a daemon request or a
// -trace-out run does. The delta against the plain benchmark bounds
// the cost of tracing; the delta of the plain benchmark against the
// pre-instrumentation baseline bounds the cost of the always-on
// metrics (see BENCH_obs.json).
func BenchSolverPropagationTraced(b *testing.B) {
	src := ScalingProgram(200, 0)
	mod, err := core.LoadModule("scale.mc", src)
	if err != nil {
		benchFatal(b, err)
		return
	}
	for i := 0; i < b.N; i++ {
		tr := faults.NewTrace("scale.mc")
		tr.SetSpans(obs.NewTrace("scale.mc"))
		tr.Enter(faults.PhaseInfer)
		res := infer.Run(mod.TInfo, mod.Diags, infer.Options{InferRestrictLets: true})
		tr.Enter(faults.PhaseSolve)
		sol := solve.Solve(res.Sys)
		tr.Enter(faults.PhaseQual)
		if sol.AtomsPropagated == 0 {
			benchFatal(b, fmt.Errorf("solver propagated no atoms on the scaling program"))
			return
		}
	}
}

// BenchCorpusSummary measures the full E1 experiment: the three-mode
// analysis of all 589 corpus modules. traced selects the observability
// path (per-module span traces, as under the daemon).
func benchCorpusSummary(b *testing.B, traced bool) {
	specs := drivergen.Corpus()
	var res *CorpusResult
	for i := 0; i < b.N; i++ {
		res = RunCorpus(context.Background(), CorpusOptions{Specs: specs, Traced: traced})
	}
	b.StopTimer()
	if res.Degraded() {
		benchFatal(b, fmt.Errorf("%d of %d modules failed or timed out", res.Failed+res.TimedOut, len(res.Modules)))
		return
	}
	if res.Mismatches != 0 {
		benchFatal(b, fmt.Errorf("%d corpus mismatches", res.Mismatches))
		return
	}
	b.ReportMetric(float64(res.Eliminated), "eliminated")
	b.ReportMetric(float64(res.Potential), "potential")
	b.ReportMetric(res.EliminationRate()*100, "%eliminated")
}

// BenchCorpusSummary is the plain (untraced) corpus benchmark — the
// number BENCH_solver.json tracks.
func BenchCorpusSummary(b *testing.B) { benchCorpusSummary(b, false) }

// BenchCorpusSummaryTraced runs the corpus with per-module span
// traces attached, bounding the daemon's tracing overhead at corpus
// scale.
func BenchCorpusSummaryTraced(b *testing.B) { benchCorpusSummary(b, true) }

// BenchConfineOverhead measures one full analysis of ide_tape (the E4
// module) with or without confine inference.
func BenchConfineOverhead(b *testing.B, withConfine bool) {
	var spec *drivergen.ModuleSpec
	for _, m := range drivergen.Corpus() {
		if m.Name == "ide_tape" {
			spec = m
		}
	}
	if spec == nil {
		benchFatal(b, fmt.Errorf("module ide_tape not found in the corpus"))
		return
	}
	src := spec.Source()
	for i := 0; i < b.N; i++ {
		mod, err := core.LoadModule("ide_tape.mc", src)
		if err != nil {
			benchFatal(b, err)
			return
		}
		if withConfine {
			cres, err := confine.InferAndApply(mod.Prog, mod.Diags, confine.Options{Params: true})
			if err != nil {
				benchFatal(b, err)
				return
			}
			qual.Analyze(cres.Infer, cres.Solution, qual.ModePlain)
		} else {
			res := infer.Run(mod.TInfo, mod.Diags, infer.Options{})
			sol := solve.Solve(res.Sys)
			qual.Analyze(res, sol, qual.ModePlain)
		}
	}
}

// benchErr records the underlying failure of the most recent bench
// body. b.Fatal aborts the benchmark goroutine without surfacing its
// message through testing.Benchmark (the result only shows N == 0),
// so bodies report the cause here before aborting.
var benchErr error

// benchFatal records err as the benchmark's underlying failure and
// aborts the run.
func benchFatal(b *testing.B, err error) {
	benchErr = err
	b.Fatal(err)
}

// BenchMeasurement is one benchmark's measurement in -bench-json
// output.
type BenchMeasurement struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// RunBenchJSON runs the solver benchmarks via testing.Benchmark and
// returns the measurements as indented JSON (the same shape the
// committed BENCH_solver.json uses for its before/after snapshots).
func RunBenchJSON() ([]byte, error) {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkSolverPropagation", BenchSolverPropagation},
		{"BenchmarkCorpusSummary", BenchCorpusSummary},
		{"BenchmarkConfineOverhead/without-confine", func(b *testing.B) { BenchConfineOverhead(b, false) }},
		{"BenchmarkConfineOverhead/with-confine", func(b *testing.B) { BenchConfineOverhead(b, true) }},
	}
	var out []BenchMeasurement
	for _, bench := range benches {
		benchErr = nil
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			underlying := benchErr
			if underlying == nil {
				underlying = fmt.Errorf("benchmark body aborted without reporting a cause")
			}
			return nil, fmt.Errorf("benchmark %s failed after zero iterations over the %d-module corpus: %w",
				bench.name, drivergen.NumModules, underlying)
		}
		out = append(out, BenchMeasurement{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// RunObsBenchJSON runs the observability-overhead benchmarks — each
// workload with instrumentation disabled (metrics only; tracing off,
// the default) and enabled (per-request span traces) — and returns
// the measurements as indented JSON. BENCH_obs.json at the repo root
// records these next to the pre-instrumentation baseline.
func RunObsBenchJSON() ([]byte, error) {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkSolverPropagation/disabled", BenchSolverPropagation},
		{"BenchmarkSolverPropagation/traced", BenchSolverPropagationTraced},
		{"BenchmarkCorpusSummary/disabled", BenchCorpusSummary},
		{"BenchmarkCorpusSummary/traced", BenchCorpusSummaryTraced},
	}
	var out []BenchMeasurement
	for _, bench := range benches {
		benchErr = nil
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			underlying := benchErr
			if underlying == nil {
				underlying = fmt.Errorf("benchmark body aborted without reporting a cause")
			}
			return nil, fmt.Errorf("benchmark %s failed after zero iterations: %w", bench.name, underlying)
		}
		out = append(out, BenchMeasurement{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
