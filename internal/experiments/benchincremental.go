package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"localalias/internal/drivergen"
	"localalias/internal/service"
	"localalias/internal/solve"
)

// This file measures incremental summary-based re-analysis (PR 7)
// against from-scratch re-analysis: the daemon flow where a corpus is
// resident (byte cache + solve memo) and one module receives a
// one-function edit. The "before" side re-analyzes every module from
// scratch — the cost a cacheless client pays per revision; the "after"
// side serves unchanged modules from the byte cache and re-solves only
// what the edit invalidated, replaying the rest from component
// summaries. Both sides run interleaved in one binary, the same
// methodology as BENCH_parallel.json.

// incrementalMemoEntries sizes the benchmark's solve memo to hold the
// whole corpus's components without eviction churn (≈20 components per
// module × 589 modules).
const incrementalMemoEntries = 1 << 15

// corpusRequests renders the 589-module corpus as analyze requests
// (default mode: the full three-mode qual experiment, like the
// experiment driver submits).
func corpusRequests() []service.AnalyzeRequest {
	specs := drivergen.Corpus()
	reqs := make([]service.AnalyzeRequest, len(specs))
	for i, s := range specs {
		reqs[i] = service.AnalyzeRequest{Module: s.Name + ".mc", Source: s.Source()}
	}
	return reqs
}

// editFunction applies the n-th revision of a one-function edit:
// a fresh let binding inserted at the top of the module's first
// function body. Each n yields distinct source bytes (so the byte
// cache misses, like a real edit) and a changed constraint component
// for that function (so the solver has genuine work to redo).
func editFunction(src string, n int) string {
	at := strings.Index(src, "fun ")
	if at < 0 {
		return src
	}
	brace := strings.IndexByte(src[at:], '{')
	if brace < 0 {
		return src
	}
	pos := at + brace + 1
	return src[:pos] + fmt.Sprintf("\n    let __e%d = new %d;\n    *__e%d = %d;", n, n, n, n+1) + src[pos:]
}

// editComment applies the n-th comment-only revision: new source
// bytes (the byte cache misses, every span shifts) but an unchanged
// constraint system, so the memo replays every component. This is the
// save-without-a-semantic-change flow an editor produces constantly.
func editComment(src string, n int) string {
	return fmt.Sprintf("// revision %d\n", n) + src
}

// BenchIncrementalCold re-analyzes the whole corpus from scratch each
// iteration, with the edited module at its i-th revision — the before
// side: no byte cache, no memo.
func BenchIncrementalCold(b *testing.B, reqs []service.AnalyzeRequest, editIdx int) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			r := reqs[j]
			if j == editIdx {
				r.Source = editFunction(r.Source, i)
			}
			resp := service.Analyze(ctx, &r)
			if resp.Failure != nil {
				benchFatal(b, fmt.Errorf("%s: %s", r.Module, resp.Failure.Message))
				return
			}
			if _, err := resp.MarshalCanonical(); err != nil {
				benchFatal(b, err)
				return
			}
		}
	}
}

// BenchIncrementalWarm is the after side: a resident byte cache plus
// the incremental engine, warmed on the pristine corpus outside the
// timer. Each iteration edits one function of one module and
// re-analyzes the corpus the way the daemon would — unchanged modules
// replay their cached bytes; the edited module re-solves only the
// components its edit changed. The returned engine exposes the memo
// stats the report records.
func BenchIncrementalWarm(b *testing.B, reqs []service.AnalyzeRequest, editIdx int, inc *service.Incremental) {
	ctx := context.Background()
	cache := service.NewCache(2 * len(reqs))
	pass := func(revision int) error {
		for j := range reqs {
			r := reqs[j]
			if j == editIdx && revision >= 0 {
				r.Source = editFunction(r.Source, revision)
			}
			key := service.CacheKey(&r)
			if _, ok := cache.Get(key); ok {
				continue
			}
			resp, _ := inc.Analyze(ctx, &r, 0)
			if resp.Failure != nil {
				return fmt.Errorf("%s: %s", r.Module, resp.Failure.Message)
			}
			data, err := resp.MarshalCanonical()
			if err != nil {
				return err
			}
			cache.Put(key, data)
		}
		return nil
	}
	b.StopTimer()
	if err := pass(-1); err != nil { // warm the resident state
		benchFatal(b, err)
		return
	}
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		if err := pass(i); err != nil {
			benchFatal(b, err)
			return
		}
	}
}

// BenchEditedModuleCold / BenchEditedModuleIncremental isolate the
// edited module itself across comment-only revisions: from-scratch
// analysis vs the incremental engine replaying every component from
// summaries (corpus driver modules collapse to one solve component, so
// a comment revision is the case where the memo's within-module replay
// fully applies; a body edit re-solves the component on both sides).
func BenchEditedModuleCold(b *testing.B, req service.AnalyzeRequest) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		r := req
		r.Source = editComment(r.Source, i)
		resp := service.Analyze(ctx, &r)
		if resp.Failure != nil {
			benchFatal(b, fmt.Errorf("%s: %s", r.Module, resp.Failure.Message))
			return
		}
	}
}

func BenchEditedModuleIncremental(b *testing.B, req service.AnalyzeRequest, inc *service.Incremental) {
	ctx := context.Background()
	b.StopTimer()
	if resp, _ := inc.Analyze(ctx, &req, 0); resp.Failure != nil {
		benchFatal(b, fmt.Errorf("%s: %s", req.Module, resp.Failure.Message))
		return
	}
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		r := req
		r.Source = editComment(r.Source, i)
		resp, _ := inc.Analyze(ctx, &r, 0)
		if resp.Failure != nil {
			benchFatal(b, fmt.Errorf("%s: %s", r.Module, resp.Failure.Message))
			return
		}
	}
}

// IncrementalBenchReport is the top-level shape of
// BENCH_incremental.json.
type IncrementalBenchReport struct {
	Description string `json:"description"`
	Platform    string `json:"platform"`
	NumCPU      int    `json:"num_cpu"`
	// Modules is the corpus size; EditedModule names the module that
	// receives the one-function edit each iteration.
	Modules      int    `json:"modules"`
	EditedModule string `json:"edited_module"`

	Benchmarks []*ParallelBenchEntry `json:"benchmarks"`

	// MemoStats snapshots the corpus-scale engine's solve memo after
	// the run: hits are components replayed instead of re-solved.
	MemoStats solve.MemoStats `json:"memo_stats"`
}

// incrementalBenchRounds is how many interleaved cold/incremental
// pairs each entry records.
const incrementalBenchRounds = 3

// RunIncrementalBenchJSON runs the incremental re-analysis benchmark
// suite and renders BENCH_incremental.json. progress (when non-nil)
// receives one line per interleaved pair.
func RunIncrementalBenchJSON(progress io.Writer) ([]byte, error) {
	reqs := corpusRequests()
	// The corpus pair edits a median-size module (representative of an
	// arbitrary save); the within-module pair replays the corpus's
	// heaviest module, where solver work is the largest pipeline share
	// and component replay has the most to skip.
	editIdx := len(reqs) / 2
	heavyIdx := 0
	for i := range reqs {
		if len(reqs[i].Source) > len(reqs[heavyIdx].Source) {
			heavyIdx = i
		}
	}
	rep := &IncrementalBenchReport{
		Description: "Incremental summary-based re-analysis vs from-scratch re-analysis after a " +
			"one-function edit. 'before' re-analyzes all modules cold each revision; 'after' keeps " +
			"the daemon-resident state (canonical-bytes cache + content-addressed solve-component " +
			"memo) warm, so unchanged modules replay cached bytes and the edited module re-solves " +
			"only the components its edit changed. Results are byte-identical on both sides (pinned " +
			"by the incremental differential tests). Runs are interleaved (before, after, ...) so " +
			"shared-VM load drift hits both sides equally; compare pairwise ratios. The " +
			"edited-module-comment-revision pair isolates the within-module component-replay win " +
			"(a comment-only save: new bytes, unchanged constraints) from the byte-cache win. " +
			"Regenerate with: " +
			"go run ./cmd/experiments -bench-incremental-json BENCH_incremental.json",
		Platform: fmt.Sprintf("%s/%s, shared VM (expect run-to-run noise; compare interleaved pairs)",
			runtime.GOOS, runtime.GOARCH),
		NumCPU:       runtime.NumCPU(),
		Modules:      len(reqs),
		EditedModule: reqs[editIdx].Module,
	}

	// One resident engine for the corpus-scale pair (rebuilding it per
	// round would re-measure the warm-up the daemon pays once).
	corpusInc := service.NewIncremental(solve.NewMemo(incrementalMemoEntries), 2*len(reqs))
	moduleInc := service.NewIncremental(solve.NewMemo(solve.DefaultMemoEntries), 16)
	heavy := reqs[heavyIdx]

	type spec struct {
		name, before, after string
		fnBefore, fnAfter   func(*testing.B)
	}
	specs := []spec{
		{
			name:     "BenchmarkIncremental/corpus-reanalyze-after-one-edit",
			before:   "re-analyze all modules from scratch (no cache, no memo)",
			after:    "resident byte cache + solve memo: 1 edited module re-analyzed incrementally, rest replayed",
			fnBefore: func(b *testing.B) { BenchIncrementalCold(b, reqs, editIdx) },
			fnAfter:  func(b *testing.B) { BenchIncrementalWarm(b, reqs, editIdx, corpusInc) },
		},
		{
			name:   "BenchmarkIncremental/edited-module-comment-revision",
			before: heavy.Module + " (heaviest module) analyzed from scratch each comment-only revision",
			after: heavy.Module + " re-analyzed with all components replayed from summaries " +
				"(parse/typecheck/infer still run; only the solve is skipped)",
			fnBefore: func(b *testing.B) { BenchEditedModuleCold(b, heavy) },
			fnAfter:  func(b *testing.B) { BenchEditedModuleIncremental(b, heavy, moduleInc) },
		},
	}
	for _, s := range specs {
		e, err := runPair(s.name, s.before, s.after, incrementalBenchRounds, s.fnBefore, s.fnAfter, progress)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	rep.MemoStats = corpusInc.Memo().Stats()
	return json.MarshalIndent(rep, "", "  ")
}
