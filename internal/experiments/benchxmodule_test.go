package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestXmoduleBenchReportSchema guards the committed BENCH_xmodule.json
// against drift: it must parse into the current report shape with no
// unknown fields, cover the worker-sweep and cache-replay pairs with
// the configured number of interleaved rounds, and carry the
// regeneration command. A failure means the harness changed without
// regenerating the artifact (go run ./cmd/experiments
// -bench-xmodule-json BENCH_xmodule.json).
func TestXmoduleBenchReportSchema(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_xmodule.json"))
	if err != nil {
		t.Fatalf("reading committed benchmark report: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep XmoduleBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_xmodule.json does not match the current report shape: %v", err)
	}
	if rep.Modules != xmoduleBenchLeaves+3 {
		t.Errorf("report covers %d modules; harness uses %d", rep.Modules, xmoduleBenchLeaves+3)
	}
	if !bytes.Contains(data, []byte("go run ./cmd/experiments -bench-xmodule-json")) {
		t.Error("report description lost the regeneration command")
	}
	want := map[string]bool{"BenchmarkXmoduleCache/one-leaf-edit": false}
	for _, w := range xmoduleWorkerSweep {
		want[fmt.Sprintf("BenchmarkXmoduleDAG/workers-%d", w)] = false
	}
	for _, e := range rep.Benchmarks {
		if _, ok := want[e.Name]; !ok {
			t.Errorf("unexpected benchmark entry %q", e.Name)
			continue
		}
		want[e.Name] = true
		if len(e.BeforeNsPerOp) != xmoduleBenchRounds || len(e.AfterNsPerOp) != xmoduleBenchRounds {
			t.Errorf("%s: %d/%d rounds recorded, want %d",
				e.Name, len(e.BeforeNsPerOp), len(e.AfterNsPerOp), xmoduleBenchRounds)
		}
		for i := range e.BeforeNsPerOp {
			if e.BeforeNsPerOp[i] <= 0 {
				t.Errorf("%s: before round %d is %d ns/op", e.Name, i, e.BeforeNsPerOp[i])
			}
		}
		if e.MedianSpeedup <= 0 {
			t.Errorf("%s: median speedup %v", e.Name, e.MedianSpeedup)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("report is missing benchmark entry %q", name)
		}
	}
}
