package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestTraceBenchReportSchema guards the committed BENCH_trace.json
// against drift: it must parse into the current report shape with no
// unknown fields, cover every interleaved off/on pair, carry the
// regeneration command, and show the acceptance property tracing was
// budgeted for — median warm-relay overhead under the 2% ceiling. A
// failure means the harness changed without regenerating the artifact
// (go run ./cmd/experiments -bench-trace-json BENCH_trace.json).
func TestTraceBenchReportSchema(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_trace.json"))
	if err != nil {
		t.Fatalf("reading committed benchmark report: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep TraceBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_trace.json does not match the current report shape: %v", err)
	}
	if rep.Modules != traceBenchModules || rep.TargetRPS != traceBenchRPS || rep.Replicas != traceBenchReplicas {
		t.Errorf("report covers %d modules at %v rps over %d replicas; harness uses %d at %v over %d",
			rep.Modules, rep.TargetRPS, rep.Replicas,
			traceBenchModules, float64(traceBenchRPS), traceBenchReplicas)
	}
	if !bytes.Contains(data, []byte("go run ./cmd/experiments -bench-trace-json")) {
		t.Error("report description lost the regeneration command")
	}
	if len(rep.Pairs) != traceBenchRounds {
		t.Errorf("%d pairs recorded, want %d", len(rep.Pairs), traceBenchRounds)
	}
	for i, p := range rep.Pairs {
		if p.Off.Tracing || !p.On.Tracing {
			t.Errorf("pair %d: tracing flags off=%v on=%v, want false/true",
				i, p.Off.Tracing, p.On.Tracing)
		}
		for _, run := range []TraceBenchRun{p.Off, p.On} {
			if run.Report.Completed == 0 || run.Report.Errors != 0 {
				t.Errorf("pair %d (tracing=%v): completed=%d errors=%d",
					i, run.Tracing, run.Report.Completed, run.Report.Errors)
			}
			if run.Report.HitRate != 1 {
				t.Errorf("pair %d (tracing=%v): warm replay hit rate %v, want 1",
					i, run.Tracing, run.Report.HitRate)
			}
			if run.Report.LatencyMsP50 <= 0 || run.Report.LatencyMsP99 < run.Report.LatencyMsP50 {
				t.Errorf("pair %d (tracing=%v): implausible quantiles p50=%v p99=%v",
					i, run.Tracing, run.Report.LatencyMsP50, run.Report.LatencyMsP99)
			}
		}
	}
	if rep.OffP50MedianMs <= 0 || rep.OnP50MedianMs <= 0 {
		t.Fatalf("medians off=%v on=%v, want positive", rep.OffP50MedianMs, rep.OnP50MedianMs)
	}
	if rep.MaxOverheadPct != TraceBenchMaxOverheadPct {
		t.Errorf("report ceiling %v%%, harness uses %v%%", rep.MaxOverheadPct, TraceBenchMaxOverheadPct)
	}
	// The acceptance criterion: tracing costs the median warm relay
	// less than the budgeted ceiling.
	if rep.OverheadPct >= rep.MaxOverheadPct {
		t.Errorf("tracing overhead %v%% is at or above the %v%% ceiling — regenerate and investigate",
			rep.OverheadPct, rep.MaxOverheadPct)
	}
}
