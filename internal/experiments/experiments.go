// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 7) over the synthetic driver corpus:
//
//	E1: the summary counts (589 modules; 352 error-free; 85 with
//	    errors unrelated to strong updates; 152 where strong updates
//	    matter, 138 of them fully recovered; 3,277 potential vs
//	    3,116 eliminated spurious errors, 95%).
//	E2: Figure 6, the histogram of spurious type errors eliminated
//	    per module.
//	E3: Figure 7, the per-module table for the 14 modules where
//	    confine inference does not recover every strong update.
//	E4: the timing comparison (analysis with vs without confine
//	    inference on the largest confine-relevant module, ide_tape;
//	    the paper measured 28.5s vs 26.0s).
//
// Every number is measured by running the real pipeline; the corpus
// generator only controls the mix of locking patterns.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"localalias/internal/confine"
	"localalias/internal/core"
	"localalias/internal/drivergen"
	"localalias/internal/faults"
	"localalias/internal/infer"
	"localalias/internal/obs"
	"localalias/internal/qual"
	"localalias/internal/service"
	"localalias/internal/solve"
)

// ModuleResult is the measurement for one module.
type ModuleResult struct {
	Spec     *drivergen.ModuleSpec
	Measured drivergen.Triple
	// Response is the canonical service-layer result the measurement
	// was read from — the same shape `lna check -json` and the daemon
	// emit, so per-module corpus results can ship over the wire
	// unchanged.
	Response *service.AnalyzeResponse
	// Planted/Kept count confine? candidates inserted and retained.
	Planted, Kept int
	// AnalyzeTime covers the module end to end (generation through
	// qualifier analysis).
	AnalyzeTime time.Duration
	// SolveStats aggregates the solver work counters over the
	// module's two solves.
	SolveStats solve.Stats
	// Err is non-nil if the module failed to compile or analyze.
	Err error
	// Failure is the structured record when the module's analysis
	// panicked, timed out, or errored inside the containment guard
	// (Err aliases it then).
	Failure *core.ModuleFailure
	// PhaseTimings is the per-phase wall-clock breakdown
	// (generate/parse/typecheck/infer/solve/qual).
	PhaseTimings []faults.PhaseTiming
	// TraceID identifies this module's span trace when the corpus ran
	// with CorpusOptions.Traced ("" otherwise).
	TraceID string
	// Trace holds the collected spans when Traced (nil otherwise).
	Trace *obs.Trace
}

// Potential is the number of spurious errors strong updates could
// eliminate in this module.
func (m *ModuleResult) Potential() int {
	return m.Measured.NoConfine - m.Measured.AllStrong
}

// Eliminated is the number confine inference actually eliminated.
func (m *ModuleResult) Eliminated() int {
	return m.Measured.NoConfine - m.Measured.Confine
}

// CorpusResult aggregates the whole experiment.
type CorpusResult struct {
	Modules []*ModuleResult

	// The Section 7 breakdown, measured.
	Clean         int // no errors in any mode
	ErrorsNoHelp  int // errors, but all-strong changes nothing
	StrongMatters int // all-strong removes some errors
	FullyRecov    int // confine matches all-strong
	PartialRecov  int // confine between baseline and all-strong

	Potential  int
	Eliminated int

	// Mismatches counts modules whose measured triple differs from
	// the generator's expectation (0 in a healthy build).
	Mismatches int

	// Failed and TimedOut count modules whose analysis was contained
	// by the fault guard (panic or error, and deadline expiry,
	// respectively); Failures holds their records in corpus order.
	// The rest of the corpus completes regardless — a degraded run,
	// not a crashed one.
	Failed   int
	TimedOut int
	Failures []*core.ModuleFailure

	// SolveStats aggregates the solver work counters over the whole
	// corpus — a coarse regression canary for the constraint solver
	// (the counters are deterministic per module, so corpus totals are
	// reproducible too).
	SolveStats solve.Stats
}

// EliminationRate is the headline 95% number.
func (r *CorpusResult) EliminationRate() float64 {
	if r.Potential == 0 {
		return 0
	}
	return float64(r.Eliminated) / float64(r.Potential)
}

// Analyzed is the number of modules that completed analysis (whether
// or not their numbers matched expectations).
func (r *CorpusResult) Analyzed() int {
	return len(r.Modules) - r.Failed - r.TimedOut
}

// Degraded reports whether any module failed or timed out — the run
// completed, but its numbers cover only the surviving modules.
func (r *CorpusResult) Degraded() bool { return r.Failed+r.TimedOut > 0 }

// PhaseFailures breaks the failures down by pipeline phase.
func (r *CorpusResult) PhaseFailures() map[faults.Phase]int {
	if len(r.Failures) == 0 {
		return nil
	}
	out := make(map[faults.Phase]int)
	for _, f := range r.Failures {
		out[f.Phase]++
	}
	return out
}

// testFaultHook, when non-nil, runs at the start of each module's
// guarded analysis. It is the seam fault-injection tests use to make
// a chosen module panic or stall without touching the real pipeline.
var testFaultHook func(ctx context.Context, spec *drivergen.ModuleSpec)

// analyzeSpec measures one module through the shared service engine:
// a panic anywhere in generation, loading, or analysis becomes a
// structured ModuleFailure, and timeout (when non-zero) bounds the
// module's wall-clock time so one pathological constraint system
// cannot stall a worker. The corpus driver, the lna subcommands, and
// the `lna serve` daemon therefore measure exactly the same pipeline.
func analyzeSpec(ctx context.Context, spec *drivergen.ModuleSpec, timeout time.Duration, traced bool, solverWorkers int) *ModuleResult {
	out := &ModuleResult{Spec: spec}
	req := &service.AnalyzeRequest{
		Module:        spec.Name + ".mc",
		Options:       service.AnalyzeOptions{Mode: service.ModeQual},
		SolverWorkers: solverWorkers,
		// Source generation runs inside the fault guard (attributed to
		// the generate phase), with the fault-injection seam in front.
		Generate: func(ctx context.Context) string {
			if testFaultHook != nil {
				testFaultHook(ctx, spec)
			}
			return spec.Source()
		},
	}
	if traced {
		req.Obs = obs.NewTrace(spec.Name)
		out.Trace = req.Obs
		out.TraceID = req.Obs.ID()
	}
	resp := service.AnalyzeBounded(ctx, req, timeout)
	out.Response = resp
	out.PhaseTimings = resp.PhaseTimings
	out.AnalyzeTime = resp.Elapsed
	if resp.Failure == nil && resp.Locking == nil {
		// The generated source failed to parse or type check —
		// impossible in a healthy generator, so degrade it like any
		// other contained failure rather than treating the module as
		// silently analyzed.
		msg := "module produced no locking report"
		if resp.Raw != nil && resp.Raw.HasErrors() {
			msg = resp.Raw.Err().Error()
		}
		resp.Failure = &faults.ModuleFailure{
			Module: spec.Name, Phase: faults.PhaseTypecheck,
			Kind: faults.KindError, Message: msg, Elapsed: resp.Elapsed,
		}
	}
	if resp.Failure != nil {
		// Corpus failure reports identify modules by spec name (no .mc
		// suffix), as the degraded-run summaries always have.
		resp.Failure.Module = spec.Name
		out.Failure = resp.Failure
		out.Err = resp.Failure
		return out
	}
	out.Measured = drivergen.Triple{
		NoConfine: resp.Locking.NoConfine.NumErrors,
		Confine:   resp.Locking.WithConfine.NumErrors,
		AllStrong: resp.Locking.AllStrong.NumErrors,
	}
	out.Planted = resp.Locking.Planted
	out.Kept = resp.Locking.Kept
	out.SolveStats = resp.Diagnostics.Stats
	return out
}

// CorpusOptions configures a corpus run: what to analyze, where to
// report progress, and the fault-containment policy.
type CorpusOptions struct {
	// Specs is the corpus to analyze (pass drivergen.Corpus() for the
	// full experiment).
	Specs []*drivergen.ModuleSpec
	// Progress, when non-nil, receives progress lines, including a
	// final "589/589" flush.
	Progress io.Writer
	// ModuleTimeout bounds each module's end-to-end analysis
	// (generation through qualifier analysis). Zero means no
	// per-module deadline. A module that exceeds it is reported as
	// timed out and the run continues.
	ModuleTimeout time.Duration
	// Traced attaches a span trace (with a unique trace ID) to every
	// module's request. Off by default: the corpus benchmark compares
	// this path against the traced one to bound tracing overhead.
	Traced bool
	// SolverWorkers bounds the partitioned constraint solver's
	// concurrency within each module's solves (<= 1 solves
	// sequentially). Orthogonal to the corpus-level worker pool, which
	// parallelizes across modules; results are identical either way.
	SolverWorkers int
}

// RunCorpus analyzes opts.Specs on a fixed pool of one worker per
// CPU. Workers pull the next module off a shared atomic counter, so
// the scheduler never sees more than NumCPU analysis goroutines at
// once. Each module runs under a fault-containment guard: a panic or
// deadline expiry fails that module (recorded in the result's
// Failures) while the rest of the corpus completes — the paper's
// 589-driver sweep degrades instead of crashing. Cancelling ctx stops
// workers between modules.
func RunCorpus(ctx context.Context, opts CorpusOptions) *CorpusResult {
	if ctx == nil {
		ctx = context.Background()
	}
	specs, progress := opts.Specs, opts.Progress
	results := make([]*ModuleResult, len(specs))
	nw := runtime.NumCPU()
	if nw > len(specs) {
		nw = len(specs)
	}
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				results[i] = analyzeSpec(ctx, specs[i], opts.ModuleTimeout, opts.Traced, opts.SolverWorkers)
				if n := int(done.Add(1)); progress != nil && n%50 == 0 && n < len(specs) {
					fmt.Fprintf(progress, "  ...%d/%d modules\n", n, len(specs))
				}
			}
		}()
	}
	wg.Wait()
	if progress != nil && len(specs) > 0 {
		fmt.Fprintf(progress, "  ...%d/%d modules\n", len(specs), len(specs))
	}
	return aggregate(results)
}

func aggregate(results []*ModuleResult) *CorpusResult {
	r := &CorpusResult{Modules: results}
	for _, m := range results {
		if m == nil {
			continue // worker stopped by ctx cancellation before reaching it
		}
		if m.Failure != nil {
			if m.Failure.Kind == faults.KindTimeout {
				r.TimedOut++
			} else {
				r.Failed++
			}
			r.Failures = append(r.Failures, m.Failure)
			continue
		}
		if m.Err != nil {
			r.Mismatches++
			continue
		}
		if m.Measured != m.Spec.Expected {
			r.Mismatches++
		}
		t := m.Measured
		switch {
		case t.NoConfine == 0:
			r.Clean++
		case t.NoConfine == t.AllStrong:
			r.ErrorsNoHelp++
		default:
			r.StrongMatters++
			if t.Confine == t.AllStrong {
				r.FullyRecov++
			} else {
				r.PartialRecov++
			}
		}
		r.Potential += m.Potential()
		r.Eliminated += m.Eliminated()
		r.SolveStats.Add(m.SolveStats)
	}
	return r
}

// ---------------------------------------------------------------------
// Rendering

// Summary renders the E1 table with the paper's numbers alongside.
func (r *CorpusResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 7 summary (measured vs paper)\n")
	fmt.Fprintf(&b, "  %-46s %8s %8s\n", "", "measured", "paper")
	row := func(label string, got, paper int) {
		fmt.Fprintf(&b, "  %-46s %8d %8d\n", label, got, paper)
	}
	row("driver modules analyzed", len(r.Modules), 589)
	row("error-free without confine", r.Clean, 352)
	row("errors, but strong updates irrelevant", r.ErrorsNoHelp, 85)
	row("strong updates matter", r.StrongMatters, 152)
	row("  ... fully recovered by confine inference", r.FullyRecov, 138)
	row("  ... partially recovered (Figure 7 set)", r.PartialRecov, 14)
	row("potential spurious errors (weak updates)", r.Potential, 3277)
	row("eliminated by confine inference", r.Eliminated, 3116)
	fmt.Fprintf(&b, "  %-46s %7.1f%% %7.1f%%\n", "elimination rate",
		r.EliminationRate()*100, 95.1)
	if r.Mismatches > 0 {
		fmt.Fprintf(&b, "  WARNING: %d module(s) deviated from generator expectations\n", r.Mismatches)
	}
	if r.Degraded() {
		fmt.Fprintf(&b, "  DEGRADED RUN: %d analyzed, %d failed, %d timed out (counts above cover survivors only)\n",
			r.Analyzed(), r.Failed, r.TimedOut)
	}
	return b.String()
}

// PhaseStat is one row of the per-phase timing table: the number of
// modules that ran the phase and the distribution of their wall-clock
// times in it.
type PhaseStat struct {
	Phase string        `json:"phase"`
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	Max   time.Duration `json:"max_ns"`
}

// PhaseStats computes the per-phase p50/p95/max over every surviving
// module's phase timings, in canonical pipeline order. Exact
// percentiles (nearest-rank over the sorted samples), not histogram
// estimates: the corpus driver holds every sample in memory anyway.
func (r *CorpusResult) PhaseStats() []PhaseStat {
	samples := make(map[faults.Phase][]time.Duration)
	for _, m := range r.Modules {
		if m == nil || m.Failure != nil {
			continue
		}
		for _, pt := range m.PhaseTimings {
			samples[pt.Phase] = append(samples[pt.Phase], pt.Elapsed)
		}
	}
	var out []PhaseStat
	for _, p := range faults.Phases() {
		ds := samples[p]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		rank := func(q float64) time.Duration {
			i := int(q*float64(len(ds)) + 0.5)
			if i >= len(ds) {
				i = len(ds) - 1
			}
			return ds[i]
		}
		out = append(out, PhaseStat{
			Phase: string(p),
			Count: len(ds),
			P50:   rank(0.50),
			P95:   rank(0.95),
			Max:   ds[len(ds)-1],
		})
	}
	return out
}

// PhaseTable renders the per-phase timing distribution as a table —
// the corpus-level answer to "where does the pipeline spend its
// time". Empty when no module carried timings.
func (r *CorpusResult) PhaseTable() string {
	stats := r.PhaseStats()
	if len(stats) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Per-phase timing over %d module(s)\n", r.Analyzed())
	fmt.Fprintf(&b, "  %-10s %8s %12s %12s %12s\n", "phase", "modules", "p50", "p95", "max")
	for _, s := range stats {
		fmt.Fprintf(&b, "  %-10s %8d %12v %12v %12v\n",
			s.Phase, s.Count,
			s.P50.Round(time.Microsecond),
			s.P95.Round(time.Microsecond),
			s.Max.Round(time.Microsecond))
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Degraded-run failure reporting

// SlowModule is one row of the slowest-modules table: total analysis
// time with its per-phase breakdown.
type SlowModule struct {
	Module  string               `json:"module"`
	Elapsed time.Duration        `json:"elapsed_ns"`
	Phases  []faults.PhaseTiming `json:"phases,omitempty"`
}

// FailureReport is the machine-readable summary of a (possibly
// degraded) corpus run: what failed, where, and which modules were
// slowest. It is what cmd/experiments -failures-json emits.
type FailureReport struct {
	Modules  int                   `json:"modules"`
	Analyzed int                   `json:"analyzed"`
	Failed   int                   `json:"failed"`
	TimedOut int                   `json:"timed_out"`
	ByPhase  map[string]int        `json:"by_phase,omitempty"`
	Failures []*core.ModuleFailure `json:"failures"`
	Slowest  []SlowModule          `json:"slowest,omitempty"`
}

// FailureReport builds the report, including the slowestN surviving
// modules by analysis time (with per-phase timings from the solver's
// trace).
func (r *CorpusResult) FailureReport(slowestN int) *FailureReport {
	rep := &FailureReport{
		Modules:  len(r.Modules),
		Analyzed: r.Analyzed(),
		Failed:   r.Failed,
		TimedOut: r.TimedOut,
		Failures: r.Failures,
	}
	if rep.Failures == nil {
		rep.Failures = []*core.ModuleFailure{} // render as [], not null
	}
	for p, n := range r.PhaseFailures() {
		if rep.ByPhase == nil {
			rep.ByPhase = make(map[string]int)
		}
		rep.ByPhase[string(p)] = n
	}
	var ok []*ModuleResult
	for _, m := range r.Modules {
		if m != nil && m.Failure == nil && m.Err == nil {
			ok = append(ok, m)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].AnalyzeTime != ok[j].AnalyzeTime {
			return ok[i].AnalyzeTime > ok[j].AnalyzeTime
		}
		return ok[i].Spec.Name < ok[j].Spec.Name
	})
	if slowestN > len(ok) {
		slowestN = len(ok)
	}
	for _, m := range ok[:slowestN] {
		rep.Slowest = append(rep.Slowest, SlowModule{
			Module:  m.Spec.Name,
			Elapsed: m.AnalyzeTime,
			Phases:  m.PhaseTimings,
		})
	}
	return rep
}

// FailuresJSON renders the failure report as indented JSON.
func (r *CorpusResult) FailuresJSON(slowestN int) ([]byte, error) {
	return json.MarshalIndent(r.FailureReport(slowestN), "", "  ")
}

// FailureSummary renders a human-readable degraded-run report: one
// line per failure and the slowest-modules table. Empty when the run
// was healthy.
func (r *CorpusResult) FailureSummary(slowestN int) string {
	if !r.Degraded() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "degraded run: %d/%d modules analyzed, %d failed, %d timed out\n",
		r.Analyzed(), len(r.Modules), r.Failed, r.TimedOut)
	byPhase := r.PhaseFailures()
	phases := make([]string, 0, len(byPhase))
	for p := range byPhase {
		phases = append(phases, string(p))
	}
	sort.Strings(phases)
	for _, p := range phases {
		fmt.Fprintf(&b, "  phase %-9s %d failure(s)\n", p+":", byPhase[faults.Phase(p)])
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  %s\n", f.Error())
	}
	rep := r.FailureReport(slowestN)
	if len(rep.Slowest) > 0 {
		fmt.Fprintf(&b, "slowest surviving modules:\n")
		for _, s := range rep.Slowest {
			fmt.Fprintf(&b, "  %-16s %10v", s.Module, s.Elapsed.Round(time.Microsecond))
			for _, pt := range s.Phases {
				fmt.Fprintf(&b, "  %s=%v", pt.Phase, pt.Elapsed.Round(time.Microsecond))
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// Figure6 renders the histogram of spurious type errors eliminated
// per module (over the modules where strong updates matter).
func (r *CorpusResult) Figure6() string {
	const binWidth = 10
	bins := map[int]int{}
	maxBin := 0
	for _, m := range r.Modules {
		if m.Err != nil || m.Potential() == 0 {
			continue
		}
		bin := (m.Eliminated() - 1) / binWidth
		if m.Eliminated() == 0 {
			bin = -1 // modules where inference eliminated nothing
		}
		bins[bin]++
		if bin > maxBin {
			maxBin = bin
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: spurious type errors eliminated by confine inference\n")
	fmt.Fprintf(&b, "  %-12s %-7s\n", "eliminated", "modules")
	render := func(label string, n int) {
		fmt.Fprintf(&b, "  %-12s %4d  %s\n", label, n, strings.Repeat("#", n))
	}
	if n := bins[-1]; n > 0 {
		render("0", n)
	}
	for bin := 0; bin <= maxBin; bin++ {
		lo, hi := bin*binWidth+1, (bin+1)*binWidth
		render(fmt.Sprintf("%d-%d", lo, hi), bins[bin])
	}
	return b.String()
}

// Figure7 renders the per-module table for the partially recovered
// modules, with the paper's rows alongside.
func (r *CorpusResult) Figure7() string {
	paper := map[string]drivergen.Figure7Row{}
	for _, row := range drivergen.Figure7Paper() {
		paper[row.Name] = row
	}
	var rows []*ModuleResult
	for _, m := range r.Modules {
		if m.Spec.Category == drivergen.Partial {
			rows = append(rows, m)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].Spec.Name < rows[j].Spec.Name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: modules where confine inference misses strong updates\n")
	fmt.Fprintf(&b, "  %-16s | %25s | %25s\n", "", "measured", "paper")
	fmt.Fprintf(&b, "  %-16s | %7s %8s %8s | %7s %8s %8s\n",
		"module", "no-inf", "confine", "strong", "no-inf", "confine", "strong")
	for _, m := range rows {
		p := paper[m.Spec.Name]
		fmt.Fprintf(&b, "  %-16s | %7d %8d %8d | %7d %8d %8d\n",
			m.Spec.Name,
			m.Measured.NoConfine, m.Measured.Confine, m.Measured.AllStrong,
			p.NoConfine, p.Confine, p.AllStrong)
	}
	return b.String()
}

// CSV renders per-module results as CSV (module, category, no-confine,
// confine, all-strong, potential, eliminated, planted, kept) for
// external plotting of Figures 6 and 7.
func (r *CorpusResult) CSV() string {
	var b strings.Builder
	b.WriteString("module,category,no_confine,confine,all_strong,potential,eliminated,planted,kept\n")
	for _, m := range r.Modules {
		if m.Err != nil {
			continue
		}
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%d\n",
			m.Spec.Name, m.Spec.Category,
			m.Measured.NoConfine, m.Measured.Confine, m.Measured.AllStrong,
			m.Potential(), m.Eliminated(), m.Planted, m.Kept)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// E4: confine-inference overhead timing

// TimingResult is the E4 measurement.
type TimingResult struct {
	Module        string
	WithConfine   time.Duration // full pipeline incl. confine inference
	WithoutCfine  time.Duration // baseline analysis only
	OverheadRatio float64
}

func (t *TimingResult) String() string {
	return fmt.Sprintf(
		"Timing (%s): with confine inference %v, without %v (ratio %.2fx; paper: 28.5s vs 26.0s = 1.10x)",
		t.Module, t.WithConfine.Round(time.Microsecond),
		t.WithoutCfine.Round(time.Microsecond), t.OverheadRatio)
}

// Timing measures the analysis of the named module (default ide_tape,
// as in the paper) with and without confine inference, averaged over
// rounds.
func Timing(moduleName string, rounds int) (*TimingResult, error) {
	if moduleName == "" {
		moduleName = "ide_tape"
	}
	if rounds <= 0 {
		rounds = 5
	}
	var spec *drivergen.ModuleSpec
	for _, m := range drivergen.Corpus() {
		if m.Name == moduleName {
			spec = m
			break
		}
	}
	if spec == nil {
		return nil, fmt.Errorf("no module %q in the corpus", moduleName)
	}
	src := spec.Source()

	var withC, withoutC time.Duration
	for i := 0; i < rounds; i++ {
		// Without confine inference: plain inference + solve + the
		// flow-sensitive qualifier analysis (CQUAL's baseline run).
		mod, err := core.LoadModule(spec.Name+".mc", src)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res := infer.Run(mod.TInfo, mod.Diags, infer.Options{})
		sol := solve.Solve(res.Sys)
		qual.Analyze(res, sol, qual.ModePlain)
		withoutC += time.Since(t0)

		// With confine inference: plant candidates, infer with the
		// conditional constraints, solve, apply, and run the same
		// qualifier analysis once (re-load: inference mutates the
		// AST). This matches the paper's measurement, which compares
		// one CQUAL run with inference against one without.
		mod2, err := core.LoadModule(spec.Name+".mc", src)
		if err != nil {
			return nil, err
		}
		t1 := time.Now()
		cres, err := confine.InferAndApply(mod2.Prog, mod2.Diags, confine.Options{Params: true})
		if err != nil {
			return nil, err
		}
		qual.Analyze(cres.Infer, cres.Solution, qual.ModePlain)
		withC += time.Since(t1)
	}
	out := &TimingResult{
		Module:       moduleName,
		WithConfine:  withC / time.Duration(rounds),
		WithoutCfine: withoutC / time.Duration(rounds),
	}
	if out.WithoutCfine > 0 {
		out.OverheadRatio = float64(out.WithConfine) / float64(out.WithoutCfine)
	}
	return out, nil
}
