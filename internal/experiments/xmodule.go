package experiments

import (
	"fmt"
	"strings"

	"localalias/internal/core"
	"localalias/internal/drivergen"
	"localalias/internal/modgraph"
)

// This file runs the cross-module experiment: the multi-module driver
// stacks (drivergen.XStack) analyzed twice over the import DAG — once
// with every imported call havoc'd (the paper's per-module setting)
// and once with package summaries applied — and reports the precision
// gap per mode column. The EXPERIMENTS.md "Cross-module" table is
// this result.

// xmoduleLeaves is the stack size the experiment and its table use.
const xmoduleLeaves = 12

// XmoduleModuleRow is one module's measurement in both settings.
type XmoduleModuleRow struct {
	Name           string
	Havoc, Summary drivergen.Triple
	// ExpHavoc/ExpSummary are the generator's calibrated
	// expectations; Mismatch marks a measured/expected disagreement.
	ExpHavoc, ExpSummary drivergen.Triple
	Mismatch             bool
}

// XmoduleResult is the outcome of the cross-module experiment.
type XmoduleResult struct {
	Rows []XmoduleModuleRow
	// HavocTotal/SummaryTotal aggregate the three mode columns.
	HavocTotal, SummaryTotal drivergen.Triple
	// Mismatches counts modules whose measured triples disagree with
	// the generator's expectations in either setting.
	Mismatches int
	// Failures lists modules that failed to analyze (expected none).
	Failures []string
}

// SummaryWinsEveryColumn reports the experiment's acceptance
// property: the summary pass eliminates strictly more errors than
// havoc in every mode column.
func (r *XmoduleResult) SummaryWinsEveryColumn() bool {
	return r.SummaryTotal.NoConfine < r.HavocTotal.NoConfine &&
		r.SummaryTotal.Confine < r.HavocTotal.Confine &&
		r.SummaryTotal.AllStrong < r.HavocTotal.AllStrong
}

func outcomeTriple(o *modgraph.Outcome) drivergen.Triple {
	return drivergen.Triple{
		NoConfine: o.Errors(core.VariantNoConfine),
		Confine:   o.Errors(core.VariantWithConfine),
		AllStrong: o.Errors(core.VariantAllStrong),
	}
}

// RunXmoduleCorpus analyzes the multi-module stack in both settings
// and checks every module against the generator's expectations.
func RunXmoduleCorpus() *XmoduleResult {
	mods := drivergen.XStack(xmoduleLeaves)
	var srcs []modgraph.Source
	for _, m := range mods {
		srcs = append(srcs, modgraph.Source{Name: m.Name, Text: m.Source})
	}
	havoc := modgraph.Analyze(srcs, modgraph.Options{Havoc: true, Workers: 4})
	summary := modgraph.Analyze(srcs, modgraph.Options{Workers: 4})

	res := &XmoduleResult{}
	seen := map[string]bool{}
	for _, x := range []*modgraph.Result{havoc, summary} {
		for _, f := range x.Failures() {
			if !seen[f] {
				seen[f] = true
				res.Failures = append(res.Failures, f)
			}
		}
	}
	for _, m := range mods {
		hm, sm := havoc.Modules[m.Name], summary.Modules[m.Name]
		if hm == nil || hm.Outcome == nil || sm == nil || sm.Outcome == nil {
			continue
		}
		row := XmoduleModuleRow{
			Name:       m.Name,
			Havoc:      outcomeTriple(hm.Outcome),
			Summary:    outcomeTriple(sm.Outcome),
			ExpHavoc:   m.ExpHavoc,
			ExpSummary: m.ExpSummary,
		}
		row.Mismatch = row.Havoc != row.ExpHavoc || row.Summary != row.ExpSummary
		if row.Mismatch {
			res.Mismatches++
		}
		res.Rows = append(res.Rows, row)
		res.HavocTotal = addT(res.HavocTotal, row.Havoc)
		res.SummaryTotal = addT(res.SummaryTotal, row.Summary)
	}
	return res
}

func addT(a, b drivergen.Triple) drivergen.Triple {
	return drivergen.Triple{
		NoConfine: a.NoConfine + b.NoConfine,
		Confine:   a.Confine + b.Confine,
		AllStrong: a.AllStrong + b.AllStrong,
	}
}

// Table renders the cross-module precision comparison in the style of
// the EXPERIMENTS.md tables.
func (r *XmoduleResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-module precision: per-module havoc vs package summaries\n")
	fmt.Fprintf(&b, "(multi-module stack: %d modules; errors per mode column)\n\n", len(r.Rows))
	fmt.Fprintf(&b, "%-10s  %-17s  %-17s\n", "module", "havoc (nc/ci/as)", "summary (nc/ci/as)")
	for _, row := range r.Rows {
		mark := ""
		if row.Mismatch {
			mark = "  MISMATCH"
		}
		fmt.Fprintf(&b, "%-10s  %3d %3d %3d        %3d %3d %3d  %s\n",
			row.Name,
			row.Havoc.NoConfine, row.Havoc.Confine, row.Havoc.AllStrong,
			row.Summary.NoConfine, row.Summary.Confine, row.Summary.AllStrong, mark)
	}
	fmt.Fprintf(&b, "%-10s  %3d %3d %3d        %3d %3d %3d\n", "TOTAL",
		r.HavocTotal.NoConfine, r.HavocTotal.Confine, r.HavocTotal.AllStrong,
		r.SummaryTotal.NoConfine, r.SummaryTotal.Confine, r.SummaryTotal.AllStrong)
	if r.SummaryWinsEveryColumn() {
		fmt.Fprintf(&b, "\nsummary eliminates strictly more errors than havoc in every column\n")
	} else {
		fmt.Fprintf(&b, "\nWARNING: summary does not win every column\n")
	}
	return b.String()
}
