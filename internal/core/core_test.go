package core

import (
	"strings"
	"testing"

	"localalias/internal/ast"
)

func load(t *testing.T, src string) *Module {
	t.Helper()
	m, err := LoadModule("test.mc", src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return m
}

func locking(t *testing.T, src string) *LockingResult {
	t.Helper()
	m := load(t, src)
	r, err := m.AnalyzeLocking(LockingOptions{})
	if err != nil {
		t.Fatalf("locking: %v", err)
	}
	return r
}

// The canonical Section 7 pattern: lock/unlock on an array element,
// expression form, inside one function.
const arrayPairSrc = `
global locks: lock[16];

fun handle(i: int) {
    spin_lock(&locks[i]);
    work();
    spin_unlock(&locks[i]);
}
`

func TestLockingArrayPair(t *testing.T) {
	r := locking(t, arrayPairSrc)
	if r.NoConfine.NumErrors() == 0 {
		t.Error("baseline must report weak-update errors on array locks")
	}
	if r.AllStrong.NumErrors() != 0 {
		t.Errorf("all-strong must be clean, got %d", r.AllStrong.NumErrors())
	}
	if r.WithConfine.NumErrors() != 0 {
		t.Errorf("confine inference must recover all strong updates, got %d errors",
			r.WithConfine.NumErrors())
	}
	if len(r.Confine.Kept) == 0 {
		t.Error("a confine must have been inserted")
	}
	// The transformed program must show the inferred confine.
	printed := ast.String(r.Module.Prog)
	if !strings.Contains(printed, "confine &locks[i]") {
		t.Errorf("printed program lacks the confine:\n%s", printed)
	}
}

func TestLockingRepeatedPairs(t *testing.T) {
	// K pairs in sequence: baseline accrues errors at every op after
	// the first; confine removes all.
	src := `
global locks: lock[16];

fun handle(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}
`
	r := locking(t, src)
	if got := r.NoConfine.NumErrors(); got != 5 {
		t.Errorf("baseline: want 5 errors (2K-1 for K=3), got %d", got)
	}
	if r.WithConfine.NumErrors() != 0 {
		t.Errorf("confine: want 0, got %d", r.WithConfine.NumErrors())
	}
}

func TestLockingScalarGlobalClean(t *testing.T) {
	// A single global lock is linear: strong updates without any
	// confine; all three modes agree on zero.
	src := `
global big: lock;

fun handle() {
    spin_lock(&big);
    work();
    spin_unlock(&big);
    spin_lock(&big);
    spin_unlock(&big);
}
`
	r := locking(t, src)
	if r.NoConfine.NumErrors() != 0 || r.WithConfine.NumErrors() != 0 || r.AllStrong.NumErrors() != 0 {
		t.Errorf("scalar global lock must be clean in all modes: %d/%d/%d",
			r.NoConfine.NumErrors(), r.WithConfine.NumErrors(), r.AllStrong.NumErrors())
	}
}

func TestLockingRealBugAllModes(t *testing.T) {
	// Double acquire on a scalar lock: a real bug that strong updates
	// cannot excuse — the same error must appear in all three modes.
	src := `
global big: lock;

fun handle() {
    spin_lock(&big);
    spin_lock(&big);
    spin_unlock(&big);
}
`
	r := locking(t, src)
	if r.NoConfine.NumErrors() != 1 || r.WithConfine.NumErrors() != 1 || r.AllStrong.NumErrors() != 1 {
		t.Errorf("double acquire must show once in every mode: %d/%d/%d",
			r.NoConfine.NumErrors(), r.WithConfine.NumErrors(), r.AllStrong.NumErrors())
	}
}

func TestLockingUnlockWithoutLock(t *testing.T) {
	src := `
global big: lock;

fun handle() {
    spin_unlock(&big);
}
`
	r := locking(t, src)
	if r.NoConfine.NumErrors() != 1 || r.AllStrong.NumErrors() != 1 {
		t.Errorf("unlock-without-lock: %d/%d", r.NoConfine.NumErrors(), r.AllStrong.NumErrors())
	}
}

func TestLockingLetBoundPointer(t *testing.T) {
	// The lock is held through a local pointer binding: recovered by
	// let-or-restrict inference (Section 5), not by confine.
	src := `
global locks: lock[8];

fun handle(i: int) {
    let l = &locks[i];
    spin_lock(l);
    work();
    spin_unlock(l);
}
`
	r := locking(t, src)
	if r.NoConfine.NumErrors() == 0 {
		t.Error("baseline must report weak-update errors")
	}
	if r.WithConfine.NumErrors() != 0 {
		t.Errorf("let-or-restrict inference must recover the binding, got %d:\n%s",
			r.WithConfine.NumErrors(), ast.String(r.Module.Prog))
	}
	// The binding must be marked restrict in the rewritten program.
	marked := false
	ast.Inspect(r.Module.Prog, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok && d.Name == "l" && d.Restrict {
			marked = true
		}
		return true
	})
	if !marked {
		t.Errorf("let l must be marked restrict:\n%s", ast.String(r.Module.Prog))
	}
}

func TestLockingHelperFunction(t *testing.T) {
	// The Figure 1 pattern: the lock flows through a helper's
	// parameter. Confine at the call site plus parameter restrict
	// inference recovers strong updates.
	src := `
global locks: lock[8];

fun entry(i: int) {
    do_with_lock(&locks[i]);
    do_with_lock(&locks[i]);
}

fun do_with_lock(l: ref lock) {
    spin_lock(l);
    work();
    spin_unlock(l);
}
`
	r := locking(t, src)
	if r.NoConfine.NumErrors() == 0 {
		t.Error("baseline must report weak-update errors")
	}
	if r.WithConfine.NumErrors() != 0 {
		t.Errorf("confine + param restrict must clean the helper pattern, got %d:\n%s",
			r.WithConfine.NumErrors(), ast.String(r.Module.Prog))
	}
}

func TestLockingConfineFailsOnIndexWrite(t *testing.T) {
	// The index is re-written between the lock and unlock: the
	// confined expression is not referentially transparent, so the
	// confine must be rejected and the errors remain.
	src := `
global locks: lock[8];
global idx: int;

fun handle() {
    spin_lock(&locks[idx]);
    idx = idx + 1;
    spin_unlock(&locks[idx]);
}
`
	r := locking(t, src)
	if len(r.Confine.Kept) != 0 {
		t.Fatalf("confine over a mutated index must fail:\n%s", ast.String(r.Module.Prog))
	}
	if r.WithConfine.NumErrors() != r.NoConfine.NumErrors() {
		t.Errorf("rejected confine must leave errors unchanged: %d vs %d",
			r.WithConfine.NumErrors(), r.NoConfine.NumErrors())
	}
	// The failed candidate must have been spliced back out.
	printed := ast.String(r.Module.Prog)
	if strings.Contains(printed, "confine") {
		t.Errorf("failed confine must be removed:\n%s", printed)
	}
}

func TestLockingConfineFailsOnOuterAccess(t *testing.T) {
	// Another element of the array is touched inside the would-be
	// scope: ρ is accessed, the confine must fail.
	src := `
global locks: lock[8];

fun handle(i: int, j: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[j]);
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}
`
	r := locking(t, src)
	// &locks[i] wraps [0..3]: inside, &locks[j] writes ρ → fail.
	// (&locks[j] has only one occurrence so it is never a candidate.)
	if len(r.Confine.Kept) != 0 {
		t.Errorf("confine must fail when another element is accessed in scope:\n%s",
			ast.String(r.Module.Prog))
	}
}

func TestLockingStructFieldLock(t *testing.T) {
	// Per-device struct lock accessed through a pointer parameter:
	// devices alias through the callers, confine recovers strong
	// updates on d->l.
	src := `
struct dev {
    l: lock;
    n: int;
}
global d1: dev;
global d2: dev;

fun touch(d: ref dev) {
    spin_lock(&d->l);
    d->n = d->n + 1;
    spin_unlock(&d->l);
}

fun entry() {
    touch(&d1);
    touch(&d2);
}
`
	m := load(t, src)
	// &d1/&d2 are AddrExpr of globals — supported places.
	r, err := m.AnalyzeLocking(LockingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NoConfine.NumErrors() == 0 {
		t.Error("two devices unify through the parameter: baseline must err")
	}
	if r.WithConfine.NumErrors() != 0 {
		t.Errorf("confine must clean the struct-lock pattern, got %d:\n%s",
			r.WithConfine.NumErrors(), ast.String(m.Prog))
	}
}

func TestLockingBranchingBalanced(t *testing.T) {
	// Lock around a branch; both paths balanced.
	src := `
global locks: lock[4];

fun handle(i: int, c: int) {
    spin_lock(&locks[i]);
    if (c > 0) {
        work();
    } else {
        print(c);
    }
    spin_unlock(&locks[i]);
}
`
	r := locking(t, src)
	if r.WithConfine.NumErrors() != 0 {
		t.Errorf("balanced branch: want 0 confine-mode errors, got %d", r.WithConfine.NumErrors())
	}
}

func TestLockingConditionalLockRealError(t *testing.T) {
	// Lock only on one branch, unconditional unlock: a real error
	// that persists even all-strong.
	src := `
global big: lock;

fun handle(c: int) {
    if (c > 0) {
        spin_lock(&big);
    }
    spin_unlock(&big);
}
`
	r := locking(t, src)
	if r.AllStrong.NumErrors() != 1 {
		t.Errorf("conditional lock: all-strong must still err once, got %d", r.AllStrong.NumErrors())
	}
}

func TestLockingAdjacentConfinesMerge(t *testing.T) {
	// Two disjoint pair-ranges of the same expression become adjacent
	// confines and must merge into one.
	src := `
global locks: lock[4];

fun handle(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
    work();
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}
`
	r := locking(t, src)
	if r.WithConfine.NumErrors() != 0 {
		t.Errorf("want 0 errors, got %d", r.WithConfine.NumErrors())
	}
	count := 0
	ast.Inspect(r.Module.Prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.ConfineStmt); ok {
			count++
		}
		return true
	})
	if count != 1 {
		t.Errorf("adjacent confines of one expression must merge; found %d:\n%s",
			count, ast.String(r.Module.Prog))
	}
}

func TestLockingLoopedLocking(t *testing.T) {
	// Locking inside a loop body: the per-iteration confine keeps the
	// pair strong; the loop fixpoint keeps the outer state sound.
	src := `
global locks: lock[8];

fun handle(n: int) {
    let i = new 0;
    while (*i < n) {
        spin_lock(&locks[*i]);
        work();
        spin_unlock(&locks[*i]);
        *i = *i + 1;
    }
}
`
	r := locking(t, src)
	if r.WithConfine.NumErrors() != 0 {
		t.Errorf("looped locking must be clean with confine, got %d:\n%s",
			r.WithConfine.NumErrors(), ast.String(r.Module.Prog))
	}
}

func TestCheckAnnotationsFacade(t *testing.T) {
	m := load(t, `
fun f(q: ref int): int {
    restrict p = q {
        return *q;
    }
    return 0;
}
`)
	r := m.CheckAnnotations()
	if r.OK() {
		t.Error("violation must be reported through the facade")
	}
}

func TestInferRestrictFacade(t *testing.T) {
	m := load(t, `
fun f(q: ref int): int {
    let p = q;
    return *p;
}
`)
	r := m.InferRestrict(false)
	if len(r.Restricted) != 1 {
		t.Errorf("facade restrict inference: %s", r.Summary())
	}
}

func TestLockingIrqProtocol(t *testing.T) {
	// change_type is protocol-generic: an interrupt-flag pair behaves
	// exactly like the spin-lock pair, including confine recovery and
	// mixed-protocol modules.
	src := `
global flags: lock[4];
global big: lock;

fun isr_window(cpu: int) {
    irq_save(&flags[cpu]);
    work();
    irq_restore(&flags[cpu]);
}

fun mixed(cpu: int) {
    irq_save(&flags[cpu]);
    spin_lock(&big);
    spin_unlock(&big);
    irq_restore(&flags[cpu]);
}

fun bug() {
    irq_restore(&big); // restore without save: real bug
}
`
	r := locking(t, src)
	if r.NoConfine.NumErrors() <= 1 {
		t.Errorf("baseline must report weak-update errors on the flag array: %d", r.NoConfine.NumErrors())
	}
	if r.WithConfine.NumErrors() != 1 {
		t.Errorf("confine must keep only the real bug, got %d:\n%s",
			r.WithConfine.NumErrors(), ast.String(r.Module.Prog))
	}
	if r.AllStrong.NumErrors() != 1 {
		t.Errorf("all-strong keeps the real bug: %d", r.AllStrong.NumErrors())
	}
}

func TestLockingOptionFlags(t *testing.T) {
	// The planter already confines pairs INSIDE one block (including
	// inside a helper body), so to observe the Params/Lets inference
	// legs we need patterns whose lock ops never appear as two
	// statements of one block: split sub-helpers.
	helperSrc := `
global locks: lock[8];
fun take(l: ref lock) { spin_lock(l); }
fun rel(l: ref lock) { spin_unlock(l); }
fun with(l: ref lock) {
    take(l);
    rel(l);
}
fun entry(i: int) { with(&locks[i]); }
`
	m := load(t, helperSrc)
	r, err := m.AnalyzeLocking(LockingOptions{NoParams: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.WithConfine.NumErrors() == 0 {
		t.Error("NoParams must leave the sub-helper pattern unrecovered")
	}
	m2 := load(t, helperSrc)
	r2, err := m2.AnalyzeLocking(LockingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.WithConfine.NumErrors() != 0 {
		t.Errorf("param inference must recover the sub-helper pattern: %d (%s)",
			r2.WithConfine.NumErrors(), ast.String(m2.Prog))
	}

	letSrc := `
global locks: lock[8];
fun take(l: ref lock) { spin_lock(l); }
fun rel(l: ref lock) { spin_unlock(l); }
fun handle(i: int) {
    let l = &locks[i];
    take(l);
    rel(l);
}
`
	m3 := load(t, letSrc)
	r3, err := m3.AnalyzeLocking(LockingOptions{NoLets: true})
	if err != nil {
		t.Fatal(err)
	}
	if r3.WithConfine.NumErrors() == 0 {
		t.Error("NoLets must leave the let-bound sub-helper pattern unrecovered")
	}
	m4 := load(t, letSrc)
	r4, err := m4.AnalyzeLocking(LockingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r4.WithConfine.NumErrors() != 0 {
		t.Errorf("let inference must recover it: %d (%s)",
			r4.WithConfine.NumErrors(), ast.String(m4.Prog))
	}
}

func TestLockingGeneralMode(t *testing.T) {
	r := load(t, arrayPairSrc)
	res, err := r.AnalyzeLocking(LockingOptions{General: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.WithConfine.NumErrors() != 0 {
		t.Errorf("general mode must also recover: %d", res.WithConfine.NumErrors())
	}
}
