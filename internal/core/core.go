// Package core is the public facade of the local non-aliasing
// toolkit: it wires the pipeline of the paper end to end —
//
//	parse → standard types → alias-and-effect inference →
//	restrict/confine checking or inference → flow-sensitive
//	locked/unlocked qualifier analysis
//
// — and exposes the three-mode locking experiment of Section 7
// (no-confine / confine-inference / all-updates-strong).
package core

import (
	"context"
	"fmt"

	"localalias/internal/ast"
	"localalias/internal/confine"
	"localalias/internal/effects"
	"localalias/internal/faults"
	"localalias/internal/infer"
	"localalias/internal/locs"
	"localalias/internal/parser"
	"localalias/internal/qual"
	"localalias/internal/restrict"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// ModuleFailure is the structured record of one module's contained
// failure (panic, timeout, or analysis error), re-exported so
// pipeline drivers can speak in terms of core alone. See package
// faults for the containment guards that produce it.
type ModuleFailure = faults.ModuleFailure

// Module is a parsed and standard-type-checked compilation unit.
type Module struct {
	Name  string
	Prog  *ast.Program
	TInfo *types.Info
	Diags *source.Diagnostics
	// ImportSigs is the import environment the module was loaded
	// with (nil for standalone modules); confine's re-typecheck of
	// the planted program resolves imports against the same surface.
	ImportSigs types.ImportSigs
}

// LoadModule parses and type checks src. It fails on lexical,
// syntactic or standard type errors.
func LoadModule(name, src string) (*Module, error) {
	return LoadModuleTraced(name, src, nil)
}

// LoadModuleTraced is LoadModule with phase tracking: tr (when
// non-nil) records the parse and typecheck phases so a fault inside
// either is attributed correctly.
//
// On failure the returned module is still non-nil: it carries the
// name and the positioned diagnostics accumulated before the failing
// phase (Prog and TInfo may be nil), so callers can render excerpts
// or ship the diagnostics over the service API instead of losing them
// to a bare error string.
func LoadModuleTraced(name, src string, tr *faults.Trace) (*Module, error) {
	return LoadModuleWith(name, src, nil, tr)
}

// LoadModuleWith is LoadModuleTraced with cross-module import
// resolution: sigs supplies the exported signatures of
// separately-loaded modules. Import declarations naming packages
// absent from sigs fail with positioned "package not found"
// diagnostics.
func LoadModuleWith(name, src string, sigs types.ImportSigs, tr *faults.Trace) (*Module, error) {
	m := &Module{Name: name, Diags: &source.Diagnostics{}, ImportSigs: sigs}
	tr.Enter(faults.PhaseParse)
	m.Prog = parser.Parse(name, src, m.Diags)
	if m.Diags.HasErrors() {
		return m, fmt.Errorf("%s: %w", name, m.Diags.Err())
	}
	tr.Enter(faults.PhaseTypecheck)
	m.TInfo = types.CheckWith(m.Prog, m.Diags, sigs)
	if m.Diags.HasErrors() {
		return m, fmt.Errorf("%s: %w", name, m.Diags.Err())
	}
	return m, nil
}

// CheckAnnotations verifies the module's explicit restrict/confine
// annotations (Sections 4 and 6.1). The result's Violations are also
// appended to m.Diags.
func (m *Module) CheckAnnotations() *restrict.CheckResult {
	return restrict.Check(m.TInfo, m.Diags)
}

// InferRestrict runs restrict inference (Section 5), marking
// successful lets in the AST.
func (m *Module) InferRestrict(params bool) *restrict.InferResult {
	return m.InferRestrictWith(restrict.Options{Params: params})
}

// InferRestrictWith is InferRestrict with full options (parameter
// candidates, solver parallelism).
func (m *Module) InferRestrictWith(opts restrict.Options) *restrict.InferResult {
	return restrict.Infer(m.TInfo, m.Diags, opts)
}

// LockingOptions configures the three-mode locking experiment.
type LockingOptions struct {
	// General selects the exhaustive scope search instead of the
	// paper's syntactic heuristic (Section 7).
	General bool
	// NoParams disables parameter restrict inference in the
	// confine-inference mode (on by default: it is how strong updates
	// cross helper-function boundaries).
	NoParams bool
	// NoLets disables let-or-restrict inference (Section 5) in the
	// confine-inference mode (on by default: it recovers strong
	// updates for locks held in local pointer bindings).
	NoLets bool
	// SolverWorkers bounds the partitioned constraint solver's
	// concurrency for both solves; <= 1 solves sequentially. Results
	// are identical either way.
	SolverWorkers int
	// Memo, when non-nil, lets both solves replay content-addressed
	// component summaries recorded by earlier solves (and record new
	// ones). Replay is byte-identical to solving fresh.
	Memo *solve.Memo
	// MemoCounters, when non-nil, receives the component reuse
	// accounting (replayed vs freshly solved) aggregated over both
	// solves.
	MemoCounters *solve.MemoCounters
	// ImportEffects supplies per-formal effect masks for imported
	// functions ("pkg.fn"), applied at the solver level; nil havocs
	// every imported call's arguments.
	ImportEffects map[string][]effects.Mask
	// ImportTransfers supplies per-variant qualifier transfer tables
	// for imported functions; nil havocs imported calls in the
	// qualifier analysis (the single-module baseline).
	ImportTransfers [NumVariants]qual.Transfers
	// ExportAPI requests computation of the module's own package
	// summary (LockingResult.API) for downstream modules.
	ExportAPI bool
}

// The experiment variants a cross-module summary is computed under,
// mirroring the three analysis runs of AnalyzeLocking. Callers apply
// the variant matching their own run.
const (
	VariantNoConfine = iota
	VariantWithConfine
	VariantAllStrong
	NumVariants
)

// PackageAPI is everything a downstream module needs to compile and
// analyze against this module without re-analyzing its source: the
// exported function signatures, the per-variant qualifier transfer
// tables, and the per-formal effect masks.
type PackageAPI struct {
	Name string
	Sigs *types.PkgSig
	// Transfers holds each exported function's transfer tables per
	// experiment variant, keyed by unqualified function name.
	Transfers [NumVariants]qual.Transfers
	// Effects holds each exported function's per-formal effect masks.
	Effects map[string][]effects.Mask
}

// LockingResult carries the three reports of the Section 7
// experiment for one module.
type LockingResult struct {
	Module *Module

	// NoConfine is the baseline: weak updates wherever aliasing
	// demands them.
	NoConfine *qual.Report
	// WithConfine is the analysis after confine inference.
	WithConfine *qual.Report
	// AllStrong assumes every update is strong: the upper bound on
	// what strong-update recovery can eliminate.
	AllStrong *qual.Report

	// Confine is the inference run that produced WithConfine.
	Confine *confine.Result

	// SolveStats aggregates the constraint-solver work counters over
	// both solves (the baseline solve shared by the no-confine and
	// all-strong modes, and the confine-inference solve).
	SolveStats solve.Stats

	// API is the module's package summary for downstream modules,
	// computed when LockingOptions.ExportAPI is set.
	API *PackageAPI
}

// Potential returns the number of spurious errors that strong
// updates could eliminate (noConfine − allStrong).
func (r *LockingResult) Potential() int {
	return r.NoConfine.NumErrors() - r.AllStrong.NumErrors()
}

// Eliminated returns the number of errors confine inference actually
// eliminated (noConfine − withConfine).
func (r *LockingResult) Eliminated() int {
	return r.NoConfine.NumErrors() - r.WithConfine.NumErrors()
}

// AnalyzeLocking runs the three analysis modes of the experiment.
// The module's AST is rewritten in place by confine inference (the
// baseline and all-strong modes run first, on the pristine tree).
func (m *Module) AnalyzeLocking(opts LockingOptions) (*LockingResult, error) {
	return m.AnalyzeLockingCtx(nil, opts, nil)
}

// AnalyzeLockingCtx is AnalyzeLocking under fault-containment
// plumbing: ctx (when non-nil) bounds the constraint solves so a
// per-module deadline can abort a pathological system cooperatively,
// and tr (when non-nil) records which phase is executing so a panic
// or timeout is attributed to infer/solve/qual rather than to the
// whole module. Internal inconsistencies (unification mismatches,
// malformed effect expressions) become positioned diagnostics on
// m.Diags and an error — never a panic.
func (m *Module) AnalyzeLockingCtx(ctx context.Context, opts LockingOptions, tr *faults.Trace) (*LockingResult, error) {
	out := &LockingResult{Module: m}

	// Baseline and upper bound on the pristine AST.
	tr.Enter(faults.PhaseInfer)
	baseInfer := infer.Run(m.TInfo, m.Diags, infer.Options{
		ImportEffects: opts.ImportEffects,
	})
	if baseInfer.InternalErrors > 0 {
		return nil, fmt.Errorf("%s: %w", m.Name, m.Diags.Err())
	}
	tr.Enter(faults.PhaseSolve)
	baseSol := solve.SolveOpts(ctx, baseInfer.Sys, solve.Options{
		Workers: opts.SolverWorkers, Memo: opts.Memo, Counters: opts.MemoCounters,
	})
	if err := m.reportMalformed(baseSol.Malformed()); err != nil {
		return nil, err
	}
	tr.Enter(faults.PhaseQual)
	out.NoConfine = qual.AnalyzeWith(baseInfer, baseSol, qual.ModePlain,
		opts.ImportTransfers[VariantNoConfine])
	out.AllStrong = qual.AnalyzeWith(baseInfer, baseSol, qual.ModeAllStrong,
		opts.ImportTransfers[VariantAllStrong])

	// Confine inference (mutates the AST), then the qualifier
	// analysis over the surviving bindings.
	cres, err := confine.InferAndApply(m.Prog, m.Diags, confine.Options{
		General:       opts.General,
		Params:        !opts.NoParams,
		Lets:          !opts.NoLets,
		SolverWorkers: opts.SolverWorkers,
		Memo:          opts.Memo,
		MemoCounters:  opts.MemoCounters,
		Ctx:           ctx,
		Trace:         tr,
		Imports:       m.ImportSigs,
		ImportEffects: opts.ImportEffects,
	})
	if err != nil {
		return nil, err
	}
	out.Confine = cres
	tr.Enter(faults.PhaseQual)
	out.WithConfine = qual.AnalyzeWith(cres.Infer, cres.Solution, qual.ModePlain,
		opts.ImportTransfers[VariantWithConfine])
	out.SolveStats.Add(baseSol.Stats)
	out.SolveStats.Add(cres.Solution.Stats)
	if opts.ExportAPI {
		out.API = exportAPI(m, baseInfer, baseSol, cres, opts)
	}
	// The baseline solution's consumers (the two qual analyses above)
	// are done and nothing retains it, so its pooled storage can serve
	// the next module. cres.Solution stays live — it is exported via
	// out.Confine.
	baseSol.Release()
	return out, nil
}

// exportAPI computes the module's package summary from the three
// analysis runs: transfer tables are probed under exactly the
// (inference result, solution, mode) triples the experiment's columns
// use, so a caller applying variant V sees the callee as variant V
// analyzed it. Effect masks come from the baseline solve's latent
// effects, restricted to the cells each formal exposes.
func exportAPI(m *Module, baseInfer *infer.Result, baseSol *solve.Result,
	cres *confine.Result, opts LockingOptions) *PackageAPI {
	api := &PackageAPI{
		Name:    m.Name,
		Sigs:    m.TInfo.Exports(m.Name),
		Effects: make(map[string][]effects.Mask),
	}
	api.Transfers[VariantNoConfine] = qual.ComputeTransfers(
		baseInfer, baseSol, qual.ModePlain, opts.ImportTransfers[VariantNoConfine])
	api.Transfers[VariantAllStrong] = qual.ComputeTransfers(
		baseInfer, baseSol, qual.ModeAllStrong, opts.ImportTransfers[VariantAllStrong])
	api.Transfers[VariantWithConfine] = qual.ComputeTransfers(
		cres.Infer, cres.Solution, qual.ModePlain, opts.ImportTransfers[VariantWithConfine])
	for name, sig := range api.Sigs.Funs {
		api.Effects[name] = effectMasks(baseInfer, baseSol, sig)
	}
	return api
}

// effectMasks computes one read/write/alloc mask per formal of sig:
// the kinds the function's solved latent effect contains on locations
// reachable from that formal.
func effectMasks(res *infer.Result, sol *solve.Result, sig *types.FunSig) []effects.Mask {
	masks := make([]effects.Mask, len(sig.Params))
	eff, ok := res.FunEff[sig.Name]
	if !ok || sol == nil {
		for i := range masks {
			masks[i] = effects.HavocMask
		}
		return masks
	}
	cells := make([]map[locs.Loc]bool, len(sig.Params))
	for i := range sig.Params {
		cells[i] = make(map[locs.Loc]bool)
		for _, c := range res.ParamCells(sig.Decl, i) {
			cells[i][c] = true
		}
	}
	sol.EachAtom(eff, func(at effects.Atom) {
		if at.Kind == effects.LocAtom {
			return
		}
		l := res.Locs.Find(at.Loc)
		for i := range cells {
			if cells[i][l] {
				masks[i] |= at.Kind.Bit()
			}
		}
	})
	return masks
}

// reportMalformed converts constraints dropped during normalization
// into positioned internal-error diagnostics and a module-failing
// error. A healthy build never reaches this path; it exists so an
// effects-language extension missing a Normalize case degrades to one
// failed module instead of a crashed corpus run. The diagnostic
// wording is shared with confine via effects.ReportMalformed.
func (m *Module) reportMalformed(mal []effects.MalformedExpr) error {
	if !effects.ReportMalformed(m.Diags, m.Prog.File, mal) {
		return nil
	}
	return fmt.Errorf("%s: %w", m.Name, m.Diags.Err())
}
