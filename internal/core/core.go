// Package core is the public facade of the local non-aliasing
// toolkit: it wires the pipeline of the paper end to end —
//
//	parse → standard types → alias-and-effect inference →
//	restrict/confine checking or inference → flow-sensitive
//	locked/unlocked qualifier analysis
//
// — and exposes the three-mode locking experiment of Section 7
// (no-confine / confine-inference / all-updates-strong).
package core

import (
	"fmt"

	"localalias/internal/ast"
	"localalias/internal/confine"
	"localalias/internal/infer"
	"localalias/internal/parser"
	"localalias/internal/qual"
	"localalias/internal/restrict"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// Module is a parsed and standard-type-checked compilation unit.
type Module struct {
	Name  string
	Prog  *ast.Program
	TInfo *types.Info
	Diags *source.Diagnostics
}

// LoadModule parses and type checks src. It fails on lexical,
// syntactic or standard type errors.
func LoadModule(name, src string) (*Module, error) {
	diags := &source.Diagnostics{}
	prog := parser.Parse(name, src, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%s: %w", name, diags.Err())
	}
	tinfo := types.Check(prog, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%s: %w", name, diags.Err())
	}
	return &Module{Name: name, Prog: prog, TInfo: tinfo, Diags: diags}, nil
}

// CheckAnnotations verifies the module's explicit restrict/confine
// annotations (Sections 4 and 6.1). The result's Violations are also
// appended to m.Diags.
func (m *Module) CheckAnnotations() *restrict.CheckResult {
	return restrict.Check(m.TInfo, m.Diags)
}

// InferRestrict runs restrict inference (Section 5), marking
// successful lets in the AST.
func (m *Module) InferRestrict(params bool) *restrict.InferResult {
	return restrict.Infer(m.TInfo, m.Diags, restrict.Options{Params: params})
}

// LockingOptions configures the three-mode locking experiment.
type LockingOptions struct {
	// General selects the exhaustive scope search instead of the
	// paper's syntactic heuristic (Section 7).
	General bool
	// NoParams disables parameter restrict inference in the
	// confine-inference mode (on by default: it is how strong updates
	// cross helper-function boundaries).
	NoParams bool
	// NoLets disables let-or-restrict inference (Section 5) in the
	// confine-inference mode (on by default: it recovers strong
	// updates for locks held in local pointer bindings).
	NoLets bool
}

// LockingResult carries the three reports of the Section 7
// experiment for one module.
type LockingResult struct {
	Module *Module

	// NoConfine is the baseline: weak updates wherever aliasing
	// demands them.
	NoConfine *qual.Report
	// WithConfine is the analysis after confine inference.
	WithConfine *qual.Report
	// AllStrong assumes every update is strong: the upper bound on
	// what strong-update recovery can eliminate.
	AllStrong *qual.Report

	// Confine is the inference run that produced WithConfine.
	Confine *confine.Result

	// SolveStats aggregates the constraint-solver work counters over
	// both solves (the baseline solve shared by the no-confine and
	// all-strong modes, and the confine-inference solve).
	SolveStats solve.Stats
}

// Potential returns the number of spurious errors that strong
// updates could eliminate (noConfine − allStrong).
func (r *LockingResult) Potential() int {
	return r.NoConfine.NumErrors() - r.AllStrong.NumErrors()
}

// Eliminated returns the number of errors confine inference actually
// eliminated (noConfine − withConfine).
func (r *LockingResult) Eliminated() int {
	return r.NoConfine.NumErrors() - r.WithConfine.NumErrors()
}

// AnalyzeLocking runs the three analysis modes of the experiment.
// The module's AST is rewritten in place by confine inference (the
// baseline and all-strong modes run first, on the pristine tree).
func (m *Module) AnalyzeLocking(opts LockingOptions) (*LockingResult, error) {
	out := &LockingResult{Module: m}

	// Baseline and upper bound on the pristine AST.
	baseInfer := infer.Run(m.TInfo, m.Diags, infer.Options{})
	baseSol := solve.Solve(baseInfer.Sys)
	out.NoConfine = qual.Analyze(baseInfer, baseSol, qual.ModePlain)
	out.AllStrong = qual.Analyze(baseInfer, baseSol, qual.ModeAllStrong)

	// Confine inference (mutates the AST), then the qualifier
	// analysis over the surviving bindings.
	cres, err := confine.InferAndApply(m.Prog, m.Diags, confine.Options{
		General: opts.General,
		Params:  !opts.NoParams,
		Lets:    !opts.NoLets,
	})
	if err != nil {
		return nil, err
	}
	out.Confine = cres
	out.WithConfine = qual.Analyze(cres.Infer, cres.Solution, qual.ModePlain)
	out.SolveStats.Add(baseSol.Stats)
	out.SolveStats.Add(cres.Solution.Stats)
	return out, nil
}
