package types

import (
	"localalias/internal/ast"
	"localalias/internal/source"
	"localalias/internal/token"
)

// Check runs the standard type checker over prog, recording errors in
// diags and returning the collected Info. The Info is usable (best
// effort) even when errors were reported; callers should consult
// diags.HasErrors before running later phases.
func Check(prog *ast.Program, diags *source.Diagnostics) *Info {
	return CheckWith(prog, diags, nil)
}

// CheckWith is Check with cross-module import resolution: imports
// supplies the exported surface of every module this one may import.
// Import declarations naming packages absent from the map get a
// positioned "package not found" error; qualified calls pkg.fn(...)
// are checked against the imported signatures.
func CheckWith(prog *ast.Program, diags *source.Diagnostics, imports ImportSigs) *Info {
	c := &checker{
		info: &Info{
			Prog:         prog,
			ExprTypes:    make(map[ast.Expr]Type),
			IsPlace:      make(map[ast.Expr]bool),
			Uses:         make(map[*ast.VarExpr]*Symbol),
			Binders:      make(map[ast.Node]*Symbol),
			StructAllocs: make(map[*ast.NewExpr]*ast.StructDecl),
			Funs:         Builtins(),
			Structs:      make(map[string]*ast.StructDecl),
			Globals:      make(map[string]*Symbol),
			Imports:      make(map[string]*PkgSig),
		},
		diags:   diags,
		file:    prog.File,
		imports: imports,
	}
	c.collect(prog)
	for _, f := range prog.Funs {
		c.checkFun(f)
	}
	return c.info
}

type checker struct {
	info    *Info
	diags   *source.Diagnostics
	file    *source.File
	imports ImportSigs

	scopes []map[string]*Symbol
	cur    *FunSig // function being checked
}

func (c *checker) errorf(sp source.Span, format string, args ...any) {
	c.diags.Errorf(c.file, sp, "types", format, args...)
}

// ---------------------------------------------------------------------
// Declaration collection

func (c *checker) collect(prog *ast.Program) {
	for _, im := range prog.Imports {
		if _, dup := c.info.Imports[im.Path]; dup {
			c.errorf(im.Sp, "duplicate import %q", im.Path)
			continue
		}
		ps := c.imports[im.Path]
		if ps == nil {
			c.errorf(im.Sp, "cannot resolve import %q: package not found", im.Path)
		}
		c.info.Imports[im.Path] = ps
	}
	for _, s := range prog.Structs {
		if _, dup := c.info.Structs[s.Name]; dup {
			c.errorf(s.Sp, "struct %q redeclared", s.Name)
			continue
		}
		c.info.Structs[s.Name] = s
	}
	// Validate struct fields and by-value containment cycles.
	for _, s := range prog.Structs {
		seen := map[string]bool{}
		for _, f := range s.Fields {
			if seen[f.Name] {
				c.errorf(f.Sp, "field %q redeclared in struct %q", f.Name, s.Name)
			}
			seen[f.Name] = true
			c.resolveType(f.Type)
		}
	}
	for _, s := range prog.Structs {
		c.checkContainment(s, map[string]bool{})
	}
	for _, g := range prog.Globals {
		if _, dup := c.info.Globals[g.Name]; dup {
			c.errorf(g.Sp, "global %q redeclared", g.Name)
			continue
		}
		t := c.resolveType(g.Type)
		if IsUnit(t) {
			c.errorf(g.Sp, "global %q cannot have type unit", g.Name)
		}
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Type: t, Def: g}
		c.info.Globals[g.Name] = sym
		c.info.Binders[g] = sym
	}
	for _, f := range prog.Funs {
		if sig, dup := c.info.Funs[f.Name]; dup {
			if sig.Builtin {
				c.errorf(f.Sp, "function %q conflicts with a builtin", f.Name)
			} else {
				c.errorf(f.Sp, "function %q redeclared", f.Name)
			}
			continue
		}
		sig := &FunSig{Decl: f, Name: f.Name, Result: UnitType}
		for _, p := range f.Params {
			pt := c.resolveType(p.Type)
			if !IsScalar(pt) {
				c.errorf(p.Sp, "parameter %q must have a scalar type (int or ref), not %s",
					p.Name, pt)
			}
			if p.Restrict {
				if _, isRef := pt.(*Ref); !isRef {
					c.errorf(p.Sp, "restrict-qualified parameter %q must be a pointer, not %s",
						p.Name, pt)
				}
			}
			sig.Params = append(sig.Params, pt)
		}
		if f.Result != nil {
			rt := c.resolveType(f.Result)
			if !IsScalar(rt) && !IsUnit(rt) {
				c.errorf(f.Result.Span(), "result type must be scalar or unit, not %s", rt)
			}
			sig.Result = rt
		}
		c.info.Funs[f.Name] = sig
	}
}

// checkContainment rejects structs that contain themselves by value.
func (c *checker) checkContainment(s *ast.StructDecl, onPath map[string]bool) {
	if onPath[s.Name] {
		c.errorf(s.Sp, "struct %q contains itself by value", s.Name)
		return
	}
	onPath[s.Name] = true
	defer delete(onPath, s.Name)
	for _, f := range s.Fields {
		t := f.Type
		for {
			if at, ok := t.(*ast.ArrayType); ok {
				t = at.Elem
				continue
			}
			break
		}
		if nt, ok := t.(*ast.NamedType); ok {
			if inner := c.info.Structs[nt.Name]; inner != nil {
				c.checkContainment(inner, onPath)
			}
		}
	}
}

// resolveType converts a syntactic type to a semantic one, reporting
// unknown struct names.
func (c *checker) resolveType(t ast.TypeExpr) Type {
	switch t := t.(type) {
	case *ast.PrimType:
		switch t.Kind {
		case ast.PrimInt:
			return IntType
		case ast.PrimUnit:
			return UnitType
		case ast.PrimLock:
			return LockType
		}
	case *ast.NamedType:
		if s := c.info.Structs[t.Name]; s != nil {
			return &Named{Decl: s}
		}
		c.errorf(t.Sp, "unknown type %q", t.Name)
		return IntType
	case *ast.RefType:
		return &Ref{Elem: c.resolveType(t.Elem)}
	case *ast.ArrayType:
		return &Array{Elem: c.resolveType(t.Elem), Size: t.Size}
	}
	return IntType
}

// ---------------------------------------------------------------------
// Scopes

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol, sp source.Span) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		c.errorf(sp, "%q redeclared in this scope", sym.Name)
	}
	top[sym.Name] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if sym, ok := c.scopes[i][name]; ok {
			return sym
		}
	}
	return c.info.Globals[name]
}

// ---------------------------------------------------------------------
// Functions and statements

func (c *checker) checkFun(f *ast.FunDecl) {
	sig := c.info.Funs[f.Name]
	if sig == nil || sig.Decl != f {
		return // redeclared; already reported
	}
	c.cur = sig
	c.push()
	for i, p := range f.Params {
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: sig.Params[i], Def: p}
		c.declare(sym, p.Sp)
		c.info.Binders[p] = sym
	}
	c.checkBlock(f.Body)
	c.pop()
	c.cur = nil
}

func (c *checker) checkBlock(b *ast.Block) {
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		t := c.checkExpr(s.Init)
		if !IsScalar(t) {
			c.errorf(s.Init.Span(), "let initializer must be a scalar value (int or ref), not %s", t)
			t = IntType
		}
		sym := &Symbol{Name: s.Name, Kind: SymLet, Type: t, Def: s}
		c.declare(sym, s.Sp)
		c.info.Binders[s] = sym

	case *ast.BindStmt:
		t := c.checkExpr(s.Init)
		if s.Kind == ast.BindRestrict {
			if _, ok := t.(*Ref); !ok {
				c.errorf(s.Init.Span(), "restrict initializer must be a pointer, not %s", t)
			}
		} else if !IsScalar(t) {
			c.errorf(s.Init.Span(), "let initializer must be a scalar value, not %s", t)
			t = IntType
		}
		sym := &Symbol{Name: s.Name, Kind: SymLet, Type: t, Def: s}
		c.info.Binders[s] = sym
		c.push()
		c.declare(sym, s.Sp)
		c.checkBlock(s.Body)
		c.pop()

	case *ast.ConfineStmt:
		t := c.checkExpr(s.Expr)
		if _, ok := t.(*Ref); !ok {
			c.errorf(s.Expr.Span(), "confined expression must be a pointer, not %s", t)
		}
		c.checkBlock(s.Body)

	case *ast.AssignStmt:
		lt, ok := c.checkPlace(s.LHS)
		if ok {
			if IsLock(lt) {
				c.errorf(s.LHS.Span(), "lock storage cannot be assigned; locks are handled by address")
			} else if !IsScalar(lt) {
				c.errorf(s.LHS.Span(), "cannot assign whole %s storage", lt)
			}
		}
		rt := c.checkExpr(s.RHS)
		if ok && IsScalar(lt) && !Equal(lt, rt) {
			c.errorf(s.Sp, "cannot assign %s to %s", rt, lt)
		}

	case *ast.ExprStmt:
		c.checkExpr(s.X)

	case *ast.IfStmt:
		ct := c.checkExpr(s.Cond)
		if !Equal(ct, IntType) {
			c.errorf(s.Cond.Span(), "condition must be int, not %s", ct)
		}
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkBlock(s.Else)
		}

	case *ast.WhileStmt:
		ct := c.checkExpr(s.Cond)
		if !Equal(ct, IntType) {
			c.errorf(s.Cond.Span(), "condition must be int, not %s", ct)
		}
		c.checkBlock(s.Body)

	case *ast.ReturnStmt:
		var want Type = UnitType
		if c.cur != nil {
			want = c.cur.Result
		}
		if s.X == nil {
			if !IsUnit(want) {
				c.errorf(s.Sp, "missing return value (function returns %s)", want)
			}
			return
		}
		got := c.checkExpr(s.X)
		if IsUnit(want) {
			c.errorf(s.Sp, "unexpected return value in unit function")
		} else if !Equal(got, want) {
			c.errorf(s.Sp, "cannot return %s from function returning %s", got, want)
		}

	case *ast.Block:
		c.checkBlock(s)
	}
}

// ---------------------------------------------------------------------
// Expressions

// checkExpr types e as a first-class value. Place expressions are
// checked as reads: their content type must be scalar.
func (c *checker) checkExpr(e ast.Expr) Type {
	t := c.exprOrPlace(e, false)
	return t
}

// checkPlace types e as a place (lvalue). The returned bool is false
// when e is not a place at all (already reported).
func (c *checker) checkPlace(e ast.Expr) (Type, bool) {
	if !isPlaceForm(e, c) {
		c.errorf(e.Span(), "expression is not assignable/addressable storage")
		c.exprOrPlace(e, false)
		return IntType, false
	}
	return c.exprOrPlace(e, true), true
}

// isPlaceForm reports whether e is syntactically a place: a global
// variable, a dereference, an index, or a field access.
func isPlaceForm(e ast.Expr, c *checker) bool {
	switch e := e.(type) {
	case *ast.VarExpr:
		// Resolved variables are handled by the checker proper, which
		// reports the precise "bound value, not storage" error for
		// params and lets.
		return c.lookup(e.Name) != nil
	case *ast.DerefExpr, *ast.IndexExpr, *ast.FieldExpr:
		return true
	default:
		return false
	}
}

// exprOrPlace is the single recursive checker. asPlace selects place
// typing for the outermost node: the result is the content type of
// the storage rather than a value, and reads of non-scalar content
// are not rejected.
func (c *checker) exprOrPlace(e ast.Expr, asPlace bool) Type {
	t := c.exprOrPlace1(e, asPlace)
	c.info.ExprTypes[e] = t
	if asPlace {
		c.info.IsPlace[e] = true
	} else {
		// Rvalue uses of place forms are still place reads; record
		// them so effect inference can attribute read effects.
		switch e.(type) {
		case *ast.DerefExpr, *ast.IndexExpr, *ast.FieldExpr:
			c.info.IsPlace[e] = true
		}
	}
	return t
}

func (c *checker) exprOrPlace1(e ast.Expr, asPlace bool) Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return IntType

	case *ast.VarExpr:
		sym := c.lookup(e.Name)
		if sym == nil {
			if _, isFun := c.info.Funs[e.Name]; isFun {
				c.errorf(e.Sp, "function %q used as a value (MiniC has no function pointers)", e.Name)
			} else {
				c.errorf(e.Sp, "undefined name %q", e.Name)
			}
			return IntType
		}
		c.info.Uses[e] = sym
		if sym.Kind == SymGlobal {
			// A global is storage: as a value it is a read of the
			// cell, which must hold a scalar.
			c.info.IsPlace[e] = true
			if !asPlace && !IsScalar(sym.Type) {
				c.errorf(e.Sp, "%s global %q can only be indexed, selected or addressed",
					sym.Type, e.Name)
			}
			return sym.Type
		}
		if asPlace {
			c.errorf(e.Sp, "%s %q is a bound value, not storage; it cannot be assigned or addressed",
				sym.Kind, e.Name)
		}
		return sym.Type

	case *ast.NewExpr:
		// "new S" where S names a struct allocates an instance.
		if v, ok := e.Init.(*ast.VarExpr); ok {
			if sd := c.info.Structs[v.Name]; sd != nil {
				c.info.StructAllocs[e] = sd
				c.info.ExprTypes[e.Init] = &Named{Decl: sd}
				return &Ref{Elem: &Named{Decl: sd}}
			}
		}
		it := c.checkExpr(e.Init)
		if !IsScalar(it) {
			c.errorf(e.Init.Span(), "new initializer must be a scalar value, not %s", it)
			it = IntType
		}
		return &Ref{Elem: it}

	case *ast.DerefExpr:
		xt := c.checkExpr(e.X)
		rt, ok := xt.(*Ref)
		if !ok {
			c.errorf(e.Sp, "cannot dereference %s", xt)
			return IntType
		}
		if !asPlace && !IsScalar(rt.Elem) {
			c.errorf(e.Sp, "cannot read %s storage as a value", rt.Elem)
		}
		return rt.Elem

	case *ast.AddrExpr:
		ct, ok := c.checkPlace(e.X)
		if !ok {
			return &Ref{Elem: IntType}
		}
		if _, isArr := ct.(*Array); isArr {
			c.errorf(e.Sp, "cannot take the address of whole array storage; address an element")
		}
		return &Ref{Elem: ct}

	case *ast.IndexExpr:
		xt, ok := c.checkPlace(e.X)
		it := c.checkExpr(e.Index)
		if !Equal(it, IntType) {
			c.errorf(e.Index.Span(), "array index must be int, not %s", it)
		}
		if !ok {
			return IntType
		}
		at, isArr := xt.(*Array)
		if !isArr {
			c.errorf(e.Sp, "cannot index %s", xt)
			return IntType
		}
		if !asPlace && !IsScalar(at.Elem) {
			c.errorf(e.Sp, "cannot read %s element as a value", at.Elem)
		}
		return at.Elem

	case *ast.FieldExpr:
		var st Type
		if e.Arrow {
			xt := c.checkExpr(e.X)
			rt, ok := xt.(*Ref)
			if !ok {
				c.errorf(e.Sp, "-> requires a pointer, got %s", xt)
				return IntType
			}
			st = rt.Elem
		} else {
			var ok bool
			st, ok = c.checkPlace(e.X)
			if !ok {
				return IntType
			}
		}
		nt, ok := st.(*Named)
		if !ok {
			c.errorf(e.Sp, "field access on non-struct %s", st)
			return IntType
		}
		for _, f := range nt.Decl.Fields {
			if f.Name == e.Name {
				ft := c.resolveType(f.Type)
				if !asPlace && !IsScalar(ft) {
					c.errorf(e.Sp, "cannot read %s field as a value", ft)
				}
				return ft
			}
		}
		c.errorf(e.Sp, "struct %q has no field %q", nt.Decl.Name, e.Name)
		return IntType

	case *ast.BinExpr:
		xt := c.checkExpr(e.X)
		yt := c.checkExpr(e.Y)
		switch e.Op {
		case token.Eq, token.NotEq:
			if !Equal(xt, yt) {
				c.errorf(e.Sp, "mismatched comparison: %s %s %s", xt, e.Op, yt)
			} else if !IsScalar(xt) {
				c.errorf(e.Sp, "cannot compare %s values", xt)
			}
			return IntType
		default:
			if !Equal(xt, IntType) {
				c.errorf(e.X.Span(), "operator %s requires int, got %s", e.Op, xt)
			}
			if !Equal(yt, IntType) {
				c.errorf(e.Y.Span(), "operator %s requires int, got %s", e.Op, yt)
			}
			return IntType
		}

	case *ast.UnExpr:
		xt := c.checkExpr(e.X)
		if !Equal(xt, IntType) {
			c.errorf(e.X.Span(), "operator %s requires int, got %s", e.Op, xt)
		}
		return IntType

	case *ast.CallExpr:
		var sig *FunSig
		if pkg, name, ok := ast.SplitQualified(e.Fun); ok {
			sig = c.importedSig(e, pkg, name)
		} else {
			sig = c.info.Funs[e.Fun]
			if sig == nil {
				c.errorf(e.Sp, "call to undefined function %q", e.Fun)
			}
		}
		if sig == nil {
			for _, a := range e.Args {
				c.checkExpr(a)
			}
			return IntType
		}
		if len(e.Args) != len(sig.Params) {
			c.errorf(e.Sp, "%q expects %d argument(s), got %d", e.Fun, len(sig.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at := c.checkExpr(a)
			if i < len(sig.Params) && !Equal(at, sig.Params[i]) {
				c.errorf(a.Span(), "argument %d of %q: cannot use %s as %s",
					i+1, e.Fun, at, sig.Params[i])
			}
		}
		return sig.Result

	default:
		c.errorf(e.Span(), "unsupported expression %T", e)
		return IntType
	}
}

// importedSig resolves a qualified call pkg.name against the declared
// imports, reporting positioned errors for undeclared packages and
// unknown exported functions. Failed import resolution is reported at
// the import declaration, not again at every call site.
func (c *checker) importedSig(e *ast.CallExpr, pkg, name string) *FunSig {
	if c.info.Prog.Import(pkg) == nil {
		c.errorf(e.Sp, "call to %q: package %q is not imported", e.Fun, pkg)
		return nil
	}
	ps := c.info.Imports[pkg]
	if ps == nil {
		return nil
	}
	sig := ps.Funs[name]
	if sig == nil {
		c.errorf(e.Sp, "package %q has no exported function %q", pkg, name)
		return nil
	}
	return sig
}

// FieldType resolves the declared type of field name in struct decl
// (nil if absent). Exposed for later phases.
func (in *Info) FieldType(decl *ast.StructDecl, name string) Type {
	for _, f := range decl.Fields {
		if f.Name == name {
			return resolveTypeIn(in, f.Type)
		}
	}
	return nil
}

func resolveTypeIn(in *Info, t ast.TypeExpr) Type {
	switch t := t.(type) {
	case *ast.PrimType:
		switch t.Kind {
		case ast.PrimInt:
			return IntType
		case ast.PrimUnit:
			return UnitType
		case ast.PrimLock:
			return LockType
		}
	case *ast.NamedType:
		if s := in.Structs[t.Name]; s != nil {
			return &Named{Decl: s}
		}
	case *ast.RefType:
		return &Ref{Elem: resolveTypeIn(in, t.Elem)}
	case *ast.ArrayType:
		return &Array{Elem: resolveTypeIn(in, t.Elem), Size: t.Size}
	}
	return IntType
}
