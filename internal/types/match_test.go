package types

import (
	"testing"

	"localalias/internal/ast"
	"localalias/internal/parser"
	"localalias/internal/source"
)

func checkInfo(t *testing.T, src string) *Info {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %s", diags.String())
	}
	info := Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("types: %s", diags.String())
	}
	return info
}

// exprsIn collects expressions matching the rendering, in order.
func exprsIn(prog *ast.Program, rendering string) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(prog, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && ast.ExprString(e) == rendering {
			out = append(out, e)
		}
		return true
	})
	return out
}

func TestEqualResolvedSameSymbol(t *testing.T) {
	info := checkInfo(t, `
global locks: lock[4];
fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
}
`)
	es := exprsIn(info.Prog, "&locks[i]")
	if len(es) != 2 {
		t.Fatalf("occurrences: %d", len(es))
	}
	if !info.EqualResolved(es[0], es[1]) {
		t.Error("same-scope occurrences must match")
	}
}

func TestEqualResolvedShadowing(t *testing.T) {
	// The two &locks[i] resolve i to DIFFERENT symbols (the inner let
	// shadows the parameter inside the block).
	info := checkInfo(t, `
global locks: lock[4];
fun f(i: int) {
    spin_lock(&locks[i]);
    if (1) {
        let i = 0;
        spin_unlock(&locks[i]);
    }
}
`)
	es := exprsIn(info.Prog, "&locks[i]")
	if len(es) != 2 {
		t.Fatalf("occurrences: %d", len(es))
	}
	if info.EqualResolved(es[0], es[1]) {
		t.Error("shadowed occurrences must NOT match")
	}
}

func TestEqualResolvedDifferentShape(t *testing.T) {
	info := checkInfo(t, `
global locks: lock[4];
fun f(i: int, j: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[j]);
}
`)
	a := exprsIn(info.Prog, "&locks[i]")
	b := exprsIn(info.Prog, "&locks[j]")
	if len(a) != 1 || len(b) != 1 {
		t.Fatal("setup")
	}
	if info.EqualResolved(a[0], b[0]) {
		t.Error("different index variables must not match")
	}
}

func TestFieldTypeLookup(t *testing.T) {
	info := checkInfo(t, `
struct dev {
    l: lock;
    n: int;
    next: ref dev;
    regs: int[4];
}
fun f(d: ref dev): int { return d->n; }
`)
	decl := info.Structs["dev"]
	cases := map[string]string{
		"l":    "lock",
		"n":    "int",
		"next": "ref dev",
		"regs": "int[4]",
	}
	for name, want := range cases {
		ft := info.FieldType(decl, name)
		if ft == nil || ft.String() != want {
			t.Errorf("FieldType(%s) = %v, want %s", name, ft, want)
		}
	}
	if info.FieldType(decl, "missing") != nil {
		t.Error("absent field must be nil")
	}
}

func TestSymKindStrings(t *testing.T) {
	want := map[SymKind]string{
		SymGlobal: "global", SymParam: "param", SymLet: "let", SymFun: "fun",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d: %q", k, k.String())
		}
	}
}

func TestIsLockOp(t *testing.T) {
	if !IsLockOp("spin_lock") || !IsLockOp("spin_unlock") {
		t.Error("lock ops")
	}
	if IsLockOp("work") || IsLockOp("print") || IsLockOp("") {
		t.Error("non lock ops")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		IntType:                          "int",
		UnitType:                         "unit",
		LockType:                         "lock",
		&Ref{Elem: &Ref{Elem: IntType}}:  "ref ref int",
		&Array{Elem: LockType, Size: 16}: "lock[16]",
	}
	for ty, want := range cases {
		if ty.String() != want {
			t.Errorf("%q != %q", ty.String(), want)
		}
	}
}
