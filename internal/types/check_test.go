package types

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/parser"
	"localalias/internal/source"
)

func checkOK(t *testing.T, src string) *Info {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("test.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	info := Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("type errors:\n%s", diags.String())
	}
	return info
}

func checkBad(t *testing.T, src, wantSubstr string) {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("test.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	Check(prog, &diags)
	if !diags.HasErrors() {
		t.Fatalf("expected type error containing %q, got none", wantSubstr)
	}
	if wantSubstr != "" && !strings.Contains(diags.String(), wantSubstr) {
		t.Fatalf("expected error containing %q, got:\n%s", wantSubstr, diags.String())
	}
}

func TestCheckFigure1(t *testing.T) {
	info := checkOK(t, `
global locks: lock[8];
fun foo(i: int) {
    do_with_lock(&locks[i]);
}
fun do_with_lock(l: ref lock) {
    spin_lock(l);
    work();
    spin_unlock(l);
}
`)
	sig := info.Funs["do_with_lock"]
	if sig == nil || len(sig.Params) != 1 {
		t.Fatal("missing signature")
	}
	if sig.Params[0].String() != "ref lock" {
		t.Errorf("param: %s", sig.Params[0])
	}
}

func TestCheckLocksSecondClass(t *testing.T) {
	checkBad(t, `
global l: lock;
fun f() {
    let x = l;
}
`, "let initializer must be a scalar")
	checkBad(t, `
global a: lock; global b: lock;
fun f() {
    a = b;
}
`, "lock")
}

func TestCheckAggregatesSecondClass(t *testing.T) {
	checkBad(t, `
global a: int[4];
fun f() {
    let x = a;
}
`, "")
	checkBad(t, `
struct s { x: int; }
global a: s; global b: s;
fun f() {
    a = b;
}
`, "")
	checkBad(t, `
global a: int[4];
fun f(): ref int {
    return &a;
}
`, "address of whole array")
}

func TestCheckLocalsNotAddressable(t *testing.T) {
	checkBad(t, `
fun f() {
    let x = 1;
    let p = &x;
}
`, "bound value")
	checkBad(t, `
fun f(x: int) {
    x = 2;
}
`, "bound value")
}

func TestCheckDerefAndNew(t *testing.T) {
	info := checkOK(t, `
fun f(): int {
    let p = new 41;
    *p = *p + 1;
    return *p;
}
`)
	_ = info
	checkBad(t, `fun f() { let x = 1; let y = *x; }`, "cannot dereference int")
	checkBad(t, `fun f() { let p = new work(); }`, "scalar")
}

func TestCheckStructAlloc(t *testing.T) {
	info := checkOK(t, `
struct dev { l: lock; n: int; }
fun f(): int {
    let d = new dev;
    spin_lock(&d->l);
    d->n = 3;
    spin_unlock(&d->l);
    return d->n;
}
`)
	found := false
	for _, sd := range info.StructAllocs {
		if sd.Name == "dev" {
			found = true
		}
	}
	if !found {
		t.Error("struct allocation not recorded")
	}
}

func TestCheckFieldErrors(t *testing.T) {
	checkBad(t, `
struct dev { l: lock; }
fun f(d: ref dev) {
    d->missing = 1;
}
`, "no field")
	checkBad(t, `
fun f(x: int) {
    let y = x.f;
}
`, "field access on non-struct")
}

func TestCheckStructContainmentCycle(t *testing.T) {
	checkBad(t, `
struct a { x: b; }
struct b { y: a; }
fun f() { return; }
`, "contains itself by value")
	// Via ref is fine.
	checkOK(t, `
struct node { next: ref node; v: int; }
fun f(n: ref node): int { return n->v; }
`)
}

func TestCheckCalls(t *testing.T) {
	checkBad(t, `fun f() { g(); }`, "undefined function")
	checkBad(t, `
fun g(x: int): int { return x; }
fun f() { g(); }
`, "expects 1 argument")
	checkBad(t, `
fun g(x: int): int { return x; }
fun f(p: ref int) { g(p); }
`, "cannot use ref int as int")
	checkBad(t, `
fun g(): int { return 1; }
fun g(): int { return 2; }
`, "redeclared")
	checkBad(t, `fun spin_lock(l: ref lock) { work(); }`, "builtin")
}

func TestCheckReturns(t *testing.T) {
	checkBad(t, `fun f(): int { return; }`, "missing return value")
	checkBad(t, `fun f() { return 3; }`, "unexpected return value")
	checkBad(t, `fun f(): int { return new 1; }`, "cannot return ref int")
}

func TestCheckRestrictRequiresPointer(t *testing.T) {
	checkBad(t, `
fun f() {
    restrict p = 3 {
        work();
    }
}
`, "restrict initializer must be a pointer")
	checkOK(t, `
fun f(q: ref int) {
    restrict p = q {
        *p = 1;
    }
}
`)
}

func TestCheckConfineRequiresPointer(t *testing.T) {
	checkBad(t, `
fun f() {
    confine 3 {
        work();
    }
}
`, "confined expression must be a pointer")
	checkOK(t, `
global locks: lock[4];
fun f(i: int) {
    confine &locks[i] {
        spin_lock(&locks[i]);
        spin_unlock(&locks[i]);
    }
}
`)
}

func TestCheckScopes(t *testing.T) {
	checkBad(t, `
fun f() {
    let x = 1;
    let x = 2;
}
`, "redeclared in this scope")
	// Shadowing in a nested scope is allowed.
	checkOK(t, `
fun f(q: ref int) {
    let x = 1;
    restrict x = q {
        *x = 2;
    }
    let y = x + 1;
}
`)
	// A let bound in an inner block is not visible outside.
	checkBad(t, `
fun f() {
    if (1) {
        let x = 1;
    }
    let y = x;
}
`, "undefined name")
}

func TestCheckGlobalScalar(t *testing.T) {
	info := checkOK(t, `
global counter: int;
fun f(): int {
    counter = counter + 1;
    return counter;
}
`)
	sym := info.Globals["counter"]
	if sym == nil || !Equal(sym.Type, IntType) {
		t.Fatalf("counter symbol: %+v", sym)
	}
}

func TestCheckCondMustBeInt(t *testing.T) {
	checkBad(t, `fun f(p: ref int) { if (p) { work(); } }`, "condition must be int")
	checkBad(t, `fun f(p: ref int) { while (p) { work(); } }`, "condition must be int")
	checkOK(t, `fun f(p: ref int, q: ref int) { if (p == q) { work(); } }`)
}

func TestCheckComparisonTypes(t *testing.T) {
	checkBad(t, `fun f(p: ref int, x: int) { if (p == x) { work(); } }`, "mismatched comparison")
	checkBad(t, `fun f(p: ref int, x: int) { let y = p + x; }`, "requires int")
}

func TestCheckUsesResolved(t *testing.T) {
	info := checkOK(t, `
global g: int;
fun f(x: int): int {
    let y = x + g;
    return y;
}
`)
	var kinds []SymKind
	ast.Inspect(info.Prog, func(n ast.Node) bool {
		if v, ok := n.(*ast.VarExpr); ok {
			if sym := info.Uses[v]; sym != nil {
				kinds = append(kinds, sym.Kind)
			}
		}
		return true
	})
	// x (param), g (global), y (let) in return.
	if len(kinds) != 3 {
		t.Fatalf("resolved %d uses, want 3", len(kinds))
	}
}

func TestCheckPlaceClassification(t *testing.T) {
	info := checkOK(t, `
global a: int[4];
fun f(p: ref int): int {
    a[0] = *p;
    return a[1] + *p;
}
`)
	places := 0
	for e, isP := range info.IsPlace {
		if isP {
			switch e.(type) {
			case *ast.IndexExpr, *ast.DerefExpr, *ast.VarExpr:
				places++
			}
		}
	}
	if places < 4 {
		t.Errorf("place classification too sparse: %d", places)
	}
}

func TestCheckNestedArrays(t *testing.T) {
	checkOK(t, `
global grid: int[3][4];
fun f(): int {
    grid[1][2] = 7;
    return grid[1][2];
}
`)
}

func TestCheckArrayOfStructs(t *testing.T) {
	checkOK(t, `
struct dev { l: lock; n: int; }
global devs: dev[4];
fun f(i: int) {
    spin_lock(&devs[i].l);
    devs[i].n = 1;
    spin_unlock(&devs[i].l);
}
`)
}

func TestEqualIgnoresArraySize(t *testing.T) {
	a := &Array{Elem: IntType, Size: 3}
	b := &Array{Elem: IntType, Size: 5}
	if !Equal(a, b) {
		t.Error("array sizes must be ignored by Equal")
	}
	if Equal(&Ref{Elem: IntType}, &Ref{Elem: LockType}) {
		t.Error("ref elem types must match")
	}
}
