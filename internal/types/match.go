package types

import "localalias/internal/ast"

// EqualResolved reports whether a and b are the same expression: they
// must be syntactically identical and every variable occurrence must
// resolve to the same symbol. This is the occurrence test behind the
// confine translation "confine e1 in e2[e1/x]" — the paper assumes
// all variables are renamed apart; resolving through symbols makes
// the test shadowing-proof instead.
func (in *Info) EqualResolved(a, b ast.Expr) bool {
	if !ast.EqualExpr(a, b) {
		return false
	}
	var avs, bvs []*ast.VarExpr
	collect := func(x ast.Expr, out *[]*ast.VarExpr) {
		ast.Inspect(x, func(n ast.Node) bool {
			if v, ok := n.(*ast.VarExpr); ok {
				*out = append(*out, v)
			}
			return true
		})
	}
	collect(a, &avs)
	collect(b, &bvs)
	if len(avs) != len(bvs) {
		return false
	}
	for i := range avs {
		sa, sb := in.Uses[avs[i]], in.Uses[bvs[i]]
		if sa == nil || sb == nil || sa != sb {
			return false
		}
	}
	return true
}
