// Package types implements MiniC's standard type system — the
// qualifier- and location-free types the paper assumes have already
// been checked before alias and effect inference runs ("we assume
// that type checking has already been carried out for the underlying
// standard types of the language", Section 4).
//
// The checker resolves names, computes a standard type for every
// expression, classifies place (lvalue) expressions, and enforces the
// structural rules of the language:
//
//   - locks are second-class: they live in storage and are handled
//     only by address (&lv of lock type); lock values cannot be read,
//     copied or assigned;
//   - arrays and structs are storage, not values: they are indexed,
//     field-selected or addressed, never copied;
//   - let binds values (int or ref); mutation happens only through
//     refs, array elements, struct fields and scalar globals.
package types

import (
	"fmt"

	"localalias/internal/ast"
)

// ---------------------------------------------------------------------
// Standard types

// Type is a standard MiniC type.
type Type interface {
	String() string
	typ()
}

// Prim is int, unit or lock.
type Prim struct{ Kind ast.PrimKind }

// Ref is a pointer to a cell holding Elem.
type Ref struct{ Elem Type }

// Array is Size cells holding Elem.
type Array struct {
	Elem Type
	Size int
}

// Named is a declared struct type.
type Named struct{ Decl *ast.StructDecl }

func (t *Prim) String() string  { return t.Kind.String() }
func (t *Ref) String() string   { return "ref " + t.Elem.String() }
func (t *Array) String() string { return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Size) }
func (t *Named) String() string { return t.Decl.Name }

func (*Prim) typ()  {}
func (*Ref) typ()   {}
func (*Array) typ() {}
func (*Named) typ() {}

// Shared primitive type instances.
var (
	IntType  = &Prim{Kind: ast.PrimInt}
	UnitType = &Prim{Kind: ast.PrimUnit}
	LockType = &Prim{Kind: ast.PrimLock}
)

// Equal reports structural equality (structs are nominal; array sizes
// are ignored, matching the alias analysis's inability to distinguish
// elements).
func Equal(a, b Type) bool {
	switch a := a.(type) {
	case *Prim:
		b, ok := b.(*Prim)
		return ok && a.Kind == b.Kind
	case *Ref:
		b, ok := b.(*Ref)
		return ok && Equal(a.Elem, b.Elem)
	case *Array:
		b, ok := b.(*Array)
		return ok && Equal(a.Elem, b.Elem)
	case *Named:
		b, ok := b.(*Named)
		return ok && a.Decl == b.Decl
	default:
		return false
	}
}

// IsScalar reports whether t is a first-class value type (int or ref).
func IsScalar(t Type) bool {
	switch t := t.(type) {
	case *Prim:
		return t.Kind == ast.PrimInt
	case *Ref:
		return true
	default:
		return false
	}
}

// IsLock reports whether t is the lock type.
func IsLock(t Type) bool {
	p, ok := t.(*Prim)
	return ok && p.Kind == ast.PrimLock
}

// IsUnit reports whether t is unit.
func IsUnit(t Type) bool {
	p, ok := t.(*Prim)
	return ok && p.Kind == ast.PrimUnit
}

// ---------------------------------------------------------------------
// Symbols and checker results

// SymKind classifies a resolved name.
type SymKind int

// The symbol kinds.
const (
	SymGlobal SymKind = iota // module-level storage
	SymParam                 // function parameter (a bound value)
	SymLet                   // let-bound value (DeclStmt or BindStmt)
	SymFun                   // function
)

func (k SymKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymParam:
		return "param"
	case SymLet:
		return "let"
	case SymFun:
		return "fun"
	default:
		return "sym(?)"
	}
}

// Symbol is one resolved definition.
type Symbol struct {
	Name string
	Kind SymKind
	// Type is the value type for params/lets, the storage type for
	// globals.
	Type Type
	// Def is the defining node (*ast.GlobalDecl, *ast.Param,
	// *ast.DeclStmt, *ast.BindStmt, or *ast.FunDecl).
	Def ast.Node
}

// FunSig is a function's checked signature.
type FunSig struct {
	Decl    *ast.FunDecl
	Name    string
	Params  []Type
	Result  Type
	Builtin bool
}

// PkgSig is the exported type surface of a separately-checked module:
// the signatures of its exportable functions, keyed by name.
type PkgSig struct {
	Name string
	Funs map[string]*FunSig
}

// ImportSigs maps import paths to the exported surface of the named
// modules, as supplied by the linker (internal/modgraph). A nil map
// resolves nothing: every import declaration then reports
// "package not found".
type ImportSigs map[string]*PkgSig

// Exportable reports whether sig can cross a module boundary: every
// parameter and the result must be built from int/unit/lock/ref only.
// Module-local struct names would be meaningless to importers, so
// functions mentioning them stay module-private.
func Exportable(sig *FunSig) bool {
	for _, p := range sig.Params {
		if !portable(p) {
			return false
		}
	}
	return portable(sig.Result)
}

func portable(t Type) bool {
	switch t := t.(type) {
	case *Prim:
		return true
	case *Ref:
		return portable(t.Elem)
	case *Array:
		return portable(t.Elem)
	default: // *Named, nil
		return false
	}
}

// Exports returns the package signature a module offers to importers:
// its exportable non-builtin functions. name is the module's package
// name (the path importers use).
func (in *Info) Exports(name string) *PkgSig {
	ps := &PkgSig{Name: name, Funs: make(map[string]*FunSig)}
	for fname, sig := range in.Funs {
		if !sig.Builtin && sig.Decl != nil && Exportable(sig) {
			ps.Funs[fname] = sig
		}
	}
	return ps
}

// Info holds everything the checker learned. Later phases key their
// own tables off the same AST nodes.
type Info struct {
	Prog *ast.Program
	// ExprTypes maps every checked expression to its standard type.
	// For place expressions this is the content type of the place.
	ExprTypes map[ast.Expr]Type
	// IsPlace records which expressions were checked as places
	// (lvalues): globals, derefs, index and field expressions.
	IsPlace map[ast.Expr]bool
	// Uses resolves every variable occurrence to its symbol.
	Uses map[*ast.VarExpr]*Symbol
	// Binders maps each binding node (Param, DeclStmt, BindStmt) to
	// the symbol it introduces.
	Binders map[ast.Node]*Symbol
	// StructAllocs marks NewExpr nodes that allocate a struct (their
	// Init is a type name, not an expression).
	StructAllocs map[*ast.NewExpr]*ast.StructDecl
	// Funs maps function names to signatures (including builtins).
	Funs map[string]*FunSig
	// Structs maps struct names to declarations.
	Structs map[string]*ast.StructDecl
	// Globals maps global names to symbols.
	Globals map[string]*Symbol
	// Imports maps each declared import path to the resolved package
	// signature; entries are nil when resolution failed (the error is
	// reported at the import declaration).
	Imports map[string]*PkgSig
}

// TypeOf returns the checked type of e, or nil.
func (in *Info) TypeOf(e ast.Expr) Type { return in.ExprTypes[e] }

// ChangeOp describes one state-changing builtin — an instance of
// CQUAL's change_type primitive [15]. Every ChangeOp takes a single
// "ref lock" argument whose pointed-to state it flips: Acquire ops
// require the resource released and take it; release ops require it
// held and release it.
type ChangeOp struct {
	Name    string
	Acquire bool
	// Release is the matching op's name (for diagnostics).
	Counterpart string
}

// ChangeOps lists the change_type instances: the spin-lock pair of
// the Section 7 experiment plus an interrupt-flag pair, showing the
// framework is protocol-generic.
func ChangeOps() map[string]ChangeOp {
	return map[string]ChangeOp{
		"spin_lock":   {Name: "spin_lock", Acquire: true, Counterpart: "spin_unlock"},
		"spin_unlock": {Name: "spin_unlock", Acquire: false, Counterpart: "spin_lock"},
		"irq_save":    {Name: "irq_save", Acquire: true, Counterpart: "irq_restore"},
		"irq_restore": {Name: "irq_restore", Acquire: false, Counterpart: "irq_save"},
	}
}

// changeOps is the shared instance used by the predicates below.
var changeOps = ChangeOps()

// Builtins returns the builtin function signatures shared by every
// module: the change_type instances, the opaque work() routine, and
// print.
func Builtins() map[string]*FunSig {
	out := map[string]*FunSig{
		"work": {
			Name:    "work",
			Params:  nil,
			Result:  UnitType,
			Builtin: true,
		},
		"print": {
			Name:    "print",
			Params:  []Type{IntType},
			Result:  UnitType,
			Builtin: true,
		},
	}
	for name := range changeOps {
		out[name] = &FunSig{
			Name:    name,
			Params:  []Type{&Ref{Elem: LockType}},
			Result:  UnitType,
			Builtin: true,
		}
	}
	return out
}

// IsLockOp reports whether name is a state-changing builtin (a
// change_type call in the experiment's terminology).
func IsLockOp(name string) bool {
	_, ok := changeOps[name]
	return ok
}

// LookupChangeOp returns the ChangeOp for name.
func LookupChangeOp(name string) (ChangeOp, bool) {
	op, ok := changeOps[name]
	return op, ok
}
