package interp

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/parser"
	"localalias/internal/source"
	"localalias/internal/types"
)

func build(t *testing.T, src string) *Interp {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("test.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags.String())
	}
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("types:\n%s", diags.String())
	}
	return New(tinfo, Options{})
}

func runMain(t *testing.T, src string) (Value, error) {
	t.Helper()
	return build(t, src).Call("main")
}

func TestEvalArithmetic(t *testing.T) {
	v, err := runMain(t, `
fun main(): int {
    return (1 + 2 * 3 - 4) / 1 % 5;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 3 {
		t.Errorf("got %v", v)
	}
}

func TestEvalRefsAndAssign(t *testing.T) {
	v, err := runMain(t, `
fun main(): int {
    let p = new 10;
    *p = *p + 5;
    let q = p;
    *q = *q * 2;
    return *p;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 30 {
		t.Errorf("got %v", v)
	}
}

func TestEvalControlFlow(t *testing.T) {
	v, err := runMain(t, `
fun fib(n: int): int {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
fun main(): int {
    return fib(10);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 55 {
		t.Errorf("fib(10) = %v", v)
	}
}

func TestEvalWhile(t *testing.T) {
	v, err := runMain(t, `
fun main(): int {
    let i = new 0;
    let acc = new 0;
    while (*i < 10) {
        *acc = *acc + *i;
        *i = *i + 1;
    }
    return *acc;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 45 {
		t.Errorf("got %v", v)
	}
}

func TestEvalGlobalsArraysStructs(t *testing.T) {
	v, err := runMain(t, `
struct pair { a: int; b: int; }
global tbl: int[4];
global p: pair;

fun main(): int {
    tbl[0] = 7;
    tbl[3] = tbl[0] + 1;
    p.a = tbl[3];
    p.b = 2;
    let pp = new pair;
    pp->a = p.a * p.b;
    return pp->a;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 16 {
		t.Errorf("got %v", v)
	}
}

func TestEvalIndexOutOfBoundsTraps(t *testing.T) {
	_, err := runMain(t, `
global tbl: int[4];
fun main(): int {
    return tbl[9];
}
`)
	if _, ok := err.(*Trap); !ok {
		t.Fatalf("want trap, got %v", err)
	}
}

func TestEvalDivZeroTraps(t *testing.T) {
	_, err := runMain(t, `
fun main(): int {
    let z = 0;
    return 1 / z;
}
`)
	if _, ok := err.(*Trap); !ok {
		t.Fatalf("want trap, got %v", err)
	}
}

func TestEvalStepBudget(t *testing.T) {
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", `
fun main() {
    while (1) {
        work();
    }
}
`, &diags)
	tinfo := types.Check(prog, &diags)
	in := New(tinfo, Options{MaxSteps: 1000})
	_, err := in.Call("main")
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("want step trap, got %v", err)
	}
}

// --- Lock runtime semantics ---

func TestEvalLockingOK(t *testing.T) {
	in := build(t, `
global big: lock;
fun main() {
    spin_lock(&big);
    spin_unlock(&big);
}
`)
	if _, err := in.Call("main"); err != nil {
		t.Fatal(err)
	}
	if in.LockEvents != 2 {
		t.Errorf("lock events: %d", in.LockEvents)
	}
}

func TestEvalDoubleLockTraps(t *testing.T) {
	_, err := runMain(t, `
global big: lock;
fun main() {
    spin_lock(&big);
    spin_lock(&big);
}
`)
	if err == nil || !strings.Contains(err.Error(), "already held") {
		t.Fatalf("want self-deadlock trap, got %v", err)
	}
}

func TestEvalUnlockNotHeldTraps(t *testing.T) {
	_, err := runMain(t, `
global big: lock;
fun main() {
    spin_unlock(&big);
}
`)
	if err == nil || !strings.Contains(err.Error(), "not held") {
		t.Fatalf("want trap, got %v", err)
	}
}

// --- Restrict semantics (Section 3.2) ---

func TestRestrictValidUse(t *testing.T) {
	v, err := runMain(t, `
fun main(): int {
    let q = new 5;
    restrict p = q {
        *p = *p + 1;
    }
    return *q;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// The write-back step must propagate the update to the original.
	if v.(int64) != 6 {
		t.Errorf("write-back: got %v, want 6", v)
	}
}

func TestRestrictViolationIsErr(t *testing.T) {
	_, err := runMain(t, `
fun main(): int {
    let q = new 5;
    restrict p = q {
        return *q;
    }
    return 0;
}
`)
	if _, ok := err.(*RestrictErr); !ok {
		t.Fatalf("want err (RestrictErr), got %v", err)
	}
}

func TestRestrictWriteViolationIsErr(t *testing.T) {
	_, err := runMain(t, `
fun main() {
    let q = new 5;
    restrict p = q {
        *q = 1;
    }
}
`)
	if _, ok := err.(*RestrictErr); !ok {
		t.Fatalf("want err, got %v", err)
	}
}

func TestRestrictViolationThroughCall(t *testing.T) {
	// The violating access happens inside a function called within
	// the scope — "an access within a scope is either a direct access
	// or an access that occurs during the execution of a function
	// called within that scope".
	_, err := runMain(t, `
global g: ref int;
fun peek(): int {
    return *g;
}
fun main(): int {
    let q = new 5;
    g = q;
    restrict p = q {
        return peek();
    }
    return 0;
}
`)
	if _, ok := err.(*RestrictErr); !ok {
		t.Fatalf("want err, got %v", err)
	}
}

func TestRestrictCopyUsableAfterEscapeIsErr(t *testing.T) {
	// The copy l' is poisoned after the scope: a pointer that escaped
	// (dynamically) errs when used later.
	_, err := runMain(t, `
global slot: ref int;
fun main(): int {
    let q = new 5;
    restrict p = q {
        slot = p;
    }
    return *slot;
}
`)
	if _, ok := err.(*RestrictErr); !ok {
		t.Fatalf("want err on use of escaped copy, got %v", err)
	}
}

func TestRestrictDoubleRestrictErr(t *testing.T) {
	_, err := runMain(t, `
fun main(): int {
    let x = new 1;
    restrict y = x {
        restrict z = x {
            return *y + *z;
        }
        return 0;
    }
    return 0;
}
`)
	if _, ok := err.(*RestrictErr); !ok {
		t.Fatalf("want err on double restrict, got %v", err)
	}
}

func TestRestrictSequentialOK(t *testing.T) {
	v, err := runMain(t, `
fun main(): int {
    let x = new 1;
    restrict y = x {
        *y = *y + 1;
    }
    restrict z = x {
        *z = *z + 1;
    }
    return *x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 3 {
		t.Errorf("got %v", v)
	}
}

func TestRestrictRemainderScope(t *testing.T) {
	// DeclStmt with Restrict set behaves as a restrict over the
	// remainder of the block.
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", `
fun main(): int {
    let q = new 5;
    let p = q;
    *q = 1;
    return 0;
}
`, &diags)
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.String())
	}
	// Mark p as restrict (as inference would).
	for _, f := range prog.Funs {
		for _, s := range f.Body.Stmts {
			if d, ok := s.(*ast.DeclStmt); ok && d.Name == "p" {
				d.Restrict = true
			}
		}
	}
	in := New(tinfo, Options{})
	_, err := in.Call("main")
	if _, ok := err.(*RestrictErr); !ok {
		t.Fatalf("restricted remainder scope must err on *q write, got %v", err)
	}
}

// --- Confine semantics ---

func TestConfineBasic(t *testing.T) {
	v, err := runMain(t, `
global tbl: int[4];
fun main(): int {
    tbl[2] = 10;
    let i = 2;
    confine &tbl[i] {
        *&tbl[i] = *&tbl[i] + 5;
    }
    return tbl[2];
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 15 {
		t.Errorf("confine write-back: got %v, want 15", v)
	}
}

func TestConfineLockPattern(t *testing.T) {
	in := build(t, `
global locks: lock[4];
fun main(i: int) {
    confine &locks[i] {
        spin_lock(&locks[i]);
        work();
        spin_unlock(&locks[i]);
    }
}
`)
	if _, err := in.Call("main", int64(1)); err != nil {
		t.Fatal(err)
	}
	if in.LockEvents != 2 {
		t.Errorf("lock events: %d", in.LockEvents)
	}
}

func TestConfineViolatingDirectAccessErr(t *testing.T) {
	// Accessing another path to the same cell inside the confine is
	// err (here: the very same element through an equal index held in
	// a different variable, which is a different expression).
	_, err := runMain(t, `
global tbl: int[4];
fun main(): int {
    let i = 2;
    let j = 2;
    confine &tbl[i] {
        return tbl[j];
    }
    return 0;
}
`)
	if _, ok := err.(*RestrictErr); !ok {
		t.Fatalf("want err, got %v", err)
	}
}

// --- Restrict-qualified parameters (C99 form, checked & executed) ---

func TestParamRestrictRuntimeValid(t *testing.T) {
	v, err := runMain(t, `
fun bump(p: restrict ref int) {
    *p = *p + 1;
}
fun main(): int {
    let q = new 10;
    bump(q);
    bump(q);
    return *q;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 12 {
		t.Errorf("write-back through restricted params: got %v, want 12", v)
	}
}

func TestParamRestrictRuntimeViolation(t *testing.T) {
	// The callee reaches the argument's cell through a global alias
	// while the parameter restricts it: err.
	_, err := runMain(t, `
global g: ref int;
fun peek(p: restrict ref int): int {
    return *g;
}
fun main(): int {
    let q = new 5;
    g = q;
    return peek(q);
}
`)
	if _, ok := err.(*RestrictErr); !ok {
		t.Fatalf("want err, got %v", err)
	}
}

func TestParamRestrictLockOps(t *testing.T) {
	in := build(t, `
global locks: lock[4];
fun with(l: restrict ref lock) {
    spin_lock(l);
    spin_unlock(l);
}
fun main(i: int) {
    with(&locks[i]);
    with(&locks[i]);
}
`)
	if _, err := in.Call("main", int64(2)); err != nil {
		t.Fatal(err)
	}
	if in.LockEvents != 4 {
		t.Errorf("lock events: %d", in.LockEvents)
	}
}

func TestEvalIrqOps(t *testing.T) {
	in := build(t, `
global flags: lock;
fun main() {
    irq_save(&flags);
    irq_restore(&flags);
}
`)
	if _, err := in.Call("main"); err != nil {
		t.Fatal(err)
	}
	if in.LockEvents != 2 {
		t.Errorf("events: %d", in.LockEvents)
	}
	_, err := runMain(t, `
global flags: lock;
fun main() {
    irq_restore(&flags);
}
`)
	if err == nil || !strings.Contains(err.Error(), "not held") {
		t.Fatalf("restore-without-save must trap: %v", err)
	}
}

func TestPrintOutput(t *testing.T) {
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", `
fun main() {
    print(1);
    print(2 + 3);
}
`, &diags)
	tinfo := types.Check(prog, &diags)
	var buf strings.Builder
	in := New(tinfo, Options{Out: &buf})
	if _, err := in.Call("main"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "1\n5\n" {
		t.Errorf("print output: %q", buf.String())
	}
}

func TestFormatValue(t *testing.T) {
	if FormatValue(int64(7)) != "7" {
		t.Error("int")
	}
	if FormatValue(Unit) != "unit" {
		t.Error("unit")
	}
	if FormatValue((*Ref)(nil)) != "nil" {
		t.Error("nil ref")
	}
	if FormatValue(&Ref{S: &Cell{}}) != "ref" {
		t.Error("ref")
	}
}

func TestRestrictOfStructPointer(t *testing.T) {
	// Restricting a pointer to a struct copies the whole instance and
	// poisons the original's fields; write-back propagates.
	v, err := runMain(t, `
struct pair { a: int; b: int; }
global p: pair;
fun main(): int {
    p.a = 1;
    restrict q = &p {
        q->a = q->a + 10;
        q->b = 5;
    }
    return p.a * 100 + p.b;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 1105 {
		t.Errorf("struct write-back: got %v, want 1105", v)
	}
	// Violating access through the original struct inside the scope.
	_, err = runMain(t, `
struct pair { a: int; b: int; }
global p: pair;
fun main(): int {
    restrict q = &p {
        return p.a;
    }
    return 0;
}
`)
	if _, ok := err.(*RestrictErr); !ok {
		t.Fatalf("want err, got %v", err)
	}
}

func TestCallErrors(t *testing.T) {
	in := build(t, `fun main() { work(); }`)
	if _, err := in.Call("nosuch"); err == nil {
		t.Error("unknown function must trap")
	}
	if _, err := in.Call("main", int64(1)); err == nil {
		t.Error("arity mismatch must trap")
	}
}

func TestGlobalAccessors(t *testing.T) {
	in := build(t, `
global n: int;
global tbl: int[2];
fun main() { n = 7; }
`)
	if _, err := in.Call("main"); err != nil {
		t.Fatal(err)
	}
	c := in.GlobalCell("n")
	if c == nil || c.V.(int64) != 7 {
		t.Errorf("GlobalCell: %+v", c)
	}
	if in.GlobalCell("tbl") != nil {
		t.Error("aggregate global is not a single cell")
	}
	if in.GlobalStorage("tbl") == nil {
		t.Error("GlobalStorage must return the array")
	}
}
