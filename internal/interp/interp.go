// Package interp is a big-step interpreter for MiniC implementing the
// operational semantics of Section 3.2, including the err-poisoning
// model of restrict:
//
//	restrict x = e1 in e2: evaluate e1 to a location l, allocate a
//	fresh location l' holding a copy of l's contents, poison l (any
//	access through it reduces to err), bind x to l', evaluate e2,
//	then write l''s contents back to l and poison l'.
//
// confine e1 in e2 evaluates by its defining translation: occurrences
// of e1 inside e2 denote the bound copy.
//
// Evaluation distinguishes two failure classes:
//
//   - RestrictErr is the paper's err: an access through a poisoned
//     location. Theorem 1 states well-typed (checker-accepted)
//     programs never produce it; package interp's property tests
//     exercise exactly that.
//   - Trap covers ordinary runtime misbehaviour the type system does
//     not rule out: out-of-bounds indexes, division by zero, step
//     budget exhaustion, and runtime lock misuse (double acquire /
//     double release), which the driver corpus uses to validate that
//     its "real bug" modules really misbehave.
package interp

import (
	"fmt"
	"io"
	"strings"

	"localalias/internal/ast"
	"localalias/internal/source"
	"localalias/internal/token"
	"localalias/internal/types"
)

// RestrictErr is the paper's err value surfacing as a Go error.
type RestrictErr struct {
	At  source.Span
	Msg string
}

func (e *RestrictErr) Error() string { return "err: " + e.Msg }

// Trap is a runtime fault outside the restrict semantics.
type Trap struct {
	At  source.Span
	Msg string
}

func (e *Trap) Error() string { return "trap: " + e.Msg }

// Value is a runtime value: int64, unitValue, or *Ref.
type Value interface{}

type unitValue struct{}

// Unit is the unit value.
var Unit Value = unitValue{}

// storage is runtime storage: a *Cell, *ArrayStor or *StructStor.
type storage interface{ stor() }

// Cell is one mutable slot. Poisoned cells are the paper's err-bound
// locations.
type Cell struct {
	V        Value
	Poisoned bool
	// Held tracks lock state for lock cells (V stays Unit).
	Held bool
}

// ArrayStor is a block of element storage.
type ArrayStor struct{ Elems []storage }

// StructStor is per-field storage.
type StructStor struct {
	Decl   *ast.StructDecl
	Fields map[string]storage
}

func (*Cell) stor()       {}
func (*ArrayStor) stor()  {}
func (*StructStor) stor() {}

// Ref is a pointer value to some storage.
type Ref struct{ S storage }

// Interp evaluates one module.
type Interp struct {
	tinfo *types.Info
	out   io.Writer

	globals map[string]storage

	// Steps is the remaining step budget.
	Steps int

	// LockEvents counts successful lock/unlock operations (used by
	// corpus validation).
	LockEvents int

	confines []*confBinding
}

type confBinding struct {
	expr ast.Expr
	val  Value
}

// Options configures an interpreter.
type Options struct {
	// Out receives print() output; nil discards it.
	Out io.Writer
	// MaxSteps bounds evaluation (default 1 << 20).
	MaxSteps int
}

// New builds an interpreter for the checked module, allocating global
// storage (locks start released, ints at zero).
func New(tinfo *types.Info, opts Options) *Interp {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1 << 20
	}
	in := &Interp{
		tinfo:   tinfo,
		out:     opts.Out,
		globals: make(map[string]storage),
		Steps:   opts.MaxSteps,
	}
	for _, g := range tinfo.Prog.Globals {
		sym := tinfo.Globals[g.Name]
		if sym != nil {
			in.globals[g.Name] = in.allocType(sym.Type)
		}
	}
	return in
}

// allocType allocates zeroed storage for a type.
func (in *Interp) allocType(t types.Type) storage {
	switch t := t.(type) {
	case *types.Array:
		a := &ArrayStor{}
		for i := 0; i < t.Size; i++ {
			a.Elems = append(a.Elems, in.allocType(t.Elem))
		}
		return a
	case *types.Named:
		s := &StructStor{Decl: t.Decl, Fields: map[string]storage{}}
		for _, f := range t.Decl.Fields {
			s.Fields[f.Name] = in.allocType(in.tinfo.FieldType(t.Decl, f.Name))
		}
		return s
	case *types.Ref:
		return &Cell{V: (*Ref)(nil)}
	default:
		return &Cell{V: int64(0)}
	}
}

// env is the runtime environment.
type env struct {
	parent *env
	vars   map[*types.Symbol]Value
}

func (e *env) lookup(sym *types.Symbol) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[sym]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *env) child() *env {
	return &env{parent: e, vars: map[*types.Symbol]Value{}}
}

// returnSignal unwinds a function body.
type returnSignal struct{ v Value }

func (returnSignal) Error() string { return "return" }

// Call runs the named function with the given arguments.
func (in *Interp) Call(name string, args ...Value) (Value, error) {
	f := in.tinfo.Prog.Fun(name)
	if f == nil {
		return nil, &Trap{Msg: fmt.Sprintf("no function %q", name)}
	}
	if len(args) != len(f.Params) {
		return nil, &Trap{Msg: fmt.Sprintf("%s expects %d args, got %d", name, len(f.Params), len(args))}
	}
	return in.invoke(f, args)
}

// invoke binds arguments (honoring restrict-qualified parameters with
// the copy/poison semantics) and runs the body.
func (in *Interp) invoke(f *ast.FunDecl, args []Value) (Value, error) {
	e := &env{vars: map[*types.Symbol]Value{}}
	// Restricted parameter bindings to unwind at exit.
	type opened struct {
		orig, copied storage
	}
	var open []opened
	for i, p := range f.Params {
		sym := in.tinfo.Binders[p]
		v := args[i]
		if p.Restrict {
			r, ok := v.(*Ref)
			if !ok || r == nil {
				return nil, &Trap{At: p.Sp, Msg: "restrict parameter bound to a non-pointer"}
			}
			copyS, err := copyStorage(r.S, p.Sp)
			if err != nil {
				return nil, err
			}
			setPoison(r.S, true)
			open = append(open, opened{orig: r.S, copied: copyS})
			v = &Ref{S: copyS}
		}
		e.vars[sym] = v
	}
	err := in.stmts(f.Body.Stmts, e)
	for i := len(open) - 1; i >= 0; i-- {
		setPoison(open[i].orig, false)
		writeBack(open[i].orig, open[i].copied)
		setPoison(open[i].copied, true)
	}
	if rs, ok := err.(returnSignal); ok {
		return rs.v, nil
	}
	if err != nil {
		return nil, err
	}
	return Unit, nil
}

func (in *Interp) tick(sp source.Span) error {
	in.Steps--
	if in.Steps <= 0 {
		return &Trap{At: sp, Msg: "step budget exhausted"}
	}
	return nil
}

// ---------------------------------------------------------------------
// Statements

func (in *Interp) stmts(list []ast.Stmt, e *env) error {
	for i, s := range list {
		switch s := s.(type) {
		case *ast.DeclStmt:
			v, err := in.expr(s.Init, e)
			if err != nil {
				return err
			}
			sym := in.tinfo.Binders[s]
			rest := list[i+1:]
			if s.Restrict {
				return in.restrictScope(s.Sp, sym, v, func(e2 *env) error {
					return in.stmts(rest, e2)
				}, e)
			}
			e2 := e.child()
			e2.vars[sym] = v
			return in.stmts(rest, e2)
		default:
			if err := in.stmt(s, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// restrictScope implements the Section 3.2 rule: copy, poison, run,
// write back, poison the copy.
func (in *Interp) restrictScope(sp source.Span, sym *types.Symbol, v Value, body func(*env) error, e *env) error {
	r, ok := v.(*Ref)
	if !ok || r == nil {
		return &Trap{At: sp, Msg: "restrict of a non-pointer value"}
	}
	copyS, err := copyStorage(r.S, sp)
	if err != nil {
		return err
	}
	setPoison(r.S, true)
	e2 := e.child()
	e2.vars[sym] = &Ref{S: copyS}
	bodyErr := body(e2)
	// Write back and poison the copy regardless of how the body
	// exited (including via return).
	setPoison(r.S, false)
	writeBack(r.S, copyS)
	setPoison(copyS, true)
	return bodyErr
}

func (in *Interp) stmt(s ast.Stmt, e *env) error {
	if err := in.tick(s.Span()); err != nil {
		return err
	}
	switch s := s.(type) {
	case *ast.BindStmt:
		v, err := in.expr(s.Init, e)
		if err != nil {
			return err
		}
		sym := in.tinfo.Binders[s]
		if s.Kind == ast.BindRestrict {
			return in.restrictScope(s.Sp, sym, v, func(e2 *env) error {
				return in.stmts(s.Body.Stmts, e2)
			}, e)
		}
		e2 := e.child()
		e2.vars[sym] = v
		return in.stmts(s.Body.Stmts, e2)

	case *ast.ConfineStmt:
		// confine e1 in e2 ≡ restrict x = e1 in e2[e1/x]: evaluate
		// e1, create the restricted copy, and make occurrences of e1
		// inside the body denote the copy.
		v, err := in.expr(s.Expr, e)
		if err != nil {
			return err
		}
		r, ok := v.(*Ref)
		if !ok || r == nil {
			return &Trap{At: s.Sp, Msg: "confine of a non-pointer value"}
		}
		copyS, err := copyStorage(r.S, s.Sp)
		if err != nil {
			return err
		}
		setPoison(r.S, true)
		in.confines = append(in.confines, &confBinding{expr: s.Expr, val: &Ref{S: copyS}})
		bodyErr := in.stmts(s.Body.Stmts, e.child())
		in.confines = in.confines[:len(in.confines)-1]
		setPoison(r.S, false)
		writeBack(r.S, copyS)
		setPoison(copyS, true)
		return bodyErr

	case *ast.AssignStmt:
		st, err := in.place(s.LHS, e)
		if err != nil {
			return err
		}
		cell, ok := st.(*Cell)
		if !ok {
			return &Trap{At: s.Sp, Msg: "assignment to aggregate storage"}
		}
		v, err := in.expr(s.RHS, e)
		if err != nil {
			return err
		}
		if cell.Poisoned {
			return &RestrictErr{At: s.Sp, Msg: "write through a location bound by an active restrict"}
		}
		cell.V = v
		return nil

	case *ast.ExprStmt:
		_, err := in.expr(s.X, e)
		return err

	case *ast.IfStmt:
		c, err := in.intOf(s.Cond, e)
		if err != nil {
			return err
		}
		if c != 0 {
			return in.stmts(s.Then.Stmts, e.child())
		}
		if s.Else != nil {
			return in.stmts(s.Else.Stmts, e.child())
		}
		return nil

	case *ast.WhileStmt:
		for {
			if err := in.tick(s.Sp); err != nil {
				return err
			}
			c, err := in.intOf(s.Cond, e)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := in.stmts(s.Body.Stmts, e.child()); err != nil {
				return err
			}
		}

	case *ast.ReturnStmt:
		if s.X == nil {
			return returnSignal{v: Unit}
		}
		v, err := in.expr(s.X, e)
		if err != nil {
			return err
		}
		return returnSignal{v: v}

	case *ast.Block:
		return in.stmts(s.Stmts, e.child())

	default:
		return &Trap{At: s.Span(), Msg: fmt.Sprintf("unsupported statement %T", s)}
	}
}

// ---------------------------------------------------------------------
// Expressions

func (in *Interp) intOf(e ast.Expr, env *env) (int64, error) {
	v, err := in.expr(e, env)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, &Trap{At: e.Span(), Msg: fmt.Sprintf("expected int, got %T", v)}
	}
	return n, nil
}

func (in *Interp) expr(x ast.Expr, e *env) (Value, error) {
	if err := in.tick(x.Span()); err != nil {
		return nil, err
	}
	// Active confine occurrences denote the bound copy.
	for i := len(in.confines) - 1; i >= 0; i-- {
		cb := in.confines[i]
		if in.tinfo.EqualResolved(x, cb.expr) {
			return cb.val, nil
		}
	}
	switch x := x.(type) {
	case *ast.IntLit:
		return x.Value, nil

	case *ast.VarExpr:
		sym := in.tinfo.Uses[x]
		if sym == nil {
			return nil, &Trap{At: x.Sp, Msg: "unresolved variable " + x.Name}
		}
		if sym.Kind == types.SymGlobal {
			st := in.globals[x.Name]
			cell, ok := st.(*Cell)
			if !ok {
				return nil, &Trap{At: x.Sp, Msg: "aggregate global read as value"}
			}
			return in.readCell(cell, x.Sp)
		}
		v, ok := e.lookup(sym)
		if !ok {
			return nil, &Trap{At: x.Sp, Msg: "unbound variable " + x.Name}
		}
		return v, nil

	case *ast.NewExpr:
		if sd := in.tinfo.StructAllocs[x]; sd != nil {
			return &Ref{S: in.allocType(&types.Named{Decl: sd})}, nil
		}
		v, err := in.expr(x.Init, e)
		if err != nil {
			return nil, err
		}
		return &Ref{S: &Cell{V: v}}, nil

	case *ast.DerefExpr:
		v, err := in.expr(x.X, e)
		if err != nil {
			return nil, err
		}
		cell, err := in.cellOf(v, x.Sp)
		if err != nil {
			return nil, err
		}
		return in.readCell(cell, x.Sp)

	case *ast.AddrExpr:
		st, err := in.place(x.X, e)
		if err != nil {
			return nil, err
		}
		return &Ref{S: st}, nil

	case *ast.IndexExpr, *ast.FieldExpr:
		st, err := in.place(x, e)
		if err != nil {
			return nil, err
		}
		cell, ok := st.(*Cell)
		if !ok {
			return nil, &Trap{At: x.Span(), Msg: "aggregate storage read as value"}
		}
		return in.readCell(cell, x.Span())

	case *ast.BinExpr:
		return in.binOp(x, e)

	case *ast.UnExpr:
		n, err := in.intOf(x.X, e)
		if err != nil {
			return nil, err
		}
		if x.Op == token.Not {
			if n == 0 {
				return int64(1), nil
			}
			return int64(0), nil
		}
		return -n, nil

	case *ast.CallExpr:
		return in.callExpr(x, e)

	default:
		return nil, &Trap{At: x.Span(), Msg: fmt.Sprintf("unsupported expression %T", x)}
	}
}

func (in *Interp) readCell(c *Cell, sp source.Span) (Value, error) {
	if c.Poisoned {
		return nil, &RestrictErr{At: sp, Msg: "read through a location bound by an active restrict"}
	}
	return c.V, nil
}

func (in *Interp) cellOf(v Value, sp source.Span) (*Cell, error) {
	r, ok := v.(*Ref)
	if !ok || r == nil {
		return nil, &Trap{At: sp, Msg: "dereference of a non-pointer (or nil) value"}
	}
	cell, ok := r.S.(*Cell)
	if !ok {
		return nil, &Trap{At: sp, Msg: "dereference of aggregate storage"}
	}
	return cell, nil
}

func (in *Interp) binOp(x *ast.BinExpr, e *env) (Value, error) {
	// Short-circuit logicals.
	if x.Op == token.AndAnd || x.Op == token.OrOr {
		l, err := in.intOf(x.X, e)
		if err != nil {
			return nil, err
		}
		if x.Op == token.AndAnd && l == 0 {
			return int64(0), nil
		}
		if x.Op == token.OrOr && l != 0 {
			return int64(1), nil
		}
		r, err := in.intOf(x.Y, e)
		if err != nil {
			return nil, err
		}
		if r != 0 {
			return int64(1), nil
		}
		return int64(0), nil
	}
	if x.Op == token.Eq || x.Op == token.NotEq {
		lv, err := in.expr(x.X, e)
		if err != nil {
			return nil, err
		}
		rv, err := in.expr(x.Y, e)
		if err != nil {
			return nil, err
		}
		eq := valueEq(lv, rv)
		if (x.Op == token.Eq) == eq {
			return int64(1), nil
		}
		return int64(0), nil
	}
	l, err := in.intOf(x.X, e)
	if err != nil {
		return nil, err
	}
	r, err := in.intOf(x.Y, e)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case token.Plus:
		return l + r, nil
	case token.Minus:
		return l - r, nil
	case token.Star:
		return l * r, nil
	case token.Slash:
		if r == 0 {
			return nil, &Trap{At: x.Sp, Msg: "division by zero"}
		}
		return l / r, nil
	case token.Percent:
		if r == 0 {
			return nil, &Trap{At: x.Sp, Msg: "modulo by zero"}
		}
		return l % r, nil
	case token.Less:
		return b2i(l < r), nil
	case token.LessEq:
		return b2i(l <= r), nil
	case token.Greater:
		return b2i(l > r), nil
	case token.GreatEq:
		return b2i(l >= r), nil
	default:
		return nil, &Trap{At: x.Sp, Msg: "unknown operator " + x.Op.String()}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func valueEq(a, b Value) bool {
	switch a := a.(type) {
	case int64:
		bi, ok := b.(int64)
		return ok && a == bi
	case *Ref:
		br, ok := b.(*Ref)
		if !ok {
			return false
		}
		if a == nil || br == nil {
			return (a == nil || a.S == nil) && (br == nil || br.S == nil)
		}
		return a.S == br.S
	default:
		return false
	}
}

func (in *Interp) callExpr(x *ast.CallExpr, e *env) (Value, error) {
	var args []Value
	for _, a := range x.Args {
		v, err := in.expr(a, e)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	if op, isOp := types.LookupChangeOp(x.Fun); isOp {
		if len(args) != 1 {
			return nil, &Trap{At: x.Sp, Msg: x.Fun + " arity"}
		}
		cell, err := in.cellOf(args[0], x.Sp)
		if err != nil {
			return nil, err
		}
		if cell.Poisoned {
			return nil, &RestrictErr{At: x.Sp, Msg: x.Fun + " through a restricted location"}
		}
		// Acquire ops require the resource released; release ops the
		// converse.
		if cell.Held == op.Acquire {
			if op.Acquire {
				return nil, &Trap{At: x.Sp, Msg: x.Fun + " of a lock that is already held (self-deadlock)"}
			}
			return nil, &Trap{At: x.Sp, Msg: x.Fun + " of a lock that is not held"}
		}
		cell.Held = op.Acquire
		in.LockEvents++
		return Unit, nil
	}
	switch x.Fun {
	case "work":
		return Unit, nil
	case "print":
		if in.out != nil && len(args) == 1 {
			fmt.Fprintf(in.out, "%v\n", args[0])
		}
		return Unit, nil
	}
	f := in.tinfo.Prog.Fun(x.Fun)
	if f == nil {
		return nil, &Trap{At: x.Sp, Msg: "call to unknown function " + x.Fun}
	}
	return in.invoke(f, args)
}

// ---------------------------------------------------------------------
// Places

func (in *Interp) place(x ast.Expr, e *env) (storage, error) {
	// A confined occurrence used as a place (e.g. assignment through
	// it) still denotes the copy.
	for i := len(in.confines) - 1; i >= 0; i-- {
		cb := in.confines[i]
		if in.tinfo.EqualResolved(x, cb.expr) {
			if r, ok := cb.val.(*Ref); ok {
				return r.S, nil
			}
		}
	}
	switch x := x.(type) {
	case *ast.VarExpr:
		st, ok := in.globals[x.Name]
		if !ok {
			return nil, &Trap{At: x.Sp, Msg: "not storage: " + x.Name}
		}
		return st, nil

	case *ast.DerefExpr:
		v, err := in.expr(x.X, e)
		if err != nil {
			return nil, err
		}
		r, ok := v.(*Ref)
		if !ok || r == nil {
			return nil, &Trap{At: x.Sp, Msg: "dereference of a non-pointer (or nil) value"}
		}
		return r.S, nil

	case *ast.IndexExpr:
		st, err := in.place(x.X, e)
		if err != nil {
			return nil, err
		}
		arr, ok := st.(*ArrayStor)
		if !ok {
			return nil, &Trap{At: x.Sp, Msg: "index of non-array storage"}
		}
		i, err := in.intOf(x.Index, e)
		if err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= len(arr.Elems) {
			return nil, &Trap{At: x.Sp, Msg: fmt.Sprintf("index %d out of bounds [0,%d)", i, len(arr.Elems))}
		}
		return arr.Elems[i], nil

	case *ast.FieldExpr:
		var st storage
		if x.Arrow {
			v, err := in.expr(x.X, e)
			if err != nil {
				return nil, err
			}
			r, ok := v.(*Ref)
			if !ok || r == nil {
				return nil, &Trap{At: x.Sp, Msg: "-> through non-pointer"}
			}
			st = r.S
		} else {
			var err error
			st, err = in.place(x.X, e)
			if err != nil {
				return nil, err
			}
		}
		ss, ok := st.(*StructStor)
		if !ok {
			return nil, &Trap{At: x.Sp, Msg: "field access on non-struct storage"}
		}
		f, ok := ss.Fields[x.Name]
		if !ok {
			return nil, &Trap{At: x.Sp, Msg: "no field " + x.Name}
		}
		return f, nil

	default:
		return nil, &Trap{At: x.Span(), Msg: fmt.Sprintf("not a place: %T", x)}
	}
}

// ---------------------------------------------------------------------
// Storage helpers for restrict semantics

// copyStorage deep-copies storage (the fresh l' of the semantics).
func copyStorage(s storage, sp source.Span) (storage, error) {
	switch s := s.(type) {
	case *Cell:
		if s.Poisoned {
			return nil, &RestrictErr{At: sp, Msg: "restrict of an already-restricted location"}
		}
		return &Cell{V: s.V, Held: s.Held}, nil
	case *ArrayStor:
		out := &ArrayStor{}
		for _, el := range s.Elems {
			c, err := copyStorage(el, sp)
			if err != nil {
				return nil, err
			}
			out.Elems = append(out.Elems, c)
		}
		return out, nil
	case *StructStor:
		out := &StructStor{Decl: s.Decl, Fields: map[string]storage{}}
		for k, f := range s.Fields {
			c, err := copyStorage(f, sp)
			if err != nil {
				return nil, err
			}
			out.Fields[k] = c
		}
		return out, nil
	default:
		return nil, &Trap{At: sp, Msg: "uncopyable storage"}
	}
}

// setPoison marks every cell of s.
func setPoison(s storage, on bool) {
	switch s := s.(type) {
	case *Cell:
		s.Poisoned = on
	case *ArrayStor:
		for _, el := range s.Elems {
			setPoison(el, on)
		}
	case *StructStor:
		for _, f := range s.Fields {
			setPoison(f, on)
		}
	}
}

// writeBack copies the values of src into dst (the l := l' step).
func writeBack(dst, src storage) {
	switch d := dst.(type) {
	case *Cell:
		if s, ok := src.(*Cell); ok {
			d.V = s.V
			d.Held = s.Held
		}
	case *ArrayStor:
		if s, ok := src.(*ArrayStor); ok {
			for i := range d.Elems {
				if i < len(s.Elems) {
					writeBack(d.Elems[i], s.Elems[i])
				}
			}
		}
	case *StructStor:
		if s, ok := src.(*StructStor); ok {
			for k := range d.Fields {
				writeBack(d.Fields[k], s.Fields[k])
			}
		}
	}
}

// GlobalCell returns the cell of a scalar global (for tests).
func (in *Interp) GlobalCell(name string) *Cell {
	c, _ := in.globals[name].(*Cell)
	return c
}

// GlobalStorage returns a global's storage (for tests).
func (in *Interp) GlobalStorage(name string) interface{} { return in.globals[name] }

// FormatValue renders a value for messages.
func FormatValue(v Value) string {
	switch v := v.(type) {
	case int64:
		return fmt.Sprintf("%d", v)
	case unitValue:
		return "unit"
	case *Ref:
		if v == nil || v.S == nil {
			return "nil"
		}
		return "ref"
	default:
		return strings.TrimSpace(fmt.Sprintf("%v", v))
	}
}
