package interp

// Empirical validation of Theorem 1 (soundness): if the restrict
// checker accepts a program, its evaluation never produces err.
//
// A generator produces random well-typed MiniC programs over the
// paper's core fragment (new/deref/assign/let/restrict, plus
// conditionals and explicit scopes). Each program is checked with the
// Section 4 algorithm and then executed; an accepted program that
// evaluates to err falsifies the theorem. The generator deliberately
// produces both accepted and rejected programs — aliases are created
// and used inside restrict scopes at random — so the property is not
// vacuous, which the distribution test below asserts.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"localalias/internal/parser"
	"localalias/internal/progen"
	"localalias/internal/restrict"
	"localalias/internal/source"
	"localalias/internal/types"
)

// pipeline compiles, checks, and runs one generated program.
// Returns (accepted, evaluation error).
func pipeline(t *testing.T, src string) (bool, error) {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("gen.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("generator produced unparsable code:\n%s\n%s", diags.String(), src)
	}
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("generator produced ill-typed code:\n%s\n%s", diags.String(), src)
	}
	var checkDiags source.Diagnostics
	res := restrict.Check(tinfo, &checkDiags)
	in := New(tinfo, Options{MaxSteps: 200000})
	_, err := in.Call("main")
	return res.OK(), err
}

func TestSoundnessQuick(t *testing.T) {
	// Theorem 1 as a quick property over generator seeds.
	prop := func(seed int64) bool {
		src := progen.Generate(seed)
		accepted, err := pipeline(t, src)
		if !accepted {
			return true // rejection says nothing; soundness is about accepted programs
		}
		if _, isErr := err.(*RestrictErr); isErr {
			t.Logf("SOUNDNESS VIOLATION (seed %d):\n%s\nerror: %v", seed, src, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSoundnessDistribution(t *testing.T) {
	// The property must not hold vacuously: over a fixed seed range
	// the generator must produce accepted programs, rejected
	// programs, AND rejected programs that actually err at runtime
	// (showing the checker is catching real violations).
	accepted, rejected, rejectedErred := 0, 0, 0
	for seed := int64(0); seed < 400; seed++ {
		ok, err := pipeline(t, progen.Generate(seed))
		if ok {
			accepted++
		} else {
			rejected++
			if _, isErr := err.(*RestrictErr); isErr {
				rejectedErred++
			}
		}
	}
	t.Logf("accepted=%d rejected=%d rejected-and-erred=%d", accepted, rejected, rejectedErred)
	if accepted < 50 {
		t.Errorf("generator too hostile: only %d accepted", accepted)
	}
	if rejected < 50 {
		t.Errorf("generator too tame: only %d rejected", rejected)
	}
	if rejectedErred == 0 {
		t.Error("no rejected program actually erred; checker may be vacuously strict")
	}
}

func TestCompletenessOnCleanPrograms(t *testing.T) {
	// A generator variant that never uses aliases inside restrict
	// scopes: everything it produces must be accepted. (This guards
	// against the checker rejecting everything.)
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		b.WriteString("fun main(): int {\n")
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "    let p%d = new %d;\n", i, r.Intn(50))
			fmt.Fprintf(&b, "    restrict q%d = p%d {\n", i, i)
			fmt.Fprintf(&b, "        *q%d = *q%d + 1;\n", i, i)
			b.WriteString("    }\n")
		}
		fmt.Fprintf(&b, "    return *p%d;\n", n-1)
		b.WriteString("}\n")
		ok, err := pipeline(t, b.String())
		if !ok {
			t.Fatalf("clean program rejected (seed %d):\n%s", seed, b.String())
		}
		if err != nil {
			t.Fatalf("clean program failed at runtime (seed %d): %v", seed, err)
		}
	}
}
