package source

import (
	"fmt"
	"strings"
)

// Excerpt renders a diagnostic with its source line and a caret span,
// gcc/rustc style:
//
//	driver.mc:6:5: error: [qual] spin_unlock: lock may be ⊤
//	    spin_unlock(&locks[i]);
//	    ^~~~~~~~~~~
//
// Diagnostics without a file or span degrade to the one-line form.
func Excerpt(d *Diagnostic) string {
	head := d.String()
	if d.File == nil || !d.Span.IsValid() {
		return head
	}
	pos := d.File.Position(d.Span.Start)
	line := d.File.Line(pos.Line)
	if line == "" {
		return head
	}
	// Caret width: clamp the span to the current line.
	width := 1
	if d.Span.End > d.Span.Start {
		width = int(d.Span.End - d.Span.Start)
	}
	if max := len(line) - (pos.Column - 1); width > max {
		width = max
	}
	if width < 1 {
		width = 1
	}
	marker := "^"
	if width > 1 {
		marker += strings.Repeat("~", width-1)
	}
	// Render tabs as single spaces so the caret aligns.
	rendered := strings.ReplaceAll(line, "\t", " ")
	return fmt.Sprintf("%s\n    %s\n    %s%s",
		head, rendered, strings.Repeat(" ", pos.Column-1), marker)
}

// RenderAll renders every diagnostic with excerpts, one block per
// diagnostic.
func (ds *Diagnostics) RenderAll() string {
	var b strings.Builder
	for _, d := range ds.List {
		b.WriteString(Excerpt(d))
		b.WriteByte('\n')
	}
	return b.String()
}
