package source

import (
	"strings"
	"testing"
)

func TestPositionResolution(t *testing.T) {
	f := NewFile("a.mc", "abc\ndef\n\nx")
	cases := []struct {
		off  Pos
		line int
		col  int
	}{
		{0, 1, 1},
		{2, 1, 3},
		{3, 1, 4}, // the newline itself
		{4, 2, 1},
		{7, 2, 4},
		{8, 3, 1},
		{9, 4, 1},
	}
	for _, c := range cases {
		pos := f.Position(c.off)
		if pos.Line != c.line || pos.Column != c.col {
			t.Errorf("offset %d: got %d:%d want %d:%d", c.off, pos.Line, pos.Column, c.line, c.col)
		}
		if pos.Name != "a.mc" {
			t.Errorf("name: %q", pos.Name)
		}
	}
}

func TestPositionInvalid(t *testing.T) {
	f := NewFile("a.mc", "x")
	pos := f.Position(NoPos)
	if pos.Line != 0 {
		t.Errorf("invalid position must have line 0, got %d", pos.Line)
	}
	if NoPos.IsValid() {
		t.Error("NoPos must be invalid")
	}
	if !Pos(0).IsValid() {
		t.Error("offset 0 must be valid")
	}
}

func TestLine(t *testing.T) {
	f := NewFile("a.mc", "first\nsecond\r\nthird")
	if got := f.Line(1); got != "first" {
		t.Errorf("line 1: %q", got)
	}
	if got := f.Line(2); got != "second" {
		t.Errorf("line 2 must strip CR: %q", got)
	}
	if got := f.Line(3); got != "third" {
		t.Errorf("line 3: %q", got)
	}
	if got := f.Line(4); got != "" {
		t.Errorf("out of range: %q", got)
	}
	if got := f.Line(0); got != "" {
		t.Errorf("zero: %q", got)
	}
}

func TestSpanUnion(t *testing.T) {
	a := Span{Start: 5, End: 10}
	b := Span{Start: 2, End: 7}
	u := a.Union(b)
	if u.Start != 2 || u.End != 10 {
		t.Errorf("union: %+v", u)
	}
	if got := a.Union(NoSpan); got != a {
		t.Errorf("union with invalid: %+v", got)
	}
	if got := NoSpan.Union(a); got != a {
		t.Errorf("invalid union with valid: %+v", got)
	}
	if NoSpan.IsValid() {
		t.Error("NoSpan must be invalid")
	}
}

func TestDiagnosticsAccumulation(t *testing.T) {
	f := NewFile("mod.mc", "let x = 1;\n")
	var ds Diagnostics
	if ds.HasErrors() {
		t.Error("zero value must have no errors")
	}
	ds.Notef(f, Span{0, 3}, "parse", "just a note")
	ds.Warnf(f, Span{0, 3}, "types", "suspicious %d", 42)
	if ds.HasErrors() {
		t.Error("notes and warnings are not errors")
	}
	ds.Errorf(f, Span{4, 5}, "restrict", "bad %s", "pointer")
	ds.Errorf(f, Span{6, 7}, "restrict", "worse")
	if !ds.HasErrors() || ds.ErrorCount() != 2 {
		t.Errorf("error count: %d", ds.ErrorCount())
	}
	out := ds.String()
	for _, want := range []string{"mod.mc:1:1", "note", "warning", "[restrict] bad pointer", "error"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
}

func TestDiagnosticsErr(t *testing.T) {
	var ds Diagnostics
	if ds.Err() != nil {
		t.Error("no errors → nil")
	}
	f := NewFile("m.mc", "")
	ds.Errorf(f, NoSpan, "p", "first problem")
	if err := ds.Err(); err == nil || !strings.Contains(err.Error(), "first problem") {
		t.Errorf("single error: %v", err)
	}
	ds.Errorf(f, NoSpan, "p", "second problem")
	if err := ds.Err(); err == nil || !strings.Contains(err.Error(), "1 more error") {
		t.Errorf("multi error must summarize: %v", err)
	}
}

func TestSeverityString(t *testing.T) {
	if Note.String() != "note" || Warning.String() != "warning" || Error.String() != "error" {
		t.Error("severity strings")
	}
	if !strings.Contains(Severity(99).String(), "99") {
		t.Error("unknown severity must render its value")
	}
}

func TestDiagnosticWithoutFile(t *testing.T) {
	d := &Diagnostic{Severity: Error, Message: "free-floating"}
	if !strings.Contains(d.String(), "free-floating") {
		t.Errorf("render: %s", d)
	}
}

func TestExcerpt(t *testing.T) {
	f := NewFile("d.mc", "fun f() {\n    spin_unlock(&big);\n}\n")
	// Span covering "spin_unlock" on line 2 (offset 14, length 11).
	d := &Diagnostic{
		File: f, Span: Span{Start: 14, End: 25},
		Severity: Error, Phase: "qual", Message: "lock may be ⊤",
	}
	out := Excerpt(d)
	lines := strings.Split(out, "\n")
	if len(lines) != 3 {
		t.Fatalf("excerpt shape: %q", out)
	}
	if !strings.Contains(lines[0], "d.mc:2:5") {
		t.Errorf("head: %q", lines[0])
	}
	if !strings.Contains(lines[1], "spin_unlock(&big);") {
		t.Errorf("source line: %q", lines[1])
	}
	if !strings.Contains(lines[2], "^~~~~~~~~~") {
		t.Errorf("caret: %q", lines[2])
	}
	// Caret must sit under the s of spin_unlock (column 5 → 4 spaces
	// after the 4-space indent).
	if !strings.HasPrefix(lines[2], "        ^") {
		t.Errorf("caret alignment: %q", lines[2])
	}
}

func TestExcerptDegradesGracefully(t *testing.T) {
	d := &Diagnostic{Severity: Error, Message: "floating"}
	if Excerpt(d) != d.String() {
		t.Error("no file: one-line form")
	}
	f := NewFile("x.mc", "ab\n")
	d2 := &Diagnostic{File: f, Span: NoSpan, Severity: Error, Message: "nospan"}
	if Excerpt(d2) != d2.String() {
		t.Error("no span: one-line form")
	}
	// Span wider than the line clamps.
	d3 := &Diagnostic{File: f, Span: Span{Start: 0, End: 99}, Severity: Error, Message: "wide"}
	out := Excerpt(d3)
	if strings.Count(out, "~") > 1 {
		t.Errorf("caret must clamp to the line: %q", out)
	}
}

func TestRenderAll(t *testing.T) {
	f := NewFile("m.mc", "let x = 1;\n")
	var ds Diagnostics
	ds.Errorf(f, Span{0, 3}, "p", "first")
	ds.Errorf(f, Span{4, 5}, "p", "second")
	out := ds.RenderAll()
	if strings.Count(out, "let x = 1;") != 2 {
		t.Errorf("both excerpts must show the line:\n%s", out)
	}
}
