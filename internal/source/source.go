// Package source provides source files, positions, spans and structured
// diagnostics shared by every phase of the pipeline (lexing, parsing,
// type checking, alias-and-effect inference, restrict/confine checking
// and the flow-sensitive qualifier analysis).
//
// A File owns the raw text of one compilation unit and a line index so
// byte offsets can be rendered as line:column pairs. Positions are
// plain byte offsets into a File; Spans are half-open offset ranges.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// File is one source file (or synthesized compilation unit).
type File struct {
	// Name is the display name used in diagnostics, e.g. "driver.mc".
	Name string
	// Text is the full contents of the file.
	Text string

	lineStarts []int // byte offset of the start of each line
}

// NewFile builds a File and its line index.
func NewFile(name, text string) *File {
	f := &File{Name: name, Text: text}
	f.lineStarts = append(f.lineStarts, 0)
	for i := 0; i < len(text); i++ {
		if text[i] == '\n' {
			f.lineStarts = append(f.lineStarts, i+1)
		}
	}
	return f
}

// Pos is a byte offset into a File. The zero value is the start of the
// file; NoPos marks a missing position.
type Pos int

// NoPos is the absent position.
const NoPos Pos = -1

// IsValid reports whether p refers to an actual offset.
func (p Pos) IsValid() bool { return p >= 0 }

// Span is a half-open byte range [Start, End) within one File.
type Span struct {
	Start, End Pos
}

// NoSpan is the absent span.
var NoSpan = Span{NoPos, NoPos}

// IsValid reports whether the span has a real start offset.
func (s Span) IsValid() bool { return s.Start.IsValid() }

// Union returns the smallest span covering both s and t. Invalid spans
// are ignored.
func (s Span) Union(t Span) Span {
	switch {
	case !s.IsValid():
		return t
	case !t.IsValid():
		return s
	}
	u := s
	if t.Start < u.Start {
		u.Start = t.Start
	}
	if t.End > u.End {
		u.End = t.End
	}
	return u
}

// Position is a resolved human-readable location.
type Position struct {
	Name   string // file name
	Line   int    // 1-based
	Column int    // 1-based, in bytes
}

func (p Position) String() string {
	if p.Name == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	return fmt.Sprintf("%s:%d:%d", p.Name, p.Line, p.Column)
}

// Position resolves a byte offset to a line/column pair.
func (f *File) Position(p Pos) Position {
	if !p.IsValid() {
		return Position{Name: f.Name, Line: 0, Column: 0}
	}
	i := sort.Search(len(f.lineStarts), func(i int) bool {
		return f.lineStarts[i] > int(p)
	}) - 1
	if i < 0 {
		i = 0
	}
	return Position{
		Name:   f.Name,
		Line:   i + 1,
		Column: int(p) - f.lineStarts[i] + 1,
	}
}

// Line returns the text of the 1-based line n, without its newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lineStarts) {
		return ""
	}
	start := f.lineStarts[n-1]
	end := len(f.Text)
	if n < len(f.lineStarts) {
		end = f.lineStarts[n] - 1
	}
	return strings.TrimRight(f.Text[start:end], "\r")
}

// Severity classifies a diagnostic.
type Severity int

// Diagnostic severities, from least to most severe.
const (
	Note Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is one message attached to a span of one file.
type Diagnostic struct {
	File     *File
	Span     Span
	Severity Severity
	// Phase identifies the producing analysis, e.g. "parse", "types",
	// "restrict", "qual".
	Phase   string
	Message string
}

func (d *Diagnostic) String() string {
	pos := ""
	if d.File != nil {
		pos = d.File.Position(d.Span.Start).String() + ": "
	}
	if d.Phase != "" {
		return fmt.Sprintf("%s%s: [%s] %s", pos, d.Severity, d.Phase, d.Message)
	}
	return fmt.Sprintf("%s%s: %s", pos, d.Severity, d.Message)
}

// Diagnostics accumulates messages during a phase. The zero value is
// ready to use.
type Diagnostics struct {
	List []*Diagnostic
}

// Add appends a diagnostic.
func (ds *Diagnostics) Add(d *Diagnostic) { ds.List = append(ds.List, d) }

// Errorf records an error-severity diagnostic.
func (ds *Diagnostics) Errorf(f *File, sp Span, phase, format string, args ...any) {
	ds.Add(&Diagnostic{File: f, Span: sp, Severity: Error, Phase: phase, Message: fmt.Sprintf(format, args...)})
}

// Warnf records a warning-severity diagnostic.
func (ds *Diagnostics) Warnf(f *File, sp Span, phase, format string, args ...any) {
	ds.Add(&Diagnostic{File: f, Span: sp, Severity: Warning, Phase: phase, Message: fmt.Sprintf(format, args...)})
}

// Notef records a note-severity diagnostic.
func (ds *Diagnostics) Notef(f *File, sp Span, phase, format string, args ...any) {
	ds.Add(&Diagnostic{File: f, Span: sp, Severity: Note, Phase: phase, Message: fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any error-severity diagnostic was recorded.
func (ds *Diagnostics) HasErrors() bool {
	for _, d := range ds.List {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// ErrorCount returns the number of error-severity diagnostics.
func (ds *Diagnostics) ErrorCount() int {
	n := 0
	for _, d := range ds.List {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// String renders all diagnostics, one per line.
func (ds *Diagnostics) String() string {
	var b strings.Builder
	for _, d := range ds.List {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Err returns an error summarizing the diagnostics if any error-severity
// entries exist, and nil otherwise.
func (ds *Diagnostics) Err() error {
	if !ds.HasErrors() {
		return nil
	}
	first := ""
	for _, d := range ds.List {
		if d.Severity == Error {
			first = d.String()
			break
		}
	}
	n := ds.ErrorCount()
	if n == 1 {
		return fmt.Errorf("%s", first)
	}
	return fmt.Errorf("%s (and %d more errors)", first, n-1)
}
