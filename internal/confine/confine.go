// Package confine implements confine inference (Section 6 of the
// paper): automatically placing "confine e { ... }" around statement
// ranges so that a flow-sensitive analysis can perform strong updates
// on the location e points to.
//
// The pipeline is the one the paper's Section 7 describes:
//
//  1. Plant confine? candidates. The default planter is the paper's
//     syntactic heuristic: for every block, when two or more
//     statements contain change_type calls (spin_lock/spin_unlock)
//     whose arguments match syntactically, wrap the smallest
//     sub-block covering them in a confine? of that argument, and
//     report that the new sub-block contains no change_type. The
//     General option keeps planted scopes transparent so enclosing
//     blocks are also tried, approximating the Section 6.2 algorithm
//     of inserting confine? at every possible scope and keeping the
//     outermost success.
//  2. Re-run standard type checking (the planted program contains
//     fresh cloned expressions), then alias-and-effect inference with
//     the planted nodes marked optional, and solve. Each candidate
//     succeeds iff its ρ and ρ′ remain distinct in the least
//     solution.
//  3. Apply verdicts: failed candidates are spliced back out of the
//     AST; successes are kept (marked Inferred), adjacent successful
//     confines of the same expression are combined per the identity
//     (confine e in s1; confine e in s2) = confine e in {s1; s2},
//     and nested same-expression confines are pruned to the
//     outermost.
package confine

import (
	"context"
	"fmt"

	"localalias/internal/ast"
	"localalias/internal/effects"
	"localalias/internal/faults"
	"localalias/internal/infer"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

// Options configures inference.
type Options struct {
	// General keeps planted scopes transparent to enclosing blocks,
	// approximating the exhaustive Section 6.2 scope search. The
	// default is the paper's (weaker, faster) syntactic heuristic.
	General bool
	// Params additionally runs restrict inference over ref-typed
	// parameters. This is how the pipeline recovers strong updates
	// across helper-function boundaries (the paper's Figure 1
	// pattern, where C99 would annotate the parameter itself).
	Params bool
	// Lets additionally runs let-or-restrict inference (Section 5).
	Lets bool
	// Ctx, when non-nil, bounds the constraint solve: the solver
	// checks its deadline cooperatively so a per-module timeout can
	// abort a pathological system (see package faults).
	Ctx context.Context
	// Trace, when non-nil, records phase transitions (typecheck/
	// infer/solve) for fault attribution in corpus runs.
	Trace *faults.Trace
	// SolverWorkers bounds the partitioned constraint solver's
	// concurrency; <= 1 solves sequentially. Results are identical
	// either way.
	SolverWorkers int
	// Memo, when non-nil, lets the solve replay content-addressed
	// component summaries recorded by earlier solves (and record new
	// ones). Replay is byte-identical to solving fresh.
	Memo *solve.Memo
	// MemoCounters, when non-nil, receives the solve's component
	// reuse accounting (replayed vs freshly solved).
	MemoCounters *solve.MemoCounters
	// Imports supplies resolved import signatures for the
	// re-typecheck of the planted program; it must match what the
	// module was originally loaded with.
	Imports types.ImportSigs
	// ImportEffects supplies per-formal effect masks for imported
	// functions ("pkg.fn"); nil havocs imported calls (see
	// infer.Options.ImportEffects).
	ImportEffects map[string][]effects.Mask
}

// Result reports a confine inference run.
type Result struct {
	TInfo    *types.Info
	Infer    *infer.Result
	Solution *solve.Result
	// Planted is the number of confine? candidates inserted; Kept the
	// candidates that succeeded and remain in the AST; Removed the
	// count spliced back out.
	Planted int
	Kept    []*infer.Candidate
	Removed int
	// Violations report failures of explicit (hand-written)
	// annotations encountered along the way.
	Violations []solve.Violation
}

// InferAndApply plants confine? candidates in prog, solves, and
// rewrites prog in place so that exactly the successful confines
// remain (marked Inferred). It returns the analysis artifacts needed
// by the flow-sensitive qualifier analysis: the rewritten program's
// types.Info, the infer.Result whose maps cover the surviving nodes,
// and the least solution.
func InferAndApply(prog *ast.Program, diags *source.Diagnostics, opts Options) (*Result, error) {
	res := &Result{}

	// 1. Plant.
	planter := &planter{general: opts.General}
	for _, f := range prog.Funs {
		planter.block(f.Body, nil)
	}
	res.Planted = len(planter.planted)

	// 2. Re-typecheck the planted program and infer.
	opts.Trace.Enter(faults.PhaseTypecheck)
	res.TInfo = types.CheckWith(prog, diags, opts.Imports)
	if diags.HasErrors() {
		return res, fmt.Errorf("confine: planted program fails standard checking: %w", diags.Err())
	}
	opts.Trace.Enter(faults.PhaseInfer)
	optional := make(map[*ast.ConfineStmt]bool, len(planter.planted))
	for _, c := range planter.planted {
		optional[c] = true
	}
	res.Infer = infer.Run(res.TInfo, diags, infer.Options{
		InferRestrictLets:     opts.Lets,
		InferRestrictParams:   opts.Params,
		OptionalConfines:      optional,
		ImportEffects:         opts.ImportEffects,
		LiberalRestrictEffect: true, // inference uses the §5 semantics
	})
	if res.Infer.InternalErrors > 0 {
		return res, fmt.Errorf("confine: inference failed on the planted program: %w", diags.Err())
	}
	opts.Trace.Enter(faults.PhaseSolve)
	res.Solution = solve.SolveOpts(opts.Ctx, res.Infer.Sys, solve.Options{
		Workers: opts.SolverWorkers, Memo: opts.Memo, Counters: opts.MemoCounters,
	})
	if effects.ReportMalformed(diags, prog.File, res.Solution.Malformed()) {
		return res, fmt.Errorf("confine: %w", diags.Err())
	}
	res.Violations = res.Solution.Violations()
	for _, v := range res.Violations {
		diags.Errorf(prog.File, v.Site, "confine", "%s", v.String())
	}

	// 3. Apply verdicts.
	verdict := make(map[*ast.ConfineStmt]bool)
	for _, c := range res.Infer.Candidates {
		if cs, ok := c.Node.(*ast.ConfineStmt); ok && optional[cs] {
			ok := res.Infer.Succeeded(c)
			verdict[cs] = ok
			if ok {
				cs.Inferred = true
				res.Kept = append(res.Kept, c)
			} else {
				res.Removed++
			}
		}
	}
	for _, f := range prog.Funs {
		applyVerdicts(f.Body, verdict, nil)
	}
	// Mark successful let candidates as in restrict inference.
	for _, c := range res.Infer.Candidates {
		if d, ok := c.Node.(*ast.DeclStmt); ok && res.Infer.Succeeded(c) {
			d.Restrict = true
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Planting

// planter inserts confine? candidates.
type planter struct {
	general bool
	planted []*ast.ConfineStmt
}

// lockArgs returns the confinable change_type arguments syntactically
// contained in s: arguments of spin_lock/spin_unlock that are
// call-free pointer expressions. Planted candidate sub-blocks are
// opaque under the heuristic ("the new sub-block does not contain a
// change_type") and transparent in general mode.
func (p *planter) lockArgs(s ast.Stmt, out map[string]ast.Expr) {
	ast.Inspect(s, func(n ast.Node) bool {
		if cs, ok := n.(*ast.ConfineStmt); ok && !p.general && p.isPlanted(cs) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !types.IsLockOp(call.Fun) || len(call.Args) != 1 {
			return true
		}
		arg := call.Args[0]
		if confinable(arg) {
			out[ast.ExprString(arg)] = arg
		}
		return true
	})
}

func (p *planter) isPlanted(cs *ast.ConfineStmt) bool {
	for _, q := range p.planted {
		if q == cs {
			return true
		}
	}
	return false
}

// confinable enforces the Section 6.1 syntactic restriction: the
// expression must terminate and behave like a name, so it is built
// from identifiers, field accesses, indexes, dereferences and
// address-of only — no calls, no allocation.
func confinable(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.NewExpr:
			ok = false
			return false
		}
		return true
	})
	return ok
}

// block plants candidates in b, bottom-up. alreadyConfined carries
// the expressions confined by enclosing planted candidates, to avoid
// infinitely re-wrapping the same range.
func (p *planter) block(b *ast.Block, alreadyConfined map[string]bool) {
	// Children first (smallest scopes get the tightest confines).
	for _, s := range b.Stmts {
		p.stmt(s, alreadyConfined)
	}

	// Then pair statements at this level, to a fixpoint.
	for {
		// For each confinable expression, the statement indices
		// containing a change_type of it.
		occ := map[string][]int{}
		exprs := map[string]ast.Expr{}
		for i, s := range b.Stmts {
			args := map[string]ast.Expr{}
			p.lockArgs(s, args)
			for k, e := range args {
				occ[k] = append(occ[k], i)
				exprs[k] = e
			}
		}
		// Pick the key with >= 2 occurrences and the smallest range;
		// break ties toward the leftmost.
		bestKey := ""
		bestFirst, bestLast := 0, 0
		for k, idxs := range occ {
			if alreadyConfined[k] || len(idxs) < 2 {
				continue
			}
			first, last := idxs[0], idxs[len(idxs)-1]
			if bestKey == "" ||
				(last-first) < (bestLast-bestFirst) ||
				((last-first) == (bestLast-bestFirst) && (first < bestFirst || (first == bestFirst && k < bestKey))) {
				bestKey, bestFirst, bestLast = k, first, last
			}
		}
		if bestKey == "" {
			return
		}
		p.wrap(b, bestFirst, bestLast, exprs[bestKey], bestKey, alreadyConfined)
	}
}

// wrap replaces b.Stmts[first..last] with a single confine? of expr.
func (p *planter) wrap(b *ast.Block, first, last int, expr ast.Expr, key string, alreadyConfined map[string]bool) {
	span := b.Stmts[first].Span().Union(b.Stmts[last].Span())
	inner := &ast.Block{
		Stmts: append([]ast.Stmt(nil), b.Stmts[first:last+1]...),
		Sp:    span,
	}
	cs := &ast.ConfineStmt{
		Expr:     ast.CloneExpr(expr),
		Body:     inner,
		Inferred: false, // set on success
		Sp:       span,
	}
	p.planted = append(p.planted, cs)

	rest := append([]ast.Stmt(nil), b.Stmts[last+1:]...)
	b.Stmts = append(b.Stmts[:first], cs)
	b.Stmts = append(b.Stmts, rest...)

	// The new body may pair other expressions among the statements it
	// swallowed; process it with this key masked.
	sub := map[string]bool{key: true}
	for k := range alreadyConfined {
		sub[k] = true
	}
	p.block(inner, sub)
}

// stmt recurses into nested blocks.
func (p *planter) stmt(s ast.Stmt, alreadyConfined map[string]bool) {
	switch s := s.(type) {
	case *ast.BindStmt:
		p.block(s.Body, alreadyConfined)
	case *ast.ConfineStmt:
		sub := map[string]bool{ast.ExprString(s.Expr): true}
		for k := range alreadyConfined {
			sub[k] = true
		}
		p.block(s.Body, sub)
	case *ast.IfStmt:
		p.block(s.Then, alreadyConfined)
		if s.Else != nil {
			p.block(s.Else, alreadyConfined)
		}
	case *ast.WhileStmt:
		p.block(s.Body, alreadyConfined)
	case *ast.Block:
		p.block(s, alreadyConfined)
	}
}

// ---------------------------------------------------------------------
// Applying verdicts

// applyVerdicts rewrites b: failed planted confines are spliced out
// (their body statements inlined), successful ones kept; directly
// nested successful confines of an expression already confined by an
// enclosing kept confine are redundant and spliced; and adjacent kept
// confines of the same expression merge.
func applyVerdicts(b *ast.Block, verdict map[*ast.ConfineStmt]bool, active map[string]bool) {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		cs, isConfine := s.(*ast.ConfineStmt)
		if !isConfine {
			applyVerdictsStmt(s, verdict, active)
			out = append(out, s)
			continue
		}
		ok, wasPlanted := verdict[cs]
		key := ast.ExprString(cs.Expr)
		switch {
		case wasPlanted && !ok:
			// Failed: splice the body statements inline.
			applyVerdicts(cs.Body, verdict, active)
			out = append(out, cs.Body.Stmts...)
		case wasPlanted && active[key]:
			// Redundant nesting under an enclosing confine of the
			// same expression: keep only the outermost.
			applyVerdicts(cs.Body, verdict, active)
			out = append(out, cs.Body.Stmts...)
		default:
			sub := map[string]bool{key: true}
			for k := range active {
				sub[k] = true
			}
			applyVerdicts(cs.Body, verdict, sub)
			// Adjacent merge: (confine e {s1}; confine e {s2}) =
			// confine e {s1; s2}.
			if len(out) > 0 {
				if prev, okPrev := out[len(out)-1].(*ast.ConfineStmt); okPrev &&
					prev.Inferred && cs.Inferred && ast.EqualExpr(prev.Expr, cs.Expr) {
					prev.Body.Stmts = append(prev.Body.Stmts, cs.Body.Stmts...)
					prev.Sp = prev.Sp.Union(cs.Sp)
					continue
				}
			}
			out = append(out, cs)
		}
	}
	b.Stmts = out
}

func applyVerdictsStmt(s ast.Stmt, verdict map[*ast.ConfineStmt]bool, active map[string]bool) {
	switch s := s.(type) {
	case *ast.BindStmt:
		applyVerdicts(s.Body, verdict, active)
	case *ast.IfStmt:
		applyVerdicts(s.Then, verdict, active)
		if s.Else != nil {
			applyVerdicts(s.Else, verdict, active)
		}
	case *ast.WhileStmt:
		applyVerdicts(s.Body, verdict, active)
	case *ast.Block:
		applyVerdicts(s, verdict, active)
	}
}
