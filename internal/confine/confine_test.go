package confine

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/parser"
	"localalias/internal/source"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %s", diags.String())
	}
	return prog
}

func runInfer(t *testing.T, src string, opts Options) (*ast.Program, *Result) {
	t.Helper()
	prog := parse(t, src)
	var diags source.Diagnostics
	res, err := InferAndApply(prog, &diags, opts)
	if err != nil {
		t.Fatalf("InferAndApply: %v\n%s", err, diags.String())
	}
	return prog, res
}

func countConfines(prog *ast.Program) int {
	n := 0
	ast.Inspect(prog, func(x ast.Node) bool {
		if _, ok := x.(*ast.ConfineStmt); ok {
			n++
		}
		return true
	})
	return n
}

func TestPlantPairsSameBlock(t *testing.T) {
	prog, res := runInfer(t, `
global locks: lock[4];
fun f(i: int) {
    spin_lock(&locks[i]);
    work();
    spin_unlock(&locks[i]);
}
`, Options{})
	if res.Planted != 1 {
		t.Errorf("planted: %d", res.Planted)
	}
	if len(res.Kept) != 1 {
		t.Errorf("kept: %d", len(res.Kept))
	}
	cs := findConfine(prog)
	if cs == nil || !cs.Inferred {
		t.Fatal("kept confine must be marked Inferred")
	}
	if len(cs.Body.Stmts) != 3 {
		t.Errorf("smallest sub-block must cover lock..unlock inclusive: %d stmts", len(cs.Body.Stmts))
	}
}

func findConfine(prog *ast.Program) *ast.ConfineStmt {
	var out *ast.ConfineStmt
	ast.Inspect(prog, func(x ast.Node) bool {
		if cs, ok := x.(*ast.ConfineStmt); ok && out == nil {
			out = cs
		}
		return true
	})
	return out
}

func TestPlantSmallestRange(t *testing.T) {
	// Statements before/after the pair must stay outside the confine.
	prog, _ := runInfer(t, `
global locks: lock[4];
global c: int;
fun f(i: int) {
    c = 1;
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
    c = 2;
}
`, Options{})
	f := prog.Funs[0]
	if len(f.Body.Stmts) != 3 {
		t.Fatalf("outer block must keep 3 stmts (assign, confine, assign): %d\n%s",
			len(f.Body.Stmts), ast.String(prog))
	}
	if _, ok := f.Body.Stmts[1].(*ast.ConfineStmt); !ok {
		t.Errorf("middle stmt must be the confine")
	}
}

func TestPlantDistinctExprsNested(t *testing.T) {
	// Two interleaved pairs of different locks: the inner pair
	// confines within the outer one.
	prog, res := runInfer(t, `
global a: lock[4];
global b: lock[4];
fun f(i: int) {
    spin_lock(&a[i]);
    spin_lock(&b[i]);
    spin_unlock(&b[i]);
    spin_unlock(&a[i]);
}
`, Options{})
	if len(res.Kept) != 2 {
		t.Fatalf("both pairs must confine:\n%s", ast.String(prog))
	}
	if countConfines(prog) != 2 {
		t.Errorf("confines in tree: %d", countConfines(prog))
	}
	outer := findConfine(prog)
	innerFound := false
	ast.Inspect(outer.Body, func(x ast.Node) bool {
		if cs, ok := x.(*ast.ConfineStmt); ok && cs != outer {
			innerFound = true
		}
		return true
	})
	if !innerFound {
		t.Errorf("inner confine must nest inside the outer:\n%s", ast.String(prog))
	}
}

func TestPlantAcrossBranches(t *testing.T) {
	// Lock inside a branch, unlock after the join: both statements
	// "contain" a change_type of the same expression, so the outer
	// block pairs them.
	prog, res := runInfer(t, `
global locks: lock[4];
fun f(i: int, c: int) {
    if (c > 0) {
        spin_lock(&locks[i]);
    } else {
        spin_lock(&locks[i]);
    }
    spin_unlock(&locks[i]);
}
`, Options{})
	if len(res.Kept) != 1 {
		t.Fatalf("cross-branch pair must confine:\n%s", ast.String(prog))
	}
	cs := findConfine(prog)
	if len(cs.Body.Stmts) != 2 {
		t.Errorf("confine must cover the if and the unlock:\n%s", ast.String(prog))
	}
}

func TestFailedCandidateUnwrapped(t *testing.T) {
	// The index is written inside the would-be scope: candidate fails
	// and the AST is restored to its original shape.
	src := `
global locks: lock[4];
global idx: int;
fun f() {
    spin_lock(&locks[idx]);
    idx = idx + 1;
    spin_unlock(&locks[idx]);
}
`
	orig := ast.String(parse(t, src))
	prog, res := runInfer(t, src, Options{})
	if res.Planted != 1 || res.Removed != 1 || len(res.Kept) != 0 {
		t.Fatalf("planted=%d removed=%d kept=%d", res.Planted, res.Removed, len(res.Kept))
	}
	if got := ast.String(prog); got != orig {
		t.Errorf("failed candidate must restore the tree:\n--- orig ---\n%s--- got ---\n%s", orig, got)
	}
}

func TestConfinableRejectsCalls(t *testing.T) {
	if confinable(mustExpr(t, "f(x)")) {
		t.Error("calls are not confinable")
	}
	if confinable(mustExpr(t, "&locks[g(i)]")) {
		t.Error("nested calls are not confinable")
	}
	if confinable(mustExpr(t, "new 3")) {
		t.Error("allocation is not confinable")
	}
	for _, ok := range []string{"&locks[i]", "p", "&d->l", "*pp", "&devs[i].l"} {
		if !confinable(mustExpr(t, ok)) {
			t.Errorf("%q must be confinable", ok)
		}
	}
}

func mustExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	var diags source.Diagnostics
	e := parser.ParseExpr(src, &diags)
	if diags.HasErrors() {
		t.Fatalf("expr %q: %s", src, diags.String())
	}
	return e
}

func TestSingleOpNotPlanted(t *testing.T) {
	// A lone lock op cannot pair: nothing planted.
	_, res := runInfer(t, `
global locks: lock[4];
fun f(i: int) {
    spin_lock(&locks[i]);
}
`, Options{})
	if res.Planted != 0 {
		t.Errorf("planted: %d", res.Planted)
	}
}

func TestOpaqueSubBlocks(t *testing.T) {
	// Once a pair is wrapped, the heuristic treats the new sub-block
	// as containing no change_type: a third op of the same lock later
	// in the block cannot pair with the buried ones.
	prog, res := runInfer(t, `
global locks: lock[4];
fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&locks[i]);
    work();
    work();
    spin_lock(&locks[i]);
}
`, Options{})
	// The first two wrap; the trailing lone lock stays outside. It
	// cannot pair with the opaque confine, so exactly one candidate.
	if res.Planted != 1 {
		t.Errorf("planted: %d\n%s", res.Planted, ast.String(prog))
	}
}

func TestExplicitConfineRespected(t *testing.T) {
	// A hand-written confine is not a candidate: it is checked, not
	// inferred, and never unwrapped.
	prog, res := runInfer(t, `
global locks: lock[4];
fun f(i: int) {
    confine &locks[i] {
        spin_lock(&locks[i]);
        spin_unlock(&locks[i]);
    }
}
`, Options{})
	if res.Planted != 0 {
		t.Errorf("explicit confine must not be re-planted: %d", res.Planted)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	cs := findConfine(prog)
	if cs == nil || cs.Inferred {
		t.Error("explicit confine must survive, unmarked")
	}
}

func TestExplicitConfineViolationReported(t *testing.T) {
	prog := parse(t, `
global locks: lock[4];
global idx: int;
fun f() {
    confine &locks[idx] {
        spin_lock(&locks[idx]);
        idx = idx + 1;
        spin_unlock(&locks[idx]);
    }
}
`)
	var diags source.Diagnostics
	res, err := InferAndApply(prog, &diags, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("explicit confine over a mutated index must be reported")
	}
	if !strings.Contains(diags.String(), "confine") {
		t.Errorf("diags: %s", diags.String())
	}
}

func TestGeneralModeOutermost(t *testing.T) {
	// In general mode, enclosing scopes are also tried and the
	// outermost success wins: the pair sits inside an if, but the
	// enclosing function block is also a valid (larger) scope.
	prog, res := runInfer(t, `
global locks: lock[4];
fun f(i: int, c: int) {
    if (c > 0) {
        spin_lock(&locks[i]);
        spin_unlock(&locks[i]);
    }
    work();
}
`, Options{General: true})
	if len(res.Kept) == 0 {
		t.Fatalf("general mode must keep a confine:\n%s", ast.String(prog))
	}
	if countConfines(prog) != 1 {
		t.Errorf("nested same-expression confines must prune to the outermost:\n%s",
			ast.String(prog))
	}
}

func TestLetsOptionThroughConfine(t *testing.T) {
	// Lets: let-or-restrict inference runs in the same pass and marks
	// the binding.
	prog, res := runInfer(t, `
global locks: lock[4];
fun f(i: int) {
    let l = &locks[i];
    spin_lock(l);
    spin_unlock(l);
}
`, Options{Lets: true})
	marked := false
	ast.Inspect(prog, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok && d.Restrict {
			marked = true
		}
		return true
	})
	if !marked {
		t.Errorf("let must be marked restrict:\n%s", ast.String(prog))
	}
	// And it shows up among the candidates.
	foundLet := false
	for _, c := range res.Infer.Candidates {
		if c.Kind.String() == "let" {
			foundLet = true
		}
	}
	if !foundLet {
		t.Error("let candidate missing")
	}
}
