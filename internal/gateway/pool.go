package gateway

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"localalias/internal/client"
)

// Health-check defaults.
const (
	// DefaultHealthInterval is the period between health sweeps.
	DefaultHealthInterval = 2 * time.Second
	// DefaultHealthTimeout bounds one health probe: a backend that
	// cannot answer /v1/health in this long is not healthy, whatever it
	// would eventually have said.
	DefaultHealthTimeout = 1 * time.Second
)

// Backend is one `lna serve` replica in the pool.
type Backend struct {
	// URL is the replica's base URL; it is also the backend's identity
	// on the hash ring.
	URL string
	// client forwards requests; RoundTrip only (the gateway owns retry
	// placement, so the client-level policy must never trigger).
	client *client.Client

	healthy atomic.Bool
	// lastErr is the most recent probe or forward failure, for
	// /v1/health introspection ("" when healthy).
	lastErr atomic.Value // string
	// forwarded counts requests this backend served (for balance
	// introspection in stats and tests).
	forwarded atomic.Uint64
}

// Healthy reports whether the backend is currently in the ring.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// BackendState is one backend's row in the gateway's health payload.
type BackendState struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	LastError string `json:"last_error,omitempty"`
	Forwarded uint64 `json:"forwarded"`
}

// pool owns the backend set, the periodic health checks, and the
// consistent-hash ring over the currently-healthy members. The ring is
// immutable and swapped atomically, so the request path never takes
// the pool's lock.
type pool struct {
	backends []*Backend // fixed membership, stable order
	byURL    map[string]*Backend
	vnodes   int
	interval time.Duration
	timeout  time.Duration

	ring atomic.Pointer[ring]

	mu      sync.Mutex // serializes ring rebuilds and sweeps
	stop    chan struct{}
	stopped sync.WaitGroup

	// onSweep, when non-nil (the gateway installs it), receives every
	// completed health sweep's probe outcomes — the hook behind the
	// health-sweep traces.
	onSweep func(start time.Time, dur time.Duration, probes []sweepProbe, changed bool)
}

// sweepProbe is one backend's probe outcome within a health sweep.
type sweepProbe struct {
	url     string
	healthy bool
	detail  string // probe error or reported status ("" when healthy)
	start   time.Time
	dur     time.Duration
}

func newPool(urls []string, vnodes int, interval, timeout time.Duration) *pool {
	if interval <= 0 {
		interval = DefaultHealthInterval
	}
	if timeout <= 0 {
		timeout = DefaultHealthTimeout
	}
	p := &pool{
		byURL:    make(map[string]*Backend, len(urls)),
		vnodes:   vnodes,
		interval: interval,
		timeout:  timeout,
		stop:     make(chan struct{}),
	}
	for _, u := range urls {
		if _, dup := p.byURL[u]; dup {
			continue
		}
		b := &Backend{
			URL: u,
			client: client.New(u, client.Options{
				Retry: client.RetryPolicy{MaxAttempts: 1},
			}),
		}
		b.lastErr.Store("")
		// Backends start healthy: a gateway booting ahead of its
		// replicas would otherwise refuse everything until the first
		// sweep, and an eager failure mark corrects an optimistic start
		// within one forwarded request anyway.
		b.healthy.Store(true)
		p.backends = append(p.backends, b)
		p.byURL[u] = b
	}
	p.rebuild()
	return p
}

// start launches the periodic health sweep.
func (p *pool) start() {
	p.stopped.Add(1)
	go func() {
		defer p.stopped.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.CheckNow(context.Background())
			}
		}
	}()
}

// shutdown stops the sweep loop and waits for it.
func (p *pool) shutdown() {
	close(p.stop)
	p.stopped.Wait()
}

// CheckNow probes every backend once and rebuilds the ring if any
// state changed. Exposed (via the Gateway) so tests and operators can
// force a sweep instead of sleeping through the interval.
func (p *pool) CheckNow(ctx context.Context) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sweepStart := time.Now()
	probes := make([]sweepProbe, 0, len(p.backends))
	changed := false
	for _, b := range p.backends {
		probeStart := time.Now()
		probeCtx, cancel := context.WithTimeout(ctx, p.timeout)
		hs, err := b.client.Health(probeCtx)
		cancel()
		healthy := err == nil && hs.Status == "ok"
		switch {
		case err != nil:
			b.lastErr.Store(err.Error())
		case hs.Status != "ok":
			// A draining replica answers health truthfully; the pool
			// removes it so new work reroutes before the drain deadline.
			b.lastErr.Store("backend reports status " + hs.Status)
		default:
			b.lastErr.Store("")
		}
		if b.healthy.Swap(healthy) != healthy {
			changed = true
		}
		probes = append(probes, sweepProbe{
			url:     b.URL,
			healthy: healthy,
			detail:  b.lastErr.Load().(string),
			start:   probeStart,
			dur:     time.Since(probeStart),
		})
	}
	if changed {
		p.rebuildLocked()
	}
	if p.onSweep != nil {
		p.onSweep(sweepStart, time.Since(sweepStart), probes, changed)
	}
}

// markUnhealthy eagerly removes a backend the forward path just failed
// against, without waiting for the next sweep. The sweep re-admits it
// once it answers health checks again.
func (p *pool) markUnhealthy(b *Backend, reason string) {
	b.lastErr.Store(reason)
	if b.healthy.Swap(false) {
		p.rebuild()
	}
}

// rebuild recomputes the ring from the currently-healthy members.
func (p *pool) rebuild() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rebuildLocked()
}

func (p *pool) rebuildLocked() {
	ids := make([]string, 0, len(p.backends))
	for _, b := range p.backends {
		if b.Healthy() {
			ids = append(ids, b.URL)
		}
	}
	p.ring.Store(newRing(ids, p.vnodes))
}

// candidates returns up to n distinct healthy backends for key in ring
// order (owner first). A backend that turned unhealthy since the ring
// was built is filtered; nil means no backend can serve the key.
func (p *pool) candidates(key string, n int) []*Backend {
	r := p.ring.Load()
	if r == nil {
		return nil
	}
	out := make([]*Backend, 0, n)
	for _, id := range r.sequence(key, n) {
		if b := p.byURL[id]; b != nil && b.Healthy() {
			out = append(out, b)
		}
	}
	return out
}

// ringSize returns the virtual-node point count of the current ring
// (healthy backends × vnodes) — the lna_gateway_ring_size gauge.
func (p *pool) ringSize() int {
	r := p.ring.Load()
	if r == nil {
		return 0
	}
	return len(r.points)
}

// healthyCount returns how many backends are in the ring.
func (p *pool) healthyCount() int {
	n := 0
	for _, b := range p.backends {
		if b.Healthy() {
			n++
		}
	}
	return n
}

// states snapshots every backend for the health payload.
func (p *pool) states() []BackendState {
	out := make([]BackendState, 0, len(p.backends))
	for _, b := range p.backends {
		out = append(out, BackendState{
			URL:       b.URL,
			Healthy:   b.Healthy(),
			LastError: b.lastErr.Load().(string),
			Forwarded: b.forwarded.Load(),
		})
	}
	return out
}
