package gateway

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: two rings built from the same members agree on
// every owner — the property that lets every gateway replica (and a
// restarted gateway) route identically with no coordination.
func TestRingDeterminism(t *testing.T) {
	ids := []string{"http://a", "http://b", "http://c", "http://d"}
	r1, r2 := newRing(ids, 64), newRing(ids, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if r1.owner(key) != r2.owner(key) {
			t.Fatalf("rings from identical members disagree on %s", key)
		}
	}
	// Member order must not matter either.
	r3 := newRing([]string{"http://d", "http://b", "http://a", "http://c"}, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%03d", i)
		if r1.owner(key) != r3.owner(key) {
			t.Fatalf("member order changed the owner of %s", key)
		}
	}
}

// TestRingBalance: with 64 vnodes, 4 backends each own a reasonable
// share of 4000 keys (no backend starves or hogs the keyspace).
func TestRingBalance(t *testing.T) {
	ids := []string{"http://a", "http://b", "http://c", "http://d"}
	r := newRing(ids, 64)
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("key-%04d", i))]++
	}
	for _, id := range ids {
		share := float64(counts[id]) / n
		if share < 0.10 || share > 0.45 {
			t.Errorf("backend %s owns %.1f%% of the keyspace (counts %v)", id, 100*share, counts)
		}
	}
}

// TestRingMinimalDisruption: removing one backend moves only the keys
// it owned; every other key keeps its owner — the consistent-hashing
// property that preserves cache affinity through membership churn.
func TestRingMinimalDisruption(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c", "http://d"}
	without := []string{"http://a", "http://b", "http://d"} // c removed
	rAll, rLess := newRing(all, 64), newRing(without, 64)
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%04d", i)
		before, after := rAll.owner(key), rLess.owner(key)
		if before == "http://c" {
			if after == "http://c" {
				t.Fatalf("%s still owned by the removed backend", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Errorf("%s moved from %s to %s though its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Error("removed backend owned no keys; the balance test should have caught this")
	}
}

// TestRingSequence: the retry walk starts at the owner, never repeats
// a backend, and is capped by the member count.
func TestRingSequence(t *testing.T) {
	ids := []string{"http://a", "http://b", "http://c"}
	r := newRing(ids, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%03d", i)
		seq := r.sequence(key, 5)
		if len(seq) != 3 {
			t.Fatalf("sequence(%s, 5) over 3 members = %v", key, seq)
		}
		if seq[0] != r.owner(key) {
			t.Errorf("%s: sequence does not start at the owner", key)
		}
		seen := map[string]bool{}
		for _, id := range seq {
			if seen[id] {
				t.Errorf("%s: duplicate %s in sequence %v", key, id, seq)
			}
			seen[id] = true
		}
	}
	if got := newRing(nil, 64).sequence("k", 3); got != nil {
		t.Errorf("empty ring sequence = %v, want nil", got)
	}
	if got := newRing(nil, 64).owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
}
