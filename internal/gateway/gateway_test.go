// Failure-mode and differential tests for the gateway tier, driven
// through internal/client like any remote caller. The backends are
// real in-process daemons behind a switchable proxy wrapper that can
// delay traffic (hedging tests) or kill connections outright (death
// and reroute tests) — so every failure the gateway handles here is a
// transport-level fact, not a mock's opinion.
package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"localalias/internal/client"
	"localalias/internal/drivergen"
	"localalias/internal/gateway"
	"localalias/internal/service"
)

const checkSrc = `fun f(x: ref int): int {
    restrict y = x {
        return *y;
    }
    return 0;
}
`

// wrapper fronts one replica and injects faults on demand.
type wrapper struct {
	inner http.Handler
	// delayNs, when > 0, sleeps every /v1/analyze and /v1/batch request
	// (health stays fast, so the replica looks alive but slow).
	delayNs atomic.Int64
	// dead, when set, kills every connection at the TCP level — the
	// closest in-process stand-in for a crashed replica.
	dead atomic.Bool
	// killNextBatch arms a one-shot: the next /v1/batch request flips
	// dead and drops its connection mid-request.
	killNextBatch atomic.Bool
}

func (w *wrapper) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if w.killNextBatch.Load() && r.URL.Path == "/v1/batch" && w.killNextBatch.CompareAndSwap(true, false) {
		w.dead.Store(true)
	}
	if w.dead.Load() {
		if hj, ok := rw.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic("wrapper: cannot hijack connection to simulate death")
	}
	if d := w.delayNs.Load(); d > 0 && (r.URL.Path == "/v1/analyze" || r.URL.Path == "/v1/batch") {
		time.Sleep(time.Duration(d))
	}
	w.inner.ServeHTTP(rw, r)
}

type replica struct {
	srv  *service.Server
	ts   *httptest.Server
	wrap *wrapper
}

// newCluster boots n wrapped daemons and a gateway over them. The
// health interval is an hour: sweeps happen only through CheckNow, so
// every membership change in a test is explicit and deterministic.
func newCluster(t *testing.T, n int, opts gateway.Options) (*gateway.Gateway, *client.Client, []*replica) {
	t.Helper()
	reps := make([]*replica, n)
	urls := make([]string, n)
	for i := range reps {
		srv := service.NewServer(service.ServerOptions{Workers: 2})
		w := &wrapper{inner: srv.Handler()}
		ts := httptest.NewServer(w)
		t.Cleanup(ts.Close)
		reps[i] = &replica{srv: srv, ts: ts, wrap: w}
		urls[i] = ts.URL
	}
	opts.Backends = urls
	if opts.HealthInterval == 0 {
		opts.HealthInterval = time.Hour
	}
	g, err := gateway.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(g.Handler())
	t.Cleanup(gts.Close)
	c := client.New(gts.URL, client.Options{Retry: client.RetryPolicy{MaxAttempts: 1}})
	return g, c, reps
}

func corpusRequests(n int) []service.AnalyzeRequest {
	reqs := make([]service.AnalyzeRequest, 0, n)
	for _, spec := range drivergen.Corpus()[:n] {
		reqs = append(reqs, service.AnalyzeRequest{Module: spec.Name + ".mc", Source: spec.Source()})
	}
	return reqs
}

// findOwnedModule probes the gateway until it sees a module routed to
// (or away from, per want) the given backend URL, returning the
// request. The probe warms nothing that matters: routing is a pure
// function of the cache key.
func findOwnedModule(t *testing.T, c *client.Client, url string, owned bool) service.AnalyzeRequest {
	t.Helper()
	for i := 0; i < 64; i++ {
		req := service.AnalyzeRequest{
			Module: fmt.Sprintf("probe-%02d.mc", i), Source: checkSrc,
			Options: service.AnalyzeOptions{Mode: service.ModeCheck}}
		_, meta, err := c.AnalyzeRaw(context.Background(), &req)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if (meta.Backend == url) == owned {
			return req
		}
	}
	t.Fatalf("no probe module routed with owned=%v for %s in 64 tries", owned, url)
	return service.AnalyzeRequest{}
}

// TestGatewayAnalyzeByteIdentity: every corpus module served through
// the gateway answers byte-identically to a direct engine run — the
// acceptance criterion that makes the tier transparent. Full
// 589-module corpus; -short covers a 60-module prefix.
func TestGatewayAnalyzeByteIdentity(t *testing.T) {
	specs := drivergen.Corpus()
	if testing.Short() {
		specs = specs[:60]
	}
	_, c, reps := newCluster(t, 2, gateway.Options{})
	served := map[string]int{}
	for _, spec := range specs {
		req := service.AnalyzeRequest{Module: spec.Name + ".mc", Source: spec.Source()}
		viaGateway, meta, err := c.AnalyzeRaw(context.Background(), &req)
		if err != nil {
			t.Fatalf("%s via gateway: %v", spec.Name, err)
		}
		direct, err := service.Analyze(context.Background(), &req).MarshalCanonical()
		if err != nil {
			t.Fatalf("%s direct: %v", spec.Name, err)
		}
		if !bytes.Equal(viaGateway, direct) {
			t.Fatalf("%s: gateway bytes differ from direct analysis\n--- gateway\n%s\n--- direct\n%s",
				spec.Name, viaGateway, direct)
		}
		if meta.Backend == "" {
			t.Fatalf("%s: response lacks X-Lna-Backend", spec.Name)
		}
		if want := service.CacheKey(&req); meta.CacheKey != want {
			t.Fatalf("%s: relayed cache key %q != %q", spec.Name, meta.CacheKey, want)
		}
		served[meta.Backend]++
	}
	if len(served) != 2 {
		t.Errorf("corpus landed on %d backend(s), want both: %v", len(served), served)
	}
	for _, r := range reps {
		if r.wrap.dead.Load() {
			t.Error("a replica died during a healthy run")
		}
	}
}

// TestGatewayBatchByteIdentity: a 200-module batch through the gateway
// carries per-entry response bytes identical to a direct daemon's
// batch, with matching summaries.
func TestGatewayBatchByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("200-module batch in -short mode")
	}
	_, gc, _ := newCluster(t, 2, gateway.Options{})
	direct := service.NewServer(service.ServerOptions{Workers: 2})
	dts := httptest.NewServer(direct.Handler())
	defer dts.Close()
	dc := client.New(dts.URL, client.Options{})

	reqs := corpusRequests(200)
	viaGateway, _, err := gc.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("gateway batch: %v", err)
	}
	viaDaemon, _, err := dc.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("direct batch: %v", err)
	}
	if viaGateway.Summary.Modules != 200 || viaGateway.Summary.Failures != 0 || viaGateway.Summary.Rejected != 0 {
		t.Fatalf("gateway summary = %+v", viaGateway.Summary)
	}
	for i := range reqs {
		gw, dm := viaGateway.Results[i], viaDaemon.Results[i]
		if !bytes.Equal(gw.Response, dm.Response) {
			t.Errorf("entry %d (%s): gateway response bytes differ from direct daemon",
				i, reqs[i].Module)
		}
		if gw.CacheKey != dm.CacheKey {
			t.Errorf("entry %d: cache key differs through the gateway", i)
		}
	}
	if viaGateway.Summary.CacheMisses != viaDaemon.Summary.CacheMisses ||
		viaGateway.Summary.Findings != viaDaemon.Summary.Findings {
		t.Errorf("summaries diverge: gateway %+v vs daemon %+v", viaGateway.Summary, viaDaemon.Summary)
	}
}

// TestGatewayCacheAffinity: replaying a batch through a 2-replica
// gateway hits every entry on the second pass — consistent hashing
// sends each key back to the replica that cached it, so the hit rate
// is no worse than a single daemon's.
func TestGatewayCacheAffinity(t *testing.T) {
	g, gc, reps := newCluster(t, 2, gateway.Options{})
	reqs := corpusRequests(40)

	first, _, err := gc.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Summary.CacheMisses != 40 {
		t.Fatalf("first pass summary = %+v; want 40 misses", first.Summary)
	}
	second, _, err := gc.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	// Single-daemon baseline for the same replay.
	direct := service.NewServer(service.ServerOptions{Workers: 2})
	dts := httptest.NewServer(direct.Handler())
	defer dts.Close()
	dc := client.New(dts.URL, client.Options{})
	if _, _, err := dc.Batch(context.Background(), reqs); err != nil {
		t.Fatal(err)
	}
	baseline, _, err := dc.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if second.Summary.CacheHits < baseline.Summary.CacheHits {
		t.Errorf("gateway replay hit %d/40; single daemon hit %d/40 — affinity lost",
			second.Summary.CacheHits, baseline.Summary.CacheHits)
	}
	if second.Summary.CacheHits != 40 {
		t.Errorf("gateway replay hit %d/40; identical resubmission should hit fully", second.Summary.CacheHits)
	}
	// Both replicas must actually share the load for affinity to mean
	// anything.
	for _, st := range g.BackendStates() {
		if st.Forwarded == 0 {
			t.Errorf("backend %s served nothing in a 40-module corpus", st.URL)
		}
	}
	_ = reps
}

// TestGatewayValidationAtEdge: inadmissible requests are refused by
// the gateway itself — the canonical error comes back and no backend
// spends a round trip.
func TestGatewayValidationAtEdge(t *testing.T) {
	g, c, _ := newCluster(t, 2, gateway.Options{})
	cases := []struct {
		name string
		req  service.AnalyzeRequest
		code string
	}{
		{"bad mode", service.AnalyzeRequest{Module: "m.mc", Source: "x",
			Options: service.AnalyzeOptions{Mode: "optimize"}}, service.CodeBadRequest},
		{"empty source", service.AnalyzeRequest{Module: "m.mc",
			Options: service.AnalyzeOptions{Mode: service.ModeCheck}}, service.CodeBadRequest},
		{"future version", service.AnalyzeRequest{APIVersion: "v9", Module: "m.mc", Source: "x",
			Options: service.AnalyzeOptions{Mode: service.ModeCheck}}, service.CodeUnsupportedVersion},
	}
	for _, tc := range cases {
		_, _, err := c.Analyze(context.Background(), &tc.req)
		apiErr, ok := err.(*client.APIError)
		if !ok {
			t.Fatalf("%s: err = %v; want *client.APIError", tc.name, err)
		}
		if apiErr.Status != http.StatusBadRequest || apiErr.Err.Code != tc.code {
			t.Errorf("%s: status %d code %q; want 400 %q", tc.name, apiErr.Status, apiErr.Err.Code, tc.code)
		}
	}
	for _, st := range g.BackendStates() {
		if st.Forwarded != 0 {
			t.Errorf("backend %s saw %d forwards from invalid requests", st.URL, st.Forwarded)
		}
	}
	// A batch mixing valid and invalid entries: invalid ones error at
	// the edge, valid ones analyze.
	out, _, err := c.Batch(context.Background(), []service.AnalyzeRequest{
		{Module: "ok.mc", Source: checkSrc, Options: service.AnalyzeOptions{Mode: service.ModeCheck}},
		{Module: "bad.mc", Options: service.AnalyzeOptions{Mode: service.ModeCheck}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Error != nil || len(out.Results[0].Response) == 0 {
		t.Errorf("valid entry degraded: %+v", out.Results[0])
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != service.CodeBadRequest {
		t.Errorf("invalid entry error = %+v", out.Results[1].Error)
	}
	if out.Summary.Rejected != 1 {
		t.Errorf("summary rejected = %d, want 1", out.Summary.Rejected)
	}
}

// TestGatewayAdmissionControl: with one admission slot occupied by a
// slow request, the next request is refused with the canonical 429 +
// Retry-After before any backend is touched.
func TestGatewayAdmissionControl(t *testing.T) {
	g, c, reps := newCluster(t, 1, gateway.Options{MaxInflight: 1, Retries: -1})
	reps[0].wrap.delayNs.Store(int64(2 * time.Second))
	slowDone := make(chan error, 1)
	go func() {
		_, _, err := c.Analyze(context.Background(), &service.AnalyzeRequest{
			Module: "slow.mc", Source: checkSrc,
			Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
		slowDone <- err
	}()
	// Wait until the slow request holds the slot.
	deadline := time.After(5 * time.Second)
	for g.Stats().Requests == 0 {
		select {
		case <-deadline:
			t.Fatal("slow request never admitted")
		case <-time.After(5 * time.Millisecond):
		}
	}
	body, _ := json.Marshal(service.AnalyzeRequest{
		Module: "fast.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
	res, err := c.RoundTrip(context.Background(), "/v1/analyze", body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", res.Status, res.Body)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}
	if werr := res.WireError(); werr.Code != service.CodeQueueFull {
		t.Errorf("code = %q, want %q", werr.Code, service.CodeQueueFull)
	}
	reps[0].wrap.delayNs.Store(0)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow request failed: %v", err)
	}
	if g.Stats().Rejected == 0 {
		t.Error("gateway rejected counter did not move")
	}
}

// TestGatewayNoHealthyBackends: when every replica is gone, the
// gateway answers 503 backend_unavailable itself and its health
// endpoint says so.
func TestGatewayNoHealthyBackends(t *testing.T) {
	g, c, reps := newCluster(t, 1, gateway.Options{})
	reps[0].wrap.dead.Store(true)
	g.CheckNow(context.Background())

	_, _, err := c.Analyze(context.Background(), &service.AnalyzeRequest{
		Module: "m.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}})
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("err = %v; want *client.APIError", err)
	}
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Err.Code != service.CodeBackendUnavailable {
		t.Errorf("got %d %q; want 503 %q", apiErr.Status, apiErr.Err.Code, service.CodeBackendUnavailable)
	}
	resp, err := http.Get(c.BaseURL() + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var gh gateway.GatewayHealth
	if err := json.NewDecoder(resp.Body).Decode(&gh); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gh.Status != "unavailable" || len(gh.Backends) != 1 || gh.Backends[0].Healthy {
		t.Errorf("health = %+v; want unavailable with 1 unhealthy backend", gh)
	}
	if gh.Backends[0].LastError == "" {
		t.Error("unhealthy backend carries no last_error")
	}
}

// TestGatewayDrainingBackendRemoved: a replica that reports draining
// is removed from the pool on the next sweep, traffic reroutes to the
// survivor, and the replica rejoins once it is healthy again.
func TestGatewayDrainingBackendRemoved(t *testing.T) {
	g, c, reps := newCluster(t, 2, gateway.Options{})
	// A module the draining replica owns, found while it is healthy.
	req := findOwnedModule(t, c, reps[0].ts.URL, true)

	reps[0].srv.SetDraining(true)
	g.CheckNow(context.Background())
	var drainedState gateway.BackendState
	for _, st := range g.BackendStates() {
		if st.URL == reps[0].ts.URL {
			drainedState = st
		}
	}
	if drainedState.Healthy {
		t.Fatal("draining replica still in the pool after a sweep")
	}
	if !strings.Contains(drainedState.LastError, "draining") {
		t.Errorf("last_error = %q; want the draining status", drainedState.LastError)
	}
	// Its keys now land on the survivor.
	_, meta, err := c.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatalf("analyze while replica drains: %v", err)
	}
	if meta.Backend != reps[1].ts.URL {
		t.Errorf("rerouted request served by %s; want the survivor %s", meta.Backend, reps[1].ts.URL)
	}

	// Drain ends: the sweep re-admits the replica and ownership returns.
	reps[0].srv.SetDraining(false)
	g.CheckNow(context.Background())
	_, meta, err = c.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Backend != reps[0].ts.URL {
		t.Errorf("after rejoin, request served by %s; want its owner %s back", meta.Backend, reps[0].ts.URL)
	}
}

// TestGatewayAnalyzeReroutesOnDeath: a request whose owner is dead
// walks the ring to the successor and still answers byte-identically,
// and the dead replica leaves the pool immediately (no sweep needed).
func TestGatewayAnalyzeReroutesOnDeath(t *testing.T) {
	_, c, reps := newCluster(t, 2, gateway.Options{Retries: 1})
	req := findOwnedModule(t, c, reps[0].ts.URL, true)
	reps[0].wrap.dead.Store(true)

	body, meta, err := c.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatalf("analyze with dead owner: %v", err)
	}
	if meta.Backend != reps[1].ts.URL {
		t.Errorf("served by %s; want the survivor %s", meta.Backend, reps[1].ts.URL)
	}
	if meta.Attempts != 2 {
		t.Errorf("attempts = %d; want 2 (owner failed, successor served)", meta.Attempts)
	}
	direct, err := service.Analyze(context.Background(), &req).MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, direct) {
		t.Error("rerouted response bytes differ from direct analysis")
	}
}

// TestGatewayBatchSurvivesBackendDeath: a replica dying mid-batch
// (connection dropped while its sub-batch is in flight) costs its
// group one reroute; the batch completes with every entry healthy.
func TestGatewayBatchSurvivesBackendDeath(t *testing.T) {
	g, c, reps := newCluster(t, 2, gateway.Options{Retries: 2})
	reqs := corpusRequests(30)
	for i := range reqs {
		reqs[i].Options.Mode = service.ModeCheck
	}
	// Arm the one-shot: replica 0 drops the connection on its next
	// sub-batch and stays dead.
	reps[0].wrap.killNextBatch.Store(true)

	out, _, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatalf("batch across a dying replica: %v", err)
	}
	if out.Summary.Modules != 30 || out.Summary.Rejected != 0 || out.Summary.Failures != 0 {
		t.Fatalf("summary = %+v; want 30 healthy modules", out.Summary)
	}
	for i, entry := range out.Results {
		if entry.Error != nil {
			t.Errorf("entry %d carries error %v after reroute", i, entry.Error)
		}
		if len(entry.Response) == 0 {
			t.Errorf("entry %d has no response", i)
		}
	}
	st := g.Stats()
	if st.Retries == 0 {
		t.Error("retry counter did not move though a sub-batch died")
	}
	for _, bs := range g.BackendStates() {
		if bs.URL == reps[0].ts.URL && bs.Healthy {
			t.Error("dead replica still marked healthy")
		}
	}
}

// TestGatewayHedgedRequestFirstWinner: when the owner stalls past
// HedgeAfter, the gateway races the successor and relays whichever
// answers first — here the successor — then cancels the loser without
// evicting it from the pool.
func TestGatewayHedgedRequestFirstWinner(t *testing.T) {
	// Discover ownership with a hedging-free gateway, then build the
	// hedging gateway over the same replicas (same URLs, same ring).
	_, probe, reps := newCluster(t, 2, gateway.Options{})
	req := findOwnedModule(t, probe, reps[0].ts.URL, true)

	hg, err := gateway.New(gateway.Options{
		Backends:       []string{reps[0].ts.URL, reps[1].ts.URL},
		HedgeAfter:     25 * time.Millisecond,
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(hg.Handler())
	defer hts.Close()
	hc := client.New(hts.URL, client.Options{Retry: client.RetryPolicy{MaxAttempts: 1}})

	reps[0].wrap.delayNs.Store(int64(1500 * time.Millisecond))
	defer reps[0].wrap.delayNs.Store(0)

	start := time.Now()
	body, meta, err := hc.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatalf("hedged analyze: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= 1500*time.Millisecond {
		t.Errorf("hedged request took %v — it waited for the stalled owner", elapsed)
	}
	if meta.Backend != reps[1].ts.URL {
		t.Errorf("winner = %s; want the hedge target %s", meta.Backend, reps[1].ts.URL)
	}
	if meta.Attempts != 2 {
		t.Errorf("attempts = %d; want 2 (owner + hedge)", meta.Attempts)
	}
	direct, err := service.Analyze(context.Background(), &req).MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, direct) {
		t.Error("hedged response bytes differ from direct analysis")
	}
	st := hg.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("hedge counters = %d launched / %d won; want 1/1", st.Hedges, st.HedgeWins)
	}
	// The cancelled owner is slow, not dead: it must stay in the pool.
	for _, bs := range hg.BackendStates() {
		if bs.URL == reps[0].ts.URL && !bs.Healthy {
			t.Error("stalled owner was evicted by a cancelled hedge loser")
		}
	}
}

// TestGatewayStatsEndpoint: the stats payload decodes and reflects
// served traffic.
func TestGatewayStatsEndpoint(t *testing.T) {
	_, c, _ := newCluster(t, 2, gateway.Options{})
	if _, _, err := c.AnalyzeRaw(context.Background(), &service.AnalyzeRequest{
		Module: "s.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.BaseURL() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st gateway.GatewayStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.HealthyBackends != 2 || len(st.Backends) != 2 {
		t.Errorf("stats = %+v; want 1 request over 2 healthy backends", st)
	}
}
