// Package gateway is the distributed front of the analysis service:
// an HTTP tier that consistent-hashes each request's content-hash
// cache key across a pool of health-checked `lna serve` replicas, so
// the same module (same source, same options) always lands on the
// same backend and its result cache and solve memo stay hot. Around
// that routing core it layers per-request retry with ring-successor
// rerouting, optional request hedging, and the same bounded admission
// control the daemon itself applies.
//
// The gateway speaks the exact v1 wire contract of package service —
// request bodies are forwarded verbatim and response bodies relayed
// verbatim, so a response through the gateway is byte-identical to
// one from the backend daemon.
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per backend: enough points
// that removing one backend of four moves only ~1/4 of the keyspace
// and the per-backend load imbalance stays within a few percent.
const DefaultVnodes = 64

// ring is an immutable consistent-hash ring over backend IDs. Lookups
// are lock-free; membership changes build a new ring (the pool swaps
// an atomic pointer).
type ring struct {
	points []ringPoint // sorted by hash
	ids    []string    // distinct members, for Sequence's bound
}

type ringPoint struct {
	hash uint64
	id   string
}

// ringHash positions a string on the ring: the first 8 bytes of its
// SHA-256. The cache keys being routed are themselves SHA-256 hex, but
// re-hashing keeps vnode labels and keys in one uniform point space.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds a ring with vnodes points per id. An empty id list
// yields an empty ring (Owner and Sequence return nothing).
func newRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &ring{
		points: make([]ringPoint, 0, len(ids)*vnodes),
		ids:    append([]string(nil), ids...),
	}
	for _, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(id + "#" + strconv.Itoa(v)),
				id:   id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on id so the ring is deterministic even in the
		// astronomically unlikely event of a 64-bit collision.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// owner returns the backend owning key: the first point clockwise from
// the key's position. "" on an empty ring.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// sequence returns up to n distinct backends for key in ring order:
// the owner first, then the successors a retry should walk. Walking in
// ring order (instead of picking randomly) keeps retries deterministic
// and sends a rerouted key to the backend that will own it if the
// failure becomes a membership change — so the re-analysis warms the
// right cache.
func (r *ring) sequence(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.ids) {
		n = len(r.ids)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}
