// Distributed-tracing tests: a request through the gateway must leave
// one coherent trace whose gateway-side attempt spans parent the
// replica-side phase spans, across real process boundaries (httptest
// servers speaking the actual wire contract, including the propagation
// header).
package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"localalias/internal/client"
	"localalias/internal/gateway"
	"localalias/internal/obs"
	"localalias/internal/service"
)

// fragmentsFor collects the trace's fragments from the gateway and
// every replica that holds one.
func fragmentsFor(t *testing.T, g *gateway.Gateway, reps []*replica, id string) (*obs.TraceExport, []*obs.TraceExport) {
	t.Helper()
	gt := g.Traces().Get(id)
	if gt == nil {
		t.Fatalf("gateway ring has no trace %s", id)
	}
	var repFrags []*obs.TraceExport
	for _, rep := range reps {
		if rt := rep.srv.Traces().Get(id); rt != nil {
			repFrags = append(repFrags, rt.Export("replica"))
		}
	}
	return gt.Export("gateway"), repFrags
}

// spanByName returns the first span with the given name, or nil.
func spanByName(ex *obs.TraceExport, name string) *obs.SpanExport {
	for i := range ex.Spans {
		if ex.Spans[i].Name == name {
			return &ex.Spans[i]
		}
	}
	return nil
}

// TestGatewayDistributedTraceAssembly: one request through a
// two-replica fleet yields a gateway fragment and a replica fragment
// under the same trace ID, with the replica's root span parented under
// the gateway's attempt span — and the merged Chrome trace carries
// both processes with the cross-process link intact.
func TestGatewayDistributedTraceAssembly(t *testing.T) {
	g, c, reps := newCluster(t, 2, gateway.Options{})
	req := service.AnalyzeRequest{
		Module: "traced.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck},
	}
	_, meta, err := c.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	if meta.TraceID == "" {
		t.Fatal("response carries no X-Lna-Trace ID")
	}

	gwFrag, repFrags := fragmentsFor(t, g, reps, meta.TraceID)
	if len(repFrags) != 1 {
		t.Fatalf("want the trace on exactly 1 replica, found it on %d", len(repFrags))
	}
	repFrag := repFrags[0]
	if gwFrag.TraceID != meta.TraceID || repFrag.TraceID != meta.TraceID {
		t.Fatalf("fragments disagree on trace ID: gateway %s, replica %s, header %s",
			gwFrag.TraceID, repFrag.TraceID, meta.TraceID)
	}

	relay := spanByName(gwFrag, "relay")
	if relay == nil {
		t.Fatalf("gateway fragment has no relay span: %+v", gwFrag.Spans)
	}
	attempt := spanByName(gwFrag, "attempt")
	if attempt == nil {
		t.Fatalf("gateway fragment has no attempt span: %+v", gwFrag.Spans)
	}
	if attempt.Parent != relay.ID {
		t.Fatalf("attempt span parents under %q, want the relay span %q", attempt.Parent, relay.ID)
	}
	if spanByName(gwFrag, "admission") == nil || spanByName(gwFrag, "route") == nil {
		t.Fatalf("gateway fragment missing admission/route spans: %+v", gwFrag.Spans)
	}

	// The cross-process link: the replica's request-level span must
	// name the gateway's attempt span as its parent — that parent ID
	// exists nowhere in the replica's process except via the header.
	analyze := spanByName(repFrag, "analyze")
	if analyze == nil {
		t.Fatalf("replica fragment has no analyze span: %+v", repFrag.Spans)
	}
	if analyze.Parent != attempt.ID {
		t.Fatalf("replica analyze span parents under %q, want the gateway attempt span %q",
			analyze.Parent, attempt.ID)
	}

	// Merge and check the Chrome view: two named processes, and the
	// replica's analyze event still points at the gateway's attempt.
	var buf bytes.Buffer
	if err := obs.WriteChromeExports(&buf, gwFrag, repFrag); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	procNames := map[string]bool{}
	var analyzeParent string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.Args["name"].(string)] = true
		}
		if ev.Ph == "X" {
			pids[ev.Pid] = true
			if ev.Name == "analyze" {
				analyzeParent, _ = ev.Args["parent_id"].(string)
			}
		}
	}
	if len(pids) != 2 {
		t.Fatalf("merged trace spans %d pids, want 2", len(pids))
	}
	if !procNames["gateway"] || !procNames["replica"] {
		t.Fatalf("merged trace process names = %v, want gateway and replica", procNames)
	}
	if analyzeParent != attempt.ID {
		t.Fatalf("merged analyze event parent_id = %q, want gateway attempt %q", analyzeParent, attempt.ID)
	}
}

// TestGatewayHedgedTraceCanceledLoser: when the owner stalls and the
// hedge wins, the gateway's trace shows the race — a hedge_race span
// whose winner is the successor, a winning attempt, and the loser's
// attempt closed with outcome "canceled".
func TestGatewayHedgedTraceCanceledLoser(t *testing.T) {
	g, c, reps := newCluster(t, 2, gateway.Options{
		HedgeAfter: 20 * time.Millisecond,
		Retries:    1,
	})
	// Find a module owned by replica 0, then stall that replica so the
	// hedge (replica 1) wins the race.
	req := findOwnedModule(t, c, reps[0].ts.URL, true)
	reps[0].wrap.delayNs.Store(int64(500 * time.Millisecond))
	res, meta, err := c.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if meta.Backend != reps[1].ts.URL {
		t.Fatalf("hedge should have won on %s, served by %s", reps[1].ts.URL, meta.Backend)
	}

	gt := g.Traces().Get(meta.TraceID)
	if gt == nil {
		t.Fatalf("gateway ring has no trace %s", meta.TraceID)
	}
	// The loser's attempt span closes asynchronously (its round trip
	// aborts on the race cancellation); poll briefly for it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		frag := gt.Export("gateway")
		var race, winner, loser *obs.SpanExport
		for i := range frag.Spans {
			s := &frag.Spans[i]
			switch s.Name {
			case "hedge_race":
				race = s
			case "attempt":
				for j := 0; j+1 < len(s.Args); j += 2 {
					if s.Args[j] == "outcome" {
						switch s.Args[j+1] {
						case "ok":
							winner = s
						case "canceled":
							loser = s
						}
					}
				}
			}
		}
		if race != nil && winner != nil && loser != nil {
			if winner.Parent != race.ID || loser.Parent != race.ID {
				t.Fatalf("attempts parent under %q/%q, want the hedge_race span %q",
					winner.Parent, loser.Parent, race.ID)
			}
			wantWinner := false
			for j := 0; j+1 < len(race.Args); j += 2 {
				if race.Args[j] == "role" && race.Args[j+1] == "hedge" {
					wantWinner = true
				}
			}
			if !wantWinner {
				t.Fatalf("hedge_race span does not credit the hedge: %v", race.Args)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no complete hedge race in trace after 2s: race=%v winner=%v loser=%v spans=%+v",
				race != nil, winner != nil, loser != nil, gt.Export("gateway").Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayFleetEndpoint: /v1/fleet aggregates the gateway's own
// stats with every replica's /v1/stats.
func TestGatewayFleetEndpoint(t *testing.T) {
	_, c, reps := newCluster(t, 2, gateway.Options{})
	req := service.AnalyzeRequest{
		Module: "fleet.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck},
	}
	if _, _, err := c.AnalyzeRaw(context.Background(), &req); err != nil {
		t.Fatal(err)
	}
	res, err := c.GetRaw(context.Background(), "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("/v1/fleet answered %d: %s", res.Status, res.Body)
	}
	var fs gateway.FleetStatus
	if err := json.Unmarshal(res.Body, &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Gateway.Requests != 1 {
		t.Fatalf("fleet gateway requests = %d, want 1", fs.Gateway.Requests)
	}
	if len(fs.Replicas) != len(reps) {
		t.Fatalf("fleet lists %d replicas, want %d", len(fs.Replicas), len(reps))
	}
	served := uint64(0)
	for _, rep := range fs.Replicas {
		if !rep.Healthy {
			t.Fatalf("replica %s reported unhealthy: %s", rep.URL, rep.LastError)
		}
		if rep.Stats == nil {
			t.Fatalf("replica %s carries no stats (error %q)", rep.URL, rep.StatsError)
		}
		served += rep.Stats.Requests
	}
	if served != 1 {
		t.Fatalf("replicas served %d requests in total, want 1", served)
	}
}

// TestGatewayTraceEndpoint: the gateway serves its fragment over
// /v1/trace/{id}, 404s unknown IDs with the not_found code, and the
// replica serves its half under the same ID.
func TestGatewayTraceEndpoint(t *testing.T) {
	_, c, reps := newCluster(t, 2, gateway.Options{})
	req := service.AnalyzeRequest{
		Module: "traced2.mc", Source: checkSrc,
		Options: service.AnalyzeOptions{Mode: service.ModeCheck},
	}
	_, meta, err := c.AnalyzeRaw(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := c.Trace(context.Background(), meta.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if frag.Process != "gateway" || frag.TraceID != meta.TraceID {
		t.Fatalf("gateway fragment = process %q trace %q, want gateway/%s",
			frag.Process, frag.TraceID, meta.TraceID)
	}
	found := false
	for _, rep := range reps {
		rc := client.New(rep.ts.URL, client.Options{})
		rf, err := rc.Trace(context.Background(), meta.TraceID)
		if err != nil {
			if isNotFoundErr(err) {
				continue
			}
			t.Fatal(err)
		}
		if rf.Process != "replica" {
			t.Fatalf("replica fragment process = %q, want replica", rf.Process)
		}
		found = true
	}
	if !found {
		t.Fatal("no replica serves the trace fragment")
	}
	if _, err := c.Trace(context.Background(), "0123456789abcdef"); !isNotFoundErr(err) {
		t.Fatalf("unknown trace ID should yield not_found, got %v", err)
	}
}

func isNotFoundErr(err error) bool {
	apiErr, ok := err.(*client.APIError)
	return ok && apiErr.Err != nil && apiErr.Err.Code == service.CodeNotFound
}
