package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"localalias/internal/client"
	"localalias/internal/obs"
	"localalias/internal/service"
)

// Gateway defaults.
const (
	// DefaultMaxInflight bounds concurrently-admitted single-module
	// requests across the gateway; one more and it answers 429, the
	// same backpressure contract the daemon applies at its own queue.
	DefaultMaxInflight = 256
	// DefaultRetries is how many additional backends a failed request
	// walks along the ring (so a request touches at most 1+DefaultRetries
	// replicas).
	DefaultRetries = 2
	// DefaultRequestTimeout bounds one forwarded request, mirroring the
	// daemon's analysis deadline.
	DefaultRequestTimeout = 2 * time.Minute
	// maxRequestBytes mirrors the daemon's request-body bound.
	maxRequestBytes = 64 << 20
)

// Options configures a Gateway.
type Options struct {
	// Backends are the replica base URLs (e.g. "http://127.0.0.1:8347").
	// At least one is required.
	Backends []string
	// Vnodes is the virtual-node count per backend on the hash ring
	// (0 = DefaultVnodes).
	Vnodes int
	// HealthInterval is the period between health sweeps
	// (0 = DefaultHealthInterval).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (0 = DefaultHealthTimeout).
	HealthTimeout time.Duration
	// MaxInflight bounds admitted single-module requests
	// (0 = DefaultMaxInflight).
	MaxInflight int
	// Retries is how many ring successors a failed request tries after
	// its owner (0 = DefaultRetries; negative = no retries).
	Retries int
	// HedgeAfter, when positive, starts a duplicate request on the
	// key's next ring successor if the owner has not answered within
	// this long; the first response wins and the loser is cancelled.
	// Hedging is safe because analysis is pure — a duplicate can only
	// warm a second cache, never double an effect. 0 disables it.
	HedgeAfter time.Duration
	// RequestTimeout bounds one forwarded request
	// (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// AccessLog, when non-nil, receives one line per proxied request.
	AccessLog io.Writer
	// LogFormat selects the access-log rendering (service.LogText or
	// service.LogJSON; "" = text).
	LogFormat string
	// TraceEntries sizes the ring of recently-completed request traces
	// kept for /v1/trace/{id} (0 = service.DefaultTraceEntries;
	// negative disables tracing entirely — the benchmark's "off" arm).
	TraceEntries int
}

func (o Options) withDefaults() Options {
	if o.Vnodes <= 0 {
		o.Vnodes = DefaultVnodes
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = DefaultHealthInterval
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = DefaultHealthTimeout
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = DefaultMaxInflight
	}
	if o.Retries == 0 {
		o.Retries = DefaultRetries
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.TraceEntries == 0 {
		o.TraceEntries = service.DefaultTraceEntries
	}
	return o
}

// Gateway fronts a pool of analysis daemons: it routes each request by
// its content-hash cache key so identical submissions always reach the
// same replica (cache and memo affinity), reroutes along the ring when
// a backend fails, optionally hedges slow requests, and applies
// bounded admission before any backend is touched.
type Gateway struct {
	opts     Options
	pool     *pool
	inflight chan struct{}

	// log and traces mirror the daemon's observability surface: one
	// access line per proxied request, and a bounded ring of completed
	// request traces behind /v1/trace/{id}. traces is nil when
	// Options.TraceEntries is negative (tracing off).
	log    *service.AccessLogger
	traces *obs.TraceRing

	requests atomic.Uint64 // single-module requests admitted
	batches  atomic.Uint64 // batch requests admitted
	rejected atomic.Uint64 // 429s + 503s answered locally
	retries  atomic.Uint64 // rerouted attempts after a backend failure
	hedges   atomic.Uint64 // hedge requests launched
	hedgeWon atomic.Uint64 // hedges that beat the owner

	mRequests  *obs.Counter
	mRejected  *obs.Counter
	mRetries   *obs.Counter
	mHedges    *obs.Counter
	mHedgeWins *obs.Counter
	mHedgeLoss *obs.Counter
}

// New builds a Gateway over opts.Backends. The health sweep starts
// with ListenAndServe (or Start, for embedded use).
func New(opts Options) (*Gateway, error) {
	o := opts.withDefaults()
	if len(o.Backends) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	g := &Gateway{
		opts:     o,
		pool:     newPool(o.Backends, o.Vnodes, o.HealthInterval, o.HealthTimeout),
		inflight: make(chan struct{}, o.MaxInflight),
		log:      service.NewAccessLogger(o.AccessLog, o.LogFormat),
		traces:   obs.NewTraceRing(o.TraceEntries),
	}
	reg := obs.Default()
	g.mRequests = reg.Counter("lna_gateway_requests_total",
		"Requests admitted by the gateway (single-module and batch).")
	g.mRejected = reg.Counter("lna_gateway_rejected_total",
		"Requests the gateway refused locally (admission, no healthy backend).")
	g.mRetries = reg.Counter("lna_gateway_retries_total",
		"Forward attempts rerouted to a ring successor after a backend failure.")
	g.mHedges = reg.Counter("lna_gateway_hedges_total",
		"Hedge requests launched against a key's ring successor.")
	g.mHedgeWins = reg.Counter("lna_gateway_hedge_wins_total",
		"Hedge races the successor's duplicate won.")
	g.mHedgeLoss = reg.Counter("lna_gateway_hedge_losses_total",
		"Hedge races the owner won anyway (the duplicate was wasted).")
	reg.GaugeFunc("lna_gateway_backends_healthy",
		"Backends currently in the gateway's hash ring.",
		func() int64 { return int64(g.pool.healthyCount()) })
	reg.GaugeFunc("lna_gateway_ring_size",
		"Virtual-node points on the current hash ring.",
		func() int64 { return int64(g.pool.ringSize()) })
	for _, b := range g.pool.backends {
		b := b
		reg.GaugeFunc("lna_gateway_backend_healthy",
			"Per-backend ring membership (1 = in the ring, 0 = out).",
			func() int64 {
				if b.Healthy() {
					return 1
				}
				return 0
			}, "backend", b.URL)
	}
	// Health sweeps that change the ring leave a trace of their own, so
	// an operator can see which probe flipped a backend and how long
	// the sweep took. Unchanged sweeps (the steady state, one every
	// HealthInterval) would only evict real request traces from the
	// ring, so they are not kept.
	g.pool.onSweep = func(start time.Time, dur time.Duration, probes []sweepProbe, changed bool) {
		if !changed || g.traces == nil {
			return
		}
		tr := obs.NewTrace("health-sweep")
		tr.Add("health_sweep", "gateway", start, dur,
			"probes", strconv.Itoa(len(probes)), "changed", "true")
		for _, p := range probes {
			kv := []string{"backend", p.url, "healthy", strconv.FormatBool(p.healthy)}
			if p.detail != "" {
				kv = append(kv, "detail", p.detail)
			}
			tr.Add("probe", "health", p.start, p.dur, kv...)
		}
		g.traces.Put(tr)
	}
	return g, nil
}

// newTrace starts a request trace under a propagated context, or
// returns nil (every span call no-ops) when tracing is disabled.
func (g *Gateway) newTrace(module string, sc obs.SpanContext) *obs.Trace {
	if g.traces == nil {
		return nil
	}
	return obs.NewTraceContext(module, sc)
}

// Traces exposes the gateway's trace ring (nil when tracing is off)
// for embedded use and tests.
func (g *Gateway) Traces() *obs.TraceRing { return g.traces }

// Start launches the periodic health sweep (ListenAndServe does this
// for the CLI; embedded users — tests, the bench harness — call it
// directly) and returns g.
func (g *Gateway) Start() *Gateway {
	g.pool.start()
	return g
}

// Shutdown stops the health sweep.
func (g *Gateway) Shutdown() { g.pool.shutdown() }

// Retries reports the per-request reroute budget after option
// normalization (for startup banners and introspection).
func (g *Gateway) Retries() int { return g.opts.Retries }

// MaxInflight reports the admission-control cap after normalization.
func (g *Gateway) MaxInflight() int { return g.opts.MaxInflight }

// CheckNow forces one health sweep (see pool.CheckNow).
func (g *Gateway) CheckNow(ctx context.Context) { g.pool.CheckNow(ctx) }

// BackendStates snapshots the pool for health payloads and tests.
func (g *Gateway) BackendStates() []BackendState { return g.pool.states() }

// Handler returns the gateway's HTTP handler. The endpoint set and
// wire shapes mirror the daemon's exactly — a client cannot tell a
// gateway from a single replica except by the X-Lna-Backend header.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", g.handleAnalyze)
	mux.HandleFunc("/v1/batch", g.handleBatch)
	mux.HandleFunc("/v1/health", g.handleHealth)
	mux.HandleFunc("/v1/stats", g.handleStats)
	mux.HandleFunc("/v1/metrics", g.handleMetrics)
	mux.HandleFunc("/v1/trace/", g.handleTrace)
	mux.HandleFunc("/v1/fleet", g.handleFleet)
	return mux
}

// statusRecorder captures the status a handler wrote, for the access
// log (the service package keeps its equivalent unexported).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusRecorder) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// readBody reads and bounds one POST body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		service.WriteWireError(w, service.CodeMethodNotAllowed, "use POST")
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		service.WriteWireError(w, service.CodeBadRequest, "reading request body: %v", err)
		return nil, false
	}
	return body, true
}

// fwdResult is one attempt's outcome.
type fwdResult struct {
	res *client.Result
	b   *Backend
	err error
}

// done reports whether the attempt produced an answer worth relaying:
// any HTTP response except the retryable statuses (429/502/503/504).
func (f fwdResult) done() bool {
	if f.err != nil {
		return false
	}
	switch f.res.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return false
	}
	return true
}

// attemptOutcome classifies one forward attempt for the
// lna_gateway_attempts_total{backend,outcome} metric and the attempt
// span: ok, error (a relayable non-2xx), retryable (429/502/503/504),
// transport, or canceled (a hedge loser or a departed client).
func attemptOutcome(f fwdResult, ctxErr error) string {
	switch {
	case f.err != nil && ctxErr != nil:
		return "canceled"
	case f.err != nil:
		return "transport"
	case !f.done():
		return "retryable"
	case f.res.Status >= 400:
		return "error"
	}
	return "ok"
}

// tryOne forwards body to one backend with the per-request timeout.
// Transport failures mark the backend unhealthy immediately — unless
// the context was cancelled (a hedge loser or a departed client says
// nothing about backend health).
//
// Each attempt gets its own span, opened with an explicit parent
// because hedged attempts run concurrently. The attempt span's ID is
// what the context carries into RoundTrip, so the propagation header
// names it — the replica's whole trace fragment hangs off exactly the
// attempt that produced it, and a hedge loser's fragment stays
// distinguishable from the winner's.
func (g *Gateway) tryOne(ctx context.Context, path string, body []byte, b *Backend) fwdResult {
	reqCtx, cancel := context.WithTimeout(ctx, g.opts.RequestTimeout)
	defer cancel()
	tr, parent := obs.SpanFromContext(ctx)
	att := tr.StartChild(parent, "attempt", "gateway")
	reqCtx = obs.ContextWithSpan(reqCtx, tr, att.ID())
	res, err := b.client.RoundTrip(reqCtx, path, body)
	f := fwdResult{res: res, b: b, err: err}
	out := attemptOutcome(f, ctx.Err())
	obs.Default().Counter("lna_gateway_attempts_total",
		"Forward attempts by backend and outcome (ok|error|retryable|transport|canceled).",
		"backend", b.URL, "outcome", out).Inc()
	if err != nil {
		if ctx.Err() == nil {
			g.pool.markUnhealthy(b, fmt.Sprintf("forward failed: %v", err))
		}
		att.End("backend", b.URL, "outcome", out)
		return fwdResult{b: b, err: err}
	}
	if res.Status == http.StatusServiceUnavailable {
		// Draining (or otherwise refusing) replica: take it out of the
		// ring now; the sweep re-admits it when it reports ok again.
		g.pool.markUnhealthy(b, fmt.Sprintf("backend answered %d", res.Status))
	}
	b.forwarded.Add(1)
	att.End("backend", b.URL, "outcome", out, "status", strconv.Itoa(res.Status))
	return f
}

// forward routes body along candidates until an attempt produces a
// relayable answer, hedging the first attempt when configured. It
// returns the winning result, the serving backend, and the number of
// attempts spent; err is non-nil only when every candidate failed at
// the transport level.
func (g *Gateway) forward(ctx context.Context, path string, body []byte, candidates []*Backend) (*client.Result, *Backend, int, error) {
	tr, parent := obs.SpanFromContext(ctx)
	attempts := 0
	next := 0 // index of the next unused candidate

	// Hedged first attempt: race the owner against the first successor
	// if the owner is slow. Any losing attempt is cancelled.
	if g.opts.HedgeAfter > 0 && len(candidates) >= 2 {
		// The race gets a span of its own; both attempts parent under
		// it, so the merged trace shows the overlap and which racer won
		// (the loser's attempt closes with outcome "canceled").
		race := tr.StartChild(parent, "hedge_race", "gateway")
		raceCtx, cancelRace := context.WithCancel(obs.ContextWithSpan(ctx, tr, race.ID()))
		defer cancelRace()
		ch := make(chan fwdResult, 2)
		launch := func(b *Backend) {
			attempts++
			go func() { ch <- g.tryOne(raceCtx, path, body, b) }()
		}
		launch(candidates[0])
		next = 1
		inFlight := 1
		timer := time.NewTimer(g.opts.HedgeAfter)
		defer timer.Stop()
		hedged := false
		var last fwdResult
		for inFlight > 0 {
			select {
			case <-timer.C:
				if !hedged {
					hedged = true
					g.hedges.Add(1)
					g.mHedges.Inc()
					launch(candidates[1])
					next = 2
					inFlight++
				}
			case f := <-ch:
				inFlight--
				if f.done() {
					cancelRace() // the loser's attempt is moot
					winner := "owner"
					if hedged {
						if f.b == candidates[1] {
							g.hedgeWon.Add(1)
							g.mHedgeWins.Inc()
							winner = "hedge"
						} else {
							g.mHedgeLoss.Inc()
						}
					}
					race.End("winner", f.b.URL, "role", winner,
						"hedged", strconv.FormatBool(hedged))
					return f.res, f.b, attempts, nil
				}
				last = f
			case <-ctx.Done():
				race.End("outcome", "canceled")
				return nil, nil, attempts, ctx.Err()
			}
		}
		// Both racers failed; fall through to the sequential walk over
		// the remaining candidates.
		race.End("outcome", "exhausted", "hedged", strconv.FormatBool(hedged))
		_ = last
	}

	// The retry walk opens lazily: only once a reroute actually happens
	// is there a walk worth a span, and the rerouted attempts parent
	// under it.
	var walk *obs.SpanScope
	walkCtx := ctx
	defer func() {
		if walk != nil {
			walk.End("attempts", strconv.Itoa(attempts))
		}
	}()
	var lastErr error = errors.New("no candidate backends")
	var lastRes *client.Result
	var lastB *Backend
	for ; next < len(candidates); next++ {
		if attempts > 0 {
			g.retries.Add(1)
			g.mRetries.Inc()
			if walk == nil && tr != nil {
				walk = tr.StartChild(parent, "retry_walk", "gateway")
				walkCtx = obs.ContextWithSpan(ctx, tr, walk.ID())
			}
		}
		attempts++
		f := g.tryOne(walkCtx, path, body, candidates[next])
		if f.done() {
			return f.res, f.b, attempts, nil
		}
		if f.err != nil {
			lastErr = f.err
		} else {
			lastRes, lastB = f.res, f.b
		}
		if ctx.Err() != nil {
			return nil, nil, attempts, ctx.Err()
		}
	}
	if lastRes != nil {
		// Every candidate answered, all retryably (e.g. queue-full
		// across the pool): relay the last answer rather than invent
		// one — its Retry-After is the backend's own advice.
		return lastRes, lastB, attempts, nil
	}
	return nil, nil, attempts, lastErr
}

// relay writes a backend's response through to the client verbatim,
// stamping the gateway's routing headers on top.
func relay(w http.ResponseWriter, res *client.Result, b *Backend, attempts int) {
	for _, h := range []string{
		"Content-Type", "Retry-After",
		"X-Lna-Cache", "X-Lna-Cache-Key", "X-Lna-Trace",
		"X-Lna-Incremental", "X-Lna-Xmodule", "X-Lna-Phases",
	} {
		if v := res.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Lna-Backend", b.URL)
	w.Header().Set("X-Lna-Attempts", strconv.Itoa(attempts))
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
}

func (g *Gateway) handleAnalyze(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &statusRecorder{ResponseWriter: rw}
	entry := service.AccessEntry{Time: start, Method: r.Method, Path: r.URL.Path}
	defer func() {
		entry.Status = w.Status()
		entry.DurMs = float64(time.Since(start)) / float64(time.Millisecond)
		g.log.Log(entry)
	}()
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req service.AnalyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		service.WriteWireError(w, service.CodeBadRequest, "bad request body: %v", err)
		return
	}
	// Validate at the edge: a malformed request must not cost a backend
	// round trip (or an admission slot).
	if werr := service.ValidateRequest(&req); werr != nil {
		service.WriteWireError(w, werr.Code, "%s", werr.Message)
		return
	}
	entry.Module, entry.Mode = req.Module, req.Options.Mode

	// The gateway's trace adopts a caller-propagated context the same
	// way a replica adopts the gateway's, so a client that stamps
	// X-Lna-Trace-Context sees one trace end to end. The root relay
	// span's ID rides the forwarding context: every attempt parents
	// under it, and RoundTrip re-stamps the header per attempt.
	sc, _ := obs.ParseTraceContext(r.Header.Get(obs.TraceContextHeader))
	tr := g.newTrace(req.Module, sc)
	entry.Trace = tr.ID()
	span := tr.StartSpan("relay", "request")
	defer func() {
		span.End("module", req.Module, "status", strconv.Itoa(w.Status()))
		g.traces.Put(tr)
	}()

	admit := tr.Start("admission", "gateway")
	select {
	case g.inflight <- struct{}{}:
		admit("outcome", "admitted")
		defer func() { <-g.inflight }()
	default:
		admit("outcome", "rejected")
		g.rejected.Add(1)
		g.mRejected.Inc()
		w.Header().Set("Retry-After", "1")
		service.WriteWireError(w, service.CodeQueueFull,
			"gateway admission queue is full (%d in flight)", g.opts.MaxInflight)
		return
	}
	g.requests.Add(1)
	g.mRequests.Inc()

	// Route by the same content-hash key the backends cache under —
	// the whole point of the tier: one key, one replica, one warm cache.
	route := tr.Start("route", "gateway")
	key := service.CacheKey(&req)
	candidates := g.pool.candidates(key, 1+g.opts.Retries)
	route("key", key, "candidates", strconv.Itoa(len(candidates)))
	if len(candidates) == 0 {
		g.rejected.Add(1)
		g.mRejected.Inc()
		service.WriteWireError(w, service.CodeBackendUnavailable, "no healthy backends")
		return
	}
	// The original body bytes are forwarded verbatim: the gateway never
	// re-encodes a request, so backend-side validation, hashing, and
	// caching see exactly what the client sent.
	ctx := obs.ContextWithSpan(r.Context(), tr, span.ID())
	res, b, attempts, err := g.forward(ctx, "/v1/analyze", body, candidates)
	if err != nil {
		g.rejected.Add(1)
		g.mRejected.Inc()
		service.WriteWireError(w, service.CodeBackendUnavailable,
			"all %d candidate backend(s) failed: %v", len(candidates), err)
		return
	}
	relay(w, res, b, attempts)
	entry.Cache = w.Header().Get("X-Lna-Cache")
	entry.Incremental = w.Header().Get("X-Lna-Incremental")
	entry.Xmodule = w.Header().Get("X-Lna-Xmodule")
	entry.Backend = b.URL
	entry.Attempts = attempts
}

// batchGroup is one backend's share of a batch: the indices (into the
// original request list) it owns this round.
type batchGroup struct {
	b   *Backend
	idx []int
}

func (g *Gateway) handleBatch(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w := &statusRecorder{ResponseWriter: rw}
	entry := service.AccessEntry{Time: start, Method: r.Method, Path: r.URL.Path}
	defer func() {
		entry.Status = w.Status()
		entry.DurMs = float64(time.Since(start)) / float64(time.Millisecond)
		g.log.Log(entry)
	}()
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var batch service.BatchRequest
	if err := json.Unmarshal(body, &batch); err != nil {
		service.WriteWireError(w, service.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if len(batch.Requests) == 0 {
		service.WriteWireError(w, service.CodeBadRequest, "empty batch")
		return
	}
	if len(batch.Requests) > service.MaxBatch {
		service.WriteWireError(w, service.CodeBadRequest,
			"batch of %d exceeds the %d-module limit", len(batch.Requests), service.MaxBatch)
		return
	}
	g.batches.Add(1)
	g.mRequests.Inc()

	// One gateway-side trace per batch; the per-group forward attempts
	// run concurrently, so they parent under the relay span explicitly
	// via the context rather than the default-parent stack.
	sc, _ := obs.ParseTraceContext(r.Header.Get(obs.TraceContextHeader))
	tr := g.newTrace("batch", sc)
	entry.Trace = tr.ID()
	span := tr.StartSpan("relay", "request")
	defer func() {
		span.End("modules", strconv.Itoa(len(batch.Requests)))
		g.traces.Put(tr)
	}()
	ctx := obs.ContextWithSpan(r.Context(), tr, span.ID())

	out := service.BatchResponse{Results: make([]service.BatchEntry, len(batch.Requests))}
	// Edge admission, mirroring the daemon: inadmissible entries get
	// their per-entry error here and are never forwarded.
	pending := make([]int, 0, len(batch.Requests))
	for i := range batch.Requests {
		if werr := service.ValidateRequest(&batch.Requests[i]); werr != nil {
			out.Results[i].Error = werr
			out.Summary.Rejected++
			continue
		}
		pending = append(pending, i)
	}

	// Split by owning backend, forward sub-batches concurrently, and
	// reroute a failed group's indices across the (now smaller) ring —
	// up to Retries extra rounds, so a backend dying mid-batch costs
	// its group one reroute, not the whole batch.
	var mu sync.Mutex // guards out + summary merges
	for round := 0; round <= g.opts.Retries && len(pending) > 0; round++ {
		groups := make(map[*Backend]*batchGroup)
		unroutable := pending[:0:0]
		for _, i := range pending {
			key := service.CacheKey(&batch.Requests[i])
			cands := g.pool.candidates(key, 1)
			if len(cands) == 0 {
				unroutable = append(unroutable, i)
				continue
			}
			grp := groups[cands[0]]
			if grp == nil {
				grp = &batchGroup{b: cands[0]}
				groups[cands[0]] = grp
			}
			grp.idx = append(grp.idx, i)
		}
		var (
			wg      sync.WaitGroup
			retryMu sync.Mutex
			retry   []int
		)
		for _, grp := range groups {
			wg.Add(1)
			go func(grp *batchGroup) {
				defer wg.Done()
				sub := service.BatchRequest{Requests: make([]service.AnalyzeRequest, len(grp.idx))}
				for j, i := range grp.idx {
					sub.Requests[j] = batch.Requests[i]
				}
				subBody, err := json.Marshal(sub)
				if err == nil {
					f := g.tryOne(ctx, "/v1/batch", subBody, grp.b)
					if f.done() && f.res.Status == http.StatusOK {
						var subOut service.BatchResponse
						if jerr := json.Unmarshal(f.res.Body, &subOut); jerr == nil && len(subOut.Results) == len(grp.idx) {
							mu.Lock()
							for j, i := range grp.idx {
								out.Results[i] = subOut.Results[j]
							}
							out.Summary.CacheHits += subOut.Summary.CacheHits
							out.Summary.CacheMisses += subOut.Summary.CacheMisses
							out.Summary.Failures += subOut.Summary.Failures
							out.Summary.Findings += subOut.Summary.Findings
							out.Summary.Rejected += subOut.Summary.Rejected
							mu.Unlock()
							return
						}
					}
				}
				// Transport failure, retryable status, or an undecodable
				// answer: this group goes back in the pot. tryOne already
				// removed a dead backend from the ring, so the next round
				// re-owns these keys on the survivors.
				g.retries.Add(1)
				g.mRetries.Inc()
				retryMu.Lock()
				retry = append(retry, grp.idx...)
				retryMu.Unlock()
			}(grp)
		}
		wg.Wait()
		pending = append(unroutable, retry...)
		if r.Context().Err() != nil {
			return // client went away mid-batch
		}
	}
	// Whatever is still pending has no serving backend: per-entry
	// errors, never a dropped batch.
	for _, i := range pending {
		out.Results[i].Error = &service.WireError{
			Code:    service.CodeBackendUnavailable,
			Message: "no backend could serve this entry",
		}
		out.Summary.Rejected++
	}
	out.Summary.Modules = len(batch.Requests)
	entry.Modules = out.Summary.Modules
	entry.Hits = out.Summary.CacheHits
	entry.Misses = out.Summary.CacheMisses

	w.Header().Set("Content-Type", "application/json")
	dispositions := make([]string, len(out.Results))
	for i, res := range out.Results {
		switch {
		case res.Error != nil:
			dispositions[i] = "error"
		case res.Cached:
			dispositions[i] = "hit"
		default:
			dispositions[i] = "miss"
		}
	}
	w.Header().Set("X-Lna-Cache", strings.Join(dispositions, ","))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// GatewayHealth is the gateway's /v1/health payload: its own status
// plus the per-backend states.
type GatewayHealth struct {
	Status     string         `json:"status"` // "ok" while >= 1 backend is healthy
	APIVersion string         `json:"api_version"`
	Backends   []BackendState `json:"backends"`
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if g.pool.healthyCount() == 0 {
		status = "unavailable"
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(GatewayHealth{
		Status:     status,
		APIVersion: service.APIVersion,
		Backends:   g.pool.states(),
	})
}

// GatewayStats is the gateway's /v1/stats payload.
type GatewayStats struct {
	Backends        []BackendState `json:"backends"`
	HealthyBackends int            `json:"healthy_backends"`
	MaxInflight     int            `json:"max_inflight"`
	Requests        uint64         `json:"requests"`
	BatchRequests   uint64         `json:"batch_requests"`
	Rejected        uint64         `json:"rejected"`
	Retries         uint64         `json:"retries"`
	Hedges          uint64         `json:"hedges"`
	HedgeWins       uint64         `json:"hedge_wins"`
}

// Stats snapshots the gateway's counters.
func (g *Gateway) Stats() GatewayStats {
	return GatewayStats{
		Backends:        g.pool.states(),
		HealthyBackends: g.pool.healthyCount(),
		MaxInflight:     g.opts.MaxInflight,
		Requests:        g.requests.Load(),
		BatchRequests:   g.batches.Load(),
		Rejected:        g.rejected.Load(),
		Retries:         g.retries.Load(),
		Hedges:          g.hedges.Load(),
		HedgeWins:       g.hedgeWon.Load(),
	}
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(g.Stats())
}

// handleTrace serves the gateway's fragment of a recorded trace; the
// daemon serves its own under the same route, and the trace fetcher
// merges the two views.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	service.HandleTraceFrom(g.traces, "gateway", w, r)
}

// FleetReplica is one backend's row in the fleet payload: the
// gateway's health view of it, plus the replica's own /v1/stats
// (absent, with StatsError set, when the replica cannot answer).
type FleetReplica struct {
	URL        string               `json:"url"`
	Healthy    bool                 `json:"healthy"`
	LastError  string               `json:"last_error,omitempty"`
	Forwarded  uint64               `json:"forwarded"`
	Stats      *service.ServerStats `json:"stats,omitempty"`
	StatsError string               `json:"stats_error,omitempty"`
}

// FleetStatus is the /v1/fleet payload: the whole tier in one answer —
// the gateway's own counters and every replica's health and stats.
type FleetStatus struct {
	Gateway  GatewayStats   `json:"gateway"`
	Replicas []FleetReplica `json:"replicas"`
}

// fleetStatsTimeout bounds one replica's /v1/stats fetch within a
// fleet snapshot, so one hung replica cannot stall the whole answer.
const fleetStatsTimeout = 2 * time.Second

// Fleet snapshots the tier: gateway counters plus each replica's
// health state and stats, fetched concurrently.
func (g *Gateway) Fleet(ctx context.Context) FleetStatus {
	states := g.pool.states()
	out := FleetStatus{Gateway: g.Stats(), Replicas: make([]FleetReplica, len(states))}
	var wg sync.WaitGroup
	for i, st := range states {
		out.Replicas[i] = FleetReplica{
			URL: st.URL, Healthy: st.Healthy,
			LastError: st.LastError, Forwarded: st.Forwarded,
		}
		b := g.pool.byURL[st.URL]
		if b == nil {
			continue
		}
		wg.Add(1)
		go func(rep *FleetReplica, b *Backend) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, fleetStatsTimeout)
			defer cancel()
			stats, err := b.client.Stats(sctx)
			if err != nil {
				rep.StatsError = err.Error()
				return
			}
			rep.Stats = stats
		}(&out.Replicas[i], b)
	}
	wg.Wait()
	return out
}

func (g *Gateway) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		service.WriteWireError(w, service.CodeMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(g.Fleet(r.Context()))
}

// handleMetrics serves the process-wide registry, exactly like the
// daemon's endpoint (an embedded gateway and daemon share one
// registry; a standalone gateway exposes only its own instruments).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := obs.Default()
	format := r.URL.Query().Get("format")
	if format == "prometheus" ||
		(format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
		return
	}
	if format != "" && format != "json" {
		service.WriteWireError(w, service.CodeBadRequest, "unknown format %q (want json|prometheus)", format)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = reg.WriteJSON(w)
}

// ListenAndServe binds addr (port 0 picks a free port), starts the
// health sweep, reports the bound address through ready (when
// non-nil), and serves until ctx is cancelled, then shuts down
// gracefully like the daemon.
func (g *Gateway) ListenAndServe(ctx context.Context, addr string, ready func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	g.Start()
	defer g.Shutdown()
	hs := &http.Server{Handler: g.Handler()}
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), service.DefaultDrainTimeout)
		defer cancel()
		drained <- hs.Shutdown(shutdownCtx)
	}()
	if ready != nil {
		ready(ln.Addr().String())
	}
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if ctx.Err() != nil {
		return <-drained
	}
	return nil
}
