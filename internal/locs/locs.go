// Package locs manages abstract memory locations (the ρ of the paper).
//
// Every piece of storage the analysis can name — a global cell, the
// elements of an array, a struct field, a cell allocated by new, or
// the fresh location introduced for a restricted/confined binding —
// is assigned an abstract location. The unification-based may-alias
// analysis of the paper (after Steensgaard) merges locations with a
// union-find; names whose types mention the same representative
// location may alias.
//
// Each location carries two pieces of metadata used elsewhere:
//
//   - origins: how many distinct storage origins the representative
//     stands for. A location standing for a single concrete cell
//     ("linear") admits strong updates in the flow-sensitive
//     qualifier analysis; array-element locations and unions of
//     several origins do not.
//   - restricted: whether the location is the fresh ρ' of a restrict
//     or confine binding, which is linear within its scope by
//     construction (the whole point of the constructs).
package locs

import "sync/atomic"

// Store owns all abstract locations of one analysis run.
//
// A Store is not safe for unrestricted concurrent use, but it
// supports the partitioned-solver discipline (see solve): after
// Compress, Find is read-only on any class that is not unified again,
// so goroutines owning disjoint sets of unifiable classes may call
// Find and Unify concurrently as long as no goroutine touches a class
// another may still unify.
type Store struct {
	parent     []Loc
	rank       []int8
	info       []Info
	numUnifies atomic.Int64
	onUnify    []func(winner, loser Loc)
}

// Loc names one abstract location. Use Store.Find to canonicalize
// before comparing.
type Loc int32

// NoLoc is the absent location.
const NoLoc Loc = -1

// Info is per-location metadata. After unification the representative
// holds the merged metadata.
type Info struct {
	// Name is a debugging/diagnostic label, e.g. "locks[]", "dev.l",
	// "new@12:5", "p'".
	Name string
	// Origins counts distinct storage origins merged into this class.
	Origins int
	// Multi marks locations that stand for several concrete cells
	// even with a single origin (array elements).
	Multi bool
	// Restricted marks the fresh ρ' of a restrict/confine binding.
	Restricted bool
}

// NewStore returns an empty location store.
func NewStore() *Store { return &Store{} }

// Len returns the number of locations created (representatives and
// merged members alike).
func (s *Store) Len() int { return len(s.parent) }

// NumUnifies returns how many unifications have been performed; used
// by complexity benchmarks. The counter is atomic so concurrent
// solver workers unifying disjoint classes don't race on it.
func (s *Store) NumUnifies() int { return int(s.numUnifies.Load()) }

// Fresh creates a new location with no storage origin (a type
// placeholder). It becomes meaningful once storage is attached via
// MarkStorage or by unification.
func (s *Store) Fresh(name string) Loc {
	l := Loc(len(s.parent))
	s.parent = append(s.parent, l)
	s.rank = append(s.rank, 0)
	s.info = append(s.info, Info{Name: name})
	return l
}

// FreshStorage creates a location that is itself one storage origin
// (a global cell, a new-site, a struct field).
func (s *Store) FreshStorage(name string) Loc {
	l := s.Fresh(name)
	s.info[l].Origins = 1
	return l
}

// FreshArray creates a location for the elements of an array: one
// origin, but standing for many cells, so never linear.
func (s *Store) FreshArray(name string) Loc {
	l := s.FreshStorage(name)
	s.info[l].Multi = true
	return l
}

// FreshRestricted creates the ρ' of a restrict/confine binding: it
// stands for exactly one cell within its scope.
func (s *Store) FreshRestricted(name string) Loc {
	l := s.FreshStorage(name)
	s.info[l].Restricted = true
	return l
}

// Find returns the representative of l, with path compression.
//
// Find only writes when the chain from l is at least two hops long.
// A chain that long exists only if the class was unified after its
// last compression, so after Compress, Finds on classes that see no
// further unification are pure reads — which is what lets solver
// workers share a store: each worker writes only within classes it
// exclusively owns.
func (s *Store) Find(l Loc) Loc {
	p := s.parent[l]
	if p == l {
		return l
	}
	r := s.parent[p]
	if r == p {
		return p
	}
	// Chain of length ≥ 2: find the root, then point every node on
	// the chain straight at it.
	for s.parent[r] != r {
		r = s.parent[r]
	}
	for l != r {
		l, s.parent[l] = s.parent[l], r
	}
	return r
}

// Compress path-compresses every chain so that each location points
// directly at its representative. Until the next Unify, all Finds are
// then read-only; the partitioned solver runs this once before its
// workers start sharing the store.
func (s *Store) Compress() {
	for l := range s.parent {
		s.Find(Loc(l))
	}
}

// Same reports whether a and b are in the same class.
func (s *Store) Same(a, b Loc) bool { return s.Find(a) == s.Find(b) }

// Rank returns the union-by-rank height of l's class. Unify picks the
// higher-rank representative as the surviving winner, so any consumer
// that wants to predict (or fingerprint) unification outcomes — the
// solver's component-summary memo does — must include the ranks of the
// classes involved.
func (s *Store) Rank(l Loc) int8 { return s.rank[s.Find(l)] }

// Info returns the metadata of l's representative.
func (s *Store) InfoOf(l Loc) Info { return s.info[s.Find(l)] }

// Name returns the diagnostic label of l's class.
func (s *Store) Name(l Loc) string { return s.info[s.Find(l)].Name }

// MarkStorage records an additional storage origin for l's class.
func (s *Store) MarkStorage(l Loc) {
	s.info[s.Find(l)].Origins++
}

// MarkMulti records that l stands for several concrete cells.
func (s *Store) MarkMulti(l Loc) {
	s.info[s.Find(l)].Multi = true
}

// Linear reports whether l's class stands for exactly one concrete
// cell, which is what permits strong updates: at most one storage
// origin and not an array-element class. The fresh ρ' of a successful
// restrict/confine satisfies this by construction (one origin, merged
// with nothing); a failed candidate's ρ' is unified with the outer
// location and correctly inherits its multiplicity.
func (s *Store) Linear(l Loc) bool {
	in := s.info[s.Find(l)]
	return !in.Multi && in.Origins <= 1
}

// OnUnify registers a callback invoked after each union with the
// surviving representative and the absorbed representative. The
// constraint solver uses this to merge graph nodes.
func (s *Store) OnUnify(f func(winner, loser Loc)) {
	s.onUnify = append(s.onUnify, f)
}

// Unify merges the classes of a and b and returns the representative.
// Metadata is combined: origins add, multi or-s, restricted or-s, and
// the name of the higher-origin side wins (ties prefer a's).
func (s *Store) Unify(a, b Loc) Loc {
	return s.UnifyObserved(a, b, nil)
}

// UnifyObserved is Unify with a per-call observer: if the classes
// actually merge, observe (when non-nil) is invoked with the
// surviving and absorbed representatives, after any registered
// OnUnify callbacks. The solver uses this instead of OnUnify so that
// each solve — and under the partitioned solver, each worker —
// observes exactly its own unifications, with no callback left behind
// when the solve ends.
func (s *Store) UnifyObserved(a, b Loc, observe func(winner, loser Loc)) Loc {
	ra, rb := s.Find(a), s.Find(b)
	if ra == rb {
		return ra
	}
	s.numUnifies.Add(1)
	winner, loser := ra, rb
	if s.rank[winner] < s.rank[loser] {
		winner, loser = loser, winner
	}
	if s.rank[winner] == s.rank[loser] {
		s.rank[winner]++
	}
	wi, li := s.info[winner], s.info[loser]
	merged := Info{
		Name:       wi.Name,
		Origins:    wi.Origins + li.Origins,
		Multi:      wi.Multi || li.Multi,
		Restricted: wi.Restricted || li.Restricted,
	}
	if wi.Name == "" || (li.Origins > wi.Origins && li.Name != "") {
		merged.Name = li.Name
	}
	s.parent[loser] = winner
	s.info[winner] = merged
	for _, f := range s.onUnify {
		f(winner, loser)
	}
	if observe != nil {
		observe(winner, loser)
	}
	return winner
}
