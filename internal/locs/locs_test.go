package locs

import "testing"

func TestFreshDistinct(t *testing.T) {
	s := NewStore()
	a := s.Fresh("a")
	b := s.Fresh("b")
	if s.Same(a, b) {
		t.Fatal("fresh locations must be distinct")
	}
	if s.Name(a) != "a" || s.Name(b) != "b" {
		t.Errorf("names: %q %q", s.Name(a), s.Name(b))
	}
}

func TestUnifyBasic(t *testing.T) {
	s := NewStore()
	a := s.Fresh("a")
	b := s.Fresh("b")
	c := s.Fresh("c")
	s.Unify(a, b)
	if !s.Same(a, b) {
		t.Fatal("a and b must be unified")
	}
	if s.Same(a, c) {
		t.Fatal("c must stay separate")
	}
	s.Unify(b, c)
	if !s.Same(a, c) {
		t.Fatal("transitive unification")
	}
	if s.NumUnifies() != 2 {
		t.Errorf("NumUnifies = %d, want 2", s.NumUnifies())
	}
}

func TestUnifyIdempotent(t *testing.T) {
	s := NewStore()
	a := s.Fresh("a")
	b := s.Fresh("b")
	s.Unify(a, b)
	n := s.NumUnifies()
	s.Unify(a, b)
	if s.NumUnifies() != n {
		t.Error("unifying an already-unified pair must be a no-op")
	}
}

func TestLinearity(t *testing.T) {
	s := NewStore()
	g := s.FreshStorage("g") // one global cell
	if !s.Linear(g) {
		t.Error("single-origin storage is linear")
	}
	arr := s.FreshArray("locks[]")
	if s.Linear(arr) {
		t.Error("array elements are never linear")
	}
	placeholder := s.Fresh("t")
	if !s.Linear(placeholder) {
		t.Error("origin-free placeholder is (vacuously) linear")
	}

	// Two storage origins merged: not linear.
	a := s.FreshStorage("a")
	b := s.FreshStorage("b")
	s.Unify(a, b)
	if s.Linear(a) {
		t.Error("two merged origins are not linear")
	}
	if s.InfoOf(a).Origins != 2 {
		t.Errorf("origins = %d, want 2", s.InfoOf(a).Origins)
	}
}

func TestRestrictedLinear(t *testing.T) {
	s := NewStore()
	rp := s.FreshRestricted("p'")
	if !s.Linear(rp) {
		t.Error("a fresh restricted location is linear (one origin)")
	}
	// A FAILED restrict candidate is unified with the outer (array)
	// location; the merged class must NOT be linear, restricted flag
	// notwithstanding.
	arr := s.FreshArray("locks[]")
	s.Unify(rp, arr)
	if s.Linear(rp) {
		t.Error("restricted-merged-with-array must not be linear")
	}
	if !s.InfoOf(rp).Restricted {
		t.Error("restricted flag survives for diagnostics")
	}
}

func TestUnifyMetadataMerge(t *testing.T) {
	s := NewStore()
	a := s.FreshStorage("a")
	s.MarkStorage(a) // a now has 2 origins
	b := s.FreshArray("b")
	r := s.Unify(a, b)
	in := s.InfoOf(r)
	if in.Origins != 3 {
		t.Errorf("origins = %d, want 3", in.Origins)
	}
	if !in.Multi {
		t.Error("multi must be or-ed")
	}
}

func TestOnUnifyCallback(t *testing.T) {
	s := NewStore()
	a := s.Fresh("a")
	b := s.Fresh("b")
	var wins, loses []Loc
	s.OnUnify(func(w, l Loc) {
		wins = append(wins, w)
		loses = append(loses, l)
	})
	r := s.Unify(a, b)
	if len(wins) != 1 {
		t.Fatalf("callback count = %d", len(wins))
	}
	if wins[0] != r {
		t.Errorf("winner %v != representative %v", wins[0], r)
	}
	if s.Find(loses[0]) != r {
		t.Errorf("loser must now resolve to winner")
	}
	// No callback on redundant unify.
	s.Unify(a, b)
	if len(wins) != 1 {
		t.Error("redundant unify must not fire callbacks")
	}
}

func TestFindPathCompression(t *testing.T) {
	s := NewStore()
	ls := make([]Loc, 100)
	for i := range ls {
		ls[i] = s.Fresh("x")
	}
	for i := 1; i < len(ls); i++ {
		s.Unify(ls[i-1], ls[i])
	}
	r := s.Find(ls[0])
	for _, l := range ls {
		if s.Find(l) != r {
			t.Fatal("all must share one representative")
		}
	}
	if s.InfoOf(r).Origins != 0 {
		t.Errorf("placeholders carry no origins, got %d", s.InfoOf(r).Origins)
	}
}
