package drivergen

import (
	"testing"

	"localalias/internal/core"
)

func TestCorpusShape(t *testing.T) {
	corpus := Corpus()
	if len(corpus) != NumModules {
		t.Fatalf("corpus size: %d", len(corpus))
	}
	counts := map[Category]int{}
	names := map[string]bool{}
	for _, m := range corpus {
		counts[m.Category]++
		if names[m.Name] {
			t.Errorf("duplicate module name %q", m.Name)
		}
		names[m.Name] = true
	}
	if counts[Clean] != NumClean || counts[BugsOnly] != NumBugsOnly ||
		counts[FullRecovery] != NumFullRecovery || counts[Partial] != NumPartial {
		t.Fatalf("category counts: %v", counts)
	}
}

func TestCorpusPotentialMass(t *testing.T) {
	// The paper's totals: potential eliminations 3,277 of which the
	// 14 partial modules hold 503 and the 138 full-recovery modules
	// hold 2,774; eliminated 3,116 (95%).
	potential, eliminated := 0, 0
	for _, m := range Corpus() {
		p := m.Expected.NoConfine - m.Expected.AllStrong
		e := m.Expected.NoConfine - m.Expected.Confine
		potential += p
		eliminated += e
	}
	if potential != 3277 {
		t.Errorf("potential = %d, want 3277", potential)
	}
	if eliminated != 3116 {
		t.Errorf("eliminated = %d, want 3116", eliminated)
	}
}

func TestFullRecoveryPartition(t *testing.T) {
	cs := fullRecoveryCounts()
	if len(cs) != NumFullRecovery {
		t.Fatalf("len = %d", len(cs))
	}
	sum := 0
	for _, c := range cs {
		if c < 1 {
			t.Fatalf("count below 1: %v", cs)
		}
		sum += c
	}
	if sum != PotentialFullRecovery {
		t.Fatalf("sum = %d, want %d", sum, PotentialFullRecovery)
	}
}

func TestFigure7Decomposition(t *testing.T) {
	for _, row := range Figure7Paper() {
		if row.NoConfine < row.Confine || row.Confine < row.AllStrong {
			t.Errorf("%s: counts not monotone", row.Name)
		}
	}
	// Figure 7 potential/eliminated must match the paper-derived
	// masses (503 potential, 342 eliminated).
	p, e := 0, 0
	for _, row := range Figure7Paper() {
		p += row.NoConfine - row.AllStrong
		e += row.NoConfine - row.Confine
	}
	if p != 503 || e != 342 {
		t.Errorf("figure 7 masses: potential=%d eliminated=%d", p, e)
	}
}

// measure runs the full pipeline on a spec.
func measure(t *testing.T, m *ModuleSpec) Triple {
	t.Helper()
	mod, err := core.LoadModule(m.Name+".mc", m.Source())
	if err != nil {
		t.Fatalf("%s does not compile: %v\n%s", m.Name, err, m.Source())
	}
	r, err := mod.AnalyzeLocking(core.LockingOptions{})
	if err != nil {
		t.Fatalf("%s: %v", m.Name, err)
	}
	return Triple{
		NoConfine: r.NoConfine.NumErrors(),
		Confine:   r.WithConfine.NumErrors(),
		AllStrong: r.AllStrong.NumErrors(),
	}
}

// TestUnitContributions verifies the per-unit error contributions the
// generator's Expected triples rely on.
func TestUnitContributions(t *testing.T) {
	// A units come in 4 flavors (direct pair, helper-param pair,
	// let-bound pointer pair, branchy pair); B units in 3. Each must
	// contribute its documented triple.
	for flavor := 0; flavor < 4; flavor++ {
		spec := &ModuleSpec{Name: flavorName("aunit", flavor, 4), A: 1, Expected: expected(1, 0, 0)}
		got := measure(t, spec)
		if got != spec.Expected {
			t.Errorf("A unit (%s): got %+v want %+v\n%s", spec.Name, got, spec.Expected, spec.Source())
		}
	}
	for flavor := 0; flavor < 3; flavor++ {
		spec := &ModuleSpec{Name: flavorName("bunit", flavor, 3), B: 1, Expected: expected(0, 0, 1)}
		got := measure(t, spec)
		if got != spec.Expected {
			t.Errorf("B unit (%s): got %+v want %+v\n%s", spec.Name, got, spec.Expected, spec.Source())
		}
	}
	// One U unit alone.
	spec := &ModuleSpec{Name: "uunit", U: 1, Expected: expected(0, 1, 0)}
	got := measure(t, spec)
	if got != spec.Expected {
		t.Errorf("U unit: got %+v want %+v\n%s", got, spec.Expected, spec.Source())
	}
}

// flavorName produces names whose hash selects the given flavor in
// srcGen.pick for unit index 0 under the given modulus.
func flavorName(base string, flavor, mod int) string {
	for i := 0; i < 100; i++ {
		name := base + string(rune('a'+i))
		h := 0
		for _, c := range name {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		if h%mod == flavor {
			return name
		}
	}
	return base
}

func TestModuleExpectedMatchesMeasured(t *testing.T) {
	// A representative sample across every category; the full 589 run
	// lives in the experiments package.
	corpus := Corpus()
	sample := []int{
		0, 1, 100, 351, // clean
		352, 360, 436, // bugs-only
		437, 480, 520, 574, // full recovery
		575, 577, 584, 588, // partial (incl. emu10k1, iph5526)
	}
	for _, idx := range sample {
		m := corpus[idx]
		got := measure(t, m)
		if got != m.Expected {
			t.Errorf("%s (%s, A=%d U=%d B=%d): got %+v want %+v",
				m.Name, m.Category, m.A, m.U, m.B, got, m.Expected)
		}
	}
}

func TestFigure7ModulesMatchPaperRows(t *testing.T) {
	corpus := Corpus()
	byName := map[string]*ModuleSpec{}
	for _, m := range corpus {
		byName[m.Name] = m
	}
	for _, row := range Figure7Paper() {
		m := byName[row.Name]
		if m == nil {
			t.Fatalf("missing module %s", row.Name)
		}
		got := measure(t, m)
		want := Triple{row.NoConfine, row.Confine, row.AllStrong}
		if got != want {
			t.Errorf("%s: measured %+v, paper %+v", row.Name, got, want)
		}
	}
}

func TestSourceDeterministic(t *testing.T) {
	m := Corpus()[588]
	if m.Source() != m.Source() {
		t.Error("generation must be deterministic")
	}
}

func TestWriteCorpus(t *testing.T) {
	seen := map[string]int{}
	n, err := WriteCorpus(func(name, contents string) error {
		seen[name] = len(contents)
		return nil
	})
	if err != nil || n != NumModules {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if seen["emu10k1.mc"] == 0 || seen["clean_000.mc"] == 0 {
		t.Error("missing module files")
	}
	// ide_tape is padded to be the largest module (for the E4 timing
	// experiment, as in the paper).
	for name, size := range seen {
		if name != "ide_tape.mc" && size > seen["ide_tape.mc"] {
			t.Errorf("%s (%d bytes) larger than ide_tape (%d)", name, size, seen["ide_tape.mc"])
		}
	}
}
