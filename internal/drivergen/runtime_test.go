package drivergen

// Runtime cross-validation: the corpus's static classification must
// agree with the Section 3.2 operational semantics. Modules whose
// errors are "real bugs" (B units) must actually misbehave when run —
// double acquires self-deadlock, stray releases trap — while clean
// and merely-weakly-analyzable modules (A and U units) execute
// without lock traps, because their locking is dynamically correct
// and only the static analysis loses precision on them.

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/core"
	"localalias/internal/interp"
)

// runRoots interprets every root function of the module that takes
// only int parameters, trying argument vectors of all-0 and all-1.
// It returns the lock-trap messages encountered.
func runRoots(t *testing.T, spec *ModuleSpec) []string {
	t.Helper()
	mod, err := core.LoadModule(spec.Name+".mc", spec.Source())
	if err != nil {
		t.Fatalf("%s: %v", spec.Name, err)
	}
	called := map[string]bool{}
	ast.Inspect(mod.Prog, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			called[c.Fun] = true
		}
		return true
	})
	var traps []string
	for _, f := range mod.Prog.Funs {
		if called[f.Name] {
			continue
		}
		intsOnly := true
		for _, p := range f.Params {
			if pt, ok := p.Type.(*ast.PrimType); !ok || pt.Kind != ast.PrimInt {
				intsOnly = false
			}
		}
		if !intsOnly {
			continue
		}
		for _, argVal := range []int64{0, 1} {
			// Fresh interpreter per call: each run starts from the
			// boot state (locks released), like a fresh module load.
			in := interp.New(mod.TInfo, interp.Options{MaxSteps: 1 << 16})
			args := make([]interp.Value, len(f.Params))
			for i := range args {
				args[i] = argVal
			}
			_, err := in.Call(f.Name, args...)
			if err == nil {
				continue
			}
			msg := err.Error()
			if _, isRestrict := err.(*interp.RestrictErr); isRestrict {
				t.Errorf("%s.%s: unexpected restrict err: %v", spec.Name, f.Name, err)
			}
			if strings.Contains(msg, "lock") {
				traps = append(traps, f.Name+": "+msg)
			} else if !strings.Contains(msg, "out of bounds") {
				// Index traps can occur for argument values outside
				// the lock array; anything else is unexpected.
				t.Errorf("%s.%s(%d): unexpected trap: %v", spec.Name, f.Name, argVal, err)
			}
		}
	}
	return traps
}

func specByName(name string) *ModuleSpec {
	for _, m := range Corpus() {
		if m.Name == name {
			return m
		}
	}
	return nil
}

func TestCleanModulesRunClean(t *testing.T) {
	for _, name := range []string{"clean_000", "clean_100", "clean_351"} {
		if traps := runRoots(t, specByName(name)); len(traps) != 0 {
			t.Errorf("%s must run without lock traps: %v", name, traps)
		}
	}
}

func TestRecoverableModulesRunClean(t *testing.T) {
	// A and U units are spurious STATIC errors only: dynamically the
	// locking is correct.
	for _, name := range []string{"driver_000", "driver_100"} {
		if traps := runRoots(t, specByName(name)); len(traps) != 0 {
			t.Errorf("%s (weak-update-only module) must run clean: %v", name, traps)
		}
	}
}

func TestBuggyModulesTrap(t *testing.T) {
	// Every bugs-only module must exhibit at least one runtime lock
	// trap across its roots.
	for _, name := range []string{"buggy_000", "buggy_001", "buggy_002", "buggy_010"} {
		traps := runRoots(t, specByName(name))
		if len(traps) == 0 {
			t.Errorf("%s contains real bugs but ran clean", name)
		}
	}
}

func TestPartialModulesTrapOnlyViaBugs(t *testing.T) {
	// netrom/rose have NO real bugs (all-strong count 0): they must
	// run clean. iph5526 is almost all real bugs: it must trap.
	for _, name := range []string{"netrom", "rose"} {
		if traps := runRoots(t, specByName(name)); len(traps) != 0 {
			t.Errorf("%s (no real bugs) must run clean: %v", name, traps)
		}
	}
	if traps := runRoots(t, specByName("iph5526")); len(traps) == 0 {
		t.Error("iph5526 carries real bugs and must trap")
	}
}
