// Package drivergen synthesizes the 589-module device-driver corpus
// of the Section 7 experiment.
//
// The paper analyzed 589 whole driver modules from the Linux 2.4.9
// kernel, which we cannot ship; instead this package generates MiniC
// modules from locking-pattern templates that exercise exactly the
// aliasing situations the paper discusses. Crucially, the per-module
// error counts are NOT hard-coded anywhere in the experiment: every
// number in the reproduced tables comes from actually running the
// pipeline over the generated code. The generator controls only the
// MIX of patterns, calibrated so the corpus-level proportions land on
// the paper's:
//
//	589 modules = 352 error-free
//	            +  85 with errors unrelated to strong updates
//	            + 138 fully recovered by confine inference
//	            +  14 partially recovered (the Figure 7 modules)
//
// Pattern units and their per-mode error contributions
// (no-confine / confine-inference / all-strong), each verified by the
// package tests:
//
//   - A ("recoverable"): a spin_lock/spin_unlock pair on an array
//     element (direct, or through a helper's parameter). Weak updates
//     make the unlock unverifiable; confine (or parameter restrict)
//     inference recovers it. Contributes (1, 0, 0).
//   - U ("unrecoverable-weak"): the pair's index is written between
//     the two operations, so the confined expression is not
//     referentially transparent; inference must reject it. A strong
//     update would still fix it. Contributes (1, 1, 0).
//   - B ("real bug"): double acquire, release-without-acquire, or a
//     conditionally taken lock released unconditionally. No amount of
//     strong updates excuses these. Contributes (1, 1, 1).
//
// A module specified as (a, u, b) therefore measures
// (a+u+b, u+b, b) — and the tests assert the pipeline agrees.
package drivergen

import (
	"fmt"
	"strings"
)

// Category classifies a module in the experiment's breakdown.
type Category int

// The module categories of the Section 7 breakdown.
const (
	// Clean modules have no type errors in any mode.
	Clean Category = iota
	// BugsOnly modules have errors, but no confine (and no strong
	// updates at all) would change them.
	BugsOnly
	// FullRecovery modules lose all their spurious errors to confine
	// inference.
	FullRecovery
	// Partial modules keep some spurious errors even with confine
	// inference — the paper's Figure 7 set.
	Partial
)

func (c Category) String() string {
	switch c {
	case Clean:
		return "clean"
	case BugsOnly:
		return "bugs-only"
	case FullRecovery:
		return "full-recovery"
	case Partial:
		return "partial"
	default:
		return "category(?)"
	}
}

// Triple is a per-mode error count.
type Triple struct {
	NoConfine int
	Confine   int
	AllStrong int
}

// ModuleSpec describes one synthetic driver module.
type ModuleSpec struct {
	Name     string
	Category Category
	// A, U, B are the pattern-unit counts (see the package comment).
	A, U, B int
	// Pads is the number of lock-free filler functions (device
	// bookkeeping, register shuffling) included for realism and size.
	Pads int
	// Expected is the per-mode error count implied by the unit mix.
	Expected Triple
}

// expected computes the triple from the unit mix.
func expected(a, u, b int) Triple {
	return Triple{NoConfine: a + u + b, Confine: u + b, AllStrong: b}
}

// Figure7Row pins one of the paper's named modules.
type Figure7Row struct {
	Name                          string
	NoConfine, Confine, AllStrong int
}

// Figure7Paper lists the 14 modules of the paper's Figure 7 with
// their published error counts.
func Figure7Paper() []Figure7Row {
	return []Figure7Row{
		{"wavelan_cs", 22, 16, 15},
		{"trix", 29, 24, 22},
		{"netrom", 41, 25, 0},
		{"rose", 47, 28, 0},
		{"usb_ohci", 32, 26, 17},
		{"uhci", 74, 45, 34},
		{"sb", 31, 24, 22},
		{"ide_tape", 58, 47, 41},
		{"mad16", 29, 24, 22},
		{"emu10k1", 198, 60, 35},
		{"trident", 107, 49, 36},
		{"digi_aceleport", 62, 32, 4},
		{"sbni", 23, 16, 9},
		{"iph5526", 39, 34, 32},
	}
}

// Corpus sizes (the paper's Section 7 breakdown).
const (
	NumModules      = 589
	NumClean        = 352
	NumBugsOnly     = 85
	NumFullRecovery = 138
	NumPartial      = 14

	// PotentialFullRecovery is the total spurious-error mass of the
	// 138 fully recovered modules: the paper's 3,277 potential minus
	// the 503 potential of the Figure 7 modules.
	PotentialFullRecovery = 2774
)

// Corpus generates all 589 module specs, deterministically.
func Corpus() []*ModuleSpec {
	var out []*ModuleSpec

	// 352 clean modules.
	for i := 0; i < NumClean; i++ {
		out = append(out, &ModuleSpec{
			Name:     fmt.Sprintf("clean_%03d", i),
			Category: Clean,
			Pads:     2 + i%4,
			Expected: expected(0, 0, 0),
		})
	}

	// 85 bugs-only modules, 1–3 real bugs each.
	for i := 0; i < NumBugsOnly; i++ {
		b := 1 + i%3
		out = append(out, &ModuleSpec{
			Name:     fmt.Sprintf("buggy_%03d", i),
			Category: BugsOnly,
			B:        b,
			Pads:     1 + i%3,
			Expected: expected(0, 0, b),
		})
	}

	// 138 fully recovered modules, spurious-error mass per Figure 6's
	// skewed distribution.
	for i, a := range fullRecoveryCounts() {
		out = append(out, &ModuleSpec{
			Name:     fmt.Sprintf("driver_%03d", i),
			Category: FullRecovery,
			A:        a,
			Pads:     1 + i%3,
			Expected: expected(a, 0, 0),
		})
	}

	// 14 partial modules matching Figure 7: decompose each row's
	// (no, conf, strong) into B = strong, U = conf − strong,
	// A = no − conf.
	for i, row := range Figure7Paper() {
		a := row.NoConfine - row.Confine
		u := row.Confine - row.AllStrong
		b := row.AllStrong
		pads := 2 + i%3
		if row.Name == "ide_tape" {
			// The paper's timing experiment calls ide-tape "the
			// largest module where confine inference eliminated some
			// type errors"; pad it into first place (ahead even of
			// emu10k1's many units).
			pads = 200
		}
		out = append(out, &ModuleSpec{
			Name:     row.Name,
			Category: Partial,
			A:        a,
			U:        u,
			B:        b,
			Pads:     pads,
			Expected: expected(a, u, b),
		})
	}
	return out
}

// fullRecoveryCounts partitions PotentialFullRecovery spurious errors
// over NumFullRecovery modules with the skewed shape of Figure 6:
// most modules lose only a handful of errors to weak updates, a few
// lose around a hundred (the paper's largest single-module
// elimination is emu10k1's 138). Tiers give the shape; the remainder
// is spread over the largest modules round-robin so the total is
// exact.
func fullRecoveryCounts() []int {
	tiers := []struct{ modules, errors int }{
		{60, 6},
		{30, 13},
		{18, 22},
		{12, 32},
		{8, 48},
		{5, 64},
		{3, 85},
		{2, 115},
	}
	var counts []int
	total := 0
	for _, t := range tiers {
		for i := 0; i < t.modules; i++ {
			counts = append(counts, t.errors)
			total += t.errors
		}
	}
	if len(counts) != NumFullRecovery {
		panic("drivergen: tier module counts out of sync")
	}
	// Spread the remainder over the top (largest) modules, +1 each,
	// cycling from the end.
	i := len(counts) - 1
	for total < PotentialFullRecovery {
		counts[i]++
		total++
		i--
		if i < len(counts)-20 {
			i = len(counts) - 1
		}
	}
	for total > PotentialFullRecovery {
		counts[0]--
		total--
	}
	return counts
}

// ---------------------------------------------------------------------
// Code generation

// Source renders the module's MiniC code. Generation is fully
// deterministic: the same spec always yields the same text.
func (m *ModuleSpec) Source() string {
	g := &srcGen{spec: m}
	return g.generate()
}

type srcGen struct {
	spec *ModuleSpec
	b    strings.Builder
	n    int // unit counter
}

func (g *srcGen) pf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

// pick deterministically selects a flavor index for unit i.
func (g *srcGen) pick(i, n int) int {
	h := 0
	for _, c := range g.spec.Name {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return (h + i*7) % n
}

func (g *srcGen) generate() string {
	m := g.spec
	g.pf("// Module %s (%s): synthetic driver generated by drivergen.\n", m.Name, m.Category)
	g.pf("// Units: A=%d U=%d B=%d pads=%d.\n\n", m.A, m.U, m.B, m.Pads)
	g.pf("struct %s_dev {\n    l: lock;\n    irq: int;\n    count: int;\n}\n\n", m.Name)

	for i := 0; i < m.A; i++ {
		g.unitA(i)
	}
	for i := 0; i < m.U; i++ {
		g.unitU(i)
	}
	for i := 0; i < m.B; i++ {
		g.unitB(i)
	}
	if m.Category == Clean {
		g.cleanLocking()
	}
	for i := 0; i < m.Pads; i++ {
		g.pad(i)
	}
	return g.b.String()
}

// unitA emits one recoverable pair: (1, 0, 0).
func (g *srcGen) unitA(i int) {
	id := g.n
	g.n++
	switch g.pick(i, 4) {
	case 0:
		// Direct pair on an array element, with a little work between.
		g.pf("global a%d_locks: lock[8];\nglobal a%d_stat: int[8];\n\n", id, id)
		g.pf("fun a%d_handle(i: int) {\n", id)
		g.pf("    spin_lock(&a%d_locks[i]);\n", id)
		g.pf("    a%d_stat[i] = a%d_stat[i] + 1;\n", id, id)
		g.pf("    spin_unlock(&a%d_locks[i]);\n", id)
		g.pf("}\n\n")
	case 1:
		// Through a helper's parameter (the Figure 1 pattern).
		g.pf("global a%d_locks: lock[8];\n\n", id)
		g.pf("fun a%d_with(l: ref lock) {\n", id)
		g.pf("    spin_lock(l);\n    work();\n    spin_unlock(l);\n}\n\n")
		g.pf("fun a%d_entry(i: int) {\n    a%d_with(&a%d_locks[i]);\n}\n\n", id, id, id)
	case 2:
		// Lock held in a local pointer binding: recovered by
		// let-or-restrict inference (Section 5) rather than confine.
		g.pf("global a%d_locks: lock[8];\n\n", id)
		g.pf("fun a%d_held(i: int) {\n", id)
		g.pf("    let l = &a%d_locks[i];\n", id)
		g.pf("    spin_lock(l);\n    work();\n    spin_unlock(l);\n")
		g.pf("}\n\n")
	default:
		// Pair with a branch in the critical section.
		g.pf("global a%d_locks: lock[8];\nglobal a%d_err: int;\n\n", id, id)
		g.pf("fun a%d_io(i: int, v: int) {\n", id)
		g.pf("    spin_lock(&a%d_locks[i]);\n", id)
		g.pf("    if (v > 0) {\n        work();\n    } else {\n        a%d_err = a%d_err + 1;\n    }\n", id, id)
		g.pf("    spin_unlock(&a%d_locks[i]);\n", id)
		g.pf("}\n\n")
	}
}

// unitU emits one unrecoverable-weak pair: (1, 1, 0). The confined
// expression's index is written inside the scope, so confine?'s
// referential-transparency premise rejects it; all-strong still
// verifies.
func (g *srcGen) unitU(i int) {
	id := g.n
	g.n++
	g.pf("global u%d_locks: lock[8];\nglobal u%d_cur: int;\n\n", id, id)
	g.pf("fun u%d_advance() {\n", id)
	g.pf("    spin_lock(&u%d_locks[u%d_cur]);\n", id, id)
	g.pf("    u%d_cur = u%d_cur + 1;\n", id, id)
	g.pf("    u%d_cur = u%d_cur - 1;\n", id, id)
	g.pf("    spin_unlock(&u%d_locks[u%d_cur]);\n", id, id)
	g.pf("}\n\n")
}

// unitB emits one real locking bug: (1, 1, 1).
func (g *srcGen) unitB(i int) {
	id := g.n
	g.n++
	switch g.pick(i, 3) {
	case 0:
		// Double acquire.
		g.pf("global b%d_lock: lock;\n\n", id)
		g.pf("fun b%d_twice() {\n", id)
		g.pf("    spin_lock(&b%d_lock);\n    spin_lock(&b%d_lock);\n    spin_unlock(&b%d_lock);\n", id, id, id)
		g.pf("}\n\n")
	case 1:
		// Release without acquire.
		g.pf("global b%d_lock: lock;\n\n", id)
		g.pf("fun b%d_loose() {\n    spin_unlock(&b%d_lock);\n}\n\n", id, id)
	default:
		// Conditionally taken, unconditionally released.
		g.pf("global b%d_lock: lock;\n\n", id)
		g.pf("fun b%d_cond(c: int) {\n", id)
		g.pf("    if (c > 0) {\n        spin_lock(&b%d_lock);\n    }\n", id)
		g.pf("    spin_unlock(&b%d_lock);\n", id)
		g.pf("}\n\n")
	}
}

// cleanLocking emits correct locking that needs no confine at all
// (scalar locks, single-instance device structs).
func (g *srcGen) cleanLocking() {
	id := g.n
	g.n++
	name := g.spec.Name
	g.pf("global c%d_lock: lock;\nglobal c%d_dev: %s_dev;\n\n", id, id, name)
	g.pf("fun c%d_open() {\n", id)
	g.pf("    spin_lock(&c%d_lock);\n    work();\n    spin_unlock(&c%d_lock);\n}\n\n", id, id)
	g.pf("fun c%d_touch() {\n", id)
	g.pf("    spin_lock(&c%d_dev.l);\n", id)
	g.pf("    c%d_dev.count = c%d_dev.count + 1;\n", id, id)
	g.pf("    spin_unlock(&c%d_dev.l);\n", id)
	g.pf("}\n\n")
	g.pf("fun c%d_loop(n: int) {\n", id)
	g.pf("    let i = new 0;\n    while (*i < n) {\n")
	g.pf("        spin_lock(&c%d_lock);\n        spin_unlock(&c%d_lock);\n", id, id)
	g.pf("        *i = *i + 1;\n    }\n}\n\n")
	// An explicitly annotated helper (the checked C99 form): clean in
	// every mode without any inference.
	g.pf("global c%d_ports: lock[4];\n\n", id)
	g.pf("fun c%d_with(l: restrict ref lock) {\n", id)
	g.pf("    spin_lock(l);\n    work();\n    spin_unlock(l);\n}\n\n")
	g.pf("fun c%d_port_io(i: int) {\n    c%d_with(&c%d_ports[i]);\n}\n\n", id, id, id)
	// A second change_type protocol: interrupt flags around a scalar
	// critical section.
	g.pf("global c%d_irq: lock;\n\n", id)
	g.pf("fun c%d_isr() {\n", id)
	g.pf("    irq_save(&c%d_irq);\n", id)
	g.pf("    spin_lock(&c%d_lock);\n    spin_unlock(&c%d_lock);\n", id, id)
	g.pf("    irq_restore(&c%d_irq);\n", id)
	g.pf("}\n\n")
}

// WriteCorpus invokes write for every module's generated source (file
// name "<module>.mc"), returning the number written. cmd/experiments
// -dump uses it to materialize the corpus on disk.
func WriteCorpus(write func(name, contents string) error) (int, error) {
	n := 0
	for _, m := range Corpus() {
		if err := write(m.Name+".mc", m.Source()); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// pad emits a lock-free filler function.
func (g *srcGen) pad(i int) {
	id := g.n
	g.n++
	switch g.pick(i, 3) {
	case 0:
		g.pf("global p%d_regs: int[16];\n\n", id)
		g.pf("fun p%d_reset() {\n", id)
		g.pf("    let i = new 0;\n    while (*i < 16) {\n")
		g.pf("        p%d_regs[*i] = 0;\n        *i = *i + 1;\n    }\n}\n\n", id)
	case 1:
		g.pf("fun p%d_csum(x: int, y: int): int {\n", id)
		g.pf("    let s = new 0;\n    *s = x * 31 + y;\n")
		g.pf("    if (*s < 0) {\n        *s = -*s;\n    }\n    return *s %% 65536;\n}\n\n")
	default:
		g.pf("fun p%d_scale(v: int): int {\n", id)
		g.pf("    let t = new v;\n    restrict w = t {\n        *w = *w * 3 + 1;\n    }\n    return *t;\n}\n\n")
	}
}
