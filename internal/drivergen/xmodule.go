package drivergen

import "fmt"

// XModule is one module of a multi-module driver stack (the
// cross-module workload class). Unlike the single-module corpus,
// these modules import each other, so their precision depends on
// whether the analysis applies callee summaries or havocs imported
// calls.
type XModule struct {
	Name string
	// Deps are the packages this module imports.
	Deps []string
	// Source is the generated MiniC text.
	Source string
	// ExpHavoc / ExpSummary are the per-mode error triples implied by
	// the module's unit mix under per-module havoc and under the
	// summary pass. As with the single-module corpus the numbers are
	// never fed to the analysis: the tests run the pipeline and
	// assert agreement.
	ExpHavoc, ExpSummary Triple
}

// Cross-module pattern units and their calibrated per-mode
// contributions (no-confine / confine-inference / all-strong),
// verified by TestXStackExpectations:
//
//   - XA ("cross-recoverable"): a lock/unlock pair on a module-local
//     lock with an imported helper call between the operations. The
//     helper never touches the lock's state (its transfer is the
//     identity), but per-module havoc must assume the call smashes it
//     to ⊤, so the unlock is unverifiable in every mode — no amount
//     of strong updates recovers from a havoc'd call. The summary
//     pass applies the identity transfer and eliminates all of it.
//     Havoc (1, 1, 1) vs summary (0, 0, 0).
//   - XB ("cross-module bug"): the caller holds the lock and passes
//     it to an imported helper that acquires it again — a real
//     double-acquire split across two modules. Havoc misses it
//     entirely (the callee's precondition is invisible); the summary
//     pass reports it at the call site.
//     Havoc (0, 0, 0) vs summary (1, 1, 1).
//   - CX ("clean cross"): an imported helper invoked with an
//     unlocked lock, satisfying its precondition. No errors either
//     way — the differential anchor.
//     Havoc (0, 0, 0) vs summary (0, 0, 0).
//
// Leaves also carry plain single-module A units, which contribute
// (1, 0, 0) identically in both modes: cross-module precision must
// not disturb module-local reasoning.
var (
	xaHavoc   = Triple{1, 1, 1}
	xaSummary = Triple{0, 0, 0}
	xbHavoc   = Triple{0, 0, 0}
	xbSummary = Triple{1, 1, 1}
	aBoth     = Triple{1, 0, 0}
)

func addTriples(ts ...Triple) Triple {
	var out Triple
	for _, t := range ts {
		out.NoConfine += t.NoConfine
		out.Confine += t.Confine
		out.AllStrong += t.AllStrong
	}
	return out
}

func scaleTriple(t Triple, n int) Triple {
	return Triple{t.NoConfine * n, t.Confine * n, t.AllStrong * n}
}

// XStack generates a multi-module driver stack: one shared
// lock-header package, two helper-library packages built on it, and
// `leaves` leaf driver modules importing the helpers. Every third
// leaf carries a real cross-module bug (XB); all leaves carry
// cross-recoverable (XA), clean-cross (CX), and plain A units, so the
// summary pass eliminates strictly more errors than havoc in every
// mode column while still reporting the planted cross-module bugs.
func XStack(leaves int) []XModule {
	if leaves < 1 {
		leaves = 1
	}
	mods := []XModule{xhdrModule(), xioModule(), xqueueModule()}
	for i := 0; i < leaves; i++ {
		mods = append(mods, leafModule(i))
	}
	return mods
}

// xhdrModule is the shared lock-header package: scalar bookkeeping
// helpers used by every library. It contains no lock operations.
func xhdrModule() XModule {
	src := `// Module xhdr: shared lock-header package (drivergen xmodule).

fun csum(x: int, y: int): int {
    let s = new 0;
    *s = x * 31 + y;
    if (*s < 0) {
        *s = -*s;
    }
    return *s % 65536;
}

fun step(v: int): int {
    return v + 1;
}
`
	return XModule{Name: "xhdr", Source: src}
}

// xioModule is a helper library exporting restrict-annotated lock
// helpers. The restrict annotation is what makes the exported
// transfer tables precise: it licenses strong updates on the formal
// inside the callee, so the probe records exact state changes instead
// of ⊤ (see qual/transfer.go).
func xioModule() XModule {
	src := `// Module xio: I/O helper library (drivergen xmodule).

import "xhdr";

global xio_stats: int[8];

fun pulse(l: restrict ref lock) {
    spin_lock(l);
    xio_stats[0] = xhdr.csum(xio_stats[0], 1);
    spin_unlock(l);
}

fun note(l: restrict ref lock, i: int) {
    xio_stats[1] = xhdr.step(i);
}
`
	return XModule{Name: "xio", Deps: []string{"xhdr"}}.withSource(src)
}

// xqueueModule is a second helper library on the same header.
func xqueueModule() XModule {
	src := `// Module xqueue: queue helper library (drivergen xmodule).

import "xhdr";

global xq_depth: int;

fun drain(l: restrict ref lock) {
    spin_lock(l);
    work();
    spin_unlock(l);
}

fun peek(l: restrict ref lock): int {
    return xhdr.step(xq_depth);
}
`
	return XModule{Name: "xqueue", Deps: []string{"xhdr"}}.withSource(src)
}

func (m XModule) withSource(src string) XModule {
	m.Source = src
	return m
}

// leafHasXB reports whether leaf i carries the cross-module bug unit
// (every third leaf, so XB stays rarer than XA and the summary pass
// wins every column in aggregate).
func leafHasXB(i int) bool { return i%3 == 0 }

func leafModule(i int) XModule {
	name := fmt.Sprintf("xdrv%02d", i)
	g := &srcGen{}
	g.pf("// Module %s: leaf driver of the multi-module stack.\n\n", name)
	g.pf("import \"xio\";\nimport \"xqueue\";\n\n")

	// XA units: local pair around a state-preserving imported call.
	g.pf("global %s_tx: lock;\n\n", name)
	g.pf("fun %s_tx_done(n: int) {\n", name)
	g.pf("    spin_lock(&%s_tx);\n", name)
	g.pf("    xio.note(&%s_tx, n);\n", name)
	g.pf("    spin_unlock(&%s_tx);\n", name)
	g.pf("}\n\n")
	g.pf("global %s_rx: lock;\nglobal %s_pend: int;\n\n", name, name)
	g.pf("fun %s_rx_poll() {\n", name)
	g.pf("    spin_lock(&%s_rx);\n", name)
	g.pf("    %s_pend = xqueue.peek(&%s_rx);\n", name, name)
	g.pf("    spin_unlock(&%s_rx);\n", name)
	g.pf("}\n\n")
	xa := 2

	// XB unit: double acquire split across the module boundary.
	xb := 0
	if leafHasXB(i) {
		g.pf("global %s_bug: lock;\n\n", name)
		g.pf("fun %s_reset_locked() {\n", name)
		g.pf("    spin_lock(&%s_bug);\n", name)
		g.pf("    xio.pulse(&%s_bug);\n", name)
		g.pf("}\n\n")
		xb = 1
	}

	// CX unit: precondition-satisfying imported call.
	g.pf("global %s_cfg: lock;\n\n", name)
	g.pf("fun %s_configure() {\n", name)
	g.pf("    xio.pulse(&%s_cfg);\n", name)
	g.pf("    xqueue.drain(&%s_cfg);\n", name)
	g.pf("}\n\n")

	// One plain single-module A unit for realism.
	g.spec = &ModuleSpec{Name: name}
	g.unitA(i)

	return XModule{
		Name:       name,
		Deps:       []string{"xio", "xqueue"},
		Source:     g.b.String(),
		ExpHavoc:   addTriples(scaleTriple(xaHavoc, xa), scaleTriple(xbHavoc, xb), aBoth),
		ExpSummary: addTriples(scaleTriple(xaSummary, xa), scaleTriple(xbSummary, xb), aBoth),
	}
}

// XStackExpected sums the per-module expectations of a stack.
func XStackExpected(mods []XModule) (havoc, summary Triple) {
	for _, m := range mods {
		havoc = addTriples(havoc, m.ExpHavoc)
		summary = addTriples(summary, m.ExpSummary)
	}
	return havoc, summary
}
