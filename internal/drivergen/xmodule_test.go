package drivergen

import "testing"

// TestXStackShape checks the stack's structure: one header, two
// helper libraries, N leaves, with XB units strictly rarer than XA so
// the summary pass wins every aggregate column (the analysis-level
// assertions live in internal/modgraph).
func TestXStackShape(t *testing.T) {
	const leaves = 7
	mods := XStack(leaves)
	if len(mods) != 3+leaves {
		t.Fatalf("len = %d, want %d", len(mods), 3+leaves)
	}
	byName := map[string]XModule{}
	for _, m := range mods {
		byName[m.Name] = m
		if m.Source == "" {
			t.Errorf("%s: empty source", m.Name)
		}
	}
	for _, want := range []string{"xhdr", "xio", "xqueue"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing %s", want)
		}
	}
	for _, m := range mods[3:] {
		if len(m.Deps) != 2 {
			t.Errorf("%s: deps = %v, want xio+xqueue", m.Name, m.Deps)
		}
	}

	havoc, summary := XStackExpected(mods)
	for col, pair := range [][2]int{
		{summary.NoConfine, havoc.NoConfine},
		{summary.Confine, havoc.Confine},
		{summary.AllStrong, havoc.AllStrong},
	} {
		if pair[0] >= pair[1] {
			t.Errorf("column %d: summary expectation %d not strictly below havoc %d",
				col, pair[0], pair[1])
		}
	}
}

// TestXStackDeterministic checks the generator is a pure function of
// its input (the fingerprint-based summary cache depends on it).
func TestXStackDeterministic(t *testing.T) {
	a, b := XStack(4), XStack(4)
	for i := range a {
		if a[i].Source != b[i].Source || a[i].Name != b[i].Name {
			t.Fatalf("module %d differs across generations", i)
		}
	}
}
