// Package golden runs the expectation-comment test suite: each
// testdata/*.mc program carries inline expectations and the harness
// verifies the pipeline produces exactly the diagnostics they demand.
//
// Expectation syntax (anywhere in a line; a line may carry several,
// each introduced by its own "//"):
//
//	//TYPES-ERR: substr    standard type error on this line
//	//CHECK-ERR: substr    restrict/confine violation on this line
//	//INFER-RESTRICT       restrict inference marks this let
//	//INFER-KEEP           restrict inference leaves this let alone
//
// A file with no expectations must compile and check cleanly. Files
// with INFER expectations additionally run restrict inference (with
// parameter candidates enabled).
package golden

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/parser"
	"localalias/internal/restrict"
	"localalias/internal/source"
	"localalias/internal/types"
)

type expectation struct {
	line   int
	phase  string // "types" or "check"
	substr string
}

var expRE = regexp.MustCompile(`^(TYPES|CHECK)-ERR:\s*(.+?)\s*$`)

var inferRE = regexp.MustCompile(`^INFER-(RESTRICT|KEEP)\s*$`)

type inferExp struct {
	line     int
	restrict bool
}

func parseInferExpectations(src string) []inferExp {
	var out []inferExp
	for i, line := range strings.Split(src, "\n") {
		for _, seg := range strings.Split(line, "//")[1:] {
			if m := inferRE.FindStringSubmatch(strings.TrimSpace(seg)); m != nil {
				out = append(out, inferExp{line: i + 1, restrict: m[1] == "RESTRICT"})
			}
		}
	}
	return out
}

// parseExpectations extracts every expectation marker; a line may
// carry several, each introduced by its own "//".
func parseExpectations(src string) []expectation {
	var out []expectation
	for i, line := range strings.Split(src, "\n") {
		segs := strings.Split(line, "//")
		for _, seg := range segs[1:] {
			if m := expRE.FindStringSubmatch(strings.TrimSpace(seg)); m != nil {
				phase := "types"
				if m[1] == "CHECK" {
					phase = "check"
				}
				out = append(out, expectation{line: i + 1, phase: phase, substr: m[2]})
			}
		}
	}
	return out
}

func TestGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/*.mc")
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden files found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			exps := parseExpectations(src)

			var diags source.Diagnostics
			file := source.NewFile(filepath.Base(path), src)
			prog := parser.ParseFile(file, &diags)
			if diags.HasErrors() {
				t.Fatalf("golden files must parse:\n%s", diags.String())
			}
			tinfo := types.Check(prog, &diags)
			typeErrs := collect(&diags, file)

			var checkErrs []diagAt
			if !diags.HasErrors() {
				var cdiags source.Diagnostics
				restrict.Check(tinfo, &cdiags)
				checkErrs = collect(&cdiags, file)
			}

			got := map[string][]diagAt{"types": typeErrs, "check": checkErrs}
			used := map[string]map[int]bool{"types": {}, "check": {}}

			for _, exp := range exps {
				found := false
				for i, d := range got[exp.phase] {
					if used[exp.phase][i] {
						continue
					}
					if d.line == exp.line && strings.Contains(d.msg, exp.substr) {
						used[exp.phase][i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("line %d: expected %s error containing %q; got:\n%s",
						exp.line, exp.phase, exp.substr, render(got[exp.phase]))
				}
			}
			// No unexpected errors.
			for phase, ds := range got {
				for i, d := range ds {
					if !used[phase][i] {
						t.Errorf("unexpected %s error at line %d: %s", phase, d.line, d.msg)
					}
				}
			}

			// Inference expectations (separate parse: marking mutates
			// the tree).
			iexps := parseInferExpectations(src)
			if len(iexps) == 0 {
				return
			}
			var idiags source.Diagnostics
			iprog := parser.ParseFile(source.NewFile(filepath.Base(path), src), &idiags)
			itinfo := types.Check(iprog, &idiags)
			if idiags.HasErrors() {
				t.Fatalf("re-check:\n%s", idiags.String())
			}
			restrict.Infer(itinfo, &idiags, restrict.Options{Params: true})
			marks := map[int]bool{}
			astInspectDecls(iprog, func(line int, restricted bool) {
				if restricted {
					marks[line] = true
				}
			}, file)
			for _, e := range iexps {
				if e.restrict && !marks[e.line] {
					t.Errorf("line %d: expected inference to mark restrict", e.line)
				}
				if !e.restrict && marks[e.line] {
					t.Errorf("line %d: expected inference to keep the let", e.line)
				}
			}
		})
	}
}

type diagAt struct {
	line int
	msg  string
}

func collect(ds *source.Diagnostics, f *source.File) []diagAt {
	var out []diagAt
	for _, d := range ds.List {
		if d.Severity != source.Error {
			continue
		}
		out = append(out, diagAt{line: f.Position(d.Span.Start).Line, msg: d.Message})
	}
	return out
}

func render(ds []diagAt) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "  line %d: %s\n", d.line, d.msg)
	}
	return b.String()
}

// astInspectDecls reports each DeclStmt's line and restrict mark.
func astInspectDecls(prog *ast.Program, f func(line int, restricted bool), file *source.File) {
	ast.Inspect(prog, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeclStmt); ok {
			f(file.Position(d.Sp.Start).Line, d.Restrict)
		}
		return true
	})
}
