// Package obs is the zero-dependency observability layer of the
// toolkit: a process-wide metrics registry (atomic counters, gauges,
// and fixed-bucket latency histograms), per-request span traces with
// unique trace IDs, and exporters for both — JSON and Prometheus text
// exposition for metrics, Chrome trace_event JSON for traces.
//
// Design constraints, in order:
//
//   - The disabled path must cost nothing measurable. Every handle is
//     nil-safe (method calls on a nil *Counter, *Histogram, or *Trace
//     are no-ops), and the always-on counters amount to a handful of
//     atomic adds per analysis, recorded once per solve rather than
//     per propagation step. The instrumentation-overhead benchmark
//     (BENCH_obs.json) keeps this honest: <2% on SolverPropagation.
//   - Metric values must never ride in the canonical wire body of an
//     AnalyzeResponse — cached responses stay byte-stable. Timings
//     travel in headers, access logs, and the /v1/metrics endpoint.
//   - No third-party dependencies: the registry speaks the Prometheus
//     text exposition format directly and the trace exporter writes
//     the Chrome trace_event JSON schema directly.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------
// Instruments

// Counter is a monotonically increasing atomic counter. All methods
// are safe on a nil receiver (no-ops), so call sites never branch on
// whether instrumentation is wired up.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the fixed histogram bucket upper bounds
// used for analysis latencies: 50µs to 10s, roughly 2.5× apart. A
// parse of a small module lands in the first buckets; a pathological
// solve near its 2-minute deadline lands in the overflow bucket, whose
// exact maximum is tracked separately.
var DefaultLatencyBounds = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram: lock-free Observe
// (one atomic add into the bucket, plus count/sum/max updates), exact
// count/sum/max, and quantile estimates by linear interpolation within
// the matched bucket.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds (nil selects DefaultLatencyBounds). Standalone
// histograms (outside any registry) are how batch drivers aggregate
// per-phase timings without touching process-wide state.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration (negative values clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts is per-bucket (not cumulative) and one longer than Bounds:
// the final entry is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []uint64
	Count  uint64
	Sum    time.Duration
	Max    time.Duration
}

// Snapshot copies the current state. Under concurrent Observe traffic
// the per-bucket counts may lag Count by in-flight observations; each
// individual counter is still monotonic.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sum.Load()),
		Max:    time.Duration(h.max.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by linear
// interpolation within the bucket holding the target rank. Ranks
// falling in the overflow bucket report the tracked maximum.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	seen := uint64(0)
	for i, c := range s.Counts {
		if seen+c <= rank {
			seen += c
			continue
		}
		if i == len(s.Bounds) { // overflow bucket
			return s.Max
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (float64(rank-seen) + 0.5) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return s.Max
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// ---------------------------------------------------------------------
// Registry

// metricKind discriminates the registry's instrument types.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled instance within a metric family. labels is
// the rendered (escaped) form used only as the identity key; kv keeps
// the raw label values, so each exposition escapes exactly once in
// its own syntax instead of re-escaping the rendered key.
type series struct {
	labels  string   // rendered `k="v",k2="v2"` form, "" for unlabeled
	kv      []string // raw key,value list the series was created with
	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64 // callback gauges (queue depth, cache entries)
	hist    *Histogram
}

// family is one named metric with its help text and every labeled
// series, in registration order.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string
	series map[string]*series
}

// Registry is a set of named metrics. Registration is
// get-or-create: asking for the same family+labels twice returns the
// same instrument, so packages can look handles up at init without
// coordinating ownership. All methods are safe for concurrent use;
// the instruments themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry behind Default().
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry: the one the app-level
// metric set (App) registers into and /v1/metrics exposes.
func Default() *Registry { return defaultRegistry }

// renderLabels turns a flat k,v,k,v list into `k="v",k2="v2"`.
// Values are escaped per the Prometheus text format.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup finds or creates the series for family name + labels.
func (r *Registry) lookup(name, help string, kind metricKind, kv []string) *series {
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[labels]
	if !ok {
		s = &series{labels: labels, kv: append([]string(nil), kv...)}
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// Counter returns the counter for name+labels, creating it on first
// use. kv is a flat key,value,key,value list.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	s := r.lookup(name, help, kindCounter, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	s := r.lookup(name, help, kindGauge, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers (or replaces) a callback gauge: fn is invoked
// at scrape time. Replacement semantics let a new Server instance
// re-bind the queue-depth gauge without unregistering the old one —
// the last registrant wins, which is the live instance.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, kv ...string) {
	s := r.lookup(name, help, kindGauge, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gaugeFn = fn
}

// Histogram returns the histogram for name+labels, creating it with
// the given bounds (nil = DefaultLatencyBounds) on first use.
func (r *Registry) Histogram(name, help string, bounds []time.Duration, kv ...string) *Histogram {
	s := r.lookup(name, help, kindHistogram, kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// ---------------------------------------------------------------------
// Exposition

// seriesJSON is one labeled series in the JSON exposition.
type seriesJSON struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Counter / gauge value.
	Value *int64 `json:"value,omitempty"`
	// Histogram fields.
	Count  *uint64      `json:"count,omitempty"`
	SumNs  *int64       `json:"sum_ns,omitempty"`
	MaxNs  *int64       `json:"max_ns,omitempty"`
	P50Ns  *int64       `json:"p50_ns,omitempty"`
	P95Ns  *int64       `json:"p95_ns,omitempty"`
	Bucket []bucketJSON `json:"buckets,omitempty"`
}

type bucketJSON struct {
	LeNs  int64  `json:"le_ns"` // -1 encodes +Inf
	Count uint64 `json:"count"` // cumulative, Prometheus-style
}

// metricJSON is one family in the JSON exposition.
type metricJSON struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []seriesJSON `json:"series"`
}

// labelMap turns a raw k,v,k,v list into the map the JSON exposition
// wants. Values are the raw strings the series was registered with;
// JSON encoding applies its own escaping.
func labelMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	out := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out[kv[i]] = kv[i+1]
	}
	return out
}

// snapshotLocked copies the family/series structure under r.mu so the
// (lock-free) instrument reads happen outside the registry lock.
func (r *Registry) snapshot() []metricJSON {
	type seriesRef struct {
		kv []string
		s  *series
	}
	type familyRef struct {
		name, help string
		kind       metricKind
		series     []seriesRef
	}
	r.mu.Lock()
	fams := make([]familyRef, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fr := familyRef{name: f.name, help: f.help, kind: f.kind}
		for _, l := range f.order {
			fr.series = append(fr.series, seriesRef{kv: f.series[l].kv, s: f.series[l]})
		}
		fams = append(fams, fr)
	}
	r.mu.Unlock()

	out := make([]metricJSON, 0, len(fams))
	for _, fr := range fams {
		m := metricJSON{Name: fr.name, Type: string(fr.kind), Help: fr.help}
		for _, sr := range fr.series {
			sj := seriesJSON{Labels: labelMap(sr.kv)}
			switch fr.kind {
			case kindCounter:
				v := int64(sr.s.counter.Value())
				sj.Value = &v
			case kindGauge:
				var v int64
				if sr.s.gaugeFn != nil {
					v = sr.s.gaugeFn()
				} else {
					v = sr.s.gauge.Value()
				}
				sj.Value = &v
			case kindHistogram:
				hs := sr.s.hist.Snapshot()
				count, sum, max := hs.Count, int64(hs.Sum), int64(hs.Max)
				p50, p95 := int64(hs.Quantile(0.50)), int64(hs.Quantile(0.95))
				sj.Count, sj.SumNs, sj.MaxNs, sj.P50Ns, sj.P95Ns = &count, &sum, &max, &p50, &p95
				cum := uint64(0)
				for i, c := range hs.Counts {
					cum += c
					le := int64(-1)
					if i < len(hs.Bounds) {
						le = int64(hs.Bounds[i])
					}
					sj.Bucket = append(sj.Bucket, bucketJSON{LeNs: le, Count: cum})
				}
			}
			m.Series = append(m.Series, sj)
		}
		out = append(out, m)
	}
	return out
}

// WriteJSON writes the whole registry as an indented JSON document:
// {"metrics": [...]} with families in registration order.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"metrics": r.snapshot()})
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4). Histogram bucket boundaries are
// rendered in seconds, as the convention requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
			return err
		}
		for _, s := range m.Series {
			labels := promLabels(s.Labels)
			switch m.Type {
			case "counter", "gauge":
				if _, err := fmt.Fprintf(w, "%s%s %d\n", m.Name, labels, *s.Value); err != nil {
					return err
				}
			case "histogram":
				for _, b := range s.Bucket {
					le := "+Inf"
					if b.LeNs >= 0 {
						le = formatSeconds(b.LeNs)
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						m.Name, promLabelsLe(s.Labels, le), b.Count); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, labels, formatSeconds(*s.SumNs)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labels, *s.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// formatSeconds renders nanoseconds as a decimal seconds literal
// without float formatting jitter.
func formatSeconds(ns int64) string {
	s := fmt.Sprintf("%d.%09d", ns/1e9, ns%1e9)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// promLabels renders a label map in sorted-key order.
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// promLabelsLe renders labels plus the histogram `le` bound.
func promLabelsLe(labels map[string]string, le string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for _, k := range keys {
		fmt.Fprintf(&b, `%s="%s",`, k, escapeLabel(labels[k]))
	}
	fmt.Fprintf(&b, `le="%s"}`, le)
	return b.String()
}
