package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseTraceContext(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	got, ok := ParseTraceContext(sc.String())
	if !ok || got != sc {
		t.Fatalf("round trip: got %v ok=%v, want %v", got, ok, sc)
	}
	for _, bad := range []string{
		"",
		"deadbeefdeadbeef",                   // no span half
		"deadbeefdeadbeef-",                  // empty span half
		"-deadbeefdeadbeef",                  // empty trace half
		"DEADBEEFDEADBEEF-deadbeefdeadbeef",  // uppercase hex
		"deadbeefdeadbee-deadbeefdeadbeef",   // 15-char trace
		"deadbeefdeadbeef-deadbeefdeadbeefa", // 17-char span
		"xeadbeefdeadbeef-deadbeefdeadbeef",  // non-hex
	} {
		if _, ok := ParseTraceContext(bad); ok {
			t.Errorf("ParseTraceContext(%q) accepted malformed input", bad)
		}
	}
}

func TestStartSpanNesting(t *testing.T) {
	tr := NewTrace("m.mc")
	outer := tr.StartSpan("request", "request")
	tr.Add("probe", "cache", time.Now(), time.Millisecond)
	inner := tr.StartSpan("analyze", "request")
	tr.Add("parse", "phase", time.Now(), time.Millisecond)
	inner.End()
	tr.Add("relay", "request", time.Now(), time.Millisecond)
	outer.End()

	byName := map[string]Span{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	if byName["request"].Parent != "" {
		t.Errorf("root span has parent %q", byName["request"].Parent)
	}
	for name, wantParent := range map[string]string{
		"probe":   outer.ID(),
		"analyze": outer.ID(),
		"parse":   inner.ID(),
		"relay":   outer.ID(),
	} {
		if got := byName[name].Parent; got != wantParent {
			t.Errorf("span %s: parent = %q, want %q", name, got, wantParent)
		}
	}
	ids := map[string]bool{}
	for _, s := range tr.Spans() {
		if s.ID == "" || ids[s.ID] {
			t.Fatalf("span %s: missing or duplicate ID %q", s.Name, s.ID)
		}
		ids[s.ID] = true
	}
}

func TestStartChildExplicitParent(t *testing.T) {
	tr := NewTrace("m.mc")
	root := tr.StartSpan("request", "request")
	a := tr.StartChild(root.ID(), "attempt", "gateway")
	b := tr.StartChild(root.ID(), "attempt", "gateway")
	a.End("outcome", "ok")
	b.End("outcome", "canceled")
	tr.AddChild(root.ID(), "component", "solve", time.Now(), time.Millisecond)
	root.End()

	n := 0
	for _, s := range tr.Spans() {
		if s.Name == "attempt" || s.Name == "component" {
			n++
			if s.Parent != root.ID() {
				t.Errorf("%s parent = %q, want root %q", s.Name, s.Parent, root.ID())
			}
		}
	}
	if n != 3 {
		t.Fatalf("recorded %d child spans, want 3", n)
	}
	// StartChild must not have disturbed the default-parent stack: the
	// root span still closes as a parentless root.
	last := tr.Spans()[len(tr.Spans())-1]
	if last.Name != "request" || last.Parent != "" {
		t.Errorf("root span disturbed by StartChild: %+v", last)
	}
}

func TestNewTraceContextAdoption(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	tr := NewTraceContext("m.mc", sc)
	if tr.ID() != sc.TraceID {
		t.Fatalf("trace ID = %q, want adopted %q", tr.ID(), sc.TraceID)
	}
	root := tr.StartSpan("analyze", "request")
	root.End()
	if got := tr.Spans()[0].Parent; got != sc.SpanID {
		t.Errorf("root span parent = %q, want propagated %q", got, sc.SpanID)
	}

	// Zero context degrades to a fresh trace with a parentless root.
	fresh := NewTraceContext("m.mc", SpanContext{})
	if fresh.ID() == "" {
		t.Error("zero context produced empty trace ID")
	}
	fresh.Add("x", "phase", time.Now(), 0)
	if p := fresh.Spans()[0].Parent; p != "" {
		t.Errorf("fresh trace root parent = %q, want empty", p)
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTrace("m.mc")
	for i := 0; i < maxTraceSpans+100; i++ {
		tr.Add("s", "phase", time.Now(), 0)
	}
	if got := len(tr.Spans()); got != maxTraceSpans {
		t.Fatalf("span count = %d, want capped at %d", got, maxTraceSpans)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	var traces []*Trace
	for i := 0; i < 4; i++ {
		tr := NewTrace("m.mc")
		traces = append(traces, tr)
		r.Put(tr)
	}
	if r.Get(traces[0].ID()) != nil {
		t.Error("oldest trace not evicted at capacity")
	}
	for _, tr := range traces[1:] {
		if r.Get(tr.ID()) != tr {
			t.Errorf("trace %s missing from ring", tr.ID())
		}
	}
	if r.Len() != 3 {
		t.Errorf("ring len = %d, want 3", r.Len())
	}
	// Nil ring and nil trace are inert.
	var nilRing *TraceRing
	nilRing.Put(traces[1])
	if nilRing.Get(traces[1].ID()) != nil || nilRing.Len() != 0 {
		t.Error("nil ring not inert")
	}
	r.Put(nil)
	if r.Len() != 3 {
		t.Error("nil trace consumed a slot")
	}
	if NewTraceRing(0) != nil || NewTraceRing(-1) != nil {
		t.Error("non-positive capacity should return the disabled ring")
	}
}

func TestWriteChromeExportsMultiProcess(t *testing.T) {
	origin := time.Unix(1700000000, 0).UTC()
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}

	gw := NewTraceContext("m.mc", SpanContext{TraceID: sc.TraceID})
	req := gw.StartSpan("gateway", "request")
	att := gw.StartChild(req.ID(), "attempt", "gateway")
	att.End("backend", "http://r1")
	req.End()

	rep := NewTraceContext("m.mc", SpanContext{TraceID: sc.TraceID, SpanID: att.ID()})
	an := rep.StartSpan("analyze", "request")
	rep.Add("parse", "phase", origin, time.Millisecond)
	an.End()

	var buf bytes.Buffer
	if err := WriteChromeExports(&buf, gw.Export("gateway"), rep.Export("replica http://r1")); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	pids := map[int]bool{}
	procNames := map[string]bool{}
	var analyzeParent, attemptID string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.Args["name"].(string)] = true
			continue
		}
		if ev.Ph != "X" {
			continue
		}
		pids[ev.Pid] = true
		if id, _ := ev.Args["trace_id"].(string); id != sc.TraceID {
			t.Errorf("event %s: trace_id = %q, want shared %q", ev.Name, id, sc.TraceID)
		}
		switch ev.Name {
		case "attempt":
			attemptID, _ = ev.Args["span_id"].(string)
		case "analyze":
			analyzeParent, _ = ev.Args["parent_id"].(string)
		}
	}
	if len(pids) != 2 {
		t.Errorf("merged export spans %d pids, want 2", len(pids))
	}
	if !procNames["gateway"] || !procNames["replica http://r1"] {
		t.Errorf("process_name metadata missing: %v", procNames)
	}
	if analyzeParent == "" || analyzeParent != attemptID {
		t.Errorf("replica analyze parent = %q, want gateway attempt span %q", analyzeParent, attemptID)
	}
	if !strings.Contains(buf.String(), `"displayTimeUnit": "ms"`) {
		t.Error("missing displayTimeUnit")
	}
}

// TestPrometheusLabelEscaping is the regression test for the 0.0.4
// text-format escaping bug: label values containing backslashes,
// quotes, or newlines must appear escaped exactly once in the
// Prometheus exposition, and unescaped (raw) in the JSON exposition.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	raw := "a\\b\"c\nd"
	r.Counter("esc_total", "escaping fixture", "path", raw).Add(7)

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\\b\"c\nd"} 7`
	if !strings.Contains(prom.String(), want) {
		t.Errorf("prometheus exposition:\n%s\nwant line %q", prom.String(), want)
	}
	if strings.Contains(prom.String(), `\\\\`) {
		t.Errorf("double-escaped backslash in exposition:\n%s", prom.String())
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string `json:"name"`
			Series []struct {
				Labels map[string]string `json:"labels"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range doc.Metrics {
		if m.Name != "esc_total" {
			continue
		}
		for _, s := range m.Series {
			found = true
			if got := s.Labels["path"]; got != raw {
				t.Errorf("JSON label value = %q, want raw %q", got, raw)
			}
		}
	}
	if !found {
		t.Fatal("esc_total series missing from JSON exposition")
	}

	// Histogram series escape the same way, including the le form.
	r.Histogram("esc_seconds", "escaping fixture", nil, "path", raw).Observe(time.Millisecond)
	prom.Reset()
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `esc_seconds_bucket{path="a\\b\"c\nd",le=`) {
		t.Errorf("histogram bucket labels not escaped once:\n%s", prom.String())
	}
}
