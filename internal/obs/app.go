package obs

import (
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Phase names mirror faults.Phase (obs cannot import faults — the
// dependency points the other way). The engine records one histogram
// observation per phase per analyzed module.
var phaseNames = []string{"generate", "parse", "typecheck", "infer", "solve", "qual"}

// Mode names mirror the service analysis modes.
var modeNames = []string{"check", "infer", "confine", "qual"}

// Failure kinds mirror faults.Kind.
var failureKinds = []string{"panic", "timeout", "error"}

// Incremental dispositions mirror the service's X-Lna-Incremental
// header values: "cold" (no component reused), "partial" (some
// components replayed, some solved), "full" (every component
// replayed).
var incrementalDispositions = []string{"cold", "partial", "full"}

// AppMetrics is the toolkit's process-wide metric set, registered
// once in the Default registry. Hot paths hold the typed handles
// directly, so recording is an atomic add — no map lookup, no lock.
type AppMetrics struct {
	// Solver work counters, accumulated once per solve from the
	// per-solve Stats block (not per propagation step — the drain loop
	// stays untouched).
	SolveTotal                *Counter
	SolveAtomsPropagated      *Counter
	SolveIntersectionArrivals *Counter
	SolveCondFirings          *Counter
	SolveUnifications         *Counter
	SolveRecanonicalizations  *Counter

	// Partitioned-solver accounting, recorded once per parallel solve
	// (sequential solves don't touch these). SolveComponentSize abuses
	// the duration-based histogram for a unitless quantity: buckets
	// are powers of two of "component size" (variables + intersection
	// nodes + conditionals), rendered as nanosecond bounds.
	SolveComponents    *Counter
	SolveComponentSize *Histogram
	SolveWorkersInUse  *Gauge

	// Component-summary memo accounting (the solver's incremental
	// layer, see solve.Memo): probes that found a reusable component
	// solution, probes that didn't, and LRU evictions.
	SolveMemoHits      *Counter
	SolveMemoMisses    *Counter
	SolveMemoEvictions *Counter

	// Engine accounting: requests by analysis mode, contained
	// failures by kind, and the end-to-end latency distribution.
	requestsByMode map[string]*Counter
	failuresByKind map[string]*Counter
	AnalyzeSeconds *Histogram

	// Per-phase latency distributions (parse/typecheck/infer/solve/…).
	phaseSeconds map[string]*Histogram

	// Result-cache accounting (mirrors the cache's own counters so
	// scrapers see them without a /v1/stats round trip).
	CacheHits      *Counter
	CacheMisses    *Counter
	CacheEvictions *Counter

	// Incremental-engine accounting: analysis requests by how much
	// prior work they reused (see service's X-Lna-Incremental header
	// for the disposition vocabulary).
	incrementalByDisposition map[string]*Counter
}

var (
	appOnce sync.Once
	app     *AppMetrics
)

// App returns the process-wide metric set, registering it in the
// Default registry on first use.
func App() *AppMetrics {
	appOnce.Do(func() {
		r := Default()
		a := &AppMetrics{
			SolveTotal:                r.Counter("lna_solve_total", "Constraint systems solved."),
			SolveAtomsPropagated:      r.Counter("lna_solve_atoms_propagated_total", "Successful solution-set insertions."),
			SolveIntersectionArrivals: r.Counter("lna_solve_intersection_arrivals_total", "Atoms arriving at intersection nodes."),
			SolveCondFirings:          r.Counter("lna_solve_cond_firings_total", "Conditional constraints fired."),
			SolveUnifications:         r.Counter("lna_solve_unifications_total", "Location unifications observed while solving."),
			SolveRecanonicalizations:  r.Counter("lna_solve_recanonicalizations_total", "Incremental re-canonicalization passes."),
			SolveComponents:           r.Counter("lna_solve_components_total", "Connected components solved by partitioned solves."),
			SolveComponentSize:        r.Histogram("lna_solve_component_size", "Partition component sizes (vars+inodes+conds; unitless power-of-two buckets).", componentSizeBounds),
			SolveWorkersInUse:         r.Gauge("lna_solve_workers_inuse", "Worker goroutines used by the most recent partitioned solve."),
			SolveMemoHits:             r.Counter("lna_solve_memo_hits_total", "Component-summary memo hits."),
			SolveMemoMisses:           r.Counter("lna_solve_memo_misses_total", "Component-summary memo misses."),
			SolveMemoEvictions:        r.Counter("lna_solve_memo_evictions_total", "Component-summary memo LRU evictions."),
			AnalyzeSeconds:            r.Histogram("lna_analyze_seconds", "End-to-end per-module analysis latency.", nil),
			requestsByMode:            make(map[string]*Counter, len(modeNames)),
			failuresByKind:            make(map[string]*Counter, len(failureKinds)),
			phaseSeconds:              make(map[string]*Histogram, len(phaseNames)),
			incrementalByDisposition:  make(map[string]*Counter, len(incrementalDispositions)),
			CacheHits:                 r.Counter("lna_cache_hits_total", "Result-cache hits."),
			CacheMisses:               r.Counter("lna_cache_misses_total", "Result-cache misses."),
			CacheEvictions:            r.Counter("lna_cache_evictions_total", "Result-cache LRU evictions."),
		}
		for _, m := range modeNames {
			a.requestsByMode[m] = r.Counter("lna_requests_total", "Analysis requests by mode.", "mode", m)
		}
		for _, k := range failureKinds {
			a.failuresByKind[k] = r.Counter("lna_request_failures_total", "Contained per-module failures by kind.", "kind", k)
		}
		for _, p := range phaseNames {
			a.phaseSeconds[p] = r.Histogram("lna_phase_seconds", "Per-phase analysis latency.", nil, "phase", p)
		}
		for _, d := range incrementalDispositions {
			a.incrementalByDisposition[d] = r.Counter("lna_incremental_requests_total", "Incremental analysis requests by reuse disposition.", "disposition", d)
		}
		app = a
	})
	return app
}

// Requests returns the request counter for an analysis mode (nil, and
// therefore a no-op, for unknown modes).
func (a *AppMetrics) Requests(mode string) *Counter { return a.requestsByMode[mode] }

// Failures returns the contained-failure counter for a faults kind.
func (a *AppMetrics) Failures(kind string) *Counter { return a.failuresByKind[kind] }

// Phase returns the latency histogram for a pipeline phase.
func (a *AppMetrics) Phase(phase string) *Histogram { return a.phaseSeconds[phase] }

// Incremental returns the request counter for a reuse disposition
// (nil, and therefore a no-op, for unknown dispositions).
func (a *AppMetrics) Incremental(disposition string) *Counter {
	return a.incrementalByDisposition[disposition]
}

// RecordSolve folds one solve's work counters into the global
// registry: a handful of atomic adds, called once per solve so the
// propagation loop itself carries no instrumentation.
func (a *AppMetrics) RecordSolve(atomsPropagated, intersectionArrivals, condFirings, unifications, recanons int) {
	a.SolveTotal.Inc()
	a.SolveAtomsPropagated.Add(uint64(atomsPropagated))
	a.SolveIntersectionArrivals.Add(uint64(intersectionArrivals))
	a.SolveCondFirings.Add(uint64(condFirings))
	a.SolveUnifications.Add(uint64(unifications))
	a.SolveRecanonicalizations.Add(uint64(recanons))
}

// componentSizeBounds are power-of-two "sizes" for the component-size
// histogram (the histogram machinery is duration-typed; these are
// unitless counts).
var componentSizeBounds = []time.Duration{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 20,
}

// RecordSolvePartition records one partitioned solve: how many worker
// goroutines ran it and the size of each component.
func (a *AppMetrics) RecordSolvePartition(workers int, componentSizes []int) {
	a.SolveComponents.Add(uint64(len(componentSizes)))
	a.SolveWorkersInUse.Set(int64(workers))
	for _, s := range componentSizes {
		a.SolveComponentSize.Observe(time.Duration(s))
	}
}

// RecordPhase records one phase's elapsed wall clock (no-op for
// phases outside the known set).
func (a *AppMetrics) RecordPhase(phase string, d time.Duration) {
	a.phaseSeconds[phase].Observe(d)
}

// ---------------------------------------------------------------------
// Debug handler (pprof + metrics)

// DebugHandler returns the handler served on the opt-in -debug-addr
// listener: the net/http/pprof suite under /debug/pprof/ and the
// Default registry under /metrics (Prometheus text). It is kept off
// the main service listener so profiling endpoints are never exposed
// on the address that serves analysis traffic.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default().WritePrometheus(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("lna debug listener: /debug/pprof/ and /metrics\n"))
	})
	return mux
}
