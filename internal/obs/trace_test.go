package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceIDUniqueness allocates IDs from many goroutines and
// requires them all distinct — the splitmix64 mixer is bijective, so
// this is a hard guarantee within a process, not a birthday bound.
func TestTraceIDUniqueness(t *testing.T) {
	const workers, per = 16, 2000
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]string, per)
			for i := range out {
				out[i] = NewTraceID()
			}
			ids[w] = out
		}(w)
	}
	wg.Wait()
	seen := make(map[string]bool, workers*per)
	for _, batch := range ids {
		for _, id := range batch {
			if len(id) != 16 {
				t.Fatalf("trace ID %q is not 16 hex chars", id)
			}
			if seen[id] {
				t.Fatalf("duplicate trace ID %q", id)
			}
			seen[id] = true
		}
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("mod.mc")
	if tr.ID() == "" || tr.Module() != "mod.mc" {
		t.Fatal("trace identity not set")
	}
	start := time.Now()
	tr.Add("parse", "phase", start, 3*time.Millisecond)
	end := tr.Start("solve", "phase")
	end("atoms", "17")
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	if spans[0].Name != "parse" || spans[0].Dur != 3*time.Millisecond {
		t.Fatalf("bad first span: %+v", spans[0])
	}
	if spans[1].Name != "solve" || len(spans[1].Args) != 2 {
		t.Fatalf("bad second span: %+v", spans[1])
	}
}

func TestChromeExport(t *testing.T) {
	origin := time.Unix(1000, 0)
	a := NewTrace("a.mc")
	a.Add("parse", "phase", origin, 2*time.Millisecond)
	a.Add("solve", "phase", origin.Add(2*time.Millisecond), 5*time.Millisecond, "atoms", "9")
	b := NewTrace("b.mc")
	b.Add("parse", "phase", origin.Add(time.Millisecond), time.Millisecond)

	var buf bytes.Buffer
	if err := WriteChromeTraces(&buf, a, nil, b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatal("displayTimeUnit missing")
	}
	// 2 thread_name metadata events + 3 spans.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("want 5 events, got %d", len(doc.TraceEvents))
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Fatalf("bad metadata event %+v", ev)
			}
		case "X":
			complete++
			if ev.Ts < 0 {
				t.Fatalf("timestamp before origin: %+v", ev)
			}
			if ev.Args["trace_id"] == "" {
				t.Fatalf("span without trace_id: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 3 {
		t.Fatalf("want 2 metadata + 3 complete events, got %d + %d", meta, complete)
	}
	// a's parse starts at the global origin; b's parse 1ms later.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Tid == 2 && ev.Name == "parse" {
			if ev.Ts != 1000 { // µs
				t.Fatalf("b.parse ts: got %v want 1000µs", ev.Ts)
			}
		}
		if ev.Ph == "X" && ev.Name == "solve" {
			if ev.Args["atoms"] != "9" {
				t.Fatalf("span args lost: %+v", ev.Args)
			}
		}
	}
}

func TestDebugHandler(t *testing.T) {
	App() // ensure the app metric set is registered
	h := DebugHandler()
	for path, want := range map[string]string{
		"/metrics":      "lna_solve_total",
		"/debug/pprof/": "profiles",
		"/":             "debug listener",
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("%s: body missing %q:\n%.400s", path, want, rec.Body.String())
		}
	}
}
