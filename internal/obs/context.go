package obs

import "context"

// Context carriage for the active trace. Instrumented layers that
// already take a context (the engine's bounded analysis, the solver
// pool, the client's round-trip) reach the live trace through it, so
// tracing rides along without new parameters on every signature. A
// context without a span behaves exactly like a nil trace: every
// derived operation no-ops.

type spanCtxKey struct{}

type spanCtxVal struct {
	t      *Trace
	parent string
}

// ContextWithSpan returns a context carrying the trace and the span
// ID that work done under the context should parent under. A nil
// trace returns ctx unchanged.
func ContextWithSpan(ctx context.Context, t *Trace, parent string) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, spanCtxVal{t: t, parent: parent})
}

// SpanFromContext returns the trace and parent span ID carried by the
// context (nil, "" when absent — safe to use directly, since every
// Trace method no-ops on nil). A nil context is treated as empty:
// several solver entry points accept nil for "no deadline".
func SpanFromContext(ctx context.Context) (*Trace, string) {
	if ctx == nil {
		return nil, ""
	}
	if v, ok := ctx.Value(spanCtxKey{}).(spanCtxVal); ok {
		return v.t, v.parent
	}
	return nil, ""
}

// TraceContextFromContext returns the propagation context (trace ID +
// parent span ID) for outbound requests made under ctx, and whether
// one is present. This is what the client stamps into
// TraceContextHeader.
func TraceContextFromContext(ctx context.Context) (SpanContext, bool) {
	t, parent := SpanFromContext(ctx)
	if t == nil {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: t.ID(), SpanID: parent}, true
}
