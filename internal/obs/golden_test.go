package obs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// hex16 matches a bare 16-hex-character ID value in the export.
var hex16 = regexp.MustCompile(`"[0-9a-f]{16}"`)

// normalizeSpanIDs replaces every remaining 16-hex ID (span IDs,
// after trace IDs have been substituted) with SPAN-n placeholders in
// order of first appearance, so parent links stay checkable while the
// process-unique values disappear.
func normalizeSpanIDs(s string) string {
	seen := map[string]string{}
	return hex16.ReplaceAllStringFunc(s, func(m string) string {
		if p, ok := seen[m]; ok {
			return p
		}
		p := fmt.Sprintf(`"SPAN-%d"`, len(seen)+1)
		seen[m] = p
		return p
	})
}

// TestChromeExportGolden pins the exact bytes of the Chrome
// trace_event export for a fixed two-trace scenario. Trace and span
// IDs are the only nondeterministic part of the output (timestamps
// are caller-supplied), so they are normalized to stable placeholders
// before comparison. Regenerate with `go test ./internal/obs -run
// Golden -update` after an intentional format change.
func TestChromeExportGolden(t *testing.T) {
	origin := time.Unix(1700000000, 0).UTC()
	a := NewTrace("alpha.mc")
	a.Add("parse", "phase", origin, 1500*time.Microsecond)
	a.Add("typecheck", "phase", origin.Add(1500*time.Microsecond), 2*time.Millisecond)
	a.Add("solve", "phase", origin.Add(3500*time.Microsecond), 4*time.Millisecond, "atoms", "42")
	a.Add("analyze", "request", origin, 8*time.Millisecond, "module", "alpha.mc", "mode", "qual")
	b := NewTrace("beta.mc")
	b.Add("parse", "phase", origin.Add(time.Millisecond), time.Millisecond)
	b.Add("analyze", "request", origin.Add(time.Millisecond), 3*time.Millisecond, "module", "beta.mc", "mode", "check")

	var buf bytes.Buffer
	if err := WriteChromeTraces(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	got = strings.ReplaceAll(got, a.ID(), "TRACE-A")
	got = strings.ReplaceAll(got, b.ID(), "TRACE-B")
	got = normalizeSpanIDs(got)

	path := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("chrome export deviates from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
