package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------
// Trace and span IDs

// traceSeed distinguishes trace IDs across processes; traceCounter
// distinguishes them within one. The splitmix64 finalizer is a
// bijection over uint64, so distinct counter values always yield
// distinct IDs — the uniqueness tests rely on this, not on chance.
var (
	traceSeed    = uint64(time.Now().UnixNano())
	traceCounter atomic.Uint64
)

// splitmix64 is the splitmix64 output finalizer (a bijective mixer).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID returns a 16-hex-character request trace ID, unique
// within the process and statistically unique across processes.
func NewTraceID() string {
	return fmt.Sprintf("%016x", splitmix64(traceSeed+traceCounter.Add(1)))
}

// NewSpanID returns a 16-hex-character span ID drawn from the same
// process-unique sequence as trace IDs.
func NewSpanID() string { return NewTraceID() }

// ---------------------------------------------------------------------
// Propagated trace context

// TraceContextHeader is the HTTP request header that carries a trace
// context across process boundaries: "<trace id>-<parent span id>",
// both 16 lowercase hex characters. A server that receives it adopts
// the trace ID and parents its root span under the given span, so the
// caller's attempt span becomes the parent of the callee's work.
const TraceContextHeader = "X-Lna-Trace-Context"

// SpanContext identifies one span within one trace — the unit of
// cross-process propagation.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// String renders the wire form carried by TraceContextHeader.
func (sc SpanContext) String() string { return sc.TraceID + "-" + sc.SpanID }

// isHex16 reports whether s is exactly 16 lowercase hex characters.
func isHex16(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ParseTraceContext parses the wire form of TraceContextHeader.
// Malformed values (wrong length, bad hex) report ok=false: a
// propagation header is advisory, never a request error.
func ParseTraceContext(s string) (SpanContext, bool) {
	a, b, found := strings.Cut(s, "-")
	if !found || !isHex16(a) || !isHex16(b) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: a, SpanID: b}, true
}

// ---------------------------------------------------------------------
// Spans

// Span is one completed interval within a trace: a pipeline phase, a
// cache probe, or the whole request. Args carry flat key,value pairs
// (kept as a slice, not a map, so exports are deterministic).
type Span struct {
	ID     string // 16-hex span ID, process-unique
	Parent string // parent span ID; "" for a root span
	Name   string
	Cat    string // coarse category: "phase", "request", "cache", ...
	Start  time.Time
	Dur    time.Duration
	Args   []string
}

// maxTraceSpans bounds one trace's span count so a pathological
// request (thousands of solver components) cannot grow a trace
// without limit; spans past the cap are dropped silently.
const maxTraceSpans = 4096

// Trace collects the spans of one request under a process-unique
// trace ID. The zero of the type is never used; a nil *Trace is the
// disabled state, and every method no-ops on it — instrumented code
// paths never branch on whether tracing is on.
//
// Parentage is assigned two ways. StartSpan pushes its span as the
// trace's default parent until End, so plain Add calls made inside
// the window (pipeline phases, cache probes) nest under it without
// knowing about span IDs at all. Concurrent work — hedged backend
// attempts, solver components on worker goroutines — uses StartChild
// or AddChild with an explicit parent instead, because a shared
// mutable "current parent" is meaningless across goroutines.
type Trace struct {
	id     string
	module string

	mu     sync.Mutex
	spans  []Span
	parent string // current default parent span ID
}

// NewTrace starts an empty trace for the named module, assigning a
// fresh trace ID.
func NewTrace(module string) *Trace {
	return &Trace{id: NewTraceID(), module: module}
}

// NewTraceContext starts a trace for the named module under a
// propagated context: the trace adopts sc.TraceID, and spans recorded
// before any StartSpan parent under sc.SpanID — so a replica's root
// span hangs off the gateway's attempt span in the merged view. A
// zero SpanContext degrades to NewTrace.
func NewTraceContext(module string, sc SpanContext) *Trace {
	t := &Trace{id: sc.TraceID, module: module, parent: sc.SpanID}
	if t.id == "" {
		t.id = NewTraceID()
	}
	return t
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Module returns the module name the trace was started for.
func (t *Trace) Module() string {
	if t == nil {
		return ""
	}
	return t.module
}

// addLocked appends a span, enforcing the cap. Caller holds t.mu.
func (t *Trace) addLocked(s Span) {
	if len(t.spans) < maxTraceSpans {
		t.spans = append(t.spans, s)
	}
}

// Add records one completed span under the current default parent.
// kv is a flat key,value list.
func (t *Trace) Add(name, cat string, start time.Time, dur time.Duration, kv ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.addLocked(Span{ID: NewSpanID(), Parent: t.parent, Name: name, Cat: cat, Start: start, Dur: dur, Args: kv})
	t.mu.Unlock()
}

// AddChild records one completed span under an explicit parent span
// ID, bypassing the default-parent stack. This is the form for spans
// recorded from worker goroutines, where "current parent" is owned by
// some other control flow.
func (t *Trace) AddChild(parent, name, cat string, start time.Time, dur time.Duration, kv ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.addLocked(Span{ID: NewSpanID(), Parent: parent, Name: name, Cat: cat, Start: start, Dur: dur, Args: kv})
	t.mu.Unlock()
}

// Start opens a span now and returns the closure that completes it;
// extra key,value args may be supplied at close time. The span's
// parent is the default parent at close time.
func (t *Trace) Start(name, cat string) func(kv ...string) {
	if t == nil {
		return func(...string) {}
	}
	start := time.Now()
	return func(kv ...string) {
		t.Add(name, cat, start, time.Since(start), kv...)
	}
}

// SpanScope is an open span with an allocated ID, returned by
// StartSpan and StartChild. Its ID is known before the span closes,
// so it can be propagated (into a header, a context, a child span)
// while the work is still running. Nil receivers no-op.
type SpanScope struct {
	t      *Trace
	id     string
	parent string // parent of this span; also the stack value End restores
	name   string
	cat    string
	start  time.Time
	pop    bool // true when StartSpan pushed the default-parent stack
}

// StartSpan opens a span and pushes it as the trace's default parent:
// until End, plain Add/Start calls parent under it. Use for the
// single-threaded nesting of a request's own control flow.
func (t *Trace) StartSpan(name, cat string) *SpanScope {
	if t == nil {
		return nil
	}
	sc := &SpanScope{t: t, id: NewSpanID(), name: name, cat: cat, start: time.Now(), pop: true}
	t.mu.Lock()
	sc.parent = t.parent
	t.parent = sc.id
	t.mu.Unlock()
	return sc
}

// StartChild opens a span under an explicit parent without touching
// the default-parent stack. Use for concurrent work (hedged attempts,
// worker-pool units) where several open spans share one parent.
func (t *Trace) StartChild(parent, name, cat string) *SpanScope {
	if t == nil {
		return nil
	}
	return &SpanScope{t: t, id: NewSpanID(), parent: parent, name: name, cat: cat, start: time.Now()}
}

// ID returns the open span's ID ("" on nil).
func (s *SpanScope) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Context returns the propagation context naming this open span.
func (s *SpanScope) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.t.ID(), SpanID: s.id}
}

// End records the span, with any extra key,value args, and — for
// StartSpan scopes — restores the previous default parent.
func (s *SpanScope) End(kv ...string) {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.t.mu.Lock()
	s.t.addLocked(Span{ID: s.id, Parent: s.parent, Name: s.name, Cat: s.cat, Start: s.start, Dur: dur, Args: kv})
	if s.pop && s.t.parent == s.id {
		s.t.parent = s.parent
	}
	s.t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// ---------------------------------------------------------------------
// Trace export
//
// TraceExport is the wire form of one process's fragment of a trace,
// served by /v1/trace/{id}. The fetcher collects fragments from the
// gateway and each replica and merges them into one Chrome trace;
// absolute microsecond timestamps keep the fragments alignable.

// SpanExport is the wire form of one span.
type SpanExport struct {
	ID     string   `json:"id"`
	Parent string   `json:"parent,omitempty"`
	Name   string   `json:"name"`
	Cat    string   `json:"cat,omitempty"`
	Start  int64    `json:"start_us"` // µs since the Unix epoch
	Dur    int64    `json:"dur_us"`
	Args   []string `json:"args,omitempty"`
}

// TraceExport is one process's fragment of a trace.
type TraceExport struct {
	TraceID string       `json:"trace_id"`
	Process string       `json:"process,omitempty"` // e.g. "gateway", "replica"
	Module  string       `json:"module,omitempty"`
	Spans   []SpanExport `json:"spans"`
}

// Export snapshots the trace as a wire fragment attributed to the
// named process (nil trace exports nil).
func (t *Trace) Export(process string) *TraceExport {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	out := &TraceExport{TraceID: t.ID(), Process: process, Module: t.Module(), Spans: make([]SpanExport, 0, len(spans))}
	for _, s := range spans {
		out.Spans = append(out.Spans, SpanExport{
			ID: s.ID, Parent: s.Parent, Name: s.Name, Cat: s.Cat,
			Start: s.Start.UnixMicro(), Dur: s.Dur.Microseconds(), Args: s.Args,
		})
	}
	return out
}

// ---------------------------------------------------------------------
// Chrome trace_event export
//
// The exporter writes the Chrome trace_event JSON format (the
// chrome://tracing / Perfetto "JSON Array Format"): complete events
// (ph "X") with microsecond timestamps, one tid per trace fragment,
// plus thread_name metadata events naming each fragment's module. In
// the merged multi-process view, each distinct Process name becomes
// its own pid with a process_name metadata event; span_id/parent_id
// in event args carry the exact parent links, which time-containment
// nesting alone cannot (spans from different processes share a
// timeline but not a tid).

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes this trace alone; see WriteChromeTraces.
func (t *Trace) WriteChrome(w io.Writer) error {
	return WriteChromeTraces(w, t)
}

// WriteChromeTraces renders in-process traces as one Chrome
// trace_event JSON document; see WriteChromeExports for the layout.
// All traces share pid 1 (one process, no process_name metadata).
func WriteChromeTraces(w io.Writer, traces ...*Trace) error {
	exports := make([]*TraceExport, 0, len(traces))
	for _, t := range traces {
		if t == nil {
			continue
		}
		exports = append(exports, t.Export(""))
	}
	return WriteChromeExports(w, exports...)
}

// WriteChromeExports renders trace fragments as one Chrome
// trace_event JSON document ({"traceEvents": [...]}). Each distinct
// Process name becomes a pid (fragments with the empty process share
// pid 1 and get no process_name event); each fragment becomes its own
// "thread" (tid) within its pid, named after its module and trace ID.
// Timestamps are relative to the earliest span across all fragments,
// so the viewer's origin is the first event rather than the Unix
// epoch. Every complete event carries trace_id, span_id, and (when
// present) parent_id in its args — the explicit cross-process parent
// links a merged view needs.
func WriteChromeExports(w io.Writer, exports ...*TraceExport) error {
	type proc struct {
		pid     int
		name    string
		nextTid int
	}
	var procs []*proc
	procByName := map[string]*proc{}
	type flat struct {
		pid, tid int
		ex       *TraceExport
	}
	var flats []flat
	var origin int64
	haveOrigin := false
	for _, ex := range exports {
		if ex == nil {
			continue
		}
		p, ok := procByName[ex.Process]
		if !ok {
			p = &proc{pid: len(procs) + 1, name: ex.Process}
			procs = append(procs, p)
			procByName[ex.Process] = p
		}
		p.nextTid++
		flats = append(flats, flat{pid: p.pid, tid: p.nextTid, ex: ex})
		for _, s := range ex.Spans {
			if !haveOrigin || s.Start < origin {
				origin = s.Start
				haveOrigin = true
			}
		}
	}
	events := []chromeEvent{}
	for _, p := range procs {
		if p.name == "" {
			continue
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: p.pid, Tid: 0,
			Args: map[string]any{"name": p.name},
		})
	}
	for _, f := range flats {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: f.pid, Tid: f.tid,
			Args: map[string]any{"name": fmt.Sprintf("%s [%s]", f.ex.Module, f.ex.TraceID)},
		})
	}
	for _, f := range flats {
		for _, s := range f.ex.Spans {
			ev := chromeEvent{
				Name: s.Name,
				Cat:  s.Cat,
				Ph:   "X",
				Ts:   float64(s.Start - origin),
				Dur:  float64(s.Dur),
				Pid:  f.pid,
				Tid:  f.tid,
			}
			ev.Args = make(map[string]any, len(s.Args)/2+3)
			for i := 0; i+1 < len(s.Args); i += 2 {
				ev.Args[s.Args[i]] = s.Args[i+1]
			}
			ev.Args["trace_id"] = f.ex.TraceID
			if s.ID != "" {
				ev.Args["span_id"] = s.ID
			}
			if s.Parent != "" {
				ev.Args["parent_id"] = s.Parent
			}
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
