package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------
// Trace IDs

// traceSeed distinguishes trace IDs across processes; traceCounter
// distinguishes them within one. The splitmix64 finalizer is a
// bijection over uint64, so distinct counter values always yield
// distinct IDs — the uniqueness tests rely on this, not on chance.
var (
	traceSeed    = uint64(time.Now().UnixNano())
	traceCounter atomic.Uint64
)

// splitmix64 is the splitmix64 output finalizer (a bijective mixer).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID returns a 16-hex-character request trace ID, unique
// within the process and statistically unique across processes.
func NewTraceID() string {
	return fmt.Sprintf("%016x", splitmix64(traceSeed+traceCounter.Add(1)))
}

// ---------------------------------------------------------------------
// Spans

// Span is one completed interval within a trace: a pipeline phase, a
// cache probe, or the whole request. Args carry flat key,value pairs
// (kept as a slice, not a map, so exports are deterministic).
type Span struct {
	Name  string
	Cat   string // coarse category: "phase", "request", "cache", ...
	Start time.Time
	Dur   time.Duration
	Args  []string
}

// Trace collects the spans of one request under a process-unique
// trace ID. The zero of the type is never used; a nil *Trace is the
// disabled state, and every method no-ops on it — instrumented code
// paths never branch on whether tracing is on.
type Trace struct {
	id     string
	module string

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts an empty trace for the named module, assigning a
// fresh trace ID.
func NewTrace(module string) *Trace {
	return &Trace{id: NewTraceID(), module: module}
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Module returns the module name the trace was started for.
func (t *Trace) Module() string {
	if t == nil {
		return ""
	}
	return t.module
}

// Add records one completed span. kv is a flat key,value list.
func (t *Trace) Add(name, cat string, start time.Time, dur time.Duration, kv ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Cat: cat, Start: start, Dur: dur, Args: kv})
	t.mu.Unlock()
}

// Start opens a span now and returns the closure that completes it;
// extra key,value args may be supplied at close time.
func (t *Trace) Start(name, cat string) func(kv ...string) {
	if t == nil {
		return func(...string) {}
	}
	start := time.Now()
	return func(kv ...string) {
		t.Add(name, cat, start, time.Since(start), kv...)
	}
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// ---------------------------------------------------------------------
// Chrome trace_event export
//
// The exporter writes the Chrome trace_event JSON format (the
// chrome://tracing / Perfetto "JSON Array Format"): complete events
// (ph "X") with microsecond timestamps, one tid per trace, plus
// thread_name metadata events naming each trace's module.

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes this trace alone; see WriteChromeTraces.
func (t *Trace) WriteChrome(w io.Writer) error {
	return WriteChromeTraces(w, t)
}

// WriteChromeTraces renders the traces as one Chrome trace_event JSON
// document ({"traceEvents": [...]}). Each trace becomes its own
// "thread" (tid), named after its module and trace ID; timestamps are
// relative to the earliest span across all traces, so the viewer's
// origin is the first event rather than the process epoch.
func WriteChromeTraces(w io.Writer, traces ...*Trace) error {
	var origin time.Time
	type flat struct {
		tid   int
		trace *Trace
		spans []Span
	}
	var flats []flat
	tid := 0
	for _, t := range traces {
		if t == nil {
			continue
		}
		tid++
		spans := t.Spans()
		flats = append(flats, flat{tid: tid, trace: t, spans: spans})
		for _, s := range spans {
			if origin.IsZero() || s.Start.Before(origin) {
				origin = s.Start
			}
		}
	}
	events := []chromeEvent{}
	for _, f := range flats {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: f.tid,
			Args: map[string]any{"name": fmt.Sprintf("%s [%s]", f.trace.Module(), f.trace.ID())},
		})
	}
	for _, f := range flats {
		for _, s := range f.spans {
			ev := chromeEvent{
				Name: s.Name,
				Cat:  s.Cat,
				Ph:   "X",
				Ts:   float64(s.Start.Sub(origin)) / float64(time.Microsecond),
				Dur:  float64(s.Dur) / float64(time.Microsecond),
				Pid:  1,
				Tid:  f.tid,
			}
			if len(s.Args) >= 2 {
				ev.Args = make(map[string]any, len(s.Args)/2+1)
				for i := 0; i+1 < len(s.Args); i += 2 {
					ev.Args[s.Args[i]] = s.Args[i+1]
				}
			}
			if ev.Args == nil {
				ev.Args = map[string]any{"trace_id": f.trace.ID()}
			} else {
				ev.Args["trace_id"] = f.trace.ID()
			}
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
