package obs

import "sync"

// TraceRing is a bounded in-memory buffer of recently completed
// traces, keyed by trace ID — the store behind /v1/trace/{id}. When
// full, inserting evicts the oldest entry. A nil ring is the disabled
// state: Put and Get no-op, so servers built with tracing off need no
// branches.
type TraceRing struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*Trace
	order []string // insertion order, oldest first
}

// NewTraceRing returns a ring holding up to n traces; n <= 0 returns
// nil (the disabled ring).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		return nil
	}
	return &TraceRing{cap: n, byID: make(map[string]*Trace, n)}
}

// Put inserts a completed trace, evicting the oldest entry when full.
// Re-inserting an ID already present (a retried request replayed to
// the same process) replaces the stored trace without consuming a
// slot. Nil rings and nil traces no-op.
func (r *TraceRing) Put(t *Trace) {
	if r == nil || t == nil {
		return
	}
	id := t.ID()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; ok {
		r.byID[id] = t
		return
	}
	if len(r.order) >= r.cap {
		oldest := r.order[0]
		r.order = r.order[1:]
		delete(r.byID, oldest)
	}
	r.order = append(r.order, id)
	r.byID[id] = t
}

// Get returns the stored trace for id, or nil.
func (r *TraceRing) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Len returns the number of stored traces.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}
