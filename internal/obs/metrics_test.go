package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafeInstruments(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram must be empty")
	}
	tr.Add("x", "y", time.Now(), 0)
	tr.Start("x", "y")()
	if tr.ID() != "" || tr.Spans() != nil {
		t.Fatal("nil trace must be inert")
	}
}

// TestHistogramBucketBoundaries pins the "le" semantics: an
// observation equal to a bucket's upper bound lands in that bucket;
// one nanosecond more lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	h := NewHistogram(bounds)
	h.Observe(time.Millisecond)       // == bound 0 → bucket 0
	h.Observe(time.Millisecond + 1)   // just over → bucket 1
	h.Observe(10 * time.Millisecond)  // == bound 1 → bucket 1
	h.Observe(99 * time.Millisecond)  // bucket 2
	h.Observe(200 * time.Millisecond) // overflow bucket
	h.Observe(-5 * time.Millisecond)  // clamps to 0 → bucket 0
	s := h.Snapshot()
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count: got %d want 6", s.Count)
	}
	if s.Max != 200*time.Millisecond {
		t.Fatalf("max: got %v", s.Max)
	}
	if s.Sum != time.Millisecond+(time.Millisecond+1)+10*time.Millisecond+99*time.Millisecond+200*time.Millisecond {
		t.Fatalf("sum: got %v", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond})
	// 100 observations uniformly in the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 <= 0 || p50 > 10*time.Millisecond {
		t.Fatalf("p50 %v outside the only populated bucket", p50)
	}
	// Push 100 more into the overflow bucket: p95 must report Max.
	for i := 0; i < 100; i++ {
		h.Observe(time.Second)
	}
	s = h.Snapshot()
	if got := s.Quantile(0.95); got != time.Second {
		t.Fatalf("p95 in overflow bucket must report max; got %v", got)
	}
	if got := s.Quantile(0.25); got > 10*time.Millisecond {
		t.Fatalf("p25 must stay in the first bucket; got %v", got)
	}
	if mean := s.Mean(); mean != (100*5*time.Millisecond+100*time.Second)/200 {
		t.Fatalf("mean: got %v", mean)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile: got %v", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	la := r.Counter("y_total", "help", "mode", "check")
	lb := r.Counter("y_total", "help", "mode", "infer")
	if la == lb {
		t.Fatal("distinct labels must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestGaugeFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("q_depth", "queue", func() int64 { return 1 })
	r.GaugeFunc("q_depth", "queue", func() int64 { return 42 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "q_depth 42") {
		t.Fatalf("last-registered gauge func must win:\n%s", buf.String())
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("lna_requests_total", "Requests by mode.", "mode", "qual").Add(7)
	r.Gauge("lna_queue_depth", "Queue depth.").Set(3)
	h := r.Histogram("lna_phase_seconds", "Phase latency.", []time.Duration{time.Millisecond, time.Second}, "phase", "solve")
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lna_requests_total counter",
		`lna_requests_total{mode="qual"} 7`,
		"# TYPE lna_queue_depth gauge",
		"lna_queue_depth 3",
		"# TYPE lna_phase_seconds histogram",
		`lna_phase_seconds_bucket{phase="solve",le="0.001"} 1`,
		`lna_phase_seconds_bucket{phase="solve",le="1"} 1`,
		`lna_phase_seconds_bucket{phase="solve",le="+Inf"} 2`,
		`lna_phase_seconds_sum{phase="solve"} 2.0005`,
		`lna_phase_seconds_count{phase="solve"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(2)
	r.Histogram("lat_seconds", "L.", []time.Duration{time.Millisecond}, "phase", "parse").Observe(time.Microsecond)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Labels map[string]string `json:"labels"`
				Value  *int64            `json:"value"`
				Count  *uint64           `json:"count"`
				P95Ns  *int64            `json:"p95_ns"`
				Bucket []struct {
					LeNs  int64  `json:"le_ns"`
					Count uint64 `json:"count"`
				} `json:"buckets"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("want 2 families, got %d", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "a_total" || *doc.Metrics[0].Series[0].Value != 2 {
		t.Fatalf("counter family mangled: %+v", doc.Metrics[0])
	}
	hs := doc.Metrics[1].Series[0]
	if hs.Labels["phase"] != "parse" || *hs.Count != 1 {
		t.Fatalf("histogram series mangled: %+v", hs)
	}
	// Buckets are cumulative and end with the +Inf (-1) bucket.
	if last := hs.Bucket[len(hs.Bucket)-1]; last.LeNs != -1 || last.Count != 1 {
		t.Fatalf("bad +Inf bucket: %+v", last)
	}
}

// TestRegistryConcurrent hammers registration and scraping from many
// goroutines; run under -race this is the registry's thread-safety
// proof, and it checks scraped counters are monotonic.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "h")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				r.Counter("hits_total", "h").Add(1)
				r.Histogram("lat", "l", nil, "w", string(rune('a'+w))).Observe(time.Duration(i))
			}
		}(w)
	}
	var prev int64
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WriteJSON(&buf); err != nil {
				t.Error(err)
				return
			}
			var doc struct {
				Metrics []struct {
					Name   string `json:"name"`
					Series []struct {
						Value *int64 `json:"value"`
					} `json:"series"`
				} `json:"metrics"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Error(err)
				return
			}
			for _, m := range doc.Metrics {
				if m.Name == "hits_total" {
					if v := *m.Series[0].Value; v < prev {
						t.Errorf("counter went backwards: %d -> %d", prev, v)
						return
					} else {
						prev = v
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-scraperDone
	if got := c.Value(); got != 8*2000*2 {
		t.Fatalf("lost increments: got %d want %d", got, 8*2000*2)
	}
}
