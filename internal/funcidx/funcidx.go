// Package funcidx indexes a MiniC module's top-level declarations for
// the incremental engine.
//
// The index is a purely lexical view of a module: one entry per
// top-level declaration (fun / global / struct), each keyed by a
// token-stream content hash, plus the reference edges between them —
// which functions a function calls, and which globals (locks
// included) or struct types it mentions. Comparing two revisions'
// indexes yields exactly the declarations that changed, and the
// reverse edges give the invalidation closure: the functions whose
// analysis could be affected by those changes.
//
// The closure is deliberately conservative bookkeeping, not the
// correctness mechanism. The solver's component-summary memo
// (solve.Memo) is content-addressed, so an over- or under-approximate
// closure can never change an analysis result — the index exists so
// the service can report *why* a re-analysis was cheap (disposition
// headers, metrics) and so tests can pin the invalidation rules of
// the design: a comment-only edit changes nothing, editing a function
// invalidates it and its (transitive) callers, editing a shared
// global or lock declaration invalidates every function that touches
// it.
//
// Hashes cover token kinds and spellings only — never positions — so
// whitespace and comment edits are invisible by construction.
package funcidx

import (
	"crypto/sha256"
	"sort"

	"localalias/internal/lexer"
	"localalias/internal/source"
	"localalias/internal/token"
)

// DeclKind classifies a top-level declaration.
type DeclKind uint8

const (
	KindFunc DeclKind = iota
	KindGlobal
	KindStruct
)

func (k DeclKind) String() string {
	switch k {
	case KindFunc:
		return "fun"
	case KindGlobal:
		return "global"
	case KindStruct:
		return "struct"
	}
	return "?"
}

// Decl is one indexed top-level declaration.
type Decl struct {
	Kind DeclKind
	Name string
	// Hash is a SHA-256 over the declaration's token stream (kinds and
	// spellings, no positions): insensitive to whitespace and comments,
	// sensitive to any token-level edit including the signature.
	Hash [32]byte
	// Span covers the declaration in the source (diagnostic use only;
	// never hashed).
	Span source.Span

	// Calls lists the names of indexed functions this function's body
	// mentions; Refs lists the indexed globals (locks are globals) and
	// struct type names it mentions. Both sorted, deduplicated, and
	// empty for non-function declarations.
	Calls []string
	Refs  []string
	// QualifiedCalls lists the "pkg.fn" names this function's body
	// mentions — calls into imported modules. They resolve against
	// *other* modules' indexes (see CrossInvalidated), not this one's.
	// Sorted, deduplicated, empty for non-function declarations.
	QualifiedCalls []string

	// mentions holds the raw identifier spellings seen in a function
	// body during scanning; Build resolves them into Calls/Refs once
	// every declaration is known (forward references).
	mentions []string
}

// Index is the per-module declaration index of one source revision.
type Index struct {
	// Decls in source order.
	Decls []*Decl
	// byKey maps DeclKind.String()+" "+name to the declaration.
	byKey map[string]*Decl
}

// Func returns the indexed function of that name, or nil.
func (ix *Index) Func(name string) *Decl { return ix.byKey["fun "+name] }

// Lookup returns the declaration for a kind and name, or nil.
func (ix *Index) Lookup(kind DeclKind, name string) *Decl {
	return ix.byKey[kind.String()+" "+name]
}

// NumFuncs counts the indexed functions.
func (ix *Index) NumFuncs() int {
	n := 0
	for _, d := range ix.Decls {
		if d.Kind == KindFunc {
			n++
		}
	}
	return n
}

// Build lexes src and indexes its top-level declarations. Lexically
// malformed input degrades gracefully: the scanner's error recovery
// still produces a token stream, and whatever declarations are
// recognizable are indexed (the analysis pipeline itself reports the
// real diagnostics).
func Build(name, src string) *Index {
	var diags source.Diagnostics
	toks := lexer.ScanAll(source.NewFile(name, src), &diags)
	ix := &Index{byKey: make(map[string]*Decl)}

	i := 0
	for toks[i].Kind != token.EOF {
		switch toks[i].Kind {
		case token.KwFun:
			i = scanFunc(toks, i, ix)
		case token.KwGlobal:
			i = scanSimpleDecl(toks, i, ix, KindGlobal)
		case token.KwStruct:
			i = scanBracedDecl(toks, i, ix, KindStruct)
		default:
			// Unknown top-level token (malformed source): skip it.
			i++
		}
	}

	// Resolve each function's identifier mentions against the indexed
	// names. This is post-pass so forward references resolve.
	funcNames := make(map[string]bool)
	refNames := make(map[string]bool)
	for _, d := range ix.Decls {
		switch d.Kind {
		case KindFunc:
			funcNames[d.Name] = true
		default:
			refNames[d.Kind.String()+" "+d.Name] = true
		}
	}
	for _, d := range ix.Decls {
		if d.Kind != KindFunc {
			continue
		}
		calls := map[string]bool{}
		refs := map[string]bool{}
		for _, id := range d.mentions {
			if funcNames[id] && id != d.Name {
				calls[id] = true
			}
			if refNames["global "+id] {
				refs[id] = true
			}
			if refNames["struct "+id] {
				refs[id] = true
			}
		}
		d.Calls = sortedKeys(calls)
		d.Refs = sortedKeys(refs)
	}
	return ix
}

// mentions is collected during scanning and discarded after edge
// resolution; it is unexported state on Decl rather than a parallel
// structure so scanners stay simple.
func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// hashTokens hashes a token slice by kind and spelling. A length
// prefix per token separates spellings so "ab","c" and "a","bc"
// cannot collide.
func hashTokens(toks []lexer.Token) [32]byte {
	h := sha256.New()
	var buf [8]byte
	for _, t := range toks {
		buf[0] = byte(t.Kind)
		buf[1] = byte(t.Kind >> 8)
		n := len(t.Lit)
		buf[2] = byte(n)
		buf[3] = byte(n >> 8)
		buf[4] = byte(n >> 16)
		buf[5] = byte(n >> 24)
		h.Write(buf[:6])
		h.Write([]byte(t.Lit))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func (ix *Index) add(d *Decl) {
	ix.Decls = append(ix.Decls, d)
	ix.byKey[d.Kind.String()+" "+d.Name] = d
}

// scanFunc indexes `fun IDENT ( ... ) [: type] { ... }` starting at
// the KwFun token; returns the index after the declaration.
func scanFunc(toks []lexer.Token, i int, ix *Index) int {
	start := i
	i++ // fun
	name := ""
	if toks[i].Kind == token.Ident {
		name = toks[i].Lit
	}
	// Find the body's opening brace, then the matching close.
	for toks[i].Kind != token.LBrace && toks[i].Kind != token.EOF {
		i++
	}
	depth := 0
	var mentions []string
	qualified := map[string]bool{}
	bodyStart := i
	for toks[i].Kind != token.EOF {
		switch toks[i].Kind {
		case token.LBrace:
			depth++
		case token.RBrace:
			depth--
		case token.Ident:
			if i > bodyStart {
				mentions = append(mentions, toks[i].Lit)
				if toks[i+1].Kind == token.Dot && toks[i+2].Kind == token.Ident {
					qualified[toks[i].Lit+"."+toks[i+2].Lit] = true
				}
			}
		}
		i++
		if depth == 0 {
			break
		}
	}
	if name == "" {
		return i
	}
	d := &Decl{
		Kind:           KindFunc,
		Name:           name,
		Hash:           hashTokens(toks[start:i]),
		Span:           source.Span{Start: toks[start].Span.Start, End: toks[i-1].Span.End},
		mentions:       mentions,
		QualifiedCalls: sortedKeys(qualified),
	}
	ix.add(d)
	return i
}

// scanSimpleDecl indexes a semicolon-terminated declaration
// (`global IDENT : type ;`).
func scanSimpleDecl(toks []lexer.Token, i int, ix *Index, kind DeclKind) int {
	start := i
	i++ // keyword
	name := ""
	if toks[i].Kind == token.Ident {
		name = toks[i].Lit
	}
	for toks[i].Kind != token.Semi && toks[i].Kind != token.EOF {
		i++
	}
	if toks[i].Kind == token.Semi {
		i++
	}
	if name == "" {
		return i
	}
	ix.add(&Decl{
		Kind: kind,
		Name: name,
		Hash: hashTokens(toks[start:i]),
		Span: source.Span{Start: toks[start].Span.Start, End: toks[i-1].Span.End},
	})
	return i
}

// scanBracedDecl indexes a brace-delimited declaration
// (`struct IDENT { fields }`).
func scanBracedDecl(toks []lexer.Token, i int, ix *Index, kind DeclKind) int {
	start := i
	i++ // keyword
	name := ""
	if toks[i].Kind == token.Ident {
		name = toks[i].Lit
	}
	for toks[i].Kind != token.LBrace && toks[i].Kind != token.EOF {
		i++
	}
	depth := 0
	for toks[i].Kind != token.EOF {
		switch toks[i].Kind {
		case token.LBrace:
			depth++
		case token.RBrace:
			depth--
		}
		i++
		if depth == 0 {
			break
		}
	}
	if name == "" {
		return i
	}
	ix.add(&Decl{
		Kind: kind,
		Name: name,
		Hash: hashTokens(toks[start:i]),
		Span: source.Span{Start: toks[start].Span.Start, End: toks[i-1].Span.End},
	})
	return i
}

// ---------------------------------------------------------------------
// Diffing and invalidation

// Delta is the declaration-level difference between two revisions.
// Keys are "kind name" strings ("fun main", "global l", "struct s"),
// each list sorted.
type Delta struct {
	// Changed: present in both revisions with different token hashes.
	Changed []string
	// Added / Removed: present in only one revision. A rename shows up
	// as one Removed plus one Added.
	Added   []string
	Removed []string
}

// Empty reports a revision pair with no declaration-level difference —
// a comment or whitespace-only edit.
func (d Delta) Empty() bool {
	return len(d.Changed) == 0 && len(d.Added) == 0 && len(d.Removed) == 0
}

// Diff compares two revisions' indexes declaration by declaration.
func Diff(old, new *Index) Delta {
	var d Delta
	for key, nd := range new.byKey {
		if od, ok := old.byKey[key]; !ok {
			d.Added = append(d.Added, key)
		} else if od.Hash != nd.Hash {
			d.Changed = append(d.Changed, key)
		}
	}
	for key := range old.byKey {
		if _, ok := new.byKey[key]; !ok {
			d.Removed = append(d.Removed, key)
		}
	}
	sort.Strings(d.Changed)
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	return d
}

// Invalidated computes the set of functions in the new revision whose
// analysis the delta could affect, as sorted names:
//
//   - a changed or added function invalidates itself;
//   - a changed function additionally invalidates its transitive
//     callers (summaries inline callees, so a caller's analysis
//     depends on everything it reaches);
//   - a removed function invalidates its former callers that still
//     exist;
//   - a changed, added, or removed global or struct declaration (a
//     shared lock is a global) invalidates every function that
//     mentions it.
func Invalidated(old, new *Index, d Delta) []string {
	// Reverse call edges over the new revision, plus the old revision's
	// for removed names: a deleted (or renamed-away) function no longer
	// resolves in the new index, so its former call sites are only
	// visible through the old edges.
	callers := make(map[string][]string)
	for _, decl := range new.Decls {
		if decl.Kind != KindFunc {
			continue
		}
		for _, callee := range decl.Calls {
			callers[callee] = append(callers[callee], decl.Name)
		}
	}
	oldCallers := make(map[string][]string)
	for _, decl := range old.Decls {
		if decl.Kind != KindFunc {
			continue
		}
		for _, callee := range decl.Calls {
			oldCallers[callee] = append(oldCallers[callee], decl.Name)
		}
	}

	dirty := make(map[string]bool)
	var markCallers func(name string)
	markCallers = func(name string) {
		for _, c := range callers[name] {
			if !dirty[c] {
				dirty[c] = true
				markCallers(c)
			}
		}
	}

	handle := func(key string, removed bool) {
		kind, name, ok := splitKey(key)
		if !ok {
			return
		}
		switch kind {
		case "fun":
			if !removed {
				dirty[name] = true
				markCallers(name)
				return
			}
			// Removed function: its former callers (from the old call
			// graph) that still exist now dangle or resolve differently.
			for _, c := range oldCallers[name] {
				if new.Func(c) != nil && !dirty[c] {
					dirty[c] = true
					markCallers(c)
				}
			}
		case "global", "struct":
			for _, decl := range new.Decls {
				if decl.Kind != KindFunc {
					continue
				}
				for _, r := range decl.Refs {
					if r == name && !dirty[decl.Name] {
						dirty[decl.Name] = true
						markCallers(decl.Name)
					}
				}
			}
		}
	}
	for _, key := range d.Changed {
		handle(key, false)
	}
	for _, key := range d.Added {
		handle(key, false)
	}
	for _, key := range d.Removed {
		handle(key, true)
	}
	return sortedKeys(dirty)
}

// CrossInvalidated extends the invalidation closure across module
// boundaries: given every module's index, the name of the edited
// module, and its declaration delta, it returns — per *importing*
// module — the functions whose analysis the edit could affect. A
// function is invalidated when its body makes a qualified call
// "edited.fn" to a changed or removed function (a changed callee
// means a changed package summary at that call site; a removed one
// means the import no longer resolves), and the closure then climbs
// that module's local call graph exactly like Invalidated does:
// summaries inline local callees, so a transitive caller in pkg A
// depends on an edited callee in pkg B. The edited module itself is
// not in the result — Invalidated covers it. Like the single-module
// closure this is conservative bookkeeping for dispositions and
// tests; the content-addressed caches are the correctness mechanism.
func CrossInvalidated(indexes map[string]*Index, edited string, d Delta) map[string][]string {
	touched := map[string]bool{}
	collect := func(keys []string) {
		for _, key := range keys {
			if kind, name, ok := splitKey(key); ok && kind == "fun" {
				touched[edited+"."+name] = true
			}
		}
	}
	collect(d.Changed)
	collect(d.Removed)
	if len(touched) == 0 {
		return nil
	}

	out := map[string][]string{}
	for mod, ix := range indexes {
		if mod == edited || ix == nil {
			continue
		}
		callers := make(map[string][]string)
		for _, decl := range ix.Decls {
			if decl.Kind != KindFunc {
				continue
			}
			for _, callee := range decl.Calls {
				callers[callee] = append(callers[callee], decl.Name)
			}
		}
		dirty := make(map[string]bool)
		var markCallers func(name string)
		markCallers = func(name string) {
			for _, c := range callers[name] {
				if !dirty[c] {
					dirty[c] = true
					markCallers(c)
				}
			}
		}
		for _, decl := range ix.Decls {
			if decl.Kind != KindFunc || dirty[decl.Name] {
				continue
			}
			for _, q := range decl.QualifiedCalls {
				if touched[q] {
					dirty[decl.Name] = true
					markCallers(decl.Name)
					break
				}
			}
		}
		if len(dirty) > 0 {
			out[mod] = sortedKeys(dirty)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func splitKey(key string) (kind, name string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == ' ' {
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}
