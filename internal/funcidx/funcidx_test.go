package funcidx

import (
	"reflect"
	"testing"
)

const base = `
struct pair { a: int; b: int; }

global counter: ref int;
global l: lock;

fun leaf(x: int): int {
    return x;
}

fun helper(y: int): int {
    let p = new pair;
    return leaf(y);
}

fun touches_lock(): unit {
    let c = counter;
}

fun main(): int {
    return helper(1);
}
`

func TestBuildIndexesDecls(t *testing.T) {
	ix := Build("m.mc", base)
	if got := ix.NumFuncs(); got != 4 {
		t.Fatalf("indexed %d functions, want 4", got)
	}
	for _, want := range []struct {
		kind DeclKind
		name string
	}{
		{KindStruct, "pair"}, {KindGlobal, "counter"}, {KindGlobal, "l"},
		{KindFunc, "leaf"}, {KindFunc, "helper"}, {KindFunc, "touches_lock"}, {KindFunc, "main"},
	} {
		if ix.Lookup(want.kind, want.name) == nil {
			t.Errorf("missing %s %s", want.kind, want.name)
		}
	}
	if got := ix.Func("helper").Calls; !reflect.DeepEqual(got, []string{"leaf"}) {
		t.Errorf("helper calls %v, want [leaf]", got)
	}
	if got := ix.Func("helper").Refs; !reflect.DeepEqual(got, []string{"pair"}) {
		t.Errorf("helper refs %v, want [pair]", got)
	}
	if got := ix.Func("touches_lock").Refs; !reflect.DeepEqual(got, []string{"counter"}) {
		t.Errorf("touches_lock refs %v, want [counter]", got)
	}
	if got := ix.Func("main").Calls; !reflect.DeepEqual(got, []string{"helper"}) {
		t.Errorf("main calls %v, want [helper]", got)
	}
}

// TestCommentWhitespaceEditInvisible pins the incremental design's
// comment/whitespace rule: a trivia-only edit produces an empty delta,
// so zero functions are invalidated.
func TestCommentWhitespaceEditInvisible(t *testing.T) {
	edited := "// leading comment\n\n/* block\n   comment */\n" + base + "\n\n   // trailing\n"
	d := Diff(Build("m.mc", base), Build("m.mc", edited))
	if !d.Empty() {
		t.Fatalf("trivia-only edit produced a delta: %+v", d)
	}
	if inv := Invalidated(Build("m.mc", base), Build("m.mc", edited), d); len(inv) != 0 {
		t.Fatalf("trivia-only edit invalidated %v", inv)
	}
}

// TestBodyEditInvalidatesCallers: editing leaf's body dirties leaf and
// its transitive callers (helper via the direct call, main via
// helper), but not the unrelated touches_lock.
func TestBodyEditInvalidatesCallers(t *testing.T) {
	edited := replace(t, base, "return x;", "return x + 1;")
	old, new := Build("m.mc", base), Build("m.mc", edited)
	d := Diff(old, new)
	if !reflect.DeepEqual(d.Changed, []string{"fun leaf"}) || len(d.Added)+len(d.Removed) != 0 {
		t.Fatalf("unexpected delta: %+v", d)
	}
	if got := Invalidated(old, new, d); !reflect.DeepEqual(got, []string{"helper", "leaf", "main"}) {
		t.Fatalf("invalidated %v, want [helper leaf main]", got)
	}
}

// TestSignatureChangeInvalidatesCallers: a signature-only edit (the
// body untouched) must still dirty the function and its callers.
func TestSignatureChangeInvalidatesCallers(t *testing.T) {
	edited := replace(t, base, "fun leaf(x: int): int", "fun leaf(x: int, z: int): int")
	old, new := Build("m.mc", base), Build("m.mc", edited)
	d := Diff(old, new)
	if !reflect.DeepEqual(d.Changed, []string{"fun leaf"}) {
		t.Fatalf("unexpected delta: %+v", d)
	}
	if got := Invalidated(old, new, d); !reflect.DeepEqual(got, []string{"helper", "leaf", "main"}) {
		t.Fatalf("invalidated %v, want [helper leaf main]", got)
	}
}

// TestRenameIsRemovePlusAdd: renaming a function is a removal plus an
// addition; the new name is dirty, and the old name's callers are
// dirty because they now dangle (here: helper, and main above it).
func TestRenameIsRemovePlusAdd(t *testing.T) {
	edited := replace(t, base, "fun leaf(", "fun frond(")
	old, new := Build("m.mc", base), Build("m.mc", edited)
	d := Diff(old, new)
	if !reflect.DeepEqual(d.Added, []string{"fun frond"}) || !reflect.DeepEqual(d.Removed, []string{"fun leaf"}) {
		t.Fatalf("unexpected delta: %+v", d)
	}
	got := Invalidated(old, new, d)
	if !reflect.DeepEqual(got, []string{"frond", "helper", "main"}) {
		t.Fatalf("invalidated %v, want [frond helper main]", got)
	}
}

// TestLockHeaderEditInvalidatesAllDependents: editing a shared
// global's declaration (a lock or a plain cell) dirties every function
// that mentions it, plus their callers.
func TestLockHeaderEditInvalidatesAllDependents(t *testing.T) {
	edited := replace(t, base, "global counter: ref int;", "global counter: int;")
	old, new := Build("m.mc", base), Build("m.mc", edited)
	d := Diff(old, new)
	if !reflect.DeepEqual(d.Changed, []string{"global counter"}) {
		t.Fatalf("unexpected delta: %+v", d)
	}
	if got := Invalidated(old, new, d); !reflect.DeepEqual(got, []string{"touches_lock"}) {
		t.Fatalf("invalidated %v, want [touches_lock]", got)
	}
}

// TestStructEditInvalidatesUsers: a struct edit dirties the functions
// mentioning the type and their transitive callers.
func TestStructEditInvalidatesUsers(t *testing.T) {
	edited := replace(t, base, "struct pair { a: int; b: int; }", "struct pair { a: int; b: int; c: int; }")
	old, new := Build("m.mc", base), Build("m.mc", edited)
	d := Diff(old, new)
	if !reflect.DeepEqual(d.Changed, []string{"struct pair"}) {
		t.Fatalf("unexpected delta: %+v", d)
	}
	// helper uses pair; main calls helper.
	if got := Invalidated(old, new, d); !reflect.DeepEqual(got, []string{"helper", "main"}) {
		t.Fatalf("invalidated %v, want [helper main]", got)
	}
}

// TestHashesArePositionFree: the same declaration at different offsets
// hashes identically.
func TestHashesArePositionFree(t *testing.T) {
	a := Build("m.mc", base)
	b := Build("m.mc", "\n\n// shift everything\n"+base)
	for _, d := range a.Decls {
		od := b.Lookup(d.Kind, d.Name)
		if od == nil {
			t.Fatalf("%s %s missing after shift", d.Kind, d.Name)
		}
		if od.Hash != d.Hash {
			t.Errorf("%s %s hash changed under a pure position shift", d.Kind, d.Name)
		}
		if od.Span == d.Span {
			t.Errorf("%s %s span did not shift (test is vacuous)", d.Kind, d.Name)
		}
	}
}

// TestMalformedSourceDegrades: garbage input still builds an index of
// the recognizable declarations instead of failing.
func TestMalformedSourceDegrades(t *testing.T) {
	ix := Build("m.mc", "??? fun ok() { } @@@ global g: int; fun { }")
	if ix.Func("ok") == nil {
		t.Error("recognizable function not indexed")
	}
	if ix.Lookup(KindGlobal, "g") == nil {
		t.Error("recognizable global not indexed")
	}
}

// pkgB / pkgA model an import edge: pkgA's entry function reaches
// pkgB's exported pulse through a local helper chain, so a pulse edit
// must climb A's local call graph after crossing the boundary.
const pkgB = `
global l: lock;

fun pulse(): unit {
    spin_lock(&l);
    spin_unlock(&l);
}

fun idle(): unit {
    let x = 1;
}
`

const pkgA = `
import "b";

fun wrapper(): unit {
    b.pulse();
}

fun entry(): unit {
    wrapper();
}

fun unrelated(): unit {
    b.idle();
}
`

// TestQualifiedCallsIndexed: a qualified call shows up on the caller's
// declaration as a "pkg.fn" edge, not as an unresolved local mention.
func TestQualifiedCallsIndexed(t *testing.T) {
	ix := Build("a.mc", pkgA)
	if got := ix.Func("wrapper").QualifiedCalls; !reflect.DeepEqual(got, []string{"b.pulse"}) {
		t.Errorf("wrapper qualified calls %v, want [b.pulse]", got)
	}
	if got := ix.Func("wrapper").Calls; len(got) != 0 {
		t.Errorf("wrapper local calls %v, want none", got)
	}
	if got := ix.Func("entry").QualifiedCalls; len(got) != 0 {
		t.Errorf("entry qualified calls %v, want none (boundary crossed via wrapper)", got)
	}
}

// TestCrossModuleInvalidation is the satellite scenario: the caller
// lives in pkg A, the edited callee in pkg B. Editing b.pulse must
// invalidate A's wrapper (the qualified call site) and entry (its
// transitive local caller), but not unrelated — and editing b.idle
// must flip exactly the complement.
func TestCrossModuleInvalidation(t *testing.T) {
	ixA, ixB := Build("a.mc", pkgA), Build("b.mc", pkgB)
	indexes := map[string]*Index{"a": ixA, "b": ixB}

	editedB := replace(t, pkgB, "spin_unlock(&l);", "spin_unlock(&l);\n    let y = 2;")
	d := Diff(ixB, Build("b.mc", editedB))
	if !reflect.DeepEqual(d.Changed, []string{"fun pulse"}) {
		t.Fatalf("unexpected delta: %+v", d)
	}
	got := CrossInvalidated(indexes, "b", d)
	want := map[string][]string{"a": {"entry", "wrapper"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CrossInvalidated = %v, want %v", got, want)
	}

	// The complementary edit: only the b.idle call site is dirtied,
	// and nothing climbs from it (no local callers of unrelated).
	editedIdle := replace(t, pkgB, "let x = 1;", "let x = 2;")
	d = Diff(ixB, Build("b.mc", editedIdle))
	got = CrossInvalidated(indexes, "b", d)
	if want := (map[string][]string{"a": {"unrelated"}}); !reflect.DeepEqual(got, want) {
		t.Errorf("CrossInvalidated = %v, want %v", got, want)
	}

	// A removed exported function invalidates its importers too (the
	// qualified call now dangles).
	removed := replace(t, pkgB, "fun pulse(): unit {\n    spin_lock(&l);\n    spin_unlock(&l);\n}\n", "")
	d = Diff(ixB, Build("b.mc", removed))
	if !reflect.DeepEqual(d.Removed, []string{"fun pulse"}) {
		t.Fatalf("unexpected delta: %+v", d)
	}
	got = CrossInvalidated(indexes, "b", d)
	if want := (map[string][]string{"a": {"entry", "wrapper"}}); !reflect.DeepEqual(got, want) {
		t.Errorf("CrossInvalidated = %v, want %v", got, want)
	}

	// A trivia-only edit crosses no boundary.
	d = Diff(ixB, Build("b.mc", "// comment\n"+pkgB))
	if got := CrossInvalidated(indexes, "b", d); got != nil {
		t.Errorf("trivia-only edit invalidated %v across modules", got)
	}
}

func replace(t *testing.T, src, old, new string) string {
	t.Helper()
	i := index(src, old)
	if i < 0 {
		t.Fatalf("edit target %q not found", old)
	}
	return src[:i] + new + src[i+len(old):]
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
