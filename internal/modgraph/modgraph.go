// Package modgraph links separately-parsed MiniC modules into a whole
// program. It builds the module dependency DAG from import
// declarations, condenses it (cycle members are rejected with
// positioned diagnostics, Go-style), and schedules a parallel
// bottom-up pass over the condensation: each module is analyzed after
// its dependencies, receiving their package summaries — exported
// signatures, qualifier transfer tables per experiment variant, and
// per-formal effect masks — so call sites into imported functions
// apply the callee's actual behavior instead of worst-case havoc.
//
// Failure containment mirrors the corpus driver's: a module that
// fails to parse, type check, or analyze is recorded and skipped, and
// its importers still run — resolving the failed package's surface
// from its parse tree and havocing calls into it. The same fallback
// covers import cycles, so one bad package degrades precision
// downstream instead of failing the program.
package modgraph

import (
	"fmt"
	"sort"

	"localalias/internal/ast"
	"localalias/internal/core"
	"localalias/internal/obs"
	"localalias/internal/parser"
	"localalias/internal/solve"
	"localalias/internal/source"
)

// Source is one named module's text. The name is the package name
// importers use: `import "name";`.
type Source struct {
	Name string
	Text string
}

// Options configures the whole-program pass.
type Options struct {
	// Workers bounds analysis concurrency over the dependency DAG;
	// <= 1 runs sequentially. Results are identical either way.
	Workers int
	// Havoc disables summary application: imported calls degrade to
	// worst-case effects, reproducing per-module analysis in
	// isolation. The differential baseline for the summary pass.
	Havoc bool
	// General/NoParams/NoLets forward the per-module experiment
	// switches (see core.LockingOptions).
	General  bool
	NoParams bool
	NoLets   bool
	// SolverWorkers bounds the constraint solver's concurrency
	// within each module.
	SolverWorkers int
	// Memo, when non-nil, lets per-module solves replay
	// content-addressed component summaries.
	Memo *solve.Memo
	// Cache, when non-nil, memoizes whole-module outcomes
	// content-addressed over source, options, and dependency
	// fingerprints — editing a package invalidates exactly its
	// downstream cone.
	Cache *SummaryCache
	// Trace, when non-nil, receives one span per scheduled module
	// (category "modgraph"), parented under TraceParent; the module's
	// own solver components nest under its span. The runner schedules
	// modules on worker goroutines, so the trace travels by option
	// rather than by context.
	Trace *obs.Trace
	// TraceParent is the span ID module spans parent under (typically
	// the request's analyze span).
	TraceParent string
}

// Finding is one rendered analysis error.
type Finding struct {
	Pos string `json:"pos"`
	Msg string `json:"msg"`
}

// ModeOutcome is one experiment column's findings.
type ModeOutcome struct {
	Errors []Finding `json:"errors"`
}

// Outcome is the distilled, cache-replayable analysis outcome of one
// module: the Section 7 locking report with rendered positions,
// indexed by core.Variant*.
type Outcome struct {
	Sites   int                           `json:"sites"`
	Planted int                           `json:"planted"`
	Kept    int                           `json:"kept"`
	Modes   [core.NumVariants]ModeOutcome `json:"modes"`
}

// Errors returns the error count of one variant column.
func (o *Outcome) Errors(v int) int { return len(o.Modes[v].Errors) }

// ModuleResult is one module's outcome within the program.
type ModuleResult struct {
	Name string
	// Deps are the declared import paths, sorted and deduplicated.
	Deps []string
	// Module carries the loaded AST and diagnostics (nil when the
	// outcome was replayed from the summary cache).
	Module *core.Module
	// Locking is the full per-module result (nil on cache replay or
	// failure).
	Locking *core.LockingResult
	// Outcome is the distilled report (nil when the module failed).
	Outcome *Outcome
	// API is the package summary published to importers (nil on
	// failure or in havoc mode).
	API *core.PackageAPI
	// Err is the load or analysis failure, if any.
	Err error
	// Cyclic marks members of an import cycle.
	Cyclic bool
	// CacheHit marks outcomes replayed from the summary cache.
	CacheHit bool
	// Fingerprint is the content-addressed identity of this module's
	// analysis: source, options, and dependency fingerprints.
	Fingerprint [32]byte
}

// Failed reports whether the module produced no outcome.
func (m *ModuleResult) Failed() bool { return m.Err != nil }

// Result is the whole-program outcome.
type Result struct {
	// Modules holds every input module's result, keyed by name.
	Modules map[string]*ModuleResult
	// Order is the deterministic bottom-up schedule (topological,
	// lexicographic tie-break); cycle members are excluded.
	Order []string
	// Cycles lists each detected import cycle in path order.
	Cycles [][]string
}

// Errors sums one variant column over all analyzed modules.
func (r *Result) Errors(v int) int {
	n := 0
	for _, m := range r.Modules {
		if m.Outcome != nil {
			n += m.Outcome.Errors(v)
		}
	}
	return n
}

// Failures returns the names of failed modules, sorted.
func (r *Result) Failures() []string {
	var out []string
	for name, m := range r.Modules {
		if m.Failed() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// parsed is the pre-analysis view of one module.
type parsed struct {
	src   Source
	prog  *ast.Program
	diags *source.Diagnostics
	deps  []string // sorted, deduplicated declared imports
}

// Analyze links and analyzes a multi-module program bottom-up over
// its import DAG. Duplicate module names are an error on the later
// occurrence.
func Analyze(sources []Source, opts Options) *Result {
	res := &Result{Modules: make(map[string]*ModuleResult)}

	// Parse everything once to extract the import graph. The analysis
	// phase re-loads through core (parse is cheap and keeps the
	// fault-contained pipeline intact).
	count := make(map[string]int)
	for _, s := range sources {
		count[s.Name]++
	}
	mods := make(map[string]*parsed)
	var names []string
	for _, s := range sources {
		if count[s.Name] > 1 {
			// Ambiguous: all occurrences of the name fail (there is
			// no principled way to pick one for importers).
			res.Modules[s.Name] = &ModuleResult{
				Name: s.Name,
				Err:  fmt.Errorf("%s: duplicate module name", s.Name),
			}
			continue
		}
		diags := &source.Diagnostics{}
		prog := parser.Parse(s.Name, s.Text, diags)
		seen := map[string]bool{}
		var deps []string
		for _, im := range prog.Imports {
			if !seen[im.Path] {
				seen[im.Path] = true
				deps = append(deps, im.Path)
			}
		}
		sort.Strings(deps)
		mods[s.Name] = &parsed{src: s, prog: prog, diags: diags, deps: deps}
		names = append(names, s.Name)
	}
	sort.Strings(names)

	// Condense: reject cycle members with positioned diagnostics.
	cyclic := findCycles(mods, names, res)

	// Deterministic bottom-up order over the acyclic remainder.
	res.Order = topoOrder(mods, names, cyclic)

	run := newRunner(mods, cyclic, opts, res)
	run.execute()
	return res
}

// findCycles detects import cycles (including self-imports), records
// a positioned diagnostic and a failed ModuleResult for each member,
// and returns the member set.
func findCycles(mods map[string]*parsed, names []string, res *Result) map[string]bool {
	cyclic := make(map[string]bool)
	// Iterative DFS with an explicit path for cycle reporting.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var path []string
	var visit func(string)
	visit = func(n string) {
		color[n] = grey
		path = append(path, n)
		for _, d := range mods[n].deps {
			if mods[d] == nil {
				continue // missing package: reported by typecheck
			}
			switch color[d] {
			case white:
				visit(d)
			case grey:
				// Found a back edge: the cycle is path[i..] for the
				// first i with path[i] == d.
				i := 0
				for path[i] != d {
					i++
				}
				cycle := append(append([]string{}, path[i:]...), d)
				res.Cycles = append(res.Cycles, cycle)
				for _, m := range path[i:] {
					cyclic[m] = true
				}
			}
		}
		path = path[:len(path)-1]
		color[n] = black
	}
	for _, n := range names {
		if color[n] == white {
			visit(n)
		}
	}
	// A member of any cycle fails with a diagnostic at the import
	// declaration that participates in the cycle.
	for _, cycle := range res.Cycles {
		inCycle := make(map[string]bool, len(cycle))
		for _, m := range cycle {
			inCycle[m] = true
		}
		for _, m := range cycle[:len(cycle)-1] {
			p := mods[m]
			for _, im := range p.prog.Imports {
				if inCycle[im.Path] {
					p.diags.Errorf(p.prog.File, im.Sp, "modgraph",
						"import cycle: %s", cycleString(cycle, m))
					break
				}
			}
		}
	}
	for _, n := range names {
		if cyclic[n] {
			p := mods[n]
			res.Modules[n] = &ModuleResult{
				Name:   n,
				Deps:   p.deps,
				Cyclic: true,
				Module: &core.Module{Name: n, Prog: p.prog, Diags: p.diags},
				Err:    fmt.Errorf("%s: import cycle", n),
			}
		}
	}
	return cyclic
}

// cycleString renders a cycle starting from member m: "a -> b -> a".
func cycleString(cycle []string, m string) string {
	// cycle is closed (first == last); rotate so m leads.
	ring := cycle[:len(cycle)-1]
	start := 0
	for i, n := range ring {
		if n == m {
			start = i
			break
		}
	}
	s := ""
	for i := 0; i <= len(ring); i++ {
		if i > 0 {
			s += " -> "
		}
		s += ring[(start+i)%len(ring)]
	}
	return s
}

// topoOrder returns a deterministic bottom-up order (Kahn's algorithm
// with a sorted frontier) over the non-cyclic modules.
func topoOrder(mods map[string]*parsed, names []string, cyclic map[string]bool) []string {
	pending := make(map[string]int)
	dependents := make(map[string][]string)
	for _, n := range names {
		if cyclic[n] {
			continue
		}
		cnt := 0
		for _, d := range mods[n].deps {
			if mods[d] != nil && !cyclic[d] {
				cnt++
				dependents[d] = append(dependents[d], n)
			}
		}
		pending[n] = cnt
	}
	var frontier []string
	for _, n := range names {
		if !cyclic[n] && pending[n] == 0 {
			frontier = append(frontier, n)
		}
	}
	sort.Strings(frontier)
	var order []string
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		next := dependents[n]
		sort.Strings(next)
		for _, d := range next {
			pending[d]--
			if pending[d] == 0 {
				frontier = append(frontier, d)
				sort.Strings(frontier)
			}
		}
	}
	return order
}
