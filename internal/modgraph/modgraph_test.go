package modgraph

import (
	"reflect"
	"strings"
	"testing"

	"localalias/internal/core"
	"localalias/internal/drivergen"
)

func stackSources(leaves int) []Source {
	var srcs []Source
	for _, m := range drivergen.XStack(leaves) {
		srcs = append(srcs, Source{Name: m.Name, Text: m.Source})
	}
	return srcs
}

func triple(o *Outcome) drivergen.Triple {
	return drivergen.Triple{
		NoConfine: o.Errors(core.VariantNoConfine),
		Confine:   o.Errors(core.VariantWithConfine),
		AllStrong: o.Errors(core.VariantAllStrong),
	}
}

// TestXStackExpectations runs the multi-module stack under both
// per-module havoc and the summary pass and checks every module's
// measured error triple against the generator's calibrated
// expectations — the numbers are measured, never fed in.
func TestXStackExpectations(t *testing.T) {
	mods := drivergen.XStack(6)
	srcs := stackSources(6)

	havoc := Analyze(srcs, Options{Havoc: true})
	summary := Analyze(srcs, Options{})
	for _, r := range []*Result{havoc, summary} {
		if f := r.Failures(); len(f) != 0 {
			t.Fatalf("unexpected failures: %v", f)
		}
	}

	for _, m := range mods {
		h := triple(havoc.Modules[m.Name].Outcome)
		s := triple(summary.Modules[m.Name].Outcome)
		if h != m.ExpHavoc {
			t.Errorf("%s havoc: got %+v, want %+v", m.Name, h, m.ExpHavoc)
		}
		if s != m.ExpSummary {
			t.Errorf("%s summary: got %+v, want %+v", m.Name, s, m.ExpSummary)
		}
	}

	// The acceptance property: the summary pass eliminates strictly
	// more errors than havoc in every mode column.
	for v := 0; v < core.NumVariants; v++ {
		if summary.Errors(v) >= havoc.Errors(v) {
			t.Errorf("variant %d: summary %d errors, havoc %d — want strictly fewer",
				v, summary.Errors(v), havoc.Errors(v))
		}
	}
}

// TestCrossModuleBugFinding checks that the planted cross-module
// double-acquire — invisible to per-module havoc — is reported by the
// summary pass at the offending call site with the callee's
// precondition.
func TestCrossModuleBugFinding(t *testing.T) {
	res := Analyze(stackSources(3), Options{})
	out := res.Modules["xdrv00"].Outcome
	found := false
	for _, e := range out.Modes[core.VariantWithConfine].Errors {
		if strings.Contains(e.Msg, "xio.pulse") && strings.Contains(e.Msg, "must be unlocked") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing call-site finding for cross-module double acquire; got %+v",
			out.Modes[core.VariantWithConfine].Errors)
	}
}

// TestCrossModuleDifferential is the CI corpus differential: wherever
// per-module havoc proved the absence of errors at a lock-op site,
// the summary pass must agree. Summary-only findings at imported call
// sites (ops containing a dot) are new information about callee
// preconditions, which havoc does not model, and are excluded.
func TestCrossModuleDifferential(t *testing.T) {
	srcs := stackSources(9)
	havoc := Analyze(srcs, Options{Havoc: true, Workers: 4})
	summary := Analyze(srcs, Options{Workers: 4})
	for name, hm := range havoc.Modules {
		sm := summary.Modules[name]
		if hm.Outcome == nil || sm == nil || sm.Outcome == nil {
			t.Fatalf("%s: missing outcome", name)
		}
		for v := 0; v < core.NumVariants; v++ {
			bad := map[string]bool{}
			for _, e := range hm.Outcome.Modes[v].Errors {
				bad[e.Pos] = true
			}
			for _, e := range sm.Outcome.Modes[v].Errors {
				if strings.Contains(e.Msg, ".") && !strings.HasPrefix(e.Msg, "spin_") {
					continue // imported-call precondition: havoc never checked it
				}
				if !bad[e.Pos] {
					t.Errorf("%s v%d: summary error at %s where havoc proved absence: %s",
						name, v, e.Pos, e.Msg)
				}
			}
		}
	}
}

// TestParallelDeterminism checks that the DAG pass produces identical
// outcomes and fingerprints regardless of worker count.
func TestParallelDeterminism(t *testing.T) {
	srcs := stackSources(8)
	seq := Analyze(srcs, Options{Workers: 1})
	par := Analyze(srcs, Options{Workers: 8})
	if !reflect.DeepEqual(seq.Order, par.Order) {
		t.Fatalf("order differs: %v vs %v", seq.Order, par.Order)
	}
	for name, sm := range seq.Modules {
		pm := par.Modules[name]
		if sm.Fingerprint != pm.Fingerprint {
			t.Errorf("%s: fingerprint differs across worker counts", name)
		}
		if !reflect.DeepEqual(sm.Outcome, pm.Outcome) {
			t.Errorf("%s: outcome differs across worker counts", name)
		}
	}
}

// TestMissingImport checks the positioned diagnostic for an import of
// a package not present in the program.
func TestMissingImport(t *testing.T) {
	res := Analyze([]Source{
		{Name: "app", Text: "import \"nosuch\";\nfun f() { work(); }\n"},
	}, Options{})
	mr := res.Modules["app"]
	if !mr.Failed() {
		t.Fatal("expected failure for missing import")
	}
	msg := mr.Module.Diags.Err().Error()
	if !strings.Contains(msg, "cannot resolve import \"nosuch\"") {
		t.Fatalf("diagnostic = %q, want missing-package text", msg)
	}
	if !strings.Contains(msg, "app:1:") {
		t.Fatalf("diagnostic %q not positioned at the import declaration", msg)
	}
}

// TestImportCycle checks Go-style cycle rejection: every member fails
// with a positioned diagnostic naming the cycle, and an importer of a
// cycle member still analyzes via the parse-level surface fallback.
func TestImportCycle(t *testing.T) {
	res := Analyze([]Source{
		{Name: "a", Text: "import \"b\";\nfun fa() { b.fb(); }\n"},
		{Name: "b", Text: "import \"a\";\nfun fb() { a.fa(); }\n"},
		{Name: "top", Text: "import \"a\";\nfun go_() { a.fa(); }\n"},
	}, Options{})

	if len(res.Cycles) != 1 {
		t.Fatalf("cycles = %v, want one", res.Cycles)
	}
	for _, name := range []string{"a", "b"} {
		mr := res.Modules[name]
		if !mr.Cyclic || !mr.Failed() {
			t.Fatalf("%s: want cyclic failure, got %+v", name, mr)
		}
		msg := mr.Module.Diags.Err().Error()
		if !strings.Contains(msg, "import cycle: "+name+" -> ") {
			t.Fatalf("%s diagnostic = %q, want cycle path from %s", name, msg, name)
		}
		if !strings.Contains(msg, name+":1:") {
			t.Fatalf("%s diagnostic %q not positioned at the import", name, msg)
		}
	}
	// top still analyzes: a's surface comes from its parse tree and
	// the call into the failed package is havoc'd.
	top := res.Modules["top"]
	if top.Failed() {
		t.Fatalf("top should analyze despite cyclic dep: %v", top.Err)
	}
	if top.Outcome == nil || triple(top.Outcome) != (drivergen.Triple{}) {
		t.Fatalf("top outcome = %+v, want clean", top.Outcome)
	}
}

// TestSelfImport checks that a self-import is a one-element cycle.
func TestSelfImport(t *testing.T) {
	res := Analyze([]Source{
		{Name: "solo", Text: "import \"solo\";\nfun f() { work(); }\n"},
	}, Options{})
	mr := res.Modules["solo"]
	if !mr.Cyclic {
		t.Fatalf("self-import not detected: %+v", mr)
	}
	if msg := mr.Module.Diags.Err().Error(); !strings.Contains(msg, "import cycle: solo -> solo") {
		t.Fatalf("diagnostic = %q", msg)
	}
}

// TestDuplicateModuleName checks the later duplicate is rejected.
func TestDuplicateModuleName(t *testing.T) {
	res := Analyze([]Source{
		{Name: "m", Text: "fun f() { work(); }\n"},
		{Name: "m", Text: "fun g() { work(); }\n"},
	}, Options{})
	if mr := res.Modules["m"]; !mr.Failed() || !strings.Contains(mr.Err.Error(), "duplicate module name") {
		t.Fatalf("duplicate not rejected: %+v", res.Modules["m"])
	}
}

// TestSingleModuleUnchanged checks that a module without imports gets
// exactly the same report through modgraph as through core directly:
// the linking layer must not perturb single-module results.
func TestSingleModuleUnchanged(t *testing.T) {
	spec := drivergen.Corpus()[0]
	src := spec.Source()

	res := Analyze([]Source{{Name: spec.Name, Text: src}}, Options{})
	mr := res.Modules[spec.Name]
	if mr.Failed() {
		t.Fatal(mr.Err)
	}

	m, err := core.LoadModule(spec.Name, src)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := m.AnalyzeLocking(core.LockingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := distill(m, lr)
	if !reflect.DeepEqual(mr.Outcome, want) {
		t.Fatalf("modgraph outcome %+v != direct outcome %+v", mr.Outcome, want)
	}
}

// TestSummaryCacheInvalidation checks the content-addressed cache:
// an unchanged rerun replays every module; editing a library
// invalidates exactly that library and its downstream import cone.
func TestSummaryCacheInvalidation(t *testing.T) {
	cache := NewSummaryCache()
	srcs := stackSources(4) // xhdr, xio, xqueue, xdrv00..03

	first := Analyze(srcs, Options{Cache: cache})
	if f := first.Failures(); len(f) != 0 {
		t.Fatalf("failures: %v", f)
	}
	for name, mr := range first.Modules {
		if mr.CacheHit {
			t.Fatalf("%s: hit on cold cache", name)
		}
	}

	second := Analyze(srcs, Options{Cache: cache})
	for name, mr := range second.Modules {
		if !mr.CacheHit {
			t.Fatalf("%s: miss on warm cache", name)
		}
		if !reflect.DeepEqual(mr.Outcome, first.Modules[name].Outcome) {
			t.Fatalf("%s: replayed outcome differs", name)
		}
	}

	// Edit xio (a comment suffices: the fingerprint is content-based).
	edited := make([]Source, len(srcs))
	copy(edited, srcs)
	for i := range edited {
		if edited[i].Name == "xio" {
			edited[i].Text += "// rev2\n"
		}
	}
	third := Analyze(edited, Options{Cache: cache})
	wantMiss := map[string]bool{"xio": true}
	for _, m := range drivergen.XStack(4) {
		for _, d := range m.Deps {
			if d == "xio" {
				wantMiss[m.Name] = true
			}
		}
	}
	for name, mr := range third.Modules {
		if wantMiss[name] && mr.CacheHit {
			t.Errorf("%s: want re-analysis after upstream edit, got cache hit", name)
		}
		if !wantMiss[name] && !mr.CacheHit {
			t.Errorf("%s: want cache hit (outside the edited cone), got miss", name)
		}
	}
	// The edit was semantically neutral, so downstream outcomes match.
	for name, mr := range third.Modules {
		if !reflect.DeepEqual(mr.Outcome, first.Modules[name].Outcome) {
			t.Errorf("%s: outcome changed after neutral edit", name)
		}
	}
}

// TestHavocAndSummaryCacheSeparate checks the two modes never share
// cache entries (options are part of the fingerprint).
func TestHavocAndSummaryCacheSeparate(t *testing.T) {
	cache := NewSummaryCache()
	srcs := stackSources(1)
	Analyze(srcs, Options{Cache: cache})
	res := Analyze(srcs, Options{Cache: cache, Havoc: true})
	for name, mr := range res.Modules {
		if mr.CacheHit {
			t.Fatalf("%s: havoc run hit a summary-mode entry", name)
		}
	}
	if hits, _ := cache.Stats(); hits != 0 {
		t.Fatalf("hits = %d, want 0", hits)
	}
}

// TestTopoOrder checks the schedule is bottom-up and deterministic.
func TestTopoOrder(t *testing.T) {
	res := Analyze(stackSources(2), Options{})
	pos := map[string]int{}
	for i, n := range res.Order {
		pos[n] = i
	}
	for _, m := range drivergen.XStack(2) {
		for _, d := range m.Deps {
			if pos[d] >= pos[m.Name] {
				t.Errorf("%s scheduled before its dependency %s", m.Name, d)
			}
		}
	}
}
