package modgraph

import (
	"sync"

	"localalias/internal/core"
)

// SummaryCache memoizes per-module analysis outcomes across
// whole-program runs. Entries are content-addressed by the module
// fingerprint — a hash chaining the module's source, the analysis
// options, and the fingerprints of every dependency — so an edit to
// one package invalidates exactly that package and its downstream
// import cone; unrelated packages replay their cached summaries and
// reports without re-analysis.
//
// Cached values are replayed by pointer and must be treated as
// immutable by callers (the analysis never mutates a published API or
// Outcome after construction).
type SummaryCache struct {
	mu      sync.Mutex
	entries map[[32]byte]*cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	api     *core.PackageAPI
	outcome *Outcome
}

// NewSummaryCache returns an empty cache. It is safe for concurrent
// use by the parallel DAG pass.
func NewSummaryCache() *SummaryCache {
	return &SummaryCache{entries: make(map[[32]byte]*cacheEntry)}
}

func (c *SummaryCache) lookup(fp [32]byte) (*core.PackageAPI, *Outcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[fp]; ok {
		c.hits++
		return e.api, e.outcome, true
	}
	c.misses++
	return nil, nil, false
}

func (c *SummaryCache) store(fp [32]byte, api *core.PackageAPI, out *Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[fp] = &cacheEntry{api: api, outcome: out}
}

// Stats returns the lookup hit/miss counters.
func (c *SummaryCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached modules.
func (c *SummaryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
