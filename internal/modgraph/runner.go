package modgraph

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"

	"localalias/internal/ast"
	"localalias/internal/core"
	"localalias/internal/effects"
	"localalias/internal/obs"
	"localalias/internal/qual"
	"localalias/internal/types"
)

// runner executes the bottom-up pass. Each module runs after all its
// (acyclic, present) dependencies; the per-module work is the
// standard core pipeline plus summary export. Module results are
// deterministic regardless of worker count because a module's inputs
// are exactly its source, the options, and its dependencies'
// published APIs.
type runner struct {
	mods   map[string]*parsed
	cyclic map[string]bool
	opts   Options
	res    *Result

	mu sync.Mutex // guards res.Modules writes during parallel execution
}

func newRunner(mods map[string]*parsed, cyclic map[string]bool, opts Options, res *Result) *runner {
	return &runner{mods: mods, cyclic: cyclic, opts: opts, res: res}
}

func (r *runner) execute() {
	order := r.res.Order
	if r.opts.Workers <= 1 || len(order) < 2 {
		for _, name := range order {
			r.analyze(name)
		}
		return
	}

	// Dependency-scheduled worker pool: a module enters the ready
	// queue when its last unfinished dependency completes (atomic
	// countdown, same shape as the solver's component scheduler).
	pending := make(map[string]*int32, len(order))
	dependents := make(map[string][]string)
	for _, n := range order {
		cnt := int32(0)
		for _, d := range r.mods[n].deps {
			if r.mods[d] != nil && !r.cyclic[d] {
				cnt++
				dependents[d] = append(dependents[d], n)
			}
		}
		c := cnt
		pending[n] = &c
	}

	ready := make(chan string, len(order))
	for _, n := range order {
		if atomic.LoadInt32(pending[n]) == 0 {
			ready <- n
		}
	}

	workers := r.opts.Workers
	if workers > len(order) {
		workers = len(order)
	}
	var done int32
	total := int32(len(order))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for name := range ready {
				r.analyze(name)
				for _, d := range dependents[name] {
					if atomic.AddInt32(pending[d], -1) == 0 {
						ready <- d
					}
				}
				if atomic.AddInt32(&done, 1) == total {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
}

// depAPI returns the published API of dependency d, or nil when d is
// missing, failed, or summaries are disabled.
func (r *runner) depAPI(d string) *core.PackageAPI {
	r.mu.Lock()
	defer r.mu.Unlock()
	if mr := r.res.Modules[d]; mr != nil {
		return mr.API
	}
	return nil
}

// depSigs returns the exported type surface of dependency d: the
// analyzed module's checked exports when available, else a parse-level
// extraction (the havoc fallback for failed deps and cycle members).
// Returns nil when d is not among the program's modules.
func (r *runner) depSigs(d string) *types.PkgSig {
	p := r.mods[d]
	if p == nil {
		return nil
	}
	r.mu.Lock()
	mr := r.res.Modules[d]
	r.mu.Unlock()
	if mr != nil && !mr.Failed() && mr.Module != nil && mr.Module.TInfo != nil {
		return mr.Module.TInfo.Exports(d)
	}
	return sigsFromParse(d, p.prog)
}

// analyze runs one module with its dependencies' summaries in scope
// and publishes the result.
func (r *runner) analyze(name string) {
	p := r.mods[name]
	mr := &ModuleResult{Name: name, Deps: p.deps}

	// Per-module span: analyze runs on worker goroutines, so the
	// parent is explicit (the request's analyze span), never the
	// trace's default-parent stack.
	span := r.opts.Trace.StartChild(r.opts.TraceParent, "module:"+name, "modgraph")
	defer func() {
		outcome := "analyzed"
		switch {
		case mr.CacheHit:
			outcome = "cache_hit"
		case mr.Err != nil:
			outcome = "failed"
		}
		span.End("module", name, "deps", fmt.Sprintf("%d", len(p.deps)), "outcome", outcome)
	}()

	// Build the import environment and the content fingerprint in one
	// pass over the (sorted) dependency list.
	sigs := make(types.ImportSigs)
	effs := make(map[string][]effects.Mask)
	var trans [core.NumVariants]qual.Transfers
	h := sha256.New()
	h.Write([]byte("lna-xmod/v1\x00"))
	fmt.Fprintf(h, "havoc=%t;general=%t;noparams=%t;nolets=%t\x00",
		r.opts.Havoc, r.opts.General, r.opts.NoParams, r.opts.NoLets)
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(p.src.Text))
	for _, d := range p.deps {
		h.Write([]byte{0})
		h.Write([]byte(d))
		h.Write([]byte{0})
		dp := r.mods[d]
		if dp == nil {
			h.Write([]byte("missing"))
			continue // unresolved: typecheck reports it
		}
		var dfp [32]byte
		r.mu.Lock()
		dmr := r.res.Modules[d]
		r.mu.Unlock()
		if dmr != nil && !dmr.Failed() {
			dfp = dmr.Fingerprint
		} else {
			// Failed dependency: chain its source identity so fixing
			// it invalidates this module too.
			dfp = sha256.Sum256([]byte("failed\x00" + d + "\x00" + dp.src.Text))
		}
		h.Write(dfp[:])
		if ps := r.depSigs(d); ps != nil {
			sigs[d] = ps
		}
		if api := r.depAPI(d); api != nil && !r.opts.Havoc {
			for fn, masks := range api.Effects {
				effs[d+"."+fn] = masks
			}
			for v := 0; v < core.NumVariants; v++ {
				for fn, pts := range api.Transfers[v] {
					if trans[v] == nil {
						trans[v] = make(qual.Transfers)
					}
					trans[v][d+"."+fn] = pts
				}
			}
		}
	}
	copy(mr.Fingerprint[:], h.Sum(nil))

	if r.opts.Cache != nil {
		if api, out, ok := r.opts.Cache.lookup(mr.Fingerprint); ok {
			mr.CacheHit = true
			mr.API = api
			mr.Outcome = out
			r.publish(mr)
			return
		}
	}

	m, err := core.LoadModuleWith(name, p.src.Text, sigs, nil)
	mr.Module = m
	if err != nil {
		mr.Err = err
		r.publish(mr)
		return
	}
	// The module span becomes the parent of this module's solver
	// component spans (solveParallel reads the trace from ctx).
	ctx := obs.ContextWithSpan(context.Background(), r.opts.Trace, span.ID())
	lr, err := m.AnalyzeLockingCtx(ctx, core.LockingOptions{
		General:         r.opts.General,
		NoParams:        r.opts.NoParams,
		NoLets:          r.opts.NoLets,
		SolverWorkers:   r.opts.SolverWorkers,
		Memo:            r.opts.Memo,
		ImportEffects:   importEffects(effs, r.opts.Havoc),
		ImportTransfers: importTransfers(trans, r.opts.Havoc),
		ExportAPI:       !r.opts.Havoc,
	}, nil)
	if err != nil {
		mr.Err = fmt.Errorf("%s: %w", name, err)
		r.publish(mr)
		return
	}
	mr.Locking = lr
	mr.API = lr.API
	mr.Outcome = distill(m, lr)
	if r.opts.Cache != nil {
		r.opts.Cache.store(mr.Fingerprint, mr.API, mr.Outcome)
	}
	r.publish(mr)
}

func (r *runner) publish(mr *ModuleResult) {
	r.mu.Lock()
	r.res.Modules[mr.Name] = mr
	r.mu.Unlock()
}

// importEffects returns nil (full havoc) in havoc mode, and an empty
// non-nil map otherwise so that unknown callees still havoc while
// known ones apply their masks.
func importEffects(effs map[string][]effects.Mask, havoc bool) map[string][]effects.Mask {
	if havoc {
		return nil
	}
	return effs
}

func importTransfers(trans [core.NumVariants]qual.Transfers, havoc bool) [core.NumVariants]qual.Transfers {
	if havoc {
		return [core.NumVariants]qual.Transfers{}
	}
	return trans
}

// distill reduces a full locking result to its cache-replayable form:
// counts plus rendered findings per experiment variant.
func distill(m *core.Module, lr *core.LockingResult) *Outcome {
	out := &Outcome{
		Sites:   lr.NoConfine.NumSites,
		Planted: lr.Confine.Planted,
		Kept:    len(lr.Confine.Kept),
	}
	reports := [core.NumVariants]*qual.Report{
		core.VariantNoConfine:   lr.NoConfine,
		core.VariantWithConfine: lr.WithConfine,
		core.VariantAllStrong:   lr.AllStrong,
	}
	for v, rep := range reports {
		mo := ModeOutcome{Errors: []Finding{}}
		for _, e := range rep.Errors {
			mo.Errors = append(mo.Errors, Finding{
				Pos: m.Prog.File.Position(e.Site.Start).String(),
				Msg: e.String(),
			})
		}
		out.Modes[v] = mo
	}
	return out
}

// sigsFromParse extracts the exportable function surface of a module
// from its parse tree alone, without type checking: enough for
// importers of a failed module (cycle member, type error) to resolve
// calls into it and havoc their effects instead of failing
// themselves. Portable types mention no module-local struct names, so
// parse-level resolution agrees with the checker's on every function
// it admits.
func sigsFromParse(name string, prog *ast.Program) *PkgSigFromParse {
	ps := &types.PkgSig{Name: name, Funs: make(map[string]*types.FunSig)}
	for _, f := range prog.Funs {
		sig := &types.FunSig{Decl: f, Name: f.Name}
		ok := true
		for _, prm := range f.Params {
			t := portableType(prm.Type)
			if t == nil {
				ok = false
				break
			}
			sig.Params = append(sig.Params, t)
		}
		if !ok {
			continue
		}
		if sig.Result = portableType(f.Result); sig.Result == nil {
			continue
		}
		if _, dup := ps.Funs[f.Name]; !dup {
			ps.Funs[f.Name] = sig
		}
	}
	return ps
}

// PkgSigFromParse aliases types.PkgSig; the separate name documents
// call sites that run on unchecked surfaces.
type PkgSigFromParse = types.PkgSig

// portableType resolves a parse-level type expression to a checked
// type if it is portable (prim/ref/array only); nil result means
// non-portable. A nil expression is the implicit unit result.
func portableType(te ast.TypeExpr) types.Type {
	switch te := te.(type) {
	case nil:
		return &types.Prim{Kind: ast.PrimUnit}
	case *ast.PrimType:
		return &types.Prim{Kind: te.Kind}
	case *ast.RefType:
		elem := portableType(te.Elem)
		if elem == nil {
			return nil
		}
		return &types.Ref{Elem: elem}
	case *ast.ArrayType:
		elem := portableType(te.Elem)
		if elem == nil {
			return nil
		}
		return &types.Array{Elem: elem, Size: te.Size}
	default: // *ast.NamedType
		return nil
	}
}
