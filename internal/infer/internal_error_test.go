package infer

// Regression tests for the fault-containment fix: unification
// mismatches (which standard checking should prevent, but malformed
// inputs or checker bugs can still produce) used to panic and kill
// the process. They now record positioned internal-error diagnostics
// naming both types, and mark the run failed via InternalErrors.

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/effects"
	"localalias/internal/locs"
	"localalias/internal/source"
	"localalias/internal/types"
)

func newTestBuilder(t *testing.T) (*builder, *source.Diagnostics, *source.File) {
	t.Helper()
	ls := locs.NewStore()
	sys := effects.NewSystem(ls)
	b := newBuilder(ls, sys)
	diags := &source.Diagnostics{}
	file := source.NewFile("bad.mc", "fun f(): int { return 0; }\n")
	b.diags, b.file = diags, file
	b.site = source.Span{Start: 15, End: 24} // the return statement
	return b, diags, file
}

func TestUnifyKindMismatchIsDiagnosed(t *testing.T) {
	b, diags, _ := newTestBuilder(t)
	intT := b.build(types.IntType, modePlaceholder, "x", nil)
	refT := b.build(&types.Ref{Elem: types.IntType}, modePlaceholder, "y", nil)

	func() {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("unify panicked: %v", p)
			}
		}()
		b.unify(intT, refT)
	}()

	if b.internal != 1 {
		t.Fatalf("internal = %d, want 1", b.internal)
	}
	if !diags.HasErrors() {
		t.Fatal("no diagnostic recorded")
	}
	d := diags.List[0]
	msg := d.String()
	// The diagnostic names both types and carries the source span.
	for _, want := range []string{"internal error", "int", "ref"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q lacks %q", msg, want)
		}
	}
	if d.Span.Start != 15 {
		t.Errorf("diagnostic span %+v, want start 15", d.Span)
	}
	if pos := d.File.Position(d.Span.Start); pos.Line != 1 || pos.Column != 16 {
		t.Errorf("position = %v, want 1:16", pos)
	}
}

func TestUnifyDistinctStructsIsDiagnosed(t *testing.T) {
	b, diags, _ := newTestBuilder(t)
	declA := &ast.StructDecl{Name: "a"}
	declB := &ast.StructDecl{Name: "b"}
	b.structReg = map[string]*ast.StructDecl{"a": declA, "b": declB}
	sa := b.build(&types.Named{Decl: declA}, modePlaceholder, "x", nil)
	sb := b.build(&types.Named{Decl: declB}, modePlaceholder, "y", nil)

	func() {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("unify panicked: %v", p)
			}
		}()
		b.unify(sa, sb)
	}()

	if b.internal != 1 || !diags.HasErrors() {
		t.Fatalf("internal = %d, errors = %v", b.internal, diags.HasErrors())
	}
	msg := diags.List[0].String()
	for _, want := range []string{"internal error", "struct types a and b"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q lacks %q", msg, want)
		}
	}
}
