package infer

import (
	"localalias/internal/ast"
	"localalias/internal/effects"
	"localalias/internal/locs"
	"localalias/internal/types"
)

// mkRef creates a fresh ref node over an existing content type.
func (b *builder) mkRef(cell locs.Loc, elem *LType, name string) *LType {
	n := b.newNode(LRef, name)
	n.cell = cell
	n.elem = elem
	b.sys.AddAtom(effects.Atom{Kind: effects.LocAtom, Loc: cell}, n.tvar)
	b.sys.AddVarIncl(elem.TVar(), n.tvar)
	return n
}

// matchesConfined reports whether e is an occurrence of the confined
// expression pat (syntactic equality with symbol-resolved variables;
// see types.Info.EqualResolved).
func (inf *inferencer) matchesConfined(e, pat ast.Expr) bool {
	return inf.tinfo.EqualResolved(e, pat)
}

// expr infers the located type of e, adding its evaluation effects to
// sink. The result is also recorded in Result.LTypes.
func (inf *inferencer) expr(e ast.Expr, sink effects.Var, env effects.Var) *LType {
	// Active confine scopes: occurrences of the confined expression
	// denote the effectful variable x_π′ (innermost first).
	for i := len(inf.confines) - 1; i >= 0; i-- {
		ctx := inf.confines[i]
		if inf.matchesConfined(e, ctx.expr) {
			inf.sys.AddVarIncl(ctx.pi, sink)
			inf.res.LTypes[e] = ctx.xT
			return ctx.xT
		}
	}
	t := inf.expr1(e, sink, env)
	inf.res.LTypes[e] = t
	return t
}

func (inf *inferencer) expr1(e ast.Expr, sink effects.Var, env effects.Var) *LType {
	switch e := e.(type) {
	case *ast.IntLit:
		return inf.b.intT

	case *ast.VarExpr:
		sym := inf.tinfo.Uses[e]
		if sym == nil {
			return inf.b.intT
		}
		if sym.Kind == types.SymGlobal {
			gi := inf.globals[sym.Name]
			if gi == nil {
				return inf.b.intT
			}
			// A scalar global used as a value reads its cell.
			if gi.cell != locs.NoLoc {
				inf.sys.AddAtom(effects.Atom{Kind: effects.Read, Loc: gi.cell}, sink)
			}
			return gi.content
		}
		if lt := inf.res.SymLTypes[sym]; lt != nil {
			return lt
		}
		return inf.b.intT

	case *ast.NewExpr:
		if sd := inf.tinfo.StructAllocs[e]; sd != nil {
			// Heap struct allocation: fresh instance whose cells are
			// conservatively multi (a new-site may execute many
			// times); alloc effects on the storage the instantiation
			// created. The ref's own cell is a placeholder naming the
			// instance — field storage lives in the instance's field
			// cells.
			before := len(inf.b.cellsMade)
			instT := inf.b.build(&types.Named{Decl: sd}, modeHeap,
				"new "+sd.Name, nil)
			for _, c := range inf.b.cellsMade[before:] {
				if inf.ls.InfoOf(c).Origins > 0 {
					inf.sys.AddAtom(effects.Atom{Kind: effects.Alloc, Loc: c}, sink)
				}
			}
			return inf.b.mkRef(inf.ls.Fresh("&"+sd.Name), instT, "new "+sd.Name)
		}
		initT := inf.expr(e.Init, sink, env)
		rho := inf.ls.FreshStorage("new@" + posOf(inf, e))
		inf.ls.MarkMulti(rho)
		inf.sys.AddAtom(effects.Atom{Kind: effects.Alloc, Loc: rho}, sink)
		return inf.b.mkRef(rho, initT, "new")

	case *ast.DerefExpr:
		xT := inf.expr(e.X, sink, env)
		if xT.Kind() != LRef {
			return inf.b.intT
		}
		inf.sys.AddAtom(effects.Atom{Kind: effects.Read, Loc: xT.Cell()}, sink)
		return xT.Elem()

	case *ast.AddrExpr:
		cell, content := inf.place(e.X, sink, env)
		if content == nil {
			return inf.b.mkRef(inf.ls.Fresh("&?"), inf.b.intT, "&?")
		}
		if cell == locs.NoLoc {
			// Addressing aggregate storage (a struct global): the
			// pointer's cell is a placeholder naming the instance;
			// field storage lives in the instance's field cells.
			cell = inf.ls.Fresh("&" + ast.ExprString(e.X))
		}
		return inf.b.mkRef(cell, content, "&"+ast.ExprString(e.X))

	case *ast.IndexExpr, *ast.FieldExpr:
		cell, content := inf.place(e, sink, env)
		if content == nil {
			return inf.b.intT
		}
		if cell != locs.NoLoc {
			inf.sys.AddAtom(effects.Atom{Kind: effects.Read, Loc: cell}, sink)
		}
		return content

	case *ast.BinExpr:
		inf.expr(e.X, sink, env)
		inf.expr(e.Y, sink, env)
		return inf.b.intT

	case *ast.UnExpr:
		inf.expr(e.X, sink, env)
		return inf.b.intT

	case *ast.CallExpr:
		return inf.call(e, sink, env)

	default:
		return inf.b.intT
	}
}

func posOf(inf *inferencer, e ast.Expr) string {
	if inf.tinfo.Prog.File == nil {
		return "?"
	}
	return inf.tinfo.Prog.File.Position(e.Span().Start).String()
}

// call infers a builtin or user call.
func (inf *inferencer) call(e *ast.CallExpr, sink effects.Var, env effects.Var) *LType {
	if types.IsLockOp(e.Fun) {
		if len(e.Args) == 1 {
			at := inf.expr(e.Args[0], sink, env)
			if at.Kind() == LRef {
				// The change_type builtins update the resource's
				// state: a write effect on its cell.
				inf.sys.AddAtom(effects.Atom{Kind: effects.Write, Loc: at.Cell()}, sink)
			}
		}
		return inf.b.unitT
	}
	switch e.Fun {
	case "work":
		return inf.b.unitT
	case "print":
		for _, a := range e.Args {
			inf.expr(a, sink, env)
		}
		return inf.b.unitT
	}
	if _, _, ok := ast.SplitQualified(e.Fun); ok {
		return inf.importedCall(e, sink, env)
	}
	fi := inf.funs[e.Fun]
	if fi == nil {
		for _, a := range e.Args {
			inf.expr(a, sink, env)
		}
		return inf.b.intT
	}
	for i, a := range e.Args {
		at := inf.expr(a, sink, env)
		if i < len(fi.params) && at.Kind() == fi.params[i].Kind() {
			inf.b.site = a.Span()
			inf.b.unify(at, fi.params[i])
		}
	}
	// The call has the callee's latent effect.
	inf.sys.AddVarIncl(fi.eff, sink)
	return fi.result
}

// importedCall infers a call into another module (pkg.fn). The
// callee's body is unavailable, so its latent effect is stood in for
// either by the effect signature the cross-module pass supplied
// (Options.ImportEffects) or by worst-case havoc. In both cases the
// argument types themselves join the sink, so restrict/confine scopes
// treat the call as an escape point for anything reachable from the
// arguments — the callee may retain aliases in its own globals.
func (inf *inferencer) importedCall(e *ast.CallExpr, sink effects.Var, env effects.Var) *LType {
	masks, haveSig := inf.opts.ImportEffects[e.Fun]
	for i, a := range e.Args {
		at := inf.expr(a, sink, env)
		if at.Kind() != LRef {
			continue
		}
		inf.sys.AddVarIncl(at.TVar(), sink)
		mask := effects.HavocMask
		if haveSig {
			mask = 0
			if i < len(masks) {
				mask = masks[i]
			}
		}
		for _, cell := range effCells(at, nil, nil) {
			for _, k := range [...]effects.Kind{effects.Read, effects.Write, effects.Alloc} {
				if mask.Has(k) {
					inf.sys.AddAtom(effects.Atom{Kind: k, Loc: cell}, sink)
				}
			}
		}
	}
	// Result storage is shared per callee: two calls to the same
	// imported function may alias through their results.
	rt := inf.imported[e.Fun]
	if rt == nil {
		var sig *types.FunSig
		if pkg, name, ok := ast.SplitQualified(e.Fun); ok {
			if ps := inf.tinfo.Imports[pkg]; ps != nil {
				sig = ps.Funs[name]
			}
		}
		if sig == nil {
			rt = inf.b.intT
		} else {
			rt = inf.b.build(sig.Result, modeHeap, e.Fun+".ret", nil)
		}
		inf.imported[e.Fun] = rt
	}
	return rt
}

// ParamCells returns the canonical storage cells reachable from
// formal i of function f — the locations a caller's argument exposes
// to the callee. For restrict formals both the outer ρ and the bound
// copy ρ′ are included, so effect masks computed against the solved
// latent effect cover accesses made through either.
func (r *Result) ParamCells(f *ast.FunDecl, i int) []locs.Loc {
	if i >= len(f.Params) {
		return nil
	}
	p := f.Params[i]
	var out []locs.Loc
	if b := r.Bindings[p]; b != nil {
		out = append(out, r.Locs.Find(b.Rho), r.Locs.Find(b.RhoP))
	}
	sym := r.TInfo.Binders[p]
	if sym != nil {
		for _, c := range effCells(r.SymLTypes[sym], nil, nil) {
			out = append(out, r.Locs.Find(c))
		}
	}
	return out
}

// effCells collects the storage cells reachable from t — the cells a
// callee receiving a value of type t could touch.
func effCells(t *LType, out []locs.Loc, seen map[*LType]bool) []locs.Loc {
	if t == nil {
		return out
	}
	t = t.find()
	if seen[t] {
		return out
	}
	if seen == nil {
		seen = make(map[*LType]bool)
	}
	seen[t] = true
	switch t.kind {
	case LRef, LArray:
		if t.cell != locs.NoLoc {
			out = append(out, t.cell)
		}
		out = effCells(t.elem, out, seen)
	case LStruct:
		for i := range t.fields {
			if t.fcells[i] != locs.NoLoc {
				out = append(out, t.fcells[i])
			}
			out = effCells(t.fields[i], out, seen)
		}
	}
	return out
}

// place infers e as a place, returning its storage cell and content
// type. Index/selector subexpressions contribute their evaluation
// effects to sink; addressing itself has no effect.
func (inf *inferencer) place(e ast.Expr, sink effects.Var, env effects.Var) (locs.Loc, *LType) {
	cell, content := inf.place1(e, sink, env)
	if content != nil {
		inf.res.LTypes[e] = content
	}
	if cell != locs.NoLoc {
		inf.res.PlaceCells[e] = cell
	}
	return cell, content
}

func (inf *inferencer) place1(e ast.Expr, sink effects.Var, env effects.Var) (locs.Loc, *LType) {
	// Confined occurrences are values, not places; but a place
	// subexpression can itself be an occurrence (e.g. (*p).f where
	// *p is confined? — *p is not a bare place under confine, the
	// whole of e is matched first by expr()).
	switch e := e.(type) {
	case *ast.VarExpr:
		sym := inf.tinfo.Uses[e]
		if sym == nil || sym.Kind != types.SymGlobal {
			return locs.NoLoc, nil
		}
		gi := inf.globals[sym.Name]
		if gi == nil {
			return locs.NoLoc, nil
		}
		return gi.cell, gi.content

	case *ast.DerefExpr:
		xT := inf.expr(e.X, sink, env)
		if xT.Kind() != LRef {
			return locs.NoLoc, nil
		}
		return xT.Cell(), xT.Elem()

	case *ast.IndexExpr:
		_, xContent := inf.place(e.X, sink, env)
		inf.expr(e.Index, sink, env)
		if xContent == nil || xContent.Kind() != LArray {
			return locs.NoLoc, nil
		}
		return xContent.Cell(), xContent.Elem()

	case *ast.FieldExpr:
		var sT *LType
		if e.Arrow {
			xT := inf.expr(e.X, sink, env)
			if xT.Kind() != LRef {
				return locs.NoLoc, nil
			}
			sT = xT.Elem()
		} else {
			_, sT = inf.place(e.X, sink, env)
		}
		if sT == nil || sT.Kind() != LStruct {
			return locs.NoLoc, nil
		}
		st := sT.find()
		for i, f := range st.decl.Fields {
			if f.Name == e.Name {
				return st.fcells[i], st.fields[i]
			}
		}
		return locs.NoLoc, nil

	default:
		return locs.NoLoc, nil
	}
}
