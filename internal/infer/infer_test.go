package infer

import (
	"strings"
	"testing"

	"localalias/internal/ast"
	"localalias/internal/effects"
	"localalias/internal/parser"
	"localalias/internal/solve"
	"localalias/internal/source"
	"localalias/internal/types"
)

func run(t *testing.T, src string, opts Options) (*Result, *solve.Result) {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %s", diags.String())
	}
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("types: %s", diags.String())
	}
	res := Run(tinfo, &diags, opts)
	return res, solve.Solve(res.Sys)
}

// findCallArg returns the argument expression of the first call to fn.
func findCallArg(prog *ast.Program, fn string) ast.Expr {
	var out ast.Expr
	ast.Inspect(prog, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && c.Fun == fn && out == nil && len(c.Args) > 0 {
			out = c.Args[0]
		}
		return true
	})
	return out
}

func TestTargetOfLockArg(t *testing.T) {
	res, _ := run(t, `
global locks: lock[4];
global big: lock;
fun f(i: int) {
    spin_lock(&locks[i]);
    spin_unlock(&big);
}
`, Options{})
	lockArg := findCallArg(res.Prog, "spin_lock")
	unlockArg := findCallArg(res.Prog, "spin_unlock")
	lt, ok1 := res.TargetOf(lockArg)
	bt, ok2 := res.TargetOf(unlockArg)
	if !ok1 || !ok2 {
		t.Fatal("targets must resolve")
	}
	if res.Locs.Same(lt, bt) {
		t.Error("array elements and the scalar global must have distinct locations")
	}
	if res.Locs.Linear(lt) {
		t.Error("array element location is not linear")
	}
	if !res.Locs.Linear(bt) {
		t.Error("scalar global location is linear")
	}
}

func TestAliasUnificationThroughAssignment(t *testing.T) {
	// Storing both q and a into the same cell unifies their targets.
	res, _ := run(t, `
global slot: ref int;
fun f(q: ref int, a: ref int) {
    slot = q;
    slot = a;
}
`, Options{})
	f := res.Prog.Fun("f")
	qSym := res.TInfo.Binders[f.Params[0]]
	aSym := res.TInfo.Binders[f.Params[1]]
	qT := res.SymLTypes[qSym]
	aT := res.SymLTypes[aSym]
	if !res.Locs.Same(qT.Cell(), aT.Cell()) {
		t.Error("q and a must alias after flowing into one cell")
	}
}

func TestNoSpuriousUnification(t *testing.T) {
	res, _ := run(t, `
fun f(q: ref int, a: ref int): int {
    return *q + *a;
}
`, Options{})
	f := res.Prog.Fun("f")
	qT := res.SymLTypes[res.TInfo.Binders[f.Params[0]]]
	aT := res.SymLTypes[res.TInfo.Binders[f.Params[1]]]
	if res.Locs.Same(qT.Cell(), aT.Cell()) {
		t.Error("mere reads must not unify distinct pointers")
	}
}

func TestLatentEffects(t *testing.T) {
	res, sol := run(t, `
global g: int;
fun reader(): int {
    return g;
}
fun writer() {
    g = 1;
}
`, Options{})
	gCell := res.SymLTypes[res.TInfo.Globals["g"]]
	_ = gCell
	// The global's cell: find it via the writer's effect.
	wAtoms := sol.Atoms(res.FunEff["writer"])
	rAtoms := sol.Atoms(res.FunEff["reader"])
	hasKind := func(atoms []effects.Atom, k effects.Kind) bool {
		for _, a := range atoms {
			if a.Kind == k {
				return true
			}
		}
		return false
	}
	if !hasKind(wAtoms, effects.Write) {
		t.Errorf("writer latent effect lacks a write: %v", wAtoms)
	}
	if !hasKind(rAtoms, effects.Read) {
		t.Errorf("reader latent effect lacks a read: %v", rAtoms)
	}
	if hasKind(rAtoms, effects.Write) {
		t.Errorf("reader must not write: %v", rAtoms)
	}
}

func TestDownRemovesDeadLocals(t *testing.T) {
	res, sol := run(t, `
fun scratch(): int {
    let tmp = new 7;
    *tmp = *tmp + 1;
    return *tmp;
}
`, Options{})
	if atoms := sol.Atoms(res.FunEff["scratch"]); len(atoms) != 0 {
		t.Errorf("(Down) must empty scratch's latent effect, got %v", atoms)
	}
	// The pre-Down body effect is not empty.
	if atoms := sol.Atoms(res.FunBody["scratch"]); len(atoms) == 0 {
		t.Error("body effect must record the temporary's alloc/read/write")
	}
}

func TestDownKeepsParamEffects(t *testing.T) {
	res, sol := run(t, `
fun bump(p: ref int) {
    *p = *p + 1;
}
`, Options{})
	atoms := sol.Atoms(res.FunEff["bump"])
	var kinds []effects.Kind
	for _, a := range atoms {
		kinds = append(kinds, a.Kind)
	}
	if len(atoms) != 2 {
		t.Fatalf("bump's latent effect must keep the parameter's read+write, got %v", atoms)
	}
}

func TestCallPropagatesLatentEffect(t *testing.T) {
	res, sol := run(t, `
global g: int;
fun leaf() {
    g = 1;
}
fun caller() {
    leaf();
}
`, Options{})
	atoms := sol.Atoms(res.FunEff["caller"])
	found := false
	for _, a := range atoms {
		if a.Kind == effects.Write {
			found = true
		}
	}
	if !found {
		t.Errorf("caller must inherit leaf's write on the global: %v", atoms)
	}
}

func TestRecursiveStructTypesTerminate(t *testing.T) {
	res, sol := run(t, `
struct node {
    next: ref node;
    v: int;
}
global head: node;
fun sum(n: ref node): int {
    if (n == n) {
        return n->v + sum(n->next);
    }
    return 0;
}
fun entry(): int {
    return sum(&head);
}
`, Options{})
	// Must terminate; the recursive effect must mention the field
	// cells (reads of v/next).
	atoms := sol.Atoms(res.FunEff["sum"])
	if len(atoms) == 0 {
		t.Error("sum must have read effects on node fields")
	}
}

func TestAllocEffects(t *testing.T) {
	res, sol := run(t, `
struct dev { l: lock; n: int; }
fun f(): int {
    let c = new 3;
    let d = new dev;
    d->n = *c;
    return d->n;
}
`, Options{})
	atoms := sol.Atoms(res.FunBody["f"])
	allocs := 0
	for _, a := range atoms {
		if a.Kind == effects.Alloc {
			allocs++
		}
	}
	// new 3 → one cell; new dev → two field cells.
	if allocs != 3 {
		t.Errorf("alloc atoms = %d, want 3 (%v)", allocs, atoms)
	}
}

func TestSpinLockIsWrite(t *testing.T) {
	res, sol := run(t, `
global big: lock;
fun f() {
    spin_lock(&big);
}
`, Options{})
	atoms := sol.Atoms(res.FunEff["f"])
	if len(atoms) != 1 || atoms[0].Kind != effects.Write {
		t.Errorf("spin_lock must be a write on the lock cell: %v", atoms)
	}
}

func TestCandidateGeneration(t *testing.T) {
	res, _ := run(t, `
fun f(q: ref int, n: int): int {
    let p = q;     // ref: candidate
    let k = n + 1; // int: not a candidate
    return *p + k;
}
`, Options{InferRestrictLets: true})
	if len(res.Candidates) != 1 || res.Candidates[0].Kind != CandLet || res.Candidates[0].Name != "p" {
		t.Fatalf("candidates: %+v", res.Candidates)
	}
	// Each let-or-restrict candidate generates 5 conditionals: two
	// failure conditions and three relays.
	if got := len(res.Sys.Conds); got != 5 {
		t.Errorf("conds = %d, want 5", got)
	}
}

func TestParamCandidates(t *testing.T) {
	res, _ := run(t, `
fun f(q: ref int, n: int): int {
    return *q + n;
}
`, Options{InferRestrictParams: true})
	if len(res.Candidates) != 1 || res.Candidates[0].Kind != CandParam {
		t.Fatalf("candidates: %+v", res.Candidates)
	}
	if _, ok := res.Bindings[res.Prog.Fun("f").Params[0]]; !ok {
		t.Error("param binding must be recorded for qual")
	}
}

func TestConfineOccurrenceResolution(t *testing.T) {
	// Within the confine, occurrences of &locks[i] must resolve to
	// the fresh location, and shadowed lookalikes must not.
	res, sol := run(t, `
global locks: lock[4];
fun f(i: int) {
    confine &locks[i] {
        spin_lock(&locks[i]);
        let j = i + 0;
        spin_unlock(&locks[i]);
    }
}
`, Options{})
	b := res.Bindings[firstConfine(res.Prog)]
	if b == nil {
		t.Fatal("confine binding missing")
	}
	if res.Locs.Same(b.Rho, b.RhoP) {
		t.Fatal("explicit confine must keep ρ and ρ' distinct")
	}
	// The lock op arguments resolve to ρ'.
	arg := findCallArg(res.Prog, "spin_lock")
	target, ok := res.TargetOf(arg)
	if !ok || !res.Locs.Same(target, b.RhoP) {
		t.Errorf("occurrence target = %v, want ρ' = %v", target, b.RhoP)
	}
	if vs := sol.Violations(); len(vs) != 0 {
		t.Errorf("clean confine must verify: %v", vs)
	}
}

func firstConfine(prog *ast.Program) *ast.ConfineStmt {
	var out *ast.ConfineStmt
	ast.Inspect(prog, func(n ast.Node) bool {
		if c, ok := n.(*ast.ConfineStmt); ok && out == nil {
			out = c
		}
		return true
	})
	return out
}

func TestConfineShadowedIndexNotMatched(t *testing.T) {
	// Inside the scope, a NEW i shadows the outer one; &locks[i]
	// written with the inner i is a different expression and must NOT
	// be treated as an occurrence — accessing ρ directly, which makes
	// the explicit confine fail.
	res, sol := run(t, `
global locks: lock[4];
fun f(i: int) {
    confine &locks[i] {
        spin_lock(&locks[i]);
        let i = 0;
        spin_unlock(&locks[i]);
    }
}
`, Options{})
	_ = res
	if vs := sol.Violations(); len(vs) == 0 {
		t.Error("shadowed index must defeat the confine (symbol-resolved matching)")
	}
}

func TestConfineWithCallRejected(t *testing.T) {
	var diags source.Diagnostics
	prog := parser.Parse("t.mc", `
global locks: lock[4];
fun pick(): int { return 2; }
fun f() {
    confine &locks[pick()] {
        spin_lock(&locks[pick()]);
        spin_unlock(&locks[pick()]);
    }
}
`, &diags)
	tinfo := types.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.String())
	}
	Run(tinfo, &diags, Options{})
	if !diags.HasErrors() {
		t.Error("a call inside a confined expression must be diagnosed (§6.1)")
	}
}

func TestPlaceCells(t *testing.T) {
	res, _ := run(t, `
struct dev { l: lock; n: int; }
global d: dev;
global tbl: int[4];
fun f(i: int) {
    d.n = tbl[i];
}
`, Options{})
	var fieldCell, elemCell = -1, -1
	ast.Inspect(res.Prog, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FieldExpr:
			if c, ok := res.PlaceCells[ast.Expr(n)]; ok {
				fieldCell = int(res.Locs.Find(c))
			}
		case *ast.IndexExpr:
			if c, ok := res.PlaceCells[ast.Expr(n)]; ok {
				elemCell = int(res.Locs.Find(c))
			}
		}
		return true
	})
	if fieldCell < 0 || elemCell < 0 {
		t.Fatal("place cells not recorded")
	}
	if fieldCell == elemCell {
		t.Error("field and array element must have distinct cells")
	}
}

func TestSucceededReflectsUnification(t *testing.T) {
	res, _ := run(t, `
fun f(q: ref int): int {
    let p = q;
    return *p + *q;
}
`, Options{InferRestrictLets: true})
	cand := res.Candidates[0]
	if res.Succeeded(cand) {
		t.Error("candidate must fail after solving (q used in scope)")
	}
}

func TestLTypeString(t *testing.T) {
	res, _ := run(t, `
struct node { next: ref node; v: int; }
fun f(n: ref node, a: ref int): int {
    return n->v + *a;
}
`, Options{})
	f := res.Prog.Fun("f")
	nT := res.SymLTypes[res.TInfo.Binders[f.Params[0]]]
	s := nT.String()
	// Cyclic struct types must render without hanging.
	if !strings.Contains(s, "ref") || !strings.Contains(s, "node") {
		t.Errorf("render: %q", s)
	}
	aT := res.SymLTypes[res.TInfo.Binders[f.Params[1]]]
	if !strings.HasPrefix(aT.String(), "ref ρ") {
		t.Errorf("render: %q", aT.String())
	}
}

func TestCandKindStrings(t *testing.T) {
	if CandLet.String() != "let" || CandParam.String() != "param" || CandConfine.String() != "confine" {
		t.Error("cand kind strings")
	}
}
