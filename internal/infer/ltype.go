// Package infer implements the alias-and-effect inference of the
// paper's Figure 3 over MiniC, together with the conditional
// constraints of restrict inference (Section 5) and confine inference
// (Section 6).
//
// The inferencer assumes standard type checking (package types) has
// succeeded. It walks every function once, building located types —
// standard types decorated with abstract locations ρ — and a
// constraint system over effect variables:
//
//   - type equalities are solved eagerly by unification (Figure 4a
//     embodied as LType.unify, with the location equalities they
//     imply performed on the shared locs.Store);
//   - locs(τ) and locs(Γ) are memoized as effect variables ε_τ and
//     ε_Γ exactly as Section 4 prescribes, so they are never
//     recomputed by traversal;
//   - (Down) is applied once per function (Section 3.1): the latent
//     effect of f is body ∩ (ε_Γf ∪ ε_τresult);
//   - restrict introduces a fresh ρ′ and the checks ρ ∉ L₂ and
//     ρ′ ∉ locs(Γ, τ₁, τ₂); in inference mode these become the
//     conditional constraints of the let-or-restrict rule;
//   - confine adds the referential-transparency premises of the
//     confine? rule over read/write/alloc effects.
package infer

import (
	"fmt"

	"localalias/internal/ast"
	"localalias/internal/effects"
	"localalias/internal/locs"
	"localalias/internal/source"
	"localalias/internal/types"
)

// LKind is the shape of a located type node.
type LKind uint8

// The located type kinds.
const (
	LInt LKind = iota
	LUnit
	LLock
	LRef
	LArray
	LStruct
)

func (k LKind) String() string {
	switch k {
	case LInt:
		return "int"
	case LUnit:
		return "unit"
	case LLock:
		return "lock"
	case LRef:
		return "ref"
	case LArray:
		return "array"
	case LStruct:
		return "struct"
	default:
		return fmt.Sprintf("lkind(%d)", uint8(k))
	}
}

// LType is a located type: a standard type whose ref targets, array
// elements and struct fields carry abstract locations. LTypes form a
// possibly-cyclic graph (recursive structs) and are unified with a
// union-find, so always navigate via find().
type LType struct {
	parent *LType
	rank   int8

	kind LKind
	// cell is the pointed-to cell (LRef) or the shared element cell
	// (LArray).
	cell locs.Loc
	// elem is the content type (LRef, LArray).
	elem *LType
	// decl/fields/fcells describe a struct instance: fcells[i] is the
	// storage location of field i, fields[i] its content type.
	decl   *ast.StructDecl
	fields []*LType
	fcells []locs.Loc

	// tvar is ε_τ, the memoized locs(τ) effect variable.
	tvar effects.Var
}

func (t *LType) find() *LType {
	for t.parent != nil {
		if t.parent.parent != nil {
			t.parent = t.parent.parent
		}
		t = t.parent
	}
	return t
}

// Kind returns the canonical node's kind.
func (t *LType) Kind() LKind { return t.find().kind }

// Cell returns the target/element cell of a ref or array type.
func (t *LType) Cell() locs.Loc { return t.find().cell }

// Elem returns the content type of a ref or array type.
func (t *LType) Elem() *LType { return t.find().elem }

// TVar returns ε_τ for the canonical node.
func (t *LType) TVar() effects.Var { return t.find().tvar }

// String renders the canonical shape (cycle-safe, depth-limited).
func (t *LType) String() string { return t.str(4) }

func (t *LType) str(depth int) string {
	t = t.find()
	if depth == 0 {
		return "..."
	}
	switch t.kind {
	case LInt:
		return "int"
	case LUnit:
		return "unit"
	case LLock:
		return "lock"
	case LRef:
		return fmt.Sprintf("ref ρ%d %s", t.cell, t.elem.str(depth-1))
	case LArray:
		return fmt.Sprintf("%s[]@ρ%d", t.elem.str(depth-1), t.cell)
	case LStruct:
		return "struct " + t.decl.Name
	default:
		return "?"
	}
}

// ---------------------------------------------------------------------
// Construction

// storageMode says what kind of locations a located type's cells get.
type storageMode int

const (
	// modePlaceholder: cells are origin-free placeholders (parameter
	// and result types; ref targets in general).
	modePlaceholder storageMode = iota
	// modeGlobal: cells are single storage origins (module globals).
	modeGlobal
	// modeHeap: cells are storage conservatively assumed to be
	// allocated many times (new-sites), hence never linear.
	modeHeap
)

// builder creates located types for one inferencer run.
type builder struct {
	ls  *locs.Store
	sys *effects.System

	// diags/file receive internal-error diagnostics (unification
	// mismatches that standard checking should have prevented); site
	// is the span of the construct currently being unified, set by
	// the inferencer before each top-level unify call. internal
	// counts the diagnostics recorded.
	diags    *source.Diagnostics
	file     *source.File
	site     source.Span
	internal int

	// structReg resolves struct names in field types.
	structReg map[string]*ast.StructDecl

	intT, unitT, lockT *LType

	// cellsMade collects the cells created by the most recent
	// instantiate call (used to emit alloc effects for struct
	// allocation).
	cellsMade []locs.Loc

	// slab chunk-allocates LType nodes: one make per 256 nodes
	// instead of one per node. Chunks are never reallocated (a full
	// chunk is replaced by a fresh one), so returned pointers stay
	// valid.
	slab []LType
}

// internalErrf records an internal-error diagnostic at the span of
// the construct currently being unified and marks the run as failed
// (Result.InternalErrors). Inputs that are malformed in a way
// standard checking misses fail their module, not the process.
func (b *builder) internalErrf(format string, args ...any) {
	b.internal++
	if b.diags != nil {
		b.diags.Errorf(b.file, b.site, "infer",
			"internal error: "+format+" (standard checking should have rejected this program)",
			args...)
	}
}

func newBuilder(ls *locs.Store, sys *effects.System) *builder {
	b := &builder{ls: ls, sys: sys}
	b.intT = b.newNode(LInt, "int")
	b.unitT = b.newNode(LUnit, "unit")
	b.lockT = b.newNode(LLock, "lock")
	return b
}

// newNode allocates a node with its ε_τ variable.
func (b *builder) newNode(k LKind, name string) *LType {
	if len(b.slab) == cap(b.slab) {
		b.slab = make([]LType, 0, 256)
	}
	b.slab = append(b.slab, LType{kind: k, cell: locs.NoLoc, tvar: b.sys.FreshN("τ(", name, ")")})
	return &b.slab[len(b.slab)-1]
}

// cellFor makes a location according to mode.
func (b *builder) cellFor(mode storageMode, name string) locs.Loc {
	var l locs.Loc
	switch mode {
	case modeGlobal:
		l = b.ls.FreshStorage(name)
	case modeHeap:
		l = b.ls.FreshStorage(name)
		b.ls.MarkMulti(l)
	default:
		l = b.ls.Fresh(name)
	}
	b.cellsMade = append(b.cellsMade, l)
	return l
}

// arrayCellFor makes an element location: always multi.
func (b *builder) arrayCellFor(mode storageMode, name string) locs.Loc {
	var l locs.Loc
	if mode == modePlaceholder {
		l = b.ls.Fresh(name)
	} else {
		l = b.ls.FreshStorage(name)
	}
	b.ls.MarkMulti(l)
	b.cellsMade = append(b.cellsMade, l)
	return l
}

// build converts a standard type to a located type. mode applies to
// the cells owned by the type itself (array elements, struct fields);
// ref targets are always placeholders — what a pointer aliases is
// discovered by unification, not declared.
//
// inProgress ties the knot for recursive structs: each build call
// tree instantiates a given struct declaration at most once, so
// "struct node { next: ref node; }" yields a finite cyclic graph.
func (b *builder) build(t types.Type, mode storageMode, name string, inProgress map[*ast.StructDecl]*LType) *LType {
	switch t := t.(type) {
	case *types.Prim:
		switch t.Kind {
		case ast.PrimInt:
			return b.intT
		case ast.PrimUnit:
			return b.unitT
		default:
			return b.lockT
		}
	case *types.Ref:
		n := b.newNode(LRef, name)
		n.cell = b.cellFor(modePlaceholder, "*"+name)
		n.elem = b.build(t.Elem, modePlaceholder, "*"+name, inProgress)
		b.sys.AddAtom(effects.Atom{Kind: effects.LocAtom, Loc: n.cell}, n.tvar)
		b.sys.AddVarIncl(n.elem.TVar(), n.tvar)
		return n
	case *types.Array:
		n := b.newNode(LArray, name)
		n.cell = b.arrayCellFor(mode, name+"[]")
		n.elem = b.build(t.Elem, mode, name+"[]", inProgress)
		b.sys.AddAtom(effects.Atom{Kind: effects.LocAtom, Loc: n.cell}, n.tvar)
		b.sys.AddVarIncl(n.elem.TVar(), n.tvar)
		return n
	case *types.Named:
		if inProgress == nil {
			inProgress = make(map[*ast.StructDecl]*LType)
		}
		if existing := inProgress[t.Decl]; existing != nil {
			return existing
		}
		n := b.newNode(LStruct, t.Decl.Name)
		n.decl = t.Decl
		inProgress[t.Decl] = n
		defer delete(inProgress, t.Decl)
		for _, f := range t.Decl.Fields {
			fname := name + "." + f.Name
			fc := b.cellFor(mode, fname)
			ft := b.build(b.resolveSyntactic(f.Type), mode, fname, inProgress)
			n.fcells = append(n.fcells, fc)
			n.fields = append(n.fields, ft)
			b.sys.AddAtom(effects.Atom{Kind: effects.LocAtom, Loc: fc}, n.tvar)
			b.sys.AddVarIncl(ft.TVar(), n.tvar)
		}
		return n
	default:
		return b.intT
	}
}

// resolveSyntactic is a minimal syntactic→standard conversion for
// field types; unknown names were already rejected by the standard
// checker, so lookups go through the registry set by the inferencer.
func (b *builder) resolveSyntactic(t ast.TypeExpr) types.Type {
	switch t := t.(type) {
	case *ast.PrimType:
		switch t.Kind {
		case ast.PrimInt:
			return types.IntType
		case ast.PrimUnit:
			return types.UnitType
		default:
			return types.LockType
		}
	case *ast.NamedType:
		if d := b.structReg[t.Name]; d != nil {
			return &types.Named{Decl: d}
		}
		return types.IntType
	case *ast.RefType:
		return &types.Ref{Elem: b.resolveSyntactic(t.Elem)}
	case *ast.ArrayType:
		return &types.Array{Elem: b.resolveSyntactic(t.Elem), Size: t.Size}
	default:
		return types.IntType
	}
}

// ---------------------------------------------------------------------
// Unification (Figure 4a)

// unify merges two located types. Standard checking guarantees the
// shapes agree; a mismatch indicates an internal error, reported as a
// positioned diagnostic (the module fails; the process must not — a
// panic here used to take down whole corpus runs). The union is
// performed before recursing into components, which makes unification
// terminate on cyclic struct graphs.
func (b *builder) unify(a, c *LType) {
	a, c = a.find(), c.find()
	if a == c {
		return
	}
	if a.kind != c.kind {
		b.internalErrf("cannot unify %s (%s) with %s (%s)", a, a.kind, c, c.kind)
		return
	}
	winner, loser := a, c
	if winner.rank < loser.rank {
		winner, loser = loser, winner
	}
	if winner.rank == loser.rank {
		winner.rank++
	}
	loser.parent = winner
	// ε_τ of both classes must denote the same set from now on.
	b.sys.AddVarIncl(loser.tvar, winner.tvar)
	b.sys.AddVarIncl(winner.tvar, loser.tvar)

	switch winner.kind {
	case LRef, LArray:
		b.ls.Unify(winner.cell, loser.cell)
		b.unify(winner.elem, loser.elem)
	case LStruct:
		if winner.decl != loser.decl {
			b.internalErrf("cannot unify distinct struct types %s and %s",
				winner.decl.Name, loser.decl.Name)
			return
		}
		for i := range winner.fields {
			b.ls.Unify(winner.fcells[i], loser.fcells[i])
			b.unify(winner.fields[i], loser.fields[i])
		}
	}
}
