package infer

import (
	"fmt"
	"strconv"

	"localalias/internal/ast"
	"localalias/internal/effects"
	"localalias/internal/locs"
	"localalias/internal/source"
	"localalias/internal/types"
)

// Options selects between pure checking and the inference modes.
type Options struct {
	// InferRestrictLets treats every ref-typed remainder-scope let
	// (DeclStmt) as a let-or-restrict candidate (Section 5).
	InferRestrictLets bool
	// InferRestrictParams treats every ref-typed parameter as a
	// restrict candidate (the C99 "restrict parameter" usage of the
	// paper's introduction).
	InferRestrictParams bool
	// OptionalConfines marks ConfineStmt nodes to be treated as
	// confine? candidates (conditional constraints) rather than hard
	// annotations. Scope inference (package confine) populates it.
	OptionalConfines map[*ast.ConfineStmt]bool
	// NoDown disables the (Down) rule at function boundaries — the
	// ablation discussed in Section 3.1, where effects on dead
	// temporary storage leak into latent effects and spuriously
	// defeat restrict.
	NoDown bool
	// ImportEffects maps qualified imported-function names ("pkg.fn")
	// to per-formal effect masks computed from the callee's solved
	// latent effect by the cross-module pass (internal/modgraph).
	// Qualified calls to functions absent from the map — or when the
	// map is nil — are havoc'd: read+write+alloc on every location
	// reachable from their ref arguments.
	ImportEffects map[string][]effects.Mask
	// LiberalRestrictEffect switches explicit restrict/confine
	// annotations to the liberal semantics of Section 5 (consistent
	// with C99): restricting a location is an effect on it only if
	// the restricted copy is actually used. The default is the strict
	// rule of Figure 2, where the conclusion always carries {ρ}.
	// Inference always uses the liberal rule (that is the
	// let-or-restrict construction), so optimality of inference is
	// stated — and tested — against this mode.
	LiberalRestrictEffect bool
}

// CandKind classifies an inference candidate.
type CandKind int

// The candidate kinds.
const (
	CandLet CandKind = iota
	CandParam
	CandConfine
)

func (k CandKind) String() string {
	switch k {
	case CandLet:
		return "let"
	case CandParam:
		return "param"
	case CandConfine:
		return "confine"
	default:
		return "cand(?)"
	}
}

// Candidate is one let-or-restrict or confine? candidate. After
// solving, Succeeded reports the verdict.
type Candidate struct {
	Kind CandKind
	Node ast.Node // *ast.DeclStmt, *ast.Param or *ast.ConfineStmt
	Name string   // binder name or confined expression rendering
	Site source.Span
	Rho  locs.Loc // the outer location ρ
	RhoP locs.Loc // the fresh location ρ′
}

// Binding records a restrict/confine scope (explicit or candidate)
// for the flow-sensitive qualifier analysis: within Node's scope the
// location RhoP is a linear copy of Rho.
type Binding struct {
	Node     ast.Node
	Rho      locs.Loc
	RhoP     locs.Loc
	Explicit bool
	Cand     *Candidate // nil when Explicit
}

// Result carries everything later phases need.
type Result struct {
	Prog  *ast.Program
	TInfo *types.Info
	Locs  *locs.Store
	Sys   *effects.System

	// LTypes is the located value type of every inferred expression.
	LTypes map[ast.Expr]*LType
	// PlaceCells is the storage cell of every place expression.
	PlaceCells map[ast.Expr]locs.Loc
	// Bindings maps restrict/confine nodes (and candidate params and
	// lets) to their ρ/ρ′ pair.
	Bindings map[ast.Node]*Binding
	// Candidates lists inference candidates in source order.
	Candidates []*Candidate
	// FunEff is each function's latent (post-Down) effect variable;
	// FunBody is the pre-Down body effect.
	FunEff  map[string]effects.Var
	FunBody map[string]effects.Var
	// SymLTypes is the located type of each symbol.
	SymLTypes map[*types.Symbol]*LType

	// InternalErrors counts internal-error diagnostics recorded
	// during inference (unification mismatches that standard checking
	// should have prevented). Non-zero means the run's constraint
	// system is unreliable and the module must be failed.
	InternalErrors int
}

// TargetOf returns the pointed-to cell of a ref-typed expression
// (canonical), e.g. the lock cell of a spin_lock argument.
func (r *Result) TargetOf(e ast.Expr) (locs.Loc, bool) {
	lt := r.LTypes[e]
	if lt == nil || lt.Kind() != LRef {
		return locs.NoLoc, false
	}
	return r.Locs.Find(lt.Cell()), true
}

// Succeeded reports a candidate's post-solve verdict: the candidate
// became a restrict/confine iff its two locations stayed distinct.
func (r *Result) Succeeded(c *Candidate) bool {
	return !r.Locs.Same(c.Rho, c.RhoP)
}

// Run performs alias-and-effect inference over a standard-typed
// program. Structural problems (e.g. a confined expression containing
// a call) are reported to diags; constraint violations are NOT — they
// are produced by solving (package solve) and interpreted by the
// restrict/confine packages.
func Run(tinfo *types.Info, diags *source.Diagnostics, opts Options) *Result {
	ls := locs.NewStore()
	sys := effects.NewSystem(ls)
	// Inference mints a few variables and inclusions per expression;
	// reserving against the typed-expression count avoids slice growth
	// on the constraint-building hot path.
	sys.Reserve(2*len(tinfo.ExprTypes), 2*len(tinfo.ExprTypes))
	b := newBuilder(ls, sys)
	b.structReg = tinfo.Structs
	b.diags = diags
	b.file = tinfo.Prog.File
	b.site = source.NoSpan

	inf := &inferencer{
		b:     b,
		ls:    ls,
		sys:   sys,
		tinfo: tinfo,
		diags: diags,
		opts:  opts,
		res: &Result{
			Prog:       tinfo.Prog,
			TInfo:      tinfo,
			Locs:       ls,
			Sys:        sys,
			LTypes:     make(map[ast.Expr]*LType, len(tinfo.ExprTypes)),
			PlaceCells: make(map[ast.Expr]locs.Loc, len(tinfo.IsPlace)),
			Bindings:   make(map[ast.Node]*Binding, len(tinfo.Binders)),
			FunEff:     make(map[effKey]effects.Var),
			FunBody:    make(map[effKey]effects.Var),
			SymLTypes:  make(map[*types.Symbol]*LType, len(tinfo.Binders)),
		},
	}
	inf.run()
	inf.res.InternalErrors = b.internal
	return inf.res
}

type effKey = string

type funLInfo struct {
	sig    *types.FunSig
	params []*LType // original (pre-restrict) parameter types
	result *LType
	eff    effects.Var // latent effect (post-Down)
	body   effects.Var // body effect (pre-Down)
	keep   effects.Var // locs(Γ_f, τ_result) for (Down)
}

type globalLInfo struct {
	sym *types.Symbol
	// cell is the storage cell for scalar globals (NoLoc for
	// aggregates, whose storage lives inside content).
	cell    locs.Loc
	content *LType
}

// confCtx is an active confine scope: within it, occurrences of expr
// denote the effectful variable x_π′ of type xT.
type confCtx struct {
	expr ast.Expr
	xT   *LType
	pi   effects.Var
}

type inferencer struct {
	b     *builder
	ls    *locs.Store
	sys   *effects.System
	tinfo *types.Info
	diags *source.Diagnostics
	opts  Options
	res   *Result

	globals  map[string]*globalLInfo
	funs     map[string]*funLInfo
	imported map[string]*LType // shared result type per imported callee
	envG     effects.Var       // ε of the global environment

	cur      *funLInfo
	confines []*confCtx
}

func (inf *inferencer) errorf(sp source.Span, format string, args ...any) {
	inf.diags.Errorf(inf.tinfo.Prog.File, sp, "infer", format, args...)
}

func (inf *inferencer) run() {
	prog := inf.tinfo.Prog

	// Globals: build storage once, collect ε_Γ(globals).
	inf.globals = make(map[string]*globalLInfo)
	inf.imported = make(map[string]*LType)
	inf.envG = inf.sys.Fresh("Γ(globals)")
	for _, g := range prog.Globals {
		sym := inf.tinfo.Globals[g.Name]
		if sym == nil {
			continue
		}
		gi := &globalLInfo{sym: sym, cell: locs.NoLoc}
		switch sym.Type.(type) {
		case *types.Array, *types.Named:
			gi.content = inf.b.build(sym.Type, modeGlobal, g.Name, nil)
		default:
			gi.cell = inf.ls.FreshStorage(g.Name)
			gi.content = inf.b.build(sym.Type, modePlaceholder, g.Name, nil)
			inf.sys.AddAtom(effects.Atom{Kind: effects.LocAtom, Loc: gi.cell}, inf.envG)
		}
		inf.globals[g.Name] = gi
		inf.res.SymLTypes[sym] = gi.content
		inf.sys.AddVarIncl(gi.content.TVar(), inf.envG)
	}

	// Function signatures (phase A): locate parameter and result
	// types, allocate latent-effect variables.
	inf.funs = make(map[string]*funLInfo)
	for _, f := range prog.Funs {
		sig := inf.tinfo.Funs[f.Name]
		if sig == nil || sig.Decl != f {
			continue
		}
		fi := &funLInfo{
			sig:  sig,
			eff:  inf.sys.FreshN("eff(", f.Name, ")"),
			body: inf.sys.FreshN("body(", f.Name, ")"),
			keep: inf.sys.FreshN("keep(", f.Name, ")"),
		}
		for i, pt := range sig.Params {
			fi.params = append(fi.params, inf.b.build(pt, modePlaceholder, f.Name+"."+f.Params[i].Name, nil))
		}
		fi.result = inf.b.build(sig.Result, modePlaceholder, f.Name+".ret", nil)
		// keep = ε_Γf ∪ ε_τresult: globals, parameters, result.
		inf.sys.AddVarIncl(inf.envG, fi.keep)
		for _, p := range fi.params {
			inf.sys.AddVarIncl(p.TVar(), fi.keep)
		}
		inf.sys.AddVarIncl(fi.result.TVar(), fi.keep)
		inf.funs[f.Name] = fi
		inf.res.FunEff[f.Name] = fi.eff
		inf.res.FunBody[f.Name] = fi.body

		// (Down) at the function boundary (Section 3.1), or the
		// ablated direct flow.
		if inf.opts.NoDown {
			inf.sys.AddVarIncl(fi.body, fi.eff)
		} else {
			inf.sys.AddInclAt(effects.Inter{
				L: effects.VarRef{V: fi.body},
				R: effects.VarRef{V: fi.keep},
			}, fi.eff, f.Span())
		}
	}

	// Bodies (phase B).
	for _, f := range prog.Funs {
		fi := inf.funs[f.Name]
		if fi == nil {
			continue
		}
		inf.inferFun(f, fi)
	}
}

// extendEnv returns a fresh ε_Γ variable covering env plus t, per the
// incremental ε_Γ scheme of Section 4.
func (inf *inferencer) extendEnv(env effects.Var, t *LType, what string) effects.Var {
	nv := inf.sys.FreshN("Γ+", what, "")
	inf.sys.AddVarIncl(env, nv)
	inf.sys.AddVarIncl(t.TVar(), nv)
	return nv
}

func (inf *inferencer) inferFun(f *ast.FunDecl, fi *funLInfo) {
	inf.cur = fi
	env := inf.envG

	// Bind parameters: explicitly restrict-qualified ones get hard
	// checks; otherwise they are optionally restrict candidates.
	for i, p := range f.Params {
		sym := inf.tinfo.Binders[p]
		if sym == nil {
			continue
		}
		orig := fi.params[i]
		bound := orig
		if p.Restrict && orig.Kind() == LRef {
			rho := orig.Cell()
			rhoP := inf.ls.FreshRestricted(p.Name + "'")
			xT := inf.b.mkRef(rhoP, orig.Elem(), p.Name+"'")
			esc := inf.paramEscapeVar(fi, i, orig, p.Name)
			inf.sys.AddNotIn(rho, fi.body, p.Sp,
				fmt.Sprintf("restrict parameter %q: an alias of the restricted location is used in the body", p.Name))
			inf.sys.AddNotIn(rhoP, esc, p.Sp,
				fmt.Sprintf("restrict parameter %q: the restricted pointer escapes the function", p.Name))
			// Restricting the caller's location is itself an effect;
			// in strict mode the kind-agnostic write(ρ) in the latent
			// effect also conservatively covers every access made
			// through the restricted copy, so callers' own checks see
			// it without conditional relays (keeping restrict-only
			// systems on the Figure 5 fast path).
			inf.restrictEffect(p.Name, rho, rhoP, fi.body, fi.eff)
			inf.res.Bindings[p] = &Binding{Node: p, Rho: rho, RhoP: rhoP, Explicit: true}
			bound = xT
		} else if inf.opts.InferRestrictParams && orig.Kind() == LRef {
			rho := orig.Cell()
			rhoP := inf.ls.FreshRestricted(p.Name + "'")
			xT := inf.b.mkRef(rhoP, orig.Elem(), p.Name+"'")
			cand := &Candidate{
				Kind: CandParam,
				Node: p,
				Name: p.Name,
				Site: p.Sp,
				Rho:  rho,
				RhoP: rhoP,
			}
			esc := inf.paramEscapeVar(fi, i, orig, p.Name)
			inf.addCandidateConds(cand, fi.body, esc, fi.eff)
			inf.res.Candidates = append(inf.res.Candidates, cand)
			inf.res.Bindings[p] = &Binding{Node: p, Rho: rho, RhoP: rhoP, Cand: cand}
			bound = xT
		}
		inf.res.SymLTypes[sym] = bound
		env = inf.extendEnv(env, bound, p.Name)
	}

	inf.walkStmts(f.Body.Stmts, fi.body, env)
	inf.cur = nil
}

// paramEscapeVar builds the escape set for a (restricted) parameter:
// globals, the other parameters' original types, the content type,
// and the result type.
func (inf *inferencer) paramEscapeVar(fi *funLInfo, i int, orig *LType, name string) effects.Var {
	esc := inf.sys.FreshN("esc(", name, ")")
	inf.sys.AddVarIncl(inf.envG, esc)
	for j, q := range fi.params {
		if j != i {
			inf.sys.AddVarIncl(q.TVar(), esc)
		}
	}
	inf.sys.AddVarIncl(orig.Elem().TVar(), esc)
	inf.sys.AddVarIncl(fi.result.TVar(), esc)
	return esc
}

// addRelayConds surfaces effects on a restricted copy ρ′ as effects
// on the underlying ρ in out ("X(ρ′) ∈ L₂ ⇒ {X(ρ)} ⊆ π").
func (inf *inferencer) addRelayConds(kind, name string, rhoP locs.Loc, l2 effects.Var, rho locs.Loc, out effects.Var) {
	// One conditional per effect kind; the reason is shared (these are
	// emitted for every candidate, so avoid formatting three times).
	reason := kind + " " + strconv.Quote(name) + ": effect on restricted copy surfaces on ρ"
	for _, k := range []effects.Kind{effects.Read, effects.Write, effects.Alloc} {
		inf.sys.AddCond(&effects.Cond{
			Trigger: effects.AtomIn{Kind: k, Loc: rhoP, V: l2},
			Actions: []effects.Action{effects.ActAddAtom{
				A: effects.Atom{Kind: k, Loc: rho}, V: out,
			}},
			Reason: reason,
		})
	}
}

// restrictEffect emits the "restricting ρ is itself an effect" part
// of an explicit annotation's conclusion. Strict mode (Figure 2) adds
// {ρ} unconditionally; liberal mode (Section 5, matching C99 and the
// inference rule) adds it only when the restricted copy is used.
func (inf *inferencer) restrictEffect(name string, rho, rhoP locs.Loc, l2, sink effects.Var) {
	if inf.opts.LiberalRestrictEffect {
		inf.addRelayConds("restrict", name, rhoP, l2, rho, sink)
		return
	}
	inf.sys.AddAtom(effects.Atom{Kind: effects.Write, Loc: rho}, sink)
}

// addCandidateConds emits the let-or-restrict conditional constraints
// of Section 5 for a candidate with body effect l2 and escape set
// esc; relayed effects land in out.
func (inf *inferencer) addCandidateConds(c *Candidate, l2 effects.Var, esc effects.Var, out effects.Var) {
	fail := []effects.Action{effects.ActUnify{A: c.Rho, B: c.RhoP}}
	head := c.Kind.String() + " " + strconv.Quote(c.Name)
	inf.sys.AddCond(&effects.Cond{
		Trigger: effects.LocIn{Loc: c.Rho, V: l2},
		Actions: fail,
		Reason:  head + ": outer location accessed within the scope",
	})
	inf.sys.AddCond(&effects.Cond{
		Trigger: effects.LocIn{Loc: c.RhoP, V: esc},
		Actions: fail,
		Reason:  head + ": restricted pointer escapes its scope",
	})
	// (ρ′ ∈ L₂) ⇒ {X(ρ)} ⊆ ε: the conditional restrict effect.
	inf.addRelayConds(c.Kind.String(), c.Name, c.RhoP, l2, c.Rho, out)
}

// ---------------------------------------------------------------------
// Statements

func (inf *inferencer) walkStmts(stmts []ast.Stmt, sink effects.Var, env effects.Var) {
	for i, s := range stmts {
		switch s := s.(type) {
		case *ast.DeclStmt:
			// The remainder of the block is the binder's scope.
			rest := stmts[i+1:]
			inf.declStmt(s, rest, sink, env)
			return
		default:
			env = inf.stmt(s, sink, env)
		}
	}
}

// declStmt handles "let x = e;" over the remainder scope: a plain
// let, a pre-marked restrict (checking mode), or a let-or-restrict
// candidate (inference mode).
func (inf *inferencer) declStmt(s *ast.DeclStmt, rest []ast.Stmt, sink, env effects.Var) {
	initT := inf.expr(s.Init, sink, env)
	sym := inf.tinfo.Binders[s]
	if sym == nil {
		return
	}

	isRef := initT.Kind() == LRef
	switch {
	case s.Restrict && isRef:
		// Explicit (or previously inferred) restrict over the
		// remainder scope: hard checks.
		rho := initT.Cell()
		rhoP := inf.ls.FreshRestricted(s.Name + "'")
		xT := inf.b.mkRef(rhoP, initT.Elem(), s.Name+"'")
		inf.res.SymLTypes[sym] = xT
		inf.res.Bindings[s] = &Binding{Node: s, Rho: rho, RhoP: rhoP, Explicit: true}

		l2 := inf.sys.FreshN("L2(", s.Name, ")")
		esc := inf.escapeVar(env, initT, s.Name)
		env2 := inf.extendEnv(env, xT, s.Name)
		inf.walkStmts(rest, l2, env2)
		inf.sys.AddVarIncl(l2, sink)
		inf.sys.AddNotIn(rho, l2, s.Sp,
			fmt.Sprintf("restrict %q: an alias of the restricted location is used within its scope", s.Name))
		inf.sys.AddNotIn(rhoP, esc, s.Sp,
			fmt.Sprintf("restrict %q: the restricted pointer escapes its scope", s.Name))
		inf.restrictEffect(s.Name, rho, rhoP, l2, sink)

	case inf.opts.InferRestrictLets && isRef && !s.Restrict:
		rho := initT.Cell()
		rhoP := inf.ls.FreshRestricted(s.Name + "'")
		xT := inf.b.mkRef(rhoP, initT.Elem(), s.Name+"'")
		inf.res.SymLTypes[sym] = xT
		cand := &Candidate{
			Kind: CandLet,
			Node: s,
			Name: s.Name,
			Site: s.Sp,
			Rho:  rho,
			RhoP: rhoP,
		}
		l2 := inf.sys.FreshN("L2(", s.Name, ")")
		esc := inf.escapeVar(env, initT, s.Name)
		env2 := inf.extendEnv(env, xT, s.Name)
		inf.walkStmts(rest, l2, env2)
		inf.sys.AddVarIncl(l2, sink)
		inf.addCandidateConds(cand, l2, esc, sink)
		inf.res.Candidates = append(inf.res.Candidates, cand)
		inf.res.Bindings[s] = &Binding{Node: s, Rho: rho, RhoP: rhoP, Cand: cand}

	default:
		// Plain let.
		inf.res.SymLTypes[sym] = initT
		env2 := inf.extendEnv(env, initT, s.Name)
		inf.walkStmts(rest, sink, env2)
	}
}

// escapeVar builds locs(Γ, τ₁, τ₂): the environment at the binder,
// the content type of the bound pointer, and the function result.
func (inf *inferencer) escapeVar(env effects.Var, refT *LType, name string) effects.Var {
	esc := inf.sys.FreshN("esc(", name, ")")
	inf.sys.AddVarIncl(env, esc)
	inf.sys.AddVarIncl(refT.Elem().TVar(), esc)
	if inf.cur != nil {
		inf.sys.AddVarIncl(inf.cur.result.TVar(), esc)
	}
	return esc
}

// stmt infers one non-binder statement and returns the (possibly
// extended) environment. Only DeclStmt extends environments, and it
// is handled by walkStmts, so env passes through unchanged here.
func (inf *inferencer) stmt(s ast.Stmt, sink, env effects.Var) effects.Var {
	switch s := s.(type) {
	case *ast.BindStmt:
		inf.bindStmt(s, sink, env)
	case *ast.ConfineStmt:
		inf.confineStmt(s, sink, env)
	case *ast.AssignStmt:
		cell, content := inf.place(s.LHS, sink, env)
		rhsT := inf.expr(s.RHS, sink, env)
		if content != nil && content.Kind() == rhsT.Kind() {
			inf.b.site = s.Span()
			inf.b.unify(content, rhsT)
		}
		if cell != locs.NoLoc {
			inf.sys.AddAtom(effects.Atom{Kind: effects.Write, Loc: cell}, sink)
		}
	case *ast.ExprStmt:
		inf.expr(s.X, sink, env)
	case *ast.IfStmt:
		inf.expr(s.Cond, sink, env)
		inf.walkStmts(s.Then.Stmts, sink, env)
		if s.Else != nil {
			inf.walkStmts(s.Else.Stmts, sink, env)
		}
	case *ast.WhileStmt:
		inf.expr(s.Cond, sink, env)
		inf.walkStmts(s.Body.Stmts, sink, env)
	case *ast.ReturnStmt:
		if s.X != nil {
			rt := inf.expr(s.X, sink, env)
			if inf.cur != nil && rt.Kind() == inf.cur.result.Kind() {
				inf.b.site = s.X.Span()
				inf.b.unify(rt, inf.cur.result)
			}
		}
	case *ast.Block:
		inf.walkStmts(s.Stmts, sink, env)
	}
	return env
}

// bindStmt handles the explicitly scoped binders.
func (inf *inferencer) bindStmt(s *ast.BindStmt, sink, env effects.Var) {
	initT := inf.expr(s.Init, sink, env)
	sym := inf.tinfo.Binders[s]
	if sym == nil {
		return
	}
	if s.Kind == ast.BindLet || initT.Kind() != LRef {
		// (Let): evaluate body in the extended environment.
		inf.res.SymLTypes[sym] = initT
		env2 := inf.extendEnv(env, initT, s.Name)
		inf.walkStmts(s.Body.Stmts, sink, env2)
		return
	}
	// (Restrict), explicit: hard checks.
	rho := initT.Cell()
	rhoP := inf.ls.FreshRestricted(s.Name + "'")
	xT := inf.b.mkRef(rhoP, initT.Elem(), s.Name+"'")
	inf.res.SymLTypes[sym] = xT
	inf.res.Bindings[s] = &Binding{Node: s, Rho: rho, RhoP: rhoP, Explicit: true}

	l2 := inf.sys.FreshN("L2(", s.Name, ")")
	esc := inf.escapeVar(env, initT, s.Name)
	env2 := inf.extendEnv(env, xT, s.Name)
	inf.walkStmts(s.Body.Stmts, l2, env2)
	inf.sys.AddVarIncl(l2, sink)
	inf.sys.AddNotIn(rho, l2, s.Sp,
		fmt.Sprintf("restrict %q: an alias of the restricted location is used within its scope", s.Name))
	inf.sys.AddNotIn(rhoP, esc, s.Sp,
		fmt.Sprintf("restrict %q: the restricted pointer escapes its scope", s.Name))
	inf.restrictEffect(s.Name, rho, rhoP, l2, sink)
}

// confineStmt handles "confine e { ... }", explicit or optional
// (confine?).
func (inf *inferencer) confineStmt(s *ast.ConfineStmt, sink, env effects.Var) {
	if call := findCall(s.Expr); call != nil {
		inf.errorf(call.Span(),
			"confined expression %q contains a call; confine requires identifiers, field accesses, indexes and dereferences only (§6.1)",
			ast.ExprString(s.Expr))
	}
	name := ast.ExprString(s.Expr)

	l1 := inf.sys.FreshN("L1(", name, ")")
	e1T := inf.expr(s.Expr, l1, env)
	inf.sys.AddVarIncl(l1, sink)
	if e1T.Kind() != LRef {
		// Standard checking already reported; just walk the body.
		inf.walkStmts(s.Body.Stmts, sink, env)
		return
	}

	rho := e1T.Cell()
	rhoP := inf.ls.FreshRestricted(name + "'")
	xT := inf.b.mkRef(rhoP, e1T.Elem(), name+"'")
	pi := inf.sys.FreshN("π'(", name, ")")
	l2 := inf.sys.FreshN("L2(", name, ")")
	esc := inf.escapeVar(env, e1T, name)

	inf.confines = append(inf.confines, &confCtx{expr: s.Expr, xT: xT, pi: pi})
	inf.walkStmts(s.Body.Stmts, l2, env)
	inf.confines = inf.confines[:len(inf.confines)-1]
	inf.sys.AddVarIncl(l2, sink)

	optional := inf.opts.OptionalConfines[s]
	if optional {
		cand := &Candidate{
			Kind: CandConfine,
			Node: s,
			Name: name,
			Site: s.Sp,
			Rho:  rho,
			RhoP: rhoP,
		}
		fail := []effects.Action{
			effects.ActUnify{A: rho, B: rhoP},
			effects.ActIncl{From: l1, To: pi},
		}
		mk := func(t effects.Trigger, why string) {
			inf.sys.AddCond(&effects.Cond{Trigger: t, Actions: fail,
				Reason: fmt.Sprintf("confine %q: %s", name, why)})
		}
		mk(effects.LocIn{Loc: rho, V: l2}, "outer location accessed within the scope")
		mk(effects.LocIn{Loc: rhoP, V: esc}, "confined pointer escapes its scope")
		mk(effects.KindIn{Kind: effects.Write, V: l1}, "confined expression has a write effect")
		mk(effects.KindIn{Kind: effects.Alloc, V: l1}, "confined expression has an alloc effect")
		mk(effects.PairIn{KindA: effects.Read, VA: l1, KindB: effects.Write, VB: l2},
			"a location read by the confined expression is written in the scope")
		mk(effects.PairIn{KindA: effects.Read, VA: l1, KindB: effects.Alloc, VB: l2},
			"a location read by the confined expression is allocated in the scope")
		inf.addRelayConds("confine", name, rhoP, l2, rho, sink)
		inf.res.Candidates = append(inf.res.Candidates, cand)
		inf.res.Bindings[s] = &Binding{Node: s, Rho: rho, RhoP: rhoP, Cand: cand}
		return
	}

	// Explicit confine: hard checks (the confine rule derived from
	// confine? by requiring ρ ≠ ρ′, Section 6.1).
	inf.res.Bindings[s] = &Binding{Node: s, Rho: rho, RhoP: rhoP, Explicit: true}
	inf.sys.AddNotIn(rho, l2, s.Sp,
		fmt.Sprintf("confine %q: an alias of the confined location is used within its scope", name))
	inf.sys.AddNotIn(rhoP, esc, s.Sp,
		fmt.Sprintf("confine %q: the confined pointer escapes its scope", name))
	inf.sys.AddKindNotIn(effects.Write, l1, s.Sp,
		fmt.Sprintf("confine %q: the confined expression must have no write effects", name))
	inf.sys.AddKindNotIn(effects.Alloc, l1, s.Sp,
		fmt.Sprintf("confine %q: the confined expression must have no alloc effects", name))
	inf.sys.AddPairNotIn(effects.Read, l1, effects.Write, l2, s.Sp,
		fmt.Sprintf("confine %q: a location it reads is written within the scope", name))
	inf.sys.AddPairNotIn(effects.Read, l1, effects.Alloc, l2, s.Sp,
		fmt.Sprintf("confine %q: a location it reads is allocated within the scope", name))
	inf.restrictEffect(name, rho, rhoP, l2, sink)
}

// findCall returns the first call expression within e, or nil.
func findCall(e ast.Expr) ast.Expr {
	var hit ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			hit = c
			return false
		}
		return true
	})
	return hit
}
