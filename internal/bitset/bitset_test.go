package bitset

import (
	"math/rand"
	"testing"
)

func TestAddHasRemove(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero value must be empty")
	}
	if !s.Add(0) || !s.Add(63) || !s.Add(64) || !s.Add(1000) {
		t.Fatal("fresh adds must report true")
	}
	if s.Add(64) {
		t.Fatal("duplicate add must report false")
	}
	for _, i := range []int{0, 63, 64, 1000} {
		if !s.Has(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if s.Has(65) || s.Has(4096) {
		t.Fatal("spurious member")
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	s.Remove(63)
	s.Remove(4096) // out of range: no-op
	if s.Has(63) || s.Len() != 3 {
		t.Fatal("remove failed")
	}
}

func TestForEachOrderAndSnapshot(t *testing.T) {
	var s Set
	want := []int32{3, 64, 65, 127, 128, 513}
	for _, i := range want {
		s.Add(int(i))
	}
	var got []int32
	s.ForEach(func(i int) { got = append(got, int32(i)) })
	snap := s.AppendMembers(nil)
	for i := range want {
		if got[i] != want[i] || snap[i] != want[i] {
			t.Fatalf("order mismatch: got %v snap %v want %v", got, snap, want)
		}
	}
	if len(got) != len(want) || len(snap) != len(want) {
		t.Fatalf("lengths: %d/%d want %d", len(got), len(snap), len(want))
	}
}

func TestAgainstMapModel(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var s Set
	model := map[int]bool{}
	for op := 0; op < 20000; op++ {
		i := r.Intn(2048)
		switch r.Intn(3) {
		case 0:
			added := s.Add(i)
			if added == model[i] {
				t.Fatalf("Add(%d) = %v, model has %v", i, added, model[i])
			}
			model[i] = true
		case 1:
			s.Remove(i)
			delete(model, i)
		case 2:
			if s.Has(i) != model[i] {
				t.Fatalf("Has(%d) = %v, model %v", i, s.Has(i), model[i])
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear must empty the set")
	}
}
